package closurex

import (
	"bytes"
	"sort"
	"strings"
	"testing"
)

// sanFuzzer builds the sandefect benchmark under the closurex mechanism
// with the sanitizer armed.
func sanFuzzer(t *testing.T, opts Options) *Fuzzer {
	t.Helper()
	opts.Sanitize = true
	f, err := NewBenchmarkFuzzerOptions("sandefect", "closurex", opts)
	if err != nil {
		t.Fatalf("NewBenchmarkFuzzerOptions: %v", err)
	}
	return f
}

// TestSanitizerDetectsSeededDefects feeds each trigger input to the
// sandefect target and asserts the exact sanitizer classification and the
// allocation site embedded in the triage key.
func TestSanitizerDetectsSeededDefects(t *testing.T) {
	cases := []struct {
		name    string
		input   string
		kind    string
		fn      string // faulting function == allocation site function
	}{
		{"overflow-read", "SD1abcdefgh", "heap-out-of-bounds", "overflow_read"},
		{"overflow-write", "SD2abcd", "heap-out-of-bounds", "overflow_write"},
		{"use-after-free", "SD3x", "use-after-free", "use_after_free"},
		{"double-free", "SD4x", "double-free", "double_free"},
		{"invalid-free", "SD5x", "bad-free", "invalid_free"},
	}
	f := sanFuzzer(t, Options{Seed: 1})
	defer f.Close()
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			crashed, key := f.TryOne([]byte(tc.input))
			if !crashed {
				t.Fatalf("input %q did not crash", tc.input)
			}
			if !strings.HasPrefix(key, tc.kind+"@"+tc.fn+":") {
				t.Errorf("key %q: want kind %s at %s", key, tc.kind, tc.fn)
			}
			if !strings.Contains(key, "/alloc@"+tc.fn+":") {
				t.Errorf("key %q: want allocation site in %s", key, tc.fn)
			}
		})
	}
}

// TestSanitizerWithoutShadowMissesTailReads documents what the shadow
// plane adds: without -sanitize the one-byte read just past a chunk lands
// in the chunkAlign gap the interpreter's chunk map cannot attribute, so
// arming the sanitizer must still detect it identically (the chunk-map
// check catches it too — the sanitizer's value is the allocation site).
func TestSanitizerCrashKeysRefineTriage(t *testing.T) {
	plain, err := NewBenchmarkFuzzerOptions("sandefect", "closurex", Options{Seed: 1})
	if err != nil {
		t.Fatalf("plain fuzzer: %v", err)
	}
	defer plain.Close()
	_, plainKey := plain.TryOne([]byte("SD3x"))
	san := sanFuzzer(t, Options{Seed: 1})
	defer san.Close()
	_, sanKey := san.TryOne([]byte("SD3x"))
	if !strings.Contains(sanKey, "/alloc@") {
		t.Fatalf("sanitized key %q lacks allocation site", sanKey)
	}
	if strings.Contains(plainKey, "/alloc@") {
		t.Fatalf("plain key %q unexpectedly carries allocation site", plainKey)
	}
	if !strings.HasPrefix(sanKey, plainKey) {
		t.Errorf("sanitized key %q should refine plain key %q", sanKey, plainKey)
	}
}

// campaignFingerprint summarizes everything the differential guarantee
// covers: edge count, queue contents and crash keys.
func campaignFingerprint(f *Fuzzer) (int, [][]byte, []string) {
	st := f.Stats()
	corpus := f.Corpus()
	sort.Slice(corpus, func(i, j int) bool { return bytes.Compare(corpus[i], corpus[j]) < 0 })
	var keys []string
	for _, c := range st.Crashes {
		keys = append(keys, c.Key)
	}
	sort.Strings(keys)
	return st.Edges, corpus, keys
}

// TestSanitizeDifferentialCleanTarget runs the same campaign on a clean
// target with the sanitizer off and on: coverage bitmaps, corpus and crash
// tables must be identical, because SanitizerPass creates no blocks (probe
// IDs unchanged) and OpSanCheck is instruction-budget-transparent.
func TestSanitizeDifferentialCleanTarget(t *testing.T) {
	const execs = 3000
	run := func(sanitize bool) (int, [][]byte, []string) {
		f, err := NewBenchmarkFuzzerOptions("giftext", "closurex", Options{
			Seed: 7, DeterministicRand: true, Sanitize: sanitize,
		})
		if err != nil {
			t.Fatalf("fuzzer(sanitize=%v): %v", sanitize, err)
		}
		defer f.Close()
		f.RunExecs(execs)
		return campaignFingerprint(f)
	}
	offEdges, offCorpus, offKeys := run(false)
	onEdges, onCorpus, onKeys := run(true)
	if offEdges != onEdges {
		t.Errorf("edge counts diverge: off=%d on=%d", offEdges, onEdges)
	}
	if len(offCorpus) != len(onCorpus) {
		t.Fatalf("corpus sizes diverge: off=%d on=%d", len(offCorpus), len(onCorpus))
	}
	for i := range offCorpus {
		if !bytes.Equal(offCorpus[i], onCorpus[i]) {
			t.Fatalf("corpus entry %d diverges", i)
		}
	}
	if strings.Join(offKeys, "\n") != strings.Join(onKeys, "\n") {
		t.Errorf("crash tables diverge: off=%v on=%v", offKeys, onKeys)
	}
}

// TestSanitizeParallelJ1Determinism replays the PR-3 guarantee with the
// sanitizer armed: a Jobs=1 parallel campaign is bit-identical to the
// sequential campaign.
func TestSanitizeParallelJ1Determinism(t *testing.T) {
	const execs = 1500
	run := func(jobs int) (int, [][]byte, []string) {
		f := sanFuzzer(t, Options{Seed: 11, DeterministicRand: true, Jobs: jobs})
		defer f.Close()
		f.RunExecs(execs)
		return campaignFingerprint(f)
	}
	seqEdges, seqCorpus, seqKeys := run(0)
	parEdges, parCorpus, parKeys := run(1)
	if seqEdges != parEdges {
		t.Errorf("edge counts diverge: seq=%d j1=%d", seqEdges, parEdges)
	}
	if len(seqCorpus) != len(parCorpus) {
		t.Fatalf("corpus sizes diverge: seq=%d j1=%d", len(seqCorpus), len(parCorpus))
	}
	for i := range seqCorpus {
		if !bytes.Equal(seqCorpus[i], parCorpus[i]) {
			t.Fatalf("corpus entry %d diverges", i)
		}
	}
	if strings.Join(seqKeys, "\n") != strings.Join(parKeys, "\n") {
		t.Errorf("crash tables diverge: seq=%v j1=%v", seqKeys, parKeys)
	}
}

// TestSanitizerRepeatExecDeterminism runs the same trigger through one
// persistent image many times: the report must be identical every
// iteration, which holds only if the shadow plane and the free quarantine
// are fully restored between iterations.
func TestSanitizerRepeatExecDeterminism(t *testing.T) {
	f := sanFuzzer(t, Options{Seed: 3, DeterministicRand: true})
	defer f.Close()
	inputs := []string{"SD3x", "SD1abcdefgh", "SD0 clean", "SD3x", "SD4x", "SD3x"}
	want := map[string]string{}
	for round := 0; round < 5; round++ {
		for _, in := range inputs {
			crashed, key := f.TryOne([]byte(in))
			id := in
			got := key
			if !crashed {
				got = "<clean>"
			}
			if prev, ok := want[id]; !ok {
				want[id] = got
			} else if prev != got {
				t.Fatalf("round %d input %q: verdict drifted %q -> %q", round, in, prev, got)
			}
		}
	}
	if want["SD0 clean"] != "<clean>" {
		t.Fatalf("clean input misreported: %q", want["SD0 clean"])
	}
}
