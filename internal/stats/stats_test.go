package stats

import (
	"math"
	"testing"
)

func almostEq(a, b, eps float64) bool { return math.Abs(a-b) <= eps }

func TestMeanMedianStddev(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if m := Mean(xs); !almostEq(m, 5, 1e-12) {
		t.Fatalf("Mean = %v", m)
	}
	if m := Median(xs); !almostEq(m, 4.5, 1e-12) {
		t.Fatalf("Median = %v", m)
	}
	if s := Stddev(xs); !almostEq(s, 2.138089935299395, 1e-9) {
		t.Fatalf("Stddev = %v", s)
	}
	if Median([]float64{3, 1, 2}) != 2 {
		t.Fatal("odd median")
	}
	if Mean(nil) != 0 || Median(nil) != 0 || Stddev([]float64{1}) != 0 {
		t.Fatal("empty-input conventions")
	}
}

func TestMWUCompleteSeparationFiveVsFive(t *testing.T) {
	// The paper's Table 5 setting: 5 trials each, ClosureX always higher.
	a := []float64{379, 380, 381, 382, 383}
	b := []float64{93, 94, 95, 96, 97}
	p := MannWhitneyU(a, b)
	if !almostEq(p, 2.0/252.0, 1e-9) {
		t.Fatalf("p = %v, want 0.0079...", p)
	}
}

func TestMWUIdenticalSamples(t *testing.T) {
	a := []float64{1, 2, 3, 4, 5}
	p := MannWhitneyU(a, a)
	if p < 0.99 {
		t.Fatalf("identical samples p = %v, want ~1", p)
	}
}

func TestMWUInterleaved(t *testing.T) {
	a := []float64{1, 3, 5, 7, 9}
	b := []float64{2, 4, 6, 8, 10}
	p := MannWhitneyU(a, b)
	if p < 0.5 {
		t.Fatalf("interleaved p = %v, want large", p)
	}
}

func TestMWUSymmetry(t *testing.T) {
	a := []float64{10, 20, 30, 40, 50}
	b := []float64{5, 15, 22, 28, 33}
	if p1, p2 := MannWhitneyU(a, b), MannWhitneyU(b, a); !almostEq(p1, p2, 1e-12) {
		t.Fatalf("asymmetric: %v vs %v", p1, p2)
	}
}

func TestMWUWithTies(t *testing.T) {
	a := []float64{1, 1, 2, 2}
	b := []float64{1, 2, 2, 3}
	p := MannWhitneyU(a, b)
	if p <= 0 || p > 1 {
		t.Fatalf("tied p = %v out of range", p)
	}
}

func TestMWUEmpty(t *testing.T) {
	if p := MannWhitneyU(nil, []float64{1}); p != 1 {
		t.Fatalf("empty p = %v", p)
	}
}

func TestMWUNormalApproxLargeSeparated(t *testing.T) {
	var a, b []float64
	for i := 0; i < 15; i++ {
		a = append(a, 100+float64(i))
		b = append(b, float64(i))
	}
	p := MannWhitneyU(a, b)
	if p > 1e-4 {
		t.Fatalf("large separated p = %v, want tiny", p)
	}
	// And overlapping large samples give a large p.
	var c, d []float64
	for i := 0; i < 15; i++ {
		c = append(c, float64(i))
		d = append(d, float64(i)+0.5)
	}
	if p := MannWhitneyU(c, d); p < 0.05 {
		t.Fatalf("overlapping large p = %v, want > 0.05", p)
	}
}

func TestMWUExactMatchesKnownValue(t *testing.T) {
	// 3 vs 3, complete separation: p = 2/C(6,3) = 0.1 — the classic
	// "cannot reach significance with 3 trials" result.
	a := []float64{4, 5, 6}
	b := []float64{1, 2, 3}
	if p := MannWhitneyU(a, b); !almostEq(p, 0.1, 1e-9) {
		t.Fatalf("3v3 p = %v, want 0.1", p)
	}
}

func TestNormalCDF(t *testing.T) {
	if !almostEq(normalCDF(0), 0.5, 1e-12) {
		t.Fatal("CDF(0)")
	}
	if !almostEq(normalCDF(1.96), 0.975, 1e-3) {
		t.Fatalf("CDF(1.96) = %v", normalCDF(1.96))
	}
}
