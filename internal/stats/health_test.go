package stats

import (
	"bufio"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

func TestHealthLogRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "health.jsonl")
	l, err := OpenHealthLog(path)
	if err != nil {
		t.Fatal(err)
	}
	snaps := []HealthSnapshot{
		{ElapsedSec: 1.5, Execs: 1000, Edges: 42, Corpus: 7, HealthyShards: 4,
			Shards: []ShardHealthRecord{
				{Shard: 0, Execs: 600, ExecRate: 400.5},
				{Shard: 1, Execs: 400, Restarts: 2, LastFault: "kill", Quarantined: true},
			}},
		{ElapsedSec: 3.0, Execs: 2500, Edges: 50, Corpus: 9, HealthyShards: 3},
	}
	for _, s := range snaps {
		if err := l.Append(s); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	var got []HealthSnapshot
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		var s HealthSnapshot
		if err := json.Unmarshal(sc.Bytes(), &s); err != nil {
			t.Fatalf("line %d not valid JSON: %v", len(got)+1, err)
		}
		got = append(got, s)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if len(got) != len(snaps) {
		t.Fatalf("read %d lines, wrote %d", len(got), len(snaps))
	}
	for i, s := range got {
		if s.Time == "" {
			t.Fatalf("line %d: Time not stamped", i+1)
		}
		if s.Execs != snaps[i].Execs || s.Edges != snaps[i].Edges || s.HealthyShards != snaps[i].HealthyShards {
			t.Fatalf("line %d mismatch: %+v vs %+v", i+1, s, snaps[i])
		}
		if len(s.Shards) != len(snaps[i].Shards) {
			t.Fatalf("line %d: %d shard records, want %d", i+1, len(s.Shards), len(snaps[i].Shards))
		}
	}
	if !got[0].Shards[1].Quarantined || got[0].Shards[1].LastFault != "kill" {
		t.Fatalf("shard record fields lost: %+v", got[0].Shards[1])
	}
}

func TestHealthLogStampsTimeOnce(t *testing.T) {
	path := filepath.Join(t.TempDir(), "health.jsonl")
	l, err := OpenHealthLog(path)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	// A caller-provided Time must be preserved verbatim.
	if err := l.Append(HealthSnapshot{Time: "2026-01-02T03:04:05Z"}); err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var s HealthSnapshot
	if err := json.Unmarshal(b, &s); err != nil {
		t.Fatal(err)
	}
	if s.Time != "2026-01-02T03:04:05Z" {
		t.Fatalf("caller timestamp overwritten: %q", s.Time)
	}
}
