// Package stats provides the statistical machinery the evaluation uses:
// the Mann-Whitney U test (exact for the paper's 5-vs-5 trial design,
// normal approximation for larger samples) and summary helpers. With five
// trials per configuration and complete separation, the exact two-sided p
// is 2/C(10,5) = 0.0079 — the ρ the paper reports throughout Table 5.
package stats

import (
	"math"
	"sort"
)

// Mean returns the arithmetic mean (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Median returns the middle value (mean of middle two for even lengths).
func Median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	c := append([]float64(nil), xs...)
	sort.Float64s(c)
	n := len(c)
	if n%2 == 1 {
		return c[n/2]
	}
	return (c[n/2-1] + c[n/2]) / 2
}

// Stddev returns the sample standard deviation.
func Stddev(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	s := 0.0
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return math.Sqrt(s / float64(len(xs)-1))
}

// uStatistic computes the Mann-Whitney U of group a versus group b with
// tie handling (ties count 0.5).
func uStatistic(a, b []float64) float64 {
	u := 0.0
	for _, x := range a {
		for _, y := range b {
			switch {
			case x > y:
				u++
			case x == y:
				u += 0.5
			}
		}
	}
	return u
}

// MannWhitneyU returns the two-sided p-value for the hypothesis that a and
// b come from the same distribution. For n1+n2 <= 20 the exact permutation
// distribution is enumerated (correct under ties); larger samples use the
// normal approximation with tie correction.
func MannWhitneyU(a, b []float64) float64 {
	if len(a) == 0 || len(b) == 0 {
		return 1
	}
	if len(a)+len(b) <= 20 {
		return exactMWU(a, b)
	}
	return approxMWU(a, b)
}

func exactMWU(a, b []float64) float64 {
	n1, n2 := len(a), len(b)
	all := append(append([]float64(nil), a...), b...)
	mu := float64(n1*n2) / 2
	obs := math.Abs(uStatistic(a, b) - mu)

	total := 0
	extreme := 0
	n := n1 + n2
	idx := make([]int, n1)
	// Enumerate all C(n, n1) choices of which observations form group A.
	var rec func(start, k int)
	groupA := make([]float64, n1)
	groupB := make([]float64, 0, n2)
	inA := make([]bool, n)
	var enumerate func(start, k int)
	enumerate = func(start, k int) {
		if k == n1 {
			groupB = groupB[:0]
			for i := 0; i < n; i++ {
				if !inA[i] {
					groupB = append(groupB, all[i])
				}
			}
			for i, j := range idx {
				groupA[i] = all[j]
			}
			total++
			if math.Abs(uStatistic(groupA, groupB)-mu) >= obs-1e-9 {
				extreme++
			}
			return
		}
		for i := start; i <= n-(n1-k); i++ {
			idx[k] = i
			inA[i] = true
			enumerate(i+1, k+1)
			inA[i] = false
		}
	}
	_ = rec
	enumerate(0, 0)
	return float64(extreme) / float64(total)
}

func approxMWU(a, b []float64) float64 {
	n1, n2 := float64(len(a)), float64(len(b))
	u := uStatistic(a, b)
	mu := n1 * n2 / 2

	// Tie correction over the combined sample.
	all := append(append([]float64(nil), a...), b...)
	sort.Float64s(all)
	n := n1 + n2
	tieSum := 0.0
	for i := 0; i < len(all); {
		j := i
		for j < len(all) && all[j] == all[i] {
			j++
		}
		t := float64(j - i)
		if t > 1 {
			tieSum += t*t*t - t
		}
		i = j
	}
	sigma2 := n1 * n2 / 12 * ((n + 1) - tieSum/(n*(n-1)))
	if sigma2 <= 0 {
		return 1
	}
	z := math.Abs(u-mu) / math.Sqrt(sigma2)
	// Continuity correction.
	z = math.Max(0, z-0.5/math.Sqrt(sigma2))
	return 2 * (1 - normalCDF(z))
}

// normalCDF is the standard normal CDF via erf.
func normalCDF(z float64) float64 {
	return 0.5 * (1 + math.Erf(z/math.Sqrt2))
}
