package stats

// Machine-readable campaign health snapshots. closurex-fuzz -stats-json
// appends one JSON object per line (JSON Lines) so external supervisors —
// dashboards, the planned fleet service, harness-degradation monitors — can
// tail the file and watch per-shard health without parsing human output.

import (
	"encoding/json"
	"fmt"
	"os"
	"time"
)

// ShardHealthRecord is one shard's entry in a health snapshot. It mirrors
// fuzz.ShardHealth field-for-field; the stats package owns the wire schema
// so the fuzz engine and external consumers stay decoupled.
type ShardHealthRecord struct {
	Shard             int     `json:"shard"`
	Execs             int64   `json:"execs"`
	Crashes           int64   `json:"crashes"`
	Hangs             int64   `json:"hangs"`
	ExecRate          float64 `json:"exec_rate"`
	Restarts          int64   `json:"restarts"`
	Rebuilds          int64   `json:"rebuilds"`
	RestoreFailures   int64   `json:"restore_failures"`
	ConsecutiveFaults int64   `json:"consecutive_faults"`
	HangEscalations   int64   `json:"hang_escalations"`
	InboxDropped      int64   `json:"inbox_dropped"`
	PendingPublish    int64   `json:"pending_publish"`
	Quarantined       bool    `json:"quarantined"`
	Stalled           bool    `json:"stalled"`
	LastProgress      string  `json:"last_progress,omitempty"` // RFC 3339
	LastFault         string  `json:"last_fault,omitempty"`
	MechDegraded      bool    `json:"mech_degraded"`
}

// HealthSnapshot is one line of the -stats-json stream.
type HealthSnapshot struct {
	Time          string              `json:"time"` // RFC 3339
	ElapsedSec    float64             `json:"elapsed_sec"`
	Execs         int64               `json:"execs"`
	Edges         int                 `json:"edges"`
	Corpus        int                 `json:"corpus"`
	Crashes       int                 `json:"crashes"`
	Hangs         int                 `json:"hangs"`
	Divergences   int                 `json:"divergences"`
	HealthyShards int                 `json:"healthy_shards"`
	Shards        []ShardHealthRecord `json:"shards,omitempty"`
}

// HealthLog appends snapshots to a JSON-lines file. Not safe for concurrent
// Append calls; the CLI's single status loop is the only writer.
type HealthLog struct {
	f *os.File
}

// OpenHealthLog creates (or truncates) the JSON-lines file at path.
func OpenHealthLog(path string) (*HealthLog, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, fmt.Errorf("stats: open health log: %w", err)
	}
	return &HealthLog{f: f}, nil
}

// Append writes one snapshot line, stamping Time if the caller left it
// empty, and flushes it so tailing consumers see complete lines.
func (l *HealthLog) Append(s HealthSnapshot) error {
	if s.Time == "" {
		s.Time = time.Now().UTC().Format(time.RFC3339Nano)
	}
	b, err := json.Marshal(&s)
	if err != nil {
		return fmt.Errorf("stats: marshal health snapshot: %w", err)
	}
	b = append(b, '\n')
	if _, err := l.f.Write(b); err != nil {
		return fmt.Errorf("stats: append health snapshot: %w", err)
	}
	return l.f.Sync()
}

// Close closes the underlying file.
func (l *HealthLog) Close() error { return l.f.Close() }
