package lower

import (
	"testing"

	"closurex/internal/vm"
)

// Tests for the switch and do-while constructs.

func TestSwitchBasicDispatch(t *testing.T) {
	src := `
int classify(int x) {
	switch (x) {
	case 1:
		return 10;
	case 2:
		return 20;
	default:
		return -1;
	}
}
int main(void) {
	return classify(1) * 10000 + classify(2) * 100 + (classify(9) == -1);
}`
	expectRet(t, src, 10*10000+20*100+1)
}

func TestSwitchFallthrough(t *testing.T) {
	src := `
int f(int x) {
	int acc = 0;
	switch (x) {
	case 1:
		acc += 1;
	case 2:
		acc += 2;
	case 3:
		acc += 4;
		break;
	case 4:
		acc += 8;
	}
	return acc;
}
int main(void) {
	// f(1)=1+2+4, f(2)=2+4, f(3)=4, f(4)=8, f(5)=0
	return f(1) * 10000 + f(2) * 1000 + f(3) * 100 + f(4) * 10 + f(5);
}`
	expectRet(t, src, 7*10000+6*1000+4*100+8*10)
}

func TestSwitchStackedLabels(t *testing.T) {
	src := `
int kind(int c) {
	switch (c) {
	case 'a':
	case 'e':
	case 'i':
	case 'o':
	case 'u':
		return 1;
	case ' ':
	case 9:
		return 2;
	default:
		return 0;
	}
}
int main(void) {
	return kind('a') * 100 + kind(' ') * 10 + kind('z');
}`
	expectRet(t, src, 120)
}

func TestSwitchDefaultFirstAndFallthrough(t *testing.T) {
	src := `
int f(int x) {
	int r = 0;
	switch (x) {
	default:
		r += 100;
	case 7:
		r += 7;
	}
	return r;
}
int main(void) {
	// f(7) hits only case 7; anything else hits default then falls into 7.
	return f(7) * 1000 + f(0);
}`
	expectRet(t, src, 7*1000+107)
}

func TestSwitchBreakVsLoopContinue(t *testing.T) {
	src := `
int main(void) {
	int total = 0;
	for (int i = 0; i < 6; i++) {
		switch (i % 3) {
		case 0:
			continue;      // continues the for loop, as in C
		case 1:
			total += 10;
			break;         // leaves the switch only
		default:
			total += 1;
		}
		total += 100;      // runs for i%3 != 0
	}
	return total;
}`
	// i=0,3: continue. i=1,4: +10+100. i=2,5: +1+100. => 2*110 + 2*101
	expectRet(t, src, 2*110+2*101)
}

func TestSwitchEmptyAndNoMatch(t *testing.T) {
	expectRet(t, `
int main(void) {
	switch (42) { }
	switch (42) { case 1: return -1; }
	return 5;
}`, 5)
}

func TestSwitchConstExprLabels(t *testing.T) {
	expectRet(t, `
int main(void) {
	switch (12) {
	case 3 * 4:
		return 1;
	case 1 << 4:
		return 2;
	}
	return 0;
}`, 1)
}

func TestSwitchErrors(t *testing.T) {
	cases := map[string]string{
		"nonconst label": `int g; int main(void) { switch (1) { case g: return 0; } return 0; }`,
		"dup default":    `int main(void) { switch (1) { default: return 0; default: return 1; } }`,
		"stray stmt":     `int main(void) { switch (1) { return 0; } }`,
		"missing colon":  `int main(void) { switch (1) { case 1 return 0; } }`,
		"unterminated":   `int main(void) { switch (1) { case 1: return 0;`,
	}
	for name, src := range cases {
		if _, err := Compile("t.c", src, vm.Builtins()); err == nil {
			t.Errorf("%s: compiled, want error", name)
		}
	}
}

func TestDoWhileRunsBodyFirst(t *testing.T) {
	expectRet(t, `
int main(void) {
	int n = 0;
	do {
		n++;
	} while (0);
	int m = 0;
	do {
		m++;
	} while (m < 5);
	return n * 10 + m;
}`, 15)
}

func TestDoWhileBreakContinue(t *testing.T) {
	expectRet(t, `
int main(void) {
	int i = 0;
	int sum = 0;
	do {
		i++;
		if (i % 2 == 0) continue;  // jumps to the condition
		if (i > 9) break;
		sum += i;
	} while (i < 100);
	return sum;
}`, 1+3+5+7+9)
}

func TestSwitchInsideDoWhile(t *testing.T) {
	expectRet(t, `
int main(void) {
	int state = 0;
	int steps = 0;
	do {
		steps++;
		switch (state) {
		case 0:
			state = 2;
			break;
		case 2:
			state = 1;
			break;
		case 1:
			state = 3;
			break;
		}
	} while (state != 3 && steps < 50);
	return state * 100 + steps;
}`, 303)
}
