package lower

import (
	"closurex/internal/ir"
	"closurex/internal/minc"
)

// value is a scalar rvalue held in a register, with its MinC type (which
// drives pointer scaling and store widths).
type value struct {
	ty  *minc.Type
	reg int
}

// lvalue designates a storable location: either a register-resident scalar
// variable or an address (register + static offset) with the element type.
type lvalue struct {
	ty    *minc.Type
	isReg bool
	reg   int   // register-resident variable
	addr  int   // register holding the base address
	off   int64 // static offset added to addr
}

// exprScalar lowers e and requires a scalar result.
func (fl *funcLower) exprScalar(e minc.Expr) (value, error) {
	v, err := fl.expr(e)
	if err != nil {
		return value{}, err
	}
	if !v.ty.IsScalar() && v.ty.Kind != minc.TArray {
		return value{}, fl.errf(e.Pos(), "expected scalar value, have %s", v.ty)
	}
	return v, nil
}

// expr lowers an rvalue. Arrays decay to pointers; struct rvalues are
// rejected (access members instead).
func (fl *funcLower) expr(e minc.Expr) (value, error) {
	fl.b.SetPos(e.Pos())
	switch x := e.(type) {
	case *minc.IntLit:
		return value{ty: minc.TypeInt, reg: fl.b.Const(x.Val)}, nil
	case *minc.StrLit:
		idx := fl.l.internString(x.Val)
		return value{ty: minc.PtrTo(minc.TypeChar), reg: fl.b.GlobalAddr(idx)}, nil
	case *minc.SizeofExpr:
		return value{ty: minc.TypeInt, reg: fl.b.Const(x.T.Size())}, nil
	case *minc.Ident, *minc.Index, *minc.Member:
		lv, err := fl.lvalueOf(e)
		if err != nil {
			return value{}, err
		}
		return fl.loadLValue(e.Pos(), lv)
	case *minc.Unary:
		return fl.unary(x)
	case *minc.Binary:
		return fl.binary(x)
	case *minc.AssignExpr:
		return fl.assign(x)
	case *minc.Cond:
		return fl.cond(x)
	case *minc.IncDec:
		return fl.incDec(x)
	case *minc.Call:
		return fl.call(x)
	case *minc.CastExpr:
		v, err := fl.expr(x.X)
		if err != nil {
			return value{}, err
		}
		if x.T.Kind == minc.TChar {
			return value{ty: minc.TypeChar, reg: fl.b.Bin(ir.And, v.reg, fl.b.Const(0xff))}, nil
		}
		if x.T.Kind == minc.TVoid {
			return value{ty: minc.TypeInt, reg: v.reg}, nil
		}
		return value{ty: x.T, reg: v.reg}, nil
	case *minc.InitList:
		return value{}, fl.errf(x.Line, "brace initializer not allowed here")
	}
	return value{}, fl.errf(e.Pos(), "lower: unknown expression %T", e)
}

// lvalueOf resolves a storable location.
func (fl *funcLower) lvalueOf(e minc.Expr) (lvalue, error) {
	fl.b.SetPos(e.Pos())
	switch x := e.(type) {
	case *minc.Ident:
		if lo := fl.lookup(x.Name); lo != nil {
			if lo.inFrame {
				return lvalue{ty: lo.ty, addr: fl.b.FrameAddr(lo.off)}, nil
			}
			return lvalue{ty: lo.ty, isReg: true, reg: lo.reg}, nil
		}
		if g, ok := fl.l.info.Globals[x.Name]; ok {
			idx := fl.l.gblIdx[x.Name]
			return lvalue{ty: g.Type, addr: fl.b.GlobalAddr(idx)}, nil
		}
		return lvalue{}, fl.errf(x.Line, "undefined identifier %q", x.Name)
	case *minc.Unary:
		if x.Op != minc.Star {
			return lvalue{}, fl.errf(x.Line, "expression is not an lvalue")
		}
		v, err := fl.expr(x.X)
		if err != nil {
			return lvalue{}, err
		}
		elem := minc.TypeChar
		if v.ty.Kind == minc.TPtr || v.ty.Kind == minc.TArray {
			elem = v.ty.Elem
		} else if v.ty.Kind != minc.TInt {
			return lvalue{}, fl.errf(x.Line, "cannot dereference %s", v.ty)
		}
		return lvalue{ty: elem, addr: v.reg}, nil
	case *minc.Index:
		base, err := fl.expr(x.Base)
		if err != nil {
			return lvalue{}, err
		}
		if base.ty.Kind != minc.TPtr && base.ty.Kind != minc.TArray {
			return lvalue{}, fl.errf(x.Line, "indexing non-pointer %s", base.ty)
		}
		idx, err := fl.exprScalar(x.Idx)
		if err != nil {
			return lvalue{}, err
		}
		elem := base.ty.Elem
		scaled := idx.reg
		if elem.Size() != 1 {
			scaled = fl.b.Bin(ir.Mul, idx.reg, fl.b.Const(elem.Size()))
		}
		return lvalue{ty: elem, addr: fl.b.Bin(ir.Add, base.reg, scaled)}, nil
	case *minc.Member:
		return fl.memberLValue(x)
	case *minc.CastExpr:
		return lvalue{}, fl.errf(x.Line, "cast expression is not an lvalue")
	}
	return lvalue{}, fl.errf(e.Pos(), "expression is not an lvalue")
}

func (fl *funcLower) memberLValue(x *minc.Member) (lvalue, error) {
	var sd *minc.StructDef
	var base lvalue
	if x.Arrow {
		v, err := fl.expr(x.Base)
		if err != nil {
			return lvalue{}, err
		}
		if v.ty.Kind != minc.TPtr || v.ty.Elem.Kind != minc.TStruct {
			return lvalue{}, fl.errf(x.Line, "-> on non-struct-pointer %s", v.ty)
		}
		sd = v.ty.Elem.Struct
		base = lvalue{ty: v.ty.Elem, addr: v.reg}
	} else {
		lv, err := fl.lvalueOf(x.Base)
		if err != nil {
			return lvalue{}, err
		}
		if lv.ty.Kind != minc.TStruct || lv.isReg {
			return lvalue{}, fl.errf(x.Line, ". on non-struct %s", lv.ty)
		}
		sd = lv.ty.Struct
		base = lv
	}
	f := sd.Field(x.Field)
	if f == nil {
		return lvalue{}, fl.errf(x.Line, "struct %s has no field %q", sd.Name, x.Field)
	}
	return lvalue{ty: f.Type, addr: base.addr, off: base.off + f.Offset}, nil
}

// loadLValue materializes an rvalue from a location. Arrays decay to a
// pointer to their first element; struct loads are rejected.
func (fl *funcLower) loadLValue(line int32, lv lvalue) (value, error) {
	if lv.isReg {
		return value{ty: lv.ty, reg: lv.reg}, nil
	}
	switch lv.ty.Kind {
	case minc.TArray:
		return value{ty: minc.PtrTo(lv.ty.Elem), reg: fl.addrReg(lv)}, nil
	case minc.TStruct:
		return value{}, fl.errf(line, "struct value used as scalar; access a member")
	}
	return value{ty: lv.ty, reg: fl.b.Load(lv.addr, lv.off, lv.ty.AccessSize())}, nil
}

// addrReg returns a register holding the lvalue's address.
func (fl *funcLower) addrReg(lv lvalue) int {
	if lv.off == 0 {
		return lv.addr
	}
	return fl.b.Bin(ir.Add, lv.addr, fl.b.Const(lv.off))
}

// storeLValue writes v into the location.
func (fl *funcLower) storeLValue(line int32, lv lvalue, v int) error {
	if lv.isReg {
		fl.storeToReg(&local{reg: lv.reg, ty: lv.ty}, v)
		return nil
	}
	if !lv.ty.IsScalar() {
		return fl.errf(line, "cannot assign to aggregate %s", lv.ty)
	}
	fl.b.Store(lv.addr, v, lv.off, lv.ty.AccessSize())
	return nil
}

// storeToReg moves v into a register-resident variable, truncating chars.
func (fl *funcLower) storeToReg(lo *local, v int) {
	if lo.ty.Kind == minc.TChar {
		v = fl.b.Bin(ir.And, v, fl.b.Const(0xff))
	}
	fl.b.Mov(lo.reg, v)
}

// ---- Operators ----

func (fl *funcLower) unary(x *minc.Unary) (value, error) {
	switch x.Op {
	case minc.Minus:
		v, err := fl.exprScalar(x.X)
		if err != nil {
			return value{}, err
		}
		return value{ty: minc.TypeInt, reg: fl.b.Un(ir.Neg, v.reg)}, nil
	case minc.Bang:
		v, err := fl.exprScalar(x.X)
		if err != nil {
			return value{}, err
		}
		return value{ty: minc.TypeInt, reg: fl.b.Un(ir.Not, v.reg)}, nil
	case minc.Tilde:
		v, err := fl.exprScalar(x.X)
		if err != nil {
			return value{}, err
		}
		return value{ty: minc.TypeInt, reg: fl.b.Un(ir.BNot, v.reg)}, nil
	case minc.Star:
		lv, err := fl.lvalueOf(x)
		if err != nil {
			return value{}, err
		}
		return fl.loadLValue(x.Line, lv)
	case minc.Amp:
		lv, err := fl.lvalueOf(x.X)
		if err != nil {
			return value{}, err
		}
		if lv.isReg {
			return value{}, fl.errf(x.Line, "cannot take address of register variable")
		}
		return value{ty: minc.PtrTo(lv.ty), reg: fl.addrReg(lv)}, nil
	}
	return value{}, fl.errf(x.Line, "unknown unary operator %s", x.Op)
}

var binOpMap = map[minc.Kind]ir.BinOp{
	minc.Plus: ir.Add, minc.Minus: ir.Sub, minc.Star: ir.Mul,
	minc.Slash: ir.Div, minc.Percent: ir.Rem, minc.Shl: ir.Shl,
	minc.Shr: ir.Shr, minc.Amp: ir.And, minc.Pipe: ir.Or,
	minc.Caret: ir.Xor, minc.EqEq: ir.Eq, minc.NotEq: ir.Ne,
	minc.Lt: ir.Lt, minc.LtEq: ir.Le, minc.Gt: ir.Gt, minc.GtEq: ir.Ge,
}

// unsigned comparison counterparts, used when either operand is a pointer.
var binOpUnsigned = map[ir.BinOp]ir.BinOp{
	ir.Lt: ir.Ult, ir.Le: ir.Ule, ir.Gt: ir.Ugt, ir.Ge: ir.Uge,
}

func isPtrish(t *minc.Type) bool {
	return t.Kind == minc.TPtr || t.Kind == minc.TArray
}

func (fl *funcLower) binary(x *minc.Binary) (value, error) {
	if x.Op == minc.AndAnd || x.Op == minc.OrOr {
		return fl.shortCircuit(x)
	}
	a, err := fl.exprScalar(x.X)
	if err != nil {
		return value{}, err
	}
	b, err := fl.exprScalar(x.Y)
	if err != nil {
		return value{}, err
	}
	op, ok := binOpMap[x.Op]
	if !ok {
		return value{}, fl.errf(x.Line, "unknown binary operator %s", x.Op)
	}
	// Pointer arithmetic scaling.
	if x.Op == minc.Plus || x.Op == minc.Minus {
		switch {
		case isPtrish(a.ty) && !isPtrish(b.ty):
			sz := a.ty.Elem.Size()
			rhs := b.reg
			if sz != 1 {
				rhs = fl.b.Bin(ir.Mul, b.reg, fl.b.Const(sz))
			}
			return value{ty: ptrType(a.ty), reg: fl.b.Bin(op, a.reg, rhs)}, nil
		case !isPtrish(a.ty) && isPtrish(b.ty) && x.Op == minc.Plus:
			sz := b.ty.Elem.Size()
			lhs := a.reg
			if sz != 1 {
				lhs = fl.b.Bin(ir.Mul, a.reg, fl.b.Const(sz))
			}
			return value{ty: ptrType(b.ty), reg: fl.b.Bin(op, lhs, b.reg)}, nil
		case isPtrish(a.ty) && isPtrish(b.ty) && x.Op == minc.Minus:
			diff := fl.b.Bin(ir.Sub, a.reg, b.reg)
			sz := a.ty.Elem.Size()
			if sz != 1 {
				diff = fl.b.Bin(ir.Div, diff, fl.b.Const(sz))
			}
			return value{ty: minc.TypeInt, reg: diff}, nil
		}
	}
	// Pointer comparisons are unsigned.
	if u, isCmp := binOpUnsigned[op]; isCmp && (isPtrish(a.ty) || isPtrish(b.ty)) {
		op = u
	}
	return value{ty: minc.TypeInt, reg: fl.b.Bin(op, a.reg, b.reg)}, nil
}

func ptrType(t *minc.Type) *minc.Type {
	if t.Kind == minc.TArray {
		return minc.PtrTo(t.Elem)
	}
	return t
}

// shortCircuit lowers && and || with proper control flow.
func (fl *funcLower) shortCircuit(x *minc.Binary) (value, error) {
	res := fl.b.NewReg()
	a, err := fl.exprScalar(x.X)
	if err != nil {
		return value{}, err
	}
	evalY := fl.b.NewBlock()
	short := fl.b.NewBlock()
	join := fl.b.NewBlock()
	if x.Op == minc.AndAnd {
		fl.b.CondBr(a.reg, evalY, short)
	} else {
		fl.b.CondBr(a.reg, short, evalY)
	}
	fl.b.SetBlock(short)
	if x.Op == minc.AndAnd {
		fl.b.Mov(res, fl.b.Const(0))
	} else {
		fl.b.Mov(res, fl.b.Const(1))
	}
	fl.b.Br(join)
	fl.b.SetBlock(evalY)
	bv, err := fl.exprScalar(x.Y)
	if err != nil {
		return value{}, err
	}
	norm := fl.b.Bin(ir.Ne, bv.reg, fl.b.Const(0))
	fl.b.Mov(res, norm)
	fl.b.Br(join)
	fl.b.SetBlock(join)
	return value{ty: minc.TypeInt, reg: res}, nil
}

func (fl *funcLower) cond(x *minc.Cond) (value, error) {
	res := fl.b.NewReg()
	c, err := fl.exprScalar(x.C)
	if err != nil {
		return value{}, err
	}
	thenB := fl.b.NewBlock()
	elseB := fl.b.NewBlock()
	join := fl.b.NewBlock()
	fl.b.CondBr(c.reg, thenB, elseB)
	fl.b.SetBlock(thenB)
	tv, err := fl.exprScalar(x.T)
	if err != nil {
		return value{}, err
	}
	fl.b.Mov(res, tv.reg)
	fl.b.Br(join)
	fl.b.SetBlock(elseB)
	fv, err := fl.exprScalar(x.F)
	if err != nil {
		return value{}, err
	}
	fl.b.Mov(res, fv.reg)
	fl.b.Br(join)
	fl.b.SetBlock(join)
	ty := tv.ty
	if !isPtrish(ty) {
		ty = minc.TypeInt
	}
	return value{ty: ty, reg: res}, nil
}

var compoundOps = map[minc.Kind]minc.Kind{
	minc.PlusEq: minc.Plus, minc.MinusEq: minc.Minus, minc.StarEq: minc.Star,
	minc.SlashEq: minc.Slash, minc.PercentEq: minc.Percent,
	minc.AmpEq: minc.Amp, minc.PipeEq: minc.Pipe, minc.CaretEq: minc.Caret,
	minc.ShlEq: minc.Shl, minc.ShrEq: minc.Shr,
}

func (fl *funcLower) assign(x *minc.AssignExpr) (value, error) {
	lv, err := fl.lvalueOf(x.LHS)
	if err != nil {
		return value{}, err
	}
	if x.Op == minc.Assign {
		rhs, err := fl.exprScalar(x.RHS)
		if err != nil {
			return value{}, err
		}
		if err := fl.storeLValue(x.Line, lv, rhs.reg); err != nil {
			return value{}, err
		}
		return value{ty: lv.ty, reg: rhs.reg}, nil
	}
	baseOp := compoundOps[x.Op]
	cur, err := fl.loadLValue(x.Line, lv)
	if err != nil {
		return value{}, err
	}
	rhs, err := fl.exprScalar(x.RHS)
	if err != nil {
		return value{}, err
	}
	var resReg int
	// Pointer += / -= scale like pointer arithmetic.
	if (baseOp == minc.Plus || baseOp == minc.Minus) && isPtrish(cur.ty) {
		sz := cur.ty.Elem.Size()
		r := rhs.reg
		if sz != 1 {
			r = fl.b.Bin(ir.Mul, rhs.reg, fl.b.Const(sz))
		}
		if baseOp == minc.Plus {
			resReg = fl.b.Bin(ir.Add, cur.reg, r)
		} else {
			resReg = fl.b.Bin(ir.Sub, cur.reg, r)
		}
	} else {
		op, ok := binOpMap[baseOp]
		if !ok {
			return value{}, fl.errf(x.Line, "unknown compound operator")
		}
		resReg = fl.b.Bin(op, cur.reg, rhs.reg)
	}
	if err := fl.storeLValue(x.Line, lv, resReg); err != nil {
		return value{}, err
	}
	return value{ty: lv.ty, reg: resReg}, nil
}

func (fl *funcLower) incDec(x *minc.IncDec) (value, error) {
	lv, err := fl.lvalueOf(x.X)
	if err != nil {
		return value{}, err
	}
	cur, err := fl.loadLValue(x.Line, lv)
	if err != nil {
		return value{}, err
	}
	// Keep the old value in a dedicated register: the variable's register
	// may alias cur.reg for register-resident scalars.
	old := fl.b.NewReg()
	fl.b.Mov(old, cur.reg)
	step := int64(1)
	if isPtrish(cur.ty) {
		step = cur.ty.Elem.Size()
	}
	var upd int
	if x.Op == minc.PlusPlus {
		upd = fl.b.Bin(ir.Add, old, fl.b.Const(step))
	} else {
		upd = fl.b.Bin(ir.Sub, old, fl.b.Const(step))
	}
	if err := fl.storeLValue(x.Line, lv, upd); err != nil {
		return value{}, err
	}
	if x.Post {
		return value{ty: cur.ty, reg: old}, nil
	}
	return value{ty: cur.ty, reg: upd}, nil
}

func (fl *funcLower) call(x *minc.Call) (value, error) {
	fn, isFn := fl.l.info.Funcs[x.Name]
	if !isFn && !fl.l.builtins[x.Name] {
		return value{}, fl.errf(x.Line, "call of undefined function %q", x.Name)
	}
	if isFn && len(x.Args) != len(fn.Params) {
		return value{}, fl.errf(x.Line, "call of %q with %d args, want %d",
			x.Name, len(x.Args), len(fn.Params))
	}
	args := make([]int, len(x.Args))
	for i, a := range x.Args {
		v, err := fl.exprScalar(a)
		if err != nil {
			return value{}, err
		}
		args[i] = v.reg
	}
	fl.b.SetPos(x.Line)
	ret := fl.b.Call(x.Name, args...)
	ty := minc.TypeInt
	if isFn {
		if fn.Ret.IsScalar() {
			ty = fn.Ret
		}
	} else if retTy, ok := builtinRetTypes[x.Name]; ok {
		ty = retTy
	}
	return value{ty: ty, reg: ret}, nil
}

// builtinRetTypes gives pointer-returning builtins a pointer type so that
// subsequent arithmetic scales correctly. char* keeps byte-granular math.
var builtinRetTypes = map[string]*minc.Type{
	"malloc":           minc.PtrTo(minc.TypeChar),
	"calloc":           minc.PtrTo(minc.TypeChar),
	"realloc":          minc.PtrTo(minc.TypeChar),
	"closurex_malloc":  minc.PtrTo(minc.TypeChar),
	"closurex_calloc":  minc.PtrTo(minc.TypeChar),
	"closurex_realloc": minc.PtrTo(minc.TypeChar),
	"memcpy":           minc.PtrTo(minc.TypeChar),
	"memmove":          minc.PtrTo(minc.TypeChar),
	"memset":           minc.PtrTo(minc.TypeChar),
	"strcpy":           minc.PtrTo(minc.TypeChar),
}
