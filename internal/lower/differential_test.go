package lower

import (
	"fmt"
	"strings"
	"testing"

	"closurex/internal/fuzz"
	"closurex/internal/vm"
)

// This file differentially tests the whole compiler+VM stack: small MinC
// programs are generated at random alongside a Go model that computes the
// same result; any divergence is a codegen or interpreter bug.

// genProgram builds a random straight-line-plus-loops program over three
// int variables and returns (source, expected result).
func genProgram(rng *fuzz.RNG) (string, int64) {
	var sb strings.Builder
	sb.WriteString("int main(void) {\n")
	vars := []string{"a", "b", "c"}
	state := map[string]int64{}
	for _, v := range vars {
		init := int64(int32(rng.Uint64()))
		fmt.Fprintf(&sb, "\tint %s = %d;\n", v, init)
		state[v] = init
	}
	nStmts := 3 + rng.Intn(10)
	for i := 0; i < nStmts; i++ {
		switch rng.Intn(5) {
		case 0: // compound arithmetic
			dst := vars[rng.Intn(3)]
			src := vars[rng.Intn(3)]
			k := int64(rng.Intn(1000)) + 1
			switch rng.Intn(4) {
			case 0:
				fmt.Fprintf(&sb, "\t%s += %s + %d;\n", dst, src, k)
				state[dst] += state[src] + k
			case 1:
				fmt.Fprintf(&sb, "\t%s -= %s ^ %d;\n", dst, src, k)
				state[dst] -= state[src] ^ k
			case 2:
				fmt.Fprintf(&sb, "\t%s = %s * %d;\n", dst, src, k)
				state[dst] = state[src] * k
			case 3:
				fmt.Fprintf(&sb, "\t%s &= %s | %d;\n", dst, src, k)
				state[dst] &= state[src] | k
			}
		case 1: // bounded for loop
			n := rng.Intn(8) + 1
			dst := vars[rng.Intn(3)]
			step := int64(rng.Intn(50)) - 25
			fmt.Fprintf(&sb, "\tfor (int i = 0; i < %d; i++) %s += %d;\n", n, dst, step)
			state[dst] += int64(n) * step
		case 2: // conditional
			cond := vars[rng.Intn(3)]
			dst := vars[rng.Intn(3)]
			k := int64(rng.Intn(100))
			fmt.Fprintf(&sb, "\tif (%s > 0) %s ^= %d; else %s += 1;\n", cond, dst, k, dst)
			if state[cond] > 0 {
				state[dst] ^= k
			} else {
				state[dst]++
			}
		case 3: // shift and mask
			dst := vars[rng.Intn(3)]
			sh := rng.Intn(16) + 1
			fmt.Fprintf(&sb, "\t%s = (%s >> %d) & 0xffff;\n", dst, dst, sh)
			state[dst] = (state[dst] >> uint(sh)) & 0xffff
		case 4: // ternary
			a, b2 := vars[rng.Intn(3)], vars[rng.Intn(3)]
			dst := vars[rng.Intn(3)]
			fmt.Fprintf(&sb, "\t%s = %s < %s ? %s : %s;\n", dst, a, b2, a, b2)
			if state[a] < state[b2] {
				state[dst] = state[a]
			} else {
				state[dst] = state[b2]
			}
		}
	}
	// Collapse to a bounded result so every program returns a comparable
	// scalar.
	sb.WriteString("\treturn (a ^ b ^ c) & 0xffffff;\n}\n")
	want := (state["a"] ^ state["b"] ^ state["c"]) & 0xffffff
	return sb.String(), want
}

func TestRandomProgramDifferential(t *testing.T) {
	rng := fuzz.NewRNG(0xD1FF)
	for i := 0; i < 150; i++ {
		src, want := genProgram(rng)
		mod, err := Compile("gen.c", src, vm.Builtins())
		if err != nil {
			t.Fatalf("program %d failed to compile: %v\n%s", i, err, src)
		}
		machine, err := vm.New(mod, vm.Options{})
		if err != nil {
			t.Fatal(err)
		}
		res := machine.Call("main")
		if res.Fault != nil {
			t.Fatalf("program %d faulted: %v\n%s", i, res.Fault, src)
		}
		if res.Ret != want {
			t.Fatalf("program %d = %d, model says %d\n%s", i, res.Ret, want, src)
		}
	}
}

// genPointerProgram exercises arrays and pointer arithmetic against a Go
// slice model.
func genPointerProgram(rng *fuzz.RNG) (string, int64) {
	n := 4 + rng.Intn(12)
	var sb strings.Builder
	fmt.Fprintf(&sb, "int main(void) {\n\tint buf[%d];\n", n)
	model := make([]int64, n)
	fmt.Fprintf(&sb, "\tfor (int i = 0; i < %d; i++) buf[i] = i * 3;\n", n)
	for i := range model {
		model[i] = int64(i) * 3
	}
	ops := 2 + rng.Intn(6)
	for i := 0; i < ops; i++ {
		a, b := rng.Intn(n), rng.Intn(n)
		switch rng.Intn(3) {
		case 0:
			fmt.Fprintf(&sb, "\tbuf[%d] += buf[%d];\n", a, b)
			model[a] += model[b]
		case 1:
			fmt.Fprintf(&sb, "\t{ int *p = buf + %d; *p = *p * 2 + 1; }\n", a)
			model[a] = model[a]*2 + 1
		case 2:
			fmt.Fprintf(&sb, "\t{ int *p = &buf[%d]; int *q = &buf[%d]; *p ^= *q; }\n", a, b)
			model[a] ^= model[b]
		}
	}
	sb.WriteString("\tint sum = 0;\n")
	fmt.Fprintf(&sb, "\tfor (int i = 0; i < %d; i++) sum += buf[i] * (i + 1);\n", n)
	var want int64
	for i, v := range model {
		want += v * int64(i+1)
	}
	sb.WriteString("\treturn sum & 0x7fffffff;\n}\n")
	return sb.String(), want & 0x7fffffff
}

func TestRandomPointerProgramDifferential(t *testing.T) {
	rng := fuzz.NewRNG(0xA11A)
	for i := 0; i < 100; i++ {
		src, want := genPointerProgram(rng)
		mod, err := Compile("genptr.c", src, vm.Builtins())
		if err != nil {
			t.Fatalf("program %d: %v\n%s", i, err, src)
		}
		machine, _ := vm.New(mod, vm.Options{})
		res := machine.Call("main")
		if res.Fault != nil {
			t.Fatalf("program %d faulted: %v\n%s", i, res.Fault, src)
		}
		if res.Ret != want {
			t.Fatalf("program %d = %d, model says %d\n%s", i, res.Ret, want, src)
		}
	}
}

// TestWhileDoControlFlowTorture runs a handful of tricky control-flow
// shapes with known answers.
func TestControlFlowTorture(t *testing.T) {
	cases := []struct {
		name string
		src  string
		want int64
	}{
		{"nested breaks", `
int main(void) {
	int hits = 0;
	for (int i = 0; i < 10; i++) {
		int j = 0;
		while (1) {
			j++;
			if (j > i) break;
			hits++;
			if (hits > 30) break;
		}
		if (hits > 30) break;
	}
	return hits;
}`, 31},
		{"continue in while", `
int main(void) {
	int i = 0;
	int n = 0;
	while (i < 20) {
		i++;
		if (i % 3) continue;
		n += i;
	}
	return n;
}`, 3 + 6 + 9 + 12 + 15 + 18},
		{"short circuit with side effects", `
int g;
int tick(int r) { g++; return r; }
int main(void) {
	g = 0;
	int r = 0;
	for (int i = 0; i < 4; i++) {
		if (i % 2 == 0 && tick(1)) r += 10;
		if (i % 2 == 1 || tick(0)) r += 1;
	}
	return r * 100 + g;
}`, 2204},
		{"deep ternary chain", `
int classify(int x) {
	return x < 10 ? 1 : x < 100 ? 2 : x < 1000 ? 3 : 4;
}
int main(void) {
	return classify(5) * 1000 + classify(50) * 100 + classify(500) * 10 + classify(5000);
}`, 1234},
		{"logical ops as values", `
int main(void) {
	int a = 5 && 3;
	int b = 0 || 7;
	int c = !(a && b);
	return a * 100 + b * 10 + c;
}`, 110},
		{"goto-free state machine", `
int main(void) {
	int state = 0;
	int steps = 0;
	while (state != 3 && steps < 100) {
		steps++;
		if (state == 0) state = 2;
		else if (state == 2) state = 1;
		else if (state == 1) state = 3;
	}
	return state * 100 + steps;
}`, 303},
	}
	for _, c := range cases {
		c := c
		t.Run(c.name, func(t *testing.T) {
			mod, err := Compile("t.c", c.src, vm.Builtins())
			if err != nil {
				t.Fatal(err)
			}
			machine, _ := vm.New(mod, vm.Options{})
			res := machine.Call("main")
			if res.Fault != nil {
				t.Fatalf("fault: %v", res.Fault)
			}
			if res.Ret != c.want {
				t.Fatalf("got %d, want %d", res.Ret, c.want)
			}
		})
	}
}
