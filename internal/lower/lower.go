// Package lower translates MinC ASTs into ClosureX IR — the analogue of
// clang emitting LLVM IR in the paper's toolchain. Typing is C-like and
// permissive: every scalar lives in a 64-bit register, chars are unsigned
// bytes truncated at stores, pointers scale arithmetic by element size, and
// const globals plus string literals are placed in .rodata so the
// GlobalPass has the same section picture Figure 3 shows.
package lower

import (
	"fmt"

	"closurex/internal/ir"
	"closurex/internal/minc"
)

// Compile parses, analyzes and lowers MinC source into a verified IR
// module. builtins names the runtime routines calls may resolve to.
func Compile(file, src string, builtins map[string]bool) (*ir.Module, error) {
	prog, err := minc.Parse(file, src)
	if err != nil {
		return nil, err
	}
	info, err := minc.Analyze(prog)
	if err != nil {
		return nil, err
	}
	return Lower(info, builtins)
}

// Lower translates an analyzed program.
func Lower(info *minc.ProgramInfo, builtins map[string]bool) (*ir.Module, error) {
	l := &lowerer{
		info:     info,
		mod:      ir.NewModule(info.Prog.File),
		builtins: builtins,
		strIdx:   make(map[string]int),
		gblIdx:   make(map[string]int),
	}
	if err := l.lowerGlobals(); err != nil {
		return nil, err
	}
	for _, f := range info.Prog.Funcs {
		fn, err := l.lowerFunc(f)
		if err != nil {
			return nil, err
		}
		if err := l.mod.AddFunc(fn); err != nil {
			return nil, l.errf(f.Line, "%v", err)
		}
	}
	if err := ir.Verify(l.mod, builtins); err != nil {
		return nil, err
	}
	return l.mod, nil
}

type lowerer struct {
	info     *minc.ProgramInfo
	mod      *ir.Module
	builtins map[string]bool
	strIdx   map[string]int // string literal -> global index
	gblIdx   map[string]int // global name -> global index
}

func (l *lowerer) errf(line int32, format string, args ...interface{}) error {
	return &minc.Error{File: l.info.Prog.File, Line: line, Msg: fmt.Sprintf(format, args...)}
}

// ---- Globals ----

func (l *lowerer) lowerGlobals() error {
	for _, g := range l.info.Prog.Globals {
		init, err := l.globalInitBytes(g)
		if err != nil {
			return err
		}
		section := ir.SectionData
		if g.Const {
			section = ir.SectionRodata
		}
		idx := l.mod.AddGlobal(&ir.Global{
			Name:    g.Name,
			Size:    g.Type.Size(),
			Init:    init,
			Const:   g.Const,
			Section: section,
		})
		l.gblIdx[g.Name] = idx
	}
	return nil
}

func (l *lowerer) globalInitBytes(g *minc.GlobalDecl) ([]byte, error) {
	if g.Init == nil {
		return nil, nil
	}
	switch init := g.Init.(type) {
	case *minc.StrLit:
		return append([]byte(init.Val), 0), nil
	case *minc.InitList:
		elemSize := g.Type.Elem.Size()
		buf := make([]byte, int64(len(init.Elems))*elemSize)
		for i, e := range init.Elems {
			v, err := minc.EvalConst(e)
			if err != nil {
				return nil, l.errf(g.Line, "global %q: %v", g.Name, err)
			}
			putLE(buf[int64(i)*elemSize:], uint64(v), int(elemSize))
		}
		return buf, nil
	default:
		v, err := minc.EvalConst(g.Init)
		if err != nil {
			return nil, l.errf(g.Line, "global %q: %v", g.Name, err)
		}
		sz := g.Type.Size()
		buf := make([]byte, sz)
		putLE(buf, uint64(v), int(sz))
		return buf, nil
	}
}

func putLE(dst []byte, v uint64, n int) {
	for i := 0; i < n; i++ {
		dst[i] = byte(v >> (8 * i))
	}
}

// internString returns the global index of a rodata NUL-terminated copy of
// s, deduplicated.
func (l *lowerer) internString(s string) int {
	if idx, ok := l.strIdx[s]; ok {
		return idx
	}
	idx := l.mod.AddGlobal(&ir.Global{
		Name:    fmt.Sprintf(".str.%d", len(l.strIdx)),
		Size:    int64(len(s) + 1),
		Init:    append([]byte(s), 0),
		Const:   true,
		Section: ir.SectionRodata,
	})
	l.strIdx[s] = idx
	return idx
}

// ---- Function lowering ----

// local describes one resolved local variable.
type local struct {
	name    string
	ty      *minc.Type
	inFrame bool
	reg     int   // register-resident scalar
	off     int64 // frame offset when inFrame
}

type funcLower struct {
	l      *lowerer
	b      *ir.Builder
	decl   *minc.FuncDecl
	scopes []map[string]*local
	// addrTaken names locals that appear under & anywhere in the function
	// (conservatively by name), which forces frame residency.
	addrTaken map[string]bool
	breaks    []int
	conts     []int
}

func (l *lowerer) lowerFunc(decl *minc.FuncDecl) (*ir.Func, error) {
	fl := &funcLower{
		l:         l,
		b:         ir.NewBuilder(decl.Name, len(decl.Params)),
		decl:      decl,
		addrTaken: map[string]bool{},
	}
	collectAddrTaken(decl.Body, fl.addrTaken)
	fl.pushScope()
	// Bind parameters. Address-taken params are spilled to the frame.
	for i, p := range decl.Params {
		fl.b.SetPos(decl.Line)
		if fl.addrTaken[p.Name] {
			off := fl.b.Alloca(8)
			addr := fl.b.FrameAddr(off)
			fl.b.Store(addr, i, 0, p.Type.AccessSize())
			fl.define(&local{name: p.Name, ty: p.Type, inFrame: true, off: off})
			continue
		}
		if p.Type.Kind == minc.TChar {
			// Truncate to unsigned char at entry, as a call would.
			masked := fl.b.Bin(ir.And, i, fl.b.Const(0xff))
			fl.b.Mov(i, masked)
		}
		fl.define(&local{name: p.Name, ty: p.Type, reg: i})
	}
	if err := fl.stmt(decl.Body); err != nil {
		return nil, err
	}
	// Implicitly return 0 from any unterminated block (includes functions
	// falling off the end and synthesized join blocks).
	for _, blk := range fl.b.F.Blocks {
		if blk.Terminator() == nil {
			blk.Instrs = append(blk.Instrs, ir.Instr{Op: ir.OpRet, Dst: -1, A: -1, B: -1, Pos: decl.Line})
		}
	}
	fn, err := fl.b.Finish()
	if err != nil {
		return nil, l.errf(decl.Line, "%v", err)
	}
	return fn, nil
}

// collectAddrTaken records every identifier appearing under unary &.
func collectAddrTaken(s minc.Stmt, out map[string]bool) {
	var walkExpr func(e minc.Expr)
	walkExpr = func(e minc.Expr) {
		switch x := e.(type) {
		case *minc.Unary:
			if x.Op == minc.Amp {
				if id, ok := x.X.(*minc.Ident); ok {
					out[id.Name] = true
				}
			}
			walkExpr(x.X)
		case *minc.Binary:
			walkExpr(x.X)
			walkExpr(x.Y)
		case *minc.AssignExpr:
			walkExpr(x.LHS)
			walkExpr(x.RHS)
		case *minc.Cond:
			walkExpr(x.C)
			walkExpr(x.T)
			walkExpr(x.F)
		case *minc.IncDec:
			walkExpr(x.X)
		case *minc.Index:
			walkExpr(x.Base)
			walkExpr(x.Idx)
		case *minc.Member:
			walkExpr(x.Base)
		case *minc.Call:
			for _, a := range x.Args {
				walkExpr(a)
			}
		case *minc.CastExpr:
			walkExpr(x.X)
		}
	}
	var walk func(s minc.Stmt)
	walk = func(s minc.Stmt) {
		switch st := s.(type) {
		case *minc.BlockStmt:
			for _, s2 := range st.Stmts {
				walk(s2)
			}
		case *minc.VarDeclStmt:
			if st.Init != nil {
				walkExpr(st.Init)
			}
		case *minc.ExprStmt:
			walkExpr(st.X)
		case *minc.IfStmt:
			walkExpr(st.Cond)
			walk(st.Then)
			if st.Else != nil {
				walk(st.Else)
			}
		case *minc.WhileStmt:
			walkExpr(st.Cond)
			walk(st.Body)
		case *minc.DoWhileStmt:
			walk(st.Body)
			walkExpr(st.Cond)
		case *minc.SwitchStmt:
			walkExpr(st.Cond)
			for i := range st.Cases {
				for _, s2 := range st.Cases[i].Stmts {
					walk(s2)
				}
			}
		case *minc.ForStmt:
			if st.Init != nil {
				walk(st.Init)
			}
			if st.Cond != nil {
				walkExpr(st.Cond)
			}
			if st.Post != nil {
				walkExpr(st.Post)
			}
			walk(st.Body)
		case *minc.ReturnStmt:
			if st.X != nil {
				walkExpr(st.X)
			}
		}
	}
	walk(s)
}

func (fl *funcLower) pushScope() {
	fl.scopes = append(fl.scopes, map[string]*local{})
}

func (fl *funcLower) popScope() {
	fl.scopes = fl.scopes[:len(fl.scopes)-1]
}

func (fl *funcLower) define(lo *local) {
	fl.scopes[len(fl.scopes)-1][lo.name] = lo
}

func (fl *funcLower) lookup(name string) *local {
	for i := len(fl.scopes) - 1; i >= 0; i-- {
		if lo, ok := fl.scopes[i][name]; ok {
			return lo
		}
	}
	return nil
}

func (fl *funcLower) errf(line int32, format string, args ...interface{}) error {
	return fl.l.errf(line, format, args...)
}

// ---- Statements ----

func (fl *funcLower) stmt(s minc.Stmt) error {
	switch st := s.(type) {
	case *minc.BlockStmt:
		fl.pushScope()
		defer fl.popScope()
		for _, s2 := range st.Stmts {
			if fl.b.Terminated() {
				// Dead code after return/break; skip silently, as a real
				// compiler's unreachable-block elimination would.
				return nil
			}
			if err := fl.stmt(s2); err != nil {
				return err
			}
		}
		return nil
	case *minc.EmptyStmt:
		return nil
	case *minc.VarDeclStmt:
		return fl.varDecl(st)
	case *minc.ExprStmt:
		fl.b.SetPos(st.Line)
		_, err := fl.expr(st.X)
		return err
	case *minc.IfStmt:
		return fl.ifStmt(st)
	case *minc.WhileStmt:
		return fl.whileStmt(st)
	case *minc.DoWhileStmt:
		return fl.doWhileStmt(st)
	case *minc.ForStmt:
		return fl.forStmt(st)
	case *minc.SwitchStmt:
		return fl.switchStmt(st)
	case *minc.ReturnStmt:
		fl.b.SetPos(st.Line)
		if st.X == nil {
			fl.b.Ret(-1)
			return nil
		}
		v, err := fl.exprScalar(st.X)
		if err != nil {
			return err
		}
		fl.b.Ret(v.reg)
		return nil
	case *minc.BreakStmt:
		if len(fl.breaks) == 0 {
			return fl.errf(st.Line, "break outside loop")
		}
		fl.b.SetPos(st.Line)
		fl.b.Br(fl.breaks[len(fl.breaks)-1])
		return nil
	case *minc.ContinueStmt:
		if len(fl.conts) == 0 {
			return fl.errf(st.Line, "continue outside loop")
		}
		fl.b.SetPos(st.Line)
		fl.b.Br(fl.conts[len(fl.conts)-1])
		return nil
	}
	return fmt.Errorf("lower: unknown statement %T", s)
}

func (fl *funcLower) varDecl(st *minc.VarDeclStmt) error {
	fl.b.SetPos(st.Line)
	if cur := fl.scopes[len(fl.scopes)-1][st.Name]; cur != nil {
		return fl.errf(st.Line, "variable %q redeclared in this scope", st.Name)
	}
	if st.Type.Kind == minc.TArray && st.Type.ArrayLen <= 0 {
		return fl.errf(st.Line, "array %q has non-positive length", st.Name)
	}
	needsFrame := !st.Type.IsScalar() || fl.addrTaken[st.Name]
	if needsFrame {
		off := fl.b.Alloca(st.Type.Size())
		lo := &local{name: st.Name, ty: st.Type, inFrame: true, off: off}
		fl.define(lo)
		if st.Init != nil {
			if !st.Type.IsScalar() {
				return fl.errf(st.Line, "initializer on non-scalar local %q", st.Name)
			}
			v, err := fl.exprScalar(st.Init)
			if err != nil {
				return err
			}
			addr := fl.b.FrameAddr(off)
			fl.b.Store(addr, v.reg, 0, st.Type.AccessSize())
		}
		return nil
	}
	reg := fl.b.NewReg()
	lo := &local{name: st.Name, ty: st.Type, reg: reg}
	fl.define(lo)
	if st.Init != nil {
		v, err := fl.exprScalar(st.Init)
		if err != nil {
			return err
		}
		fl.storeToReg(lo, v.reg)
		return nil
	}
	// Deterministic zero for uninitialized scalars (the frame equivalent
	// is zeroed by the VM).
	fl.b.Mov(reg, fl.b.Const(0))
	return nil
}

func (fl *funcLower) ifStmt(st *minc.IfStmt) error {
	fl.b.SetPos(st.Line)
	cond, err := fl.exprScalar(st.Cond)
	if err != nil {
		return err
	}
	thenB := fl.b.NewBlock()
	elseB := fl.b.NewBlock()
	joinB := fl.b.NewBlock()
	fl.b.CondBr(cond.reg, thenB, elseB)
	fl.b.SetBlock(thenB)
	if err := fl.stmt(st.Then); err != nil {
		return err
	}
	if !fl.b.Terminated() {
		fl.b.Br(joinB)
	}
	fl.b.SetBlock(elseB)
	if st.Else != nil {
		if err := fl.stmt(st.Else); err != nil {
			return err
		}
	}
	if !fl.b.Terminated() {
		fl.b.Br(joinB)
	}
	fl.b.SetBlock(joinB)
	return nil
}

func (fl *funcLower) whileStmt(st *minc.WhileStmt) error {
	header := fl.b.NewBlock()
	body := fl.b.NewBlock()
	exit := fl.b.NewBlock()
	fl.b.SetPos(st.Line)
	fl.b.Br(header)
	fl.b.SetBlock(header)
	cond, err := fl.exprScalar(st.Cond)
	if err != nil {
		return err
	}
	fl.b.CondBr(cond.reg, body, exit)
	fl.b.SetBlock(body)
	fl.breaks = append(fl.breaks, exit)
	fl.conts = append(fl.conts, header)
	err = fl.stmt(st.Body)
	fl.breaks = fl.breaks[:len(fl.breaks)-1]
	fl.conts = fl.conts[:len(fl.conts)-1]
	if err != nil {
		return err
	}
	if !fl.b.Terminated() {
		fl.b.Br(header)
	}
	fl.b.SetBlock(exit)
	return nil
}

func (fl *funcLower) doWhileStmt(st *minc.DoWhileStmt) error {
	body := fl.b.NewBlock()
	condB := fl.b.NewBlock()
	exit := fl.b.NewBlock()
	fl.b.SetPos(st.Line)
	fl.b.Br(body)
	fl.b.SetBlock(body)
	fl.breaks = append(fl.breaks, exit)
	fl.conts = append(fl.conts, condB)
	err := fl.stmt(st.Body)
	fl.breaks = fl.breaks[:len(fl.breaks)-1]
	fl.conts = fl.conts[:len(fl.conts)-1]
	if err != nil {
		return err
	}
	if !fl.b.Terminated() {
		fl.b.Br(condB)
	}
	fl.b.SetBlock(condB)
	cond, err := fl.exprScalar(st.Cond)
	if err != nil {
		return err
	}
	fl.b.CondBr(cond.reg, body, exit)
	fl.b.SetBlock(exit)
	return nil
}

// switchStmt lowers a C switch to a comparison chain dispatching into one
// body block per arm, with fallthrough between consecutive arms and break
// targeting the exit block. continue inside a switch still refers to the
// enclosing loop, as in C.
func (fl *funcLower) switchStmt(st *minc.SwitchStmt) error {
	fl.b.SetPos(st.Line)
	v, err := fl.exprScalar(st.Cond)
	if err != nil {
		return err
	}
	exit := fl.b.NewBlock()
	bodies := make([]int, len(st.Cases))
	for i := range st.Cases {
		bodies[i] = fl.b.NewBlock()
	}
	// Dispatch chain.
	defaultTarget := exit
	for i := range st.Cases {
		arm := &st.Cases[i]
		if arm.Default {
			defaultTarget = bodies[i]
		}
		for _, val := range arm.Vals {
			cv, err := minc.EvalConst(val)
			if err != nil {
				return fl.errf(arm.Line, "case label: %v", err)
			}
			cmp := fl.b.Bin(ir.Eq, v.reg, fl.b.Const(cv))
			next := fl.b.NewBlock()
			fl.b.CondBr(cmp, bodies[i], next)
			fl.b.SetBlock(next)
		}
	}
	fl.b.Br(defaultTarget)
	// Arm bodies with fallthrough.
	fl.breaks = append(fl.breaks, exit)
	for i := range st.Cases {
		fl.b.SetBlock(bodies[i])
		fl.pushScope()
		for _, s := range st.Cases[i].Stmts {
			if fl.b.Terminated() {
				break
			}
			if err := fl.stmt(s); err != nil {
				fl.popScope()
				fl.breaks = fl.breaks[:len(fl.breaks)-1]
				return err
			}
		}
		fl.popScope()
		if !fl.b.Terminated() {
			if i+1 < len(st.Cases) {
				fl.b.Br(bodies[i+1]) // fallthrough
			} else {
				fl.b.Br(exit)
			}
		}
	}
	fl.breaks = fl.breaks[:len(fl.breaks)-1]
	fl.b.SetBlock(exit)
	return nil
}

func (fl *funcLower) forStmt(st *minc.ForStmt) error {
	fl.pushScope()
	defer fl.popScope()
	if st.Init != nil {
		if err := fl.stmt(st.Init); err != nil {
			return err
		}
	}
	header := fl.b.NewBlock()
	body := fl.b.NewBlock()
	post := fl.b.NewBlock()
	exit := fl.b.NewBlock()
	fl.b.SetPos(st.Line)
	fl.b.Br(header)
	fl.b.SetBlock(header)
	if st.Cond != nil {
		cond, err := fl.exprScalar(st.Cond)
		if err != nil {
			return err
		}
		fl.b.CondBr(cond.reg, body, exit)
	} else {
		fl.b.Br(body)
	}
	fl.b.SetBlock(body)
	fl.breaks = append(fl.breaks, exit)
	fl.conts = append(fl.conts, post)
	err := fl.stmt(st.Body)
	fl.breaks = fl.breaks[:len(fl.breaks)-1]
	fl.conts = fl.conts[:len(fl.conts)-1]
	if err != nil {
		return err
	}
	if !fl.b.Terminated() {
		fl.b.Br(post)
	}
	fl.b.SetBlock(post)
	if st.Post != nil {
		if _, err := fl.expr(st.Post); err != nil {
			return err
		}
	}
	fl.b.Br(header)
	fl.b.SetBlock(exit)
	return nil
}
