package lower

import (
	"strings"
	"testing"
	"testing/quick"

	"closurex/internal/vfs"
	"closurex/internal/vm"
)

// compileRun compiles src and invokes fn, returning the result.
func compileRun(t *testing.T, src, fn string, files map[string][]byte, args ...int64) vm.Result {
	t.Helper()
	mod, err := Compile("t.c", src, vm.Builtins())
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	machine, err := vm.New(mod, vm.Options{Files: files})
	if err != nil {
		t.Fatalf("vm.New: %v", err)
	}
	return machine.Call(fn, args...)
}

// expectRet compiles src, runs main(), and checks the return value.
func expectRet(t *testing.T, src string, want int64) {
	t.Helper()
	res := compileRun(t, src, "main", nil)
	if res.Fault != nil {
		t.Fatalf("fault: %v", res.Fault)
	}
	if res.Exited {
		t.Fatalf("unexpected exit(%d)", res.ExitCode)
	}
	if res.Ret != want {
		t.Fatalf("main() = %d, want %d", res.Ret, want)
	}
}

func TestReturnConstant(t *testing.T) {
	expectRet(t, "int main(void) { return 42; }", 42)
}

func TestArithmeticExpressions(t *testing.T) {
	expectRet(t, "int main(void) { return (2 + 3) * 4 - 10 / 2; }", 15)
	expectRet(t, "int main(void) { return 7 % 3 + (1 << 4) + (256 >> 2); }", 81)
	expectRet(t, "int main(void) { return (0xf0 & 0x3c) | (1 ^ 3); }", 0x32)
	expectRet(t, "int main(void) { return -5 + ~0 + !0 + !7; }", -5)
}

func TestComparisons(t *testing.T) {
	expectRet(t, "int main(void) { return (1 < 2) + (2 <= 2) + (3 > 2) + (2 >= 3) + (1 == 1) + (1 != 1); }", 4)
}

func TestLocalVariablesAndAssignment(t *testing.T) {
	expectRet(t, `
int main(void) {
	int a = 5;
	int b;
	b = a * 2;
	a += 3;
	b -= 1;
	a *= 2;
	b /= 3;
	a %= 7;
	a <<= 2;
	a >>= 1;
	a |= 8;
	a &= 12;
	a ^= 5;
	return a * 100 + b;
	// a: 5 +=3 →8, *=2 →16, %=7 →2, <<=2 →8, >>=1 →4, |=8 →12, &=12 →12, ^=5 →9
	// b: 10 -=1 →9, /=3 →3
}`, 903)
}

func TestCharTruncation(t *testing.T) {
	expectRet(t, `
int main(void) {
	char c = 300;       // truncates to 44
	char d = (char)511; // 255
	return c + d;
}`, 299)
}

func TestIfElseChains(t *testing.T) {
	src := `
int classify(int x) {
	if (x < 0) return -1;
	else if (x == 0) return 0;
	else if (x < 10) return 1;
	return 2;
}
int main(void) {
	return classify(-5) * 1000 + classify(0) * 100 + classify(5) * 10 + classify(50);
}`
	expectRet(t, src, -1000+0+10+2)
}

func TestWhileAndFor(t *testing.T) {
	expectRet(t, `
int main(void) {
	int total = 0;
	for (int i = 1; i <= 10; i++) total += i;
	int n = 0;
	while (total > 0) { total -= 10; n++; }
	return n;
}`, 6)
}

func TestBreakContinue(t *testing.T) {
	expectRet(t, `
int main(void) {
	int odd_sum = 0;
	for (int i = 0; i < 100; i++) {
		if (i % 2 == 0) continue;
		if (i > 10) break;
		odd_sum += i;
	}
	return odd_sum;
}`, 1+3+5+7+9)
}

func TestNestedLoops(t *testing.T) {
	expectRet(t, `
int main(void) {
	int count = 0;
	for (int i = 0; i < 5; i++) {
		for (int j = 0; j < 5; j++) {
			if (j > i) break;
			count++;
		}
	}
	return count;
}`, 1+2+3+4+5)
}

func TestShortCircuit(t *testing.T) {
	src := `
int calls;
int bump(int r) { calls++; return r; }
int main(void) {
	calls = 0;
	int a = 0 && bump(1);   // bump not called
	int b = 1 || bump(1);   // bump not called
	int c = 1 && bump(5);   // called, c = 1 (normalized)
	int d = 0 || bump(0);   // called, d = 0
	return calls * 100 + a * 1 + b * 2 + c * 4 + d * 8;
}`
	expectRet(t, src, 206)
}

func TestTernary(t *testing.T) {
	expectRet(t, "int main(void) { int x = 7; return x > 5 ? x * 2 : x - 1; }", 14)
	expectRet(t, "int main(void) { int x = 3; return x > 5 ? x * 2 : x - 1; }", 2)
}

func TestIncDecSemantics(t *testing.T) {
	expectRet(t, `
int main(void) {
	int i = 5;
	int a = i++;  // a=5, i=6
	int b = ++i;  // b=7, i=7
	int c = i--;  // c=7, i=6
	int d = --i;  // d=5, i=5
	return a * 1000 + b * 100 + c * 10 + d + i;
}`, 5000+700+70+5+5)
}

func TestFunctionsAndRecursion(t *testing.T) {
	expectRet(t, `
int fib(int n) {
	if (n < 2) return n;
	return fib(n - 1) + fib(n - 2);
}
int main(void) { return fib(12); }`, 144)
}

func TestGlobalState(t *testing.T) {
	expectRet(t, `
int counter = 10;
const int step = 3;
int bump(void) { counter += step; return counter; }
int main(void) {
	bump();
	bump();
	return counter;
}`, 16)
}

func TestGlobalArrayInitializer(t *testing.T) {
	expectRet(t, `
int table[5] = {10, 20, 30};
int main(void) {
	return table[0] + table[1] + table[2] + table[3] + table[4];
}`, 60)
}

func TestGlobalStringAndIndexing(t *testing.T) {
	expectRet(t, `
char name[8] = "abc";
int main(void) {
	return name[0] + name[1] + name[2] + name[3];
}`, 'a'+'b'+'c')
}

func TestPointersBasics(t *testing.T) {
	expectRet(t, `
int main(void) {
	int x = 11;
	int *p = &x;
	*p = *p + 1;
	int **pp = &p;
	**pp += 2;
	return x;
}`, 14)
}

func TestPointerArithmeticScaling(t *testing.T) {
	expectRet(t, `
int arr[4] = {1, 2, 3, 4};
int main(void) {
	int *p = arr;
	p = p + 2;        // skips 2 ints
	int a = *p;       // 3
	p++;
	int b = *p;       // 4
	p -= 3;
	int c = *p;       // 1
	int *q = &arr[3];
	return a * 100 + b * 10 + c + (q - p); // 300 + 40 + 1 + 3
}`, 344)
}

func TestCharPointerWalk(t *testing.T) {
	expectRet(t, `
char s[6] = "hello";
int main(void) {
	char *p = s;
	int n = 0;
	while (*p) { n++; p++; }
	return n;
}`, 5)
}

func TestLocalArray(t *testing.T) {
	expectRet(t, `
int main(void) {
	int buf[8];
	for (int i = 0; i < 8; i++) buf[i] = i * i;
	int sum = 0;
	for (int i = 0; i < 8; i++) sum += buf[i];
	return sum;
}`, 140)
}

func TestStructMembers(t *testing.T) {
	expectRet(t, `
struct point { int x; int y; char tag; };
struct point origin;
int main(void) {
	origin.x = 3;
	origin.y = 4;
	origin.tag = 'O';
	struct point local;
	local.x = origin.x * 10;
	local.y = origin.y * 10;
	struct point *p = &local;
	p->x += 1;
	return p->x + p->y + origin.tag;
}`, 31+40+'O')
}

func TestStructWithArrayField(t *testing.T) {
	expectRet(t, `
struct rec { char name[4]; int vals[3]; };
int main(void) {
	struct rec r;
	r.name[0] = 'a';
	r.vals[0] = 5;
	r.vals[2] = 7;
	struct rec *p = &r;
	return p->name[0] + p->vals[0] + p->vals[2];
}`, 'a'+12)
}

func TestHeapUsage(t *testing.T) {
	expectRet(t, `
int main(void) {
	int *p = (int*)malloc(sizeof(int) * 4);
	if (!p) return -1;
	for (int i = 0; i < 4; i++) p[i] = i + 1;
	int sum = 0;
	for (int i = 0; i < 4; i++) sum += p[i];
	free(p);
	return sum;
}`, 10)
}

func TestSizeofForms(t *testing.T) {
	expectRet(t, `
struct s { int a; char b[3]; };
int main(void) {
	return sizeof(int) * 1000 + sizeof(char) * 100 + sizeof(struct s) * 10 + sizeof(int*);
}`, 8000+100+160+8)
}

func TestExitPropagates(t *testing.T) {
	res := compileRun(t, `
void die(void) { exit(7); }
int main(void) { die(); return 1; }`, "main", nil)
	if !res.Exited || res.ExitCode != 7 {
		t.Fatalf("res = %+v, want exit(7)", res)
	}
}

func TestFileInput(t *testing.T) {
	src := `
int main(void) {
	int f = fopen("/input", "r");
	if (!f) return -1;
	char buf[16];
	int n = fread(buf, 1, 16, f);
	int sum = 0;
	for (int i = 0; i < n; i++) sum += buf[i];
	fclose(f);
	return sum;
}`
	res := compileRun(t, src, "main", map[string][]byte{vfs.InputPath: []byte{1, 2, 3}})
	if res.Fault != nil || res.Ret != 6 {
		t.Fatalf("ret = %d, fault %v", res.Ret, res.Fault)
	}
}

func TestAddressOfParam(t *testing.T) {
	expectRet(t, `
void bump(int *p) { *p += 1; }
int main(void) {
	int x = 1;
	bump(&x);
	return x;
}`, 2)
}

func TestAddressTakenParamSpill(t *testing.T) {
	expectRet(t, `
int twice(int v) {
	int *p = &v;
	*p = *p * 2;
	return v;
}
int main(void) { return twice(21); }`, 42)
}

func TestVoidFunctionAndBareReturn(t *testing.T) {
	expectRet(t, `
int g;
void set(int v) { g = v; return; }
void set2(int v) { g = v; }
int main(void) { set(5); set2(g + 1); return g; }`, 6)
}

func TestDeadCodeAfterReturn(t *testing.T) {
	expectRet(t, `
int main(void) {
	return 1;
	return 2;
}`, 1)
}

func TestImplicitReturnZero(t *testing.T) {
	expectRet(t, "int main(void) { int x = 5; x++; }", 0)
}

func TestWhileTrueBreak(t *testing.T) {
	expectRet(t, `
int main(void) {
	int i = 0;
	while (1) {
		i++;
		if (i == 5) break;
	}
	return i;
}`, 5)
}

func TestForWithoutClauses(t *testing.T) {
	expectRet(t, `
int main(void) {
	int i = 0;
	for (;;) {
		i++;
		if (i >= 3) break;
	}
	return i;
}`, 3)
}

func TestCastPointer(t *testing.T) {
	expectRet(t, `
int main(void) {
	char *raw = (char*)malloc(16);
	int *ip = (int*)raw;
	*ip = 0x01020304;
	int lo = raw[0];
	free(raw);
	return lo;
}`, 4)
}

func TestShadowingScopes(t *testing.T) {
	expectRet(t, `
int x = 1;
int main(void) {
	int x = 2;
	{
		int x = 3;
		if (x != 3) return -1;
	}
	return x;
}`, 2)
}

func TestStringLiteralInterning(t *testing.T) {
	mod, err := Compile("t.c", `
int main(void) {
	char *a = "same";
	char *b = "same";
	char *c = "diff";
	return (a == b) * 10 + (a == c);
}`, vm.Builtins())
	if err != nil {
		t.Fatal(err)
	}
	machine, _ := vm.New(mod, vm.Options{})
	if res := machine.Call("main"); res.Ret != 10 {
		t.Fatalf("interning: %d, want 10", res.Ret)
	}
}

func TestRuntimeFaultsSurface(t *testing.T) {
	cases := []struct {
		name string
		src  string
		kind vm.FaultKind
	}{
		{"null deref", `int main(void) { int *p = 0; return *p; }`, vm.FaultNullDeref},
		{"div by zero", `int main(void) { int z = 0; return 5 / z; }`, vm.FaultDivByZero},
		{"mod by zero", `int main(void) { int z = 0; return 5 % z; }`, vm.FaultDivByZero},
		{"heap oob", `int main(void) { char *p = (char*)malloc(4); return p[4]; }`, vm.FaultHeapOOB},
		{"uaf", `int main(void) { char *p = (char*)malloc(4); free(p); return p[0]; }`, vm.FaultUseAfterFree},
		{"double free", `int main(void) { char *p = (char*)malloc(4); free(p); free(p); return 0; }`, vm.FaultDoubleFree},
		{"write rodata", `const int k = 1; int main(void) { int *p = (int*)&k; *p = 2; return 0; }`, vm.FaultWriteRodata},
		{"abort", `int main(void) { abort(); return 0; }`, vm.FaultAbort},
		{"memcpy negative", `int main(void) { char a[4]; char b[4]; memcpy(a, b, -2); return 0; }`, vm.FaultNegativeSize},
	}
	for _, c := range cases {
		res := compileRun(t, c.src, "main", nil)
		if res.Fault == nil || res.Fault.Kind != c.kind {
			t.Errorf("%s: fault = %v, want %s", c.name, res.Fault, c.kind)
		}
	}
}

func TestLowerErrors(t *testing.T) {
	cases := map[string]string{
		"undefined var":     "int main(void) { return nope; }",
		"undefined call":    "int main(void) { return nope(); }",
		"bad arity":         "int f(int a) { return a; } int main(void) { return f(1, 2); }",
		"redeclared local":  "int main(void) { int x; int x; return 0; }",
		"break outside":     "int main(void) { break; return 0; }",
		"continue outside":  "int main(void) { continue; return 0; }",
		"addr of rvalue":    "int main(void) { int *p = &(1 + 2); return 0; }",
		"struct as scalar":  "struct s { int a; }; struct s g; int main(void) { return g; }",
		"assign to struct":  "struct s { int a; }; struct s g; struct s h; int main(void) { g = h; return 0; }",
		"member of int":     "int main(void) { int x; return x.field; }",
		"missing field":     "struct s { int a; }; struct s g; int main(void) { return g.b; }",
		"arrow on struct":   "struct s { int a; }; struct s g; int main(void) { return g->a; }",
		"index non-pointer": "int main(void) { int x; return x[0]; }",
		"init on array":     "int main(void) { int a[3] = 5; return 0; }",
	}
	for name, src := range cases {
		if _, err := Compile("t.c", src, vm.Builtins()); err == nil {
			t.Errorf("%s: compiled, want error", name)
		}
	}
}

func TestErrorMentionsLine(t *testing.T) {
	_, err := Compile("t.c", "\n\nint main(void) {\n return bogus;\n}", vm.Builtins())
	if err == nil {
		t.Fatal("compiled")
	}
	if !strings.Contains(err.Error(), "t.c:4") {
		t.Fatalf("error lacks position: %v", err)
	}
}

// Property: random arithmetic expressions over two variables evaluate
// identically in the compiled program and a Go model.
func TestExprDifferentialProperty(t *testing.T) {
	type opPick struct {
		Op   uint8
		A, B int32
	}
	f := func(p opPick) bool {
		ops := []struct {
			src  string
			eval func(a, b int64) int64
		}{
			{"a + b", func(a, b int64) int64 { return a + b }},
			{"a - b", func(a, b int64) int64 { return a - b }},
			{"a * b", func(a, b int64) int64 { return a * b }},
			{"a & b", func(a, b int64) int64 { return a & b }},
			{"a | b", func(a, b int64) int64 { return a | b }},
			{"a ^ b", func(a, b int64) int64 { return a ^ b }},
			{"(a < b) + (a == b) * 2", func(a, b int64) int64 {
				var r int64
				if a < b {
					r++
				}
				if a == b {
					r += 2
				}
				return r
			}},
			{"a + b * 3 - (a ^ 5)", func(a, b int64) int64 { return a + b*3 - (a ^ 5) }},
		}
		pick := ops[int(p.Op)%len(ops)]
		src := "int f(int a, int b) { return " + pick.src + "; }"
		mod, err := Compile("t.c", src, vm.Builtins())
		if err != nil {
			return false
		}
		machine, err := vm.New(mod, vm.Options{})
		if err != nil {
			return false
		}
		res := machine.Call("f", int64(p.A), int64(p.B))
		return res.Fault == nil && res.Ret == pick.eval(int64(p.A), int64(p.B))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}
