package mem

import (
	"errors"
	"fmt"
	"sort"

	"closurex/internal/faultinject"
)

// Heap manages a segment of a Memory as a malloc-style arena and keeps the
// chunk map that ClosureX's HeapPass relies on: every live allocation is
// recorded so the harness can (a) bound-check accesses like a sanitizer and
// (b) free everything the target leaked when a test case ends (Figure 5 of
// the paper).
type Heap struct {
	mem  *Memory
	base uint64
	end  uint64
	brk  uint64 // bump pointer

	// chunks holds live allocations sorted by start address; parsers
	// allocate tens of chunks per execution, so a sorted slice with binary
	// search beats fancier structures.
	chunks []Chunk

	// quarantine holds freed chunk start addresses so double-free and
	// use-after-free can be told apart from wild pointers. Bounded FIFO.
	quarantine     []Chunk
	quarantineCap  int
	bytesAllocated uint64 // live bytes (for the memory-usage audit, §6.1.4)
	epoch          uint64 // bumped on Reset; stale chunk handles become invalid
	// gen counts chunk-map mutations (alloc, free, realloc, quarantine
	// replacement, reset). Execution backends cache per-site access-check
	// verdicts keyed on it: a verdict proven against one chunk map is only
	// replayable while gen is unchanged.
	gen uint64

	// inj, when armed, fails allocations on demand so tests can drive the
	// target's (and the harness's) OOM paths deterministically. Nil in
	// production.
	inj *faultinject.Injector

	// shadow, when attached (-sanitize), mirrors every allocation and free
	// into the ASan-style shadow plane so the VM can classify accesses
	// without consulting the chunk map.
	shadow *Shadow

	// siteFn/siteLine hold the allocation/free site the VM noted just
	// before calling into the allocator; consumed into Chunk fields for
	// sanitizer reports. siteElide carries the interproc TrackElide mark
	// of that site so the chunk records whether the analysis proved it
	// freed on every path.
	siteFn    string
	siteLine  int32
	siteElide bool
}

// Chunk describes one live heap allocation.
type Chunk struct {
	Addr uint64
	Size uint64
	// Init marks chunks allocated before the fuzzing loop started (during
	// deferred initialization); the harness must not reclaim them between
	// test cases.
	Init bool
	// Allocation and free sites (function name + source line), recorded
	// when the VM notes them via NoteSite. Free sites are only meaningful
	// on quarantined chunks.
	AllocFn   string
	AllocLine int32
	FreeFn    string
	FreeLine  int32
	// Elided marks chunks born at a TrackElide allocation site: the
	// interprocedural analysis proved the target frees them on every path,
	// so the harness expects none of them live at restore time (on
	// non-crashed iterations) and audits that expectation instead of
	// paying per-chunk tracking costs for the sweep accounting.
	Elided bool
}

// Heap errors surfaced to the VM sanitizer.
var (
	ErrHeapOOM      = errors.New("heap: out of memory")
	ErrBadFree      = errors.New("heap: free of non-heap or unaligned pointer")
	ErrDoubleFree   = errors.New("heap: double free")
	ErrUseAfterFree = errors.New("heap: use after free")
	ErrHeapOOB      = errors.New("heap: out-of-bounds access")
)

// chunkAlign rounds allocation sizes so neighbouring chunks never share a
// word, giving the sanitizer redzones for free.
const chunkAlign = 16

// defaultQuarantine is how many freed chunks are remembered for UAF
// reporting before their address ranges may be reused.
const defaultQuarantine = 512

// NewHeap creates a heap over [base, end) of m.
func NewHeap(m *Memory, base, end uint64) *Heap {
	return &Heap{
		mem:           m,
		base:          base,
		end:           end,
		brk:           base,
		quarantineCap: defaultQuarantine,
	}
}

// SetInjector arms fault injection for this heap (nil disarms).
func (h *Heap) SetInjector(inj *faultinject.Injector) { h.inj = inj }

// AttachShadow arms the ASan-style shadow plane over the heap span. Call
// after Shift so the plane's base matches the randomized allocation base.
func (h *Heap) AttachShadow() {
	h.shadow = NewShadow(h.base, h.end)
}

// Shadow returns the attached shadow plane, or nil when not sanitizing.
func (h *Heap) Shadow() *Shadow { return h.shadow }

// NoteSite records the function and source line about to perform an
// allocator call, so the next Alloc/Free stamps it into the chunk for
// sanitizer reports.
func (h *Heap) NoteSite(fn string, line int32) {
	h.siteFn, h.siteLine = fn, line
	h.siteElide = false
}

// NoteElide records that the pending allocator call originates from a
// TrackElide-marked site; the next Alloc stamps Chunk.Elided. Call after
// NoteSite (which clears the flag).
func (h *Heap) NoteElide() { h.siteElide = true }

// ChunkAt returns the live chunk containing addr.
func (h *Heap) ChunkAt(addr uint64) (Chunk, bool) {
	if i := h.findChunk(addr); i >= 0 {
		return h.chunks[i], true
	}
	return Chunk{}, false
}

// QuarantinedAt returns the quarantined (freed) chunk containing addr.
func (h *Heap) QuarantinedAt(addr uint64) (Chunk, bool) {
	return h.findQuarantined(addr)
}

// ChunkNear returns the live chunk containing addr or whose trailing
// redzone covers it — used to attribute an overflow report to the
// allocation being overflowed.
func (h *Heap) ChunkNear(addr uint64) (Chunk, bool) {
	i := sort.Search(len(h.chunks), func(i int) bool { return h.chunks[i].Addr > addr })
	i--
	if i < 0 {
		return Chunk{}, false
	}
	c := h.chunks[i]
	rounded := (c.Size + chunkAlign - 1) &^ uint64(chunkAlign-1)
	if addr < c.Addr+rounded+chunkAlign {
		return c, true
	}
	return Chunk{}, false
}

// QuarantineSnapshot copies the current quarantine ring — the harness
// captures it after deferred initialization so each iteration starts from
// the same free history (classification and first-fit behavior stay
// deterministic per iteration).
func (h *Heap) QuarantineSnapshot() []Chunk {
	return append([]Chunk(nil), h.quarantine...)
}

// RestoreQuarantine replaces the quarantine ring with the snapshot taken
// at harness-init time.
func (h *Heap) RestoreQuarantine(snap []Chunk) {
	h.quarantine = append(h.quarantine[:0], snap...)
	h.gen++
}

// QuarantineLen reports how many freed chunks the quarantine currently
// remembers (watchdog invariant checks).
func (h *Heap) QuarantineLen() int { return len(h.quarantine) }

// Base returns the lowest address the heap may hand out.
func (h *Heap) Base() uint64 { return h.base }

// Shift slides the allocation base upward by off bytes — heap ASLR. Must
// be called before the first allocation. Shifting models the per-process
// randomization that makes stored heap addresses naturally nondeterministic
// across fresh executions (the §6.1.4 masking exists precisely for this).
func (h *Heap) Shift(off uint64) {
	if len(h.chunks) != 0 || h.brk != h.base {
		return // too late: allocations exist
	}
	if off > (h.end-h.base)/4 {
		off = (h.end - h.base) / 4
	}
	off &^= chunkAlign - 1
	h.base += off
	h.brk = h.base
}

// End returns the first address past the heap segment.
func (h *Heap) End() uint64 { return h.end }

// Contains reports whether addr falls inside the heap segment.
func (h *Heap) Contains(addr uint64) bool { return addr >= h.base && addr < h.end }

// LiveChunks returns the number of live allocations.
func (h *Heap) LiveChunks() int { return len(h.chunks) }

// LiveBytes returns the number of live allocated bytes.
func (h *Heap) LiveBytes() uint64 { return h.bytesAllocated }

// Epoch identifies the current heap generation; it changes on Reset.
func (h *Heap) Epoch() uint64 { return h.epoch }

// Gen returns the chunk-map generation. Any cached access-check verdict
// against the heap is invalid once Gen changes.
func (h *Heap) Gen() uint64 { return h.gen }

// findChunk returns the index of the live chunk containing addr, or -1.
func (h *Heap) findChunk(addr uint64) int {
	i := sort.Search(len(h.chunks), func(i int) bool { return h.chunks[i].Addr > addr })
	i--
	if i >= 0 {
		c := h.chunks[i]
		if addr >= c.Addr && addr < c.Addr+c.Size {
			return i
		}
	}
	return -1
}

// findQuarantined reports whether addr lies inside a recently freed chunk.
func (h *Heap) findQuarantined(addr uint64) (Chunk, bool) {
	for i := len(h.quarantine) - 1; i >= 0; i-- {
		c := h.quarantine[i]
		if addr >= c.Addr && addr < c.Addr+c.Size {
			return c, true
		}
	}
	return Chunk{}, false
}

// Alloc allocates size bytes (zero-size allocations get a minimal chunk so
// they still have a unique address, as malloc(0) may).
func (h *Heap) Alloc(size uint64) (uint64, error) {
	if h.inj.Should(faultinject.HeapAlloc) {
		return 0, fmt.Errorf("%w (%v)", ErrHeapOOM, faultinject.Err(faultinject.HeapAlloc))
	}
	if size == 0 {
		size = 1
	}
	rounded := (size + chunkAlign - 1) &^ uint64(chunkAlign-1)
	// Bump allocation with redzone gap; when the arena is exhausted, fall
	// back to first-fit over the gaps left by frees past quarantine.
	addr := h.brk
	if addr+rounded+chunkAlign > h.end || addr+rounded < addr {
		a, ok := h.firstFit(rounded)
		if !ok {
			return 0, ErrHeapOOM
		}
		addr = a
	} else {
		h.brk = addr + rounded + chunkAlign
	}
	c := Chunk{Addr: addr, Size: size, AllocFn: h.siteFn, AllocLine: h.siteLine, Elided: h.siteElide}
	h.siteFn, h.siteLine, h.siteElide = "", 0, false
	i := sort.Search(len(h.chunks), func(i int) bool { return h.chunks[i].Addr > addr })
	h.chunks = append(h.chunks, Chunk{})
	copy(h.chunks[i+1:], h.chunks[i:])
	h.chunks[i] = c
	h.bytesAllocated += size
	h.gen++
	if h.shadow != nil {
		h.shadow.Unpoison(addr, size)
		// Everything between the valid bytes and the next chunk is this
		// allocation's right redzone: the round-up tail plus the
		// chunkAlign gap the allocator always leaves.
		up := (size + ShadowGranule - 1) &^ uint64(ShadowGranule-1)
		h.shadow.Poison(addr+up, rounded+chunkAlign-up, ShadowRedzone)
	}
	return addr, nil
}

// firstFit scans for a gap between live chunks big enough for rounded bytes
// plus redzones. Only used once the bump pointer hits the segment end.
func (h *Heap) firstFit(rounded uint64) (uint64, bool) {
	prevEnd := h.base
	need := rounded + 2*chunkAlign
	for _, c := range h.chunks {
		if c.Addr > prevEnd && c.Addr-prevEnd >= need {
			if _, q := h.findQuarantined(prevEnd + chunkAlign); !q {
				return prevEnd + chunkAlign, true
			}
		}
		e := c.Addr + c.Size
		e = (e + chunkAlign - 1) &^ uint64(chunkAlign-1)
		if e > prevEnd {
			prevEnd = e
		}
	}
	if h.end > prevEnd && h.end-prevEnd >= need {
		return prevEnd + chunkAlign, true
	}
	return 0, false
}

// AllocZeroed allocates and clears size bytes (calloc).
func (h *Heap) AllocZeroed(size uint64) (uint64, error) {
	addr, err := h.Alloc(size)
	if err != nil {
		return 0, err
	}
	if err := h.mem.Zero(addr, int(size)); err != nil {
		return 0, err
	}
	return addr, nil
}

// Free releases the chunk starting exactly at addr. free(NULL) is a no-op,
// as in C.
func (h *Heap) Free(addr uint64) error {
	if addr == 0 {
		return nil
	}
	if !h.Contains(addr) {
		return fmt.Errorf("%w: %#x", ErrBadFree, addr)
	}
	i := h.findChunk(addr)
	if i < 0 || h.chunks[i].Addr != addr {
		if _, q := h.findQuarantined(addr); q {
			return fmt.Errorf("%w: %#x", ErrDoubleFree, addr)
		}
		return fmt.Errorf("%w: %#x", ErrBadFree, addr)
	}
	c := h.chunks[i]
	c.FreeFn, c.FreeLine = h.siteFn, h.siteLine
	h.siteFn, h.siteLine = "", 0
	h.chunks = append(h.chunks[:i], h.chunks[i+1:]...)
	h.bytesAllocated -= c.Size
	h.gen++
	h.quarantine = append(h.quarantine, c)
	if len(h.quarantine) > h.quarantineCap {
		h.quarantine = h.quarantine[1:]
	}
	if h.shadow != nil {
		h.shadow.Poison(c.Addr, c.Size, ShadowFreed)
	}
	return nil
}

// Realloc resizes the chunk at addr, moving it if necessary.
// realloc(0, n) behaves like malloc(n).
func (h *Heap) Realloc(addr, size uint64) (uint64, error) {
	if addr == 0 {
		return h.Alloc(size)
	}
	i := h.findChunk(addr)
	if i < 0 || h.chunks[i].Addr != addr {
		if _, q := h.findQuarantined(addr); q {
			return 0, fmt.Errorf("%w: realloc %#x", ErrUseAfterFree, addr)
		}
		return 0, fmt.Errorf("%w: realloc %#x", ErrBadFree, addr)
	}
	old := h.chunks[i]
	if size == 0 {
		size = 1
	}
	siteFn, siteLine := h.siteFn, h.siteLine
	if size <= old.Size {
		h.bytesAllocated -= old.Size - size
		h.chunks[i].Size = size
		h.gen++
		h.siteFn, h.siteLine = "", 0
		if h.shadow != nil {
			// Shrink in place: the abandoned tail becomes redzone.
			h.shadow.Poison(addr, old.Size, ShadowRedzone)
			h.shadow.Unpoison(addr, size)
		}
		return addr, nil
	}
	nAddr, err := h.Alloc(size)
	if err != nil {
		return 0, err
	}
	data, err := h.mem.Read(old.Addr, int(old.Size))
	if err != nil {
		return 0, err
	}
	if err := h.mem.Write(nAddr, data); err != nil {
		return 0, err
	}
	h.NoteSite(siteFn, siteLine)
	if err := h.Free(old.Addr); err != nil {
		return 0, err
	}
	return nAddr, nil
}

// Check validates an n-byte access at addr, distinguishing use-after-free
// from plain out-of-bounds, for the VM sanitizer.
func (h *Heap) Check(addr uint64, n int) error {
	i := h.findChunk(addr)
	if i < 0 {
		if _, q := h.findQuarantined(addr); q {
			return fmt.Errorf("%w: %d bytes at %#x", ErrUseAfterFree, n, addr)
		}
		return fmt.Errorf("%w: %d bytes at %#x", ErrHeapOOB, n, addr)
	}
	c := h.chunks[i]
	if addr+uint64(n) > c.Addr+c.Size {
		return fmt.Errorf("%w: %d bytes at %#x overruns chunk [%#x,%#x)",
			ErrHeapOOB, n, addr, c.Addr, c.Addr+c.Size)
	}
	return nil
}

// Leaked returns the live chunks that were allocated during test-case
// execution (Init == false) — exactly what the ClosureX harness frees
// between test cases.
func (h *Heap) Leaked() []Chunk { return h.AppendLeaked(nil) }

// AppendLeaked appends the non-init live chunks to dst and returns it —
// the allocation-free variant the harness restore loop uses every
// iteration.
func (h *Heap) AppendLeaked(dst []Chunk) []Chunk {
	for _, c := range h.chunks {
		if !c.Init {
			dst = append(dst, c)
		}
	}
	return dst
}

// LeakedCount reports how many live chunks are not init-persistent,
// without materializing them.
func (h *Heap) LeakedCount() int {
	n := 0
	for _, c := range h.chunks {
		if !c.Init {
			n++
		}
	}
	return n
}

// MarkInit flags every currently live chunk as initialization state that
// survives across test cases (the deferred-initialization optimization).
func (h *Heap) MarkInit() {
	for i := range h.chunks {
		h.chunks[i].Init = true
	}
}

// Reset drops every live chunk and the quarantine, returning the arena to
// its pristine state. Used by the fresh-process mechanism.
func (h *Heap) Reset() {
	h.chunks = h.chunks[:0]
	h.quarantine = h.quarantine[:0]
	h.brk = h.base
	h.bytesAllocated = 0
	h.epoch++
	h.gen++
	if h.shadow != nil {
		h.shadow = NewShadow(h.shadow.base, h.shadow.end)
	}
}

// Clone duplicates the allocator bookkeeping for use over a forked Memory.
// The page contents themselves are shared copy-on-write by Memory.Fork.
func (h *Heap) Clone(m *Memory) *Heap {
	nh := &Heap{
		mem:            m,
		base:           h.base,
		end:            h.end,
		brk:            h.brk,
		quarantineCap:  h.quarantineCap,
		bytesAllocated: h.bytesAllocated,
		epoch:          h.epoch,
		inj:            h.inj,
	}
	nh.chunks = append([]Chunk(nil), h.chunks...)
	nh.quarantine = append([]Chunk(nil), h.quarantine...)
	if h.shadow != nil {
		nh.shadow = h.shadow.Clone()
	}
	return nh
}
