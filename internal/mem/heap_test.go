package mem

import (
	"errors"
	"testing"
	"testing/quick"
)

func newTestHeap() *Heap {
	m := NewMemory()
	return NewHeap(m, 0x100000, 0x100000+1<<22)
}

func TestAllocDistinctAndInBounds(t *testing.T) {
	h := newTestHeap()
	seen := map[uint64]bool{}
	for i := 0; i < 100; i++ {
		a, err := h.Alloc(uint64(i%37 + 1))
		if err != nil {
			t.Fatalf("Alloc: %v", err)
		}
		if !h.Contains(a) {
			t.Fatalf("chunk %#x outside heap", a)
		}
		if seen[a] {
			t.Fatalf("duplicate address %#x", a)
		}
		seen[a] = true
	}
	if h.LiveChunks() != 100 {
		t.Fatalf("LiveChunks = %d, want 100", h.LiveChunks())
	}
}

func TestAllocZeroSize(t *testing.T) {
	h := newTestHeap()
	a, err := h.Alloc(0)
	if err != nil || a == 0 {
		t.Fatalf("Alloc(0) = %#x, %v", a, err)
	}
	b, err := h.Alloc(0)
	if err != nil || b == a {
		t.Fatalf("Alloc(0) second = %#x (first %#x), %v", b, a, err)
	}
}

func TestFreeAndDoubleFree(t *testing.T) {
	h := newTestHeap()
	a, _ := h.Alloc(32)
	if err := h.Free(a); err != nil {
		t.Fatalf("Free: %v", err)
	}
	if err := h.Free(a); !errors.Is(err, ErrDoubleFree) {
		t.Fatalf("double free err = %v, want ErrDoubleFree", err)
	}
}

func TestFreeNullIsNoop(t *testing.T) {
	h := newTestHeap()
	if err := h.Free(0); err != nil {
		t.Fatalf("free(NULL) = %v, want nil", err)
	}
}

func TestFreeWildPointer(t *testing.T) {
	h := newTestHeap()
	a, _ := h.Alloc(64)
	if err := h.Free(a + 8); !errors.Is(err, ErrBadFree) {
		t.Fatalf("interior free err = %v, want ErrBadFree", err)
	}
	if err := h.Free(0x999); !errors.Is(err, ErrBadFree) {
		t.Fatalf("non-heap free err = %v, want ErrBadFree", err)
	}
}

func TestCheckOOBAndUAF(t *testing.T) {
	h := newTestHeap()
	a, _ := h.Alloc(16)
	if err := h.Check(a, 16); err != nil {
		t.Fatalf("in-bounds check: %v", err)
	}
	if err := h.Check(a, 17); !errors.Is(err, ErrHeapOOB) {
		t.Fatalf("overrun err = %v, want ErrHeapOOB", err)
	}
	if err := h.Check(a+16, 1); !errors.Is(err, ErrHeapOOB) {
		t.Fatalf("past-end err = %v, want ErrHeapOOB", err)
	}
	if err := h.Free(a); err != nil {
		t.Fatal(err)
	}
	if err := h.Check(a, 1); !errors.Is(err, ErrUseAfterFree) {
		t.Fatalf("UAF err = %v, want ErrUseAfterFree", err)
	}
}

func TestReallocGrowPreservesData(t *testing.T) {
	m := NewMemory()
	h := NewHeap(m, 0x100000, 0x200000)
	a, _ := h.Alloc(8)
	if err := m.Write(a, []byte("abcdefgh")); err != nil {
		t.Fatal(err)
	}
	b, err := h.Realloc(a, 64)
	if err != nil {
		t.Fatalf("Realloc: %v", err)
	}
	got, _ := m.Read(b, 8)
	if string(got) != "abcdefgh" {
		t.Fatalf("data lost across realloc: %q", got)
	}
	// Old chunk must now be dead.
	if a != b {
		if err := h.Check(a, 1); !errors.Is(err, ErrUseAfterFree) {
			t.Fatalf("old chunk alive after realloc: %v", err)
		}
	}
}

func TestReallocShrinkInPlace(t *testing.T) {
	h := newTestHeap()
	a, _ := h.Alloc(64)
	b, err := h.Realloc(a, 8)
	if err != nil || b != a {
		t.Fatalf("shrink: got %#x, %v; want in-place %#x", b, err, a)
	}
	if err := h.Check(a, 9); !errors.Is(err, ErrHeapOOB) {
		t.Fatalf("shrunk chunk still passes wide check: %v", err)
	}
}

func TestReallocNullActsAsMalloc(t *testing.T) {
	h := newTestHeap()
	a, err := h.Realloc(0, 24)
	if err != nil || a == 0 {
		t.Fatalf("realloc(NULL) = %#x, %v", a, err)
	}
}

func TestReallocFreedPointer(t *testing.T) {
	h := newTestHeap()
	a, _ := h.Alloc(16)
	_ = h.Free(a)
	if _, err := h.Realloc(a, 32); !errors.Is(err, ErrUseAfterFree) {
		t.Fatalf("realloc freed err = %v, want ErrUseAfterFree", err)
	}
}

func TestLeakedAndMarkInit(t *testing.T) {
	h := newTestHeap()
	init1, _ := h.Alloc(8)
	h.MarkInit()
	a, _ := h.Alloc(8)
	b, _ := h.Alloc(8)
	_ = h.Free(a)
	leaked := h.Leaked()
	if len(leaked) != 1 || leaked[0].Addr != b {
		t.Fatalf("Leaked = %+v, want just %#x", leaked, b)
	}
	// Init chunk still alive and not reported as leaked.
	if err := h.Check(init1, 8); err != nil {
		t.Fatalf("init chunk: %v", err)
	}
}

func TestAllocZeroedClearsMemory(t *testing.T) {
	m := NewMemory()
	h := NewHeap(m, 0x100000, 0x200000)
	a, _ := h.Alloc(32)
	_ = m.Write(a, []byte("garbagegarbagegarbagegarbage!!!!"))
	_ = h.Free(a)
	// Force reuse by filling the arena is overkill; just verify AllocZeroed
	// clears whatever it returns.
	b, err := h.AllocZeroed(32)
	if err != nil {
		t.Fatal(err)
	}
	got, _ := m.Read(b, 32)
	for _, v := range got {
		if v != 0 {
			t.Fatalf("calloc returned dirty memory: %v", got)
		}
	}
}

func TestHeapOOMAndFirstFit(t *testing.T) {
	m := NewMemory()
	h := NewHeap(m, 0x100000, 0x100000+4096)
	var addrs []uint64
	for {
		a, err := h.Alloc(256)
		if err != nil {
			if !errors.Is(err, ErrHeapOOM) {
				t.Fatalf("err = %v, want ErrHeapOOM", err)
			}
			break
		}
		addrs = append(addrs, a)
	}
	if len(addrs) == 0 {
		t.Fatal("no allocations succeeded")
	}
	// Free one in the middle; quarantine will hold it, so exhaust the
	// quarantine to make the gap reusable.
	h.quarantineCap = 0
	mid := addrs[len(addrs)/2]
	if err := h.Free(mid); err != nil {
		t.Fatal(err)
	}
	h.quarantine = nil
	a, err := h.Alloc(64)
	if err != nil {
		t.Fatalf("first-fit after free failed: %v", err)
	}
	if !h.Contains(a) {
		t.Fatalf("first-fit chunk %#x outside heap", a)
	}
}

func TestResetRestoresPristine(t *testing.T) {
	h := newTestHeap()
	for i := 0; i < 10; i++ {
		_, _ = h.Alloc(100)
	}
	e := h.Epoch()
	h.Reset()
	if h.LiveChunks() != 0 || h.LiveBytes() != 0 {
		t.Fatalf("after reset: %d chunks, %d bytes", h.LiveChunks(), h.LiveBytes())
	}
	if h.Epoch() == e {
		t.Fatal("epoch did not advance on reset")
	}
	a, err := h.Alloc(8)
	if err != nil || a != func() uint64 { nh := newTestHeap(); x, _ := nh.Alloc(8); return x }() {
		t.Fatalf("reset heap does not allocate like a fresh one: %#x, %v", a, err)
	}
}

func TestCloneIndependence(t *testing.T) {
	m := NewMemory()
	h := NewHeap(m, 0x100000, 0x200000)
	a, _ := h.Alloc(16)
	m2 := m.Fork()
	defer m2.Release()
	h2 := h.Clone(m2)
	b, _ := h2.Alloc(16)
	if h.LiveChunks() != 1 {
		t.Fatalf("clone allocation leaked into parent: %d chunks", h.LiveChunks())
	}
	if err := h2.Check(a, 16); err != nil {
		t.Fatalf("clone lost parent chunk: %v", err)
	}
	if err := h2.Check(b, 16); err != nil {
		t.Fatalf("clone chunk: %v", err)
	}
	_ = h2.Free(a)
	if err := h.Check(a, 16); err != nil {
		t.Fatalf("free in clone affected parent: %v", err)
	}
}

// Property: under random alloc/free sequences, live chunks never overlap,
// live-byte accounting matches, and every Check on live interiors passes.
func TestHeapInvariantsProperty(t *testing.T) {
	type op struct {
		Alloc bool
		Size  uint16
		Which uint8
	}
	f := func(ops []op) bool {
		h := newTestHeap()
		var live []Chunk
		var bytes uint64
		for _, o := range ops {
			if o.Alloc || len(live) == 0 {
				sz := uint64(o.Size%512) + 1
				a, err := h.Alloc(sz)
				if err != nil {
					continue
				}
				live = append(live, Chunk{Addr: a, Size: sz})
				bytes += sz
			} else {
				i := int(o.Which) % len(live)
				if err := h.Free(live[i].Addr); err != nil {
					return false
				}
				bytes -= live[i].Size
				live = append(live[:i], live[i+1:]...)
			}
		}
		if h.LiveBytes() != bytes || h.LiveChunks() != len(live) {
			return false
		}
		// No overlaps: pairwise via sorted order of the model.
		for i := range live {
			for j := range live {
				if i == j {
					continue
				}
				a, b := live[i], live[j]
				if a.Addr < b.Addr+b.Size && b.Addr < a.Addr+a.Size {
					return false
				}
			}
			if err := h.Check(live[i].Addr, int(live[i].Size)); err != nil {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}
