package mem

// Shadow is an ASan-style shadow plane over the heap segment: one shadow
// byte describes each 8-byte granule of application memory. The plane is
// sparse — shadow pages materialize on first poison/unpoison — because the
// fresh-process mechanism and the divergence sentinel build a whole VM per
// execution and must not pay for a flat shadow up front. An absent shadow
// page means "never allocated", which reads back as ShadowUnallocated.
//
// Encoding (per shadow byte):
//
//	0        the whole 8-byte granule is addressable
//	1..7     only the first k bytes of the granule are addressable
//	ShadowRedzone      redzone between chunks (right redzone / alignment gap)
//	ShadowFreed        granule belongs to a quarantined (freed) chunk
//	ShadowUnallocated  heap space never handed out (also the absent default)
type Shadow struct {
	base uint64 // first heap address covered
	end  uint64 // first address past the covered span

	// pages maps shadow-page index -> materialized shadow page. The index
	// is ((addr-base)>>ShadowScale)>>PageShift, so one shadow page covers
	// PageSize<<ShadowScale (32 KiB) of heap.
	pages map[uint64]*shadowPage

	// Dirty tracking for the harness: mirrors the Memory watch machinery.
	// When armed, the first mutation of each shadow page records it in
	// watchList so restore touches only pages the iteration changed.
	watchBits []uint64
	watchList []uint64
}

type shadowPage struct {
	data [PageSize]byte
}

// Shadow poison codes. Values 0..7 encode addressability; codes >= 0xf0
// classify why a granule is off-limits.
const (
	ShadowRedzone     = 0xfa
	ShadowFreed       = 0xfd
	ShadowUnallocated = 0xfc
)

// ShadowScale is log2 of the granule size: 1 shadow byte per 8 app bytes.
const ShadowScale = 3

// ShadowGranule is the granule size in bytes.
const ShadowGranule = 1 << ShadowScale

// NewShadow creates a shadow plane over the heap span [base, end).
func NewShadow(base, end uint64) *Shadow {
	return &Shadow{base: base, end: end, pages: make(map[uint64]*shadowPage)}
}

// Covers reports whether addr falls inside the shadowed span.
func (s *Shadow) Covers(addr uint64) bool { return addr >= s.base && addr < s.end }

// locate splits a heap address into shadow page index and in-page offset.
func (s *Shadow) locate(addr uint64) (uint64, int) {
	g := (addr - s.base) >> ShadowScale
	return g >> PageShift, int(g & (PageSize - 1))
}

// page returns the materialized shadow page pn, creating it (filled with
// ShadowUnallocated) on first write. Marks the page dirty when watched.
func (s *Shadow) page(pn uint64) *shadowPage {
	if s.watchBits != nil {
		s.markWatched(pn)
	}
	pg := s.pages[pn]
	if pg == nil {
		pg = &shadowPage{}
		for i := range pg.data {
			pg.data[i] = ShadowUnallocated
		}
		s.pages[pn] = pg
	}
	return pg
}

// shadowByte reads the shadow byte for the granule containing addr.
func (s *Shadow) shadowByte(addr uint64) byte {
	pn, off := s.locate(addr)
	pg := s.pages[pn]
	if pg == nil {
		return ShadowUnallocated
	}
	return pg.data[off]
}

// set writes shadow bytes for n consecutive granules starting at the
// granule containing addr.
func (s *Shadow) set(addr uint64, granules int, code byte) {
	for granules > 0 {
		pn, off := s.locate(addr)
		pg := s.page(pn)
		for off < PageSize && granules > 0 {
			pg.data[off] = code
			off++
			granules--
			addr += ShadowGranule
		}
	}
}

// Unpoison marks [addr, addr+size) addressable. addr must be granule
// aligned (the allocator's chunkAlign guarantees this). A trailing partial
// granule gets the 1..7 partial encoding so overruns inside the last word
// are still caught.
func (s *Shadow) Unpoison(addr, size uint64) {
	if size == 0 {
		return
	}
	full := size >> ShadowScale
	if full > 0 {
		s.set(addr, int(full), 0)
	}
	if rem := size & (ShadowGranule - 1); rem != 0 {
		s.set(addr+(full<<ShadowScale), 1, byte(rem))
	}
}

// Poison marks the granules of [addr, addr+size) off-limits with code,
// rounding size up to whole granules.
func (s *Shadow) Poison(addr, size uint64, code byte) {
	if size == 0 {
		return
	}
	granules := int((size + ShadowGranule - 1) >> ShadowScale)
	s.set(addr, granules, code)
}

// Check validates an n-byte access at addr (n <= 8, so the access spans at
// most two granules). It returns (0, true) when the access is addressable,
// or the offending poison code and false. A partial-granule overrun
// returns ShadowRedzone, since the bytes past the valid prefix are the
// chunk's tail redzone.
func (s *Shadow) Check(addr uint64, n int) (byte, bool) {
	if n <= 0 {
		return 0, true
	}
	last := addr + uint64(n) - 1
	k := s.shadowByte(addr)
	if k != 0 {
		if k >= 8 {
			return k, false
		}
		// Partial granule: only bytes [0,k) are valid, so the access must
		// end inside the prefix. A spanning access (off+n > 8 > k) fails
		// here too, which is right: bytes k..7 are the tail redzone.
		if (addr&(ShadowGranule-1))+uint64(n) > uint64(k) {
			return ShadowRedzone, false
		}
	}
	if (addr >> ShadowScale) != (last >> ShadowScale) {
		k2 := s.shadowByte(last)
		if k2 != 0 {
			if k2 >= 8 {
				return k2, false
			}
			if (last&(ShadowGranule-1))+1 > uint64(k2) {
				return ShadowRedzone, false
			}
		}
	}
	return 0, true
}

// Clone deep-copies the shadow plane (for VM forks and snapshot restore).
func (s *Shadow) Clone() *Shadow {
	ns := NewShadow(s.base, s.end)
	for pn, pg := range s.pages {
		cp := *pg
		ns.pages[pn] = &cp
	}
	return ns
}

// --- dirty tracking + snapshot/restore (harness integration) ---

// ShadowSnapshot is a point-in-time deep copy of the shadow plane,
// captured by the harness after deferred initialization.
type ShadowSnapshot struct {
	pages map[uint64]*shadowPage
}

// Snapshot captures the current shadow contents and arms dirty tracking,
// so a later RestoreDirty touches only pages mutated since this call.
func (s *Shadow) Snapshot() *ShadowSnapshot {
	snap := &ShadowSnapshot{pages: make(map[uint64]*shadowPage, len(s.pages))}
	for pn, pg := range s.pages {
		cp := *pg
		snap.pages[pn] = &cp
	}
	npages := ((s.end - s.base) >> ShadowScale >> PageShift) + 1
	s.watchBits = make([]uint64, (npages+63)/64)
	s.watchList = s.watchList[:0]
	return snap
}

func (s *Shadow) markWatched(pn uint64) {
	w, b := pn/64, pn%64
	if int(w) >= len(s.watchBits) {
		return
	}
	if s.watchBits[w]&(1<<b) == 0 {
		s.watchBits[w] |= 1 << b
		s.watchList = append(s.watchList, pn)
	}
}

// DirtyPages returns how many shadow pages have been mutated since the
// last Snapshot/ResetWatch.
func (s *Shadow) DirtyPages() int { return len(s.watchList) }

// RestoreDirty rolls every shadow page mutated since the last watch reset
// back to its snapshot contents, then re-arms tracking. Pages that did not
// exist at snapshot time are dropped (back to the absent/unallocated
// default). Returns the number of pages restored.
func (s *Shadow) RestoreDirty(snap *ShadowSnapshot) int {
	n := 0
	for _, pn := range s.watchList {
		if orig, ok := snap.pages[pn]; ok {
			cp := *orig
			s.pages[pn] = &cp
		} else {
			delete(s.pages, pn)
		}
		n++
	}
	s.ResetWatch()
	return n
}

// ResetWatch clears the dirty set without restoring anything.
func (s *Shadow) ResetWatch() {
	for _, pn := range s.watchList {
		w, b := pn/64, pn%64
		if int(w) < len(s.watchBits) {
			s.watchBits[w] &^= 1 << b
		}
	}
	s.watchList = s.watchList[:0]
}

// Equal reports whether the live shadow matches the snapshot — the restore
// watchdog's invariant check. Pages absent on either side compare equal
// only if the other side is entirely ShadowUnallocated.
func (s *Shadow) Equal(snap *ShadowSnapshot) bool {
	for pn, pg := range s.pages {
		if !shadowPagesEqual(pg, snap.pages[pn]) {
			return false
		}
	}
	for pn, pg := range snap.pages {
		if _, ok := s.pages[pn]; !ok && !shadowPagesEqual(pg, nil) {
			return false
		}
	}
	return true
}

func shadowPagesEqual(a, b *shadowPage) bool {
	if a == nil && b == nil {
		return true
	}
	if a == nil {
		a, b = b, a
	}
	if b == nil {
		for _, v := range a.data {
			if v != ShadowUnallocated {
				return false
			}
		}
		return true
	}
	return a.data == b.data
}
