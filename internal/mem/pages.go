// Package mem provides the memory substrate for the ClosureX virtual
// machine: a paged, flat address space with copy-on-write forking (the
// analogue of the kernel-level page management that an AFL++ forkserver
// relies on) and a heap allocator with a chunk map (the analogue of the
// malloc-family bookkeeping that ClosureX's HeapPass injects).
//
// Process-management cost in this reproduction is real work, not simulated
// sleep: a fresh "process" rebuilds the whole image, a forkserver child
// copies the page table and faults dirty pages, and a ClosureX iteration
// touches only the fine-grain state it restores. The relative costs of the
// paper's execution mechanisms therefore emerge from the data structures
// themselves.
package mem

import (
	"errors"
	"fmt"
)

// PageSize is the granularity of copy-on-write sharing, mirroring a 4 KiB
// hardware page.
const PageSize = 4096

// PageShift is log2(PageSize).
const PageShift = 12

// page is a reference-counted page frame. A page with refs > 1 is shared
// between a parent image and one or more copy-on-write forks and must be
// duplicated before any write.
type page struct {
	data [PageSize]byte
	refs int32
}

// Memory is a sparse, paged address space. The zero page (addresses below
// PageSize) is never mapped; accesses to it fault, which is how the VM's
// sanitizer turns NULL dereferences into reports.
type Memory struct {
	pages map[uint64]*page
	// limit is the maximum number of resident pages; exceeding it reports
	// an out-of-memory condition instead of letting a runaway target eat
	// the host.
	limit int
	// epoch counts page-table shape changes: a page mapped, privatized,
	// re-shared, released or newly shared with a fork. Any cached page
	// translation (TLB) is only valid while the epoch it was filled under
	// still matches. Page CONTENT writes do not bump the epoch — a
	// translation caches the frame, not the bytes.
	epoch uint64
	// trackDirty records every page privatized or newly mapped since the
	// last RestoreTo — the write-protection bookkeeping a kernel snapshot
	// module (AFL++ Snapshot LKM) maintains.
	trackDirty bool
	dirty      []uint64

	// Watch state: a write barrier over a fixed page range. Unlike
	// trackDirty (which only sees privatization/mapping events and exists
	// for CoW restore), the watch sees EVERY write to the watched range,
	// including writes to pages that are already private — the bookkeeping
	// ClosureX's dirty-tracking incremental restore needs. watchBits is a
	// dense bitmap over [watchLo, watchHi) page numbers; watchList is the
	// deduplicated list of dirtied page numbers since the last ResetWatch.
	watchLo   uint64
	watchHi   uint64
	watchBits []uint64
	watchList []uint64
}

// Common memory errors. The VM wraps these into sanitizer faults with
// program context attached.
var (
	ErrUnmapped = errors.New("mem: access to unmapped page")
	ErrNullPage = errors.New("mem: access to null page")
	ErrNoMemory = errors.New("mem: page limit exceeded")
)

// DefaultPageLimit bounds a single image to 64 MiB of resident pages.
const DefaultPageLimit = 16384

// NewMemory returns an empty address space with the default page limit.
func NewMemory() *Memory {
	return &Memory{pages: make(map[uint64]*page), limit: DefaultPageLimit}
}

// NewMemoryLimit returns an empty address space bounded to limit pages.
func NewMemoryLimit(limit int) *Memory {
	if limit <= 0 {
		limit = DefaultPageLimit
	}
	return &Memory{pages: make(map[uint64]*page), limit: limit}
}

// Pages reports the number of resident pages (shared pages count once per
// image that maps them, as in a real page table).
func (m *Memory) Pages() int { return len(m.pages) }

// Fork produces a copy-on-write duplicate of the address space: the page
// table is copied and every page becomes shared. This is the cost an AFL++
// forkserver pays per test case; it is O(resident pages) regardless of how
// little the test case will touch.
func (m *Memory) Fork() *Memory {
	child := &Memory{pages: make(map[uint64]*page, len(m.pages)), limit: m.limit}
	for pn, pg := range m.pages {
		pg.refs++
		child.pages[pn] = pg
	}
	// Every parent page just became shared: cached writable translations
	// into them must die, or a cached write would bleed into the child.
	m.epoch++
	return child
}

// Release drops every page reference held by this image. A forked child
// calls Release when the test case finishes, which is the analogue of
// process tear-down.
func (m *Memory) Release() {
	for pn, pg := range m.pages {
		pg.refs--
		delete(m.pages, pn)
	}
	m.epoch++
}

// mapPage returns the page for addr, allocating a private zeroed page on
// first touch.
func (m *Memory) mapPage(pn uint64) (*page, error) {
	if pg, ok := m.pages[pn]; ok {
		return pg, nil
	}
	if len(m.pages) >= m.limit {
		return nil, ErrNoMemory
	}
	pg := &page{refs: 1}
	m.pages[pn] = pg
	m.epoch++
	if m.trackDirty {
		m.dirty = append(m.dirty, pn)
	}
	return pg, nil
}

// writablePage returns a page that is private to this image, performing the
// copy-on-write duplication if the page is shared.
func (m *Memory) writablePage(pn uint64) (*page, error) {
	pg, err := m.mapPage(pn)
	if err != nil {
		return nil, err
	}
	if m.watchBits != nil {
		m.markWatched(pn)
	}
	if pg.refs > 1 {
		dup := &page{refs: 1}
		dup.data = pg.data
		pg.refs--
		m.pages[pn] = dup
		m.epoch++
		if m.trackDirty {
			m.dirty = append(m.dirty, pn)
		}
		return dup, nil
	}
	return pg, nil
}

// Watch arms the write barrier over [addr, addr+size): every subsequent
// write that touches a page in the range records that page as dirty, no
// matter whether the page was already private. Watching replaces any
// previous watch range. size == 0 disarms the barrier.
func (m *Memory) Watch(addr, size uint64) {
	if size == 0 {
		m.watchBits = nil
		m.watchList = m.watchList[:0]
		m.watchLo, m.watchHi = 0, 0
		return
	}
	m.watchLo = addr >> PageShift
	m.watchHi = (addr + size + PageSize - 1) >> PageShift
	m.watchBits = make([]uint64, (m.watchHi-m.watchLo+63)/64)
	m.watchList = m.watchList[:0]
}

// markWatched sets the dirty bit for pn when it falls inside the watched
// range; first-touch per window also appends it to the dirty list. The two
// compares are the entire hot-path cost when pn is outside the range.
func (m *Memory) markWatched(pn uint64) {
	if pn < m.watchLo || pn >= m.watchHi {
		return
	}
	m.setWatchBit(pn)
}

// setWatchBit records pn (already known to be inside the watched window)
// in the dirty bitmap and, on first touch, the dirty list.
func (m *Memory) setWatchBit(pn uint64) {
	off := pn - m.watchLo
	w, b := off/64, uint64(1)<<(off%64)
	if m.watchBits[w]&b == 0 {
		m.watchBits[w] |= b
		m.watchList = append(m.watchList, pn)
	}
}

// WatchedDirty returns the page numbers written since the last ResetWatch,
// in first-touch order. The slice is owned by the Memory and is only valid
// until the next ResetWatch.
func (m *Memory) WatchedDirty() []uint64 { return m.watchList }

// ResetWatch clears the dirty bits and list, starting a new watch window.
func (m *Memory) ResetWatch() {
	for _, pn := range m.watchList {
		off := pn - m.watchLo
		m.watchBits[off/64] &^= uint64(1) << (off % 64)
	}
	m.watchList = m.watchList[:0]
}

// TrackDirty enables (or disables) dirty-page recording and clears the
// current dirty list.
func (m *Memory) TrackDirty(on bool) {
	m.trackDirty = on
	m.dirty = m.dirty[:0]
}

// DirtyPages reports how many pages have been dirtied since tracking
// started or the last RestoreTo.
func (m *Memory) DirtyPages() int { return len(m.dirty) }

// RestoreTo undoes every dirty page against the snapshot parent: pages the
// parent also maps are re-shared copy-on-write, pages the parent lacks are
// unmapped. Cost is O(dirty pages) — the kernel-snapshot restore path,
// cheaper than a fork (O(all resident pages)) but page-granular, unlike
// ClosureX's byte-granular restoration.
func (m *Memory) RestoreTo(parent *Memory) {
	for _, pn := range m.dirty {
		pg := m.pages[pn]
		tp := parent.pages[pn]
		if pg == nil || pg == tp {
			continue // duplicate dirty entry already handled
		}
		pg.refs--
		if tp != nil {
			tp.refs++
			m.pages[pn] = tp
		} else {
			delete(m.pages, pn)
		}
	}
	m.dirty = m.dirty[:0]
	// Both page tables changed shape: ours re-shared/unmapped pages, and
	// the parent's previously-private pages may now be shared again.
	m.epoch++
	parent.epoch++
}

// Epoch returns the page-table epoch. Cached translations (TLB entries)
// filled under an older epoch must be discarded.
func (m *Memory) Epoch() uint64 { return m.epoch }

// WatchArmed reports whether the write barrier is armed. Callers that
// write page data directly through a cached translation must consult it
// and call MarkWatched on every write while it is armed.
func (m *Memory) WatchArmed() bool { return m.watchBits != nil }

// MarkWatched records a write to page pn against the armed watch barrier.
// No-op when the barrier is disarmed or pn is outside the watched window;
// that disarmed/out-of-window path is the entire hot-path cost.
func (m *Memory) MarkWatched(pn uint64) {
	if m.watchBits == nil || pn < m.watchLo || pn >= m.watchHi {
		return
	}
	m.setWatchBit(pn)
}

// ---- translation lookaside buffer ----

// TLBBits sizes the direct-mapped translation cache (64 entries covers
// 256 KiB of working set at 4 KiB pages).
const TLBBits = 6

// TLBSize is the entry count of a TLB.
const TLBSize = 1 << TLBBits

// TLBEntry caches one page translation. Tag is pn+1 (0 = empty). Data
// points at the page frame, or is nil for a cached "unmapped" verdict
// (demand-zero reads); W marks the frame private and safe to write
// through. An entry is only meaningful while the owning TLB's Epoch
// matches the Memory's.
type TLBEntry struct {
	Tag  uint64
	Data *[PageSize]byte
	W    bool
}

// TLB is a per-executor direct-mapped page-translation cache. Execution
// backends embed one per machine and consult it inline; Fill/FillW are
// the miss paths. The zero value is ready to use (every entry empty,
// epoch 0 — the first epoch mismatch or empty tag forces a fill).
type TLB struct {
	Epoch uint64
	E     [TLBSize]TLBEntry
}

// reset empties every entry and adopts the given epoch.
func (t *TLB) reset(epoch uint64) {
	*t = TLB{Epoch: epoch}
}

// TLBFill resolves a read translation for page pn into t and returns the
// entry. Unmapped pages cache a nil-Data entry (reads are demand-zero);
// the entry's W reports whether it is also write-safe.
func (m *Memory) TLBFill(t *TLB, pn uint64) *TLBEntry {
	if t.Epoch != m.epoch {
		t.reset(m.epoch)
	}
	e := &t.E[pn&(TLBSize-1)]
	pg := m.pages[pn]
	if pg == nil {
		e.Tag, e.Data, e.W = pn+1, nil, false
		return e
	}
	e.Tag, e.Data, e.W = pn+1, &pg.data, pg.refs == 1
	return e
}

// TLBFillW resolves a writable translation for page pn into t, mapping or
// privatizing the page as needed (which may advance the epoch — the TLB
// is resynced afterwards). The returned entry always has W set. The
// caller must still honor the watch barrier (WatchArmed/MarkWatched) on
// every write made through the cached entry; this fill itself records the
// write the caller is about to perform.
func (m *Memory) TLBFillW(t *TLB, pn uint64) (*TLBEntry, error) {
	pg, err := m.writablePage(pn)
	if err != nil {
		return nil, err
	}
	if t.Epoch != m.epoch {
		t.reset(m.epoch)
	}
	e := &t.E[pn&(TLBSize-1)]
	e.Tag, e.Data, e.W = pn+1, &pg.data, true
	return e, nil
}

func checkAddr(addr uint64, n int) error {
	if addr < PageSize {
		return ErrNullPage
	}
	if n < 0 || addr+uint64(n) < addr {
		return fmt.Errorf("mem: address overflow at %#x+%d", addr, n)
	}
	return nil
}

// LoadByte reads one byte. Reading an unmapped (never written) page returns
// zero, matching demand-zero semantics.
func (m *Memory) LoadByte(addr uint64) (byte, error) {
	if addr < PageSize {
		return 0, ErrNullPage
	}
	pg, ok := m.pages[addr>>PageShift]
	if !ok {
		return 0, nil
	}
	return pg.data[addr&(PageSize-1)], nil
}

// PageView returns a read-only view of the mapped page pn, or nil when
// the page is absent (absent memory reads as zero). The view aliases live
// page storage: callers must not write through it and must not hold it
// across any operation that could remap pages.
func (m *Memory) PageView(pn uint64) []byte {
	if pg, ok := m.pages[pn]; ok {
		return pg.data[:]
	}
	return nil
}

// StoreByte writes one byte, mapping or privatizing the page as needed.
func (m *Memory) StoreByte(addr uint64, v byte) error {
	if addr < PageSize {
		return ErrNullPage
	}
	pg, err := m.writablePage(addr >> PageShift)
	if err != nil {
		return err
	}
	pg.data[addr&(PageSize-1)] = v
	return nil
}

// Read copies n bytes starting at addr into a fresh slice.
func (m *Memory) Read(addr uint64, n int) ([]byte, error) {
	if err := checkAddr(addr, n); err != nil {
		return nil, err
	}
	out := make([]byte, n)
	if err := m.ReadInto(addr, out); err != nil {
		return nil, err
	}
	return out, nil
}

// ReadInto fills dst with the bytes at addr.
func (m *Memory) ReadInto(addr uint64, dst []byte) error {
	if err := checkAddr(addr, len(dst)); err != nil {
		return err
	}
	for len(dst) > 0 {
		off := addr & (PageSize - 1)
		n := PageSize - int(off)
		if n > len(dst) {
			n = len(dst)
		}
		if pg, ok := m.pages[addr>>PageShift]; ok {
			copy(dst[:n], pg.data[off:off+uint64(n)])
		} else {
			for i := 0; i < n; i++ {
				dst[i] = 0
			}
		}
		dst = dst[n:]
		addr += uint64(n)
	}
	return nil
}

// Write stores src at addr.
func (m *Memory) Write(addr uint64, src []byte) error {
	if err := checkAddr(addr, len(src)); err != nil {
		return err
	}
	for len(src) > 0 {
		off := addr & (PageSize - 1)
		n := PageSize - int(off)
		if n > len(src) {
			n = len(src)
		}
		pg, err := m.writablePage(addr >> PageShift)
		if err != nil {
			return err
		}
		copy(pg.data[off:off+uint64(n)], src[:n])
		src = src[n:]
		addr += uint64(n)
	}
	return nil
}

// ReadUint reads a little-endian unsigned integer of size 1, 2, 4 or 8.
func (m *Memory) ReadUint(addr uint64, size int) (uint64, error) {
	if addr < PageSize {
		return 0, ErrNullPage
	}
	// Fast path: the value sits within one page.
	off := addr & (PageSize - 1)
	if int(off)+size <= PageSize {
		pg := m.pages[addr>>PageShift]
		if pg == nil {
			return 0, nil
		}
		b := pg.data[off:]
		switch size {
		case 1:
			return uint64(b[0]), nil
		case 2:
			return uint64(b[0]) | uint64(b[1])<<8, nil
		case 4:
			return uint64(b[0]) | uint64(b[1])<<8 | uint64(b[2])<<16 | uint64(b[3])<<24, nil
		case 8:
			return uint64(b[0]) | uint64(b[1])<<8 | uint64(b[2])<<16 | uint64(b[3])<<24 |
				uint64(b[4])<<32 | uint64(b[5])<<40 | uint64(b[6])<<48 | uint64(b[7])<<56, nil
		}
	}
	var buf [8]byte
	if err := m.ReadInto(addr, buf[:size]); err != nil {
		return 0, err
	}
	var v uint64
	for i := size - 1; i >= 0; i-- {
		v = v<<8 | uint64(buf[i])
	}
	return v, nil
}

// WriteUint stores a little-endian unsigned integer of size 1, 2, 4 or 8.
func (m *Memory) WriteUint(addr uint64, v uint64, size int) error {
	if addr < PageSize {
		return ErrNullPage
	}
	off := addr & (PageSize - 1)
	if int(off)+size <= PageSize {
		pg, err := m.writablePage(addr >> PageShift)
		if err != nil {
			return err
		}
		b := pg.data[off:]
		switch size {
		case 1:
			b[0] = byte(v)
			return nil
		case 2:
			b[0], b[1] = byte(v), byte(v>>8)
			return nil
		case 4:
			b[0], b[1], b[2], b[3] = byte(v), byte(v>>8), byte(v>>16), byte(v>>24)
			return nil
		case 8:
			b[0], b[1], b[2], b[3] = byte(v), byte(v>>8), byte(v>>16), byte(v>>24)
			b[4], b[5], b[6], b[7] = byte(v>>32), byte(v>>40), byte(v>>48), byte(v>>56)
			return nil
		}
	}
	var buf [8]byte
	for i := 0; i < size; i++ {
		buf[i] = byte(v >> (8 * i))
	}
	return m.Write(addr, buf[:size])
}

// Zero clears n bytes starting at addr. Pages that are entirely covered and
// not yet mapped are left unmapped (they already read as zero).
func (m *Memory) Zero(addr uint64, n int) error {
	if err := checkAddr(addr, n); err != nil {
		return err
	}
	for n > 0 {
		off := addr & (PageSize - 1)
		cn := PageSize - int(off)
		if cn > n {
			cn = n
		}
		pn := addr >> PageShift
		if pg, ok := m.pages[pn]; ok {
			if off == 0 && cn == PageSize && pg.refs == 1 {
				if m.watchBits != nil {
					m.markWatched(pn)
				}
				pg.data = [PageSize]byte{}
			} else {
				wp, err := m.writablePage(pn)
				if err != nil {
					return err
				}
				for i := uint64(0); i < uint64(cn); i++ {
					wp.data[off+i] = 0
				}
			}
		}
		n -= cn
		addr += uint64(cn)
	}
	return nil
}
