package mem

import "testing"

const (
	shBase = uint64(0x40000000)
	shEnd  = shBase + 1<<20
)

func TestShadowDefaultUnallocated(t *testing.T) {
	s := NewShadow(shBase, shEnd)
	if code, ok := s.Check(shBase, 8); ok || code != ShadowUnallocated {
		t.Fatalf("untouched heap: got (%#x,%v), want (ShadowUnallocated,false)", code, ok)
	}
	if !s.Covers(shBase) || !s.Covers(shEnd-1) || s.Covers(shEnd) || s.Covers(shBase-1) {
		t.Fatal("Covers bounds wrong")
	}
}

func TestShadowUnpoisonPartialGranule(t *testing.T) {
	s := NewShadow(shBase, shEnd)
	s.Unpoison(shBase, 13) // one full granule + 5-byte partial
	for n := 1; n <= 8; n++ {
		if _, ok := s.Check(shBase, n); !ok {
			t.Fatalf("full granule read of %d bytes rejected", n)
		}
	}
	// Bytes 8..12 valid, 13.. invalid.
	if _, ok := s.Check(shBase+8, 5); !ok {
		t.Fatal("valid partial prefix rejected")
	}
	if code, ok := s.Check(shBase+8, 6); ok || code != ShadowRedzone {
		t.Fatalf("tail overrun: got (%#x,%v), want redzone", code, ok)
	}
	if code, ok := s.Check(shBase+12, 1); !ok || code != 0 {
		t.Fatalf("last valid byte rejected (%#x,%v)", code, ok)
	}
	if _, ok := s.Check(shBase+13, 1); ok {
		t.Fatal("first invalid byte accepted")
	}
}

func TestShadowSpanningAccess(t *testing.T) {
	s := NewShadow(shBase, shEnd)
	s.Unpoison(shBase, 16)
	s.Poison(shBase+16, 16, ShadowRedzone)
	// An 8-byte access at offset 12 straddles granule 1 (valid) and granule
	// 2 (redzone): must fail with the redzone code.
	if code, ok := s.Check(shBase+12, 8); ok || code != ShadowRedzone {
		t.Fatalf("straddling access: got (%#x,%v), want redzone", code, ok)
	}
	// Straddling two valid granules passes.
	if _, ok := s.Check(shBase+4, 8); !ok {
		t.Fatal("straddle within valid span rejected")
	}
	// A spanning access whose FIRST granule is partial must fail even though
	// it begins inside the valid prefix (regression for the prefix check).
	s2 := NewShadow(shBase, shEnd)
	s2.Unpoison(shBase, 4)
	if code, ok := s2.Check(shBase+2, 8); ok || code != ShadowRedzone {
		t.Fatalf("partial-first-granule span: got (%#x,%v), want redzone", code, ok)
	}
}

func TestShadowPoisonCodesSurvive(t *testing.T) {
	s := NewShadow(shBase, shEnd)
	s.Unpoison(shBase, 32)
	s.Poison(shBase, 32, ShadowFreed)
	if code, ok := s.Check(shBase+8, 4); ok || code != ShadowFreed {
		t.Fatalf("freed granule: got (%#x,%v), want ShadowFreed", code, ok)
	}
	s.Unpoison(shBase, 32)
	if _, ok := s.Check(shBase, 8); !ok {
		t.Fatal("re-unpoisoned granule rejected")
	}
}

func TestShadowCloneIndependence(t *testing.T) {
	s := NewShadow(shBase, shEnd)
	s.Unpoison(shBase, 64)
	c := s.Clone()
	s.Poison(shBase, 64, ShadowFreed)
	if _, ok := c.Check(shBase, 8); !ok {
		t.Fatal("clone affected by original's poison")
	}
	if _, ok := s.Check(shBase, 8); ok {
		t.Fatal("original not poisoned")
	}
}

func TestShadowSnapshotRestoreDirty(t *testing.T) {
	s := NewShadow(shBase, shEnd)
	s.Unpoison(shBase, 128) // init-time state
	snap := s.Snapshot()
	if got := s.DirtyPages(); got != 0 {
		t.Fatalf("dirty pages right after snapshot: %d", got)
	}
	// Mutations on two distinct shadow pages: one existing, one that did not
	// exist at snapshot time.
	s.Poison(shBase, 64, ShadowFreed)
	farAddr := shBase + uint64(PageSize<<ShadowScale)*3
	s.Unpoison(farAddr, 32)
	if got := s.DirtyPages(); got != 2 {
		t.Fatalf("dirty pages = %d, want 2", got)
	}
	if n := s.RestoreDirty(snap); n != 2 {
		t.Fatalf("RestoreDirty restored %d pages, want 2", n)
	}
	if !s.Equal(snap) {
		t.Fatal("shadow differs from snapshot after restore")
	}
	if _, ok := s.Check(shBase, 8); !ok {
		t.Fatal("init-time unpoison lost in restore")
	}
	if code, _ := s.Check(farAddr, 8); code != ShadowUnallocated {
		t.Fatalf("snapshot-absent page not dropped: code %#x", code)
	}
	// Dirty tracking re-armed: next mutation is tracked again.
	s.Poison(shBase, 8, ShadowRedzone)
	if got := s.DirtyPages(); got != 1 {
		t.Fatalf("dirty pages after re-arm = %d, want 1", got)
	}
}

func TestShadowEqualTreatsAbsentAsUnallocated(t *testing.T) {
	s := NewShadow(shBase, shEnd)
	snap := s.Snapshot()
	// Materialize a page without changing its logical contents.
	s.Poison(shBase, 8, ShadowUnallocated)
	if !s.Equal(snap) {
		t.Fatal("all-unallocated materialized page should equal absent page")
	}
	s.Unpoison(shBase, 8)
	if s.Equal(snap) {
		t.Fatal("differing shadow reported equal")
	}
}

// TestHeapShadowIntegration drives the allocator with the shadow attached:
// allocations unpoison, redzones poison, frees quarantine-poison, and the
// quarantine snapshot/restore round-trips.
func TestHeapShadowIntegration(t *testing.T) {
	m := NewMemory()
	h := NewHeap(m, shBase, shEnd)
	h.AttachShadow()
	sh := h.Shadow()

	h.NoteSite("alpha", 10)
	a, err := h.Alloc(12)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := sh.Check(a, 8); !ok {
		t.Fatal("allocated bytes poisoned")
	}
	if _, ok := sh.Check(a+8, 4); !ok {
		t.Fatal("allocated partial tail poisoned")
	}
	if code, ok := sh.Check(a+12, 1); ok || code != ShadowRedzone {
		t.Fatalf("tail redzone readable: (%#x,%v)", code, ok)
	}
	if code, ok := sh.Check(a+16, 8); ok || code != ShadowRedzone {
		t.Fatalf("alignment-gap redzone readable: (%#x,%v)", code, ok)
	}
	c, live := h.ChunkAt(a)
	if !live || c.AllocFn != "alpha" || c.AllocLine != 10 {
		t.Fatalf("allocation site not recorded: %+v", c)
	}

	quarBefore := h.QuarantineSnapshot()
	h.NoteSite("beta", 20)
	if err := h.Free(a); err != nil {
		t.Fatal(err)
	}
	if code, ok := sh.Check(a, 8); ok || code != ShadowFreed {
		t.Fatalf("freed chunk not poisoned: (%#x,%v)", code, ok)
	}
	q, freed := h.QuarantinedAt(a)
	if !freed || q.FreeFn != "beta" || q.FreeLine != 20 || q.AllocFn != "alpha" {
		t.Fatalf("quarantined chunk sites wrong: %+v", q)
	}
	if h.QuarantineLen() != len(quarBefore)+1 {
		t.Fatalf("quarantine len %d, want %d", h.QuarantineLen(), len(quarBefore)+1)
	}
	h.RestoreQuarantine(quarBefore)
	if h.QuarantineLen() != len(quarBefore) {
		t.Fatal("RestoreQuarantine did not roll back")
	}
	if _, freed := h.QuarantinedAt(a); freed {
		t.Fatal("freed chunk survived quarantine restore")
	}
}

// TestHeapShadowRealloc checks the shrink-in-place and move paths keep the
// shadow consistent.
func TestHeapShadowRealloc(t *testing.T) {
	m := NewMemory()
	h := NewHeap(m, shBase, shEnd)
	h.AttachShadow()
	sh := h.Shadow()
	a, err := h.Alloc(32)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Write(a, []byte("0123456789abcdef")); err != nil {
		t.Fatal(err)
	}
	// Shrink in place: tail becomes redzone.
	b, err := h.Realloc(a, 8)
	if err != nil || b != a {
		t.Fatalf("shrink: addr %#x err %v", b, err)
	}
	if _, ok := sh.Check(a, 8); !ok {
		t.Fatal("shrunk chunk head poisoned")
	}
	if code, ok := sh.Check(a+8, 8); ok || code != ShadowRedzone {
		t.Fatalf("shrunk tail not redzoned: (%#x,%v)", code, ok)
	}
	// Grow: moves; old span must be quarantine-poisoned.
	cAddr, err := h.Realloc(a, 64)
	if err != nil {
		t.Fatal(err)
	}
	if cAddr == a {
		t.Fatal("grow should have moved the chunk")
	}
	if _, ok := sh.Check(cAddr, 8); !ok {
		t.Fatal("moved chunk poisoned")
	}
	if code, ok := sh.Check(a, 8); ok || code != ShadowFreed {
		t.Fatalf("old span after move: (%#x,%v), want freed", code, ok)
	}
}
