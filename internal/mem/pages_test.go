package mem

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestReadUnmappedIsZero(t *testing.T) {
	m := NewMemory()
	b, err := m.Read(0x10000, 16)
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	for _, v := range b {
		if v != 0 {
			t.Fatalf("unmapped read returned %v, want zeros", b)
		}
	}
}

func TestNullPageFaults(t *testing.T) {
	m := NewMemory()
	if _, err := m.LoadByte(0); err != ErrNullPage {
		t.Errorf("LoadByte(0) err = %v, want ErrNullPage", err)
	}
	if err := m.StoreByte(PageSize-1, 1); err != ErrNullPage {
		t.Errorf("StoreByte(PageSize-1) err = %v, want ErrNullPage", err)
	}
	if _, err := m.ReadUint(100, 8); err != ErrNullPage {
		t.Errorf("ReadUint(100) err = %v, want ErrNullPage", err)
	}
	if err := m.Write(0x800, []byte{1}); err != ErrNullPage {
		t.Errorf("Write(0x800) err = %v, want ErrNullPage", err)
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	m := NewMemory()
	data := []byte("the quick brown fox jumps over the lazy dog")
	// Straddle a page boundary on purpose.
	addr := uint64(2*PageSize - 10)
	if err := m.Write(addr, data); err != nil {
		t.Fatalf("Write: %v", err)
	}
	got, err := m.Read(addr, len(data))
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	if !bytes.Equal(got, data) {
		t.Fatalf("round trip: got %q want %q", got, data)
	}
}

func TestReadWriteUintSizes(t *testing.T) {
	m := NewMemory()
	cases := []struct {
		size int
		v    uint64
	}{
		{1, 0xab}, {2, 0xbeef}, {4, 0xdeadbeef}, {8, 0x0123456789abcdef},
	}
	addr := uint64(0x40000)
	for _, c := range cases {
		if err := m.WriteUint(addr, c.v, c.size); err != nil {
			t.Fatalf("WriteUint size %d: %v", c.size, err)
		}
		got, err := m.ReadUint(addr, c.size)
		if err != nil {
			t.Fatalf("ReadUint size %d: %v", c.size, err)
		}
		if got != c.v {
			t.Errorf("size %d: got %#x want %#x", c.size, got, c.v)
		}
		addr += 64
	}
	// Cross-page integer.
	addr = 3*PageSize - 3
	if err := m.WriteUint(addr, 0x1122334455667788, 8); err != nil {
		t.Fatalf("WriteUint cross-page: %v", err)
	}
	got, err := m.ReadUint(addr, 8)
	if err != nil {
		t.Fatalf("ReadUint cross-page: %v", err)
	}
	if got != 0x1122334455667788 {
		t.Errorf("cross-page: got %#x", got)
	}
}

func TestUintEndianness(t *testing.T) {
	m := NewMemory()
	addr := uint64(0x50000)
	if err := m.WriteUint(addr, 0x04030201, 4); err != nil {
		t.Fatal(err)
	}
	b, _ := m.Read(addr, 4)
	if !bytes.Equal(b, []byte{1, 2, 3, 4}) {
		t.Fatalf("little-endian layout: got %v", b)
	}
}

func TestForkIsolation(t *testing.T) {
	parent := NewMemory()
	addr := uint64(0x10000)
	if err := parent.Write(addr, []byte("parent")); err != nil {
		t.Fatal(err)
	}
	child := parent.Fork()
	// Child sees parent data.
	got, _ := child.Read(addr, 6)
	if string(got) != "parent" {
		t.Fatalf("child read %q, want parent", got)
	}
	// Child writes are invisible to parent.
	if err := child.Write(addr, []byte("child!")); err != nil {
		t.Fatal(err)
	}
	got, _ = parent.Read(addr, 6)
	if string(got) != "parent" {
		t.Fatalf("parent sees child write: %q", got)
	}
	// Parent writes after fork are invisible to child.
	if err := parent.Write(addr+100, []byte("late")); err != nil {
		t.Fatal(err)
	}
	got, _ = child.Read(addr+100, 4)
	if string(got) == "late" {
		t.Fatalf("child sees parent's post-fork write")
	}
	child.Release()
	// Parent still intact after child release.
	got, _ = parent.Read(addr, 6)
	if string(got) != "parent" {
		t.Fatalf("parent corrupted after child release: %q", got)
	}
}

func TestForkSharesUntouchedPages(t *testing.T) {
	parent := NewMemory()
	for i := 0; i < 32; i++ {
		if err := parent.StoreByte(uint64(0x10000+i*PageSize), byte(i)); err != nil {
			t.Fatal(err)
		}
	}
	child := parent.Fork()
	defer child.Release()
	// Before any child write, every page is shared: same backing objects.
	for pn, pg := range parent.pages {
		if child.pages[pn] != pg {
			t.Fatalf("page %#x not shared after fork", pn)
		}
		if pg.refs != 2 {
			t.Fatalf("page %#x refs = %d, want 2", pn, pg.refs)
		}
	}
	// A single child write privatizes exactly one page.
	if err := child.StoreByte(0x10000, 99); err != nil {
		t.Fatal(err)
	}
	priv := 0
	for pn, pg := range child.pages {
		if parent.pages[pn] != pg {
			priv++
		}
	}
	if priv != 1 {
		t.Fatalf("privatized %d pages after one write, want 1", priv)
	}
}

func TestPageLimit(t *testing.T) {
	m := NewMemoryLimit(2)
	if err := m.StoreByte(PageSize, 1); err != nil {
		t.Fatal(err)
	}
	if err := m.StoreByte(2*PageSize, 1); err != nil {
		t.Fatal(err)
	}
	if err := m.StoreByte(3*PageSize, 1); err != ErrNoMemory {
		t.Fatalf("err = %v, want ErrNoMemory", err)
	}
}

func TestZero(t *testing.T) {
	m := NewMemory()
	addr := uint64(4*PageSize - 8)
	if err := m.Write(addr, bytes.Repeat([]byte{0xff}, 32)); err != nil {
		t.Fatal(err)
	}
	if err := m.Zero(addr+4, 20); err != nil {
		t.Fatal(err)
	}
	got, _ := m.Read(addr, 32)
	for i, v := range got {
		want := byte(0xff)
		if i >= 4 && i < 24 {
			want = 0
		}
		if v != want {
			t.Fatalf("byte %d = %#x, want %#x (%v)", i, v, want, got)
		}
	}
}

func TestZeroWholePageFast(t *testing.T) {
	m := NewMemory()
	base := uint64(8 * PageSize)
	if err := m.Write(base, bytes.Repeat([]byte{1}, PageSize)); err != nil {
		t.Fatal(err)
	}
	if err := m.Zero(base, PageSize); err != nil {
		t.Fatal(err)
	}
	b, _ := m.Read(base, PageSize)
	for _, v := range b {
		if v != 0 {
			t.Fatal("whole-page zero left nonzero bytes")
		}
	}
}

// Property: any interleaving of writes to parent and a CoW child keeps the
// two address spaces fully independent (differential model check against two
// plain maps).
func TestForkIsolationProperty(t *testing.T) {
	f := func(ops []struct {
		ToChild bool
		Off     uint16
		Val     byte
	}) bool {
		parent := NewMemory()
		seed := []byte("seed data for the shared image 0123456789")
		base := uint64(0x20000)
		if err := parent.Write(base, seed); err != nil {
			return false
		}
		child := parent.Fork()
		defer child.Release()
		pModel := map[uint64]byte{}
		cModel := map[uint64]byte{}
		for i, b := range seed {
			pModel[base+uint64(i)] = b
			cModel[base+uint64(i)] = b
		}
		for _, op := range ops {
			addr := base + uint64(op.Off)%8192
			if op.ToChild {
				if err := child.StoreByte(addr, op.Val); err != nil {
					return false
				}
				cModel[addr] = op.Val
			} else {
				if err := parent.StoreByte(addr, op.Val); err != nil {
					return false
				}
				pModel[addr] = op.Val
			}
		}
		for a, v := range pModel {
			got, err := parent.LoadByte(a)
			if err != nil || got != v {
				return false
			}
		}
		for a, v := range cModel {
			got, err := child.LoadByte(a)
			if err != nil || got != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: Write/Read round-trips arbitrary payloads at arbitrary offsets.
func TestWriteReadProperty(t *testing.T) {
	f := func(off uint16, data []byte) bool {
		if len(data) > 3*PageSize {
			data = data[:3*PageSize]
		}
		m := NewMemory()
		addr := uint64(PageSize) + uint64(off)
		if err := m.Write(addr, data); err != nil {
			return false
		}
		got, err := m.Read(addr, len(data))
		if err != nil {
			return false
		}
		return bytes.Equal(got, data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkForkRelease(b *testing.B) {
	parent := NewMemory()
	for i := 0; i < 1024; i++ { // 4 MiB resident image
		_ = parent.StoreByte(uint64((i+1)*PageSize), byte(i))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := parent.Fork()
		_ = c.StoreByte(PageSize, 1) // one dirty page, like a tiny test case
		c.Release()
	}
}

// pagesOf is a test helper returning WatchedDirty as a plain slice copy.
func pagesOf(m *Memory) []uint64 {
	return append([]uint64(nil), m.WatchedDirty()...)
}

func TestWatchRecordsWritesInRange(t *testing.T) {
	m := NewMemory()
	base := uint64(4 * PageSize)
	m.Watch(base, 4*PageSize) // pages 4..7

	if err := m.StoreByte(base, 1); err != nil { // page 4
		t.Fatal(err)
	}
	if err := m.StoreByte(base+2*PageSize+17, 2); err != nil { // page 6
		t.Fatal(err)
	}
	if err := m.StoreByte(base-1, 3); err != nil { // page 3, outside
		t.Fatal(err)
	}
	if err := m.StoreByte(base+4*PageSize, 4); err != nil { // page 8, outside
		t.Fatal(err)
	}

	got := pagesOf(m)
	want := []uint64{4, 6}
	if len(got) != len(want) || got[0] != want[0] || got[1] != want[1] {
		t.Fatalf("WatchedDirty = %v, want %v (first-touch order)", got, want)
	}
}

func TestWatchDeduplicatesRepeatedWrites(t *testing.T) {
	m := NewMemory()
	base := uint64(2 * PageSize)
	m.Watch(base, 2*PageSize)
	for i := 0; i < 100; i++ {
		if err := m.StoreByte(base+uint64(i), byte(i)); err != nil {
			t.Fatal(err)
		}
	}
	if got := pagesOf(m); len(got) != 1 || got[0] != 2 {
		t.Fatalf("WatchedDirty = %v, want [2]", got)
	}
}

func TestWatchSeesWritesToPrivatePages(t *testing.T) {
	// Unlike trackDirty (which only fires on privatization/mapping), the
	// watch must record writes to pages that are already private — that is
	// the whole point of the barrier for incremental restore.
	m := NewMemory()
	base := uint64(8 * PageSize)
	if err := m.StoreByte(base, 1); err != nil { // page now mapped + private
		t.Fatal(err)
	}
	m.Watch(base, PageSize)
	m.ResetWatch()
	if err := m.StoreByte(base+1, 2); err != nil {
		t.Fatal(err)
	}
	if got := pagesOf(m); len(got) != 1 || got[0] != 8 {
		t.Fatalf("write to already-private page not recorded: WatchedDirty = %v", got)
	}
}

func TestWatchResetStartsNewWindow(t *testing.T) {
	m := NewMemory()
	base := uint64(PageSize)
	m.Watch(base, 3*PageSize) // pages 1..3

	if err := m.StoreByte(base, 1); err != nil {
		t.Fatal(err)
	}
	if err := m.StoreByte(base+PageSize, 1); err != nil {
		t.Fatal(err)
	}
	if got := pagesOf(m); len(got) != 2 {
		t.Fatalf("before reset: WatchedDirty = %v, want 2 pages", got)
	}

	m.ResetWatch()
	if got := pagesOf(m); len(got) != 0 {
		t.Fatalf("after reset: WatchedDirty = %v, want empty", got)
	}

	// The bits must be cleared too, or re-dirtied pages would be missed.
	if err := m.StoreByte(base+PageSize, 2); err != nil {
		t.Fatal(err)
	}
	if got := pagesOf(m); len(got) != 1 || got[0] != 2 {
		t.Fatalf("after reset + write: WatchedDirty = %v, want [2]", got)
	}
}

func TestWatchDisarm(t *testing.T) {
	m := NewMemory()
	base := uint64(PageSize)
	m.Watch(base, PageSize)
	if err := m.StoreByte(base, 1); err != nil {
		t.Fatal(err)
	}
	if got := pagesOf(m); len(got) != 1 {
		t.Fatalf("armed: WatchedDirty = %v, want 1 page", got)
	}

	m.Watch(0, 0) // disarm
	if got := pagesOf(m); len(got) != 0 {
		t.Fatalf("disarmed: WatchedDirty = %v, want empty", got)
	}
	if err := m.StoreByte(base, 2); err != nil {
		t.Fatal(err)
	}
	if got := pagesOf(m); len(got) != 0 {
		t.Fatalf("disarmed write recorded: WatchedDirty = %v", got)
	}
}

func TestWatchZeroFastPath(t *testing.T) {
	// Zero on a whole resident private page takes a fast path that skips
	// writablePage; it must still feed the watch barrier.
	m := NewMemory()
	base := uint64(5 * PageSize)
	if err := m.StoreByte(base, 0xff); err != nil {
		t.Fatal(err)
	}
	m.Watch(base, PageSize)
	m.ResetWatch()
	if err := m.Zero(base, PageSize); err != nil {
		t.Fatal(err)
	}
	if got := pagesOf(m); len(got) != 1 || got[0] != 5 {
		t.Fatalf("Zero fast path not recorded: WatchedDirty = %v, want [5]", got)
	}
	b, err := m.Read(base, 1)
	if err != nil || b[0] != 0 {
		t.Fatalf("page not zeroed: %v %v", b, err)
	}
}

func TestWatchSurvivesCoWPrivatization(t *testing.T) {
	// A write that privatizes a shared page (post-fork CoW) must be
	// recorded exactly once, against the child doing the write.
	parent := NewMemory()
	base := uint64(3 * PageSize)
	if err := parent.StoreByte(base, 7); err != nil {
		t.Fatal(err)
	}
	child := parent.Fork()
	child.Watch(base, PageSize)
	if err := child.StoreByte(base, 9); err != nil {
		t.Fatal(err)
	}
	if got := pagesOf(child); len(got) != 1 || got[0] != 3 {
		t.Fatalf("CoW write not recorded: WatchedDirty = %v, want [3]", got)
	}
	if got := pagesOf(parent); len(got) != 0 {
		t.Fatalf("parent saw child's write: WatchedDirty = %v", got)
	}
	b, _ := parent.Read(base, 1)
	if b[0] != 7 {
		t.Fatalf("parent page corrupted: %d", b[0])
	}
	child.Release()
}
