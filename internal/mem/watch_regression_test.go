package mem

import "testing"

// TestZeroFullPageFastPathMarksWatched is the write-barrier-bypass audit
// regression from the sanitizer PR: Memory.Zero's whole-page fast path
// clears the page in place (no writablePage call), so it must record the
// page in the armed watch window itself — otherwise an incremental restore
// would skip a page the execution wiped and leave restored state wrong.
func TestZeroFullPageFastPathMarksWatched(t *testing.T) {
	m := NewMemory()
	base := uint64(PageSize * 10)
	fill := make([]byte, PageSize)
	for i := range fill {
		fill[i] = 0xab
	}
	if err := m.Write(base, fill); err != nil {
		t.Fatal(err)
	}
	m.Watch(base, PageSize)
	// Whole page, page-aligned, refs == 1: exactly the fast path.
	if err := m.Zero(base, PageSize); err != nil {
		t.Fatal(err)
	}
	dirty := m.WatchedDirty()
	found := false
	for _, pn := range dirty {
		if pn == base>>PageShift {
			found = true
		}
	}
	if !found {
		t.Fatalf("full-page Zero bypassed the write barrier: dirty=%v", dirty)
	}
	if b, err := m.LoadByte(base + 5); err != nil || b != 0 {
		t.Fatalf("page not cleared: %#x err=%v", b, err)
	}
}

// TestZeroUnmappedPageSkipIsSound: Zero may leave a never-mapped page
// unmapped (it already reads as zero), and that page must NOT appear
// dirty — there is nothing to restore.
func TestZeroUnmappedPageSkipIsSound(t *testing.T) {
	m := NewMemory()
	base := uint64(PageSize * 20)
	m.Watch(base, PageSize)
	if err := m.Zero(base, PageSize); err != nil {
		t.Fatal(err)
	}
	if n := len(m.WatchedDirty()); n != 0 {
		t.Fatalf("unmapped-page Zero dirtied %d pages", n)
	}
	if b, err := m.LoadByte(base); err != nil || b != 0 {
		t.Fatalf("unmapped page reads %#x err=%v, want 0", b, err)
	}
}

// TestZeroPartialPageMarksWatched covers the slow path for completeness:
// a sub-page Zero goes through writablePage, which also hits the barrier.
func TestZeroPartialPageMarksWatched(t *testing.T) {
	m := NewMemory()
	base := uint64(PageSize * 30)
	if err := m.Write(base, []byte{1, 2, 3, 4}); err != nil {
		t.Fatal(err)
	}
	m.Watch(base, PageSize)
	if err := m.Zero(base, 4); err != nil {
		t.Fatal(err)
	}
	if n := len(m.WatchedDirty()); n != 1 {
		t.Fatalf("partial Zero dirtied %d pages, want 1", n)
	}
}
