package fuzz

import (
	"bytes"
	"encoding/gob"
	"errors"
	"fmt"
	"time"
)

// ErrBadCheckpoint wraps every Resume rejection — version skew, seed or
// fingerprint mismatch, corrupt or inconsistent state — so supervisors can
// errors.Is the whole class and fall back to a fresh campaign.
var ErrBadCheckpoint = errors.New("fuzz: incompatible checkpoint")

// checkpointVersion guards the serialized layout; bump on any change to
// checkpointState so a stale file fails loudly instead of resuming a
// half-garbage campaign.
const checkpointVersion = 1

// entryState is the serialized form of a queue entry.
type entryState struct {
	Input   []byte
	FoundAt time.Duration
	Gain    int
}

// checkpointState is everything a campaign needs to continue bit-identical
// after a process death: the queue, the cumulative bitmap, crash and hang
// tables, the RNG, the scheduler cursors, and the sentinel's bookkeeping.
// The execution mechanism itself is NOT serialized — ClosureX restores all
// per-test-case state between iterations, so a freshly built image is
// semantically identical to the one the checkpoint was taken in.
type checkpointState struct {
	Version     int
	Seed        uint64
	Fingerprint string
	Execs       int64
	Elapsed     time.Duration

	RNGState uint64
	Cursor   int
	Burst    int
	CurIndex int // index of the in-burst entry in Queue, -1 if none

	Queue  []entryState
	Virgin []byte
	Edges  int

	Crashes []Crash
	Hangs   []Crash

	SentNext    int64
	SentCursor  int
	SentBackoff int64
	SentFails   int
	Divergences []Divergence
	Quarantined []entryState
}

// Checkpoint serializes the campaign's state. Safe to call at any Step
// boundary (RunFor/RunExecs return at such boundaries, as does the stop
// channel); the resulting bytes hand to Resume.
func (c *Campaign) Checkpoint() ([]byte, error) {
	st := checkpointState{
		Version:     checkpointVersion,
		Seed:        c.cfg.Seed,
		Fingerprint: c.cfg.Fingerprint,
		Execs:       c.execs,
		Elapsed:     c.Elapsed(),
		RNGState:    c.rng.State(),
		Cursor:      c.cursor,
		Burst:       c.burst,
		CurIndex:    -1,
		Virgin:      c.bitmap.Snapshot(),
		Edges:       c.bitmap.Edges(),
		SentNext:    c.sentNext,
		SentCursor:  c.sentCursor,
		SentBackoff: c.sentBackoff,
		SentFails:   c.sentFails,
		Divergences: c.divergences,
	}
	if !c.started {
		return nil, fmt.Errorf("fuzz: checkpoint before bootstrap (nothing to save)")
	}
	for i, e := range c.queue {
		st.Queue = append(st.Queue, entryState{Input: e.Input, FoundAt: e.FoundAt, Gain: e.Gain})
		if e == c.cur {
			st.CurIndex = i
		}
	}
	for _, e := range c.quarantined {
		st.Quarantined = append(st.Quarantined, entryState{Input: e.Input, FoundAt: e.FoundAt, Gain: e.Gain})
	}
	for _, cr := range c.Crashes() {
		st.Crashes = append(st.Crashes, *cr)
	}
	for _, h := range c.Hangs() {
		st.Hangs = append(st.Hangs, *h)
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(&st); err != nil {
		return nil, fmt.Errorf("fuzz: encode checkpoint: %w", err)
	}
	return buf.Bytes(), nil
}

// Resume reconstructs a campaign from a checkpoint. cfg supplies the live
// pieces a checkpoint cannot carry — the executor, coverage map, seeds,
// dictionary, sentinel wiring — and must describe the same target and seed
// as the checkpointed run; the serialized state supplies everything else.
// Continuing a resumed campaign replays the exact mutation stream the
// uninterrupted campaign would have produced.
func Resume(cfg Config, data []byte) (*Campaign, error) {
	var st checkpointState
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&st); err != nil {
		return nil, fmt.Errorf("%w: decode: %w", ErrBadCheckpoint, err)
	}
	if st.Version != checkpointVersion {
		return nil, fmt.Errorf("%w: version %d, want %d", ErrBadCheckpoint, st.Version, checkpointVersion)
	}
	if cfg.Seed != st.Seed {
		return nil, fmt.Errorf("%w: taken with seed %d, config says %d", ErrBadCheckpoint, st.Seed, cfg.Seed)
	}
	if st.Fingerprint != cfg.Fingerprint {
		return nil, fmt.Errorf("%w: taken for %q, config says %q (resume needs the same target and mechanism)",
			ErrBadCheckpoint, st.Fingerprint, cfg.Fingerprint)
	}
	c := NewCampaign(cfg)
	c.rng.SetState(st.RNGState)
	c.execs = st.Execs
	c.elapsed = st.Elapsed
	c.cursor = st.Cursor
	c.burst = st.Burst
	for _, e := range st.Queue {
		c.queue = append(c.queue, &Entry{Input: e.Input, FoundAt: e.FoundAt, Gain: e.Gain})
	}
	if st.CurIndex >= 0 && st.CurIndex < len(c.queue) {
		c.cur = c.queue[st.CurIndex]
	} else if st.Burst > 0 {
		return nil, fmt.Errorf("%w: mid-burst without a current entry", ErrBadCheckpoint)
	}
	for _, e := range st.Quarantined {
		c.quarantined = append(c.quarantined, &Entry{Input: e.Input, FoundAt: e.FoundAt, Gain: e.Gain})
	}
	if err := c.bitmap.SetSnapshot(st.Virgin); err != nil {
		return nil, err
	}
	if got := c.bitmap.Edges(); got != st.Edges {
		return nil, fmt.Errorf("%w: edge count %d does not match bitmap (%d)", ErrBadCheckpoint, st.Edges, got)
	}
	for i := range st.Crashes {
		cr := st.Crashes[i]
		c.crashes[cr.Key] = &cr
	}
	for i := range st.Hangs {
		h := st.Hangs[i]
		c.hangs[h.Key] = &h
	}
	c.sentNext = st.SentNext
	c.sentCursor = st.SentCursor
	c.sentBackoff = st.SentBackoff
	if c.sentBackoff <= 0 {
		c.sentBackoff = 1
	}
	c.sentFails = st.SentFails
	c.divergences = st.Divergences
	// The campaign is live immediately: seeds were already executed in the
	// original run, so bootstrap must not run again.
	c.started = true
	c.start = time.Now()
	return c, nil
}
