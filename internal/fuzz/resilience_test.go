package fuzz

import (
	"bytes"
	"encoding/gob"
	"strings"
	"testing"
	"time"

	"closurex/internal/vm"
)

// resilienceExecutor is a deterministic scripted target: coverage follows
// the first byte, 'H' hangs (budget exhaustion at an arbitrary line), 0xee
// crashes.
type resilienceExecutor struct {
	cov []byte
}

func (r *resilienceExecutor) Execute(input []byte) vm.Result {
	var b byte
	if len(input) > 0 {
		b = input[0]
	}
	r.cov[int(b)]++
	switch b {
	case 'H':
		// The line the budget runs out on depends on the input — exactly
		// why hangs must not dedup on line.
		return vm.Result{Fault: &vm.Fault{Kind: vm.FaultTimeout, Fn: "mainloop", Line: int32(len(input))}}
	case 0xee:
		return vm.Result{Fault: &vm.Fault{Kind: vm.FaultNullDeref, Fn: "parse", Line: 42}}
	}
	return vm.Result{Ret: int64(b)}
}

func newResilienceCampaign(seeds [][]byte, seed uint64) (*Campaign, *resilienceExecutor) {
	cov := make([]byte, MapSize)
	ex := &resilienceExecutor{cov: cov}
	return NewCampaign(Config{Executor: ex, CovMap: cov, Seeds: seeds, Seed: seed}), ex
}

func TestHangsTriagedSeparatelyFromCrashes(t *testing.T) {
	c, _ := newResilienceCampaign([][]byte{
		{'H', 1}, {'H', 2, 3}, {0xee}, {'a'},
	}, 3)
	c.Step() // bootstrap executes the seeds

	hangs := c.Hangs()
	if len(hangs) != 1 {
		t.Fatalf("hangs = %d, want 1 (two hang inputs, one function)", len(hangs))
	}
	h := hangs[0]
	if h.Key != "hang@mainloop" {
		t.Fatalf("hang key = %q (the budget-exhaustion line must not appear)", h.Key)
	}
	if h.Count != 2 {
		t.Fatalf("hang count = %d, want 2", h.Count)
	}
	if c.HangByKey("hang@mainloop") != h {
		t.Fatal("HangByKey lookup failed")
	}

	crashes := c.Crashes()
	if len(crashes) != 1 || crashes[0].Kind != vm.FaultNullDeref {
		t.Fatalf("crashes = %+v, want exactly the null deref", crashes)
	}
	for _, cr := range crashes {
		if cr.Kind == vm.FaultTimeout {
			t.Fatal("a timeout leaked into the crash table")
		}
	}
}

func TestStopChannelHaltsRuns(t *testing.T) {
	stop := make(chan struct{})
	close(stop)
	cov := make([]byte, MapSize)
	ex := &resilienceExecutor{cov: cov}
	c := NewCampaign(Config{Executor: ex, CovMap: cov, Seeds: [][]byte{{'a'}}, Seed: 1, Stop: stop})

	start := time.Now()
	c.RunFor(time.Hour)
	if time.Since(start) > 10*time.Second {
		t.Fatal("RunFor ignored the stop channel")
	}
	execsAfterRunFor := c.Execs()
	if execsAfterRunFor == 0 {
		t.Fatal("RunFor did no work before honoring stop")
	}

	c.RunExecs(1 << 40)
	if c.Execs() >= 1<<40 {
		t.Fatal("unreachable")
	}
	// Both loops stop at the next coarse-check boundary, not instantly:
	// the stop poll runs every CheckEvery steps.
	if got := c.Execs() - execsAfterRunFor; got > int64(2*c.cfg.CheckEvery) {
		t.Fatalf("RunExecs overran the stop by %d execs", got)
	}
}

// The deterministic-resume acceptance test: a campaign checkpointed midway
// and resumed into a fresh Campaign must land on exactly the state of an
// uninterrupted run — queue, bitmap, crash and hang tables, RNG.
func TestCheckpointResumeBitIdentical(t *testing.T) {
	seeds := [][]byte{{'a', 'b'}, {'H'}, {0xee}}
	const mid, final = 4000, 11000

	a, _ := newResilienceCampaign(seeds, 77)
	a.RunExecs(final)

	b, _ := newResilienceCampaign(seeds, 77)
	b.RunExecs(mid)
	ckpt, err := b.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	// The original process dies here; a new one resumes from the bytes.
	cov2 := make([]byte, MapSize)
	resumed, err := Resume(Config{
		Executor: &resilienceExecutor{cov: cov2},
		CovMap:   cov2,
		Seeds:    seeds,
		Seed:     77,
	}, ckpt)
	if err != nil {
		t.Fatal(err)
	}
	if resumed.Execs() != mid {
		t.Fatalf("resumed at %d execs, want %d", resumed.Execs(), mid)
	}
	resumed.RunExecs(final)

	if a.Execs() != resumed.Execs() {
		t.Fatalf("execs: %d vs %d", a.Execs(), resumed.Execs())
	}
	if a.Edges() != resumed.Edges() {
		t.Fatalf("edges: %d vs %d", a.Edges(), resumed.Edges())
	}
	if a.QueueLen() != resumed.QueueLen() {
		t.Fatalf("queue: %d vs %d", a.QueueLen(), resumed.QueueLen())
	}
	qa, qb := a.Queue(), resumed.Queue()
	for i := range qa {
		if !bytes.Equal(qa[i].Input, qb[i].Input) || qa[i].Gain != qb[i].Gain {
			t.Fatalf("queue entry %d differs: %q/%d vs %q/%d",
				i, qa[i].Input, qa[i].Gain, qb[i].Input, qb[i].Gain)
		}
	}
	ca, cb := a.Crashes(), resumed.Crashes()
	if len(ca) != len(cb) {
		t.Fatalf("crash tables: %d vs %d", len(ca), len(cb))
	}
	for i := range ca {
		if ca[i].Key != cb[i].Key || ca[i].Count != cb[i].Count || ca[i].FirstExec != cb[i].FirstExec {
			t.Fatalf("crash %d: %+v vs %+v", i, ca[i], cb[i])
		}
	}
	ha, hb := a.Hangs(), resumed.Hangs()
	if len(ha) != len(hb) {
		t.Fatalf("hang tables: %d vs %d", len(ha), len(hb))
	}
	for i := range ha {
		if ha[i].Key != hb[i].Key || ha[i].Count != hb[i].Count {
			t.Fatalf("hang %d: %+v vs %+v", i, ha[i], hb[i])
		}
	}
	if a.rng.State() != resumed.rng.State() {
		t.Fatal("RNG streams diverged")
	}
}

func TestCheckpointBeforeBootstrapFails(t *testing.T) {
	c, _ := newResilienceCampaign([][]byte{{'a'}}, 1)
	if _, err := c.Checkpoint(); err == nil {
		t.Fatal("checkpoint of an unstarted campaign accepted")
	}
}

func TestResumeRejectsBadCheckpoints(t *testing.T) {
	c, ex := newResilienceCampaign([][]byte{{'a'}}, 5)
	c.RunExecs(100)
	good, err := c.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Executor: ex, CovMap: ex.cov, Seed: 5}

	if _, err := Resume(cfg, []byte("not a checkpoint")); err == nil {
		t.Fatal("garbage accepted")
	}
	wrongSeed := cfg
	wrongSeed.Seed = 6
	if _, err := Resume(wrongSeed, good); err == nil {
		t.Fatal("seed mismatch accepted")
	}
	wrongTarget := cfg
	wrongTarget.Fingerprint = "other-target@closurex"
	if _, err := Resume(wrongTarget, good); err == nil {
		t.Fatal("fingerprint mismatch accepted (bitmap grafted onto the wrong target)")
	}
	var stale bytes.Buffer
	if err := gob.NewEncoder(&stale).Encode(&checkpointState{Version: checkpointVersion + 1, Seed: 5}); err != nil {
		t.Fatal(err)
	}
	if _, err := Resume(cfg, stale.Bytes()); err == nil {
		t.Fatal("future version accepted")
	}
}

// divergentRef always disagrees with the primary on the return value, so
// every sentinel probe is a divergence.
type divergentRef struct{ cov []byte }

func (d *divergentRef) Execute(input []byte) vm.Result {
	var b byte
	if len(input) > 0 {
		b = input[0]
	}
	d.cov[int(b)]++
	return vm.Result{Ret: int64(b) + 1000}
}

// agreeingRef mirrors resilienceExecutor exactly.
type agreeingRef struct{ resilienceExecutor }

type fakeController struct {
	rebuilds, degrades int
	degraded           bool
	lastReason         string
}

func (f *fakeController) Rebuild(reason string) { f.rebuilds++; f.lastReason = reason }
func (f *fakeController) Degrade(reason string) { f.degrades++; f.degraded = true; f.lastReason = reason }
func (f *fakeController) Degraded() bool        { return f.degraded }

func TestSentinelRoutesDivergencesIntoLadder(t *testing.T) {
	cov := make([]byte, MapSize)
	refCov := make([]byte, MapSize)
	ctrl := &fakeController{}
	c := NewCampaign(Config{
		Executor: &resilienceExecutor{cov: cov},
		CovMap:   cov,
		Seeds:    [][]byte{{'a'}, {'b'}},
		Seed:     9,
		Sentinel: &SentinelConfig{
			Reference:   &divergentRef{cov: refCov},
			RefCovMap:   refCov,
			Every:       10,
			MaxFailures: 2,
			Controller:  ctrl,
		},
	})
	c.RunExecs(600)

	divs := c.Divergences()
	if len(divs) < 3 {
		t.Fatalf("divergences = %d, want the full ladder (>=3)", len(divs))
	}
	for _, d := range divs {
		if !strings.Contains(d.Reason, "result") {
			t.Fatalf("divergence reason %q, want a result mismatch", d.Reason)
		}
	}
	// Ladder: failures 1 and 2 ask for rebuilds, failure 3 exceeds
	// MaxFailures=2 and degrades; once degraded, no further requests.
	if ctrl.rebuilds != 2 || ctrl.degrades != 1 {
		t.Fatalf("controller saw %d rebuilds, %d degrades; want 2, 1", ctrl.rebuilds, ctrl.degrades)
	}
	if len(c.Quarantined()) == 0 {
		t.Fatal("divergent entries were not quarantined")
	}
	if c.QueueLen() == 0 {
		t.Fatal("quarantine emptied the queue; mutation has no basis left")
	}
}

// Arming the sentinel must not perturb the campaign itself as long as the
// probes pass: probe replays bypass the bitmap and do not count as
// executions, so a clean campaign with the sentinel armed matches a twin
// without one. (Divergent probes DO perturb the queue — quarantine is the
// point — so this twin check uses an agreeing reference.)
func TestSentinelDoesNotPerturbCampaign(t *testing.T) {
	run := func(withSentinel bool) (*Campaign, int) {
		cov := make([]byte, MapSize)
		cfg := Config{
			Executor: &resilienceExecutor{cov: cov},
			CovMap:   cov,
			Seeds:    [][]byte{{'a', 'b', 'c'}},
			Seed:     123,
		}
		if withSentinel {
			refCov := make([]byte, MapSize)
			cfg.Sentinel = &SentinelConfig{
				Reference: &agreeingRef{resilienceExecutor{cov: refCov}},
				RefCovMap: refCov,
				Every:     7,
			}
		}
		c := NewCampaign(cfg)
		c.RunExecs(3000)
		return c, c.Edges()
	}
	plain, edgesPlain := run(false)
	armed, edgesArmed := run(true)
	if armed.sentCursor == 0 {
		t.Fatal("test premise broken: no sentinel probes ran")
	}
	if edgesPlain != edgesArmed || plain.Execs() != armed.Execs() {
		t.Fatalf("sentinel perturbed the campaign: edges %d vs %d, execs %d vs %d",
			edgesPlain, edgesArmed, plain.Execs(), armed.Execs())
	}
	if plain.rng.State() != armed.rng.State() {
		t.Fatal("sentinel perturbed the mutation stream")
	}
}

func TestSentinelQuietWhenExecutorsAgree(t *testing.T) {
	cov := make([]byte, MapSize)
	refCov := make([]byte, MapSize)
	c := NewCampaign(Config{
		Executor: &resilienceExecutor{cov: cov},
		CovMap:   cov,
		Seeds:    [][]byte{{'a'}},
		Seed:     4,
		Sentinel: &SentinelConfig{
			Reference: &agreeingRef{resilienceExecutor{cov: refCov}},
			RefCovMap: refCov,
			Every:     10,
		},
	})
	c.RunExecs(1000)
	if n := len(c.Divergences()); n != 0 {
		t.Fatalf("%d false-positive divergences: %+v", n, c.Divergences())
	}
	if len(c.Quarantined()) != 0 {
		t.Fatal("entries quarantined without divergence")
	}
}

func TestRNGStateRoundtrip(t *testing.T) {
	a := NewRNG(99)
	for i := 0; i < 37; i++ {
		a.Uint64()
	}
	b := NewRNG(1)
	b.SetState(a.State())
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("restored RNG diverged")
		}
	}
	// Zero state must not wedge the xorshift generator.
	z := NewRNG(1)
	z.SetState(0)
	if z.Uint64() == 0 && z.Uint64() == 0 {
		t.Fatal("zero state produced a dead generator")
	}
}

func TestBitmapSnapshotRoundtrip(t *testing.T) {
	b := NewBitmap()
	trace := make([]byte, MapSize)
	trace[7], trace[4096], trace[65535] = 1, 9, 200
	b.Update(trace)

	restored := NewBitmap()
	if err := restored.SetSnapshot(b.Snapshot()); err != nil {
		t.Fatal(err)
	}
	if restored.Edges() != b.Edges() {
		t.Fatalf("edges %d vs %d", restored.Edges(), b.Edges())
	}
	// The restored bitmap considers already-seen coverage old news.
	trace[7], trace[4096], trace[65535] = 1, 9, 200
	if gain := restored.Update(trace); gain != 0 {
		t.Fatalf("restored bitmap re-reported known coverage (gain %d)", gain)
	}
	trace[11] = 1
	if gain := restored.Update(trace); gain != 2 {
		t.Fatalf("restored bitmap missed a new edge (gain %d)", gain)
	}

	if err := NewBitmap().SetSnapshot([]byte{1, 2, 3}); err == nil {
		t.Fatal("short snapshot accepted")
	}
}
