package fuzz

// Test-case and corpus minimization — the afl-tmin / afl-cmin counterparts
// a downstream user expects next to the fuzzer.

// TrimInput shrinks input while pred keeps holding (pred must hold for the
// original input, or the input is returned unchanged). The strategy is
// afl-tmin's: repeated removal passes with power-of-two block sizes down to
// single bytes, iterated to a fixed point. pred is called O(n log n) times
// per round.
func TrimInput(input []byte, pred func([]byte) bool) []byte {
	cur := append([]byte(nil), input...)
	if len(cur) == 0 || !pred(cur) {
		return cur
	}
	for changed := true; changed; {
		changed = false
		start := len(cur) / 2
		if start < 1 {
			start = 1
		}
		for blk := start; blk >= 1; blk /= 2 {
			for pos := 0; pos+blk <= len(cur); {
				cand := make([]byte, 0, len(cur)-blk)
				cand = append(cand, cur[:pos]...)
				cand = append(cand, cur[pos+blk:]...)
				if pred(cand) {
					cur = cand
					changed = true
				} else {
					pos += blk
				}
			}
		}
	}
	return cur
}

// NormalizeInput replaces bytes with zero wherever pred still holds,
// making the remaining "load-bearing" bytes of a crash input stand out
// (afl-tmin's second phase).
func NormalizeInput(input []byte, pred func([]byte) bool) []byte {
	cur := append([]byte(nil), input...)
	if !pred(cur) {
		return cur
	}
	for i := range cur {
		if cur[i] == 0 {
			continue
		}
		old := cur[i]
		cur[i] = 0
		if !pred(cur) {
			cur[i] = old
		}
	}
	return cur
}

// MinimizeCorpus selects a subset of inputs that preserves the union of
// their coverage, greedily picking the input covering the most uncovered
// map cells (afl-cmin's weighted minimization, simplified). trace must
// return the set of coverage-map indices the input reaches.
func MinimizeCorpus(inputs [][]byte, trace func([]byte) map[int]bool) [][]byte {
	type entry struct {
		input []byte
		cov   map[int]bool
	}
	entries := make([]entry, 0, len(inputs))
	union := map[int]bool{}
	for _, in := range inputs {
		cov := trace(in)
		entries = append(entries, entry{input: in, cov: cov})
		for idx := range cov {
			union[idx] = true
		}
	}
	covered := map[int]bool{}
	var out [][]byte
	for len(covered) < len(union) {
		best := -1
		bestGain := 0
		for i, e := range entries {
			if e.cov == nil {
				continue
			}
			gain := 0
			for idx := range e.cov {
				if !covered[idx] {
					gain++
				}
			}
			if gain > bestGain {
				bestGain = gain
				best = i
			}
		}
		if best < 0 {
			break // remaining inputs add nothing (nondeterminism guard)
		}
		for idx := range entries[best].cov {
			covered[idx] = true
		}
		out = append(out, entries[best].input)
		entries[best].cov = nil
	}
	return out
}
