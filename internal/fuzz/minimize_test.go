package fuzz

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestTrimInputToMinimalWitness(t *testing.T) {
	// Predicate: input contains the byte sequence "BUG".
	pred := func(b []byte) bool { return bytes.Contains(b, []byte("BUG")) }
	in := []byte("lots of padding before BUG and plenty after it too......")
	out := TrimInput(in, pred)
	if string(out) != "BUG" {
		t.Fatalf("trimmed to %q, want BUG", out)
	}
}

func TestTrimInputPredicateNeverViolated(t *testing.T) {
	calls := 0
	pred := func(b []byte) bool {
		calls++
		return len(b) >= 5 && b[0] == 'A'
	}
	out := TrimInput([]byte("Axxxxxxxxxxxxxxxx"), pred)
	if !pred(out) {
		t.Fatal("result violates predicate")
	}
	if len(out) != 5 {
		t.Fatalf("len = %d, want 5", len(out))
	}
	if calls == 0 {
		t.Fatal("predicate never called")
	}
}

func TestTrimInputNonMatchingUnchanged(t *testing.T) {
	in := []byte("hello")
	out := TrimInput(in, func(b []byte) bool { return false })
	if !bytes.Equal(out, in) {
		t.Fatalf("non-matching input changed: %q", out)
	}
	if out2 := TrimInput(nil, func(b []byte) bool { return true }); len(out2) != 0 {
		t.Fatal("empty input grew")
	}
}

// Property: TrimInput's result always satisfies the predicate and is never
// longer than the input.
func TestTrimInputProperty(t *testing.T) {
	f := func(data []byte, needle byte) bool {
		if len(data) > 512 {
			data = data[:512]
		}
		pred := func(b []byte) bool { return bytes.IndexByte(b, needle) >= 0 }
		if !pred(data) {
			return bytes.Equal(TrimInput(data, pred), data)
		}
		out := TrimInput(data, pred)
		return pred(out) && len(out) <= len(data) && len(out) >= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestNormalizeInput(t *testing.T) {
	// Predicate cares only about positions 2 and 5.
	pred := func(b []byte) bool {
		return len(b) == 8 && b[2] == 'X' && b[5] == 'Y'
	}
	in := []byte("abXcdYef")
	out := NormalizeInput(in, pred)
	want := []byte{0, 0, 'X', 0, 0, 'Y', 0, 0}
	if !bytes.Equal(out, want) {
		t.Fatalf("normalized = %q, want %q", out, want)
	}
	// Non-matching input unchanged.
	if got := NormalizeInput([]byte("zz"), pred); !bytes.Equal(got, []byte("zz")) {
		t.Fatal("non-matching changed")
	}
}

func TestMinimizeCorpusGreedySetCover(t *testing.T) {
	// Input i covers the cells listed in covSets[i].
	covSets := map[string][]int{
		"a": {1, 2, 3},
		"b": {2, 3},       // subsumed by a
		"c": {4},          // unique
		"d": {1, 2, 3, 4}, // covers everything alone
		"e": {},           // nothing
	}
	trace := func(in []byte) map[int]bool {
		out := map[int]bool{}
		for _, idx := range covSets[string(in)] {
			out[idx] = true
		}
		return out
	}
	out := MinimizeCorpus([][]byte{[]byte("a"), []byte("b"), []byte("c"), []byte("d"), []byte("e")}, trace)
	if len(out) != 1 || string(out[0]) != "d" {
		t.Fatalf("minimized = %q, want just d", out)
	}
	// Without d, need a + c.
	out = MinimizeCorpus([][]byte{[]byte("a"), []byte("b"), []byte("c"), []byte("e")}, trace)
	if len(out) != 2 {
		t.Fatalf("minimized = %q, want 2 entries", out)
	}
	keep := map[string]bool{}
	for _, o := range out {
		keep[string(o)] = true
	}
	if !keep["a"] || !keep["c"] {
		t.Fatalf("kept %v, want a and c", keep)
	}
}

func TestMinimizeCorpusEmpty(t *testing.T) {
	out := MinimizeCorpus(nil, func([]byte) map[int]bool { return nil })
	if len(out) != 0 {
		t.Fatal("nonempty result from empty corpus")
	}
}

// Property: the minimized corpus preserves the coverage union exactly.
func TestMinimizeCorpusPreservesUnion(t *testing.T) {
	f := func(seed uint64, n uint8) bool {
		rng := NewRNG(seed)
		count := int(n)%12 + 1
		inputs := make([][]byte, count)
		sets := make([]map[int]bool, count)
		for i := 0; i < count; i++ {
			inputs[i] = []byte{byte(i)}
			sets[i] = map[int]bool{}
			for j := 0; j < rng.Intn(6); j++ {
				sets[i][rng.Intn(10)] = true
			}
		}
		trace := func(in []byte) map[int]bool { return sets[int(in[0])] }
		out := MinimizeCorpus(inputs, trace)
		gotUnion := map[int]bool{}
		for _, o := range out {
			for idx := range trace(o) {
				gotUnion[idx] = true
			}
		}
		wantUnion := map[int]bool{}
		for i := range sets {
			for idx := range sets[i] {
				wantUnion[idx] = true
			}
		}
		if len(gotUnion) != len(wantUnion) {
			return false
		}
		return len(out) <= count
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
