package fuzz

// Chaos suite for the shard supervision layer: every injected fault class
// must end in a completed campaign whose global coverage is a superset of
// each shard's local coverage, with no goroutine leak and no deadlock.

import (
	"bytes"
	"encoding/gob"
	"errors"
	"runtime"
	"sync"
	"testing"
	"time"

	"closurex/internal/faultinject"
	"closurex/internal/vm"
)

// checkGoroutineLeak snapshots the goroutine count and returns a func to
// defer: it polls (campaign goroutines unwind asynchronously after run
// returns) and fails the test if the count never comes back down.
func checkGoroutineLeak(t *testing.T) func() {
	t.Helper()
	before := runtime.NumGoroutine()
	return func() {
		t.Helper()
		deadline := time.Now().Add(5 * time.Second)
		for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
			time.Sleep(10 * time.Millisecond)
		}
		if now := runtime.NumGoroutine(); now > before {
			t.Errorf("goroutine leak: %d before, %d after", before, now)
		}
	}
}

// chaosFleet builds a J-shard ladder fleet with a fast supervisor and the
// given injector armed.
func chaosFleet(t *testing.T, jobs int, inj *faultinject.Injector, rebuild bool) *ParallelCampaign {
	t.Helper()
	var shards []ShardConfig
	for j := 0; j < jobs; j++ {
		ex, cov := newLadder("MAGIC")
		sc := ShardConfig{Executor: ex, CovMap: cov}
		if rebuild {
			sc.Rebuild = func() (Executor, []byte, error) {
				nex, ncov := newLadder("MAGIC")
				return nex, ncov, nil
			}
		}
		shards = append(shards, sc)
	}
	p, err := NewParallelCampaign(ParallelConfig{
		Shards: shards, Seed: 11, Seeds: [][]byte{[]byte("xxxxxxxx")},
		SyncEvery: 64,
		Supervisor: SupervisorConfig{
			Backoff:  50 * time.Microsecond,
			Injector: inj,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// assertCoverageSuperset checks the fleet invariant the chaos gate is
// about: no fault may lose coverage — the global bitmap must contain every
// shard's local bitmap, including a quarantined shard's pre-fault edges.
func assertCoverageSuperset(t *testing.T, p *ParallelCampaign) {
	t.Helper()
	global := p.BitmapSnapshot()
	for j := 0; j < p.Jobs(); j++ {
		local := p.Shard(j).BitmapSnapshot()
		for i := range local {
			if local[i]&^global[i] != 0 {
				t.Fatalf("shard %d byte %d: local coverage %#x not in global %#x", j, i, local[i], global[i])
			}
		}
	}
}

func TestChaosShardKillRestarts(t *testing.T) {
	defer checkGoroutineLeak(t)()
	inj := faultinject.New(1)
	// Two transient kills on shard 1: plain restarts absorb them.
	inj.FailAfter(faultinject.ForShard(faultinject.ShardKill, 1), 500, 1)
	p := chaosFleet(t, 2, inj, false)
	p.RunExecs(20000)
	if p.Execs() < 20000 {
		t.Fatalf("campaign did not complete: %d execs", p.Execs())
	}
	h := p.Health()
	if h[1].Restarts < 1 {
		t.Fatalf("shard 1 was killed but never restarted: %+v", h[1])
	}
	if h[1].Quarantined {
		t.Fatalf("one transient kill must not quarantine: %+v", h[1])
	}
	if h[1].ConsecutiveFaults != 0 {
		t.Fatalf("fault streak must reset after recovery: %+v", h[1])
	}
	if h[0].Restarts != 0 {
		t.Fatalf("healthy shard restarted: %+v", h[0])
	}
	assertCoverageSuperset(t, p)
	if len(p.Events()) == 0 {
		t.Fatal("supervision events not recorded")
	}
}

func TestChaosShardKillForeverQuarantines(t *testing.T) {
	defer checkGoroutineLeak(t)()
	inj := faultinject.New(2)
	// Shard 1 dies on every step past 2000: restarts exhaust, rebuild (none
	// available) is skipped, the shard is quarantined, and the campaign
	// completes on the remaining shards.
	inj.FailAfter(faultinject.ForShard(faultinject.ShardKill, 1), 2000, -1)
	p := chaosFleet(t, 3, inj, false)
	p.RunExecs(30000)
	if p.Execs() < 30000 {
		t.Fatalf("campaign did not complete on healthy shards: %d execs", p.Execs())
	}
	h := p.Health()
	if !h[1].Quarantined {
		t.Fatalf("fail-forever shard not quarantined: %+v", h[1])
	}
	if p.HealthyShards() != 2 {
		t.Fatalf("HealthyShards = %d, want 2", p.HealthyShards())
	}
	// The quarantined shard's coverage must survive in the global bitmap.
	assertCoverageSuperset(t, p)
	// Its discoveries must have been redistributed: anything shard 1
	// published is in the cross-shard corpus view.
	corpus := map[string]struct{}{}
	for _, e := range p.Queue() {
		corpus[string(e.Input)] = struct{}{}
	}
	for _, e := range p.Shard(1).Queue() {
		if _, ok := corpus[string(e.Input)]; !ok {
			t.Fatalf("quarantined shard's entry %q lost from the merged corpus", e.Input)
		}
	}
	// A later run slice must not resurrect the quarantined shard.
	before := h[1].Execs
	p.RunExecs(p.Execs() + 5000)
	if after := p.Health()[1].Execs; after != before {
		t.Fatalf("quarantined shard ran again: %d -> %d execs", before, after)
	}
}

func TestChaosRestoreCorruptRebuildLadder(t *testing.T) {
	defer checkGoroutineLeak(t)()
	inj := faultinject.New(3)
	// MaxRestarts(3)+1 consecutive restore corruptions on shard 1: three
	// plain restarts, then the supervisor escalates to a mechanism rebuild;
	// the fault clears and the shard recovers without quarantine.
	inj.FailAfter(faultinject.ForShard(faultinject.ShardRestore, 1), 1000, 4)
	p := chaosFleet(t, 2, inj, true)
	p.RunExecs(20000)
	if p.Execs() < 20000 {
		t.Fatalf("campaign did not complete: %d execs", p.Execs())
	}
	h := p.Health()
	if h[1].Rebuilds != 1 {
		t.Fatalf("rebuild ladder did not fire exactly once: %+v", h[1])
	}
	if h[1].RestoreFailures < 4 {
		t.Fatalf("restore failures not recorded: %+v", h[1])
	}
	if h[1].Quarantined {
		t.Fatalf("recovered shard must not be quarantined: %+v", h[1])
	}
	assertCoverageSuperset(t, p)
}

func TestChaosRestoreCorruptForeverQuarantines(t *testing.T) {
	defer checkGoroutineLeak(t)()
	inj := faultinject.New(4)
	inj.FailAfter(faultinject.ForShard(faultinject.ShardRestore, 1), 1000, -1)
	p := chaosFleet(t, 2, inj, true)
	p.RunExecs(15000)
	if p.Execs() < 15000 {
		t.Fatalf("campaign did not complete: %d execs", p.Execs())
	}
	h := p.Health()
	if !h[1].Quarantined {
		t.Fatalf("fail-forever restore corruption must quarantine: %+v", h[1])
	}
	// The full ladder was climbed: restarts, then a rebuild, then the end.
	if h[1].Rebuilds != 1 {
		t.Fatalf("quarantine must come after a rebuild attempt: %+v", h[1])
	}
	if h[1].LastFault == "" {
		t.Fatal("last fault not recorded")
	}
	assertCoverageSuperset(t, p)
}

func TestChaosCorpusDelayAndDrop(t *testing.T) {
	defer checkGoroutineLeak(t)()
	inj := faultinject.New(5)
	inj.FailWithProb(faultinject.CorpusDelay, 0.3)
	inj.FailWithProb(faultinject.CorpusDrop, 0.3)
	p := chaosFleet(t, 3, inj, false)
	p.RunExecs(30000)
	if p.Execs() < 30000 {
		t.Fatalf("campaign wedged behind a slow/lossy manager: %d execs", p.Execs())
	}
	// Dropped corpus messages may cost propagation, never coverage: the
	// global bitmap merges at sync boundaries, not through the channel.
	assertCoverageSuperset(t, p)
	if inj.Fired(faultinject.CorpusDrop) == 0 && inj.Fired(faultinject.CorpusDelay) == 0 {
		t.Fatal("chaos sites never fired; test exercised nothing")
	}
}

func TestChaosHangEscalation(t *testing.T) {
	defer checkGoroutineLeak(t)()
	gate := make(chan struct{})
	var once sync.Once
	ex0, cov0 := newLadder("MAGIC")
	ex1, cov1 := newLadder("MAGIC")
	stall := &stallingExecutor{inner: ex1, after: 3000, gate: gate}
	p, err := NewParallelCampaign(ParallelConfig{
		Shards: []ShardConfig{{Executor: ex0, CovMap: cov0}, {Executor: stall, CovMap: cov1}},
		Seed:   13, Seeds: [][]byte{[]byte("xxxxxxxx")},
		SyncEvery: 64,
		Supervisor: SupervisorConfig{
			HangAfter: 30 * time.Millisecond,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		p.RunExecs(50000)
		close(done)
	}()
	// Wait for the monitor to mark shard 1 stalled, then release the gate.
	deadline := time.Now().Add(10 * time.Second)
	for {
		if time.Now().After(deadline) {
			t.Fatal("hang escalation never fired")
		}
		hs := p.Health()
		if hs[1].Stalled || hs[1].HangEscalations > 0 {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	once.Do(func() { close(gate) })
	select {
	case <-done:
	case <-time.After(60 * time.Second):
		t.Fatal("campaign did not finish after the stall cleared")
	}
	h := p.Health()
	if h[1].HangEscalations == 0 {
		t.Fatalf("stall not escalated: %+v", h[1])
	}
	if h[1].Quarantined {
		t.Fatalf("hang escalation is observational; must not quarantine: %+v", h[1])
	}
}

// stallingExecutor blocks on gate after `after` executions — an in-process
// stand-in for a wedged target the hang monitor must notice.
type stallingExecutor struct {
	inner *coverageLadder
	after int64
	execs int64
	gate  <-chan struct{}
}

func (s *stallingExecutor) Execute(input []byte) vm.Result {
	s.execs++
	if s.execs == s.after {
		<-s.gate
	}
	return s.inner.Execute(input)
}

// TestChaosInertInjectorBitIdentical extends the J=1 identity proof through
// the supervised path: an armed-but-never-firing injector (the chaos
// plumbing fully wired) must not perturb a single byte of the campaign.
func TestChaosInertInjectorBitIdentical(t *testing.T) {
	defer checkGoroutineLeak(t)()
	n := int64(30000)
	if raceEnabled {
		n = 6000
	}
	seeds := [][]byte{[]byte("xxxxxxxx")}

	seqEx, seqCov := newLadder("MAGIC")
	seq := NewCampaign(Config{Executor: seqEx, CovMap: seqCov, Seeds: seeds, Seed: 99})
	seq.RunExecs(n)

	inj := faultinject.New(9)
	inj.FailAfter(faultinject.ShardKill, 1<<40, 1) // armed, unreachable
	parEx, parCov := newLadder("MAGIC")
	par, err := NewParallelCampaign(ParallelConfig{
		Shards:     []ShardConfig{{Executor: parEx, CovMap: parCov}},
		Seed:       99, Seeds: seeds,
		Supervisor: SupervisorConfig{Injector: inj},
	})
	if err != nil {
		t.Fatal(err)
	}
	par.RunExecs(n)

	if seq.Execs() != par.Execs() || seq.Edges() != par.Edges() {
		t.Fatalf("supervised run diverged: execs %d/%d edges %d/%d",
			seq.Execs(), par.Execs(), seq.Edges(), par.Edges())
	}
	if !bytes.Equal(seq.BitmapSnapshot(), par.BitmapSnapshot()) {
		t.Fatal("coverage bitmaps diverged under an inert injector")
	}
	sq, pq := seq.Queue(), par.Queue()
	if len(sq) != len(pq) {
		t.Fatalf("queues diverged: %d vs %d", len(sq), len(pq))
	}
	for i := range sq {
		if !bytes.Equal(sq[i].Input, pq[i].Input) {
			t.Fatalf("queue entry %d diverged", i)
		}
	}
}

func TestChaosStopDrainsAndCheckpoints(t *testing.T) {
	defer checkGoroutineLeak(t)()
	stop := make(chan struct{})
	var shards []ShardConfig
	for j := 0; j < 3; j++ {
		ex, cov := newLadder("MAGIC")
		shards = append(shards, ShardConfig{Executor: ex, CovMap: cov})
	}
	mk := func() ParallelConfig {
		return ParallelConfig{
			Shards: shards, Seed: 21, Fingerprint: "ladder@test",
			Seeds: [][]byte{[]byte("xxxxxxxx")}, SyncEvery: 64, Stop: stop,
		}
	}
	p, err := NewParallelCampaign(mk())
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		p.RunExecs(1 << 40) // effectively unbounded; only stop ends it
		close(done)
	}()
	for p.Execs() < 2000 {
		time.Sleep(time.Millisecond)
	}
	close(stop)
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("stop did not drain the fleet")
	}
	// Every shard stopped at a checkpointable boundary: the whole fleet
	// serializes and resumes.
	blob, err := p.Checkpoint()
	if err != nil {
		t.Fatalf("checkpoint after stop: %v", err)
	}
	cfg := mk()
	cfg.Stop = nil
	var resumed []ShardConfig
	for j := 0; j < 3; j++ {
		ex, cov := newLadder("MAGIC")
		resumed = append(resumed, ShardConfig{Executor: ex, CovMap: cov})
	}
	cfg.Shards = resumed
	res, err := ResumeParallel(cfg, blob)
	if err != nil {
		t.Fatalf("resume after stop: %v", err)
	}
	if res.Execs() != p.Execs() || res.Edges() != p.Edges() {
		t.Fatalf("stop checkpoint lost progress: execs %d/%d edges %d/%d",
			p.Execs(), res.Execs(), p.Edges(), res.Edges())
	}
}

func TestParallelElasticResume(t *testing.T) {
	defer checkGoroutineLeak(t)()
	mk := func(jobs int) ParallelConfig {
		var shards []ShardConfig
		for j := 0; j < jobs; j++ {
			ex, cov := newLadder("MAGIC")
			shards = append(shards, ShardConfig{Executor: ex, CovMap: cov})
		}
		return ParallelConfig{
			Shards: shards, Seed: 77, Fingerprint: "ladder@test",
			Seeds: [][]byte{[]byte("xxxxxxxx")}, SyncEvery: 64,
		}
	}
	n := int64(40000)
	if raceEnabled {
		n = 8000
	}
	p, err := NewParallelCampaign(mk(4))
	if err != nil {
		t.Fatal(err)
	}
	p.RunExecs(n)
	blob, err := p.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	wantCorpus := map[string]struct{}{}
	for _, e := range p.Queue() {
		wantCorpus[string(e.Input)] = struct{}{}
	}

	for _, jobs := range []int{2, 8} {
		res, err := ResumeParallel(mk(jobs), blob)
		if err != nil {
			t.Fatalf("elastic resume J=4 -> J=%d: %v", jobs, err)
		}
		if res.Jobs() != jobs {
			t.Fatalf("resumed at %d shards, want %d", res.Jobs(), jobs)
		}
		if res.Execs() != p.Execs() {
			t.Fatalf("J=%d: execs %d, want %d", jobs, res.Execs(), p.Execs())
		}
		if res.Edges() != p.Edges() {
			t.Fatalf("J=%d: edges %d, want %d", jobs, res.Edges(), p.Edges())
		}
		if !bytes.Equal(res.BitmapSnapshot(), p.BitmapSnapshot()) {
			t.Fatalf("J=%d: merged bitmap diverged", jobs)
		}
		got := map[string]struct{}{}
		for _, e := range res.Queue() {
			got[string(e.Input)] = struct{}{}
		}
		if len(got) != len(wantCorpus) {
			t.Fatalf("J=%d: corpus %d entries, want %d", jobs, len(got), len(wantCorpus))
		}
		for k := range wantCorpus {
			if _, ok := got[k]; !ok {
				t.Fatalf("J=%d: corpus entry %q lost in re-sharding", jobs, k)
			}
		}
		if len(res.Crashes()) != len(p.Crashes()) {
			t.Fatalf("J=%d: crashes %d, want %d", jobs, len(res.Crashes()), len(p.Crashes()))
		}
		// Determinism: resuming the same blob at the same J twice yields the
		// same per-shard queues.
		res2, err := ResumeParallel(mk(jobs), blob)
		if err != nil {
			t.Fatal(err)
		}
		for j := 0; j < jobs; j++ {
			q1, q2 := res.Shard(j).Queue(), res2.Shard(j).Queue()
			if len(q1) != len(q2) {
				t.Fatalf("re-shard not deterministic: shard %d queue %d vs %d", j, len(q1), len(q2))
			}
			for i := range q1 {
				if !bytes.Equal(q1[i].Input, q2[i].Input) {
					t.Fatalf("re-shard not deterministic: shard %d entry %d", j, i)
				}
			}
		}
		// The elastic fleet keeps fuzzing.
		res.RunExecs(res.Execs() + n/4)
		if res.Execs() < p.Execs()+n/4 {
			t.Fatalf("J=%d: elastic fleet did not continue: %d execs", jobs, res.Execs())
		}
	}
}

func TestParallelResumeErrorPaths(t *testing.T) {
	defer checkGoroutineLeak(t)()
	mk := func() ParallelConfig {
		var shards []ShardConfig
		for j := 0; j < 2; j++ {
			ex, cov := newLadder("MAGIC")
			shards = append(shards, ShardConfig{Executor: ex, CovMap: cov})
		}
		return ParallelConfig{
			Shards: shards, Seed: 42, Fingerprint: "ladder@test",
			Seeds: [][]byte{[]byte("xxxxxxxx")},
		}
	}
	p, err := NewParallelCampaign(mk())
	if err != nil {
		t.Fatal(err)
	}
	p.RunExecs(3000)
	blob, err := p.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}

	// Version mismatch: a v1-era envelope is rejected, not misparsed.
	old := encodeParallelState(t, &parallelState{Version: 1, Jobs: 2, Shards: [][]byte{{1}, {2}}})
	if _, err := ResumeParallel(mk(), old); !errors.Is(err, ErrBadCheckpoint) {
		t.Fatalf("stale version accepted: %v", err)
	}
	// Internal topology inconsistency: Jobs disagrees with the blob count.
	torn := encodeParallelState(t, &parallelState{Version: parallelCheckpointVersion, Jobs: 3, Shards: [][]byte{{1}, {2}}})
	if _, err := ResumeParallel(mk(), torn); !errors.Is(err, ErrBadCheckpoint) {
		t.Fatalf("inconsistent topology accepted: %v", err)
	}
	// Wrong trial seed.
	wrongSeed := mk()
	wrongSeed.Seed = 43
	if _, err := ResumeParallel(wrongSeed, blob); !errors.Is(err, ErrBadCheckpoint) {
		t.Fatalf("wrong seed accepted: %v", err)
	}
	// Wrong fingerprint.
	wrongFP := mk()
	wrongFP.Fingerprint = "other@test"
	if _, err := ResumeParallel(wrongFP, blob); !errors.Is(err, ErrBadCheckpoint) {
		t.Fatalf("wrong fingerprint accepted: %v", err)
	}
	// Elastic resume of an envelope with no merged corpus (hand-built, as a
	// corrupted or pre-elastic writer would produce) must fail loudly.
	empty := encodeParallelState(t, &parallelState{
		Version: parallelCheckpointVersion, Jobs: 3, Seed: 42, Fingerprint: "ladder@test",
		Shards: [][]byte{{1}, {2}, {3}},
	})
	if _, err := ResumeParallel(mk(), empty); !errors.Is(err, ErrBadCheckpoint) {
		t.Fatalf("corpus-less elastic envelope accepted: %v", err)
	}
}

func encodeParallelState(t *testing.T, st *parallelState) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(st); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}
