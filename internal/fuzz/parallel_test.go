package fuzz

import (
	"bytes"
	"errors"
	"sync"
	"testing"
	"time"
)

// newLadder builds an independent coverage-ladder executor with its own
// coverage buffer, the per-shard plumbing ParallelCampaign requires.
func newLadder(magic string) (*coverageLadder, []byte) {
	cov := make([]byte, MapSize)
	return &coverageLadder{cov: cov, magic: []byte(magic)}, cov
}

func TestShardSeedSplit(t *testing.T) {
	if ShardSeed(12345, 0) != 12345 {
		t.Fatal("shard 0 must fuzz with the raw trial seed")
	}
	seen := map[uint64]int{}
	for j := 0; j < 64; j++ {
		s := ShardSeed(12345, j)
		if prev, dup := seen[s]; dup {
			t.Fatalf("shards %d and %d share seed %#x", prev, j, s)
		}
		seen[s] = j
	}
}

func TestGlobalBitmapMerge(t *testing.T) {
	g := NewGlobalBitmap()
	local := make([]byte, MapSize)
	local[3] = 1
	local[4000] = 8
	if got := g.Merge(local); got != 2 {
		t.Fatalf("first merge contributed %d edges, want 2", got)
	}
	if got := g.Merge(local); got != 0 {
		t.Fatalf("idempotent re-merge contributed %d edges, want 0", got)
	}
	local[3] = 1 | 2 // new bucket on a known edge: not a new edge
	local[9] = 128
	if got := g.Merge(local); got != 1 {
		t.Fatalf("merge with one new edge contributed %d, want 1", got)
	}
	if g.Edges() != 3 {
		t.Fatalf("global edges = %d, want 3", g.Edges())
	}
	snap := g.Snapshot()
	if snap[3] != 3 || snap[4000] != 8 || snap[9] != 128 {
		t.Fatalf("snapshot did not reflect merged buckets: %v %v %v", snap[3], snap[4000], snap[9])
	}
}

func TestGlobalBitmapConcurrentMerge(t *testing.T) {
	g := NewGlobalBitmap()
	const workers = 8
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			local := make([]byte, MapSize)
			// Each worker owns a disjoint stripe plus one shared cell that
			// every worker hammers.
			for i := 0; i < 100; i++ {
				local[w*1000+i] = byte(1 << (w % 8))
			}
			local[60000] = 1
			for i := 0; i < 50; i++ {
				g.Merge(local)
			}
		}(w)
	}
	wg.Wait()
	want := workers*100 + 1
	if g.Edges() != want {
		t.Fatalf("concurrent merges lost coverage: edges = %d, want %d", g.Edges(), want)
	}
}

// TestParallelOneShardBitIdentical is the determinism anchor: a one-shard
// parallel campaign must reproduce the sequential campaign exactly —
// same executions, same coverage, same corpus bytes, same crash table.
func TestParallelOneShardBitIdentical(t *testing.T) {
	n := int64(60000)
	if raceEnabled {
		n = 8000
	}
	seeds := [][]byte{[]byte("xxxxxxxx")}

	seqEx, seqCov := newLadder("MAGIC")
	seq := NewCampaign(Config{Executor: seqEx, CovMap: seqCov, Seeds: seeds, Seed: 99})
	seq.RunExecs(n)

	parEx, parCov := newLadder("MAGIC")
	par, err := NewParallelCampaign(ParallelConfig{
		Shards: []ShardConfig{{Executor: parEx, CovMap: parCov}},
		Seed:   99, Seeds: seeds,
	})
	if err != nil {
		t.Fatal(err)
	}
	par.RunExecs(n)

	if seq.Execs() != par.Execs() {
		t.Fatalf("execs diverged: seq %d, par %d", seq.Execs(), par.Execs())
	}
	if seq.Edges() != par.Edges() {
		t.Fatalf("edges diverged: seq %d, par %d", seq.Edges(), par.Edges())
	}
	sq, pq := seq.Queue(), par.Queue()
	if len(sq) != len(pq) {
		t.Fatalf("queue length diverged: seq %d, par %d", len(sq), len(pq))
	}
	for i := range sq {
		if !bytes.Equal(sq[i].Input, pq[i].Input) {
			t.Fatalf("queue entry %d diverged: %q vs %q", i, sq[i].Input, pq[i].Input)
		}
		if sq[i].Gain != pq[i].Gain {
			t.Fatalf("queue entry %d gain diverged: %d vs %d", i, sq[i].Gain, pq[i].Gain)
		}
	}
	sc, pc := seq.Crashes(), par.Crashes()
	if len(sc) != len(pc) {
		t.Fatalf("crash tables diverged: seq %d, par %d", len(sc), len(pc))
	}
	for i := range sc {
		if sc[i].Key != pc[i].Key || sc[i].Count != pc[i].Count || sc[i].FirstExec != pc[i].FirstExec {
			t.Fatalf("crash %d diverged: %+v vs %+v", i, sc[i], pc[i])
		}
	}
}

// TestParallelShardsAggregate drives a real multi-shard fleet and checks
// the aggregate views: per-shard counters sum, coverage merges, the
// cross-shard corpus dedups imports, and every shard climbs the ladder.
func TestParallelShardsAggregate(t *testing.T) {
	const jobs = 4
	var shards []ShardConfig
	for j := 0; j < jobs; j++ {
		ex, cov := newLadder("MAGIC")
		shards = append(shards, ShardConfig{Executor: ex, CovMap: cov})
	}
	par, err := NewParallelCampaign(ParallelConfig{
		Shards: shards,
		Seed:   7,
		Seeds:  [][]byte{[]byte("xxxxxxxx")},
		// Small sync interval so imports actually propagate in a short test.
		SyncEvery: 64,
	})
	if err != nil {
		t.Fatal(err)
	}

	budget := int64(120000)
	if raceEnabled {
		budget = 24000
	}

	// Sample the lock-free aggregate counters concurrently with the run —
	// under -race this validates the whole publish/merge path. The sampler
	// sleeps between probes so it does not starve the shards on one CPU.
	stopSampling := make(chan struct{})
	var sampled sync.WaitGroup
	sampled.Add(1)
	go func() {
		defer sampled.Done()
		for {
			select {
			case <-stopSampling:
				return
			default:
				_ = par.Execs()
				_ = par.Edges()
				_ = par.CrashCount()
				time.Sleep(200 * time.Microsecond)
			}
		}
	}()
	par.RunExecs(budget)
	// Climbing the ladder to the crash depends on cross-shard adoption
	// timing, which the scheduler perturbs; keep fuzzing in bounded rounds
	// until the fleet gets there rather than asserting a fixed budget
	// suffices.
	deadline := time.Now().Add(60 * time.Second)
	for par.CrashCount() == 0 && time.Now().Before(deadline) {
		par.RunExecs(par.Execs() + budget/4)
	}
	close(stopSampling)
	sampled.Wait()

	if got := par.Execs(); got < budget {
		t.Fatalf("aggregate execs = %d, want >= %d", got, budget)
	}
	var sum int64
	for j := 0; j < jobs; j++ {
		e := par.Shard(j).Execs()
		if e == 0 {
			t.Fatalf("shard %d never ran", j)
		}
		sum += e
	}
	if sum != par.Execs() {
		t.Fatalf("per-shard execs sum to %d, aggregate says %d", sum, par.Execs())
	}
	for j := 0; j < jobs; j++ {
		if got, want := par.Shard(j).Edges(), par.Edges(); got > want {
			t.Fatalf("shard %d has %d edges but global map only %d", j, got, want)
		}
	}
	// Content-unique corpus: no input may appear twice in the merged queue.
	seen := map[string]int{}
	for i, e := range par.Queue() {
		if prev, dup := seen[string(e.Input)]; dup {
			t.Fatalf("corpus entries %d and %d share content %q", prev, i, e.Input)
		}
		seen[string(e.Input)] = i
	}
	if par.CrashCount() == 0 {
		t.Fatalf("fleet never climbed the ladder (execs=%d, edges=%d, corpus=%d)",
			par.Execs(), par.Edges(), par.QueueLen())
	}
}

// TestParallelCheckpointResume round-trips a two-shard fleet through the
// gob envelope and continues fuzzing from the restored state.
func TestParallelCheckpointResume(t *testing.T) {
	mk := func() ParallelConfig {
		var shards []ShardConfig
		for j := 0; j < 2; j++ {
			ex, cov := newLadder("MAGIC")
			shards = append(shards, ShardConfig{Executor: ex, CovMap: cov})
		}
		return ParallelConfig{
			Shards: shards, Seed: 42, Fingerprint: "ladder@test",
			Seeds: [][]byte{[]byte("xxxxxxxx")}, SyncEvery: 64,
		}
	}
	n := int64(20000)
	if raceEnabled {
		n = 5000
	}
	par, err := NewParallelCampaign(mk())
	if err != nil {
		t.Fatal(err)
	}
	par.RunExecs(n)
	execs, edges, corpus := par.Execs(), par.Edges(), par.QueueLen()
	blob, err := par.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}

	res, err := ResumeParallel(mk(), blob)
	if err != nil {
		t.Fatal(err)
	}
	if res.Execs() != execs || res.Edges() != edges {
		t.Fatalf("resume lost progress: execs %d->%d, edges %d->%d",
			execs, res.Execs(), edges, res.Edges())
	}
	if res.QueueLen() != corpus {
		t.Fatalf("resume lost corpus: %d -> %d", corpus, res.QueueLen())
	}
	res.RunExecs(execs + n/2)
	if res.Execs() < execs+n/2 {
		t.Fatalf("resumed fleet did not continue: %d execs", res.Execs())
	}

	// A different shard count is no longer an error — it takes the elastic
	// path and preserves corpus contents and totals (deep coverage in
	// TestParallelElasticResume).
	grown := mk()
	ex, cov := newLadder("MAGIC")
	grown.Shards = append(grown.Shards, ShardConfig{Executor: ex, CovMap: cov})
	el, err := ResumeParallel(grown, blob)
	if err != nil {
		t.Fatalf("elastic resume onto J=3 failed: %v", err)
	}
	if el.Execs() != execs || el.Edges() != edges || el.QueueLen() != corpus {
		t.Fatalf("elastic resume lost progress: execs %d->%d, edges %d->%d, corpus %d->%d",
			execs, el.Execs(), edges, el.Edges(), corpus, el.QueueLen())
	}
	// A truncated blob fails loudly.
	if _, err := ResumeParallel(mk(), blob[:10]); !errors.Is(err, ErrBadCheckpoint) {
		t.Fatalf("truncated blob accepted: %v", err)
	}
}

// TestParallelSentinelShardZero checks the sentinel rides on shard 0 only
// and its findings surface through the fleet-level accessors.
func TestParallelSentinelShardZero(t *testing.T) {
	var shards []ShardConfig
	var refs []*coverageLadder
	for j := 0; j < 2; j++ {
		ex, cov := newLadder("MAGIC")
		shards = append(shards, ShardConfig{Executor: ex, CovMap: cov})
		refs = append(refs, ex)
	}
	refEx, refCov := newLadder("MAGIC")
	par, err := NewParallelCampaign(ParallelConfig{
		Shards: shards, Seed: 5, Seeds: [][]byte{[]byte("xxxxxxxx")},
		Sentinel: &SentinelConfig{Reference: refEx, RefCovMap: refCov, Every: 500},
	})
	if err != nil {
		t.Fatal(err)
	}
	if par.Shard(0).cfg.Sentinel == nil {
		t.Fatal("shard 0 must carry the sentinel")
	}
	if par.Shard(1).cfg.Sentinel != nil {
		t.Fatal("non-designated shards must not run the sentinel")
	}
	par.RunExecs(5000)
	// The reference agrees with the shard mechanism, so a healthy fleet
	// reports no divergences.
	if len(par.Divergences()) != 0 {
		t.Fatalf("healthy fleet diverged: %+v", par.Divergences())
	}
	_ = refs
}
