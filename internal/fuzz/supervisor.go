package fuzz

// Shard supervision for ParallelCampaign. Each shard's exec loop runs under
// a per-shard supervisor that catches shard death (an injected kill, a
// restore corruption, or a real panic anywhere in the shard's exec stack)
// and climbs the PR-1 recovery ladder at fleet scope:
//
//	fault
//	    → restart the shard loop with exponential backoff (campaign state —
//	      queue, RNG, bitmap — survives; only the segment died)
//	repeated fault (> MaxRestarts consecutive)
//	    → rebuild the execution mechanism: first via the mechanism's own
//	      ladder (execmgr.Resilient.Rebuild), else a full replacement
//	      through ShardConfig.Rebuild (fresh VM + harness)
//	fault again
//	    → permanent quarantine: the shard's coverage is merged, its pending
//	      corpus redistributed through the manager, and the campaign
//	      continues on the remaining healthy shards
//
// A shard that reaches a sync boundary (SyncEvery fresh executions) closes
// its fault streak, so intermittent faults restart forever without ever
// quarantining a shard that still makes progress.
//
// With no faults the supervisor is inert: the loop runs to completion on
// the first attempt, the deferred recover never fires, and the sync cadence
// is untouched — fault-free campaigns behave exactly as they did without
// supervision (the J=1 bit-identity proof still holds).

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"closurex/internal/faultinject"
)

// SupervisorConfig tunes the per-shard supervision ladder.
type SupervisorConfig struct {
	// MaxRestarts is how many consecutive plain restarts a shard gets
	// before the supervisor escalates to a mechanism rebuild; one more
	// fault after the rebuild quarantines the shard permanently
	// (default 3).
	MaxRestarts int
	// Backoff is the cooldown before the first restart; it doubles per
	// consecutive fault (default 2ms — shards are in-process goroutines,
	// not OS processes, so the base is small).
	Backoff time.Duration
	// HangAfter is the no-progress threshold for the hang escalation
	// check: a monitor goroutine marks a shard stalled when its exec
	// counter has not moved for this long (default 10s; < 0 disables).
	// Escalation is observational — a wedged goroutine cannot be
	// preempted in-process — but the mark surfaces through Health and the
	// event log so operators and the stats emitter see it.
	HangAfter time.Duration
	// InboxCap bounds each shard's import inbox; when a shard stalls and
	// stops draining, the manager drops its oldest pending imports instead
	// of growing without bound (default 4096; < 0 unbounded). Dropped
	// imports are mutation fodder only — their coverage already lives in
	// the global bitmap — so dropping is always sound.
	InboxCap int
	// PublishTimeout bounds the blocking corpus flush at a shard's final
	// sync boundary (quarantine or campaign end); a manager wedged longer
	// than this loses the flush rather than deadlocking the fleet
	// (default 2s).
	PublishTimeout time.Duration
	// Injector arms chaos injection in the parallel layer: shard kills,
	// restore corruption, corpus-channel delay/drop. Nil injects nothing
	// and keeps the per-step probe to a single nil check.
	Injector *faultinject.Injector
}

func (s *SupervisorConfig) setDefaults() {
	if s.MaxRestarts <= 0 {
		s.MaxRestarts = 3
	}
	if s.Backoff <= 0 {
		s.Backoff = 2 * time.Millisecond
	}
	if s.HangAfter == 0 {
		s.HangAfter = 10 * time.Second
	}
	if s.InboxCap == 0 {
		s.InboxCap = 4096
	}
	if s.PublishTimeout <= 0 {
		s.PublishTimeout = 2 * time.Second
	}
}

// shardFault is the panic payload the chaos probes (and any future
// self-check) throw to kill the current shard segment with a typed verdict.
type shardFault struct {
	kind   string // "kill" | "restore-corrupt"
	detail string
}

// shardHealth is the per-shard health ledger. All fields are atomics so
// Health() can snapshot them from any goroutine while the fleet runs.
type shardHealth struct {
	restarts        atomic.Int64
	rebuilds        atomic.Int64
	restoreFailures atomic.Int64
	consecFaults    atomic.Int64
	hangEscalations atomic.Int64
	inboxDropped    atomic.Int64
	pendingPub      atomic.Int64
	quarantined     atomic.Bool
	stalled         atomic.Bool
	lastProgress    atomic.Int64  // unix nanos of the last observed progress
	rateBits        atomic.Uint64 // EWMA execs/sec, as math.Float64bits

	mu        sync.Mutex
	lastFault string
}

func (h *shardHealth) touchProgress() { h.lastProgress.Store(time.Now().UnixNano()) }

func (h *shardHealth) setLastFault(s string) {
	h.mu.Lock()
	h.lastFault = s
	h.mu.Unlock()
}

func (h *shardHealth) getLastFault() string {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.lastFault
}

// ShardHealth is one shard's health snapshot — the state a fleet
// supervisor (CLI stats emitter, future closurex-serve daemon) watches.
type ShardHealth struct {
	Shard int
	// Execs/Crashes/Hangs are the counters sampled at the shard's last
	// sync boundary.
	Execs   int64
	Crashes int64
	Hangs   int64
	// ExecRate is an exponentially weighted execs/sec over sync windows.
	ExecRate float64
	// Restarts counts supervised segment restarts; Rebuilds counts
	// mechanism rebuilds/replacements; RestoreFailures counts faults
	// triaged as restore corruption (both injected and, for mechanisms
	// that expose it, organic restore errors).
	Restarts        int64
	Rebuilds        int64
	RestoreFailures int64
	// ConsecutiveFaults is the current fault streak (0 while healthy).
	ConsecutiveFaults int64
	// HangEscalations counts monitor no-progress escalations.
	HangEscalations int64
	// InboxDropped counts imports shed by the bounded inbox;
	// PendingPublish is the backpressure depth (entries waiting for the
	// manager to accept them).
	InboxDropped   int64
	PendingPublish int64
	// Quarantined means the supervisor permanently retired the shard;
	// Stalled means the hang monitor currently sees no progress.
	Quarantined bool
	Stalled     bool
	// LastProgress is when the shard last demonstrably advanced.
	LastProgress time.Time
	// LastFault describes the most recent fault ("" while clean).
	LastFault string
	// MechDegraded mirrors the mechanism's own ladder state when the
	// executor exposes it (execmgr.Resilient fallen back to forkserver).
	MechDegraded bool
}

// ShardEvent is one entry in the fleet's supervision log.
type ShardEvent struct {
	Shard  int
	Exec   int64 // the shard's exec count when the event fired
	Kind   string
	Detail string
	At     time.Duration // campaign time
}

// mechRebuilder is the optional executor interface the supervisor prefers
// for rebuilds: execmgr.Resilient satisfies it, so a restore-corrupt shard
// first recycles its persistent image through the mechanism's own ladder
// before the supervisor replaces the whole mechanism.
type mechRebuilder interface{ Rebuild(reason string) }

// mechDegraded is the optional executor interface exposing the mechanism
// ladder's fallback state (execmgr.Resilient).
type mechDegraded interface{ Degraded() bool }

// mechRestoreFails is the optional executor interface exposing organic
// restore-error counts (execmgr.Resilient), folded into ShardHealth next to
// the supervisor's own injected-fault count.
type mechRestoreFails interface{ RestoreFailures() int64 }

// Health snapshots every shard's supervision state. Safe to call from any
// goroutine while the fleet runs; counter fields lag live progress by at
// most one sync window.
func (p *ParallelCampaign) Health() []ShardHealth {
	out := make([]ShardHealth, len(p.shards))
	for j, sh := range p.shards {
		h := &p.health[j]
		out[j] = ShardHealth{
			Shard:             j,
			Execs:             atomic.LoadInt64(&p.counters[j].execs),
			Crashes:           atomic.LoadInt64(&p.counters[j].crashes),
			Hangs:             atomic.LoadInt64(&p.counters[j].hangs),
			ExecRate:          math.Float64frombits(h.rateBits.Load()),
			Restarts:          h.restarts.Load(),
			Rebuilds:          h.rebuilds.Load(),
			RestoreFailures:   h.restoreFailures.Load(),
			ConsecutiveFaults: h.consecFaults.Load(),
			HangEscalations:   h.hangEscalations.Load(),
			InboxDropped:      h.inboxDropped.Load(),
			PendingPublish:    h.pendingPub.Load(),
			Quarantined:       h.quarantined.Load(),
			Stalled:           h.stalled.Load(),
			LastFault:         h.getLastFault(),
		}
		if ns := h.lastProgress.Load(); ns > 0 {
			out[j].LastProgress = time.Unix(0, ns)
		}
		if d, ok := sh.c.cfg.Executor.(mechDegraded); ok {
			out[j].MechDegraded = d.Degraded()
		}
		if rf, ok := sh.c.cfg.Executor.(mechRestoreFails); ok {
			out[j].RestoreFailures += rf.RestoreFailures()
		}
	}
	return out
}

// HealthyShards counts shards not yet quarantined. A caller driving the
// campaign in slices (the CLI status loop) should stop once this reaches
// zero — RunFor/RunExecs return immediately with no shard left to fuzz.
func (p *ParallelCampaign) HealthyShards() int {
	n := 0
	for j := range p.health {
		if !p.health[j].quarantined.Load() {
			n++
		}
	}
	return n
}

// Events returns a copy of the supervision log (faults, restarts, rebuilds,
// quarantines, hang escalations) in arrival order.
func (p *ParallelCampaign) Events() []ShardEvent {
	p.eventMu.Lock()
	defer p.eventMu.Unlock()
	return append([]ShardEvent(nil), p.events...)
}

func (p *ParallelCampaign) eventf(shard int, exec int64, kind, format string, args ...interface{}) {
	ev := ShardEvent{Shard: shard, Exec: exec, Kind: kind, Detail: fmt.Sprintf(format, args...), At: p.Elapsed()}
	p.eventMu.Lock()
	p.events = append(p.events, ev)
	p.eventMu.Unlock()
}

// step advances sh's campaign by one execution, probing the chaos sites
// first. The production fast path is one nil check.
func (p *ParallelCampaign) step(sh *shard) {
	if inj := p.sup.Injector; inj != nil {
		if inj.Should(faultinject.ShardKill) || inj.Should(faultinject.ForShard(faultinject.ShardKill, sh.id)) {
			panic(shardFault{kind: "kill", detail: faultinject.Err(faultinject.ShardKill).Error()})
		}
		if inj.Should(faultinject.ShardRestore) || inj.Should(faultinject.ForShard(faultinject.ShardRestore, sh.id)) {
			panic(shardFault{kind: "restore-corrupt", detail: faultinject.Err(faultinject.ShardRestore).Error()})
		}
	}
	sh.c.Step()
}

// supervise is one shard's top-level goroutine: run the exec loop, and on
// shard death climb restart → rebuild → quarantine. A quarantined shard
// never restarts, including across subsequent RunFor/RunExecs calls.
func (p *ParallelCampaign) supervise(sh *shard, pub chan<- corpusMsg, fn func(*shard, chan<- corpusMsg)) {
	h := &p.health[sh.id]
	if h.quarantined.Load() {
		return
	}
	h.touchProgress()
	for {
		if p.runSegment(sh, pub, fn) {
			// Normal completion (deadline, exec target, or stop request):
			// flush everything at a final boundary.
			p.syncShard(sh, pub)
			p.flushPublishes(sh, pub, true)
			h.consecFaults.Store(0)
			return
		}
		faults := h.consecFaults.Add(1)
		h.restarts.Add(1)
		p.eventf(sh.id, sh.c.execs, "fault", "%s (streak %d)", h.getLastFault(), faults)
		switch {
		case faults <= int64(p.sup.MaxRestarts):
			p.eventf(sh.id, sh.c.execs, "restart", "backoff %v", p.backoffFor(faults))
			p.backoffWait(p.backoffFor(faults))
		case faults == int64(p.sup.MaxRestarts)+1 && p.rebuildShard(sh):
			p.backoffWait(p.backoffFor(faults))
		default:
			p.quarantineShard(sh, pub)
			return
		}
	}
}

// runSegment runs one supervised stretch of the shard loop, converting any
// panic in the shard's exec stack into a recorded fault.
func (p *ParallelCampaign) runSegment(sh *shard, pub chan<- corpusMsg, fn func(*shard, chan<- corpusMsg)) (completed bool) {
	defer func() {
		if r := recover(); r != nil {
			h := &p.health[sh.id]
			switch f := r.(type) {
			case shardFault:
				if f.kind == "restore-corrupt" {
					h.restoreFailures.Add(1)
				}
				h.setLastFault(f.kind + ": " + f.detail)
			default:
				h.setLastFault(fmt.Sprintf("panic: %v", r))
			}
		}
	}()
	fn(sh, pub)
	return true
}

// backoffFor returns the exponential cooldown for the nth consecutive fault.
func (p *ParallelCampaign) backoffFor(faults int64) time.Duration {
	shift := faults - 1
	if shift > 16 {
		shift = 16
	}
	return p.sup.Backoff << shift
}

// backoffWait sleeps d, returning early if the campaign's stop channel
// closes (a stopping fleet should not sit out a backoff; the next segment
// will observe the stop request and finish cleanly).
func (p *ParallelCampaign) backoffWait(d time.Duration) {
	if d <= 0 {
		return
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
	case <-p.cfg.Stop: // nil channel: never fires, timer wins
	}
}

// rebuildShard replaces the shard's execution mechanism while keeping its
// campaign state (queue, RNG, bitmap — all still sound; only the mechanism
// is suspect). The mechanism's own ladder is preferred; full replacement
// through ShardConfig.Rebuild is the fallback. Returns false when no
// rebuild path exists or construction fails — the caller quarantines.
func (p *ParallelCampaign) rebuildShard(sh *shard) bool {
	h := &p.health[sh.id]
	if rb, ok := sh.c.cfg.Executor.(mechRebuilder); ok {
		rb.Rebuild("shard supervisor: fault streak escalation")
		h.rebuilds.Add(1)
		p.eventf(sh.id, sh.c.execs, "rebuild", "mechanism ladder rebuild")
		return true
	}
	if sh.rebuild == nil {
		return false
	}
	ex, cov, err := sh.rebuild()
	if err != nil {
		p.eventf(sh.id, sh.c.execs, "rebuild", "replacement failed: %v", err)
		return false
	}
	sh.c.swapExecutor(ex, cov)
	h.rebuilds.Add(1)
	p.eventf(sh.id, sh.c.execs, "rebuild", "mechanism replaced")
	return true
}

// quarantineShard retires sh permanently: its coverage is merged and its
// pending corpus redistributed (published through the manager so the
// healthy shards adopt it), then the shard leaves the fleet. The campaign
// continues on J−k healthy shards.
func (p *ParallelCampaign) quarantineShard(sh *shard, pub chan<- corpusMsg) {
	h := &p.health[sh.id]
	p.syncShard(sh, pub)
	p.flushPublishes(sh, pub, true)
	h.quarantined.Store(true)
	p.eventf(sh.id, sh.c.execs, "quarantine", "retired after %d consecutive faults; last: %s",
		h.consecFaults.Load(), h.getLastFault())
}

// monitor is the hang escalation check: a periodic sweep comparing each
// active shard's sampled exec counter against its last observed value. A
// shard that has not moved for HangAfter is marked stalled (once per stall
// episode); progress clears the mark.
func (p *ParallelCampaign) monitor(stop <-chan struct{}) {
	period := p.sup.HangAfter / 4
	if period < time.Millisecond {
		period = time.Millisecond
	}
	tick := time.NewTicker(period)
	defer tick.Stop()
	lastExecs := make([]int64, len(p.shards))
	lastMove := make([]time.Time, len(p.shards))
	now := time.Now()
	for j := range p.shards {
		lastExecs[j] = atomic.LoadInt64(&p.counters[j].execs)
		lastMove[j] = now
	}
	for {
		select {
		case <-stop:
			return
		case <-tick.C:
		}
		now = time.Now()
		for j := range p.shards {
			h := &p.health[j]
			if h.quarantined.Load() {
				continue
			}
			execs := atomic.LoadInt64(&p.counters[j].execs)
			if execs != lastExecs[j] {
				lastExecs[j] = execs
				lastMove[j] = now
				if h.stalled.CompareAndSwap(true, false) {
					p.eventf(j, execs, "hang-recovered", "progress resumed")
				}
				continue
			}
			if now.Sub(lastMove[j]) >= p.sup.HangAfter && h.stalled.CompareAndSwap(false, true) {
				h.hangEscalations.Add(1)
				p.eventf(j, execs, "hang-escalation", "no progress for %v", now.Sub(lastMove[j]).Round(time.Millisecond))
			}
		}
	}
}
