package fuzz

import (
	"strings"
	"testing"

	"closurex/internal/execmgr"
	"closurex/internal/ir"
	"closurex/internal/lower"
	"closurex/internal/passes"
	"closurex/internal/vm"
)

// Mechanism-level sentinel integration: the §6.1.4 correctness study as a
// runtime self-check. A deliberately polluted persistent mechanism
// (AFL++-style persistent mode with no state restoration) must be flagged;
// correct ClosureX restoration must not be.

// driftSrc accumulates global state across iterations, so a replay in a
// polluted persistent process returns a different value than in a fresh one.
const driftSrc = `
int runs;
int main(void) {
	runs++;
	int f = fopen("/input", "r");
	if (!f) abort();
	int c = fgetc(f);
	if (c < 0) c = 0;
	fclose(f);
	if (c > 'm') return 1000 * runs + 1;
	return 1000 * runs + c;
}
`

func buildDriftModule(t *testing.T, closureX bool) *ir.Module {
	t.Helper()
	m, err := lower.Compile("drift.c", driftSrc, vm.Builtins())
	if err != nil {
		t.Fatal(err)
	}
	pm := passes.NewManager(vm.Builtins())
	if closureX {
		pm.Add(passes.ClosureXPipeline(false)...)
		pm.Add(passes.NewCoveragePass(1))
	} else {
		pm.Add(passes.CoverageOnlyPipeline(1)...)
	}
	if err := pm.Run(m); err != nil {
		t.Fatal(err)
	}
	return m
}

func runSentinelCampaign(t *testing.T, mechName string) *Campaign {
	t.Helper()
	m := buildDriftModule(t, mechName == "closurex")
	cov := make([]byte, MapSize)
	mech, err := execmgr.New(mechName, execmgr.Config{Module: m, CovMap: cov})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(mech.Close)
	refCov := make([]byte, MapSize)
	ref, err := execmgr.NewFresh(execmgr.Config{Module: m, CovMap: refCov})
	if err != nil {
		t.Fatal(err)
	}
	c := NewCampaign(Config{
		Executor: mech,
		CovMap:   cov,
		Seeds:    [][]byte{[]byte("a")},
		Seed:     7,
		Sentinel: &SentinelConfig{Reference: ref, RefCovMap: refCov, Every: 25},
	})
	c.RunExecs(500)
	return c
}

func TestSentinelFlagsPollutedPersistentNaive(t *testing.T) {
	c := runSentinelCampaign(t, "persistent-naive")
	divs := c.Divergences()
	if len(divs) == 0 {
		t.Fatal("sentinel missed the stale-global pollution of persistent-naive")
	}
	// The drift manifests as a result mismatch: runs accumulates in the
	// persistent child, stays 1 in every fresh reference process.
	if !strings.Contains(divs[0].Reason, "result") {
		t.Fatalf("divergence reason = %q, want a result mismatch", divs[0].Reason)
	}
}

func TestSentinelCleanOnClosureX(t *testing.T) {
	c := runSentinelCampaign(t, "closurex")
	if n := len(c.Divergences()); n != 0 {
		t.Fatalf("%d false-positive divergences on correct restoration: %+v", n, c.Divergences())
	}
	if len(c.Quarantined()) != 0 {
		t.Fatal("clean run quarantined entries")
	}
	if c.Edges() == 0 || c.QueueLen() == 0 {
		t.Fatalf("campaign made no progress: edges=%d queue=%d", c.Edges(), c.QueueLen())
	}
}
