package fuzz

// Atomic checkpoint file IO. Checkpoints are written to a temp file in the
// destination directory and renamed into place, so a crash (or an injected
// fault) mid-write can never leave a truncated file under the checkpoint's
// name: readers see either the previous complete checkpoint or the new one,
// never a torn mix. The temp file is fsynced before the rename so the
// rename cannot be durably ordered ahead of the data it names.

import (
	"fmt"
	"os"
	"path/filepath"

	"closurex/internal/faultinject"
)

// SaveCheckpoint serializes d and writes the blob atomically to path. The
// injector (nil for production) arms the CheckpointWrite chaos site, which
// fails the write mid-stream the way a full disk or a crash would.
func SaveCheckpoint(d Driver, path string, inj *faultinject.Injector) error {
	blob, err := d.Checkpoint()
	if err != nil {
		return err
	}
	return WriteCheckpointFile(path, blob, inj)
}

// WriteCheckpointFile atomically replaces path with blob via a temp file in
// the same directory plus rename. On any failure the previous file at path
// is untouched; a partial temp file may remain (its name never collides
// with a checkpoint name, and the next successful write reuses the slot).
func WriteCheckpointFile(path string, blob []byte, inj *faultinject.Injector) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp-*")
	if err != nil {
		return fmt.Errorf("fuzz: checkpoint temp file: %w", err)
	}
	tmpName := tmp.Name()
	if inj.Should(faultinject.CheckpointWrite) {
		// Model the torn write: half the blob lands, then the writer dies.
		_, _ = tmp.Write(blob[:len(blob)/2])
		tmp.Close()
		return fmt.Errorf("fuzz: checkpoint write %s: %w", tmpName, faultinject.Err(faultinject.CheckpointWrite))
	}
	if _, err := tmp.Write(blob); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return fmt.Errorf("fuzz: checkpoint write %s: %w", tmpName, err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return fmt.Errorf("fuzz: checkpoint sync %s: %w", tmpName, err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("fuzz: checkpoint close %s: %w", tmpName, err)
	}
	if err := os.Rename(tmpName, path); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("fuzz: checkpoint rename: %w", err)
	}
	return nil
}

// LoadCheckpointFile reads a checkpoint blob written by WriteCheckpointFile.
func LoadCheckpointFile(path string) ([]byte, error) {
	blob, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("fuzz: read checkpoint %s: %w", path, err)
	}
	return blob, nil
}
