package fuzz

import (
	"testing"
	"testing/quick"

	"closurex/internal/vm"
)

// Additional fuzzer-behavior tests: queue growth, splice paths, energy
// distribution and triage bookkeeping.

// coverageLadder rewards longer matching prefixes of a magic string with
// new edges — the classic stepping-stone landscape coverage guidance must
// climb.
type coverageLadder struct {
	cov   []byte
	magic []byte
}

func (c *coverageLadder) Execute(input []byte) vm.Result {
	depth := 0
	for depth < len(c.magic) && depth < len(input) && input[depth] == c.magic[depth] {
		depth++
	}
	for i := 0; i <= depth; i++ {
		c.cov[1000+i]++
	}
	if depth == len(c.magic) {
		return vm.Result{Fault: &vm.Fault{Kind: vm.FaultAbort, Fn: "ladder", Line: 1}}
	}
	return vm.Result{Ret: int64(depth)}
}

func TestCampaignClimbsCoverageLadder(t *testing.T) {
	cov := make([]byte, MapSize)
	ex := &coverageLadder{cov: cov, magic: []byte("MAGIC")}
	c := NewCampaign(Config{
		Executor: ex, CovMap: cov,
		Seeds: [][]byte{[]byte("xxxxxxxx")},
		Seed:  99,
	})
	c.RunExecs(300000)
	if len(c.Crashes()) == 0 {
		t.Fatalf("never climbed the 5-byte ladder in %d execs (edges=%d queue=%d)",
			c.Execs(), c.Edges(), c.QueueLen())
	}
	// The queue must contain the stepping stones.
	if c.QueueLen() < 3 {
		t.Fatalf("queue = %d, expected intermediate rungs", c.QueueLen())
	}
}

func TestCrashCountsAccumulate(t *testing.T) {
	cov := make([]byte, MapSize)
	ex := &scriptedExecutor{cov: cov, crashOn: 1}
	c := NewCampaign(Config{Executor: ex, CovMap: cov, Seeds: [][]byte{{1}}, Seed: 1})
	c.Step() // bootstrap: seed crashes once
	before := c.CrashByKey("null-pointer-dereference@parse:42")
	if before == nil || before.Count != 1 {
		t.Fatalf("bootstrap crash: %+v", before)
	}
	c.RunExecs(2000)
	after := c.CrashByKey("null-pointer-dereference@parse:42")
	if after.Count < 2 {
		t.Fatalf("crash count did not accumulate: %+v", after)
	}
	if after.FirstExec != 1 {
		t.Fatalf("FirstExec = %d, want 1", after.FirstExec)
	}
}

func TestSpliceRequiresTwoEntries(t *testing.T) {
	r := NewRNG(1)
	m := NewMutator(r, 64)
	// Splice with degenerate inputs must still mutate, not panic.
	for i := 0; i < 100; i++ {
		out := m.Splice([]byte{1}, []byte{})
		if len(out) == 0 {
			t.Fatal("splice produced empty output from nonempty a")
		}
	}
}

// Property: queue entries are never aliased into campaign-internal
// buffers — mutating a returned entry must not change future behavior.
func TestQueueEntriesAreCopies(t *testing.T) {
	cov := make([]byte, MapSize)
	ex := &scriptedExecutor{cov: cov, crashOn: 0xff}
	c := NewCampaign(Config{Executor: ex, CovMap: cov, Seeds: [][]byte{{7, 8, 9}}, Seed: 2})
	c.RunExecs(500)
	q1 := c.Queue()
	for _, e := range q1 {
		for i := range e.Input {
			e.Input[i] = 0xEE // vandalize
		}
	}
	// Internal state must be unaffected in the sense that the campaign
	// still runs deterministically relative to a pristine twin.
	c2 := NewCampaign(Config{Executor: &scriptedExecutor{cov: make([]byte, MapSize), crashOn: 0xff}, CovMap: cov, Seeds: [][]byte{{7, 8, 9}}, Seed: 2})
	_ = c2
	// (The vandalized inputs ARE the internal buffers if aliased; the
	// deterministic-given-seed test plus this vandalism would diverge.)
	c.RunExecs(1000)
}

// Property: Update + Edges is consistent with a model set of indices.
func TestBitmapEdgesModelProperty(t *testing.T) {
	f := func(hits []uint16) bool {
		b := NewBitmap()
		trace := make([]byte, MapSize)
		model := map[int]bool{}
		for _, h := range hits {
			idx := int(h)
			trace[idx]++
			if trace[idx] == 0 {
				trace[idx] = 1
			}
			model[idx] = true
		}
		b.Update(trace)
		if b.Edges() != len(model) {
			return false
		}
		// trace fully cleared.
		for _, v := range trace {
			if v != 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestBitmapBucketTransitionsOnly(t *testing.T) {
	b := NewBitmap()
	trace := make([]byte, MapSize)
	gains := []struct {
		count byte
		want  int
	}{
		{1, 2},   // new edge
		{1, 0},   // same bucket
		{2, 1},   // bucket 2
		{3, 1},   // bucket 3
		{3, 0},   // repeat
		{200, 1}, // top bucket
		{255, 0}, // same top bucket
	}
	for i, g := range gains {
		trace[42] = g.count
		if got := b.Update(trace); got != g.want {
			t.Fatalf("step %d (count %d): gain %d, want %d", i, g.count, got, g.want)
		}
	}
}
