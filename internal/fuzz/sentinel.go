package fuzz

import (
	"fmt"

	"closurex/internal/vm"
)

// Controller is the campaign's handle on the execution mechanism's
// quarantine/rebuild/fallback ladder (implemented by execmgr.Resilient).
// The sentinel routes divergences into it: each divergence triggers one
// rebuild of the persistent image; a streak longer than MaxFailures
// degrades the mechanism to its fallback.
type Controller interface {
	// Rebuild asks for one rebuild of the persistent process image.
	Rebuild(reason string)
	// Degrade asks for the permanent fallback transition.
	Degrade(reason string)
	// Degraded reports whether the fallback is already active.
	Degraded() bool
}

// SentinelConfig arms the divergence sentinel: the paper's offline §6.1.4
// correctness study turned into a runtime self-check. Every Every campaign
// executions, one queue entry is replayed under the campaign's persistent
// mechanism AND under a fresh-process reference executor; their coverage
// edge sets and fault verdicts must agree. A mismatch means the persistent
// image has drifted from fresh-process semantics.
type SentinelConfig struct {
	// Reference executes the replay in a fresh process image each time. It
	// must run the same instrumented module as the campaign's executor so
	// the two coverage maps share probe geometry.
	Reference Executor
	// RefCovMap is the reference executor's coverage map.
	RefCovMap []byte
	// Every is the probe period in campaign executions (0 disables).
	Every int64
	// MaxFailures bounds consecutive divergent probes before the sentinel
	// gives up on rebuilds and degrades the mechanism (default 3).
	MaxFailures int
	// Controller receives rebuild/degrade requests; nil means the sentinel
	// only records divergences (observation mode — how the PersistentNaive
	// pathology demonstration runs).
	Controller Controller
}

func (s *SentinelConfig) setDefaults() {
	if s.MaxFailures <= 0 {
		s.MaxFailures = 3
	}
}

// Divergence records one sentinel probe whose persistent-mechanism replay
// disagreed with the fresh-process reference.
type Divergence struct {
	// Exec is the campaign execution count when the probe ran.
	Exec int64
	// Input is the replayed queue entry.
	Input []byte
	// Reason describes the mismatch ("fault ..." or "edges ...").
	Reason string
}

// Divergences returns the sentinel's findings so far.
func (c *Campaign) Divergences() []Divergence { return c.divergences }

// Quarantined returns queue entries the sentinel pulled out of rotation.
func (c *Campaign) Quarantined() []*Entry { return c.quarantined }

// sentinelProbe replays one queue entry under both executors and compares.
// Probe replays do not count as campaign executions and do not feed the
// cumulative bitmap, so arming the sentinel never perturbs the mutation
// stream — a campaign with and without divergences stays deterministic in
// everything except the sentinel's own bookkeeping.
func (c *Campaign) sentinelProbe() {
	s := c.cfg.Sentinel
	if len(c.queue) == 0 {
		c.sentNext = c.execs + s.Every
		return
	}
	e := c.queue[c.sentCursor%len(c.queue)]
	c.sentCursor++

	zeroMap(c.cfg.CovMap)
	resP := c.cfg.Executor.Execute(e.Input)
	pEdges := edgeSet(c.cfg.CovMap)
	zeroMap(s.RefCovMap)
	resR := s.Reference.Execute(e.Input)
	rEdges := edgeSet(s.RefCovMap)

	reason := ""
	switch {
	case resultKey(resP) != resultKey(resR):
		reason = fmt.Sprintf("result %s vs fresh %s", resultKey(resP), resultKey(resR))
	case !sameEdgeSet(pEdges, rEdges):
		reason = fmt.Sprintf("edge set %d vs fresh %d (symmetric difference %d)",
			len(pEdges), len(rEdges), edgeSetDiff(pEdges, rEdges))
	}
	if reason == "" {
		c.sentFails = 0
		c.sentBackoff = 1
		c.sentNext = c.execs + s.Every
		return
	}

	c.divergences = append(c.divergences, Divergence{
		Exec:   c.execs,
		Input:  append([]byte(nil), e.Input...),
		Reason: reason,
	})
	c.quarantineEntry(e)
	c.sentFails++
	if ctrl := s.Controller; ctrl != nil && !ctrl.Degraded() {
		if c.sentFails > s.MaxFailures {
			ctrl.Degrade(fmt.Sprintf("sentinel: %d consecutive divergences; last: %s", c.sentFails, reason))
		} else {
			ctrl.Rebuild("sentinel: " + reason)
		}
	}
	// Back off: a diverging image is being rebuilt (or is beyond help), so
	// probing at full cadence would only burn executions re-confirming it.
	c.sentBackoff *= 2
	c.sentNext = c.execs + s.Every*c.sentBackoff
}

// quarantineEntry removes e from the queue (keeping at least one entry so
// mutation always has a basis) and parks it in the quarantine list.
func (c *Campaign) quarantineEntry(e *Entry) {
	if len(c.queue) <= 1 {
		c.quarantined = append(c.quarantined, e)
		return
	}
	for i, q := range c.queue {
		if q == e {
			c.queue = append(c.queue[:i], c.queue[i+1:]...)
			break
		}
	}
	c.quarantined = append(c.quarantined, e)
	if c.cur == e {
		// Don't keep mutating from a quarantined basis.
		c.burst = 0
	}
}

// zeroMap clears a coverage map.
func zeroMap(m []byte) {
	for i := range m {
		m[i] = 0
	}
}

// edgeSet collects the indices of non-zero coverage cells and clears the
// map for the next execution.
func edgeSet(m []byte) map[int]struct{} {
	out := make(map[int]struct{})
	for i, v := range m {
		if v != 0 {
			out[i] = struct{}{}
			m[i] = 0
		}
	}
	return out
}

func sameEdgeSet(a, b map[int]struct{}) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if _, ok := b[i]; !ok {
			return false
		}
	}
	return true
}

func edgeSetDiff(a, b map[int]struct{}) int {
	n := 0
	for i := range a {
		if _, ok := b[i]; !ok {
			n++
		}
	}
	for i := range b {
		if _, ok := a[i]; !ok {
			n++
		}
	}
	return n
}

// resultKey summarizes an execution outcome for equivalence comparison:
// the fault triage key (hang-bucketed for timeouts), the exit status, or a
// normal return.
func resultKey(r vm.Result) string {
	switch {
	case r.Fault != nil && r.Fault.Kind == vm.FaultTimeout:
		return HangKey(r.Fault)
	case r.Fault != nil:
		return r.Fault.Key()
	case r.Exited:
		return fmt.Sprintf("exit(%d)", r.ExitCode)
	default:
		return fmt.Sprintf("ret(%d)", r.Ret)
	}
}
