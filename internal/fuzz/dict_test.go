package fuzz

import (
	"bytes"
	"testing"

	"closurex/internal/vm"
)

func TestMutatorDictTokensAppear(t *testing.T) {
	m := NewMutator(NewRNG(5), 256)
	m.SetDict([][]byte{[]byte("MAGICTOKEN")})
	in := bytes.Repeat([]byte{'x'}, 40)
	hits := 0
	for i := 0; i < 2000; i++ {
		if bytes.Contains(m.Havoc(in), []byte("MAGICTOKEN")) {
			hits++
		}
	}
	if hits < 50 {
		t.Fatalf("dictionary token appeared in %d/2000 mutants; operators not firing", hits)
	}
}

func TestMutatorEmptyDictIgnored(t *testing.T) {
	m := NewMutator(NewRNG(6), 64)
	m.SetDict([][]byte{nil, {}})
	// No panic, behaves like a dictionary-less mutator.
	for i := 0; i < 500; i++ {
		m.Havoc([]byte("abc"))
	}
}

// magicGate only rewards coverage past a 6-byte magic — hopeless for plain
// havoc, quick with a dictionary.
type magicGate struct {
	cov []byte
}

func (g *magicGate) Execute(input []byte) vm.Result {
	g.cov[1]++
	if bytes.Contains(input, []byte("SECRET")) {
		g.cov[2]++
		return vm.Result{Fault: &vm.Fault{Kind: vm.FaultAbort, Fn: "gate", Line: 1}}
	}
	return vm.Result{}
}

func TestDictionaryUnlocksMagicGate(t *testing.T) {
	cov := make([]byte, MapSize)
	withDict := NewCampaign(Config{
		Executor: &magicGate{cov: cov},
		CovMap:   cov,
		Seeds:    [][]byte{[]byte("some plain seed data")},
		Seed:     3,
		Dict:     [][]byte{[]byte("SECRET"), []byte("other")},
	})
	withDict.RunExecs(30000)
	if len(withDict.Crashes()) == 0 {
		t.Fatal("dictionary campaign never passed the magic gate")
	}

	cov2 := make([]byte, MapSize)
	without := NewCampaign(Config{
		Executor: &magicGate{cov: cov2},
		CovMap:   cov2,
		Seeds:    [][]byte{[]byte("some plain seed data")},
		Seed:     3,
	})
	without.RunExecs(30000)
	if len(without.Crashes()) != 0 {
		t.Log("note: dictionary-less campaign also passed the gate (astronomically unlikely)")
	}
}
