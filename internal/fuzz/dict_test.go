package fuzz

import (
	"bytes"
	"testing"

	"closurex/internal/vm"
)

func TestMutatorDictTokensAppear(t *testing.T) {
	m := NewMutator(NewRNG(5), 256)
	m.SetDict([][]byte{[]byte("MAGICTOKEN")})
	in := bytes.Repeat([]byte{'x'}, 40)
	hits := 0
	for i := 0; i < 2000; i++ {
		if bytes.Contains(m.Havoc(in), []byte("MAGICTOKEN")) {
			hits++
		}
	}
	if hits < 50 {
		t.Fatalf("dictionary token appeared in %d/2000 mutants; operators not firing", hits)
	}
}

func TestMutatorEmptyDictIgnored(t *testing.T) {
	m := NewMutator(NewRNG(6), 64)
	m.SetDict([][]byte{nil, {}})
	// No panic, behaves like a dictionary-less mutator.
	for i := 0; i < 500; i++ {
		m.Havoc([]byte("abc"))
	}
}

func TestSetDictDeduplicates(t *testing.T) {
	m := NewMutator(NewRNG(7), 64)
	m.SetDict([][]byte{[]byte("GIF89a"), []byte("\x00\x01"), []byte("GIF89a"), nil, []byte("\x00\x01")})
	if len(m.dict) != 2 {
		t.Fatalf("SetDict kept %d tokens, want 2 (dedup + empty drop)", len(m.dict))
	}
	if string(m.dict[0]) != "GIF89a" || string(m.dict[1]) != "\x00\x01" {
		t.Fatalf("SetDict reordered tokens: %q", m.dict)
	}
}

func TestMergeDictDedupAndCap(t *testing.T) {
	tokens := [][]byte{[]byte("aa"), nil, []byte("bb"), []byte("aa"), []byte("cc")}
	got := MergeDict(tokens, 2)
	if len(got) != 2 || string(got[0]) != "aa" || string(got[1]) != "bb" {
		t.Fatalf("MergeDict(cap=2) = %q, want [aa bb]", got)
	}
	// The result is fresh storage: mutating it must not touch the input.
	got[0][0] = 'z'
	if tokens[0][0] != 'a' {
		t.Fatal("MergeDict aliased its input tokens")
	}
	// Deterministic: same input order, same output bytes.
	a := MergeDict(tokens, 0)
	b := MergeDict(tokens, 0)
	if len(a) != len(b) {
		t.Fatalf("MergeDict nondeterministic length: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if !bytes.Equal(a[i], b[i]) {
			t.Fatalf("MergeDict nondeterministic at %d: %q vs %q", i, a[i], b[i])
		}
	}
	if got := MergeDict(make([][]byte, 0), 0); len(got) != 0 {
		t.Fatalf("MergeDict(empty) = %q, want empty", got)
	}
}

// An empty (or absent) dictionary must leave the havoc stream bit-identical
// to a mutator that never saw SetDict: the two dictionary operators only
// join the operator roulette when tokens exist, so historical single-job
// campaign streams are preserved when auto-dictionary harvesting yields
// nothing or is disabled.
func TestEmptyDictStreamBitIdentical(t *testing.T) {
	plain := NewMutator(NewRNG(11), 128)
	dicted := NewMutator(NewRNG(11), 128)
	dicted.SetDict([][]byte{})
	in := []byte("persistent fuzzing seed")
	for i := 0; i < 3000; i++ {
		a := plain.Havoc(in)
		b := dicted.Havoc(in)
		if !bytes.Equal(a, b) {
			t.Fatalf("iteration %d: empty-dict mutant diverged:\n  plain  %q\n  dicted %q", i, a, b)
		}
	}
}

// Same property one level up: a single-job campaign configured with an
// explicitly empty dictionary replays the dictionary-less campaign exactly.
func TestEmptyDictCampaignBitIdentical(t *testing.T) {
	run := func(dict [][]byte) []byte {
		cov := make([]byte, MapSize)
		c := NewCampaign(Config{
			Executor: &magicGate{cov: cov},
			CovMap:   cov,
			Seeds:    [][]byte{[]byte("some plain seed data")},
			Seed:     9,
			Dict:     dict,
		})
		c.RunExecs(5000)
		return cov
	}
	if !bytes.Equal(run(nil), run([][]byte{})) {
		t.Fatal("empty-dict campaign diverged from dictionary-less campaign")
	}
}

// magicGate only rewards coverage past a 6-byte magic — hopeless for plain
// havoc, quick with a dictionary.
type magicGate struct {
	cov []byte
}

func (g *magicGate) Execute(input []byte) vm.Result {
	g.cov[1]++
	if bytes.Contains(input, []byte("SECRET")) {
		g.cov[2]++
		return vm.Result{Fault: &vm.Fault{Kind: vm.FaultAbort, Fn: "gate", Line: 1}}
	}
	return vm.Result{}
}

func TestDictionaryUnlocksMagicGate(t *testing.T) {
	cov := make([]byte, MapSize)
	withDict := NewCampaign(Config{
		Executor: &magicGate{cov: cov},
		CovMap:   cov,
		Seeds:    [][]byte{[]byte("some plain seed data")},
		Seed:     3,
		Dict:     [][]byte{[]byte("SECRET"), []byte("other")},
	})
	withDict.RunExecs(30000)
	if len(withDict.Crashes()) == 0 {
		t.Fatal("dictionary campaign never passed the magic gate")
	}

	cov2 := make([]byte, MapSize)
	without := NewCampaign(Config{
		Executor: &magicGate{cov: cov2},
		CovMap:   cov2,
		Seeds:    [][]byte{[]byte("some plain seed data")},
		Seed:     3,
	})
	without.RunExecs(30000)
	if len(without.Crashes()) != 0 {
		t.Log("note: dictionary-less campaign also passed the gate (astronomically unlikely)")
	}
}
