package fuzz

import (
	"fmt"
	"sort"
	"time"

	"closurex/internal/vm"
)

// Executor abstracts the execution mechanism under test (fresh, forkserver,
// persistent, ClosureX) — the campaign drives whichever it is given, so the
// fuzzing logic is identical across configurations.
type Executor interface {
	Execute(input []byte) vm.Result
}

// Entry is one seed in the queue.
type Entry struct {
	Input   []byte
	FoundAt time.Duration // campaign time when it was added
	Gain    int           // 2 = new edge, 1 = new bucket, 3 = initial seed
}

// Crash is a triaged, deduplicated fault.
type Crash struct {
	Key       string // fault kind @ function : line
	Kind      vm.FaultKind
	Fn        string
	Line      int32
	Input     []byte        // first input that triggered it
	FirstAt   time.Duration // campaign time of first trigger
	FirstExec int64         // execution index of first trigger
	Count     int64
}

// Config tunes a campaign.
type Config struct {
	// Executor runs test cases; CovMap must be the same buffer the
	// executor's VMs write coverage into.
	Executor Executor
	CovMap   []byte
	// Seeds is the initial corpus.
	Seeds [][]byte
	// Seed seeds the campaign RNG (one trial = one seed).
	Seed uint64
	// Fingerprint identifies the target+mechanism a checkpoint belongs to;
	// Resume rejects a checkpoint whose fingerprint differs (a bitmap or
	// crash table grafted onto the wrong target is silent corruption).
	Fingerprint string
	// MaxInputLen bounds mutated inputs (default 4096).
	MaxInputLen int
	// HavocPerSeed is how many mutants are derived from a queue entry per
	// cycle (default 24).
	HavocPerSeed int
	// SpliceProb x/256 chance a mutant starts from a splice (default 40).
	SpliceProb int
	// Dict supplies format keywords for the dictionary mutators (AFL -x).
	Dict [][]byte
	// Stop, when non-nil, requests clean shutdown: RunFor/RunExecs return
	// at the next coarse check once it is closed, leaving the campaign in a
	// checkpointable state. This is how a supervisor (signal handler,
	// fleet controller) stops a campaign without killing the process.
	Stop <-chan struct{}
	// CheckEvery is how many Steps run between deadline/stop polls
	// (default 64) — the per-iteration time.Now() cost hoisted out of the
	// hot loop.
	CheckEvery int
	// Sentinel, when non-nil, arms the divergence sentinel: a periodic
	// replay of a queue entry under a fresh-process reference executor,
	// cross-checked against the persistent mechanism (§6.1.4 as a runtime
	// self-check).
	Sentinel *SentinelConfig
}

// Campaign is one fuzzing run: a queue, a cumulative bitmap, and a crash
// table, advancing one mutated input per Step.
type Campaign struct {
	cfg     Config
	rng     *RNG
	mut     *Mutator
	bitmap  *Bitmap
	queue   []*Entry
	crashes map[string]*Crash
	// hangs triages vm.FaultTimeout separately from crashes: a hang is a
	// budget exhaustion, not a sanitizer fault, and its dedup key drops the
	// line (wherever the budget happened to run out is arbitrary). Keeping
	// the tables distinct stops the sentinel and the Table 7 driver from
	// conflating the two.
	hangs map[string]*Crash

	execs   int64
	start   time.Time
	elapsed time.Duration // accumulated before the last (re)start — resume support
	started bool
	cursor  int // queue round-robin position
	burst   int // mutations left in the current entry's burst
	cur     *Entry

	// Divergence-sentinel state (see sentinel.go).
	sentNext    int64 // exec count of the next probe
	sentCursor  int   // round-robin position over the queue
	sentBackoff int64 // probe-interval multiplier, doubled per divergence
	sentFails   int   // consecutive divergent probes
	divergences []Divergence
	quarantined []*Entry
}

// NewCampaign prepares a campaign (seeds are executed on the first Step).
func NewCampaign(cfg Config) *Campaign {
	if cfg.MaxInputLen <= 0 {
		cfg.MaxInputLen = 4096
	}
	if cfg.HavocPerSeed <= 0 {
		cfg.HavocPerSeed = 24
	}
	if cfg.SpliceProb <= 0 {
		cfg.SpliceProb = 40
	}
	if cfg.CheckEvery <= 0 {
		cfg.CheckEvery = 64
	}
	if cfg.Sentinel != nil {
		cfg.Sentinel.setDefaults()
	}
	rng := NewRNG(cfg.Seed)
	mut := NewMutator(rng, cfg.MaxInputLen)
	mut.SetDict(cfg.Dict)
	c := &Campaign{
		cfg:         cfg,
		rng:         rng,
		mut:         mut,
		bitmap:      NewBitmap(),
		crashes:     make(map[string]*Crash),
		hangs:       make(map[string]*Crash),
		sentBackoff: 1,
	}
	if s := cfg.Sentinel; s != nil {
		c.sentNext = s.Every
	}
	return c
}

// runOne executes input and processes coverage and crashes.
func (c *Campaign) runOne(input []byte, gainOverride int) {
	res := c.cfg.Executor.Execute(input)
	c.execs++
	gain := c.bitmap.Update(c.cfg.CovMap)
	if res.Fault != nil {
		c.recordCrash(res.Fault, input)
		return
	}
	if gainOverride > 0 {
		gain = gainOverride
	}
	if gain > 0 {
		c.queue = append(c.queue, &Entry{
			Input:   append([]byte(nil), input...),
			FoundAt: c.Elapsed(),
			Gain:    gain,
		})
	}
}

// HangKey is the dedup bucket for a hang: unlike crashes, the line where
// the instruction budget ran out is arbitrary, so hangs dedup on the
// function alone.
func HangKey(f *vm.Fault) string { return fmt.Sprintf("hang@%s", f.Fn) }

func (c *Campaign) recordCrash(f *vm.Fault, input []byte) {
	table := c.crashes
	key := f.Key()
	if f.Kind == vm.FaultTimeout {
		table = c.hangs
		key = HangKey(f)
	}
	if cr, ok := table[key]; ok {
		cr.Count++
		return
	}
	table[key] = &Crash{
		Key:       key,
		Kind:      f.Kind,
		Fn:        f.Fn,
		Line:      f.Line,
		Input:     append([]byte(nil), input...),
		FirstAt:   c.Elapsed(),
		FirstExec: c.execs,
		Count:     1,
	}
}

// bootstrap runs the seed corpus.
func (c *Campaign) bootstrap() {
	c.start = time.Now()
	c.started = true
	for _, s := range c.cfg.Seeds {
		c.runOne(s, 3) // seeds always enter the queue
	}
	if len(c.queue) == 0 {
		// Even a corpus of crashing/empty seeds needs a starting point.
		c.queue = append(c.queue, &Entry{Input: []byte{0}, Gain: 3})
	}
}

// Step executes one mutated input (bootstrapping the seed corpus on first
// call). It returns the number of executions performed by this step.
func (c *Campaign) Step() int64 {
	if !c.started {
		before := c.execs
		c.bootstrap()
		return c.execs - before
	}
	if c.burst == 0 {
		c.cur = c.queue[c.cursor%len(c.queue)]
		c.cursor++
		c.burst = c.cfg.HavocPerSeed
	}
	c.burst--
	var input []byte
	if len(c.queue) > 1 && c.rng.Intn(256) < c.cfg.SpliceProb {
		other := c.queue[c.rng.Intn(len(c.queue))]
		input = c.mut.Splice(c.cur.Input, other.Input)
	} else {
		input = c.mut.Havoc(c.cur.Input)
	}
	c.runOne(input, 0)
	if c.cfg.Sentinel != nil && c.execs >= c.sentNext {
		c.sentinelProbe()
	}
	return 1
}

// stopRequested reports whether the supervisor closed the stop channel.
// Polled only at coarse-check boundaries, never per iteration.
func (c *Campaign) stopRequested() bool {
	if c.cfg.Stop == nil {
		return false
	}
	select {
	case <-c.cfg.Stop:
		return true
	default:
		return false
	}
}

// RunFor drives the campaign until d has elapsed or the stop channel
// closes. The deadline and stop checks run every CheckEvery steps, keeping
// time.Now() and channel polling out of the per-iteration hot path.
func (c *Campaign) RunFor(d time.Duration) {
	deadline := time.Now().Add(d)
	for {
		for i := 0; i < c.cfg.CheckEvery; i++ {
			c.Step()
		}
		if c.stopRequested() || time.Now().After(deadline) {
			return
		}
	}
}

// RunExecs drives the campaign until at least n executions have happened
// or the stop channel closes (checked every CheckEvery steps).
func (c *Campaign) RunExecs(n int64) {
	steps := 0
	for c.execs < n {
		c.Step()
		if steps++; steps >= c.cfg.CheckEvery {
			steps = 0
			if c.stopRequested() {
				return
			}
		}
	}
}

// swapExecutor replaces the campaign's execution mechanism and coverage
// buffer in place — the shard supervisor's full-replacement rebuild. The
// campaign's fuzzing state (queue, RNG, bitmap, tables) is untouched: it
// is all derived from executed inputs, which a fresh mechanism reproduces.
// Must only be called while the campaign is quiescent (the supervisor calls
// it between segments, never mid-Step).
func (c *Campaign) swapExecutor(ex Executor, cov []byte) {
	c.cfg.Executor = ex
	c.cfg.CovMap = cov
}

// Execs returns the number of test cases executed.
func (c *Campaign) Execs() int64 { return c.execs }

// Edges returns cumulative distinct coverage-map indices hit.
func (c *Campaign) Edges() int { return c.bitmap.Edges() }

// BitmapSnapshot copies the cumulative virgin coverage map. The interproc
// differential suite diffs two campaigns' maps byte for byte — a stronger
// claim than matching edge counts, which could agree by coincidence.
func (c *Campaign) BitmapSnapshot() []byte { return c.bitmap.Snapshot() }

// QueueLen returns the current queue size.
func (c *Campaign) QueueLen() int { return len(c.queue) }

// Queue returns the corpus accumulated so far (the comprehensive test-case
// queue the correctness study replays).
func (c *Campaign) Queue() []*Entry { return c.queue }

// Crashes returns triaged crashes ordered by first discovery. Hangs are
// kept out of this table; see Hangs.
func (c *Campaign) Crashes() []*Crash {
	return sortedTable(c.crashes)
}

// Hangs returns triaged hangs (vm.FaultTimeout buckets) ordered by first
// discovery.
func (c *Campaign) Hangs() []*Crash {
	return sortedTable(c.hangs)
}

func sortedTable(m map[string]*Crash) []*Crash {
	out := make([]*Crash, 0, len(m))
	for _, cr := range m {
		out = append(out, cr)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].FirstExec < out[j].FirstExec })
	return out
}

// CrashByKey looks up a triaged crash.
func (c *Campaign) CrashByKey(key string) *Crash { return c.crashes[key] }

// HangByKey looks up a triaged hang (keys are HangKey format).
func (c *Campaign) HangByKey(key string) *Crash { return c.hangs[key] }

// Elapsed returns cumulative fuzzing time, surviving checkpoint/resume.
func (c *Campaign) Elapsed() time.Duration {
	if !c.started {
		return c.elapsed
	}
	return c.elapsed + time.Since(c.start)
}
