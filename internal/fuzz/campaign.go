package fuzz

import (
	"sort"
	"time"

	"closurex/internal/vm"
)

// Executor abstracts the execution mechanism under test (fresh, forkserver,
// persistent, ClosureX) — the campaign drives whichever it is given, so the
// fuzzing logic is identical across configurations.
type Executor interface {
	Execute(input []byte) vm.Result
}

// Entry is one seed in the queue.
type Entry struct {
	Input   []byte
	FoundAt time.Duration // campaign time when it was added
	Gain    int           // 2 = new edge, 1 = new bucket, 3 = initial seed
}

// Crash is a triaged, deduplicated fault.
type Crash struct {
	Key       string // fault kind @ function : line
	Kind      vm.FaultKind
	Fn        string
	Line      int32
	Input     []byte        // first input that triggered it
	FirstAt   time.Duration // campaign time of first trigger
	FirstExec int64         // execution index of first trigger
	Count     int64
}

// Config tunes a campaign.
type Config struct {
	// Executor runs test cases; CovMap must be the same buffer the
	// executor's VMs write coverage into.
	Executor Executor
	CovMap   []byte
	// Seeds is the initial corpus.
	Seeds [][]byte
	// Seed seeds the campaign RNG (one trial = one seed).
	Seed uint64
	// MaxInputLen bounds mutated inputs (default 4096).
	MaxInputLen int
	// HavocPerSeed is how many mutants are derived from a queue entry per
	// cycle (default 24).
	HavocPerSeed int
	// SpliceProb x/256 chance a mutant starts from a splice (default 40).
	SpliceProb int
	// Dict supplies format keywords for the dictionary mutators (AFL -x).
	Dict [][]byte
}

// Campaign is one fuzzing run: a queue, a cumulative bitmap, and a crash
// table, advancing one mutated input per Step.
type Campaign struct {
	cfg     Config
	rng     *RNG
	mut     *Mutator
	bitmap  *Bitmap
	queue   []*Entry
	crashes map[string]*Crash

	execs   int64
	start   time.Time
	started bool
	cursor  int // queue round-robin position
	burst   int // mutations left in the current entry's burst
	cur     *Entry
}

// NewCampaign prepares a campaign (seeds are executed on the first Step).
func NewCampaign(cfg Config) *Campaign {
	if cfg.MaxInputLen <= 0 {
		cfg.MaxInputLen = 4096
	}
	if cfg.HavocPerSeed <= 0 {
		cfg.HavocPerSeed = 24
	}
	if cfg.SpliceProb <= 0 {
		cfg.SpliceProb = 40
	}
	rng := NewRNG(cfg.Seed)
	mut := NewMutator(rng, cfg.MaxInputLen)
	mut.SetDict(cfg.Dict)
	return &Campaign{
		cfg:     cfg,
		rng:     rng,
		mut:     mut,
		bitmap:  NewBitmap(),
		crashes: make(map[string]*Crash),
	}
}

// runOne executes input and processes coverage and crashes.
func (c *Campaign) runOne(input []byte, gainOverride int) {
	res := c.cfg.Executor.Execute(input)
	c.execs++
	gain := c.bitmap.Update(c.cfg.CovMap)
	if res.Fault != nil {
		c.recordCrash(res.Fault, input)
		return
	}
	if gainOverride > 0 {
		gain = gainOverride
	}
	if gain > 0 {
		c.queue = append(c.queue, &Entry{
			Input:   append([]byte(nil), input...),
			FoundAt: time.Since(c.start),
			Gain:    gain,
		})
	}
}

func (c *Campaign) recordCrash(f *vm.Fault, input []byte) {
	key := f.Key()
	if cr, ok := c.crashes[key]; ok {
		cr.Count++
		return
	}
	c.crashes[key] = &Crash{
		Key:       key,
		Kind:      f.Kind,
		Fn:        f.Fn,
		Line:      f.Line,
		Input:     append([]byte(nil), input...),
		FirstAt:   time.Since(c.start),
		FirstExec: c.execs,
		Count:     1,
	}
}

// bootstrap runs the seed corpus.
func (c *Campaign) bootstrap() {
	c.start = time.Now()
	c.started = true
	for _, s := range c.cfg.Seeds {
		c.runOne(s, 3) // seeds always enter the queue
	}
	if len(c.queue) == 0 {
		// Even a corpus of crashing/empty seeds needs a starting point.
		c.queue = append(c.queue, &Entry{Input: []byte{0}, Gain: 3})
	}
}

// Step executes one mutated input (bootstrapping the seed corpus on first
// call). It returns the number of executions performed by this step.
func (c *Campaign) Step() int64 {
	if !c.started {
		before := c.execs
		c.bootstrap()
		return c.execs - before
	}
	if c.burst == 0 {
		c.cur = c.queue[c.cursor%len(c.queue)]
		c.cursor++
		c.burst = c.cfg.HavocPerSeed
	}
	c.burst--
	var input []byte
	if len(c.queue) > 1 && c.rng.Intn(256) < c.cfg.SpliceProb {
		other := c.queue[c.rng.Intn(len(c.queue))]
		input = c.mut.Splice(c.cur.Input, other.Input)
	} else {
		input = c.mut.Havoc(c.cur.Input)
	}
	c.runOne(input, 0)
	return 1
}

// RunFor drives the campaign until d has elapsed.
func (c *Campaign) RunFor(d time.Duration) {
	deadline := time.Now().Add(d)
	for {
		for i := 0; i < 64; i++ {
			c.Step()
		}
		if time.Now().After(deadline) {
			return
		}
	}
}

// RunExecs drives the campaign until at least n executions have happened.
func (c *Campaign) RunExecs(n int64) {
	for c.execs < n {
		c.Step()
	}
}

// Execs returns the number of test cases executed.
func (c *Campaign) Execs() int64 { return c.execs }

// Edges returns cumulative distinct coverage-map indices hit.
func (c *Campaign) Edges() int { return c.bitmap.Edges() }

// QueueLen returns the current queue size.
func (c *Campaign) QueueLen() int { return len(c.queue) }

// Queue returns the corpus accumulated so far (the comprehensive test-case
// queue the correctness study replays).
func (c *Campaign) Queue() []*Entry { return c.queue }

// Crashes returns triaged crashes ordered by first discovery.
func (c *Campaign) Crashes() []*Crash {
	out := make([]*Crash, 0, len(c.crashes))
	for _, cr := range c.crashes {
		out = append(out, cr)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].FirstExec < out[j].FirstExec })
	return out
}

// CrashByKey looks up a triaged crash.
func (c *Campaign) CrashByKey(key string) *Crash { return c.crashes[key] }

// Elapsed returns time since bootstrap.
func (c *Campaign) Elapsed() time.Duration {
	if !c.started {
		return 0
	}
	return time.Since(c.start)
}
