//go:build race

package fuzz

// raceEnabled lets the heavyweight parallel-campaign tests shrink their
// exec budgets under the race detector (~20-80x slower per exec); the
// properties they check hold at any budget.
const raceEnabled = true
