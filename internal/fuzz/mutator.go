package fuzz

// Mutator implements AFL-style havoc mutation plus splicing, with
// optional dictionary tokens (AFL's -x): format keywords that get inserted
// or stamped over the input, letting the fuzzer synthesize magic values
// (FourCCs, header magics) it would practically never brute-force.
type Mutator struct {
	rng *RNG
	// MaxLen bounds generated inputs.
	MaxLen int
	dict   [][]byte
}

// SetDict installs dictionary tokens. Empty tokens are dropped.
func (m *Mutator) SetDict(tokens [][]byte) {
	m.dict = m.dict[:0]
	for _, t := range tokens {
		if len(t) > 0 {
			m.dict = append(m.dict, append([]byte(nil), t...))
		}
	}
}

// interesting values, as AFL uses, truncated per width at apply time.
var interesting = []int64{
	-128, -1, 0, 1, 16, 32, 64, 100, 127, 128, 255, 256, 512, 1000,
	1024, 4096, 32767, 32768, 65535, 65536, -32768, 2147483647, -2147483648,
}

// NewMutator returns a mutator with the given RNG and length bound.
func NewMutator(rng *RNG, maxLen int) *Mutator {
	if maxLen <= 0 {
		maxLen = 4096
	}
	return &Mutator{rng: rng, MaxLen: maxLen}
}

// Havoc applies 1..n stacked random mutations to a copy of input.
func (m *Mutator) Havoc(input []byte) []byte {
	out := append([]byte(nil), input...)
	stack := 1 << (1 + m.rng.Intn(5)) // 2..32 stacked ops
	for i := 0; i < stack; i++ {
		out = m.mutateOnce(out)
	}
	if len(out) > m.MaxLen {
		out = out[:m.MaxLen]
	}
	return out
}

// Splice combines a random prefix of a with a suffix of b, then havocs.
func (m *Mutator) Splice(a, b []byte) []byte {
	if len(a) < 2 || len(b) < 2 {
		return m.Havoc(a)
	}
	cutA := 1 + m.rng.Intn(len(a)-1)
	cutB := m.rng.Intn(len(b) - 1)
	out := make([]byte, 0, cutA+len(b)-cutB)
	out = append(out, a[:cutA]...)
	out = append(out, b[cutB:]...)
	if len(out) > m.MaxLen {
		out = out[:m.MaxLen]
	}
	return m.Havoc(out)
}

func (m *Mutator) mutateOnce(out []byte) []byte {
	if len(out) == 0 {
		// Only growth operators make sense on an empty input.
		n := 1 + m.rng.Intn(8)
		grown := make([]byte, n)
		for i := range grown {
			grown[i] = m.rng.Byte()
		}
		return grown
	}
	nOps := 12
	if len(m.dict) > 0 {
		nOps = 14 // two extra dictionary operators
	}
	switch m.rng.Intn(nOps) {
	case 0: // single bit flip
		i := m.rng.Intn(len(out))
		out[i] ^= 1 << m.rng.Intn(8)
	case 1: // random byte
		out[m.rng.Intn(len(out))] = m.rng.Byte()
	case 2: // byte arithmetic
		i := m.rng.Intn(len(out))
		out[i] += byte(1 + m.rng.Intn(35))
	case 3: // byte arithmetic down
		i := m.rng.Intn(len(out))
		out[i] -= byte(1 + m.rng.Intn(35))
	case 4: // interesting 8-bit
		out[m.rng.Intn(len(out))] = byte(interesting[m.rng.Intn(len(interesting))])
	case 5: // interesting 16-bit little-endian
		if len(out) >= 2 {
			i := m.rng.Intn(len(out) - 1)
			v := uint16(interesting[m.rng.Intn(len(interesting))])
			out[i] = byte(v)
			out[i+1] = byte(v >> 8)
		}
	case 6: // interesting 32-bit little-endian
		if len(out) >= 4 {
			i := m.rng.Intn(len(out) - 3)
			v := uint32(interesting[m.rng.Intn(len(interesting))])
			out[i] = byte(v)
			out[i+1] = byte(v >> 8)
			out[i+2] = byte(v >> 16)
			out[i+3] = byte(v >> 24)
		}
	case 7: // delete a block
		if len(out) >= 2 {
			from := m.rng.Intn(len(out))
			n := 1 + m.rng.Intn(len(out)-from)
			out = append(out[:from], out[from+n:]...)
		}
	case 8: // duplicate a block
		if len(out) >= 1 && len(out) < m.MaxLen {
			from := m.rng.Intn(len(out))
			n := 1 + m.rng.Intn(min(len(out)-from, 32))
			blk := append([]byte(nil), out[from:from+n]...)
			at := m.rng.Intn(len(out) + 1)
			out = append(out[:at], append(blk, out[at:]...)...)
		}
	case 9: // insert random bytes
		if len(out) < m.MaxLen {
			n := 1 + m.rng.Intn(8)
			blk := make([]byte, n)
			for i := range blk {
				blk[i] = m.rng.Byte()
			}
			at := m.rng.Intn(len(out) + 1)
			out = append(out[:at], append(blk, out[at:]...)...)
		}
	case 10: // overwrite with a copied block
		if len(out) >= 2 {
			from := m.rng.Intn(len(out))
			to := m.rng.Intn(len(out))
			n := 1 + m.rng.Intn(min(len(out)-from, len(out)-to))
			copy(out[to:to+n], out[from:from+n])
		}
	case 11: // word arithmetic on a 16-bit LE value
		if len(out) >= 2 {
			i := m.rng.Intn(len(out) - 1)
			v := uint16(out[i]) | uint16(out[i+1])<<8
			v += uint16(m.rng.Intn(70) - 35)
			out[i] = byte(v)
			out[i+1] = byte(v >> 8)
		}
	case 12: // insert a dictionary token
		if len(out) < m.MaxLen {
			tok := m.dict[m.rng.Intn(len(m.dict))]
			at := m.rng.Intn(len(out) + 1)
			out = append(out[:at], append(append([]byte(nil), tok...), out[at:]...)...)
		}
	case 13: // stamp a dictionary token over existing bytes
		tok := m.dict[m.rng.Intn(len(m.dict))]
		if len(tok) <= len(out) {
			at := m.rng.Intn(len(out) - len(tok) + 1)
			copy(out[at:], tok)
		}
	}
	return out
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
