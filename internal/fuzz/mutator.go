package fuzz

// Mutator implements AFL-style havoc mutation plus splicing, with
// optional dictionary tokens (AFL's -x): format keywords that get inserted
// or stamped over the input, letting the fuzzer synthesize magic values
// (FourCCs, header magics) it would practically never brute-force.
//
// The mutator owns its output buffers: the slice returned by Havoc/Splice
// is valid only until the next Havoc/Splice call. The campaign hot loop
// executes each mutant and copies it only when it earns a queue slot, so
// steady-state mutation performs zero allocations per test case.
type Mutator struct {
	rng *RNG
	// MaxLen bounds generated inputs.
	MaxLen int
	dict   [][]byte

	// buf backs Havoc's working copy; scratch stages blocks for the
	// insert/duplicate operators; spliceBuf assembles splice prefixes.
	// All three grow to a MaxLen-bounded high-water mark and are reused.
	buf       []byte
	scratch   []byte
	spliceBuf []byte
}

// SetDict installs dictionary tokens. Empty tokens are dropped and
// duplicate contents are installed once (first occurrence wins), so a
// manual dictionary merged with harvested auto-dictionary tokens cannot
// double-weight shared magic bytes. With a duplicate-free token list —
// every registered target's — the installed dictionary is unchanged by the
// dedup, so historical mutation streams are preserved.
func (m *Mutator) SetDict(tokens [][]byte) {
	m.dict = m.dict[:0]
	seen := make(map[string]bool, len(tokens))
	for _, t := range tokens {
		if len(t) == 0 || seen[string(t)] {
			continue
		}
		seen[string(t)] = true
		m.dict = append(m.dict, append([]byte(nil), t...))
	}
}

// DefaultDictCap bounds a merged manual + auto dictionary: enough for
// every magic a binary format plausibly checks, small enough that the two
// dictionary havoc operators keep meaningful per-token selection odds.
const DefaultDictCap = 64

// MergeDict deduplicates a token list content-keyed — empties dropped,
// first occurrence kept, input order preserved (callers put manual tokens
// before harvested ones so the cap never evicts a hand-written magic) —
// and caps it at max (<= 0 means DefaultDictCap). The result is a fresh
// slice of fresh token copies; deterministic for a deterministic input
// order.
func MergeDict(tokens [][]byte, max int) [][]byte {
	if max <= 0 {
		max = DefaultDictCap
	}
	seen := make(map[string]bool, len(tokens))
	var out [][]byte
	for _, t := range tokens {
		if len(t) == 0 || seen[string(t)] {
			continue
		}
		seen[string(t)] = true
		out = append(out, append([]byte(nil), t...))
		if len(out) >= max {
			break
		}
	}
	return out
}

// interesting values, as AFL uses, truncated per width at apply time.
var interesting = []int64{
	-128, -1, 0, 1, 16, 32, 64, 100, 127, 128, 255, 256, 512, 1000,
	1024, 4096, 32767, 32768, 65535, 65536, -32768, 2147483647, -2147483648,
}

// NewMutator returns a mutator with the given RNG and length bound.
func NewMutator(rng *RNG, maxLen int) *Mutator {
	if maxLen <= 0 {
		maxLen = 4096
	}
	return &Mutator{rng: rng, MaxLen: maxLen}
}

// Havoc applies 1..n stacked random mutations to a copy of input. The
// returned slice aliases the mutator's internal buffer and is valid until
// the next Havoc/Splice call; copy it to retain it.
func (m *Mutator) Havoc(input []byte) []byte {
	out := append(m.buf[:0], input...)
	stack := 1 << (1 + m.rng.Intn(5)) // 2..32 stacked ops
	for i := 0; i < stack; i++ {
		out = m.mutateOnce(out)
	}
	if len(out) > m.MaxLen {
		out = out[:m.MaxLen]
	}
	m.buf = out // keep any capacity growth for the next call
	return out
}

// Splice combines a random prefix of a with a suffix of b, then havocs.
// The result aliases internal buffers like Havoc's.
func (m *Mutator) Splice(a, b []byte) []byte {
	if len(a) < 2 || len(b) < 2 {
		return m.Havoc(a)
	}
	cutA := 1 + m.rng.Intn(len(a)-1)
	cutB := m.rng.Intn(len(b) - 1)
	m.spliceBuf = append(append(m.spliceBuf[:0], a[:cutA]...), b[cutB:]...)
	out := m.spliceBuf
	if len(out) > m.MaxLen {
		out = out[:m.MaxLen]
	}
	return m.Havoc(out)
}

func (m *Mutator) mutateOnce(out []byte) []byte {
	if len(out) == 0 {
		// Only growth operators make sense on an empty input.
		n := 1 + m.rng.Intn(8)
		for i := 0; i < n; i++ {
			out = append(out, m.rng.Byte())
		}
		return out
	}
	nOps := 12
	if len(m.dict) > 0 {
		nOps = 14 // two extra dictionary operators
	}
	switch m.rng.Intn(nOps) {
	case 0: // single bit flip
		i := m.rng.Intn(len(out))
		out[i] ^= 1 << m.rng.Intn(8)
	case 1: // random byte
		out[m.rng.Intn(len(out))] = m.rng.Byte()
	case 2: // byte arithmetic
		i := m.rng.Intn(len(out))
		out[i] += byte(1 + m.rng.Intn(35))
	case 3: // byte arithmetic down
		i := m.rng.Intn(len(out))
		out[i] -= byte(1 + m.rng.Intn(35))
	case 4: // interesting 8-bit
		out[m.rng.Intn(len(out))] = byte(interesting[m.rng.Intn(len(interesting))])
	case 5: // interesting 16-bit little-endian
		if len(out) >= 2 {
			i := m.rng.Intn(len(out) - 1)
			v := uint16(interesting[m.rng.Intn(len(interesting))])
			out[i] = byte(v)
			out[i+1] = byte(v >> 8)
		}
	case 6: // interesting 32-bit little-endian
		if len(out) >= 4 {
			i := m.rng.Intn(len(out) - 3)
			v := uint32(interesting[m.rng.Intn(len(interesting))])
			out[i] = byte(v)
			out[i+1] = byte(v >> 8)
			out[i+2] = byte(v >> 16)
			out[i+3] = byte(v >> 24)
		}
	case 7: // delete a block
		if len(out) >= 2 {
			from := m.rng.Intn(len(out))
			n := 1 + m.rng.Intn(len(out)-from)
			out = append(out[:from], out[from+n:]...)
		}
	case 8: // duplicate a block
		if len(out) >= 1 && len(out) < m.MaxLen {
			from := m.rng.Intn(len(out))
			n := 1 + m.rng.Intn(min(len(out)-from, 32))
			m.scratch = append(m.scratch[:0], out[from:from+n]...)
			at := m.rng.Intn(len(out) + 1)
			out = insertBlock(out, at, m.scratch)
		}
	case 9: // insert random bytes
		if len(out) < m.MaxLen {
			n := 1 + m.rng.Intn(8)
			m.scratch = m.scratch[:0]
			for i := 0; i < n; i++ {
				m.scratch = append(m.scratch, m.rng.Byte())
			}
			at := m.rng.Intn(len(out) + 1)
			out = insertBlock(out, at, m.scratch)
		}
	case 10: // overwrite with a copied block
		if len(out) >= 2 {
			from := m.rng.Intn(len(out))
			to := m.rng.Intn(len(out))
			n := 1 + m.rng.Intn(min(len(out)-from, len(out)-to))
			copy(out[to:to+n], out[from:from+n])
		}
	case 11: // word arithmetic on a 16-bit LE value
		if len(out) >= 2 {
			i := m.rng.Intn(len(out) - 1)
			v := uint16(out[i]) | uint16(out[i+1])<<8
			v += uint16(m.rng.Intn(70) - 35)
			out[i] = byte(v)
			out[i+1] = byte(v >> 8)
		}
	case 12: // insert a dictionary token
		if len(out) < m.MaxLen {
			tok := m.dict[m.rng.Intn(len(m.dict))]
			at := m.rng.Intn(len(out) + 1)
			out = insertBlock(out, at, tok)
		}
	case 13: // stamp a dictionary token over existing bytes
		tok := m.dict[m.rng.Intn(len(m.dict))]
		if len(tok) <= len(out) {
			at := m.rng.Intn(len(out) - len(tok) + 1)
			copy(out[at:], tok)
		}
	}
	return out
}

// insertBlock splices blk into out at position at, shifting the tail right
// in place. blk must not alias out (callers stage blocks in m.scratch or
// pass dictionary tokens, which the mutator owns copies of).
func insertBlock(out []byte, at int, blk []byte) []byte {
	n := len(blk)
	out = append(out, blk...) // grow by n; tail contents rewritten below
	copy(out[at+n:], out[at:len(out)-n])
	copy(out[at:at+n], blk)
	return out
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
