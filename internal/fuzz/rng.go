// Package fuzz implements the coverage-guided fuzzer both execution
// mechanisms share in the evaluation: an AFL-style hit-count edge bitmap,
// havoc/splice mutation, a seed queue, crash triage, and the campaign
// driver. Keeping the fuzzer identical across mechanisms isolates the
// process-management comparison, exactly as §5.3 of the paper does.
package fuzz

// RNG is a small, fast, deterministic PRNG (splitmix64 seeded xorshift) so
// trials are reproducible given a seed.
type RNG struct {
	s uint64
}

// NewRNG seeds a generator; distinct seeds give independent streams.
func NewRNG(seed uint64) *RNG {
	// splitmix64 scramble so adjacent seeds diverge immediately.
	z := seed + 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	if z == 0 {
		z = 0x2545f4914f6cdd1d
	}
	return &RNG{s: z}
}

// State exposes the generator's internal state for checkpointing.
func (r *RNG) State() uint64 { return r.s }

// SetState restores a checkpointed state (0 is remapped to the same
// non-zero constant NewRNG uses, since xorshift cannot leave 0).
func (r *RNG) SetState(s uint64) {
	if s == 0 {
		s = 0x2545f4914f6cdd1d
	}
	r.s = s
}

// Uint64 returns the next 64 random bits.
func (r *RNG) Uint64() uint64 {
	x := r.s
	x ^= x << 13
	x ^= x >> 7
	x ^= x << 17
	r.s = x
	return x
}

// Intn returns a uniform int in [0, n). n must be positive.
func (r *RNG) Intn(n int) int {
	return int(r.Uint64() % uint64(n))
}

// Byte returns a random byte.
func (r *RNG) Byte() byte { return byte(r.Uint64()) }

// Bool returns a random bit.
func (r *RNG) Bool() bool { return r.Uint64()&1 == 1 }
