package fuzz

import (
	"encoding/binary"
	"fmt"
)

// MapSize is the AFL-compatible coverage map size.
const MapSize = 1 << 16

// bucketLUT classifies raw hit counts into AFL's logarithmic buckets
// (1, 2, 3, 4-7, 8-15, 16-31, 32-127, 128-255).
var bucketLUT [256]byte

func init() {
	set := func(lo, hi int, v byte) {
		for i := lo; i <= hi; i++ {
			bucketLUT[i] = v
		}
	}
	bucketLUT[0] = 0
	bucketLUT[1] = 1
	bucketLUT[2] = 2
	bucketLUT[3] = 4
	set(4, 7, 8)
	set(8, 15, 16)
	set(16, 31, 32)
	set(32, 127, 64)
	set(128, 255, 128)
}

// Bitmap tracks cumulative ("virgin") coverage across a campaign.
type Bitmap struct {
	virgin [MapSize]byte // OR of all classified maps seen
	edges  int           // distinct map indices ever hit
}

// NewBitmap returns an empty cumulative bitmap.
func NewBitmap() *Bitmap { return &Bitmap{} }

// Classify bucketizes a raw trace map in place.
func Classify(trace []byte) {
	for i, v := range trace {
		if v != 0 {
			trace[i] = bucketLUT[v]
		}
	}
}

// Update classifies trace, merges it into the cumulative map, and reports
// whether the execution produced new coverage: 2 for a brand-new edge,
// 1 for a new hit-count bucket on a known edge, 0 for nothing new.
// The trace is zeroed for the next execution.
//
// The scan skips zero regions eight bytes at a time, as AFL++'s map scan
// does; most executions touch a few hundred of the 65536 cells, so this
// runs in a few microseconds instead of tens.
func (b *Bitmap) Update(trace []byte) int {
	ret := 0
	n := len(trace) &^ 7
	for i := 0; i < n; i += 8 {
		if binary.LittleEndian.Uint64(trace[i:]) == 0 {
			continue
		}
		for j := i; j < i+8; j++ {
			v := trace[j]
			if v == 0 {
				continue
			}
			ret = b.merge(j, v, ret)
			trace[j] = 0
		}
	}
	for i := n; i < len(trace); i++ {
		if v := trace[i]; v != 0 {
			ret = b.merge(i, v, ret)
			trace[i] = 0
		}
	}
	return ret
}

func (b *Bitmap) merge(i int, v byte, ret int) int {
	cls := bucketLUT[v]
	old := b.virgin[i]
	if old&cls != cls {
		if old == 0 {
			b.edges++
			ret = 2
		} else if ret < 1 {
			ret = 1
		}
		b.virgin[i] = old | cls
	}
	return ret
}

// Edges returns the number of distinct map indices hit so far — the
// numerator of Table 6's coverage percentages.
func (b *Bitmap) Edges() int { return b.edges }

// Snapshot copies the cumulative virgin map for checkpointing.
func (b *Bitmap) Snapshot() []byte {
	out := make([]byte, MapSize)
	copy(out, b.virgin[:])
	return out
}

// SetSnapshot restores a checkpointed virgin map, recomputing the edge
// count from it.
func (b *Bitmap) SetSnapshot(virgin []byte) error {
	if len(virgin) != MapSize {
		return fmt.Errorf("fuzz: bitmap snapshot is %d bytes, want %d", len(virgin), MapSize)
	}
	copy(b.virgin[:], virgin)
	b.edges = 0
	for _, v := range b.virgin {
		if v != 0 {
			b.edges++
		}
	}
	return nil
}

// Reset clears the cumulative map.
func (b *Bitmap) Reset() {
	b.virgin = [MapSize]byte{}
	b.edges = 0
}
