package fuzz

// Parallel sharded campaigns. A ParallelCampaign runs J shards, each a
// full Campaign over its own execution mechanism (own VM, own harness, own
// coverage buffer) driven by an independent deterministic RNG stream split
// from the trial seed. Shards never share mutable fuzzing state on the hot
// path: coverage flows into a shared global bitmap through atomic OR-merge
// of each shard's local virgin map at coarse sync boundaries, and new
// corpus entries flow through a channel to a single corpus-manager
// goroutine that dedups them by content and rebroadcasts originals to the
// other shards' inboxes. Execs/crashes/hangs are aggregated from per-shard
// cache-line-padded counters that Stats-style readers sample without locks.
//
// With J = 1 the executor degenerates to exactly the sequential Campaign:
// shard 0 uses the raw trial seed, nothing is ever imported (there is no
// other shard to import from), and the sync work touches neither the RNG
// nor the queue-selection state — so the exec trace, queue, bitmap and
// crash table are bit-for-bit those of a plain Campaign with the same
// Config.

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"closurex/internal/faultinject"
)

// Driver is the campaign interface shared by the sequential Campaign and
// the ParallelCampaign, so instance plumbing and CLIs can hold either.
type Driver interface {
	RunFor(d time.Duration)
	RunExecs(n int64)
	Execs() int64
	Edges() int
	BitmapSnapshot() []byte
	Queue() []*Entry
	QueueLen() int
	Crashes() []*Crash
	Hangs() []*Crash
	Divergences() []Divergence
	Quarantined() []*Entry
	Elapsed() time.Duration
	Checkpoint() ([]byte, error)
}

var (
	_ Driver = (*Campaign)(nil)
	_ Driver = (*ParallelCampaign)(nil)
)

// splitGamma is the splitmix64 stream increment, the same constant NewRNG
// scrambles with; ShardSeed uses it to derive well-separated per-shard
// streams from one trial seed.
const splitGamma = 0x9e3779b97f4a7c15

// ShardSeed derives the RNG seed for shard j of a campaign seeded with
// seed. Shard 0 gets the raw seed so a one-shard parallel campaign
// reproduces the sequential campaign's exact mutation stream; later shards
// get splitmix64-scrambled splits, which are statistically independent of
// both the raw seed and each other.
func ShardSeed(seed uint64, shard int) uint64 {
	if shard == 0 {
		return seed
	}
	z := seed + uint64(shard)*splitGamma
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	return z
}

// GlobalBitmap is the campaign-wide virgin map shards merge into. It packs
// the MapSize virgin bytes into uint64 words mutated only through
// compare-and-swap OR loops, so concurrent merges from every shard are
// lock-free and lose no coverage.
type GlobalBitmap struct {
	words [MapSize / 8]uint64
	edges atomic.Int64 // bytes that have gone zero -> nonzero
}

// NewGlobalBitmap returns an empty global bitmap.
func NewGlobalBitmap() *GlobalBitmap { return &GlobalBitmap{} }

// Merge ORs a shard's local virgin map into the global one and returns how
// many globally-new edges (map bytes that were zero everywhere) this merge
// contributed. Safe for concurrent use from all shards.
func (g *GlobalBitmap) Merge(virgin []byte) int {
	newEdges := 0
	for wi := range g.words {
		local := binary.LittleEndian.Uint64(virgin[wi*8:])
		if local == 0 {
			continue
		}
		for {
			old := atomic.LoadUint64(&g.words[wi])
			merged := old | local
			if merged == old {
				break
			}
			if atomic.CompareAndSwapUint64(&g.words[wi], old, merged) {
				for b := 0; b < 64; b += 8 {
					if (old>>b)&0xff == 0 && (merged>>b)&0xff != 0 {
						newEdges++
					}
				}
				break
			}
			// CAS lost to a concurrent merge: reload and retry; the OR is
			// idempotent so no coverage can be dropped.
		}
	}
	if newEdges > 0 {
		g.edges.Add(int64(newEdges))
	}
	return newEdges
}

// Edges returns the number of distinct map indices hit across all shards.
func (g *GlobalBitmap) Edges() int { return int(g.edges.Load()) }

// Snapshot copies the merged virgin map (checkpointing, audits).
func (g *GlobalBitmap) Snapshot() []byte {
	out := make([]byte, MapSize)
	for wi := range g.words {
		binary.LittleEndian.PutUint64(out[wi*8:], atomic.LoadUint64(&g.words[wi]))
	}
	return out
}

// ShardConfig is the per-shard execution plumbing: each shard needs its own
// mechanism (own VM and harness — VM memory uses non-atomic copy-on-write
// bookkeeping, so images must not be shared across goroutines) writing
// coverage into its own buffer.
type ShardConfig struct {
	Executor Executor
	CovMap   []byte
	// Rebuild, when non-nil, constructs a replacement executor + coverage
	// map after the shard's supervisor escalates past plain restarts (a
	// fresh VM/harness build). The callback owns retiring the old
	// mechanism. Optional: without it (and without a mechanism-level
	// rebuild ladder) the escalation step quarantines directly.
	Rebuild func() (Executor, []byte, error)
}

// ParallelConfig tunes a parallel campaign. The fuzzing knobs mirror
// Config and apply to every shard.
type ParallelConfig struct {
	// Shards supplies one executor+covmap per shard; len(Shards) is J.
	Shards []ShardConfig
	// Seed is the trial seed; shard j fuzzes with ShardSeed(Seed, j).
	Seed        uint64
	Fingerprint string
	Seeds       [][]byte
	MaxInputLen int
	HavocPerSeed int
	SpliceProb  int
	Dict        [][]byte
	Stop        <-chan struct{}
	CheckEvery  int
	// SyncEvery is how many executions a shard runs between sync boundaries
	// (bitmap merge, corpus publish, inbox drain). Default 256. Lower means
	// faster cross-shard corpus propagation, higher means less merge
	// traffic.
	SyncEvery int
	// Sentinel arms the divergence sentinel on shard 0 only: one designated
	// shard continuously cross-checks the persistent mechanism against the
	// fresh-process reference while the rest fuzz at full speed.
	Sentinel *SentinelConfig
	// Supervisor tunes the per-shard fault-tolerance ladder (restart →
	// rebuild → quarantine), the hang escalation check, and the bounded
	// corpus exchange. The zero value selects production defaults.
	Supervisor SupervisorConfig
}

// shardCounters are the per-shard counters Stats-style readers sample with
// atomic loads. Padded to a cache line so shards never false-share.
type shardCounters struct {
	execs   int64
	crashes int64
	hangs   int64
	_       [40]byte
}

// shard is one worker: a sequential Campaign plus the sync-boundary state
// that connects it to the rest of the fleet.
type shard struct {
	id int
	c  *Campaign

	// lastSync is the exec count at the previous sync boundary;
	// lastSyncAt is its wall-clock time (exec-rate windows).
	lastSync   int64
	lastSyncAt time.Time
	// published is the queue index up to which entries have been captured
	// for the corpus manager.
	published int
	// pendingPub holds captured entries the manager has not yet accepted —
	// the backpressure buffer that keeps a slow manager from ever blocking
	// this shard's exec loop.
	pendingPub []*Entry
	// rebuild is the supervisor's mechanism-replacement callback
	// (ShardConfig.Rebuild).
	rebuild func() (Executor, []byte, error)
	// have tracks the content of every entry in this shard's queue, so
	// rebroadcasts of inputs the shard already knows are dropped at adopt
	// time instead of polluting the queue.
	have map[string]struct{}

	// inbox receives unique entries discovered by other shards. Locked, but
	// only touched at sync boundaries and by the manager — never on the
	// per-execution hot path.
	inbox struct {
		sync.Mutex
		entries []*Entry
	}
}

// corpusMsg is one shard's batch of freshly discovered queue entries.
type corpusMsg struct {
	from    int
	entries []*Entry
}

// ParallelCampaign fans one fuzzing trial out over J shards.
type ParallelCampaign struct {
	cfg      ParallelConfig
	sup      SupervisorConfig
	shards   []*shard
	counters []shardCounters
	health   []shardHealth
	global   *GlobalBitmap

	// seen is the corpus manager's content dedup set; corpus is the unique
	// cross-shard discovery list in arrival order. Owned by the manager
	// goroutine while a run is active, by the caller otherwise.
	seen   map[string]struct{}
	corpus []*Entry

	// events is the supervision log (see supervisor.go).
	eventMu sync.Mutex
	events  []ShardEvent

	start   time.Time
	elapsed time.Duration
	running bool
}

// NewParallelCampaign prepares a parallel campaign over cfg.Shards.
func NewParallelCampaign(cfg ParallelConfig) (*ParallelCampaign, error) {
	if len(cfg.Shards) == 0 {
		return nil, fmt.Errorf("fuzz: parallel campaign needs at least one shard")
	}
	if cfg.SyncEvery <= 0 {
		cfg.SyncEvery = 256
	}
	cfg.Supervisor.setDefaults()
	p := &ParallelCampaign{
		cfg:      cfg,
		sup:      cfg.Supervisor,
		counters: make([]shardCounters, len(cfg.Shards)),
		health:   make([]shardHealth, len(cfg.Shards)),
		global:   NewGlobalBitmap(),
		seen:     make(map[string]struct{}),
	}
	for j, sc := range cfg.Shards {
		var sent *SentinelConfig
		if j == 0 {
			sent = cfg.Sentinel
		}
		c := NewCampaign(Config{
			Executor:     sc.Executor,
			CovMap:       sc.CovMap,
			Seeds:        cfg.Seeds,
			Seed:         ShardSeed(cfg.Seed, j),
			Fingerprint:  cfg.Fingerprint,
			MaxInputLen:  cfg.MaxInputLen,
			HavocPerSeed: cfg.HavocPerSeed,
			SpliceProb:   cfg.SpliceProb,
			Dict:         cfg.Dict,
			Stop:         cfg.Stop,
			CheckEvery:   cfg.CheckEvery,
			Sentinel:     sent,
		})
		p.shards = append(p.shards, &shard{id: j, c: c, rebuild: sc.Rebuild, have: make(map[string]struct{})})
	}
	// Every shard bootstraps the same seed corpus itself; pre-seeding the
	// dedup set stops the first shard to sync from rebroadcasting the seeds
	// to shards that already have them.
	for _, s := range cfg.Seeds {
		p.seen[string(s)] = struct{}{}
	}
	p.seen[string([]byte{0})] = struct{}{} // the empty-corpus fallback entry
	return p, nil
}

// Jobs returns the number of shards.
func (p *ParallelCampaign) Jobs() int { return len(p.shards) }

// Shard exposes shard j's underlying sequential campaign (tests, sentinel
// inspection). Must only be used while the campaign is quiescent.
func (p *ParallelCampaign) Shard(j int) *Campaign { return p.shards[j].c }

// GlobalEdges returns the merged edge count (same as Edges; kept for
// symmetry with per-shard Edges readings).
func (p *ParallelCampaign) GlobalEdges() int { return p.global.Edges() }

// syncShard runs one sync boundary for sh: sample counters, merge local
// coverage into the global bitmap, capture fresh queue entries for the
// manager, adopt imports. Capture happens before drain so a shard never
// re-adopts content it is about to publish itself. Publishing is
// non-blocking (flushPublishes) — a wedged manager can never stall a
// healthy shard's exec loop.
func (p *ParallelCampaign) syncShard(sh *shard, pub chan<- corpusMsg) {
	c := sh.c
	h := &p.health[sh.id]
	atomic.StoreInt64(&p.counters[sh.id].execs, c.execs)
	atomic.StoreInt64(&p.counters[sh.id].crashes, int64(len(c.crashes)))
	atomic.StoreInt64(&p.counters[sh.id].hangs, int64(len(c.hangs)))
	p.global.Merge(c.bitmap.virgin[:])
	if n := len(c.queue); n > sh.published {
		fresh := make([]*Entry, n-sh.published)
		copy(fresh, c.queue[sh.published:])
		for _, e := range fresh {
			sh.have[string(e.Input)] = struct{}{}
		}
		sh.published = n
		if len(p.shards) > 1 {
			sh.pendingPub = append(sh.pendingPub, fresh...)
		}
	}
	p.flushPublishes(sh, pub, false)
	sh.drainInbox()
	// Reaching a boundary with fresh executions is recovery: it closes the
	// shard's fault streak and counts as progress for the hang monitor.
	now := time.Now()
	if c.execs > sh.lastSync {
		h.consecFaults.Store(0)
		h.touchProgress()
		if !sh.lastSyncAt.IsZero() {
			if window := now.Sub(sh.lastSyncAt).Seconds(); window > 0 {
				inst := float64(c.execs-sh.lastSync) / window
				prev := math.Float64frombits(h.rateBits.Load())
				if prev == 0 {
					h.rateBits.Store(math.Float64bits(inst))
				} else {
					h.rateBits.Store(math.Float64bits(0.5*prev + 0.5*inst))
				}
			}
		}
	}
	sh.lastSyncAt = now
	sh.lastSync = c.execs
}

// flushPublishes hands the shard's captured entries to the manager. The
// regular-boundary form is non-blocking: if the manager's channel is full
// the entries stay pending and the shard keeps fuzzing (backpressure is a
// counter, not a stall). The final form (quiescence, quarantine) blocks up
// to PublishTimeout so redistribution survives a slow manager without ever
// deadlocking on a dead one.
func (p *ParallelCampaign) flushPublishes(sh *shard, pub chan<- corpusMsg, final bool) {
	h := &p.health[sh.id]
	if len(sh.pendingPub) == 0 || pub == nil || len(p.shards) == 1 {
		sh.pendingPub = nil
		h.pendingPub.Store(0)
		return
	}
	msg := corpusMsg{from: sh.id, entries: sh.pendingPub}
	if final {
		t := time.NewTimer(p.sup.PublishTimeout)
		defer t.Stop()
		select {
		case pub <- msg:
			sh.pendingPub = nil
		case <-t.C:
			p.eventf(sh.id, sh.c.execs, "publish-timeout",
				"manager did not accept %d entries within %v; coverage already merged", len(msg.entries), p.sup.PublishTimeout)
			sh.pendingPub = nil
		}
	} else {
		select {
		case pub <- msg:
			sh.pendingPub = nil
		default:
			// Manager busy: keep pending, retry at the next boundary.
		}
	}
	h.pendingPub.Store(int64(len(sh.pendingPub)))
}

// drainInbox adopts imported entries into the local queue. Imports extend
// the mutation fodder only; they are not re-executed (their coverage is
// already in the global bitmap) and are skipped by this shard's own
// publish bookkeeping.
func (sh *shard) drainInbox() {
	sh.inbox.Lock()
	pending := sh.inbox.entries
	sh.inbox.entries = nil
	sh.inbox.Unlock()
	for _, e := range pending {
		k := string(e.Input)
		if _, dup := sh.have[k]; dup {
			continue
		}
		sh.have[k] = struct{}{}
		sh.c.queue = append(sh.c.queue, e)
		// Keep published in step: adopted entries must not be re-published
		// as this shard's own discoveries.
		if sh.published == len(sh.c.queue)-1 {
			sh.published = len(sh.c.queue)
		}
	}
}

// manager is the corpus-manager goroutine: single consumer of the publish
// channel, owner of the global dedup set, broadcaster of originals. Each
// receiving shard's inbox is bounded by InboxCap: when a stalled shard stops
// draining, its oldest pending imports are shed (and counted) instead of
// growing the inbox without bound. Shedding is sound — imports are mutation
// fodder only; their coverage already lives in the global bitmap.
func (p *ParallelCampaign) manager(pub <-chan corpusMsg, done chan<- struct{}) {
	inj := p.sup.Injector
	for msg := range pub {
		if inj != nil {
			if inj.Should(faultinject.CorpusDelay) {
				time.Sleep(2 * time.Millisecond)
			}
			if inj.Should(faultinject.CorpusDrop) {
				continue
			}
		}
		for _, e := range msg.entries {
			k := string(e.Input)
			if _, dup := p.seen[k]; dup {
				continue
			}
			p.seen[k] = struct{}{}
			p.corpus = append(p.corpus, e)
			for _, other := range p.shards {
				if other.id == msg.from {
					continue
				}
				if p.health[other.id].quarantined.Load() {
					continue
				}
				other.inbox.Lock()
				other.inbox.entries = append(other.inbox.entries, e)
				if cap := p.sup.InboxCap; cap > 0 && len(other.inbox.entries) > cap {
					shed := len(other.inbox.entries) - cap
					other.inbox.entries = append([]*Entry(nil), other.inbox.entries[shed:]...)
					p.health[other.id].inboxDropped.Add(int64(shed))
				}
				other.inbox.Unlock()
			}
		}
	}
	close(done)
}

// run executes fn(shard) on every shard concurrently — each under its
// supervisor — with the corpus manager and hang monitor wired up, and waits
// for full quiescence (all shards done, manager drained, leftover imports
// adopted).
func (p *ParallelCampaign) run(fn func(sh *shard, pub chan<- corpusMsg)) {
	if !p.running {
		p.start = time.Now()
		p.running = true
	}
	pub := make(chan corpusMsg, len(p.shards))
	done := make(chan struct{})
	go p.manager(pub, done)
	var monStop chan struct{}
	var monWG sync.WaitGroup
	if p.sup.HangAfter > 0 {
		monStop = make(chan struct{})
		monWG.Add(1)
		go func() {
			defer monWG.Done()
			p.monitor(monStop)
		}()
	}
	var wg sync.WaitGroup
	for _, sh := range p.shards {
		wg.Add(1)
		go func(sh *shard) {
			defer wg.Done()
			p.supervise(sh, pub, fn)
		}(sh)
	}
	wg.Wait()
	if monStop != nil {
		close(monStop)
		monWG.Wait()
	}
	close(pub)
	<-done
	// Imports broadcast during the final boundaries may have landed after a
	// shard's last drain; fold them in now so the corpus view is complete
	// and the next run starts from it.
	for _, sh := range p.shards {
		sh.drainInbox()
	}
	p.elapsed += time.Since(p.start)
	p.running = false
}

// maybeSync runs a sync boundary when the shard has accumulated SyncEvery
// executions since the last one.
func (p *ParallelCampaign) maybeSync(sh *shard, pub chan<- corpusMsg) {
	if sh.c.execs-sh.lastSync >= int64(p.cfg.SyncEvery) {
		p.syncShard(sh, pub)
	}
}

// othersExecs sums the sampled exec counters of every shard except sh.
func (p *ParallelCampaign) othersExecs(sh *shard) int64 {
	var total int64
	for j := range p.counters {
		if j != sh.id {
			total += atomic.LoadInt64(&p.counters[j].execs)
		}
	}
	return total
}

// RunFor drives every shard until d has elapsed or the stop channel
// closes. Shards poll deadline/stop every CheckEvery steps, exactly like
// the sequential RunFor.
func (p *ParallelCampaign) RunFor(d time.Duration) {
	deadline := time.Now().Add(d)
	p.run(func(sh *shard, pub chan<- corpusMsg) {
		c := sh.c
		for {
			for i := 0; i < c.cfg.CheckEvery; i++ {
				p.step(sh)
				p.maybeSync(sh, pub)
			}
			if c.stopRequested() || time.Now().After(deadline) {
				return
			}
		}
	})
}

// RunExecs drives the fleet until at least n aggregate executions have
// happened or the stop channel closes. Each shard checks its own live
// count plus the other shards' sampled counters every step, so with one
// shard the loop condition is exactly the sequential RunExecs condition.
func (p *ParallelCampaign) RunExecs(n int64) {
	p.run(func(sh *shard, pub chan<- corpusMsg) {
		c := sh.c
		steps := 0
		for p.othersExecs(sh)+c.execs < n {
			p.step(sh)
			p.maybeSync(sh, pub)
			if steps++; steps >= c.cfg.CheckEvery {
				steps = 0
				if c.stopRequested() {
					return
				}
			}
		}
	})
}

// Execs returns aggregate executions across shards. Safe to call from any
// goroutine while the campaign runs (counters are sampled at shard sync
// boundaries, so the reading lags live progress by at most
// SyncEvery executions per shard).
func (p *ParallelCampaign) Execs() int64 {
	var total int64
	for j := range p.counters {
		total += atomic.LoadInt64(&p.counters[j].execs)
	}
	return total
}

// Edges returns the merged global edge count. Safe to call concurrently.
func (p *ParallelCampaign) Edges() int { return p.global.Edges() }

// BitmapSnapshot copies the merged global virgin map. Safe to call
// concurrently (the snapshot may straddle in-flight merges; each word is
// read atomically).
func (p *ParallelCampaign) BitmapSnapshot() []byte { return p.global.Snapshot() }

// CrashCount returns the aggregate number of distinct crash buckets across
// shards (an overcount when shards found the same bucket; Crashes dedups
// exactly but needs quiescence). Safe to call concurrently.
func (p *ParallelCampaign) CrashCount() int64 {
	var total int64
	for j := range p.counters {
		total += atomic.LoadInt64(&p.counters[j].crashes)
	}
	return total
}

// Queue returns the cross-shard corpus: every shard's queue concatenated
// in shard-major order, deduplicated by content (every shard bootstraps
// the same seed corpus, and imports are shared pointers into their
// originator's queue — either way the first occurrence wins). With one
// shard and distinct seeds this is exactly the sequential campaign's
// queue. Requires quiescence.
func (p *ParallelCampaign) Queue() []*Entry {
	seen := make(map[string]struct{})
	var out []*Entry
	for _, sh := range p.shards {
		for _, e := range sh.c.queue {
			k := string(e.Input)
			if _, dup := seen[k]; dup {
				continue
			}
			seen[k] = struct{}{}
			out = append(out, e)
		}
	}
	return out
}

// QueueLen returns the size of the deduplicated cross-shard corpus.
// Requires quiescence.
func (p *ParallelCampaign) QueueLen() int { return len(p.Queue()) }

// Crashes returns the cross-shard crash table, merged by dedup key: counts
// sum, first discovery is the earliest by campaign time. Requires
// quiescence.
func (p *ParallelCampaign) Crashes() []*Crash {
	return p.mergedTable(func(c *Campaign) map[string]*Crash { return c.crashes })
}

// Hangs returns the merged cross-shard hang table. Requires quiescence.
func (p *ParallelCampaign) Hangs() []*Crash {
	return p.mergedTable(func(c *Campaign) map[string]*Crash { return c.hangs })
}

func (p *ParallelCampaign) mergedTable(sel func(*Campaign) map[string]*Crash) []*Crash {
	merged := make(map[string]*Crash)
	for _, sh := range p.shards {
		for key, cr := range sel(sh.c) {
			m, ok := merged[key]
			if !ok {
				cp := *cr
				cp.Input = append([]byte(nil), cr.Input...)
				merged[key] = &cp
				continue
			}
			m.Count += cr.Count
			if cr.FirstAt < m.FirstAt {
				m.FirstAt = cr.FirstAt
				m.FirstExec = cr.FirstExec
				m.Input = append(m.Input[:0], cr.Input...)
			}
		}
	}
	return sortedTable(merged)
}

// Divergences returns the sentinel findings (shard 0 runs the sentinel).
func (p *ParallelCampaign) Divergences() []Divergence { return p.shards[0].c.Divergences() }

// Quarantined returns queue entries the sentinel pulled (shard 0).
func (p *ParallelCampaign) Quarantined() []*Entry { return p.shards[0].c.Quarantined() }

// Elapsed returns cumulative wall-clock fuzzing time across run calls.
func (p *ParallelCampaign) Elapsed() time.Duration {
	if p.running {
		return p.elapsed + time.Since(p.start)
	}
	return p.elapsed
}

// parallelCheckpointVersion guards the parallel checkpoint envelope format.
// v2 added the merged campaign view (corpus, bitmap, counters, crash
// tables) alongside the per-shard blobs, which is what makes resume
// elastic: the per-shard blobs serve the exact same-topology path, the
// merged view serves re-sharding onto any J.
const parallelCheckpointVersion = 2

// parallelState is the gob envelope. The Shards blobs carry each shard's
// full sequential checkpoint (bit-identical same-J resume); the merged
// fields carry the topology-independent campaign state (elastic resume).
type parallelState struct {
	Version     int
	Jobs        int
	Seed        uint64
	Fingerprint string
	Shards      [][]byte

	// Merged, topology-independent view. Corpus is the deduplicated
	// cross-shard queue in canonical shard-major order — the order is part
	// of the format, because elastic re-sharding derives shard assignment
	// from corpus position.
	Corpus      []entryState
	Virgin      []byte
	Edges       int
	Execs       int64
	Elapsed     time.Duration
	Crashes     []Crash
	Hangs       []Crash
	Divergences []Divergence
	Quarantined []entryState
}

// Checkpoint serializes the whole fleet. Requires quiescence.
func (p *ParallelCampaign) Checkpoint() ([]byte, error) {
	st := parallelState{
		Version:     parallelCheckpointVersion,
		Jobs:        len(p.shards),
		Seed:        p.cfg.Seed,
		Fingerprint: p.cfg.Fingerprint,
		Virgin:      p.global.Snapshot(),
		Edges:       p.global.Edges(),
		Execs:       p.Execs(),
		Elapsed:     p.Elapsed(),
		Divergences: p.Divergences(),
	}
	for _, sh := range p.shards {
		blob, err := sh.c.Checkpoint()
		if err != nil {
			return nil, fmt.Errorf("fuzz: checkpoint shard %d: %w", sh.id, err)
		}
		st.Shards = append(st.Shards, blob)
	}
	for _, e := range p.Queue() {
		st.Corpus = append(st.Corpus, entryState{Input: e.Input, FoundAt: e.FoundAt, Gain: e.Gain})
	}
	for _, e := range p.Quarantined() {
		st.Quarantined = append(st.Quarantined, entryState{Input: e.Input, FoundAt: e.FoundAt, Gain: e.Gain})
	}
	for _, cr := range p.Crashes() {
		st.Crashes = append(st.Crashes, *cr)
	}
	for _, h := range p.Hangs() {
		st.Hangs = append(st.Hangs, *h)
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(&st); err != nil {
		return nil, fmt.Errorf("fuzz: encode parallel checkpoint: %w", err)
	}
	return buf.Bytes(), nil
}

// ResumeParallel reconstructs a fleet from a Checkpoint blob. cfg must
// describe the same trial (seed, fingerprint) but not the same topology:
// with len(cfg.Shards) equal to the checkpoint's J the per-shard blobs
// resume each shard bit-identically, and with any other J the merged
// campaign state is re-sharded deterministically (corpus entry i lands on
// shard i mod J′, every shard's bitmap starts from the merged virgin map,
// the aggregate counters and crash tables land on shard 0). An elastic
// resume preserves corpus contents, coverage, and totals exactly; only the
// forward mutation streams differ from the uninterrupted run, which is
// inherent to changing J.
func ResumeParallel(cfg ParallelConfig, data []byte) (*ParallelCampaign, error) {
	var st parallelState
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&st); err != nil {
		return nil, fmt.Errorf("%w: undecodable parallel envelope: %v", ErrBadCheckpoint, err)
	}
	if st.Version != parallelCheckpointVersion {
		return nil, fmt.Errorf("%w: parallel version %d, want %d", ErrBadCheckpoint, st.Version, parallelCheckpointVersion)
	}
	if st.Jobs != len(st.Shards) {
		return nil, fmt.Errorf("%w: envelope says %d shards but carries %d blobs", ErrBadCheckpoint, st.Jobs, len(st.Shards))
	}
	if st.Seed != cfg.Seed {
		return nil, fmt.Errorf("%w: taken with seed %d, config says %d", ErrBadCheckpoint, st.Seed, cfg.Seed)
	}
	if st.Fingerprint != cfg.Fingerprint {
		return nil, fmt.Errorf("%w: taken for %q, config says %q (resume needs the same target and mechanism)",
			ErrBadCheckpoint, st.Fingerprint, cfg.Fingerprint)
	}
	if st.Jobs == len(cfg.Shards) {
		return resumeParallelExact(cfg, &st)
	}
	return resumeParallelElastic(cfg, &st)
}

// resumeParallelExact is the same-topology path: every shard resumes from
// its own full checkpoint, so continuing the campaign replays the exact
// mutation streams the uninterrupted run would have produced.
func resumeParallelExact(cfg ParallelConfig, st *parallelState) (*ParallelCampaign, error) {
	p, err := NewParallelCampaign(cfg)
	if err != nil {
		return nil, err
	}
	for j, blob := range st.Shards {
		c, err := Resume(Config{
			Executor:     cfg.Shards[j].Executor,
			CovMap:       cfg.Shards[j].CovMap,
			Seeds:        cfg.Seeds,
			Seed:         ShardSeed(cfg.Seed, j),
			Fingerprint:  cfg.Fingerprint,
			MaxInputLen:  cfg.MaxInputLen,
			HavocPerSeed: cfg.HavocPerSeed,
			SpliceProb:   cfg.SpliceProb,
			Dict:         cfg.Dict,
			Stop:         cfg.Stop,
			CheckEvery:   cfg.CheckEvery,
			Sentinel:     p.shards[j].c.cfg.Sentinel,
		}, blob)
		if err != nil {
			return nil, fmt.Errorf("shard %d: %w", j, err)
		}
		sh := p.shards[j]
		sh.c = c
		// Everything in a resumed queue is old news: mark it published so
		// it is not rebroadcast, and rebuild the content set and the
		// manager's dedup state from it.
		sh.published = len(c.queue)
		sh.lastSync = c.execs
		for _, e := range c.queue {
			k := string(e.Input)
			sh.have[k] = struct{}{}
			p.seen[k] = struct{}{}
		}
		p.global.Merge(c.bitmap.virgin[:])
		atomic.StoreInt64(&p.counters[j].execs, c.execs)
		atomic.StoreInt64(&p.counters[j].crashes, int64(len(c.crashes)))
		atomic.StoreInt64(&p.counters[j].hangs, int64(len(c.hangs)))
		p.elapsed = maxDuration(p.elapsed, c.Elapsed())
	}
	return p, nil
}

// resumeParallelElastic re-shards the merged campaign state onto a new J.
// The assignment is deterministic (corpus position mod J′), so resuming the
// same checkpoint at the same new J always yields the same fleet.
func resumeParallelElastic(cfg ParallelConfig, st *parallelState) (*ParallelCampaign, error) {
	if len(st.Corpus) == 0 {
		return nil, fmt.Errorf("%w: elastic resume needs the merged corpus (empty envelope)", ErrBadCheckpoint)
	}
	p, err := NewParallelCampaign(cfg)
	if err != nil {
		return nil, err
	}
	corpus := make([]*Entry, len(st.Corpus))
	for i, e := range st.Corpus {
		corpus[i] = &Entry{Input: e.Input, FoundAt: e.FoundAt, Gain: e.Gain}
	}
	for j, sh := range p.shards {
		c := sh.c
		for i := j; i < len(corpus); i += len(p.shards) {
			c.queue = append(c.queue, corpus[i])
		}
		if len(c.queue) == 0 {
			// More shards than corpus entries: reuse an entry so the shard
			// has mutation fodder (Queue() dedups, so contents are
			// unaffected).
			c.queue = append(c.queue, corpus[j%len(corpus)])
		}
		if err := c.bitmap.SetSnapshot(st.Virgin); err != nil {
			return nil, err
		}
		// Seeds already ran in the original campaign; bootstrap must not
		// run again (it would re-execute them and distort the counters).
		c.started = true
		c.start = time.Now()
		sh.published = len(c.queue)
		for _, e := range c.queue {
			k := string(e.Input)
			sh.have[k] = struct{}{}
			p.seen[k] = struct{}{}
		}
		p.global.Merge(c.bitmap.virgin[:])
	}
	if got := p.global.Edges(); got != st.Edges {
		return nil, fmt.Errorf("%w: edge count %d does not match bitmap (%d)", ErrBadCheckpoint, st.Edges, got)
	}
	// The aggregate view lands on shard 0: totals and tables survive the
	// re-shard even though their per-shard attribution is gone.
	c0 := p.shards[0].c
	c0.execs = st.Execs
	c0.elapsed = st.Elapsed
	c0.divergences = st.Divergences
	for i := range st.Crashes {
		cr := st.Crashes[i]
		c0.crashes[cr.Key] = &cr
	}
	for i := range st.Hangs {
		h := st.Hangs[i]
		c0.hangs[h.Key] = &h
	}
	for _, e := range st.Quarantined {
		c0.quarantined = append(c0.quarantined, &Entry{Input: e.Input, FoundAt: e.FoundAt, Gain: e.Gain})
	}
	p.shards[0].lastSync = c0.execs
	atomic.StoreInt64(&p.counters[0].execs, c0.execs)
	atomic.StoreInt64(&p.counters[0].crashes, int64(len(c0.crashes)))
	atomic.StoreInt64(&p.counters[0].hangs, int64(len(c0.hangs)))
	p.elapsed = st.Elapsed
	return p, nil
}

func maxDuration(a, b time.Duration) time.Duration {
	if a > b {
		return a
	}
	return b
}
