package fuzz

import (
	"bytes"
	"testing"
	"testing/quick"

	"closurex/internal/vm"
)

func TestRNGDeterministic(t *testing.T) {
	a, b := NewRNG(7), NewRNG(7)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed diverged")
		}
	}
	c := NewRNG(8)
	same := 0
	a2 := NewRNG(7)
	for i := 0; i < 100; i++ {
		if a2.Uint64() == c.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("adjacent seeds correlated: %d collisions", same)
	}
}

func TestRNGIntnBounds(t *testing.T) {
	r := NewRNG(1)
	for i := 0; i < 1000; i++ {
		n := 1 + i%17
		v := r.Intn(n)
		if v < 0 || v >= n {
			t.Fatalf("Intn(%d) = %d", n, v)
		}
	}
}

func TestBucketLUT(t *testing.T) {
	cases := map[int]byte{
		0: 0, 1: 1, 2: 2, 3: 4, 4: 8, 7: 8, 8: 16, 15: 16,
		16: 32, 31: 32, 32: 64, 127: 64, 128: 128, 255: 128,
	}
	for in, want := range cases {
		if bucketLUT[in] != want {
			t.Errorf("bucket[%d] = %d, want %d", in, bucketLUT[in], want)
		}
	}
}

func TestBitmapUpdate(t *testing.T) {
	b := NewBitmap()
	trace := make([]byte, MapSize)
	trace[100] = 1
	if got := b.Update(trace); got != 2 {
		t.Fatalf("first hit gain = %d, want 2", got)
	}
	if trace[100] != 0 {
		t.Fatal("trace not cleared")
	}
	// Same edge, same bucket: no gain.
	trace[100] = 1
	if got := b.Update(trace); got != 0 {
		t.Fatalf("repeat gain = %d, want 0", got)
	}
	// Same edge, higher bucket: bucket gain.
	trace[100] = 9
	if got := b.Update(trace); got != 1 {
		t.Fatalf("bucket gain = %d, want 1", got)
	}
	// New edge dominates bucket changes.
	trace[100] = 255
	trace[7] = 1
	if got := b.Update(trace); got != 2 {
		t.Fatalf("mixed gain = %d, want 2", got)
	}
	if b.Edges() != 2 {
		t.Fatalf("Edges = %d, want 2", b.Edges())
	}
	b.Reset()
	if b.Edges() != 0 {
		t.Fatal("reset failed")
	}
}

func TestClassifyInPlace(t *testing.T) {
	trace := []byte{0, 1, 3, 200}
	Classify(trace)
	want := []byte{0, 1, 4, 128}
	if !bytes.Equal(trace, want) {
		t.Fatalf("Classify = %v, want %v", trace, want)
	}
}

func TestMutatorRespectsMaxLen(t *testing.T) {
	r := NewRNG(3)
	m := NewMutator(r, 64)
	in := bytes.Repeat([]byte{7}, 60)
	for i := 0; i < 500; i++ {
		out := m.Havoc(in)
		if len(out) > 64 {
			t.Fatalf("havoc grew past MaxLen: %d", len(out))
		}
	}
	for i := 0; i < 500; i++ {
		out := m.Splice(in, bytes.Repeat([]byte{9}, 60))
		if len(out) > 64 {
			t.Fatalf("splice grew past MaxLen: %d", len(out))
		}
	}
}

func TestMutatorHandlesEmptyAndTiny(t *testing.T) {
	r := NewRNG(4)
	m := NewMutator(r, 32)
	for i := 0; i < 200; i++ {
		if out := m.Havoc(nil); len(out) == 0 {
			t.Fatal("havoc of empty stayed empty")
		}
		_ = m.Havoc([]byte{1})
		_ = m.Splice([]byte{1}, []byte{2})
		_ = m.Splice(nil, nil)
	}
}

func TestMutatorDoesNotAliasInput(t *testing.T) {
	r := NewRNG(5)
	m := NewMutator(r, 128)
	in := []byte("immutable-seed-content")
	orig := append([]byte(nil), in...)
	for i := 0; i < 200; i++ {
		m.Havoc(in)
	}
	if !bytes.Equal(in, orig) {
		t.Fatal("Havoc mutated the input slice")
	}
}

// Property: Havoc output differs from input with overwhelming probability
// across many trials (sanity that mutation actually mutates).
func TestMutatorChangesInput(t *testing.T) {
	f := func(seed uint64, data []byte) bool {
		if len(data) == 0 {
			return true
		}
		if len(data) > 256 {
			data = data[:256]
		}
		m := NewMutator(NewRNG(seed), 512)
		for i := 0; i < 8; i++ {
			if !bytes.Equal(m.Havoc(data), data) {
				return true
			}
		}
		return false
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// scriptedExecutor maps inputs to canned results and records coverage.
type scriptedExecutor struct {
	cov     []byte
	crashOn byte
	t       *testing.T
}

func (s *scriptedExecutor) Execute(input []byte) vm.Result {
	// Coverage depends on the first byte: each distinct value hits a
	// distinct map cell, so new first-bytes yield new edges.
	var b byte
	if len(input) > 0 {
		b = input[0]
	}
	s.cov[int(b)]++
	if b == s.crashOn {
		return vm.Result{Fault: &vm.Fault{Kind: vm.FaultNullDeref, Fn: "parse", Line: 42}}
	}
	return vm.Result{Ret: int64(b)}
}

func TestCampaignFindsCoverageAndCrash(t *testing.T) {
	cov := make([]byte, MapSize)
	ex := &scriptedExecutor{cov: cov, crashOn: 0xee, t: t}
	c := NewCampaign(Config{
		Executor: ex,
		CovMap:   cov,
		Seeds:    [][]byte{{1, 2, 3, 4}},
		Seed:     11,
	})
	c.RunExecs(20000)
	if c.Execs() < 20000 {
		t.Fatalf("Execs = %d", c.Execs())
	}
	if c.Edges() < 50 {
		t.Fatalf("edges = %d, want many distinct first bytes", c.Edges())
	}
	if c.QueueLen() < 10 {
		t.Fatalf("queue = %d", c.QueueLen())
	}
	crashes := c.Crashes()
	if len(crashes) != 1 {
		t.Fatalf("crashes = %d, want 1 (deduplicated)", len(crashes))
	}
	cr := crashes[0]
	if cr.Key != "null-pointer-dereference@parse:42" {
		t.Fatalf("crash key = %q", cr.Key)
	}
	if cr.Count < 1 || len(cr.Input) == 0 || cr.Input[0] != 0xee {
		t.Fatalf("crash record: %+v", cr)
	}
	if c.CrashByKey(cr.Key) != cr {
		t.Fatal("CrashByKey lookup failed")
	}
}

func TestCampaignDeterministicGivenSeed(t *testing.T) {
	run := func(seed uint64) (int64, int, int) {
		cov := make([]byte, MapSize)
		ex := &scriptedExecutor{cov: cov, crashOn: 0xff}
		c := NewCampaign(Config{Executor: ex, CovMap: cov, Seeds: [][]byte{{9}}, Seed: seed})
		c.RunExecs(5000)
		return c.Execs(), c.Edges(), c.QueueLen()
	}
	e1, ed1, q1 := run(42)
	e2, ed2, q2 := run(42)
	if e1 != e2 || ed1 != ed2 || q1 != q2 {
		t.Fatalf("same seed diverged: (%d,%d,%d) vs (%d,%d,%d)", e1, ed1, q1, e2, ed2, q2)
	}
	_, ed3, _ := run(43)
	if ed1 == ed3 {
		t.Log("note: different seeds gave same edge count (possible, not fatal)")
	}
}

func TestCampaignBootstrapsWithEmptySeeds(t *testing.T) {
	cov := make([]byte, MapSize)
	ex := &scriptedExecutor{cov: cov, crashOn: 0xff}
	c := NewCampaign(Config{Executor: ex, CovMap: cov, Seed: 1})
	c.RunExecs(100)
	if c.QueueLen() == 0 {
		t.Fatal("empty-corpus campaign has no queue")
	}
}

func TestCampaignCrashInputsNotQueued(t *testing.T) {
	cov := make([]byte, MapSize)
	ex := &scriptedExecutor{cov: cov, crashOn: 5}
	c := NewCampaign(Config{Executor: ex, CovMap: cov, Seeds: [][]byte{{5}}, Seed: 1})
	c.Step() // bootstrap: the only seed crashes
	for _, e := range c.Queue() {
		if len(e.Input) > 0 && e.Input[0] == 5 {
			t.Fatal("crashing input entered the queue")
		}
	}
}

func TestCampaignRunFor(t *testing.T) {
	cov := make([]byte, MapSize)
	ex := &scriptedExecutor{cov: cov, crashOn: 0xff}
	c := NewCampaign(Config{Executor: ex, CovMap: cov, Seeds: [][]byte{{1}}, Seed: 2})
	c.RunFor(30 * 1e6) // 30ms
	if c.Execs() == 0 {
		t.Fatal("RunFor executed nothing")
	}
	if c.Elapsed() <= 0 {
		t.Fatal("Elapsed not tracked")
	}
}
