package fuzz

// Torn-write regression for the atomic checkpoint path: an injected failure
// mid-write (modeling a crash or a full disk) must leave the previous
// checkpoint intact and resumable, and the half-written blob must be
// rejected by Resume with ErrBadCheckpoint rather than misparsed.

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"closurex/internal/faultinject"
)

func newCheckpointFleet(t *testing.T) (*ParallelCampaign, func() ParallelConfig) {
	t.Helper()
	mk := func() ParallelConfig {
		var shards []ShardConfig
		for j := 0; j < 2; j++ {
			ex, cov := newLadder("MAGIC")
			shards = append(shards, ShardConfig{Executor: ex, CovMap: cov})
		}
		return ParallelConfig{
			Shards: shards, Seed: 31, Fingerprint: "ladder@test",
			Seeds: [][]byte{[]byte("xxxxxxxx")}, SyncEvery: 64,
		}
	}
	p, err := NewParallelCampaign(mk())
	if err != nil {
		t.Fatal(err)
	}
	return p, mk
}

func TestCheckpointTornWriteLeavesOldFileIntact(t *testing.T) {
	defer checkGoroutineLeak(t)()
	p, mk := newCheckpointFleet(t)
	p.RunExecs(4000)

	dir := t.TempDir()
	path := filepath.Join(dir, "fleet.ckpt")
	if err := SaveCheckpoint(p, path, nil); err != nil {
		t.Fatalf("first checkpoint: %v", err)
	}
	good, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	// Second save dies mid-write: the file under the checkpoint name must
	// still hold the first, complete blob.
	p.RunExecs(8000)
	inj := faultinject.New(7)
	inj.FailAfter(faultinject.CheckpointWrite, 0, 1)
	if err := SaveCheckpoint(p, path, inj); err == nil {
		t.Fatal("injected checkpoint-write fault did not surface an error")
	}
	after, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("checkpoint file lost after torn write: %v", err)
	}
	if len(after) != len(good) || string(after) != string(good) {
		t.Fatal("torn write mutated the previous checkpoint in place")
	}
	// The surviving file still resumes.
	if _, err := ResumeParallel(mk(), after); err != nil {
		t.Fatalf("previous checkpoint no longer resumes after torn write: %v", err)
	}

	// The torn temp blob itself must be rejected, not misparsed.
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var torn string
	for _, e := range ents {
		if strings.Contains(e.Name(), ".tmp-") {
			torn = filepath.Join(dir, e.Name())
		}
	}
	if torn == "" {
		t.Fatal("torn temp file not found; fault model changed?")
	}
	blob, err := LoadCheckpointFile(torn)
	if err != nil {
		t.Fatal(err)
	}
	if len(blob) == 0 || len(blob) >= len(good) {
		t.Fatalf("torn blob is %d bytes, want a strict prefix of %d", len(blob), len(good))
	}
	if _, err := ResumeParallel(mk(), blob); !errors.Is(err, ErrBadCheckpoint) {
		t.Fatalf("torn blob accepted: %v", err)
	}

	// A later fault-free save overwrites cleanly and resumes with the
	// newer progress.
	if err := SaveCheckpoint(p, path, nil); err != nil {
		t.Fatalf("post-fault checkpoint: %v", err)
	}
	blob, err = LoadCheckpointFile(path)
	if err != nil {
		t.Fatal(err)
	}
	res, err := ResumeParallel(mk(), blob)
	if err != nil {
		t.Fatalf("post-fault resume: %v", err)
	}
	if res.Execs() != p.Execs() {
		t.Fatalf("post-fault checkpoint stale: execs %d, want %d", res.Execs(), p.Execs())
	}
}

func TestCheckpointWriteFailureCleansUpTemp(t *testing.T) {
	// A plain write error (no injector) must remove the temp file so failed
	// saves do not accumulate garbage next to the checkpoint.
	dir := t.TempDir()
	path := filepath.Join(dir, "x.ckpt")
	if err := WriteCheckpointFile(path, []byte("hello checkpoint"), nil); err != nil {
		t.Fatal(err)
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 1 || ents[0].Name() != "x.ckpt" {
		t.Fatalf("unexpected directory contents after clean write: %v", ents)
	}
	got, err := LoadCheckpointFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "hello checkpoint" {
		t.Fatalf("round-trip mismatch: %q", got)
	}
}
