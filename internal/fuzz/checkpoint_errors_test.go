package fuzz

import (
	"errors"
	"testing"
)

// Supervisors decide between "retry with the right flags" and "start
// fresh" by errors.Is(err, ErrBadCheckpoint); every Resume rejection must
// carry the sentinel.
func TestResumeRejectionsWrapErrBadCheckpoint(t *testing.T) {
	c, ex := newResilienceCampaign([][]byte{{'a'}}, 5)
	c.RunExecs(100)
	good, err := c.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Executor: ex, CovMap: ex.cov, Seed: 5}

	cases := []struct {
		name string
		cfg  Config
		data []byte
	}{
		{"garbage bytes", cfg, []byte("not a checkpoint")},
		{"seed mismatch", func() Config { c := cfg; c.Seed = 6; return c }(), good},
		{"fingerprint mismatch", func() Config { c := cfg; c.Fingerprint = "other@fresh"; return c }(), good},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Resume(tc.cfg, tc.data)
			if err == nil {
				t.Fatal("bad checkpoint accepted")
			}
			if !errors.Is(err, ErrBadCheckpoint) {
				t.Fatalf("rejection not errors.Is(ErrBadCheckpoint): %v", err)
			}
		})
	}

	// The matching configuration still resumes.
	if _, err := Resume(cfg, good); err != nil {
		t.Fatalf("good checkpoint rejected: %v", err)
	}
}
