package vfs

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"
)

func TestOpenMissingFile(t *testing.T) {
	fs := New()
	if _, err := fs.Open("/nope", "r"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("err = %v, want ErrNotFound", err)
	}
}

func TestReadInput(t *testing.T) {
	fs := New()
	fs.SetInput([]byte("hello fuzzer"))
	fd, err := fs.Open(InputPath, "r")
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 5)
	n, err := fs.Read(fd, buf)
	if err != nil || n != 5 || string(buf) != "hello" {
		t.Fatalf("Read = %d %q %v", n, buf, err)
	}
	n, err = fs.Read(fd, make([]byte, 100))
	if err != nil || n != 7 {
		t.Fatalf("short read = %d, %v; want 7", n, err)
	}
	n, _ = fs.Read(fd, buf)
	if n != 0 {
		t.Fatalf("EOF read = %d, want 0", n)
	}
}

func TestGetc(t *testing.T) {
	fs := New()
	fs.SetInput([]byte{0xff, 0x00})
	fd, _ := fs.Open(InputPath, "r")
	if c, _ := fs.Getc(fd); c != 0xff {
		t.Fatalf("Getc = %d, want 255", c)
	}
	if c, _ := fs.Getc(fd); c != 0 {
		t.Fatalf("Getc = %d, want 0", c)
	}
	if c, _ := fs.Getc(fd); c != -1 {
		t.Fatalf("Getc at EOF = %d, want -1", c)
	}
}

func TestSeekTellSize(t *testing.T) {
	fs := New()
	fs.SetInput([]byte("0123456789"))
	fd, _ := fs.Open(InputPath, "r")
	if off, err := fs.Seek(fd, 4, SeekSet); err != nil || off != 4 {
		t.Fatalf("SeekSet = %d, %v", off, err)
	}
	if off, err := fs.Seek(fd, 2, SeekCur); err != nil || off != 6 {
		t.Fatalf("SeekCur = %d, %v", off, err)
	}
	if off, err := fs.Seek(fd, -1, SeekEnd); err != nil || off != 9 {
		t.Fatalf("SeekEnd = %d, %v", off, err)
	}
	if c, _ := fs.Getc(fd); c != '9' {
		t.Fatalf("Getc after seek = %c", c)
	}
	if pos, _ := fs.Tell(fd); pos != 10 {
		t.Fatalf("Tell = %d", pos)
	}
	if sz, _ := fs.Size(fd); sz != 10 {
		t.Fatalf("Size = %d", sz)
	}
	if _, err := fs.Seek(fd, -100, SeekSet); err == nil {
		t.Fatal("negative seek accepted")
	}
}

func TestWriteMode(t *testing.T) {
	fs := New()
	fd, err := fs.Open("/out", "w")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fs.Write(fd, []byte("abc")); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.Seek(fd, 1, SeekSet); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.Write(fd, []byte("XY")); err != nil {
		t.Fatal(err)
	}
	if err := fs.Close(fd); err != nil {
		t.Fatal(err)
	}
	got, err := fs.ReadFile("/out")
	if err != nil || !bytes.Equal(got, []byte("aXY")) {
		t.Fatalf("file = %q, %v", got, err)
	}
	// "w" truncates an existing file.
	fd, _ = fs.Open("/out", "w")
	if sz, _ := fs.Size(fd); sz != 0 {
		t.Fatalf("w-mode did not truncate: size %d", sz)
	}
}

func TestAppendMode(t *testing.T) {
	fs := New()
	fs.WriteFile("/log", []byte("one"))
	fd, _ := fs.Open("/log", "a")
	_, _ = fs.Write(fd, []byte("two"))
	got, _ := fs.ReadFile("/log")
	if string(got) != "onetwo" {
		t.Fatalf("append produced %q", got)
	}
}

func TestFDExhaustion(t *testing.T) {
	fs := New()
	fs.SetInput([]byte("x"))
	fs.SetFDLimit(4)
	for i := 0; i < 4; i++ {
		if _, err := fs.Open(InputPath, "r"); err != nil {
			t.Fatalf("open %d: %v", i, err)
		}
	}
	if _, err := fs.Open(InputPath, "r"); !errors.Is(err, ErrFDExhausted) {
		t.Fatalf("err = %v, want ErrFDExhausted", err)
	}
}

func TestCloseSemantics(t *testing.T) {
	fs := New()
	fs.SetInput([]byte("x"))
	fd, _ := fs.Open(InputPath, "r")
	if err := fs.Close(fd); err != nil {
		t.Fatal(err)
	}
	if err := fs.Close(fd); !errors.Is(err, ErrBadFD) {
		t.Fatalf("double close err = %v, want ErrBadFD", err)
	}
	if _, err := fs.Read(fd, make([]byte, 1)); !errors.Is(err, ErrBadFD) {
		t.Fatalf("read closed err = %v", err)
	}
	if err := fs.Close(12345); !errors.Is(err, ErrBadFD) {
		t.Fatalf("close bogus err = %v", err)
	}
}

func TestLeakedAndInitFDs(t *testing.T) {
	fs := New()
	fs.SetInput([]byte("x"))
	fs.WriteFile("/cfg", []byte("config"))
	cfgFD, _ := fs.Open("/cfg", "r")
	fs.MarkInit()
	in1, _ := fs.Open(InputPath, "r")
	in2, _ := fs.Open(InputPath, "r")
	_ = fs.Close(in1)
	leaked := fs.LeakedFDs()
	if len(leaked) != 1 || leaked[0] != in2 {
		t.Fatalf("LeakedFDs = %v, want [%d]", leaked, in2)
	}
	init := fs.InitFDs()
	if len(init) != 1 || init[0] != cfgFD {
		t.Fatalf("InitFDs = %v, want [%d]", init, cfgFD)
	}
}

func TestReset(t *testing.T) {
	fs := New()
	fs.SetInput([]byte("x"))
	_, _ = fs.Open(InputPath, "r")
	fs.WriteFile("/scratch", []byte("junk"))
	fs.Reset(map[string][]byte{"/keep": []byte("kept")})
	if fs.OpenCount() != 0 {
		t.Fatalf("descriptors survived reset: %d", fs.OpenCount())
	}
	if _, err := fs.ReadFile("/scratch"); !errors.Is(err, ErrNotFound) {
		t.Fatal("scratch file survived reset")
	}
	if got, err := fs.ReadFile("/keep"); err != nil || string(got) != "kept" {
		t.Fatalf("keep file = %q, %v", got, err)
	}
}

func TestCloneIsolation(t *testing.T) {
	fs := New()
	fs.SetInput([]byte("parent"))
	fd, _ := fs.Open(InputPath, "r")
	_, _ = fs.Getc(fd)
	cl := fs.Clone()
	// Clone sees the open descriptor at the same position.
	if c, err := cl.Getc(fd); err != nil || c != 'a' {
		t.Fatalf("clone Getc = %c, %v", c, err)
	}
	// Advancing the clone's position does not move the parent's.
	if c, _ := fs.Getc(fd); c != 'a' {
		t.Fatalf("parent position moved by clone read: %c", c)
	}
	// Writes in the clone do not affect the parent.
	w, _ := cl.Open("/new", "w")
	_, _ = cl.Write(w, []byte("clone-only"))
	if _, err := fs.ReadFile("/new"); !errors.Is(err, ErrNotFound) {
		t.Fatal("clone write leaked into parent")
	}
}

func TestSnapshot(t *testing.T) {
	fs := New()
	fs.WriteFile("/a", []byte("1"))
	fs.WriteFile("/b", []byte("2"))
	snap := fs.Snapshot()
	fs.WriteFile("/a", []byte("mutated"))
	if string(snap["/a"]) != "1" || string(snap["/b"]) != "2" {
		t.Fatalf("snapshot not isolated: %v", snap)
	}
}

// Property: a random sequence of reads and seeks against the descriptor
// matches a model cursor over the same byte slice.
func TestReadSeekProperty(t *testing.T) {
	f := func(data []byte, ops []struct {
		Seek bool
		Arg  int16
	}) bool {
		fs := New()
		fs.SetInput(data)
		fd, err := fs.Open(InputPath, "r")
		if err != nil {
			return false
		}
		pos := 0
		for _, op := range ops {
			if op.Seek {
				np := int(op.Arg)
				if np < 0 {
					np = -np
				}
				if _, err := fs.Seek(fd, int64(np), SeekSet); err != nil {
					return false
				}
				pos = np
			} else {
				n := int(op.Arg) % 64
				if n < 0 {
					n = -n
				}
				buf := make([]byte, n)
				got, err := fs.Read(fd, buf)
				if err != nil {
					return false
				}
				want := 0
				if pos < len(data) {
					want = copy(make([]byte, n), data[pos:])
				}
				if got != want {
					return false
				}
				if got > 0 && !bytes.Equal(buf[:got], data[pos:pos+got]) {
					return false
				}
				pos += got
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
