package vfs

import "testing"

// TestFreelistReuseReinitializesEntry is the write-barrier-bypass audit
// regression from the sanitizer PR: a recycled OpenFile slot must carry no
// state from its previous life — position, init flag and closed flag all
// reset — or a descriptor opened during a test case could masquerade as an
// init-time handle (rewound instead of closed) and leak across iterations.
func TestFreelistReuseReinitializesEntry(t *testing.T) {
	fs := New()
	fs.WriteFile("/a", []byte("hello world"))
	fs.WriteFile("/b", []byte("fresh"))

	fd, err := fs.Open("/a", "r")
	if err != nil {
		t.Fatal(err)
	}
	// Pollute every recyclable field: advance the position and mark init.
	if _, err := fs.Seek(fd, 7, SeekSet); err != nil {
		t.Fatal(err)
	}
	fs.MarkInit()
	if err := fs.Close(fd); err != nil {
		t.Fatal(err)
	}

	// The next open recycles the freed entry.
	fd2, err := fs.Open("/b", "r")
	if err != nil {
		t.Fatal(err)
	}
	if fd2 == fd {
		t.Fatalf("descriptor numbers must not be recycled: %d", fd2)
	}
	if pos, err := fs.Tell(fd2); err != nil || pos != 0 {
		t.Fatalf("recycled entry kept stale position: pos=%d err=%v", pos, err)
	}
	buf := make([]byte, 5)
	if n, err := fs.Read(fd2, buf); err != nil || string(buf[:n]) != "fresh" {
		t.Fatalf("recycled entry reads %q err=%v", buf[:n], err)
	}
	// The recycled descriptor was opened after MarkInit, so it must count
	// as a leaked (test-case) descriptor, not an init handle.
	if n := fs.LeakedCount(); n != 1 {
		t.Fatalf("recycled entry kept stale Init flag: leaked=%d, want 1", n)
	}
	if fds := fs.AppendInitFDs(nil); len(fds) != 0 {
		t.Fatalf("recycled entry listed as init FD: %v", fds)
	}
}

// TestFreelistStaleAliasStaysClosed: the old descriptor number must remain
// dead after its entry is recycled for a new open.
func TestFreelistStaleAliasStaysClosed(t *testing.T) {
	fs := New()
	fs.WriteFile("/a", []byte("data"))
	fd, err := fs.Open("/a", "r")
	if err != nil {
		t.Fatal(err)
	}
	if err := fs.Close(fd); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.Open("/a", "r"); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.Read(fd, make([]byte, 1)); err == nil {
		t.Fatal("read through stale closed descriptor succeeded")
	}
	if err := fs.Close(fd); err == nil {
		t.Fatal("double close through stale descriptor succeeded")
	}
}
