// Package vfs implements the virtual filesystem and file-descriptor table
// that the ClosureX VM exposes to fuzzing targets. Targets read their test
// case through fopen("/input") / fread, exactly as the paper's benchmarks
// read their inputs from a file, and the FD table enforces the per-process
// descriptor limit whose exhaustion causes the false crashes persistent
// fuzzing is prone to (paper §4.2.2).
package vfs

import (
	"errors"
	"fmt"
	"sort"

	"closurex/internal/faultinject"
)

// InputPath is the well-known path under which each test case appears.
const InputPath = "/input"

// DefaultFDLimit mirrors a conservative RLIMIT_NOFILE. Persistent targets
// that leak handles will exhaust it within a few dozen iterations, which is
// precisely the pathology the FilePass exists to prevent.
const DefaultFDLimit = 64

// Whence values for Seek, matching C's SEEK_SET/SEEK_CUR/SEEK_END.
const (
	SeekSet = 0
	SeekCur = 1
	SeekEnd = 2
)

// VFS errors surfaced to the VM.
var (
	ErrNotFound    = errors.New("vfs: file not found")
	ErrFDExhausted = errors.New("vfs: file descriptor limit exhausted")
	ErrBadFD       = errors.New("vfs: bad file descriptor")
	ErrClosedFD    = errors.New("vfs: operation on closed descriptor")
)

// file is an in-memory file.
type file struct {
	data []byte
	// refs counts live descriptors referencing this file object, so the
	// per-execution SetInput can decide "reuse in place" in O(1) instead
	// of scanning the descriptor table.
	refs int
}

// OpenFile is one entry in the descriptor table.
type OpenFile struct {
	FD   int
	Path string
	pos  int
	f    *file
	// Init marks descriptors opened during target initialization; the
	// ClosureX harness rewinds these with Seek(0) instead of closing them
	// (the paper's initialization-handle optimization).
	Init   bool
	closed bool
	// Elided marks descriptors opened at a FileElide fopen site: the
	// interprocedural analysis proved the target closes them on every
	// path, so the harness expects none leaked at restore time (on
	// non-crashed iterations) and audits that instead of recording the
	// site in the fd table's leak bookkeeping.
	Elided bool
}

// FS is a process-private view of the filesystem plus its descriptor table.
type FS struct {
	files   map[string]*file
	fds     map[int]*OpenFile
	nextFD  int
	fdLimit int
	// opens counts every successful open over the lifetime of the FS, for
	// the correctness audit.
	opens int
	// inj, when armed, fails opens/closes on demand so tests can drive the
	// descriptor-exhaustion pathologies deterministically. Nil in
	// production.
	inj *faultinject.Injector
	// free recycles closed OpenFile entries so the steady-state
	// open/close-per-test-case cycle does not allocate. Entries are only
	// reachable through fds, so a closed entry has no outstanding aliases.
	free []*OpenFile
	// nLeaked / nElidedLeak are running counts of live non-init (and
	// additionally elided) descriptors, so the harness's per-iteration
	// leak audits are O(1) instead of descriptor-table scans.
	nLeaked     int
	nElidedLeak int
}

// New returns an empty filesystem with the default descriptor limit.
func New() *FS {
	return &FS{
		files:   make(map[string]*file),
		fds:     make(map[int]*OpenFile),
		nextFD:  3, // 0,1,2 are reserved, as in POSIX
		fdLimit: DefaultFDLimit,
	}
}

// SetFDLimit overrides the descriptor limit (tests use tiny limits).
func (fs *FS) SetFDLimit(n int) { fs.fdLimit = n }

// SetInjector arms fault injection for this filesystem (nil disarms).
func (fs *FS) SetInjector(inj *faultinject.Injector) { fs.inj = inj }

// WriteFile creates or replaces a file.
func (fs *FS) WriteFile(path string, data []byte) {
	fs.files[path] = &file{data: append([]byte(nil), data...)}
}

// SetInput installs the test case at InputPath. When no live descriptor
// still references the current input file — the steady state under a
// ClosureX harness, which closes leaked descriptors between iterations —
// the existing buffer is reused in place, making the per-execution install
// allocation-free. A leaked descriptor (persistent-naive pathology) keeps
// its stale view: the old file object is replaced, not overwritten.
func (fs *FS) SetInput(data []byte) {
	if f, ok := fs.files[InputPath]; ok && f.refs == 0 {
		f.data = append(f.data[:0], data...)
		return
	}
	fs.WriteFile(InputPath, data)
}

// ReadFile returns a copy of a file's contents.
func (fs *FS) ReadFile(path string) ([]byte, error) {
	f, ok := fs.files[path]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNotFound, path)
	}
	return append([]byte(nil), f.data...), nil
}

// Remove deletes a file; missing files are ignored.
func (fs *FS) Remove(path string) { delete(fs.files, path) }

// Open opens path for reading ("r") or writing ("w", truncates/creates).
// It returns the new descriptor number.
func (fs *FS) Open(path, mode string) (int, error) {
	if fs.inj.Should(faultinject.VFSOpen) {
		// Injected exhaustion: the same errno-shaped failure the target
		// would see when the real descriptor table fills up.
		return 0, fmt.Errorf("%w (%v)", ErrFDExhausted, faultinject.Err(faultinject.VFSOpen))
	}
	if len(fs.fds) >= fs.fdLimit {
		return 0, ErrFDExhausted
	}
	f, ok := fs.files[path]
	switch {
	case !ok && (mode == "w" || mode == "a"):
		f = &file{}
		fs.files[path] = f
	case !ok:
		return 0, fmt.Errorf("%w: %s", ErrNotFound, path)
	case mode == "w":
		f.data = f.data[:0]
	}
	fd := fs.nextFD
	fs.nextFD++
	var of *OpenFile
	if n := len(fs.free); n > 0 {
		of = fs.free[n-1]
		fs.free = fs.free[:n-1]
		*of = OpenFile{FD: fd, Path: path, f: f}
	} else {
		of = &OpenFile{FD: fd, Path: path, f: f}
	}
	if mode == "a" {
		of.pos = len(f.data)
	}
	fs.fds[fd] = of
	f.refs++
	fs.nLeaked++ // fresh descriptors are never init-persistent
	fs.opens++
	return fd, nil
}

func (fs *FS) lookup(fd int) (*OpenFile, error) {
	of, ok := fs.fds[fd]
	if !ok {
		return nil, fmt.Errorf("%w: %d", ErrBadFD, fd)
	}
	if of.closed {
		return nil, fmt.Errorf("%w: %d", ErrClosedFD, fd)
	}
	return of, nil
}

// Close releases a descriptor. Closing an unknown or already-closed
// descriptor is an error (it is a bug in the target).
func (fs *FS) Close(fd int) error {
	of, err := fs.lookup(fd)
	if err != nil {
		return err
	}
	if fs.inj.Should(faultinject.VFSClose) {
		// Injected close failure: the descriptor stays live, as EINTR/EIO
		// from close(2) can leave a process believing.
		return fmt.Errorf("vfs: close %d: %v", fd, faultinject.Err(faultinject.VFSClose))
	}
	of.closed = true
	delete(fs.fds, fd)
	of.f.refs--
	if !of.Init {
		fs.nLeaked--
		if of.Elided {
			fs.nElidedLeak--
		}
	}
	fs.free = append(fs.free, of)
	return nil
}

// Read copies up to len(dst) bytes from the descriptor's position.
func (fs *FS) Read(fd int, dst []byte) (int, error) {
	of, err := fs.lookup(fd)
	if err != nil {
		return 0, err
	}
	if of.pos >= len(of.f.data) {
		return 0, nil // EOF
	}
	n := copy(dst, of.f.data[of.pos:])
	of.pos += n
	return n, nil
}

// Getc returns the next byte, or -1 at EOF (fgetc semantics).
func (fs *FS) Getc(fd int) (int, error) {
	of, err := fs.lookup(fd)
	if err != nil {
		return 0, err
	}
	if of.pos >= len(of.f.data) {
		return -1, nil
	}
	b := of.f.data[of.pos]
	of.pos++
	return int(b), nil
}

// Write appends/overwrites at the descriptor's position.
func (fs *FS) Write(fd int, src []byte) (int, error) {
	of, err := fs.lookup(fd)
	if err != nil {
		return 0, err
	}
	end := of.pos + len(src)
	if end > len(of.f.data) {
		grown := make([]byte, end)
		copy(grown, of.f.data)
		of.f.data = grown
	}
	copy(of.f.data[of.pos:], src)
	of.pos = end
	return len(src), nil
}

// Seek repositions the descriptor and returns the new offset.
func (fs *FS) Seek(fd int, offset int64, whence int) (int64, error) {
	of, err := fs.lookup(fd)
	if err != nil {
		return 0, err
	}
	var base int64
	switch whence {
	case SeekSet:
		base = 0
	case SeekCur:
		base = int64(of.pos)
	case SeekEnd:
		base = int64(len(of.f.data))
	default:
		return 0, fmt.Errorf("vfs: bad whence %d", whence)
	}
	np := base + offset
	if np < 0 {
		return 0, fmt.Errorf("vfs: seek to negative offset %d", np)
	}
	of.pos = int(np)
	return np, nil
}

// Tell returns the current offset.
func (fs *FS) Tell(fd int) (int64, error) {
	of, err := fs.lookup(fd)
	if err != nil {
		return 0, err
	}
	return int64(of.pos), nil
}

// Size returns the current size of the file behind fd.
func (fs *FS) Size(fd int) (int64, error) {
	of, err := fs.lookup(fd)
	if err != nil {
		return 0, err
	}
	return int64(len(of.f.data)), nil
}

// OpenCount reports the number of live descriptors.
func (fs *FS) OpenCount() int { return len(fs.fds) }

// TotalOpens reports lifetime successful opens (audit metric).
func (fs *FS) TotalOpens() int { return fs.opens }

// LeakedFDs returns the live descriptors that were NOT opened during
// initialization, in ascending order — the set the ClosureX harness closes
// between test cases.
func (fs *FS) LeakedFDs() []int { return fs.AppendLeakedFDs(nil) }

// AppendLeakedFDs appends the leaked descriptors to dst in ascending order
// and returns it — the allocation-free variant used by the restore loop.
func (fs *FS) AppendLeakedFDs(dst []int) []int {
	start := len(dst)
	for fd, of := range fs.fds {
		if !of.Init {
			dst = append(dst, fd)
		}
	}
	sort.Ints(dst[start:])
	return dst
}

// LeakedCount reports how many live descriptors are not init-persistent.
// O(1): maintained incrementally by Open/Close/MarkInit.
func (fs *FS) LeakedCount() int { return fs.nLeaked }

// MarkElided flags fd as opened at a FileElide fopen site. Called by the
// VM right after the open; unknown descriptors are ignored.
func (fs *FS) MarkElided(fd int) {
	if of, ok := fs.fds[fd]; ok && !of.Elided {
		of.Elided = true
		if !of.Init {
			fs.nElidedLeak++
		}
	}
}

// ElidedLeakCount reports how many leaked (non-init, live) descriptors
// came from FileElide sites — each one contradicts a must-close proof and
// is surfaced by the harness's elision audit. O(1), like LeakedCount.
func (fs *FS) ElidedLeakCount() int { return fs.nElidedLeak }

// InitFDs returns the live initialization-time descriptors in ascending
// order — the set the harness rewinds rather than closes.
func (fs *FS) InitFDs() []int { return fs.AppendInitFDs(nil) }

// AppendInitFDs appends the init-time descriptors to dst in ascending order
// and returns it.
func (fs *FS) AppendInitFDs(dst []int) []int {
	start := len(dst)
	for fd, of := range fs.fds {
		if of.Init {
			dst = append(dst, fd)
		}
	}
	sort.Ints(dst[start:])
	return dst
}

// MarkInit flags every live descriptor as initialization state.
func (fs *FS) MarkInit() {
	for _, of := range fs.fds {
		of.Init = true
	}
	fs.nLeaked = 0
	fs.nElidedLeak = 0
}

// Reset closes every descriptor and removes every file except those in
// keep. Used by the fresh-process mechanism between test cases.
func (fs *FS) Reset(keep map[string][]byte) {
	fs.fds = make(map[int]*OpenFile)
	fs.nextFD = 3
	fs.files = make(map[string]*file)
	fs.nLeaked = 0
	fs.nElidedLeak = 0
	for p, d := range keep {
		fs.WriteFile(p, d)
	}
}

// Clone duplicates the filesystem view and descriptor table (forkserver
// child). File contents are copied lazily only for open files' backing
// stores; the cheap map copies model fd-table duplication in fork().
func (fs *FS) Clone() *FS {
	nf := &FS{
		files:       make(map[string]*file, len(fs.files)),
		fds:         make(map[int]*OpenFile, len(fs.fds)),
		nextFD:      fs.nextFD,
		fdLimit:     fs.fdLimit,
		opens:       fs.opens,
		inj:         fs.inj,
		nLeaked:     fs.nLeaked,
		nElidedLeak: fs.nElidedLeak,
	}
	for p, f := range fs.files {
		nf.files[p] = &file{data: append([]byte(nil), f.data...)}
	}
	for fd, of := range fs.fds {
		cp := *of
		cp.f = nf.files[of.Path]
		cp.f.refs++
		nf.fds[fd] = &cp
	}
	return nf
}

// Snapshot captures every file's contents (for dataflow-equivalence
// comparisons in the correctness study).
func (fs *FS) Snapshot() map[string][]byte {
	out := make(map[string][]byte, len(fs.files))
	for p, f := range fs.files {
		out[p] = append([]byte(nil), f.data...)
	}
	return out
}
