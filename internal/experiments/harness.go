package experiments

// Harness-quality experiment: every benchmark target is scored by the
// static harness audit (reachability, coverage geometry, dictionary
// liveness) and then fuzzed twice from the same trial seed — once with the
// hand-written dictionary alone and once with the statically harvested
// auto-dictionary merged in — to measure the coverage the harvested
// compare constants buy. The JSON emitter backs `make benchjson`
// (BENCH_harness.json). With the auto-dictionary disabled the campaign
// must be bit-identical to the historical stream; the bench cross-checks
// that by requiring every off-trial to reproduce the same edge count.

import (
	"encoding/json"
	"fmt"
	"os"
	"strings"
	"time"

	"closurex/internal/analysis/harnessaudit"
	"closurex/internal/core"
	"closurex/internal/targets"
)

// DictGainRow is one target's point of the harness-quality experiment.
type DictGainRow struct {
	Target string `json:"target"`
	// Static audit summary: the score card headline plus the dictionary
	// census behind it.
	Score          float64 `json:"score"`
	DictTokens     int     `json:"dict_tokens"`
	LiveDictTokens int     `json:"live_dict_tokens"`
	AutoDictTokens int     `json:"auto_dict_tokens"`
	// Throughput and coverage of the same campaign (same trial seed, same
	// execs) with the auto-dictionary off and on. EdgeDelta is the
	// per-target coverage delta the harvested tokens buy; DeterministicOff
	// tripwires any divergence between off-trials, which would mean the
	// auto-dictionary plumbing perturbed the baseline stream.
	ExecsPerSecOff   float64 `json:"execs_per_sec_off"`
	ExecsPerSecOn    float64 `json:"execs_per_sec_on"`
	EdgesOff         int     `json:"edges_off"`
	EdgesOn          int     `json:"edges_on"`
	EdgeDelta        int     `json:"edge_delta"`
	DeterministicOff bool    `json:"deterministic_off"`
}

// DictGainReport is the JSON envelope BENCH_harness.json carries.
type DictGainReport struct {
	Mechanism      string        `json:"mechanism"`
	ExecsPerTarget int64         `json:"execs_per_target"`
	Rows           []DictGainRow `json:"rows"`
	// Aggregates over all targets.
	MeanScore       float64 `json:"mean_score"`
	TotalAutoTokens int     `json:"total_auto_tokens"`
	TotalEdgeDelta  int     `json:"total_edge_delta"`
}

// dictGainTrials is how many times each off/on point is timed; the fastest
// trial is reported (min-of-N filters scheduler and GC noise, as in the
// other sweeps), and every off-trial must reproduce the same edge count.
const dictGainTrials = 3

// RunDictGain audits every registered target, then times execsPerTarget
// executions of the same campaign with the auto-dictionary off and on.
func RunDictGain(execsPerTarget int64, seed uint64) (*DictGainReport, error) {
	if execsPerTarget <= 0 {
		execsPerTarget = 10000
	}
	rep := &DictGainReport{
		Mechanism:      MechClosureX,
		ExecsPerTarget: execsPerTarget,
	}
	for _, t := range targets.All() {
		row := DictGainRow{Target: t.Name}

		// Static side: one instrumented build feeds the harness audit.
		inst, err := core.NewInstance(t, MechClosureX, core.InstanceOptions{
			TrialSeed: seed,
		})
		if err != nil {
			return nil, fmt.Errorf("experiments: %s: %w", t.Name, err)
		}
		dict := make([][]byte, 0, len(t.Dict))
		for _, s := range t.Dict {
			dict = append(dict, []byte(s))
		}
		card, _ := harnessaudit.Audit(t.Name, inst.Module, harnessaudit.Options{Dict: dict})
		inst.Close()
		row.Score = card.Score
		row.DictTokens = card.DictTokens
		row.LiveDictTokens = card.LiveDictTokens
		row.AutoDictTokens = card.AutoDictTokens

		// Dynamic side: identical campaigns (same trial seed) with and
		// without the harvested tokens, best of N trials each.
		row.DeterministicOff = true
		for i, auto := range []bool{false, true} {
			best, edges := 0.0, 0
			for trial := 0; trial < dictGainTrials; trial++ {
				ti, err := core.NewInstance(t, MechClosureX, core.InstanceOptions{
					TrialSeed:         seed,
					AutoDict:          auto,
					DeterministicRand: true,
				})
				if err != nil {
					return nil, fmt.Errorf("experiments: %s auto-dict=%v: %w", t.Name, auto, err)
				}
				start := time.Now()
				ti.Driver().RunExecs(execsPerTarget)
				elapsed := time.Since(start).Seconds()
				execs := ti.Driver().Execs()
				got := ti.Driver().Edges()
				ti.Close()
				if eps := float64(execs) / elapsed; elapsed > 0 && eps > best {
					best = eps
				}
				if trial == 0 {
					edges = got
				} else if got != edges && !auto {
					row.DeterministicOff = false
				}
			}
			if i == 0 {
				row.ExecsPerSecOff, row.EdgesOff = best, edges
			} else {
				row.ExecsPerSecOn, row.EdgesOn = best, edges
			}
		}
		row.EdgeDelta = row.EdgesOn - row.EdgesOff

		rep.Rows = append(rep.Rows, row)
		rep.MeanScore += row.Score
		rep.TotalAutoTokens += row.AutoDictTokens
		rep.TotalEdgeDelta += row.EdgeDelta
	}
	if n := len(rep.Rows); n > 0 {
		rep.MeanScore /= float64(n)
	}
	return rep, nil
}

// FormatDictGain renders the harness-quality report as an aligned table.
func FormatDictGain(rep *DictGainReport) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Harness audit and auto-dictionary gain under %s (%d execs per point):\n",
		rep.Mechanism, rep.ExecsPerTarget)
	fmt.Fprintf(&b, "  %-16s %6s %9s %5s %9s %9s %6s %6s %6s %5s\n",
		"target", "score", "dict l/n", "auto", "off ex/s", "on ex/s",
		"edges-", "edges+", "delta", "det")
	for _, r := range rep.Rows {
		det := "ok"
		if !r.DeterministicOff {
			det = "DIFF"
		}
		fmt.Fprintf(&b, "  %-16s %6.1f %5d/%-3d %5d %9.0f %9.0f %6d %6d %+6d %5s\n",
			r.Target, r.Score, r.LiveDictTokens, r.DictTokens, r.AutoDictTokens,
			r.ExecsPerSecOff, r.ExecsPerSecOn, r.EdgesOff, r.EdgesOn, r.EdgeDelta, det)
	}
	fmt.Fprintf(&b, "  total: mean score %.1f/100; %d auto-dict tokens harvested; %+d edges from the auto-dictionary\n",
		rep.MeanScore, rep.TotalAutoTokens, rep.TotalEdgeDelta)
	return b.String()
}

// WriteDictGainJSON writes the report to path as indented JSON (the
// BENCH_harness.json artifact).
func WriteDictGainJSON(path string, rep *DictGainReport) error {
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
