package experiments

// Compiled-tier speedup experiment: every registered target executed
// through the closurex mechanism under both VM backends — the reference
// interpreter and the compiled closure-chain tier — measuring raw
// execution throughput over the seed corpus and cross-checking that the
// two backends produce bit-identical observables on the way. The JSON
// emitter backs `make benchjson` (BENCH_compile.json) so the compiled
// tier's speedup is tracked numerically and its identity guarantee is
// re-asserted on every record.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"os"
	"runtime"
	"strings"
	"time"

	"closurex/internal/core"
	"closurex/internal/targets"
	"closurex/internal/vm"
)

// CompileRow is one target's interp-vs-compiled measurement.
type CompileRow struct {
	Target              string  `json:"target"`
	Execs               int64   `json:"execs_per_backend"`
	InterpExecsPerSec   float64 `json:"interp_execs_per_sec"`
	CompiledExecsPerSec float64 `json:"compiled_execs_per_sec"`
	Speedup             float64 `json:"speedup"`
	// Identical reports the inline differential check: every seed executed
	// once per backend in trace mode produced bit-identical coverage
	// bitmaps, path hashes, instruction counts and fault verdicts.
	Identical bool `json:"identical"`
}

// CompileReport is the JSON envelope BENCH_compile.json carries.
type CompileReport struct {
	Mechanism      string       `json:"mechanism"`
	ExecsPerTarget int64        `json:"execs_per_target"`
	GOMAXPROCS     int          `json:"gomaxprocs"`
	GeomeanSpeedup float64      `json:"geomean_speedup"`
	AllIdentical   bool         `json:"all_identical"`
	Rows           []CompileRow `json:"rows"`
	// Transval carries the static certification report when the benchmark
	// ran with -transval (experiments.AttachTransvalJSON merges it without
	// disturbing the speedup rows).
	Transval *TransvalReport `json:"transval,omitempty"`
}

// measureBackend builds a closurex-mechanism instance on the given backend
// and measures raw execution throughput: the seed corpus replayed
// round-robin for execs iterations after one warmup round. This times the
// per-exec hot path the backend accelerates (execute + restore), without
// campaign-side mutation noise.
func measureBackend(t *targets.Target, backend string, execs int64, seed uint64) (float64, error) {
	inst, err := core.NewInstance(t, MechClosureX, core.InstanceOptions{
		TrialSeed:         seed,
		DeterministicRand: true,
		Backend:           backend,
	})
	if err != nil {
		return 0, err
	}
	defer inst.Close()
	seeds := t.Seeds()
	if len(seeds) == 0 {
		return 0, fmt.Errorf("target %s has no seeds", t.Name)
	}
	for _, in := range seeds {
		inst.Mech.Execute(in)
	}
	start := time.Now()
	for i := int64(0); i < execs; i++ {
		inst.Mech.Execute(seeds[int(i)%len(seeds)])
	}
	elapsed := time.Since(start)
	if elapsed <= 0 {
		return 0, fmt.Errorf("target %s: zero elapsed time", t.Name)
	}
	return float64(execs) / elapsed.Seconds(), nil
}

// backendsIdentical replays the seed corpus once per backend in trace mode
// and compares every observable the fuzzer keys on.
func backendsIdentical(t *targets.Target, seed uint64) (bool, error) {
	type obs struct {
		res vm.Result
		cov []byte
	}
	run := func(backend string) ([]obs, error) {
		inst, err := core.NewInstance(t, MechClosureX, core.InstanceOptions{
			TrialSeed:         seed,
			DeterministicRand: true,
			TraceEdges:        true,
			Backend:           backend,
		})
		if err != nil {
			return nil, err
		}
		defer inst.Close()
		var out []obs
		for _, in := range t.Seeds() {
			res := inst.Mech.Execute(in)
			out = append(out, obs{res, append([]byte(nil), inst.CovMap...)})
		}
		return out, nil
	}
	oi, err := run(vm.InterpBackend)
	if err != nil {
		return false, err
	}
	oc, err := run(CompileBackendName)
	if err != nil {
		return false, err
	}
	if len(oi) != len(oc) {
		return false, nil
	}
	for k := range oi {
		a, b := oi[k], oc[k]
		if a.res.Ret != b.res.Ret || a.res.Exited != b.res.Exited ||
			a.res.Instrs != b.res.Instrs ||
			a.res.PathHash != b.res.PathHash || a.res.PathLen != b.res.PathLen {
			return false, nil
		}
		af, bf := a.res.Fault, b.res.Fault
		if (af == nil) != (bf == nil) {
			return false, nil
		}
		if af != nil && af.Key() != bf.Key() {
			return false, nil
		}
		if !bytes.Equal(a.cov, b.cov) {
			return false, nil
		}
	}
	return true, nil
}

// CompileBackendName mirrors core.CompiledBackend for the experiment's
// reports.
const CompileBackendName = core.CompiledBackend

// RunCompileSpeedup measures the compiled tier against the interpreter on
// every registered target (the 10 Table 4 benchmarks plus the sanitizer
// fixture) and reports per-target throughput, the geometric-mean speedup,
// and the inline identity verdicts.
func RunCompileSpeedup(execsPerTarget int64, seed uint64) (*CompileReport, error) {
	if execsPerTarget <= 0 {
		execsPerTarget = 20000
	}
	rep := &CompileReport{
		Mechanism:      MechClosureX,
		ExecsPerTarget: execsPerTarget,
		GOMAXPROCS:     runtime.GOMAXPROCS(0),
		AllIdentical:   true,
	}
	var logSum float64
	for _, t := range targets.All() {
		interp, err := measureBackend(t, vm.InterpBackend, execsPerTarget, seed)
		if err != nil {
			return nil, fmt.Errorf("experiments: %s interp: %w", t.Name, err)
		}
		compiled, err := measureBackend(t, CompileBackendName, execsPerTarget, seed)
		if err != nil {
			return nil, fmt.Errorf("experiments: %s compiled: %w", t.Name, err)
		}
		ident, err := backendsIdentical(t, seed)
		if err != nil {
			return nil, fmt.Errorf("experiments: %s identity: %w", t.Name, err)
		}
		row := CompileRow{
			Target:              t.Name,
			Execs:               execsPerTarget,
			InterpExecsPerSec:   interp,
			CompiledExecsPerSec: compiled,
			Speedup:             compiled / interp,
			Identical:           ident,
		}
		rep.AllIdentical = rep.AllIdentical && ident
		logSum += math.Log(row.Speedup)
		rep.Rows = append(rep.Rows, row)
	}
	if len(rep.Rows) > 0 {
		rep.GeomeanSpeedup = math.Exp(logSum / float64(len(rep.Rows)))
	}
	return rep, nil
}

// FormatCompile renders the speedup report as an aligned text table.
func FormatCompile(rep *CompileReport) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Compiled-tier speedup: %s mechanism, %d execs per backend per target (GOMAXPROCS=%d)\n",
		rep.Mechanism, rep.ExecsPerTarget, rep.GOMAXPROCS)
	fmt.Fprintf(&b, "  %-14s %14s %14s %9s %10s\n", "target", "interp/s", "compiled/s", "speedup", "identical")
	for _, r := range rep.Rows {
		fmt.Fprintf(&b, "  %-14s %14.0f %14.0f %8.2fx %10v\n",
			r.Target, r.InterpExecsPerSec, r.CompiledExecsPerSec, r.Speedup, r.Identical)
	}
	fmt.Fprintf(&b, "  geomean speedup: %.2fx (all identical: %v)\n", rep.GeomeanSpeedup, rep.AllIdentical)
	return b.String()
}

// WriteCompileJSON writes the report to path as indented JSON (the
// BENCH_compile.json artifact).
func WriteCompileJSON(path string, rep *CompileReport) error {
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
