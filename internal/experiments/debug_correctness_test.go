package experiments

import (
	"testing"

	"closurex/internal/core"
	"closurex/internal/fuzz"
	"closurex/internal/harness"
	"closurex/internal/passes"
	"closurex/internal/targets"
	"closurex/internal/vm"
)

// TestDebugFreetypeMismatch reproduces the correctness-study flow for
// freetype and, on any dataflow mismatch, reports exactly which component
// diverged. It acts as a diagnostic net for regressions in the
// nondeterminism masking.
func TestDebugFreetypeMismatch(t *testing.T) {
	if testing.Short() {
		t.Skip("diagnostic")
	}
	tg := "freetype"
	mod, err := core.Build("ttflite.c", mustTarget(t, tg).Source, core.ClosureX)
	if err != nil {
		t.Fatal(err)
	}
	queue, err := fuzzQueue(mustTarget(t, tg), 1500, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(queue) > 12 {
		queue = queue[:12]
	}
	cxVM, err := vm.New(mod, vm.Options{TraceEdges: true})
	if err != nil {
		t.Fatal(err)
	}
	h, err := harness.New(cxVM, harness.FullRestore())
	if err != nil {
		t.Fatal(err)
	}
	rng := fuzz.NewRNG(5 ^ 0xabcdef)
	for ci, input := range queue {
		gt, err := groundTruth(mod, input, 16)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 120; i++ {
			h.RunOne(queue[rng.Intn(len(queue))])
		}
		cxVM.SetInput(input)
		res := cxVM.Call(passes.TargetMain)
		cx := captureState(cxVM, res)
		h.Restore()
		if gt.dataflowMatches(cx) {
			continue
		}
		b := gt.base
		t.Errorf("case %d mismatch: crashed %v/%v exited %v/%v ret %d/%d chunks %d/%d bytes %d/%d fds %d/%d seclen %d/%d cfNondet=%v",
			ci, b.crashed, cx.crashed, b.exited, cx.exited, b.ret, cx.ret,
			b.liveChunks, cx.liveChunks, b.liveBytes, cx.liveBytes,
			b.openFDs, cx.openFDs, len(b.section), len(cx.section), gt.cfNondet)
		for i := range b.section {
			if !gt.mask[i] && b.section[i] != cx.section[i] {
				t.Errorf("  byte %d: fresh %#x vs cx %#x", i, b.section[i], cx.section[i])
			}
		}
	}
}

func mustTarget(t *testing.T, name string) *targets.Target {
	tg := targets.Get(name)
	if tg == nil {
		t.Fatal("no target")
	}
	return tg
}
