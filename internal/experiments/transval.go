package experiments

// Translation-validation experiment: every registered target built through
// the full ClosureX pipeline, compiled to the closure-chain tier, and the
// resulting certificate checked against the IR by analysis/transval. The
// report records per-target certification wall time and the certified
// surface (functions, closures, fusions, elisions, budget runs) so the
// static-equivalence gate's cost and coverage are tracked alongside the
// compiled tier's speedup in BENCH_compile.json.

import (
	"encoding/json"
	"fmt"
	"os"
	"strings"
	"time"

	"closurex/internal/analysis/transval"
	"closurex/internal/core"
	"closurex/internal/targets"
	"closurex/internal/vm/compile"
)

// TransvalRow is one target's certification measurement.
type TransvalRow struct {
	Target string `json:"target"`
	// Certified surface, from the accepted certificate.
	Funcs  int `json:"funcs"`
	PCs    int `json:"closures"`
	Fused  int `json:"fused"`
	Elided int `json:"elided"`
	Runs   int `json:"budget_runs"`
	// CertMicros is the wall time to compile the module, emit the
	// certificate and check every obligation, in microseconds.
	CertMicros int64 `json:"cert_micros"`
	// Diags counts transval findings; Certified is Diags == 0.
	Diags     int  `json:"diags"`
	Certified bool `json:"certified"`
}

// TransvalReport aggregates the per-target certifications.
type TransvalReport struct {
	Variant      string        `json:"variant"`
	AllCertified bool          `json:"all_certified"`
	Rows         []TransvalRow `json:"rows"`
}

// RunTransval certifies every registered target's compiled program.
func RunTransval() (*TransvalReport, error) {
	rep := &TransvalReport{Variant: core.ClosureX.String(), AllCertified: true}
	for _, t := range targets.All() {
		// Build fresh per target so the timing includes a cold compile +
		// certificate emission, not a program-cache hit.
		mod, err := core.BuildWith(t.Short+".c", t.Source, core.BuildConfig{Variant: core.ClosureX})
		if err != nil {
			return nil, fmt.Errorf("experiments: transval build %s: %w", t.Name, err)
		}
		start := time.Now()
		ds := transval.Check(mod)
		elapsed := time.Since(start)
		row := TransvalRow{
			Target:     t.Name,
			CertMicros: elapsed.Microseconds(),
			Diags:      len(ds),
			Certified:  len(ds) == 0,
		}
		if row.Certified {
			if cert, cerr := compile.CertFor(mod); cerr == nil {
				st := transval.Summarize(cert)
				row.Funcs, row.PCs, row.Fused, row.Elided, row.Runs =
					st.Funcs, st.PCs, st.Fused, st.Elided, st.Runs
			}
		}
		rep.AllCertified = rep.AllCertified && row.Certified
		rep.Rows = append(rep.Rows, row)
	}
	return rep, nil
}

// FormatTransval renders the certification report as an aligned text table.
func FormatTransval(rep *TransvalReport) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Compiled-tier translation validation: %s pipeline, %d target(s)\n",
		rep.Variant, len(rep.Rows))
	fmt.Fprintf(&b, "  %-14s %6s %9s %6s %7s %6s %9s %10s\n",
		"target", "funcs", "closures", "fused", "elided", "runs", "cert(us)", "certified")
	for _, r := range rep.Rows {
		fmt.Fprintf(&b, "  %-14s %6d %9d %6d %7d %6d %9d %10v\n",
			r.Target, r.Funcs, r.PCs, r.Fused, r.Elided, r.Runs, r.CertMicros, r.Certified)
	}
	fmt.Fprintf(&b, "  all certified: %v\n", rep.AllCertified)
	return b.String()
}

// AttachTransvalJSON merges the certification report into the
// BENCH_compile.json envelope at path: the existing speedup rows are
// preserved and the "transval" field is replaced. A missing file yields an
// envelope carrying only the transval section, so certification can be
// recorded without rerunning the (much slower) speedup sweep.
func AttachTransvalJSON(path string, rep *TransvalReport) error {
	env := &CompileReport{}
	if data, err := os.ReadFile(path); err == nil {
		if uerr := json.Unmarshal(data, env); uerr != nil {
			return fmt.Errorf("experiments: %s: %w", path, uerr)
		}
	} else if !os.IsNotExist(err) {
		return err
	}
	env.Transval = rep
	return WriteCompileJSON(path, env)
}
