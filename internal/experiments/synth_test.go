package experiments

import (
	"fmt"
	"testing"
)

// TestRunSynthGainSmall pins the experiment's contract at a small exec
// budget: synthesis succeeds for at least 3 benchmark targets, zero CLX130
// certification failures, and every synthesized campaign's merged coverage
// strictly contains the manual-only run.
func TestRunSynthGainSmall(t *testing.T) {
	rep, err := RunSynthGain(200, 1)
	if err != nil {
		t.Fatalf("RunSynthGain: %v", err)
	}
	if rep.CLX130 != 0 {
		t.Fatalf("CLX130 certification failures: %d", rep.CLX130)
	}
	if rep.TargetsSynthesized < 3 {
		t.Fatalf("synthesized %d targets, want >= 3", rep.TargetsSynthesized)
	}
	for _, r := range rep.Rows {
		if r.Synthesized && !r.StrictSuperset {
			t.Errorf("%s: synthesized but merged coverage is not a strict superset (manual=%d synth=%d merged=%d)",
				r.Target, r.ManualCells, r.SynthCells, r.MergedCells)
		}
		if r.Synthesized && r.MergedCells < r.ManualCells {
			t.Errorf("%s: merged %d < manual %d", r.Target, r.MergedCells, r.ManualCells)
		}
	}
}

// TestRunSynthGainDeterministic: two runs from the same seed must agree
// cell for cell — the campaigns are deterministic and synthesis is static.
func TestRunSynthGainDeterministic(t *testing.T) {
	a, err := RunSynthGain(100, 7)
	if err != nil {
		t.Fatalf("first run: %v", err)
	}
	b, err := RunSynthGain(100, 7)
	if err != nil {
		t.Fatalf("second run: %v", err)
	}
	for i := range a.Rows {
		if a.Rows[i].Target != b.Rows[i].Target {
			t.Fatalf("row %d: target %q vs %q", i, a.Rows[i].Target, b.Rows[i].Target)
		}
		ra, rb := a.Rows[i], b.Rows[i]
		ra.Codes, rb.Codes = nil, nil
		if fmt.Sprintf("%+v", ra) != fmt.Sprintf("%+v", rb) {
			t.Errorf("row %d (%s) diverged between identical runs:\n  %+v\n  %+v", i, a.Rows[i].Target, ra, rb)
		}
	}
}
