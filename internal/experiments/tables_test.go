package experiments

import (
	"strings"
	"testing"
	"time"
)

// Synthetic-evaluation tests: exercise the table derivations and
// formatters without running campaigns.

func syntheticEval() *Evaluation {
	cfg := Config{Targets: []string{"gpmf-parser", "zlib"}, Trials: 5,
		TrialDuration: time.Second, BaseSeed: 1}
	e := &Evaluation{Cfg: cfg}
	mk := func(target, mech string, trial int, execs int64, edges int, bugs map[string]time.Duration) TrialResult {
		return TrialResult{
			Target: target, Mechanism: mech, Trial: trial,
			Execs: execs, Edges: edges, TotalEdges: 200,
			Duration: time.Second, BugTimes: bugs,
		}
	}
	for trial := 0; trial < 5; trial++ {
		// gpmf: ClosureX ~3.5x faster, finds the bug in every trial, the
		// forkserver in 2 of 5 and slower.
		cxBugs := map[string]time.Duration{"gpmf-div-zero-scal": time.Duration(100+trial) * time.Millisecond}
		var fsBugs map[string]time.Duration
		if trial < 2 {
			fsBugs = map[string]time.Duration{"gpmf-div-zero-scal": time.Duration(400+trial) * time.Millisecond}
		}
		e.Results = append(e.Results,
			mk("gpmf-parser", MechClosureX, trial, 3500+int64(trial), 120+trial, cxBugs),
			mk("gpmf-parser", MechAFLpp, trial, 1000+int64(trial), 110+trial, fsBugs),
			mk("zlib", MechClosureX, trial, 4000+int64(trial), 90, nil),
			mk("zlib", MechAFLpp, trial, 1000+int64(trial), 90, nil),
		)
	}
	return e
}

func TestTable5FromSyntheticData(t *testing.T) {
	e := syntheticEval()
	rows := Table5(e)
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	g := rows[0]
	if g.Benchmark != "gpmf-parser" {
		t.Fatalf("row order: %s", g.Benchmark)
	}
	if g.Speedup < 3.4 || g.Speedup > 3.6 {
		t.Fatalf("speedup = %v", g.Speedup)
	}
	// Complete separation with 5v5 trials: the paper's 0.0079.
	if g.P < 0.0079 || g.P > 0.008 {
		t.Fatalf("p = %v, want 0.0079", g.P)
	}
	out := FormatTable5(rows)
	if !strings.Contains(out, "3.50x") && !strings.Contains(out, "3.49x") {
		t.Fatalf("formatted speedup missing:\n%s", out)
	}
}

func TestTable6FromSyntheticData(t *testing.T) {
	e := syntheticEval()
	rows := Table6(e)
	g := rows[0]
	// 122/200 vs 112/200 on average => ~8.9% improvement.
	if g.Improvement < 8 || g.Improvement > 10 {
		t.Fatalf("improvement = %v", g.Improvement)
	}
	z := rows[1]
	if z.Improvement != 0 || z.P < 0.9 {
		t.Fatalf("identical coverage row: %+v", z)
	}
}

func TestTable7FromSyntheticData(t *testing.T) {
	e := syntheticEval()
	rows := Table7(e)
	// gpmf-parser has six planted bugs registered; only one appears in the
	// synthetic data, others must render as (0).
	var hit *Table7Row
	zeroRows := 0
	for i := range rows {
		if rows[i].BugID == "gpmf-div-zero-scal" {
			hit = &rows[i]
		} else if rows[i].ClosureXTrials == 0 && rows[i].AFLppTrials == 0 {
			zeroRows++
		}
	}
	if hit == nil {
		t.Fatal("synthetic bug row missing")
	}
	if hit.ClosureXTrials != 5 || hit.AFLppTrials != 2 {
		t.Fatalf("trials: %+v", hit)
	}
	if hit.ClosureXTime >= hit.AFLppTime {
		t.Fatalf("time ordering: %+v", hit)
	}
	if zeroRows != 5 {
		t.Fatalf("zero rows = %d, want 5", zeroRows)
	}
	out := FormatTable7(rows)
	if !strings.Contains(out, "(5)") || !strings.Contains(out, "(2)") {
		t.Fatalf("format:\n%s", out)
	}
	if !strings.Contains(out, "faster on co-discovered bugs") {
		t.Fatalf("aggregate line missing:\n%s", out)
	}
}

func TestBugStatsMedian(t *testing.T) {
	rs := []TrialResult{
		{BugTimes: map[string]time.Duration{"b": 100 * time.Millisecond}},
		{BugTimes: map[string]time.Duration{"b": 300 * time.Millisecond}},
		{BugTimes: map[string]time.Duration{"b": 200 * time.Millisecond}},
		{BugTimes: map[string]time.Duration{}},
	}
	d, n := bugStats(rs, "b")
	if n != 3 || d != 200*time.Millisecond {
		t.Fatalf("bugStats = %v, %d", d, n)
	}
	if d, n := bugStats(rs, "missing"); d != 0 || n != 0 {
		t.Fatalf("missing bug: %v %d", d, n)
	}
}

func TestCellsFilter(t *testing.T) {
	e := syntheticEval()
	if got := len(e.cells("gpmf-parser", MechClosureX)); got != 5 {
		t.Fatalf("cells = %d", got)
	}
	if got := len(e.cells("nope", MechClosureX)); got != 0 {
		t.Fatalf("cells for unknown = %d", got)
	}
}

func TestDataflowEqualBranches(t *testing.T) {
	base := probeState{
		section: []byte{1, 2, 3}, liveChunks: 1, liveBytes: 10,
		openFDs: 1, ret: 7, pathHash: 99, pathLen: 3,
	}
	same := base
	if !dataflowEqual(base, same, nil) {
		t.Fatal("identical states unequal")
	}
	cases := []func(*probeState){
		func(p *probeState) { p.crashed = true },
		func(p *probeState) { p.exited = true },
		func(p *probeState) { p.ret = 8 },
		func(p *probeState) { p.liveChunks = 2 },
		func(p *probeState) { p.liveBytes = 11 },
		func(p *probeState) { p.openFDs = 0 },
		func(p *probeState) { p.section = []byte{1, 2, 4} },
		func(p *probeState) { p.section = []byte{1, 2} },
	}
	for i, mut := range cases {
		got := base
		got.section = append([]byte(nil), base.section...)
		mut(&got)
		if dataflowEqual(base, got, nil) {
			t.Errorf("mutation %d not detected", i)
		}
	}
	// Masked byte differences are tolerated.
	got := base
	got.section = []byte{1, 9, 3}
	if !dataflowEqual(base, got, []bool{false, true, false}) {
		t.Fatal("masked diff rejected")
	}
	if dataflowEqual(base, got, []bool{false, false, false}) {
		t.Fatal("unmasked diff accepted")
	}
	// Exit-code comparison only applies to exited runs.
	a := probeState{exited: true, exitCode: 1, section: []byte{}}
	b2 := probeState{exited: true, exitCode: 2, section: []byte{}}
	if dataflowEqual(a, b2, nil) {
		t.Fatal("exit codes ignored")
	}
}
