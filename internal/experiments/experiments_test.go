package experiments

import (
	"strings"
	"testing"
	"time"
)

// smallConfig keeps unit-test runtime reasonable: 2 targets (one buggy,
// one clean), 3 trials, short duration.
func smallConfig() Config {
	return Config{
		TrialDuration: 400 * time.Millisecond,
		Trials:        3,
		Targets:       []string{"gpmf-parser", "giftext"},
		BaseSeed:      7,
	}
}

func TestConfigValidation(t *testing.T) {
	cfg := Config{Targets: []string{"not-a-target"}}
	if err := cfg.normalize(); err == nil {
		t.Fatal("bad target accepted")
	}
	def := DefaultConfig()
	if err := def.normalize(); err != nil {
		t.Fatal(err)
	}
	if len(def.Targets) != 10 || def.Trials != 5 {
		t.Fatalf("defaults: %+v", def)
	}
}

func TestEvaluationShape(t *testing.T) {
	if testing.Short() {
		t.Skip("evaluation run")
	}
	eval, err := RunEvaluation(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(eval.Results) != 2*2*3 {
		t.Fatalf("results = %d, want 12", len(eval.Results))
	}

	t5 := Table5(eval)
	if len(t5) != 2 {
		t.Fatalf("table5 rows = %d", len(t5))
	}
	for _, r := range t5 {
		if r.ClosureX <= 0 || r.AFLpp <= 0 {
			t.Fatalf("%s: empty cells %+v", r.Benchmark, r)
		}
		// The headline result: ClosureX executes more test cases.
		if r.Speedup <= 1.0 {
			t.Errorf("%s: speedup %.2f, want > 1 (ClosureX must win)", r.Benchmark, r.Speedup)
		}
		if r.P <= 0 || r.P > 1 {
			t.Errorf("%s: p = %v", r.Benchmark, r.P)
		}
	}
	out5 := FormatTable5(t5)
	if !strings.Contains(out5, "Average") || !strings.Contains(out5, "gpmf-parser") {
		t.Fatalf("FormatTable5:\n%s", out5)
	}

	t6 := Table6(eval)
	if len(t6) != 2 {
		t.Fatalf("table6 rows = %d", len(t6))
	}
	for _, r := range t6 {
		if r.ClosureX <= 0 || r.ClosureX > 100 || r.AFLpp <= 0 {
			t.Errorf("%s: coverage out of range: %+v", r.Benchmark, r)
		}
		// Coverage must not be worse (same fuzzer, more execs).
		if r.ClosureX < r.AFLpp*0.95 {
			t.Errorf("%s: ClosureX coverage %.2f%% well below AFL++ %.2f%%",
				r.Benchmark, r.ClosureX, r.AFLpp)
		}
	}
	if !strings.Contains(FormatTable6(t6), "% Improvement") {
		t.Fatal("FormatTable6 header")
	}

	t7 := Table7(eval)
	if len(t7) != 6 { // gpmf-parser's six planted bugs; giftext is clean
		t.Fatalf("table7 rows = %d, want 6", len(t7))
	}
	foundAny := false
	for _, r := range t7 {
		if r.ClosureXTrials > 0 {
			foundAny = true
		}
		if r.ClosureXTrials > 3 || r.AFLppTrials > 3 {
			t.Fatalf("trials found exceeds trial count: %+v", r)
		}
	}
	if !foundAny {
		t.Fatal("no planted bug found in any trial; budget too small or fuzzer broken")
	}
	out7 := FormatTable7(t7)
	if !strings.Contains(out7, "gpmf-div-zero-scal") {
		t.Fatalf("FormatTable7:\n%s", out7)
	}
}

func TestTable3And4Render(t *testing.T) {
	t3 := Table3()
	for _, pass := range []string{"RenameMainPass", "HeapPass", "FilePass", "GlobalPass", "ExitPass"} {
		if !strings.Contains(t3, pass) {
			t.Errorf("Table3 missing %s", pass)
		}
	}
	t4 := Table4()
	for _, tgt := range []string{"bsdtar", "libpcap", "gpmf-parser", "libbpf", "freetype",
		"giftext", "zlib", "libdwarf", "c-blosc2", "md4c"} {
		if !strings.Contains(t4, tgt) {
			t.Errorf("Table4 missing %s", tgt)
		}
	}
}

func TestSpectrumOrdering(t *testing.T) {
	if testing.Short() {
		t.Skip("spectrum run")
	}
	rows, err := RunSpectrum(512, 200)
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]float64{}
	for _, r := range rows {
		byName[r.Mechanism] = r.NsPerExec
	}
	if !(byName["closurex"] < byName["forkserver"] && byName["forkserver"] < byName["fresh"]) {
		t.Fatalf("spectrum ordering violated: %+v", byName)
	}
	// Naive persistent is the raw-speed ceiling; ClosureX must be close
	// to it (the "near-persistent performance" claim) — within 3x.
	if byName["closurex"] > 3*byName["persistent-naive"] {
		t.Fatalf("closurex %.0f ns vs persistent %.0f ns: not near-persistent",
			byName["closurex"], byName["persistent-naive"])
	}
	out := FormatSpectrum(rows, 512)
	if !strings.Contains(out, "faster than fresh") {
		t.Fatalf("FormatSpectrum:\n%s", out)
	}
}

func TestStaleStateDemo(t *testing.T) {
	rep, err := RunStaleStateDemo()
	if err != nil {
		t.Fatal(err)
	}
	if !rep.FreshCrashes {
		t.Fatal("ground truth: crash input does not crash a fresh process")
	}
	if !rep.NaiveMissedCrash {
		t.Fatal("naive persistent did not miss the crash (stale flag had no effect)")
	}
	if !rep.ClosureXCrashes {
		t.Fatal("ClosureX missed the crash after the flag input")
	}
	if rep.NaiveFalseCrashAfter == 0 {
		t.Fatal("naive persistent never false-crashed from FD exhaustion")
	}
	if rep.ClosureXFalseCrash {
		t.Fatal("ClosureX false-crashed")
	}
	if !rep.Correct() || rep.String() == "" {
		t.Fatalf("report: %s", rep)
	}
}

func TestSectionTransformation(t *testing.T) {
	out, err := SectionTransformation("md4c")
	if err != nil {
		t.Fatal(err)
	}
	before := out[:strings.Index(out, "after the Global pass")]
	after := out[strings.Index(out, "after the Global pass"):]
	if strings.Contains(before, "closure_global_section") {
		t.Fatal("closure section present before the pass")
	}
	if !strings.Contains(after, "closure_global_section") {
		t.Fatal("closure section missing after the pass")
	}
	if _, err := SectionTransformation("nope"); err == nil {
		t.Fatal("unknown target accepted")
	}
}

func TestCorrectnessStudySmall(t *testing.T) {
	if testing.Short() {
		t.Skip("correctness study")
	}
	// One buggy, one clean, and the nondeterministic target.
	for _, name := range []string{"gpmf-parser", "zlib", "freetype"} {
		name := name
		t.Run(name, func(t *testing.T) {
			rep, err := RunCorrectness(name, CorrectnessOptions{
				QueueExecs: 1500, Pollution: 120, MaxCases: 12, Seed: 5,
			})
			if err != nil {
				t.Fatal(err)
			}
			if rep.Cases == 0 {
				t.Fatal("no cases replayed")
			}
			if rep.DataflowMismatches != 0 {
				t.Errorf("dataflow mismatches: %s", rep)
			}
			if rep.ControlFlowMismatches != 0 {
				t.Errorf("control-flow mismatches: %s", rep)
			}
			if name == "freetype" && rep.NondetCases == 0 {
				t.Error("freetype nondeterminism not detected")
			}
		})
	}
	if _, err := RunCorrectness("nope", DefaultCorrectnessOptions()); err == nil {
		t.Fatal("unknown target accepted")
	}
}

func TestAblationShape(t *testing.T) {
	if testing.Short() {
		t.Skip("ablation run")
	}
	rows, err := RunAblation(500*time.Millisecond, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 || rows[0].Name != "full" {
		t.Fatalf("rows: %+v", rows)
	}
	if rows[0].FalseCrashes != 0 {
		t.Errorf("full restoration produced %d false crashes", rows[0].FalseCrashes)
	}
	if rows[0].LiveChunksEnd != 0 || rows[0].OpenFDsEnd != 0 {
		t.Errorf("full restoration leaked state: %+v", rows[0])
	}
	var noHeap, noFiles AblationRow
	for _, r := range rows {
		switch r.Name {
		case "-HeapPass":
			noHeap = r
		case "-FilePass":
			noFiles = r
		}
	}
	if noHeap.LiveChunksEnd == 0 {
		t.Error("-HeapPass: no chunks leaked, ablation has no teeth")
	}
	if noFiles.OpenFDsEnd == 0 && noFiles.FalseCrashes == 0 {
		t.Error("-FilePass: neither FD leak nor false crash observed")
	}
	if !strings.Contains(FormatAblation(rows), "-GlobalPass") {
		t.Fatal("FormatAblation output")
	}
}

func TestDeferInitAblation(t *testing.T) {
	if testing.Short() {
		t.Skip("deferinit run")
	}
	res, err := RunDeferInitAblation(300)
	if err != nil {
		t.Fatal(err)
	}
	if !res.ResultsEquivalent {
		t.Fatal("DeferInitPass changed program results")
	}
	if res.Speedup <= 1.2 {
		t.Errorf("deferred init speedup = %.2fx, want > 1.2x (init is 4096 iterations)", res.Speedup)
	}
}
