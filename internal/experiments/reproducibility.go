package experiments

import (
	"fmt"
	"time"

	"closurex/internal/core"
	"closurex/internal/execmgr"
	"closurex/internal/fuzz"
	"closurex/internal/passes"
	"closurex/internal/targets"
	"closurex/internal/vm"
)

// ReproducibilityReport quantifies the paper's third pathology of naive
// persistent fuzzing: crashes that depend on stale state from earlier test
// cases do not reproduce when the reported input is replayed in a fresh
// process — wasting triage effort. Crashes found under ClosureX must
// reproduce by construction.
type ReproducibilityReport struct {
	Target string
	// Found is the number of unique crash buckets each mechanism reported.
	NaiveFound    int
	ClosureXFound int
	// Reproducible is how many of those buckets' saved inputs crash (with
	// the same triage key) in a fresh process.
	NaiveReproducible    int
	ClosureXReproducible int
}

// NaiveRate returns the fraction of naive-persistent crashes that
// reproduce.
func (r ReproducibilityReport) NaiveRate() float64 {
	if r.NaiveFound == 0 {
		return 1
	}
	return float64(r.NaiveReproducible) / float64(r.NaiveFound)
}

// ClosureXRate returns the fraction of ClosureX crashes that reproduce.
func (r ReproducibilityReport) ClosureXRate() float64 {
	if r.ClosureXFound == 0 {
		return 1
	}
	return float64(r.ClosureXReproducible) / float64(r.ClosureXFound)
}

func (r ReproducibilityReport) String() string {
	return fmt.Sprintf("%s: naive persistent %d/%d crashes reproduce (%.0f%%); closurex %d/%d (%.0f%%)",
		r.Target, r.NaiveReproducible, r.NaiveFound, 100*r.NaiveRate(),
		r.ClosureXReproducible, r.ClosureXFound, 100*r.ClosureXRate())
}

// RunReproducibility fuzzes target under naive persistence and under
// ClosureX for d each, then replays every reported crash input in a fresh
// process and checks that the same triage bucket fires.
func RunReproducibility(targetName string, d time.Duration, seed uint64) (ReproducibilityReport, error) {
	t := targets.Get(targetName)
	if t == nil {
		return ReproducibilityReport{}, fmt.Errorf("experiments: unknown target %q", targetName)
	}
	if d <= 0 {
		d = 2 * time.Second
	}
	rep := ReproducibilityReport{Target: t.Name}

	// Fresh replayer over the ClosureX build (keys must be comparable, and
	// the naive build's baseline keys match: triage is kind@fn:line on the
	// same source).
	freshMod, err := core.Build(t.Short+".c", t.Source, core.ClosureX)
	if err != nil {
		return rep, err
	}
	reproduces := func(input []byte, key string) (bool, error) {
		v, err := vm.New(freshMod, vm.Options{})
		if err != nil {
			return false, err
		}
		defer v.Release()
		v.SetInput(input)
		res := v.Call(passes.TargetMain)
		return res.Fault != nil && res.Fault.Key() == key, nil
	}

	run := func(mech string) ([]*fuzz.Crash, error) {
		inst, err := core.NewInstance(t, mech, core.InstanceOptions{TrialSeed: seed})
		if err != nil {
			return nil, err
		}
		defer inst.Close()
		inst.Campaign.RunFor(d)
		return inst.Campaign.Crashes(), nil
	}

	naive, err := run("persistent-naive")
	if err != nil {
		return rep, err
	}
	for _, cr := range naive {
		rep.NaiveFound++
		ok, err := reproduces(cr.Input, cr.Key)
		if err != nil {
			return rep, err
		}
		if ok {
			rep.NaiveReproducible++
		}
	}
	cx, err := run("closurex")
	if err != nil {
		return rep, err
	}
	for _, cr := range cx {
		rep.ClosureXFound++
		ok, err := reproduces(cr.Input, cr.Key)
		if err != nil {
			return rep, err
		}
		if ok {
			rep.ClosureXReproducible++
		}
	}
	return rep, nil
}

// prevCrashProbe is the deterministic version of the stale-state
// non-reproducibility: a rich input, then a PREV-only input, in one naive
// process; the same pair under ClosureX; and the PREV input fresh.
type prevCrashProbe struct {
	naiveCrashed    bool
	freshCrashed    bool
	closurexCrashed bool
}

func provokePrevCrash() (prevCrashProbe, error) {
	var out prevCrashProbe
	t := targets.Get("gpmf-parser")
	// A rich input: the standard seed (many KLVs, sets last_run_klvs big).
	rich := t.Seeds()[0]
	// The victim input: a single PREV record.
	victim := klvDemo("PREV", 'L', 4, 1, []byte{0, 0, 0, 0})

	run := func(mech string) (bool, error) {
		mod, err := core.Build(t.Short+".c", t.Source, core.VariantFor(mech))
		if err != nil {
			return false, err
		}
		m, err := execmgr.New(mech, execmgr.Config{Module: mod})
		if err != nil {
			return false, err
		}
		defer m.Close()
		// Two rich runs: klv_count (itself stale) accumulates past the
		// scratch-buffer size, so last_run_klvs indexes out of bounds.
		m.Execute(rich)
		m.Execute(rich)
		res := m.Execute(victim)
		return res.Crashed(), nil
	}
	var err error
	if out.naiveCrashed, err = run("persistent-naive"); err != nil {
		return out, err
	}
	if out.freshCrashed, err = run("fresh"); err != nil {
		return out, err
	}
	if out.closurexCrashed, err = run("closurex"); err != nil {
		return out, err
	}
	return out, nil
}
