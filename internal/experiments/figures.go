package experiments

import (
	"fmt"
	"strings"
	"time"

	"closurex/internal/core"
	"closurex/internal/execmgr"
	"closurex/internal/targets"
	"closurex/internal/vm"
)

// ---- Execution-mechanism spectrum (the paper's motivating figure) ----

// SpectrumRow measures one execution mechanism on a minimal target, so the
// per-test-case process-management cost dominates: the spectrum the
// paper's introduction draws (fresh >> forkserver >> persistent).
type SpectrumRow struct {
	Mechanism string
	NsPerExec float64
	Execs     int64
	Spawns    int64
}

// spectrumSource does almost nothing per test case: whatever time a
// mechanism spends here is process management.
const spectrumSource = `
int runs;
int main(void) {
	runs++;
	int f = fopen("/input", "r");
	if (!f) abort();
	int c = fgetc(f);
	fclose(f);
	return c;
}
`

// RunSpectrum measures ns/exec for every mechanism at the given image
// size (pages) over n executions each.
func RunSpectrum(imagePages int, n int) ([]SpectrumRow, error) {
	if imagePages <= 0 {
		imagePages = 512
	}
	if n <= 0 {
		n = 300
	}
	var rows []SpectrumRow
	for _, name := range execmgr.Names() {
		variant := core.VariantFor(name)
		mod, err := core.Build("spectrum.c", spectrumSource, variant)
		if err != nil {
			return nil, err
		}
		mech, err := execmgr.New(name, execmgr.Config{Module: mod, ImagePages: imagePages})
		if err != nil {
			return nil, err
		}
		input := []byte{42}
		// Warm up (template builds, first-touch costs).
		for i := 0; i < 10; i++ {
			mech.Execute(input)
		}
		start := time.Now()
		for i := 0; i < n; i++ {
			mech.Execute(input)
		}
		el := time.Since(start)
		rows = append(rows, SpectrumRow{
			Mechanism: name,
			NsPerExec: float64(el.Nanoseconds()) / float64(n),
			Execs:     mech.Execs(),
			Spawns:    mech.Spawns(),
		})
		mech.Close()
	}
	return rows, nil
}

// FormatSpectrum renders the spectrum figure as text.
func FormatSpectrum(rows []SpectrumRow, imagePages int) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Figure: execution-mechanism spectrum (trivial target, %d-page image)\n", imagePages)
	fmt.Fprintf(&sb, "%-18s %14s %10s\n", "Mechanism", "ns/exec", "spawns")
	var base float64
	for _, r := range rows {
		if r.Mechanism == "fresh" {
			base = r.NsPerExec
		}
	}
	for _, r := range rows {
		rel := ""
		if base > 0 {
			rel = fmt.Sprintf("  (%.1fx faster than fresh)", base/r.NsPerExec)
		}
		fmt.Fprintf(&sb, "%-18s %14.0f %10d%s\n", r.Mechanism, r.NsPerExec, r.Spawns, rel)
	}
	return sb.String()
}

// ---- Stale-state pathology demo (missed and false crashes) ----

// StaleStateReport demonstrates the two incorrectness modes of naive
// persistent fuzzing that motivate the paper, on the gpmf-parser target:
//
//   - missed crash: an earlier input flips a persistent mode flag
//     (strict_mode), after which a crashing input no longer crashes;
//   - false crash: inputs that exit() leak their file descriptor; after
//     enough iterations fopen fails and the target aborts on an input
//     that is perfectly fine in isolation.
type StaleStateReport struct {
	// FreshCrashes reports that the crashing input does crash a fresh
	// process (ground truth).
	FreshCrashes bool
	// NaiveMissedCrash reports that naive persistent execution missed it
	// after the flag-flipping input ran first.
	NaiveMissedCrash bool
	// ClosureXCrashes reports that ClosureX still catches it in the same
	// sequence.
	ClosureXCrashes bool
	// NaiveFalseCrashAfter is the iteration at which leaked descriptors
	// produced a false crash under naive persistence (0 = never).
	NaiveFalseCrashAfter int
	// ClosureXFalseCrash reports whether ClosureX ever false-crashed on
	// the same sequence (must be false).
	ClosureXFalseCrash bool
}

// Correct reports whether the demo exhibited the full pathology: fresh
// ground truth crashes, naive misses it and false-crashes, ClosureX does
// neither.
func (r StaleStateReport) Correct() bool {
	return r.FreshCrashes && r.NaiveMissedCrash && r.ClosureXCrashes &&
		r.NaiveFalseCrashAfter > 0 && !r.ClosureXFalseCrash
}

func (r StaleStateReport) String() string {
	return fmt.Sprintf("fresh crashes=%v; naive missed=%v closurex catches=%v; naive false crash at iter %d, closurex false crash=%v",
		r.FreshCrashes, r.NaiveMissedCrash, r.ClosureXCrashes, r.NaiveFalseCrashAfter, r.ClosureXFalseCrash)
}

// RunStaleStateDemo executes the demonstration.
func RunStaleStateDemo() (StaleStateReport, error) {
	var rep StaleStateReport
	t := targets.Get("gpmf-parser")

	// flagInput flips strict_mode=1 persistently (DVID with an odd byte).
	flagInput := klvDemo("DVID", 'L', 1, 1, []byte{1})
	// crashInput fires the FPS division by zero, which is gated on
	// strict_mode == 0.
	var crashInput []byte
	for i := range t.Bugs {
		if t.Bugs[i].ID == "gpmf-div-zero-fps" {
			crashInput = t.Bugs[i].Trigger
		}
	}
	if crashInput == nil {
		return rep, fmt.Errorf("experiments: gpmf-div-zero-fps not registered")
	}
	// leakInput takes the overheated-device early return, which leaks its
	// FD and buffer on every iteration while returning normally.
	leakInput := klvDemo("TMPC", 'l', 4, 1, []byte{0, 3, 13, 64}) // be32 = 200001

	runSeq := func(mech string, seq [][]byte) ([]bool, error) {
		variant := core.VariantFor(mech)
		mod, err := core.Build(t.Short+".c", t.Source, variant)
		if err != nil {
			return nil, err
		}
		cfg := execmgr.Config{Module: mod}
		if mech == "persistent-naive" {
			// Large recycle bound so staleness is visible.
			cfg.RestartEvery = 1 << 30
		}
		m, err := execmgr.New(mech, cfg)
		if err != nil {
			return nil, err
		}
		defer m.Close()
		out := make([]bool, len(seq))
		for i, in := range seq {
			res := m.Execute(in)
			out[i] = res.Crashed()
		}
		return out, nil
	}

	// Missed-crash sequence: flag first, then the crasher.
	seq := [][]byte{flagInput, crashInput}
	fresh, err := runSeq("fresh", seq)
	if err != nil {
		return rep, err
	}
	naive, err := runSeq("persistent-naive", seq)
	if err != nil {
		return rep, err
	}
	cx, err := runSeq("closurex", seq)
	if err != nil {
		return rep, err
	}
	rep.FreshCrashes = fresh[1]
	rep.NaiveMissedCrash = !naive[1]
	rep.ClosureXCrashes = cx[1]

	// False-crash sequence: the leaking input repeated past the FD limit.
	var falseSeq [][]byte
	for i := 0; i < 100; i++ {
		falseSeq = append(falseSeq, leakInput)
	}
	naiveF, err := runSeq("persistent-naive", falseSeq)
	if err != nil {
		return rep, err
	}
	for i, crashed := range naiveF {
		if crashed {
			rep.NaiveFalseCrashAfter = i + 1
			break
		}
	}
	cxF, err := runSeq("closurex", falseSeq)
	if err != nil {
		return rep, err
	}
	for _, crashed := range cxF {
		if crashed {
			rep.ClosureXFalseCrash = true
		}
	}
	return rep, nil
}

// klvDemo rebuilds a GPMF KLV without importing the target package's
// unexported helper.
func klvDemo(key string, typ byte, ssize, repeat int, payload []byte) []byte {
	out := append([]byte(key), typ, byte(ssize), byte(repeat>>8), byte(repeat))
	out = append(out, payload...)
	for len(out)%4 != 0 {
		out = append(out, 0)
	}
	return out
}

// ---- Figure 3: GlobalPass section transformation ----

// SectionTransformation renders the before/after section layout for a
// target (Figure 3): before the GlobalPass every writable global sits in
// .data; after, they occupy closure_global_section.
func SectionTransformation(targetName string) (string, error) {
	t := targets.Get(targetName)
	if t == nil {
		return "", fmt.Errorf("experiments: unknown target %q", targetName)
	}
	before, err := core.Build(t.Short+".c", t.Source, core.Pristine)
	if err != nil {
		return "", err
	}
	after, err := core.Build(t.Short+".c", t.Source, core.ClosureX)
	if err != nil {
		return "", err
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "Figure 3: %s sections before the Global pass\n%s\n", t.Name, vm.NewLayout(before))
	fmt.Fprintf(&sb, "after the Global pass\n%s", vm.NewLayout(after))
	return sb.String(), nil
}
