package experiments

// Chaos matrix: the fault-injection scenarios the shard supervision layer
// must absorb, run end-to-end over a real benchmark target and reported as
// a pass/fail table. `closurex-bench -chaos` drives this and `make chaos`
// gates on it: every scenario must end in a completed campaign whose
// coverage is a superset of the fault-free baseline's progress floor, with
// no goroutine leak.

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"closurex/internal/core"
	"closurex/internal/faultinject"
	"closurex/internal/targets"
)

// ChaosRow is one injected-fault scenario's outcome.
type ChaosRow struct {
	Scenario    string `json:"scenario"`
	Execs       int64  `json:"execs"`
	Edges       int    `json:"edges"`
	Corpus      int    `json:"corpus"`
	Restarts    int64  `json:"restarts"`
	Rebuilds    int64  `json:"rebuilds"`
	Quarantined int    `json:"quarantined_shards"`
	Healthy     int    `json:"healthy_shards"`
	Events      int    `json:"events"`
	Completed   bool   `json:"completed"`
	CoverageOK  bool   `json:"coverage_ok"` // >= the fault-free baseline's edges
	Goroutines  int    `json:"goroutine_delta"`
	Pass        bool   `json:"pass"`
	Detail      string `json:"detail,omitempty"`
}

// ChaosReport is the JSON envelope BENCH_chaos.json carries.
type ChaosReport struct {
	Target        string     `json:"target"`
	Mechanism     string     `json:"mechanism"`
	Jobs          int        `json:"jobs"`
	Execs         int64      `json:"execs_per_scenario"`
	BaselineEdges int        `json:"baseline_edges"`
	Rows          []ChaosRow `json:"rows"`
	AllPass       bool       `json:"all_pass"`
}

// chaosScenario arms one fault class on a fresh injector.
type chaosScenario struct {
	name string
	arm  func(inj *faultinject.Injector)
}

func chaosScenarios() []chaosScenario {
	return []chaosScenario{
		{"shard-kill", func(inj *faultinject.Injector) {
			inj.FailAfter(faultinject.ForShard(faultinject.ShardKill, 1), 500, 2)
		}},
		{"shard-kill-forever", func(inj *faultinject.Injector) {
			inj.FailAfter(faultinject.ForShard(faultinject.ShardKill, 1), 500, -1)
		}},
		{"restore-corrupt", func(inj *faultinject.Injector) {
			inj.FailAfter(faultinject.ForShard(faultinject.ShardRestore, 2), 300, 3)
		}},
		{"corpus-delay", func(inj *faultinject.Injector) {
			inj.FailWithProb(faultinject.CorpusDelay, 0.5)
		}},
		{"corpus-drop", func(inj *faultinject.Injector) {
			inj.FailWithProb(faultinject.CorpusDrop, 0.5)
		}},
	}
}

// RunChaosMatrix runs every chaos scenario over target at the given shard
// count and exec budget, comparing each faulted run's coverage against a
// fault-free baseline of the same budget. A scenario passes when the
// campaign completes, reaches at least the baseline's edge count (faults
// never lose coverage — they only cost throughput), and leaks no
// goroutines.
func RunChaosMatrix(target string, jobs int, execs int64, seed uint64) (*ChaosReport, error) {
	t := targets.Get(target)
	if t == nil {
		return nil, fmt.Errorf("experiments: unknown target %q", target)
	}
	if jobs < 3 {
		jobs = 4 // the scenarios target shards 1 and 2 specifically
	}
	if execs <= 0 {
		execs = 30000
	}
	rep := &ChaosReport{Target: target, Mechanism: MechClosureX, Jobs: jobs, Execs: execs, AllPass: true}

	// Fault-free baseline: the coverage floor every chaos run must reach.
	base, err := core.NewInstance(t, MechClosureX, core.InstanceOptions{TrialSeed: seed, Jobs: jobs})
	if err != nil {
		return nil, fmt.Errorf("experiments: chaos baseline: %w", err)
	}
	base.Driver().RunExecs(execs)
	rep.BaselineEdges = base.Driver().Edges()
	base.Close()

	for _, sc := range chaosScenarios() {
		row := runChaosScenario(t, sc, jobs, execs, seed, rep.BaselineEdges)
		rep.Rows = append(rep.Rows, row)
		rep.AllPass = rep.AllPass && row.Pass
	}
	return rep, nil
}

func runChaosScenario(t *targets.Target, sc chaosScenario, jobs int, execs int64, seed uint64, baselineEdges int) ChaosRow {
	row := ChaosRow{Scenario: sc.name}
	before := runtime.NumGoroutine()
	inj := faultinject.New(seed)
	sc.arm(inj)
	inst, err := core.NewInstance(t, MechClosureX, core.InstanceOptions{
		TrialSeed:    seed,
		Jobs:         jobs,
		Injector:     inj,
		ShardBackoff: 100 * time.Microsecond, // keep the matrix fast
	})
	if err != nil {
		row.Detail = err.Error()
		return row
	}
	inst.Driver().RunExecs(execs)
	row.Completed = true
	row.Execs = inst.Driver().Execs()
	row.Edges = inst.Driver().Edges()
	row.Corpus = inst.Driver().QueueLen()
	if inst.Parallel != nil {
		for _, h := range inst.Parallel.Health() {
			row.Restarts += h.Restarts
			row.Rebuilds += h.Rebuilds
			if h.Quarantined {
				row.Quarantined++
			}
		}
		row.Healthy = inst.Parallel.HealthyShards()
		row.Events = len(inst.Parallel.Events())
	}
	row.CoverageOK = row.Edges >= baselineEdges
	inst.Close()
	// Let supervisor/manager goroutines unwind before the leak check.
	for i := 0; i < 50 && runtime.NumGoroutine() > before; i++ {
		time.Sleep(10 * time.Millisecond)
	}
	row.Goroutines = runtime.NumGoroutine() - before
	row.Pass = row.Completed && row.CoverageOK && row.Goroutines <= 0
	if !row.CoverageOK {
		row.Detail = fmt.Sprintf("edges %d below baseline %d", row.Edges, baselineEdges)
	}
	if row.Goroutines > 0 {
		row.Detail = fmt.Sprintf("leaked %d goroutines", row.Goroutines)
	}
	return row
}

// FormatChaos renders the chaos report as an aligned text table.
func FormatChaos(rep *ChaosReport) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Chaos matrix: %s under %s, jobs=%d, %d execs per scenario (baseline edges %d)\n",
		rep.Target, rep.Mechanism, rep.Jobs, rep.Execs, rep.BaselineEdges)
	fmt.Fprintf(&b, "  %-20s %10s %7s %7s %9s %9s %6s %6s %6s\n",
		"scenario", "execs", "edges", "corpus", "restarts", "rebuilds", "quar", "leak", "pass")
	for _, r := range rep.Rows {
		pass := "ok"
		if !r.Pass {
			pass = "FAIL"
		}
		fmt.Fprintf(&b, "  %-20s %10d %7d %7d %9d %9d %6d %6d %6s\n",
			r.Scenario, r.Execs, r.Edges, r.Corpus, r.Restarts, r.Rebuilds, r.Quarantined, r.Goroutines, pass)
		if r.Detail != "" {
			fmt.Fprintf(&b, "    %s\n", r.Detail)
		}
	}
	if rep.AllPass {
		b.WriteString("  all scenarios passed\n")
	} else {
		b.WriteString("  CHAOS FAILURES PRESENT\n")
	}
	return b.String()
}

// WriteChaosJSON writes the report to path as indented JSON (the
// BENCH_chaos.json artifact).
func WriteChaosJSON(path string, rep *ChaosReport) error {
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
