package experiments

// Restore-elision experiment: every benchmark target built with the
// interprocedural mod/ref + lifetime analyses, reporting how much of the
// per-iteration restore work the proofs discharge — closure-section bytes
// outside the may-write scope, alloc sites proven freed on all paths, fopen
// sites proven closed — plus on/off throughput from identical campaigns.
// The JSON emitter backs `make benchjson` (BENCH_interproc.json); the
// bit-identical coverage claim itself is enforced by the differential test
// suite, but the bench cross-checks edge counts as a cheap tripwire.

import (
	"encoding/json"
	"fmt"
	"os"
	"strings"
	"time"

	"closurex/internal/core"
	"closurex/internal/execmgr"
	"closurex/internal/targets"
)

// ElisionRow is one target's point of the restore-elision experiment.
type ElisionRow struct {
	Target string `json:"target"`
	// SectionBytes is the closure_global_section size; MayWriteBytes the
	// subset inside the analysis' may-write ranges (equal when the
	// analysis fell back to whole-section scope).
	SectionBytes  int     `json:"section_bytes"`
	MayWriteBytes int     `json:"may_write_bytes"`
	ByteReduction float64 `json:"byte_reduction"` // fraction of section bytes elided
	WholeSection  bool    `json:"whole_section"`
	AllocSites    int     `json:"alloc_sites"`
	AllocElided   int     `json:"alloc_elided"`
	FileSites     int     `json:"file_sites"`
	FileElided    int     `json:"file_elided"`
	SiteReduction float64 `json:"site_reduction"` // fraction of alloc+fopen sites elided
	// Throughput of the same campaign (same seed, same execs) with
	// elision off and on; EdgesMatch tripwires coverage divergence.
	ExecsPerSecOff float64 `json:"execs_per_sec_off"`
	ExecsPerSecOn  float64 `json:"execs_per_sec_on"`
	Speedup        float64 `json:"speedup"`
	EdgesMatch     bool    `json:"edges_match"`
}

// ElisionReport is the JSON envelope BENCH_interproc.json carries.
type ElisionReport struct {
	Mechanism      string       `json:"mechanism"`
	ExecsPerTarget int64        `json:"execs_per_target"`
	Rows           []ElisionRow `json:"rows"`
	// Aggregates over all targets; the acceptance bar is >= 0.20 on
	// either reduction.
	TotalSectionBytes  int     `json:"total_section_bytes"`
	TotalMayWriteBytes int     `json:"total_may_write_bytes"`
	ByteReduction      float64 `json:"byte_reduction"`
	TotalSites         int     `json:"total_sites"`
	TotalElided        int     `json:"total_elided"`
	SiteReduction      float64 `json:"site_reduction"`
}

// elisionTrials is how many times each on/off point is timed; the fastest
// trial is reported (min-of-N filters scheduler and GC noise, as in the
// sanitizer sweep).
const elisionTrials = 3

// RunRestoreElision builds every registered target with the
// interprocedural analyses armed, records the static elision statistics,
// and times execsPerTarget executions of the same campaign with elision
// off and on.
func RunRestoreElision(execsPerTarget int64, seed uint64) (*ElisionReport, error) {
	if execsPerTarget <= 0 {
		execsPerTarget = 10000
	}
	rep := &ElisionReport{
		Mechanism:      MechClosureX,
		ExecsPerTarget: execsPerTarget,
	}
	for _, t := range targets.All() {
		row := ElisionRow{Target: t.Name}

		// Static side: one instrumented build carries the module metadata
		// and the harness' range arithmetic.
		inst, err := core.NewInstance(t, MechClosureX, core.InstanceOptions{
			TrialSeed: seed,
			Interproc: true,
		})
		if err != nil {
			return nil, fmt.Errorf("experiments: %s: %w", t.Name, err)
		}
		info := inst.Module.Interproc
		if info == nil {
			inst.Close()
			return nil, fmt.Errorf("experiments: %s: InterprocPass left no metadata", t.Name)
		}
		cx, ok := inst.Mech.(*execmgr.ClosureX)
		if !ok {
			inst.Close()
			return nil, fmt.Errorf("experiments: %s: mechanism %T is not *execmgr.ClosureX", t.Name, inst.Mech)
		}
		h := cx.Harness()
		row.SectionBytes = h.GlobalSnapshotSize()
		row.MayWriteBytes = h.ElisionRangeBytes()
		row.WholeSection = info.WholeSection
		row.AllocSites, row.AllocElided = info.AllocSites, info.AllocElided
		row.FileSites, row.FileElided = info.FileSites, info.FileElided
		if row.SectionBytes > 0 {
			row.ByteReduction = 1 - float64(row.MayWriteBytes)/float64(row.SectionBytes)
		}
		if sites := row.AllocSites + row.FileSites; sites > 0 {
			row.SiteReduction = float64(row.AllocElided+row.FileElided) / float64(sites)
		}
		inst.Close()

		// Dynamic side: identical campaigns (same trial seed) with and
		// without elision, best of N trials each.
		var edgesOff, edgesOn int
		for i, interproc := range []bool{false, true} {
			best := 0.0
			for trial := 0; trial < elisionTrials; trial++ {
				ti, err := core.NewInstance(t, MechClosureX, core.InstanceOptions{
					TrialSeed: seed,
					Interproc: interproc,
				})
				if err != nil {
					return nil, fmt.Errorf("experiments: %s interproc=%v: %w", t.Name, interproc, err)
				}
				start := time.Now()
				ti.Driver().RunExecs(execsPerTarget)
				elapsed := time.Since(start).Seconds()
				execs := ti.Driver().Execs()
				edges := ti.Driver().Edges()
				ti.Close()
				if eps := float64(execs) / elapsed; elapsed > 0 && eps > best {
					best = eps
				}
				if interproc {
					edgesOn = edges
				} else {
					edgesOff = edges
				}
			}
			if i == 0 {
				row.ExecsPerSecOff = best
			} else {
				row.ExecsPerSecOn = best
			}
		}
		row.EdgesMatch = edgesOff == edgesOn
		if row.ExecsPerSecOff > 0 {
			row.Speedup = row.ExecsPerSecOn / row.ExecsPerSecOff
		}

		rep.Rows = append(rep.Rows, row)
		rep.TotalSectionBytes += row.SectionBytes
		rep.TotalMayWriteBytes += row.MayWriteBytes
		rep.TotalSites += row.AllocSites + row.FileSites
		rep.TotalElided += row.AllocElided + row.FileElided
	}
	if rep.TotalSectionBytes > 0 {
		rep.ByteReduction = 1 - float64(rep.TotalMayWriteBytes)/float64(rep.TotalSectionBytes)
	}
	if rep.TotalSites > 0 {
		rep.SiteReduction = float64(rep.TotalElided) / float64(rep.TotalSites)
	}
	return rep, nil
}

// FormatElision renders the restore-elision report as an aligned table.
func FormatElision(rep *ElisionReport) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Interprocedural restore elision under %s (%d execs per point):\n",
		rep.Mechanism, rep.ExecsPerTarget)
	fmt.Fprintf(&b, "  %-16s %9s %9s %7s %9s %9s %7s %9s %9s %7s %5s\n",
		"target", "sect B", "write B", "byte-", "alloc e/n", "file e/n", "site-",
		"off ex/s", "on ex/s", "speedup", "edges")
	for _, r := range rep.Rows {
		scope := fmt.Sprintf("%4.0f%%", 100*r.ByteReduction)
		if r.WholeSection {
			scope = "whole"
		}
		match := "ok"
		if !r.EdgesMatch {
			match = "DIFF"
		}
		fmt.Fprintf(&b, "  %-16s %9d %9d %7s %5d/%-3d %5d/%-3d %6.0f%% %9.0f %9.0f %6.2fx %5s\n",
			r.Target, r.SectionBytes, r.MayWriteBytes, scope,
			r.AllocElided, r.AllocSites, r.FileElided, r.FileSites, 100*r.SiteReduction,
			r.ExecsPerSecOff, r.ExecsPerSecOn, r.Speedup, match)
	}
	fmt.Fprintf(&b, "  total: %d/%d section bytes restored (%.1f%% elided); %d/%d alloc+fopen sites elided (%.1f%%)\n",
		rep.TotalMayWriteBytes, rep.TotalSectionBytes, 100*rep.ByteReduction,
		rep.TotalElided, rep.TotalSites, 100*rep.SiteReduction)
	return b.String()
}

// WriteElisionJSON writes the report to path as indented JSON (the
// BENCH_interproc.json artifact).
func WriteElisionJSON(path string, rep *ElisionReport) error {
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
