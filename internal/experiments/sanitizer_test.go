package experiments

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

// TestRunSanitizerOverhead exercises the sweep end to end at a tiny budget:
// three rows in mode order, every mode actually executed, coverage identical
// across modes (the differential guarantee), and the static elision stats
// populated. Throughput ordering is deliberately not asserted — wall-clock
// at this budget is noise; the JSON artifact from `make benchjson` is where
// the real overhead numbers live.
func TestRunSanitizerOverhead(t *testing.T) {
	rep, err := RunSanitizerOverhead("sandefect", 400, 0x5eed)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) != 3 {
		t.Fatalf("want 3 rows, got %d", len(rep.Rows))
	}
	wantModes := []string{"off", "on", "on+elide"}
	for i, r := range rep.Rows {
		if r.Mode != wantModes[i] {
			t.Errorf("row %d mode = %q, want %q", i, r.Mode, wantModes[i])
		}
		if r.Execs < 400 {
			t.Errorf("mode %s ran only %d execs", r.Mode, r.Execs)
		}
		if r.Edges != rep.Rows[0].Edges {
			t.Errorf("mode %s coverage %d differs from off-mode %d", r.Mode, r.Edges, rep.Rows[0].Edges)
		}
	}
	if rep.Elided == 0 || rep.ElisionRate < 0.30 {
		t.Errorf("elision stats missing: checks=%d elided=%d rate=%v", rep.Checks, rep.Elided, rep.ElisionRate)
	}

	path := filepath.Join(t.TempDir(), "BENCH_sanitizer.json")
	if err := WriteSanitizerJSON(path, rep); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var back SanitizerReport
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Target != "sandefect" || len(back.Rows) != 3 {
		t.Fatalf("JSON round-trip mangled report: %+v", back)
	}
}

func TestRunSanitizerOverheadUnknownTarget(t *testing.T) {
	if _, err := RunSanitizerOverhead("no-such-target", 10, 1); err == nil {
		t.Fatal("unknown target accepted")
	}
}
