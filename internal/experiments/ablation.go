package experiments

import (
	"fmt"
	"strings"
	"time"

	"closurex/internal/core"
	"closurex/internal/execmgr"
	"closurex/internal/harness"
	"closurex/internal/targets"
)

// AblationRow measures ClosureX with one restoration step disabled — the
// design-choice ablation for DESIGN.md's per-pass justification. Each row
// fuzzes gpmf-parser briefly and counts the damage.
type AblationRow struct {
	Name string
	// ExecsPerSec is throughput (restoration steps have a cost; dropping
	// one should not be *why* you would — the violations are).
	ExecsPerSec float64
	// FalseCrashes counts crash buckets that are NOT planted bugs —
	// phantom findings a triager would waste time on.
	FalseCrashes int
	// MissedPlanted counts planted bugs the run failed to find that the
	// full configuration found.
	MissedPlanted int
	// LiveChunksEnd / OpenFDsEnd audit leaked state at campaign end.
	LiveChunksEnd int
	OpenFDsEnd    int
}

// FormatAblation renders the ablation table.
func FormatAblation(rows []AblationRow) string {
	var sb strings.Builder
	sb.WriteString("Ablation: ClosureX restoration steps (gpmf-parser)\n")
	fmt.Fprintf(&sb, "%-18s %12s %13s %14s %12s %10s\n",
		"Configuration", "execs/s", "false crashes", "missed planted", "live chunks", "open FDs")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-18s %12.0f %13d %14d %12d %10d\n",
			r.Name, r.ExecsPerSec, r.FalseCrashes, r.MissedPlanted, r.LiveChunksEnd, r.OpenFDsEnd)
	}
	return sb.String()
}

// RunAblation fuzzes gpmf-parser under each harness configuration for d
// per run.
func RunAblation(d time.Duration, seed uint64) ([]AblationRow, error) {
	if d <= 0 {
		d = 2 * time.Second
	}
	t := targets.Get("gpmf-parser")
	keys, err := bugKeys(t)
	if err != nil {
		return nil, err
	}

	full := harness.FullRestore()
	noGlobals := full
	noGlobals.RestoreGlobals = false
	noHeap := full
	noHeap.ResetHeap = false
	noFiles := full
	noFiles.CloseFiles = false

	configs := []struct {
		name string
		opts harness.Options
	}{
		{"full", full},
		{"-GlobalPass", noGlobals},
		{"-HeapPass", noHeap},
		{"-FilePass", noFiles},
	}

	var rows []AblationRow
	var fullFound map[string]bool
	for _, cfg := range configs {
		opts := cfg.opts
		inst, err := core.NewInstance(t, MechClosureX, core.InstanceOptions{
			TrialSeed:   seed,
			HarnessOpts: &opts,
		})
		if err != nil {
			return nil, err
		}
		inst.Campaign.RunFor(d)
		row := AblationRow{Name: cfg.name}
		if el := inst.Campaign.Elapsed(); el > 0 {
			row.ExecsPerSec = float64(inst.Campaign.Execs()) / el.Seconds()
		}
		found := map[string]bool{}
		for _, cr := range inst.Campaign.Crashes() {
			if id, planted := keys[cr.Key]; planted {
				found[id] = true
			} else {
				row.FalseCrashes++
			}
		}
		if cfg.name == "full" {
			fullFound = found
		} else {
			for id := range fullFound {
				if !found[id] {
					row.MissedPlanted++
				}
			}
		}
		cx := inst.Mech.(*execmgr.ClosureX)
		row.LiveChunksEnd = cx.Harness().VM().Heap.LiveChunks()
		row.OpenFDsEnd = cx.Harness().VM().FS.OpenCount()
		inst.Close()
		rows = append(rows, row)
	}
	return rows, nil
}

// DeferInitAblation measures the deferred-initialization extension: a
// target with an input-independent setup phase, built with and without
// DeferInitPass, compared on throughput.
type DeferInitResult struct {
	NsPerExecBaseline float64 // init re-executed every iteration
	NsPerExecDeferred float64 // init hoisted out of the loop
	Speedup           float64
	InitWorkPerExec   int64 // interpreted instructions of hoisted init
	ResultsEquivalent bool  // both builds compute the same answers
}

// deferInitSource has a deliberately expensive input-independent
// initialization phase (building a 4096-entry table).
const deferInitSource = `
int table[4096];
int table_ready;
void closurex_init(void) {
	for (int i = 0; i < 4096; i++) {
		table[i] = (i * 2654435761) & 0xffff;
	}
	table_ready = 1;
}
int main(void) {
	closurex_init();
	int f = fopen("/input", "r");
	if (!f) abort();
	int c = fgetc(f);
	fclose(f);
	if (c < 0) c = 0;
	return table[c & 4095] & 255;
}
`

// RunDeferInitAblation measures the extension over n executions.
func RunDeferInitAblation(n int) (DeferInitResult, error) {
	if n <= 0 {
		n = 500
	}
	var out DeferInitResult

	run := func(deferInit bool) (float64, []int64, error) {
		variant := core.ClosureX
		if deferInit {
			variant = core.ClosureXDeferInit
		}
		mod, err := core.Build("deferinit.c", deferInitSource, variant)
		if err != nil {
			return 0, nil, err
		}
		mech, err := execmgr.New("closurex", execmgr.Config{Module: mod})
		if err != nil {
			return 0, nil, err
		}
		defer mech.Close()
		var rets []int64
		inputs := [][]byte{{1}, {2}, {200}, {17}}
		for i := 0; i < 8; i++ { // warm-up
			mech.Execute(inputs[i%len(inputs)])
		}
		start := time.Now()
		for i := 0; i < n; i++ {
			res := mech.Execute(inputs[i%len(inputs)])
			if i < len(inputs) {
				rets = append(rets, res.Ret)
			}
		}
		return float64(time.Since(start).Nanoseconds()) / float64(n), rets, nil
	}

	base, baseRets, err := run(false)
	if err != nil {
		return out, err
	}
	deferred, defRets, err := run(true)
	if err != nil {
		return out, err
	}
	out.NsPerExecBaseline = base
	out.NsPerExecDeferred = deferred
	if deferred > 0 {
		out.Speedup = base / deferred
	}
	out.ResultsEquivalent = len(baseRets) == len(defRets)
	for i := range baseRets {
		if i < len(defRets) && baseRets[i] != defRets[i] {
			out.ResultsEquivalent = false
		}
	}
	return out, nil
}
