package experiments

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"closurex/internal/passes"
	"closurex/internal/stats"
	"closurex/internal/targets"
)

// ---- Table 3: pass inventory ----

// Table3 renders the ClosureX pass inventory (documentation table).
func Table3() string {
	var sb strings.Builder
	sb.WriteString("Table 3: ClosureX passes\n")
	fmt.Fprintf(&sb, "%-18s %s\n", "Pass", "Functionality")
	for _, p := range passes.ClosureXPipeline(false) {
		fmt.Fprintf(&sb, "%-18s %s\n", p.Name(), p.Description())
	}
	return sb.String()
}

// ---- Table 4: benchmark inventory ----

// Table4 renders the benchmark suite.
func Table4() string {
	var sb strings.Builder
	sb.WriteString("Table 4: evaluation benchmarks\n")
	fmt.Fprintf(&sb, "%-12s %-14s %-10s %-10s %s\n",
		"Benchmark", "Input Format", "Exec Size", "ImagePages", "Planted bugs")
	for _, t := range targets.Benchmarks() {
		fmt.Fprintf(&sb, "%-12s %-14s %-10s %-10d %d\n",
			t.Name, t.Format, t.ExecSize, t.ImagePages, len(t.Bugs))
	}
	return sb.String()
}

// ---- Table 5: test-case execution rate ----

// Table5Row is one benchmark's throughput comparison.
type Table5Row struct {
	Benchmark string
	ClosureX  float64 // mean execs per trial
	AFLpp     float64
	Speedup   float64
	P         float64 // Mann-Whitney U two-sided p
}

// Table5 derives the throughput table from an evaluation.
func Table5(e *Evaluation) []Table5Row {
	var rows []Table5Row
	for _, name := range e.Cfg.Targets {
		cx := e.cells(name, MechClosureX)
		fs := e.cells(name, MechAFLpp)
		row := Table5Row{
			Benchmark: name,
			ClosureX:  meanExecs(cx),
			AFLpp:     meanExecs(fs),
			P:         stats.MannWhitneyU(execsOf(cx), execsOf(fs)),
		}
		if row.AFLpp > 0 {
			row.Speedup = row.ClosureX / row.AFLpp
		}
		rows = append(rows, row)
	}
	return rows
}

// FormatTable5 renders Table 5 like the paper.
func FormatTable5(rows []Table5Row) string {
	var sb strings.Builder
	sb.WriteString("Table 5: test cases executed per trial (mean over trials)\n")
	fmt.Fprintf(&sb, "%-12s %14s %14s %9s %9s\n", "Benchmark", "ClosureX", "AFL++", "Speedup", "p")
	var speedups []float64
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-12s %14.0f %14.0f %8.2fx %9.4f\n",
			r.Benchmark, r.ClosureX, r.AFLpp, r.Speedup, r.P)
		speedups = append(speedups, r.Speedup)
	}
	fmt.Fprintf(&sb, "%-12s %14s %14s %8.2fx\n", "Average", "", "", stats.Mean(speedups))
	return sb.String()
}

// ---- Table 6: edge coverage ----

// Table6Row is one benchmark's coverage comparison.
type Table6Row struct {
	Benchmark   string
	ClosureX    float64 // mean edge coverage percent
	AFLpp       float64
	Improvement float64 // percent improvement
	P           float64
}

// Table6 derives the coverage table from an evaluation.
func Table6(e *Evaluation) []Table6Row {
	var rows []Table6Row
	for _, name := range e.Cfg.Targets {
		cx := covOf(e.cells(name, MechClosureX))
		fs := covOf(e.cells(name, MechAFLpp))
		row := Table6Row{
			Benchmark: name,
			ClosureX:  stats.Mean(cx),
			AFLpp:     stats.Mean(fs),
			P:         stats.MannWhitneyU(cx, fs),
		}
		if row.AFLpp > 0 {
			row.Improvement = 100 * (row.ClosureX - row.AFLpp) / row.AFLpp
		}
		rows = append(rows, row)
	}
	return rows
}

// FormatTable6 renders Table 6.
func FormatTable6(rows []Table6Row) string {
	var sb strings.Builder
	sb.WriteString("Table 6: edge coverage percentage (mean over trials)\n")
	fmt.Fprintf(&sb, "%-12s %10s %10s %14s %9s\n", "Benchmark", "ClosureX", "AFL++", "% Improvement", "p")
	var imps []float64
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-12s %9.2f%% %9.2f%% %14.2f %9.4f\n",
			r.Benchmark, r.ClosureX, r.AFLpp, r.Improvement, r.P)
		imps = append(imps, r.Improvement)
	}
	fmt.Fprintf(&sb, "%-12s %10s %10s %14.2f\n", "Average", "", "", stats.Mean(imps))
	return sb.String()
}

// ---- Table 7: time-to-bug ----

// Table7Row is one planted bug's discovery comparison.
type Table7Row struct {
	Benchmark string
	BugID     string
	BugType   string
	// Median time to discovery among trials that found it, and the number
	// of finding trials, per mechanism (the paper's "t (n)" cells).
	ClosureXTime   time.Duration
	ClosureXTrials int
	AFLppTime      time.Duration
	AFLppTrials    int
}

// Table7 derives the time-to-bug table.
func Table7(e *Evaluation) []Table7Row {
	var rows []Table7Row
	for _, name := range e.Cfg.Targets {
		t := targets.Get(name)
		if len(t.Bugs) == 0 {
			continue
		}
		for i := range t.Bugs {
			bug := &t.Bugs[i]
			row := Table7Row{Benchmark: name, BugID: bug.ID, BugType: bug.Description}
			row.ClosureXTime, row.ClosureXTrials = bugStats(e.cells(name, MechClosureX), bug.ID)
			row.AFLppTime, row.AFLppTrials = bugStats(e.cells(name, MechAFLpp), bug.ID)
			rows = append(rows, row)
		}
	}
	return rows
}

func bugStats(rs []TrialResult, bugID string) (time.Duration, int) {
	var times []float64
	for _, r := range rs {
		if d, ok := r.BugTimes[bugID]; ok {
			times = append(times, d.Seconds())
		}
	}
	if len(times) == 0 {
		return 0, 0
	}
	sort.Float64s(times)
	return time.Duration(stats.Median(times) * float64(time.Second)), len(times)
}

// FormatTable7 renders Table 7 in the paper's "time (trials)" format.
func FormatTable7(rows []Table7Row) string {
	var sb strings.Builder
	sb.WriteString("Table 7: time to find planted bugs — median seconds (trials found)\n")
	fmt.Fprintf(&sb, "%-12s %-20s %16s %16s\n", "Benchmark", "Bug", "ClosureX", "AFL++")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-12s %-20s %12.2fs (%d) %12.2fs (%d)\n",
			r.Benchmark, r.BugID,
			r.ClosureXTime.Seconds(), r.ClosureXTrials,
			r.AFLppTime.Seconds(), r.AFLppTrials)
	}
	// Aggregate shape metrics the paper quotes in prose: mean speedup on
	// co-discovered bugs, and relative trial counts.
	var ratios []float64
	cxTrials, fsTrials := 0, 0
	for _, r := range rows {
		cxTrials += r.ClosureXTrials
		fsTrials += r.AFLppTrials
		if r.ClosureXTrials > 0 && r.AFLppTrials > 0 && r.ClosureXTime > 0 {
			ratios = append(ratios, r.AFLppTime.Seconds()/r.ClosureXTime.Seconds())
		}
	}
	if len(ratios) > 0 {
		fmt.Fprintf(&sb, "Bugs found %.2fx faster on co-discovered bugs; finding trials: ClosureX %d vs AFL++ %d\n",
			stats.Mean(ratios), cxTrials, fsTrials)
	}
	return sb.String()
}
