// Package experiments reproduces the paper's evaluation: Tables 5-7 (from
// one set of campaigns, as in the paper), the correctness study of §6.1.4,
// the mechanism-spectrum overhead breakdown, the stale-state pathology
// demonstration that motivates the work, and ablations over the harness's
// restoration steps. Budgets are scaled by configuration (the paper ran
// 5 × 24 h per cell; the same code runs 5 × seconds here).
package experiments

import (
	"fmt"
	"time"

	"closurex/internal/core"
	"closurex/internal/targets"
	"closurex/internal/vm"
)

// Config scales the evaluation.
type Config struct {
	// TrialDuration is the fuzzing time per trial (paper: 24 h).
	TrialDuration time.Duration
	// Trials per configuration (paper: 5).
	Trials int
	// Targets restricts the benchmark set; empty means all ten.
	Targets []string
	// BaseSeed derives per-trial RNG seeds.
	BaseSeed uint64
}

// DefaultConfig returns a laptop-scale configuration: 5 trials x 2 s.
func DefaultConfig() Config {
	return Config{TrialDuration: 2 * time.Second, Trials: 5, BaseSeed: 0x5eed}
}

func (c *Config) normalize() error {
	if c.TrialDuration <= 0 {
		c.TrialDuration = 2 * time.Second
	}
	if c.Trials <= 0 {
		c.Trials = 5
	}
	if len(c.Targets) == 0 {
		for _, t := range targets.Benchmarks() {
			c.Targets = append(c.Targets, t.Name)
		}
	}
	for _, n := range c.Targets {
		if targets.Get(n) == nil {
			return fmt.Errorf("experiments: unknown target %q", n)
		}
	}
	return nil
}

// Mechanisms compared in the headline tables: ClosureX vs the AFL++
// forkserver ("the fastest correct process management mechanism").
const (
	MechClosureX = "closurex"
	MechAFLpp    = "forkserver"
)

// TrialResult is one (target, mechanism, trial) cell.
type TrialResult struct {
	Target     string
	Mechanism  string
	Trial      int
	Execs      int64
	Edges      int
	TotalEdges int
	Spawns     int64
	Duration   time.Duration
	// BugTimes maps planted-bug IDs to the time of first discovery.
	BugTimes map[string]time.Duration
}

// Evaluation holds every trial of a run.
type Evaluation struct {
	Cfg     Config
	Results []TrialResult
}

// cells returns the trials for one (target, mechanism).
func (e *Evaluation) cells(target, mech string) []TrialResult {
	var out []TrialResult
	for _, r := range e.Results {
		if r.Target == target && r.Mechanism == mech {
			out = append(out, r)
		}
	}
	return out
}

// bugKeys maps fault triage keys to planted-bug IDs for a target, by
// replaying each trigger in a fresh image of the ClosureX build (the same
// build the campaigns run, so keys match).
func bugKeys(t *targets.Target) (map[string]string, error) {
	if len(t.Bugs) == 0 {
		return nil, nil
	}
	mod, err := core.Build(t.Short+".c", t.Source, core.ClosureX)
	if err != nil {
		return nil, err
	}
	out := make(map[string]string, len(t.Bugs))
	for i := range t.Bugs {
		bug := &t.Bugs[i]
		v, err := vm.New(mod, vm.Options{DeterministicRand: true, RandSeed: 1})
		if err != nil {
			return nil, err
		}
		v.SetInput(bug.Trigger)
		res := v.Call("target_main")
		if res.Fault == nil {
			return nil, fmt.Errorf("experiments: trigger for %s does not crash", bug.ID)
		}
		out[res.Fault.Key()] = bug.ID
	}
	return out, nil
}

// RunEvaluation executes the full campaign matrix: every configured target
// under both mechanisms, Trials times each. Tables 5, 6 and 7 all derive
// from the returned evaluation, exactly as the paper derives its three
// tables from one set of 24-hour campaigns.
func RunEvaluation(cfg Config) (*Evaluation, error) {
	if err := cfg.normalize(); err != nil {
		return nil, err
	}
	eval := &Evaluation{Cfg: cfg}
	for _, name := range cfg.Targets {
		t := targets.Get(name)
		keys, err := bugKeys(t)
		if err != nil {
			return nil, err
		}
		for _, mech := range []string{MechClosureX, MechAFLpp} {
			for trial := 0; trial < cfg.Trials; trial++ {
				r, err := runTrial(t, mech, cfg, trial, keys)
				if err != nil {
					return nil, err
				}
				eval.Results = append(eval.Results, r)
			}
		}
	}
	return eval, nil
}

func runTrial(t *targets.Target, mech string, cfg Config, trial int, keys map[string]string) (TrialResult, error) {
	seed := cfg.BaseSeed ^ (uint64(trial+1) * 0x9e3779b97f4a7c15)
	inst, err := core.NewInstance(t, mech, core.InstanceOptions{TrialSeed: seed})
	if err != nil {
		return TrialResult{}, err
	}
	defer inst.Close()
	inst.Campaign.RunFor(cfg.TrialDuration)
	res := TrialResult{
		Target:     t.Name,
		Mechanism:  mech,
		Trial:      trial,
		Execs:      inst.Campaign.Execs(),
		Edges:      inst.Campaign.Edges(),
		TotalEdges: inst.TotalEdges(),
		Spawns:     inst.Mech.Spawns(),
		Duration:   cfg.TrialDuration,
		BugTimes:   map[string]time.Duration{},
	}
	for _, cr := range inst.Campaign.Crashes() {
		if id, ok := keys[cr.Key]; ok {
			res.BugTimes[id] = cr.FirstAt
		}
	}
	return res, nil
}

// execsOf extracts Execs as float64s for significance testing.
func execsOf(rs []TrialResult) []float64 {
	out := make([]float64, len(rs))
	for i, r := range rs {
		out[i] = float64(r.Execs)
	}
	return out
}

// covOf extracts coverage percentages.
func covOf(rs []TrialResult) []float64 {
	out := make([]float64, len(rs))
	for i, r := range rs {
		if r.TotalEdges > 0 {
			out[i] = 100 * float64(r.Edges) / float64(r.TotalEdges)
		}
	}
	return out
}

// mean over int64-backed float extraction.
func meanExecs(rs []TrialResult) float64 {
	if len(rs) == 0 {
		return 0
	}
	var s float64
	for _, r := range rs {
		s += float64(r.Execs)
	}
	return s / float64(len(rs))
}

// fuzzQueue builds a corpus for the correctness study via a short ClosureX
// campaign (the paper replays "the comprehensive test case queue").
func fuzzQueue(t *targets.Target, execs int64, seed uint64) ([][]byte, error) {
	inst, err := core.NewInstance(t, MechClosureX, core.InstanceOptions{TrialSeed: seed, ImagePagesOverride: -1})
	if err != nil {
		return nil, err
	}
	defer inst.Close()
	inst.Campaign.RunExecs(execs)
	var queue [][]byte
	for _, e := range inst.Campaign.Queue() {
		queue = append(queue, append([]byte(nil), e.Input...))
	}
	return queue, nil
}
