package experiments

// Parallel-scaling experiment: one target fuzzed by the parallel campaign
// executor at increasing shard counts, reporting aggregate throughput per
// J. The JSON emitter backs `make benchjson` (BENCH_parallel.json) so CI
// can track scaling regressions numerically rather than eyeballing
// benchmark logs.

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"closurex/internal/core"
	"closurex/internal/targets"
)

// ScalingRow is one shard-count point of the parallel-scaling experiment.
// Restarts/Quarantined are supervision tripwires: a fault-free scaling run
// must report zero for both, so any nonzero value in BENCH_parallel.json
// flags organic shard faults that would distort the throughput numbers.
type ScalingRow struct {
	Jobs        int     `json:"jobs"`
	Execs       int64   `json:"execs"`
	Seconds     float64 `json:"seconds"`
	ExecsPerSec float64 `json:"execs_per_sec"`
	Edges       int     `json:"edges"`
	Speedup     float64 `json:"speedup"` // throughput relative to jobs=1
	Restarts    int64   `json:"restarts"`
	Quarantined int     `json:"quarantined_shards"`
}

// ScalingReport is the JSON envelope BENCH_parallel.json carries.
type ScalingReport struct {
	Target     string       `json:"target"`
	Mechanism  string       `json:"mechanism"`
	ExecsPerJ  int64        `json:"execs_per_point"`
	GOMAXPROCS int          `json:"gomaxprocs"`
	Rows       []ScalingRow `json:"rows"`
}

// DefaultScalingJobs returns the shard counts the scaling experiment
// sweeps: 1, 2, 4 and GOMAXPROCS (deduplicated, ascending).
func DefaultScalingJobs() []int {
	procs := runtime.GOMAXPROCS(0)
	jobs := []int{1, 2, 4}
	for _, j := range jobs {
		if j == procs {
			return jobs
		}
	}
	if procs > 4 {
		return append(jobs, procs)
	}
	var out []int
	for _, j := range jobs {
		if j <= procs {
			out = append(out, j)
		}
	}
	if len(out) == 0 || out[len(out)-1] != procs {
		out = append(out, procs)
	}
	return out
}

// RunParallelScaling fuzzes target under the closurex mechanism at each
// shard count in jobsList, running execsPerPoint aggregate executions per
// point, and reports throughput. Every point uses the same trial seed, so
// the J=1 row is exactly the sequential campaign the speedups normalize
// against.
func RunParallelScaling(target string, jobsList []int, execsPerPoint int64, seed uint64) (*ScalingReport, error) {
	t := targets.Get(target)
	if t == nil {
		return nil, fmt.Errorf("experiments: unknown target %q", target)
	}
	if execsPerPoint <= 0 {
		execsPerPoint = 50000
	}
	if len(jobsList) == 0 {
		jobsList = DefaultScalingJobs()
	}
	rep := &ScalingReport{
		Target:     target,
		Mechanism:  MechClosureX,
		ExecsPerJ:  execsPerPoint,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
	}
	for _, jobs := range jobsList {
		inst, err := core.NewInstance(t, MechClosureX, core.InstanceOptions{
			TrialSeed: seed,
			Jobs:      jobs,
		})
		if err != nil {
			return nil, fmt.Errorf("experiments: jobs=%d: %w", jobs, err)
		}
		start := time.Now()
		inst.Driver().RunExecs(execsPerPoint)
		elapsed := time.Since(start)
		row := ScalingRow{
			Jobs:    jobs,
			Execs:   inst.Driver().Execs(),
			Seconds: elapsed.Seconds(),
			Edges:   inst.Driver().Edges(),
		}
		if elapsed > 0 {
			row.ExecsPerSec = float64(row.Execs) / elapsed.Seconds()
		}
		if inst.Parallel != nil {
			for _, h := range inst.Parallel.Health() {
				row.Restarts += h.Restarts
				if h.Quarantined {
					row.Quarantined++
				}
			}
		}
		if len(rep.Rows) > 0 && rep.Rows[0].ExecsPerSec > 0 {
			row.Speedup = row.ExecsPerSec / rep.Rows[0].ExecsPerSec
		} else {
			row.Speedup = 1
		}
		rep.Rows = append(rep.Rows, row)
		inst.Close()
	}
	return rep, nil
}

// FormatScaling renders the scaling report as an aligned text table.
func FormatScaling(rep *ScalingReport) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Parallel scaling: %s under %s (%d execs per point, GOMAXPROCS=%d)\n",
		rep.Target, rep.Mechanism, rep.ExecsPerJ, rep.GOMAXPROCS)
	fmt.Fprintf(&b, "  %-6s %12s %10s %12s %8s %8s\n", "jobs", "execs", "seconds", "execs/s", "speedup", "edges")
	for _, r := range rep.Rows {
		fmt.Fprintf(&b, "  %-6d %12d %10.3f %12.0f %7.2fx %8d\n",
			r.Jobs, r.Execs, r.Seconds, r.ExecsPerSec, r.Speedup, r.Edges)
	}
	return b.String()
}

// WriteScalingJSON writes the report to path as indented JSON (the
// BENCH_parallel.json artifact).
func WriteScalingJSON(path string, rep *ScalingReport) error {
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
