package experiments

// Parallel-scaling experiment: one target fuzzed by the parallel campaign
// executor at increasing shard counts, reporting aggregate throughput per
// J. The JSON emitter backs `make benchjson` (BENCH_parallel.json) so CI
// can track scaling regressions numerically rather than eyeballing
// benchmark logs.

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"closurex/internal/core"
	"closurex/internal/targets"
	"closurex/internal/vm"
)

// ScalingRow is one shard-count point of the parallel-scaling experiment.
// Restarts/Quarantined are supervision tripwires: a fault-free scaling run
// must report zero for both, so any nonzero value in BENCH_parallel.json
// flags organic shard faults that would distort the throughput numbers.
type ScalingRow struct {
	Jobs        int     `json:"jobs"`
	Execs       int64   `json:"execs"`
	Seconds     float64 `json:"seconds"`
	ExecsPerSec float64 `json:"execs_per_sec"`
	Edges       int     `json:"edges"`
	Speedup     float64 `json:"speedup"` // throughput relative to jobs=1
	Restarts    int64   `json:"restarts"`
	Quarantined int     `json:"quarantined_shards"`
}

// BackendScaling is one execution backend's shard-count sweep.
type BackendScaling struct {
	Backend string       `json:"backend"`
	Rows    []ScalingRow `json:"rows"`
}

// ScalingReport is the JSON envelope BENCH_parallel.json carries. The
// headline numbers are the jobs == GOMAXPROCS row of the default
// (interpreter) sweep — the configuration a real campaign on this host
// would run — rather than an oversubscribed point; the full sweeps for
// both backends follow.
type ScalingReport struct {
	Target     string `json:"target"`
	Mechanism  string `json:"mechanism"`
	ExecsPerJ  int64  `json:"execs_per_point"`
	GOMAXPROCS int    `json:"gomaxprocs"`

	HeadlineJobs        int     `json:"headline_jobs"`
	HeadlineExecsPerSec float64 `json:"headline_execs_per_sec"`
	HeadlineSpeedup     float64 `json:"headline_speedup"`

	Sweeps []BackendScaling `json:"sweeps"`
}

// DefaultScalingJobs returns the shard counts the scaling experiment
// sweeps: 1, 2, 4 and GOMAXPROCS (deduplicated, ascending).
func DefaultScalingJobs() []int {
	procs := runtime.GOMAXPROCS(0)
	jobs := []int{1, 2, 4}
	for _, j := range jobs {
		if j == procs {
			return jobs
		}
	}
	if procs > 4 {
		return append(jobs, procs)
	}
	var out []int
	for _, j := range jobs {
		if j <= procs {
			out = append(out, j)
		}
	}
	if len(out) == 0 || out[len(out)-1] != procs {
		out = append(out, procs)
	}
	return out
}

// scalingSweep runs one backend's shard-count sweep.
func scalingSweep(t *targets.Target, backend string, jobsList []int, execsPerPoint int64, seed uint64) ([]ScalingRow, error) {
	var rows []ScalingRow
	for _, jobs := range jobsList {
		inst, err := core.NewInstance(t, MechClosureX, core.InstanceOptions{
			TrialSeed: seed,
			Jobs:      jobs,
			Backend:   backend,
		})
		if err != nil {
			return nil, fmt.Errorf("experiments: backend=%s jobs=%d: %w", backend, jobs, err)
		}
		start := time.Now()
		inst.Driver().RunExecs(execsPerPoint)
		elapsed := time.Since(start)
		row := ScalingRow{
			Jobs:    jobs,
			Execs:   inst.Driver().Execs(),
			Seconds: elapsed.Seconds(),
			Edges:   inst.Driver().Edges(),
		}
		if elapsed > 0 {
			row.ExecsPerSec = float64(row.Execs) / elapsed.Seconds()
		}
		if inst.Parallel != nil {
			for _, h := range inst.Parallel.Health() {
				row.Restarts += h.Restarts
				if h.Quarantined {
					row.Quarantined++
				}
			}
		}
		if len(rows) > 0 && rows[0].ExecsPerSec > 0 {
			row.Speedup = row.ExecsPerSec / rows[0].ExecsPerSec
		} else {
			row.Speedup = 1
		}
		rows = append(rows, row)
		inst.Close()
	}
	return rows, nil
}

// RunParallelScaling fuzzes target under the closurex mechanism at each
// shard count in jobsList, once per execution backend (interpreter and
// compiled tier), running execsPerPoint aggregate executions per point.
// Every point uses the same trial seed, so each sweep's J=1 row is exactly
// the sequential campaign its speedups normalize against. The report's
// headline is the interpreter sweep's jobs == GOMAXPROCS row.
func RunParallelScaling(target string, jobsList []int, execsPerPoint int64, seed uint64) (*ScalingReport, error) {
	t := targets.Get(target)
	if t == nil {
		return nil, fmt.Errorf("experiments: unknown target %q", target)
	}
	if execsPerPoint <= 0 {
		execsPerPoint = 50000
	}
	if len(jobsList) == 0 {
		jobsList = DefaultScalingJobs()
	}
	rep := &ScalingReport{
		Target:     target,
		Mechanism:  MechClosureX,
		ExecsPerJ:  execsPerPoint,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
	}
	for _, backend := range []string{vm.InterpBackend, CompileBackendName} {
		rows, err := scalingSweep(t, backend, jobsList, execsPerPoint, seed)
		if err != nil {
			return nil, err
		}
		rep.Sweeps = append(rep.Sweeps, BackendScaling{Backend: backend, Rows: rows})
	}
	// Headline: the jobs == GOMAXPROCS point of the default (interpreter)
	// sweep; when the sweep has no exact match (GOMAXPROCS not in
	// jobsList), the largest jobs <= GOMAXPROCS stands in.
	head := rep.Sweeps[0].Rows
	hi := 0
	for i, r := range head {
		if r.Jobs <= rep.GOMAXPROCS && r.Jobs >= head[hi].Jobs {
			hi = i
		}
		if r.Jobs == rep.GOMAXPROCS {
			hi = i
			break
		}
	}
	rep.HeadlineJobs = head[hi].Jobs
	rep.HeadlineExecsPerSec = head[hi].ExecsPerSec
	rep.HeadlineSpeedup = head[hi].Speedup
	return rep, nil
}

// FormatScaling renders the scaling report as aligned text tables, one
// per backend sweep.
func FormatScaling(rep *ScalingReport) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Parallel scaling: %s under %s (%d execs per point, GOMAXPROCS=%d)\n",
		rep.Target, rep.Mechanism, rep.ExecsPerJ, rep.GOMAXPROCS)
	fmt.Fprintf(&b, "  headline: jobs=%d  %0.f execs/s  (%.2fx vs sequential)\n",
		rep.HeadlineJobs, rep.HeadlineExecsPerSec, rep.HeadlineSpeedup)
	for _, sw := range rep.Sweeps {
		fmt.Fprintf(&b, "  backend=%s\n", sw.Backend)
		fmt.Fprintf(&b, "  %-6s %12s %10s %12s %8s %8s\n", "jobs", "execs", "seconds", "execs/s", "speedup", "edges")
		for _, r := range sw.Rows {
			fmt.Fprintf(&b, "  %-6d %12d %10.3f %12.0f %7.2fx %8d\n",
				r.Jobs, r.Execs, r.Seconds, r.ExecsPerSec, r.Speedup, r.Edges)
		}
	}
	return b.String()
}

// WriteScalingJSON writes the report to path as indented JSON (the
// BENCH_parallel.json artifact).
func WriteScalingJSON(path string, rep *ScalingReport) error {
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
