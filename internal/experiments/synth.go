package experiments

// Synthesized-harness gain experiment: for every benchmark target, run the
// manual harness and the statically synthesized dispatch harness from the
// same trial seed and compare coverage bitmaps cell by cell. The merged
// map must be a strict superset of the manual-only map — the synthesized
// arms, selector dispatch and closurex_init preconditions reach cells the
// manual campaign does not — and any CLX130 from certification is a synth
// bug the bench refuses to average away. The JSON emitter backs `make
// benchjson` (BENCH_synth.json).

import (
	"encoding/json"
	"fmt"
	"os"
	"strings"

	"closurex/internal/analysis"
	"closurex/internal/analysis/synth"
	"closurex/internal/core"
	"closurex/internal/targets"
)

// SynthGainRow is one target's point of the synthesized-harness experiment.
type SynthGainRow struct {
	Target string `json:"target"`
	// Synthesis outcome.
	Synthesized bool   `json:"synthesized"`
	Reason      string `json:"reason,omitempty"` // why synthesis declined
	Arms        int    `json:"arms"`
	// Codes counts the synthesis run's diagnostics per catalog ID.
	Codes map[string]int `json:"codes,omitempty"`
	// Coverage census: covered bitmap cells after the same exec budget.
	ManualCells int `json:"manual_cells"`
	SynthCells  int `json:"synth_cells"`
	MergedCells int `json:"merged_cells"`
	// NewCells is |synth \ manual|; strict superset iff > 0.
	NewCells       int  `json:"new_cells"`
	StrictSuperset bool `json:"strict_superset"`
}

// SynthGainReport is the JSON envelope BENCH_synth.json carries.
type SynthGainReport struct {
	Mechanism      string         `json:"mechanism"`
	ExecsPerTarget int64          `json:"execs_per_target"`
	Rows           []SynthGainRow `json:"rows"`
	// Aggregates.
	TargetsSynthesized int `json:"targets_synthesized"`
	TargetsSuperset    int `json:"targets_superset"`
	TotalNewCells      int `json:"total_new_cells"`
	// CLX130 totals certification failures across all targets. Any
	// non-zero value is a synthesizer bug: the bench CLI fails on it.
	CLX130 int `json:"clx130"`
}

// RunSynthGain synthesizes a harness per benchmark target, registers it,
// and measures manual vs manual+synthesized coverage after execsPerTarget
// executions each (deterministic campaigns from the same trial seed).
func RunSynthGain(execsPerTarget int64, seed uint64) (*SynthGainReport, error) {
	if execsPerTarget <= 0 {
		execsPerTarget = 10000
	}
	rep := &SynthGainReport{
		Mechanism:      MechClosureX,
		ExecsPerTarget: execsPerTarget,
	}
	for _, t := range targets.Benchmarks() {
		row := SynthGainRow{Target: t.Name}

		nt, h, serr := synth.TargetFor(t, synth.Options{})
		if h != nil {
			row.Arms = len(h.Report.Arms)
			row.Codes = h.Report.Codes
			rep.CLX130 += h.Report.Codes[analysis.IDSynthCertFail]
		}
		if serr != nil {
			row.Reason = serr.Error()
		}

		manual, err := coveredCells(t, execsPerTarget, seed)
		if err != nil {
			return nil, fmt.Errorf("experiments: %s manual: %w", t.Name, err)
		}
		row.ManualCells = countCells(manual)

		if nt != nil {
			// Re-runs in one process reuse the registered instance.
			if existing := targets.Get(nt.Name); existing != nil {
				nt = existing
			} else if err := core.RegisterTarget(nt); err != nil {
				return nil, fmt.Errorf("experiments: %s: register: %w", t.Name, err)
			}
			row.Synthesized = true
			synthMap, err := coveredCells(nt, execsPerTarget, seed)
			if err != nil {
				return nil, fmt.Errorf("experiments: %s synth: %w", t.Name, err)
			}
			row.SynthCells = countCells(synthMap)
			merged, fresh := 0, 0
			for i := range manual {
				m, s := manual[i], synthMap[i]
				if m || s {
					merged++
				}
				if s && !m {
					fresh++
				}
			}
			row.MergedCells = merged
			row.NewCells = fresh
			row.StrictSuperset = fresh > 0
		} else {
			row.MergedCells = row.ManualCells
		}

		rep.Rows = append(rep.Rows, row)
		if row.Synthesized {
			rep.TargetsSynthesized++
		}
		if row.StrictSuperset {
			rep.TargetsSuperset++
		}
		rep.TotalNewCells += row.NewCells
	}
	return rep, nil
}

// coveredCells runs a deterministic sequential campaign and returns the
// per-cell covered mask of the cumulative coverage bitmap.
func coveredCells(t *targets.Target, execs int64, seed uint64) ([]bool, error) {
	inst, err := core.NewInstance(t, MechClosureX, core.InstanceOptions{
		TrialSeed:         seed,
		DeterministicRand: true,
	})
	if err != nil {
		return nil, err
	}
	defer inst.Close()
	inst.Driver().RunExecs(execs)
	snap := inst.Campaign.BitmapSnapshot()
	mask := make([]bool, len(snap))
	for i, b := range snap {
		mask[i] = b != 0
	}
	return mask, nil
}

func countCells(mask []bool) int {
	n := 0
	for _, c := range mask {
		if c {
			n++
		}
	}
	return n
}

// FormatSynthGain renders the synthesized-harness report as a table.
func FormatSynthGain(rep *SynthGainReport) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Synthesized-harness coverage gain under %s (%d execs per campaign):\n",
		rep.Mechanism, rep.ExecsPerTarget)
	fmt.Fprintf(&b, "  %-16s %5s %6s %6s %6s %6s %5s %8s\n",
		"target", "arms", "manual", "synth", "merged", "new", "sup", "clx130")
	for _, r := range rep.Rows {
		sup := "-"
		if r.Synthesized {
			sup = "no"
			if r.StrictSuperset {
				sup = "yes"
			}
		}
		fmt.Fprintf(&b, "  %-16s %5d %6d %6d %6d %+6d %5s %8d\n",
			r.Target, r.Arms, r.ManualCells, r.SynthCells, r.MergedCells,
			r.NewCells, sup, r.Codes[analysis.IDSynthCertFail])
	}
	fmt.Fprintf(&b, "  total: %d/%d targets synthesized, %d strict supersets, %+d new cells, %d CLX130\n",
		rep.TargetsSynthesized, len(rep.Rows), rep.TargetsSuperset, rep.TotalNewCells, rep.CLX130)
	return b.String()
}

// WriteSynthGainJSON writes the report to path as indented JSON (the
// BENCH_synth.json artifact).
func WriteSynthGainJSON(path string, rep *SynthGainReport) error {
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
