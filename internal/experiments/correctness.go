package experiments

import (
	"bytes"
	"fmt"

	"closurex/internal/core"
	"closurex/internal/fuzz"
	"closurex/internal/harness"
	"closurex/internal/ir"
	"closurex/internal/passes"
	"closurex/internal/targets"
	"closurex/internal/vm"
)

// CorrectnessReport is the outcome of the §6.1.4 study for one target:
// dataflow equivalence (global section bytes, heap census, descriptor
// census) and control-flow equivalence (path-sensitive edge trace) between
// a fresh-process execution and the same test case run inside ClosureX's
// persistent process after heavy pollution.
type CorrectnessReport struct {
	Target string
	// Cases is the number of queue inputs replayed.
	Cases int
	// NondetCases is how many inputs showed run-to-run nondeterminism in
	// fresh processes (PRNG-driven, as the paper observed in freetype);
	// their nondeterministic bytes are masked and their paths excluded.
	NondetCases int
	// MaskedBytes is the total number of global bytes masked.
	MaskedBytes int
	// DataflowMismatches counts inputs whose masked global snapshot, heap
	// census, descriptor census or result diverged from fresh execution.
	DataflowMismatches int
	// ControlFlowMismatches counts deterministic inputs whose edge trace
	// diverged.
	ControlFlowMismatches int
	// PollutionRuns is how many other inputs ran before each probe.
	PollutionRuns int
}

func (r CorrectnessReport) String() string {
	return fmt.Sprintf("%s: %d cases, %d nondeterministic (masked %d bytes), dataflow mismatches %d, control-flow mismatches %d",
		r.Target, r.Cases, r.NondetCases, r.MaskedBytes, r.DataflowMismatches, r.ControlFlowMismatches)
}

// CorrectnessOptions scales the study.
type CorrectnessOptions struct {
	// QueueExecs sizes the campaign that builds the replay queue.
	QueueExecs int64
	// Pollution is how many random queue inputs run before each probe
	// (paper: 1000).
	Pollution int
	// MaxCases caps replayed queue entries (0 = all).
	MaxCases int
	// Seed drives queue construction and pollution selection.
	Seed uint64
}

// DefaultCorrectnessOptions mirrors the paper at reduced scale.
func DefaultCorrectnessOptions() CorrectnessOptions {
	return CorrectnessOptions{QueueExecs: 4000, Pollution: 1000, MaxCases: 40, Seed: 0xC0FFEE}
}

// probeState is the dataflow+controlflow fingerprint of one execution.
type probeState struct {
	section    []byte
	liveChunks int
	liveBytes  uint64
	openFDs    int
	exited     bool
	exitCode   int64
	ret        int64
	crashed    bool
	pathHash   uint64
	pathLen    int
}

// freshProbe executes input in a brand-new process image of mod.
func freshProbe(mod *ir.Module, input []byte, randSeed uint64) (probeState, error) {
	v, err := vm.New(mod, vm.Options{
		TraceEdges:        true,
		DeterministicRand: true,
		RandSeed:          randSeed,
	})
	if err != nil {
		return probeState{}, err
	}
	defer v.Release()
	v.SetInput(input)
	res := v.Call(passes.TargetMain)
	return captureState(v, res), nil
}

func captureState(v *vm.VM, res vm.Result) probeState {
	ps := probeState{
		liveChunks: v.Heap.LiveChunks(),
		liveBytes:  v.Heap.LiveBytes(),
		openFDs:    v.FS.OpenCount(),
		exited:     res.Exited,
		exitCode:   res.ExitCode,
		ret:        res.Ret,
		crashed:    res.Crashed(),
		pathHash:   res.PathHash,
		pathLen:    res.PathLen,
	}
	if sec, ok := v.SnapshotSection(ir.SectionClosure); ok {
		ps.section = sec
	}
	return ps
}

// RunCorrectness performs the study for one target.
func RunCorrectness(targetName string, opts CorrectnessOptions) (CorrectnessReport, error) {
	t := targets.Get(targetName)
	if t == nil {
		return CorrectnessReport{}, fmt.Errorf("experiments: unknown target %q", targetName)
	}
	if opts.QueueExecs <= 0 {
		opts = DefaultCorrectnessOptions()
	}
	rep := CorrectnessReport{Target: t.Name, PollutionRuns: opts.Pollution}

	mod, err := core.Build(t.Short+".c", t.Source, core.ClosureX)
	if err != nil {
		return rep, err
	}
	queue, err := fuzzQueue(t, opts.QueueExecs, opts.Seed)
	if err != nil {
		return rep, err
	}
	if opts.MaxCases > 0 && len(queue) > opts.MaxCases {
		queue = queue[:opts.MaxCases]
	}

	// The single long-lived ClosureX process the whole study runs in.
	cxVM, err := vm.New(mod, vm.Options{TraceEdges: true})
	if err != nil {
		return rep, err
	}
	h, err := harness.New(cxVM, harness.FullRestore())
	if err != nil {
		return rep, err
	}
	rng := fuzz.NewRNG(opts.Seed ^ 0xabcdef)

	for _, input := range queue {
		// Repeated independent fresh-process executions identify the
		// natural nondeterminism to mask (the paper's ground-truth
		// procedure: "running fresh process executions multiple times").
		gt, err := groundTruth(mod, input, 3)
		if err != nil {
			return rep, err
		}

		// Pollute the persistent process, then probe the test case with
		// restoration deferred until after the snapshot.
		for i := 0; i < opts.Pollution; i++ {
			h.RunOne(queue[rng.Intn(len(queue))])
		}
		cxVM.SetInput(input)
		res := cxVM.Call(passes.TargetMain)
		cx := captureState(cxVM, res)
		h.Restore()

		dfBad := !gt.dataflowMatches(cx)
		cfBad := !gt.cfNondet && (gt.base.pathHash != cx.pathHash || gt.base.pathLen != cx.pathLen)
		if dfBad || cfBad {
			// A sampled ground truth can miss low-entropy nondeterminism
			// (e.g. a PRNG with four outcomes agreeing by chance across a
			// few runs). Escalate to many probes before declaring a real
			// inconsistency; matching ANY observed fresh state (modulo the
			// mask) counts as consistent, since each fresh run is itself a
			// legitimate ground truth.
			gt, err = groundTruth(mod, input, 48)
			if err != nil {
				return rep, err
			}
			dfBad = !gt.dataflowMatches(cx)
			cfBad = !gt.cfMatches(cx)
		}

		rep.Cases++
		if gt.cfNondet || gt.masked > 0 {
			rep.NondetCases++
			rep.MaskedBytes += gt.masked
		}
		if dfBad {
			rep.DataflowMismatches++
		}
		if cfBad {
			rep.ControlFlowMismatches++
		}
	}
	return rep, nil
}

// truth aggregates k independent fresh-process executions of one input:
// the set of observed end states, the byte mask of globals that varied,
// and whether the control-flow path varied.
type truth struct {
	base     probeState
	probes   []probeState
	mask     []bool
	cfNondet bool
	masked   int
}

// dataflowMatches reports whether cx is dataflow-equivalent to the ground
// truth: equal to the base modulo the mask, or equal to any individual
// observed fresh state (each fresh run is itself a legitimate witness).
func (g *truth) dataflowMatches(cx probeState) bool {
	if dataflowEqual(g.base, cx, g.mask) {
		return true
	}
	for i := range g.probes {
		if dataflowEqual(g.probes[i], cx, g.mask) {
			return true
		}
	}
	return false
}

// cfMatches reports control-flow equivalence: nondeterministic inputs are
// excluded (as the paper excludes freetype's PRNG-driven paths), otherwise
// cx's path must match the base or any observed fresh path.
func (g *truth) cfMatches(cx probeState) bool {
	if g.cfNondet {
		return true
	}
	if g.base.pathHash == cx.pathHash && g.base.pathLen == cx.pathLen {
		return true
	}
	for i := range g.probes {
		if g.probes[i].pathHash == cx.pathHash && g.probes[i].pathLen == cx.pathLen {
			return true
		}
	}
	return false
}

// groundTruth runs k fresh-process executions with distinct PRNG seeds.
func groundTruth(mod *ir.Module, input []byte, k int) (*truth, error) {
	base, err := freshProbe(mod, input, 101)
	if err != nil {
		return nil, err
	}
	g := &truth{base: base, mask: make([]bool, len(base.section))}
	for p := 1; p < k; p++ {
		pr, err := freshProbe(mod, input, 101+uint64(p)*7919)
		if err != nil {
			return nil, err
		}
		for i := range base.section {
			if i < len(pr.section) && base.section[i] != pr.section[i] && !g.mask[i] {
				g.mask[i] = true
				g.masked++
			}
		}
		if pr.pathHash != base.pathHash || pr.pathLen != base.pathLen {
			g.cfNondet = true
		}
		g.probes = append(g.probes, pr)
	}
	return g, nil
}

// dataflowEqual compares two post-execution states modulo the
// nondeterminism mask.
func dataflowEqual(want, got probeState, mask []bool) bool {
	if want.crashed != got.crashed || want.exited != got.exited {
		return false
	}
	if want.exited && want.exitCode != got.exitCode {
		return false
	}
	if !want.exited && !want.crashed && want.ret != got.ret {
		return false
	}
	if want.liveChunks != got.liveChunks || want.liveBytes != got.liveBytes {
		return false
	}
	if want.openFDs != got.openFDs {
		return false
	}
	if len(want.section) != len(got.section) {
		return false
	}
	if len(mask) == 0 {
		return bytes.Equal(want.section, got.section)
	}
	for i := range want.section {
		if mask[i] {
			continue
		}
		if want.section[i] != got.section[i] {
			return false
		}
	}
	return true
}
