package experiments

import (
	"testing"
	"time"
)

func TestReproducibilityPathology(t *testing.T) {
	if testing.Short() {
		t.Skip("reproducibility run")
	}
	rep, err := RunReproducibility("gpmf-parser", 2*time.Second, 3)
	if err != nil {
		t.Fatal(err)
	}
	if rep.ClosureXFound == 0 {
		t.Fatal("closurex found nothing; budget too small")
	}
	// Every ClosureX crash must replay in a fresh process — the paper's
	// correctness claim at crash-triage level.
	if rep.ClosureXRate() != 1.0 {
		t.Fatalf("closurex produced non-reproducible crashes: %s", rep)
	}
	// The naive-persistent campaign reports the PREV stale-state crash,
	// which cannot reproduce (the triggering global is only nonzero after
	// a prior run in the same process).
	if rep.NaiveFound > 0 && rep.NaiveRate() == 1.0 {
		t.Logf("note: naive campaign found no stale-state crash this run: %s", rep)
	}
	if rep.NaiveRate() > 1.0 || rep.NaiveRate() < 0 {
		t.Fatalf("rate out of range: %s", rep)
	}
	if rep.String() == "" {
		t.Fatal("empty report")
	}
}

func TestReproducibilityUnknownTarget(t *testing.T) {
	if _, err := RunReproducibility("nope", time.Second, 1); err == nil {
		t.Fatal("unknown target accepted")
	}
}

// The PREV crash is deterministic to provoke by hand: one rich input then
// the PREV-only input inside one naive-persistent process.
func TestStaleStateCrashIsNotReproducible(t *testing.T) {
	rep, err := provokePrevCrash()
	if err != nil {
		t.Fatal(err)
	}
	if !rep.naiveCrashed {
		t.Fatal("PREV input did not crash under naive persistence")
	}
	if rep.freshCrashed {
		t.Fatal("PREV input crashed in a fresh process — not a stale-state crash")
	}
	if rep.closurexCrashed {
		t.Fatal("PREV input crashed under ClosureX — restoration failed")
	}
}
