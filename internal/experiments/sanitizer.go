package experiments

// Sanitizer-overhead experiment: one target fuzzed under the closurex
// mechanism with the sanitizer off, on, and on with static check elision,
// reporting throughput per mode. The JSON emitter backs `make benchjson`
// (BENCH_sanitizer.json) so CI can track both the cost of the shadow
// plane and the fraction of it the elision analysis buys back.

import (
	"encoding/json"
	"fmt"
	"os"
	"strings"
	"time"

	"closurex/internal/analysis/sanitize"
	"closurex/internal/core"
	"closurex/internal/targets"
)

// SanitizerRow is one sanitize-mode point of the overhead experiment.
type SanitizerRow struct {
	Mode        string  `json:"mode"` // off | on | on+elide
	Execs       int64   `json:"execs"`
	Seconds     float64 `json:"seconds"`
	ExecsPerSec float64 `json:"execs_per_sec"`
	Overhead    float64 `json:"overhead"` // exec time relative to mode=off
	Edges       int     `json:"edges"`
}

// SanitizerReport is the JSON envelope BENCH_sanitizer.json carries.
type SanitizerReport struct {
	Target       string         `json:"target"`
	Mechanism    string         `json:"mechanism"`
	ExecsPerMode int64          `json:"execs_per_mode"`
	Checks       int            `json:"static_checks"` // checks left after elision
	Elided       int            `json:"static_elided"`
	ElisionRate  float64        `json:"elision_rate"`
	Rows         []SanitizerRow `json:"rows"`
}

// sanitizerTrials is how many times each mode is timed; the fastest trial
// is reported. The modes differ only in instruction count (elide executes a
// strict subset of on's shadow checks), so min-of-N filters scheduler and
// GC noise out of what is otherwise a monotone ordering.
const sanitizerTrials = 3

// RunSanitizerOverhead fuzzes target under the closurex mechanism in each
// sanitize mode, running execsPerMode executions per point from the same
// trial seed, and reports the best-of-N throughput plus the static elision
// statistics of the instrumented build.
func RunSanitizerOverhead(target string, execsPerMode int64, seed uint64) (*SanitizerReport, error) {
	t := targets.Get(target)
	if t == nil {
		return nil, fmt.Errorf("experiments: unknown target %q", target)
	}
	if execsPerMode <= 0 {
		execsPerMode = 20000
	}
	rep := &SanitizerReport{
		Target:       target,
		Mechanism:    MechClosureX,
		ExecsPerMode: execsPerMode,
	}
	mod, err := core.BuildSanitized(t.Short+".c", t.Source, core.ClosureX, core.SanitizeElide)
	if err != nil {
		return nil, fmt.Errorf("experiments: %s: %w", target, err)
	}
	sr := sanitize.ReportModule(mod)
	rep.Checks, rep.Elided = sr.Totals()
	rep.ElisionRate = sr.Rate()

	for _, mode := range []core.SanitizeMode{core.SanitizeOff, core.SanitizeNoElide, core.SanitizeElide} {
		var row SanitizerRow
		row.Mode = mode.String()
		for trial := 0; trial < sanitizerTrials; trial++ {
			inst, err := core.NewInstance(t, MechClosureX, core.InstanceOptions{
				TrialSeed: seed,
				Sanitize:  mode,
			})
			if err != nil {
				return nil, fmt.Errorf("experiments: mode=%s: %w", mode, err)
			}
			start := time.Now()
			inst.Driver().RunExecs(execsPerMode)
			elapsed := time.Since(start)
			execs := inst.Driver().Execs()
			edges := inst.Driver().Edges()
			inst.Close()
			if trial == 0 || elapsed.Seconds() < row.Seconds {
				row.Execs = execs
				row.Seconds = elapsed.Seconds()
				row.Edges = edges
			}
		}
		if row.Seconds > 0 {
			row.ExecsPerSec = float64(row.Execs) / row.Seconds
		}
		if len(rep.Rows) > 0 && row.ExecsPerSec > 0 {
			row.Overhead = rep.Rows[0].ExecsPerSec / row.ExecsPerSec
		} else {
			row.Overhead = 1
		}
		rep.Rows = append(rep.Rows, row)
	}
	return rep, nil
}

// FormatSanitizer renders the overhead report as an aligned text table.
func FormatSanitizer(rep *SanitizerReport) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Sanitizer overhead: %s under %s (%d execs per mode; %d checks, %d elided = %.1f%%)\n",
		rep.Target, rep.Mechanism, rep.ExecsPerMode, rep.Checks, rep.Elided, 100*rep.ElisionRate)
	fmt.Fprintf(&b, "  %-10s %12s %10s %12s %9s %8s\n", "mode", "execs", "seconds", "execs/s", "overhead", "edges")
	for _, r := range rep.Rows {
		fmt.Fprintf(&b, "  %-10s %12d %10.3f %12.0f %8.2fx %8d\n",
			r.Mode, r.Execs, r.Seconds, r.ExecsPerSec, r.Overhead, r.Edges)
	}
	return b.String()
}

// WriteSanitizerJSON writes the report to path as indented JSON (the
// BENCH_sanitizer.json artifact).
func WriteSanitizerJSON(path string, rep *SanitizerReport) error {
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
