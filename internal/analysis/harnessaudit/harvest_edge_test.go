package harnessaudit_test

// Edge cases of the witness harvest / auto-dictionary: an empty manual
// dictionary audits cleanly (no CLX121, zero token axes), isolated
// single-byte compares never become tokens (a one-byte dictionary entry is
// mutation noise), multi-byte magics harvest in both endiannesses with
// palindromes content-deduplicated, and the assembled dictionary is
// deterministically ordered by (length, bytes) across repeated harvests.

import (
	"bytes"
	"reflect"
	"testing"

	"closurex/internal/analysis"
	"closurex/internal/analysis/harnessaudit"
)

// emptyDictSrc: healthy input flow, no dictionary anywhere.
const emptyDictSrc = `
int main(void) {
	int f = fopen("/input", "r");
	if (!f) return 0;
	char b[4];
	int n = fread(b, 1, 4, f);
	fclose(f);
	if (n > 1 && b[0] == 'Q') return 1;
	return 0;
}
`

func TestAuditEmptyManualDict(t *testing.T) {
	card, ds := harnessaudit.Audit("empty-dict", build(t, emptyDictSrc), harnessaudit.Options{})
	if ids := ds.ByID(analysis.IDDeadDictToken); len(ids) != 0 {
		t.Fatalf("CLX121 fired with no manual dictionary:\n%s", ds.String())
	}
	if card.DictTokens != 0 || card.LiveDictTokens != 0 || len(card.DeadDictTokens) != 0 {
		t.Fatalf("dict axes non-zero for an absent dictionary: tokens=%d live=%d dead=%v",
			card.DictTokens, card.LiveDictTokens, card.DeadDictTokens)
	}
	if card.DictLivePct != 100 {
		t.Fatalf("an absent dictionary is healthy, not failing: live pct = %v", card.DictLivePct)
	}
}

// isolatedByteSrc: two byte compares in far-apart control flow — no
// consecutive-block run forms, so no token may be emitted (one-byte
// dictionary tokens are rejected by construction).
const isolatedByteSrc = `
int main(void) {
	int f = fopen("/input", "r");
	if (!f) return 0;
	char b[8];
	int n = fread(b, 1, 8, f);
	fclose(f);
	int r = 0;
	if (n > 4) {
		if (b[0] == 'A') { r = r + 1; } else { r = r + 2; }
		if (r > 2) { r = r * 2; } else { r = r * 3; }
		if (r < 9) { r = r + 5; } else { r = r + 7; }
		if (b[3] == 'Z') { r = r + 9; }
	}
	return r;
}
`

// chainedByteSrc: the same checks accumulated branch-free land every
// compare in one straight-line block — inside the clustering window — and
// form one multi-byte token. (The final gate is an ordered compare on
// purpose: only equality witnesses join runs.)
const chainedByteSrc = `
int main(void) {
	int f = fopen("/input", "r");
	if (!f) return 0;
	char b[8];
	int n = fread(b, 1, 8, f);
	fclose(f);
	if (n < 4) return 0;
	int t = (b[0] == 'G') + (b[1] == 'I') + (b[2] == 'F');
	if (t > 2) return 1;
	return 0;
}
`

func TestHarvestSingleByteWitnessesFormNoToken(t *testing.T) {
	toks := harnessaudit.Harvest(build(t, isolatedByteSrc))
	for _, tok := range toks {
		if len(tok) < 2 {
			t.Fatalf("harvest emitted a single-byte token %q", tok)
		}
	}
	if len(toks) != 0 {
		t.Fatalf("isolated byte compares must not cluster into tokens, got %q", toks)
	}

	toks = harnessaudit.Harvest(build(t, chainedByteSrc))
	found := false
	for _, tok := range toks {
		if bytes.Equal(tok, []byte("GIF")) {
			found = true
		}
		if len(tok) < 2 {
			t.Fatalf("harvest emitted a single-byte token %q", tok)
		}
	}
	if !found {
		t.Fatalf("chained byte compares should cluster into GIF, got %q", toks)
	}
}

// endianSrc compares a 16-bit magic whose two encodings differ (0x4241 →
// LE "AB", BE "BA") and a palindromic one whose encodings collide
// (0x4343 → "CC" both ways); the same distinct magic is checked twice, in
// main and in a helper fed the same tainted halfword.
const endianSrc = `
int recheck(int v) {
	if (v == 0x4241) return 2;
	return 0;
}
int main(void) {
	int f = fopen("/input", "r");
	if (!f) return 0;
	char b[4];
	int n = fread(b, 1, 4, f);
	fclose(f);
	if (n < 2) return 0;
	int v = b[0] | (b[1] << 8);
	if (v == 0x4241) return 1;
	if (v == 0x4343) return recheck(v);
	return 0;
}
`

func TestHarvestOverlappingEndianWitnessesDedup(t *testing.T) {
	toks := harnessaudit.Harvest(build(t, endianSrc))
	count := map[string]int{}
	for _, tok := range toks {
		count[string(tok)]++
	}
	// Distinct encodings: both orders present, each exactly once even
	// though the magic is compared at two sites.
	for _, want := range []string{"AB", "BA"} {
		if count[want] != 1 {
			t.Errorf("token %q harvested %d times, want exactly once (dedup across sites and endianness overlap)", want, count[want])
		}
	}
	// Palindromic magic: LE and BE render the same bytes — content dedup
	// must collapse them to a single token.
	if count["CC"] != 1 {
		t.Errorf("palindromic magic harvested %d times, want the overlapping LE/BE encodings deduplicated to one", count["CC"])
	}
}

// orderSrc mixes 2-byte and 4-byte magics so the assembled dictionary
// exercises the (length, bytes) ordering contract.
const orderSrc = `
int main(void) {
	int f = fopen("/input", "r");
	if (!f) return 0;
	char b[8];
	int n = fread(b, 1, 8, f);
	fclose(f);
	if (n < 4) return 0;
	int v = b[0] | (b[1] << 8);
	int w = b[0] | (b[1] << 8) | (b[2] << 16) | (b[3] << 24);
	if (v == 0x5958) return 1;
	if (w == 0x44434241) return 2;
	if (v == 0x4746) return 3;
	return 0;
}
`

func TestHarvestDeterministicOrdering(t *testing.T) {
	m := build(t, orderSrc)
	toks := harnessaudit.Harvest(m)
	// (length, bytes) ascending: all 2-byte tokens sorted byte-wise, then
	// the 4-byte encodings.
	want := [][]byte{
		[]byte("FG"), []byte("GF"), []byte("XY"), []byte("YX"),
		[]byte("ABCD"), []byte("DCBA"),
	}
	if !reflect.DeepEqual(toks, want) {
		t.Fatalf("harvest order = %q, want %q", toks, want)
	}
	if again := harnessaudit.Harvest(m); !reflect.DeepEqual(again, toks) {
		t.Fatalf("repeated harvest diverged:\n  first  %q\n  second %q", toks, again)
	}
}
