package harnessaudit

// Coverage-geometry analysis (CLX120). CoveragePass gives every block a
// deterministic 16-bit probe ID, repairing hash collisions by linear
// probing; the runtime bitmap (fuzz.MapSize cells) indexes by probe ID
// xor-folded with the previous location. Geometry degrades two ways:
//
//   - saturation: once the probe population approaches the cell count,
//     distinct edges alias the same cells and the campaign can no longer
//     tell new coverage from old — the bitmap reads as "explored" while
//     the target is not.
//   - displacement: every collision-repaired probe sits at id+k instead of
//     its hash slot. Displacement is correct (collision-free by
//     construction) but its *density* measures how crowded the hash space
//     already is — the leading indicator of saturation.
//
// The analysis is parameterized by the cell count so the seeded-defect
// tests can hand it a deliberately tiny map; production audits use the
// real 2^16 geometry, where all benchmark targets sit far below both
// thresholds.

import (
	"fmt"

	"closurex/internal/analysis"
	"closurex/internal/ir"
	"closurex/internal/passes"
)

// mapCellsDefault is the production coverage-map size.
const mapCellsDefault = passes.CovMapCells

// geomResult is the module's coverage-geometry accounting.
type geomResult struct {
	probes      int // OpCov instructions
	staticEdges int // passes.TotalEdges: the coverage denominator
	mapCells    int
	displaced   int // probes whose Imm differs from their preferred hash slot
}

// analyzeGeometry reads the committed probe assignments back out of the
// module and compares each against the slot CoveragePass would have
// preferred for (seed, function, block).
func analyzeGeometry(m *ir.Module, mapCells int, covSeed uint64) *geomResult {
	res := &geomResult{
		staticEdges: passes.TotalEdges(m),
		mapCells:    mapCells,
	}
	for _, f := range m.Funcs {
		for bi, b := range f.Blocks {
			for ii := range b.Instrs {
				in := &b.Instrs[ii]
				if in.Op != ir.OpCov {
					continue
				}
				res.probes++
				if in.Imm != passes.PreferredProbeID(covSeed, f.Name, bi) {
					res.displaced++
				}
			}
		}
	}
	return res
}

// saturationPct is the probe population as a percentage of map cells.
func (g *geomResult) saturationPct() float64 {
	if g.mapCells == 0 {
		return 0
	}
	return round1(100 * float64(g.probes) / float64(g.mapCells))
}

// displacedPct is the collision-displaced share of the probe population.
func (g *geomResult) displacedPct() float64 {
	if g.probes == 0 {
		return 0
	}
	return round1(100 * float64(g.displaced) / float64(g.probes))
}

// diagnostics emits CLX120 when either geometry metric crosses its
// threshold. Module-level: the finding is about the map, not one block.
func (g *geomResult) diagnostics(maxSaturationPct, maxDisplacedPct float64) analysis.Diagnostics {
	var ds analysis.Diagnostics
	if s := g.saturationPct(); s > maxSaturationPct {
		ds = append(ds, analysis.Diagnostic{
			ID: analysis.IDCovSaturation, Sev: analysis.SevWarn, Pass: auditPass,
			Block: -1, Instr: -1,
			Msg: fmt.Sprintf("coverage map saturated: %d probes over %d cells (%.1f%% > %.1f%%); new coverage becomes indistinguishable from aliasing",
				g.probes, g.mapCells, s, maxSaturationPct),
		})
	}
	if d := g.displacedPct(); d > maxDisplacedPct {
		ds = append(ds, analysis.Diagnostic{
			ID: analysis.IDCovSaturation, Sev: analysis.SevWarn, Pass: auditPass,
			Block: -1, Instr: -1,
			Msg: fmt.Sprintf("probe hash space crowded: %d of %d probes collision-displaced (%.1f%% > %.1f%%)",
				g.displaced, g.probes, d, maxDisplacedPct),
		})
	}
	return ds
}
