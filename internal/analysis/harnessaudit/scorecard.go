package harnessaudit

// The per-target score card — the deterministic, byte-stable artifact
// closurex-lint -harness-report renders and -harness-json serializes. The
// JSON field set is a compatibility contract like analysis.JSONDiagnostic:
// extend it, never rename.

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"
)

// FuncCard is one function's surface entry on the card.
type FuncCard struct {
	Name            string  `json:"name"`
	Reachable       bool    `json:"reachable"`
	Blocks          int     `json:"blocks"`
	ReachableBlocks int     `json:"reachable_blocks"`
	ReachablePct    float64 `json:"reachable_pct"`
}

// Card is one target's harness-quality score card.
type Card struct {
	Target string `json:"target"`

	// Surface (reachability).
	Funcs             int        `json:"funcs"`
	ReachableFuncs    int        `json:"reachable_funcs"`
	Blocks            int        `json:"blocks"`
	ReachableBlocks   int        `json:"reachable_blocks"`
	ReachableBlockPct float64    `json:"reachable_block_pct"`
	DeadFuncs         []string   `json:"dead_funcs,omitempty"`
	Functions         []FuncCard `json:"functions"`

	// Coverage geometry.
	Probes          int     `json:"probes"`
	StaticEdges     int     `json:"static_edges"`
	MapCells        int     `json:"map_cells"`
	DisplacedProbes int     `json:"displaced_probes"`
	DisplacedPct    float64 `json:"displaced_pct"`
	SaturationPct   float64 `json:"saturation_pct"`

	// Dictionary liveness + auto-dictionary.
	DictTokens     int      `json:"dict_tokens"`
	LiveDictTokens int      `json:"live_dict_tokens"`
	DeadDictTokens []string `json:"dead_dict_tokens,omitempty"`
	DictLivePct    float64  `json:"dict_live_pct"`
	AutoDictTokens int      `json:"auto_dict_tokens"`

	// Score is the composite quality score in [0,100]: 40% reachable
	// surface, 30% geometry headroom, 30% dictionary liveness.
	Score float64 `json:"score"`
}

func buildCard(target string, reach *reachResult, geom *geomResult, audit *dictAudit) *Card {
	funcs, liveFuncs, blocks, liveBlocks := reach.totals()
	total, live := audit.counts()
	c := &Card{
		Target:            target,
		Funcs:             funcs,
		ReachableFuncs:    liveFuncs,
		Blocks:            blocks,
		ReachableBlocks:   liveBlocks,
		ReachableBlockPct: pct(liveBlocks, blocks),
		DeadFuncs:         reach.deadFuncNames(),
		Probes:            geom.probes,
		StaticEdges:       geom.staticEdges,
		MapCells:          geom.mapCells,
		DisplacedProbes:   geom.displaced,
		DisplacedPct:      geom.displacedPct(),
		SaturationPct:     geom.saturationPct(),
		DictTokens:        total,
		LiveDictTokens:    live,
		DeadDictTokens:    audit.deadTokens(),
		DictLivePct:       pct(live, total),
		AutoDictTokens:    len(audit.auto),
	}
	for i := range reach.funcs {
		fr := &reach.funcs[i]
		fc := FuncCard{
			Name:            fr.name,
			Reachable:       fr.reachable,
			Blocks:          fr.blocks,
			ReachableBlocks: fr.liveBlk,
			ReachablePct:    pct(fr.liveBlk, fr.blocks),
		}
		if !fr.reachable {
			fc.ReachableBlocks, fc.ReachablePct = 0, 0
		}
		c.Functions = append(c.Functions, fc)
	}
	sort.Slice(c.Functions, func(i, j int) bool { return c.Functions[i].Name < c.Functions[j].Name })

	geomHealth := 100 - c.SaturationPct - c.DisplacedPct
	if geomHealth < 0 {
		geomHealth = 0
	}
	c.Score = round1(0.4*c.ReachableBlockPct + 0.3*geomHealth + 0.3*c.DictLivePct)
	return c
}

// Format renders the card as the human-readable block -harness-report
// prints.
func (c *Card) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "harness score card for %s: %.1f/100\n", c.Target, c.Score)
	fmt.Fprintf(&b, "  surface : %d/%d functions, %d/%d blocks reachable (%.1f%%)\n",
		c.ReachableFuncs, c.Funcs, c.ReachableBlocks, c.Blocks, c.ReachableBlockPct)
	fmt.Fprintf(&b, "  geometry: %d probes / %d cells (%.1f%% saturated), %d displaced (%.1f%%), %d static edges\n",
		c.Probes, c.MapCells, c.SaturationPct, c.DisplacedProbes, c.DisplacedPct, c.StaticEdges)
	fmt.Fprintf(&b, "  dict    : %d/%d tokens live (%.1f%%), %d auto-dict tokens harvested\n",
		c.LiveDictTokens, c.DictTokens, c.DictLivePct, c.AutoDictTokens)
	if len(c.DeadFuncs) > 0 {
		fmt.Fprintf(&b, "  dead functions: %s\n", strings.Join(c.DeadFuncs, ", "))
	}
	if len(c.DeadDictTokens) > 0 {
		fmt.Fprintf(&b, "  dead dict tokens: %s\n", strings.Join(c.DeadDictTokens, ", "))
	}
	return b.String()
}

// CardsJSON serializes score cards sorted by target name as indented JSON
// with a trailing newline — byte-stable across runs for identical modules.
func CardsJSON(cards []*Card) ([]byte, error) {
	cp := append([]*Card(nil), cards...)
	sort.Slice(cp, func(i, j int) bool { return cp[i].Target < cp[j].Target })
	b, err := json.MarshalIndent(cp, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}
