// Package harnessaudit scores the quality of a fuzzing harness from its
// lowered module — the third analysis client on the interprocedural call
// graph (analysis/interproc) and the dataflow framework (analysis), after
// the sanitizer elision and restore-elision analyses.
//
// A harness can be perfectly *correct* (restartable, restore-complete) and
// still fuzz badly: functions the entry point can never reach contribute
// dead surface, a coverage map too small for the probe population cannot
// distinguish new coverage, and dictionary tokens whose bytes never flow
// into a comparison are wasted mutation budget. Harnesses rot exactly this
// way as targets evolve (Görz et al., "An Empirical Study of Fuzz Harness
// Degradation"). Three cooperating analyses quantify each axis:
//
//   - static reachability (reach.go): interprocedural function
//     reachability from target_main/closurex_init plus per-function CFG
//     block reachability. Unreachable functions and blocks are dead
//     harness surface — CLX119.
//   - coverage geometry (geometry.go): probe population vs. map cells,
//     linear-probing displacement density, and static edge count. A
//     saturated or heavily displaced map masks new coverage — CLX120.
//   - input dataflow (inputflow.go): taint-style forward dataflow from the
//     input-reading builtins (fread/fgetc, plus entry-point parameters)
//     to compare operands, harvesting the constants input bytes are
//     compared against. Dictionary tokens no harvested witness accounts
//     for are dead — CLX121 — and the witnesses themselves become a
//     per-target auto-dictionary for the mutator's havoc stage.
//
// Audit fuses the three into a deterministic per-target score card
// (scorecard.go) rendered by closurex-lint -harness-report and, as
// byte-stable JSON, -harness-json; `make harness-audit` runs the catalog
// under -strict so a quality regression fails `make check`.
package harnessaudit

import (
	"fmt"
	"strings"

	"closurex/internal/analysis"
	"closurex/internal/ir"
)

// DefaultCoverageSeed mirrors core.CoverageSeed — the probe-ID seed every
// pipeline build uses. harnessaudit sits below core in the import graph
// (core calls Harvest), so the value is declared here and cross-checked by
// a core test, the same arrangement as analysis.TargetMain/passes.TargetMain.
const DefaultCoverageSeed = 0xC105

// auditPass names this checker in diagnostics.
const auditPass = "harnessaudit"

// Default gate thresholds. The benchmark targets sit far inside them
// (saturation well under 1%, zero displaced probes at 2^16 cells); the
// thresholds exist so a future harness with a genuinely degraded geometry
// trips CLX120 rather than silently fuzzing blind.
const (
	// DefaultMaxSaturationPct is the probes/cells ceiling (percent) above
	// which the map is considered saturated.
	DefaultMaxSaturationPct = 25.0
	// DefaultMaxDisplacedPct is the ceiling (percent of probes) for
	// collision-displaced probe IDs.
	DefaultMaxDisplacedPct = 10.0
)

// Options tunes Audit.
type Options struct {
	// Dict is the target's manual dictionary; each token is audited for
	// input-dataflow liveness (CLX121). Nil audits no tokens.
	Dict [][]byte
	// MapCells overrides the coverage-map cell count the geometry analysis
	// scores against (0 uses passes.CovMapCells, the real 2^16 map).
	// Tests pass tiny values to exercise the saturation gate.
	MapCells int
	// CovSeed overrides the probe-ID seed used to compute displacement
	// (0 uses DefaultCoverageSeed).
	CovSeed uint64
	// MaxSaturationPct / MaxDisplacedPct override the CLX120 thresholds
	// (0 uses the defaults).
	MaxSaturationPct float64
	MaxDisplacedPct  float64
}

func (o *Options) fill() {
	if o.MapCells == 0 {
		o.MapCells = mapCellsDefault
	}
	if o.CovSeed == 0 {
		o.CovSeed = DefaultCoverageSeed
	}
	if o.MaxSaturationPct == 0 {
		o.MaxSaturationPct = DefaultMaxSaturationPct
	}
	if o.MaxDisplacedPct == 0 {
		o.MaxDisplacedPct = DefaultMaxDisplacedPct
	}
}

// Audit runs the three harness-quality analyses over a lowered module and
// returns the fused score card plus the CLX119-121 findings. All findings
// are warnings: a degraded harness still runs, it just fuzzes worse — the
// `make harness-audit` gate runs closurex-lint under -strict to fail CI on
// them anyway. Deterministic: same module and options, same card bytes and
// finding order.
func Audit(target string, m *ir.Module, opts Options) (*Card, analysis.Diagnostics) {
	opts.fill()
	var ds analysis.Diagnostics

	reach := analyzeReach(m)
	ds = append(ds, reach.diagnostics()...)

	geom := analyzeGeometry(m, opts.MapCells, opts.CovSeed)
	ds = append(ds, geom.diagnostics(opts.MaxSaturationPct, opts.MaxDisplacedPct)...)

	flow := analyzeInputFlow(m)
	audit := auditDict(flow, opts.Dict)
	ds = append(ds, audit.diagnostics()...)

	ds.Sort()
	return buildCard(target, reach, geom, audit), ds
}

// Harvest returns just the auto-dictionary for a lowered module: the
// deduplicated, deterministically ordered token list the input-dataflow
// analysis extracted from compares against input-derived values. This is
// the entry point core.NewInstance uses when InstanceOptions.AutoDict is
// set; the tokens are merged with the target's manual dictionary by
// fuzz.MergeDict.
func Harvest(m *ir.Module) [][]byte {
	return analyzeInputFlow(m).autoDict()
}

// pct returns 100*num/den rounded to one decimal, and 100 for an empty
// denominator (an absent axis is healthy, not failing).
func pct(num, den int) float64 {
	if den == 0 {
		return 100
	}
	return round1(100 * float64(num) / float64(den))
}

func round1(x float64) float64 {
	if x < 0 {
		return -round1(-x)
	}
	return float64(int64(x*10+0.5)) / 10
}

// quoteToken renders a dictionary token for humans: printable bytes
// verbatim, everything else \xNN-escaped byte-wise. Tokens are byte
// strings, never text — %q would fuse multi-byte sequences that happen to
// be valid UTF-8 into runes and obscure the actual file bytes.
func quoteToken(tok []byte) string {
	var b strings.Builder
	b.WriteByte('"')
	for _, c := range tok {
		switch {
		case c == '"' || c == '\\':
			b.WriteByte('\\')
			b.WriteByte(c)
		case c >= 0x20 && c < 0x7f:
			b.WriteByte(c)
		default:
			fmt.Fprintf(&b, "\\x%02x", c)
		}
	}
	b.WriteByte('"')
	return b.String()
}
