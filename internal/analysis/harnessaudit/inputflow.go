package harnessaudit

// Input-dataflow constant harvesting (CLX121 + the auto-dictionary). A
// taint-style forward dataflow marks every register that may hold
// input-derived bytes — seeded at the input-reading builtins (fread/fgetc)
// and the entry point's parameters (the argv model) — and propagates
// through moves, arithmetic, loads/stores (with a coarse frame/global/heap
// memory model), and calls (parameter and return taint to interprocedural
// fixpoint). Every comparison of a tainted value against a resolvable
// constant is a *witness*: the target demonstrably steers control flow on
// those input bytes.
//
// Witnesses serve two masters. Backward, they audit the manual dictionary:
// a token none of the witnesses account for never influences a branch, so
// mutating it in is wasted budget — CLX121. Forward, the witness constants
// *are* the format's magic values, so they are assembled into a per-target
// auto-dictionary (multi-byte constants in both endiannesses, rodata
// strings handed to str/memcmp, call-site constant clusters like
// fourcc(k,'S','C','A','L'), and byte-compare runs like the "ustar" and
// "GIF8" checks) for the mutator's havoc stage.
//
// The analysis over-approximates taint on purpose: an unknown pointer
// dereference taints once any memory is tainted. False *liveness* merely
// keeps a stale token; false *deadness* would fail the -strict gate on a
// healthy harness.

import (
	"bytes"
	"sort"

	"closurex/internal/ir"
)

// maxTokenLen truncates harvested tokens; maxAutoDict caps the dictionary.
const (
	maxTokenLen = 32
	maxAutoDict = 64
	maxRunLen   = 16
)

// inputReads are the builtins whose results/buffers carry input bytes.
// freadLike additionally taints the memory behind argument 0.
var inputReads = map[string]bool{
	"fread": true, "closurex_fread": true,
	"fgetc": true, "closurex_fgetc": true,
}

var freadLike = map[string]bool{
	"fread": true, "closurex_fread": true,
}

// copyCalls propagate taint from the source (arg 1) to the destination
// (arg 0) buffer.
var copyCalls = map[string]bool{
	"memcpy": true, "strcpy": true,
	"closurex_memcpy": true, "closurex_strcpy": true,
}

// compareCalls compare two buffers; a tainted-vs-rodata pair yields a
// string token witness.
var compareCalls = map[string]bool{
	"memcmp": true, "strcmp": true, "strncmp": true,
}

// allocCalls return heap pointers (for the pointer-tag lattice).
var allocCalls = map[string]bool{
	"malloc": true, "calloc": true, "realloc": true,
	"closurex_malloc": true, "closurex_calloc": true, "closurex_realloc": true,
}

// ---- pointer tags ----

// tagKind classifies what a register may point at; the memory model needs
// only enough precision to route taint between frames, globals and heap.
type tagKind uint8

const (
	tagNone tagKind = iota
	tagFrame
	tagGlobal
	tagHeap
	tagUnknown
)

type ptag struct {
	kind tagKind
	g    int // global index for tagGlobal
}

func joinTag(a, b ptag) ptag {
	if a.kind == tagNone {
		return b
	}
	if b.kind == tagNone || a == b {
		return a
	}
	return ptag{kind: tagUnknown}
}

// ---- witnesses ----

type maskWit struct{ mask, val byte }
type rangeWit struct{ lo, hi byte }

// flowResult carries every harvested witness plus the auto-dictionary
// candidates, in deterministic order.
type flowResult struct {
	sources  int       // input-read call sites seen
	witBytes [256]bool // exact byte-compare witnesses
	masks    []maskWit
	ranges   []rangeWit
	tokens   [][]byte // multi-byte witness tokens, in harvest order
}

func (fr *flowResult) addToken(tok []byte) {
	if len(tok) < 2 {
		return
	}
	if len(tok) > maxTokenLen {
		tok = tok[:maxTokenLen]
	}
	fr.tokens = append(fr.tokens, append([]byte(nil), tok...))
}

// matchesByte reports whether some witness accounts for byte b.
func (fr *flowResult) matchesByte(b byte) bool {
	if fr.witBytes[b] {
		return true
	}
	for _, m := range fr.masks {
		if b&m.mask == m.val&m.mask {
			return true
		}
	}
	for _, r := range fr.ranges {
		if b >= r.lo && b <= r.hi {
			return true
		}
	}
	return false
}

// autoDict assembles the auto-dictionary: every multi-byte witness token,
// content-deduplicated, ordered by (length, bytes), capped at maxAutoDict.
func (fr *flowResult) autoDict() [][]byte {
	seen := map[string]bool{}
	var out [][]byte
	for _, tok := range fr.tokens {
		if k := string(tok); !seen[k] {
			seen[k] = true
			out = append(out, tok)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if len(out[i]) != len(out[j]) {
			return len(out[i]) < len(out[j])
		}
		return bytes.Compare(out[i], out[j]) < 0
	})
	if len(out) > maxAutoDict {
		out = out[:maxAutoDict]
	}
	return out
}

// ---- the dataflow state ----

type flowState struct {
	m    *ir.Module
	tags map[string][]ptag // per function, per register

	regTaint   map[string][]bool
	paramTaint map[string][]bool
	retTaint   map[string]bool

	frameTaint     map[string]bool
	globalTaint    map[int]bool
	globalTaintAll bool
	heapTaint      bool

	changed bool
}

// analyzeInputFlow runs the taint fixpoint and the harvest pass.
func analyzeInputFlow(m *ir.Module) *flowResult {
	st := solveFlow(m)
	res := &flowResult{}
	for _, f := range m.Funcs {
		st.countSources(f, res)
	}
	sinks := map[string]map[int]bool{} // fn -> compare-sink param indices
	for _, f := range m.Funcs {
		st.harvestFunc(f, res, sinks)
	}
	for _, f := range m.Funcs {
		st.harvestCallClusters(f, res, sinks)
	}
	return res
}

// solveFlow seeds the taint lattice (input-reading builtins plus the entry
// point's parameters) and runs the interprocedural fixpoint to completion,
// returning the solved state for harvesting or fact extraction.
func solveFlow(m *ir.Module) *flowState {
	st := &flowState{
		m:           m,
		tags:        map[string][]ptag{},
		regTaint:    map[string][]bool{},
		paramTaint:  map[string][]bool{},
		retTaint:    map[string]bool{},
		frameTaint:  map[string]bool{},
		globalTaint: map[int]bool{},
	}
	for _, f := range m.Funcs {
		st.tags[f.Name] = computeTags(m, f)
		st.regTaint[f.Name] = make([]bool, f.NumRegs)
		st.paramTaint[f.Name] = make([]bool, f.NumRegs)
	}
	// Entry-point parameters model argv-style input.
	for _, root := range []string{"target_main", "main"} {
		if f := m.Func(root); f != nil {
			pt := st.paramTaint[root]
			for i := 0; i < f.NumParams && i < len(pt); i++ {
				pt[i] = true
			}
		}
	}
	// Interprocedural fixpoint: flow-insensitive within a function, so
	// each outer round re-scans every function until nothing anywhere
	// changes. Taint only ever grows; termination is by finiteness.
	for {
		st.changed = false
		for _, f := range m.Funcs {
			st.propagateFunc(f)
		}
		if !st.changed {
			break
		}
	}
	return st
}

// computeTags derives the flow-insensitive pointer tag of every register.
func computeTags(m *ir.Module, f *ir.Func) []ptag {
	tg := make([]ptag, f.NumRegs)
	upd := func(r int, t ptag) bool {
		if r < 0 || r >= len(tg) || t.kind == tagNone {
			return false
		}
		nt := joinTag(tg[r], t)
		if nt != tg[r] {
			tg[r] = nt
			return true
		}
		return false
	}
	for changed := true; changed; {
		changed = false
		for _, b := range f.Blocks {
			for ii := range b.Instrs {
				in := &b.Instrs[ii]
				switch in.Op {
				case ir.OpFrameAddr:
					changed = upd(in.Dst, ptag{kind: tagFrame}) || changed
				case ir.OpGlobalAddr:
					changed = upd(in.Dst, ptag{kind: tagGlobal, g: int(in.Imm)}) || changed
				case ir.OpMov:
					if in.A >= 0 && in.A < len(tg) {
						changed = upd(in.Dst, tg[in.A]) || changed
					}
				case ir.OpBin:
					// Pointer arithmetic keeps the pointer operand's tag.
					if in.Bin == ir.Add || in.Bin == ir.Sub {
						var ta, tb ptag
						if in.A >= 0 && in.A < len(tg) {
							ta = tg[in.A]
						}
						if in.B >= 0 && in.B < len(tg) {
							tb = tg[in.B]
						}
						switch {
						case ta.kind != tagNone && tb.kind == tagNone:
							changed = upd(in.Dst, ta) || changed
						case tb.kind != tagNone && ta.kind == tagNone:
							changed = upd(in.Dst, tb) || changed
						case ta.kind != tagNone && tb.kind != tagNone:
							changed = upd(in.Dst, ptag{kind: tagUnknown}) || changed
						}
					}
				case ir.OpLoad:
					// A pointer-width load may produce a pointer we know
					// nothing about (heap buffers parked in frame slots).
					if in.Size == 8 {
						changed = upd(in.Dst, ptag{kind: tagUnknown}) || changed
					}
				case ir.OpCall:
					switch {
					case allocCalls[in.Callee]:
						changed = upd(in.Dst, ptag{kind: tagHeap}) || changed
					case copyCalls[in.Callee] && len(in.Args) > 0 && in.Args[0] >= 0 && in.Args[0] < len(tg):
						changed = upd(in.Dst, tg[in.Args[0]]) || changed
					case m.Func(in.Callee) != nil && in.Dst >= 0:
						changed = upd(in.Dst, ptag{kind: tagUnknown}) || changed
					}
				}
			}
		}
	}
	return tg
}

func (st *flowState) tagOf(fn string, r int) ptag {
	tg := st.tags[fn]
	if r < 0 || r >= len(tg) {
		return ptag{kind: tagUnknown}
	}
	return tg[r]
}

// anyMemTaint reports whether any memory region reachable from fn may hold
// input bytes — the fallback for unknown-pointer dereferences.
func (st *flowState) anyMemTaint(fn string) bool {
	return st.heapTaint || st.globalTaintAll || st.frameTaint[fn] || len(st.globalTaint) > 0
}

// memTaintAt reports whether memory behind a pointer with tag t may hold
// input bytes when dereferenced inside fn.
func (st *flowState) memTaintAt(fn string, t ptag) bool {
	switch t.kind {
	case tagFrame:
		return st.frameTaint[fn]
	case tagGlobal:
		if t.g >= 0 && t.g < len(st.m.Globals) && st.m.Globals[t.g].Const {
			return false // rodata cannot acquire input bytes
		}
		return st.globalTaintAll || st.globalTaint[t.g]
	case tagHeap:
		return st.heapTaint
	default:
		return st.anyMemTaint(fn)
	}
}

// taintMemAt records that memory behind tag t received input bytes.
func (st *flowState) taintMemAt(fn string, t ptag) {
	switch t.kind {
	case tagFrame:
		if !st.frameTaint[fn] {
			st.frameTaint[fn] = true
			st.changed = true
		}
	case tagGlobal:
		if !st.globalTaint[t.g] {
			st.globalTaint[t.g] = true
			st.changed = true
		}
	case tagHeap:
		if !st.heapTaint {
			st.heapTaint = true
			st.changed = true
		}
	default:
		if !st.heapTaint || !st.globalTaintAll || !st.frameTaint[fn] {
			st.heapTaint, st.globalTaintAll, st.frameTaint[fn] = true, true, true
			st.changed = true
		}
	}
}

// propagateFunc runs fn's transfer functions to a local fixpoint.
func (st *flowState) propagateFunc(f *ir.Func) {
	t := st.regTaint[f.Name]
	set := func(r int) {
		if r >= 0 && r < len(t) && !t[r] {
			t[r] = true
			st.changed = true
		}
	}
	taintedReg := func(r int) bool { return r >= 0 && r < len(t) && t[r] }
	for {
		before := st.changed
		// Parameter taint accumulated from call sites elsewhere.
		for i, pt := range st.paramTaint[f.Name] {
			if pt {
				set(i)
			}
		}
		for _, b := range f.Blocks {
			for ii := range b.Instrs {
				in := &b.Instrs[ii]
				switch in.Op {
				case ir.OpMov, ir.OpUn:
					if taintedReg(in.A) {
						set(in.Dst)
					}
				case ir.OpBin:
					if taintedReg(in.A) || taintedReg(in.B) {
						set(in.Dst)
					}
				case ir.OpLoad:
					if taintedReg(in.A) || st.memTaintAt(f.Name, st.tagOf(f.Name, in.A)) {
						set(in.Dst)
					}
				case ir.OpStore:
					if taintedReg(in.B) {
						st.taintMemAt(f.Name, st.tagOf(f.Name, in.A))
					}
				case ir.OpCall:
					st.propagateCall(f, in, t, set, taintedReg)
				case ir.OpRet:
					if in.A >= 0 && taintedReg(in.A) && !st.retTaint[f.Name] {
						st.retTaint[f.Name] = true
						st.changed = true
					}
				}
			}
		}
		if st.changed == before {
			break
		}
	}
}

func (st *flowState) propagateCall(f *ir.Func, in *ir.Instr, t []bool, set func(int), taintedReg func(int) bool) {
	switch {
	case inputReads[in.Callee]:
		set(in.Dst)
		if freadLike[in.Callee] && len(in.Args) > 0 {
			st.taintMemAt(f.Name, st.tagOf(f.Name, in.Args[0]))
		}
	case copyCalls[in.Callee]:
		if len(in.Args) >= 2 {
			src := in.Args[1]
			if taintedReg(src) || st.memTaintAt(f.Name, st.tagOf(f.Name, src)) {
				st.taintMemAt(f.Name, st.tagOf(f.Name, in.Args[0]))
			}
		}
	case st.m.Func(in.Callee) != nil:
		pt := st.paramTaint[in.Callee]
		for i, a := range in.Args {
			if i < len(pt) && taintedReg(a) && !pt[i] {
				pt[i] = true
				st.changed = true
			}
		}
		if st.retTaint[in.Callee] {
			set(in.Dst)
		}
	default:
		// Opaque builtin: the result depends on its (possibly tainted)
		// inputs — memcmp over input bytes yields an input-derived value.
		for _, a := range in.Args {
			if taintedReg(a) || (st.tagOf(f.Name, a).kind != tagNone && st.memTaintAt(f.Name, st.tagOf(f.Name, a))) {
				set(in.Dst)
				break
			}
		}
	}
}

func (st *flowState) countSources(f *ir.Func, res *flowResult) {
	for _, b := range f.Blocks {
		for ii := range b.Instrs {
			if in := &b.Instrs[ii]; in.Op == ir.OpCall && inputReads[in.Callee] {
				res.sources++
			}
		}
	}
}
