package harnessaudit

// Witness harvesting — the second pass over the taint solution. Every
// comparison of a tainted value against a resolvable constant becomes a
// witness; clusters of byte witnesses become dictionary tokens.

import (
	"closurex/internal/ir"
)

// regDefs summarizes each register's defining instructions within one
// function: the assignment count, and — when the single definition is an
// OpConst or an And-mask of a tainted value — what it resolves to.
type regDefs struct {
	count   []int
	constOK []bool
	constV  []int64
	andOK   []bool // unique def is (tainted & constMask)
	andMask []int64
}

func computeDefs(f *ir.Func, taint []bool) *regDefs {
	d := &regDefs{
		count:   make([]int, f.NumRegs),
		constOK: make([]bool, f.NumRegs),
		constV:  make([]int64, f.NumRegs),
		andOK:   make([]bool, f.NumRegs),
		andMask: make([]int64, f.NumRegs),
	}
	// Parameters are assigned at entry.
	for r := 0; r < f.NumParams && r < f.NumRegs; r++ {
		d.count[r]++
	}
	defs := make([]*ir.Instr, f.NumRegs)
	for _, b := range f.Blocks {
		for ii := range b.Instrs {
			in := &b.Instrs[ii]
			if in.Dst >= 0 && in.Dst < f.NumRegs && in.Op != ir.OpStore {
				d.count[in.Dst]++
				defs[in.Dst] = in
			}
		}
	}
	// Constants first, so the And-mask pass below can resolve its mask
	// operand through the same unique-def map.
	for r := 0; r < f.NumRegs; r++ {
		if d.count[r] == 1 && defs[r] != nil && defs[r].Op == ir.OpConst {
			d.constOK[r], d.constV[r] = true, defs[r].Imm
		}
	}
	tainted := func(r int) bool { return r >= 0 && r < len(taint) && taint[r] }
	constOf := func(r int) (int64, bool) {
		if r < 0 || r >= f.NumRegs || !d.constOK[r] {
			return 0, false
		}
		return d.constV[r], true
	}
	for r := 0; r < f.NumRegs; r++ {
		if d.count[r] != 1 || defs[r] == nil {
			continue
		}
		in := defs[r]
		if in.Op == ir.OpBin && in.Bin == ir.And {
			// (tainted & mask) with a resolvable byte mask: the classic
			// field-extraction idiom, e.g. inflite's (cmf & 15) != 8.
			if mv, ok := constOf(in.B); ok && tainted(in.A) && mv > 0 && mv <= 255 {
				d.andOK[r], d.andMask[r] = true, mv
			} else if mv, ok := constOf(in.A); ok && tainted(in.B) && mv > 0 && mv <= 255 {
				d.andOK[r], d.andMask[r] = true, mv
			}
		}
	}
	return d
}

func (d *regDefs) constOf(r int) (int64, bool) {
	if r < 0 || r >= len(d.constOK) || !d.constOK[r] {
		return 0, false
	}
	return d.constV[r], true
}

// runEntry is one byte-compare witness positioned for run clustering.
type runEntry struct {
	block, instr int
	b            byte
}

// harvestFunc scans one function for witnesses, filling res and recording
// compare-sink parameters (params compared against tainted values) into
// sinks for the later call-site clustering pass.
func (st *flowState) harvestFunc(f *ir.Func, res *flowResult, sinks map[string]map[int]bool) {
	taint := st.regTaint[f.Name]
	tainted := func(r int) bool { return r >= 0 && r < len(taint) && taint[r] }
	defs := computeDefs(f, taint)
	constOf := defs.constOf

	var runs []runEntry
	for bi, b := range f.Blocks {
		for ii := range b.Instrs {
			in := &b.Instrs[ii]
			switch in.Op {
			case ir.OpBin:
				if !isCompare(in.Bin) {
					continue
				}
				// Identify the tainted side and a resolvable constant on
				// the other; record param sinks for the clustering pass.
				var c int64
				var tr int // the tainted register
				taintedLeft := false
				if tainted(in.A) {
					tr = in.A
					if v, ok := constOf(in.B); ok {
						c, taintedLeft = v, true
					} else {
						recordSink(f, in.B, defs, sinks)
						continue
					}
				} else if tainted(in.B) {
					tr = in.B
					if v, ok := constOf(in.A); ok {
						c = v
					} else {
						recordSink(f, in.A, defs, sinks)
						continue
					}
				} else {
					continue
				}
				harvestCompare(res, in.Bin, c, taintedLeft, tr, defs, bi, ii, &runs)
			case ir.OpCall:
				if compareCalls[in.Callee] && len(in.Args) >= 2 {
					st.harvestBufCompare(f, in, constOf, res)
				}
			}
		}
	}
	harvestRuns(res, runs)
}

func isCompare(op ir.BinOp) bool {
	switch op {
	case ir.Eq, ir.Ne, ir.Lt, ir.Le, ir.Gt, ir.Ge, ir.Ult, ir.Ule, ir.Ugt, ir.Uge:
		return true
	}
	return false
}

// recordSink notes that fn's parameter r flows into a comparison against a
// tainted value — call sites passing constants there form tokens (the
// fourcc(k, 'S','C','A','L') idiom).
func recordSink(f *ir.Func, r int, defs *regDefs, sinks map[string]map[int]bool) {
	if r < 0 || r >= f.NumParams || defs.count[r] != 1 {
		return // not a parameter, or reassigned before the compare
	}
	s := sinks[f.Name]
	if s == nil {
		s = map[int]bool{}
		sinks[f.Name] = s
	}
	s[r] = true
}

// harvestCompare turns one tainted-vs-constant comparison into witnesses.
func harvestCompare(res *flowResult, op ir.BinOp, c int64, taintedLeft bool, tr int, defs *regDefs, bi, ii int, runs *[]runEntry) {
	switch op {
	case ir.Eq, ir.Ne:
		switch {
		case c >= 0 && c <= 255:
			res.witBytes[byte(c)] = true
			if c != 0 { // ==0 checks are ubiquitous control flow, not magic
				*runs = append(*runs, runEntry{bi, ii, byte(c)})
			}
			if tr >= 0 && tr < len(defs.andOK) && defs.andOK[tr] {
				res.masks = append(res.masks, maskWit{mask: byte(defs.andMask[tr]), val: byte(c)})
			}
		case c > 255:
			for _, enc := range encode(uint64(c)) {
				res.addToken(enc)
				for _, bb := range enc {
					res.witBytes[bb] = true
				}
			}
		}
	default: // ordered compares: interval witnesses over byte values
		if c < 0 || c > 255 {
			return
		}
		res.witBytes[byte(c)] = true
		lo, hi, ok := compareInterval(op, byte(c), taintedLeft)
		if ok {
			res.ranges = append(res.ranges, rangeWit{lo: lo, hi: hi})
		}
	}
}

// compareInterval returns the byte interval the tainted operand must lie
// in for the comparison against c to hold. taintedLeft: tainted OP c.
func compareInterval(op ir.BinOp, c byte, taintedLeft bool) (lo, hi byte, ok bool) {
	if !taintedLeft {
		// c OP tainted  ==  tainted OP' c with the mirrored operator.
		switch op {
		case ir.Lt, ir.Ult:
			op = ir.Gt
		case ir.Le, ir.Ule:
			op = ir.Ge
		case ir.Gt, ir.Ugt:
			op = ir.Lt
		case ir.Ge, ir.Uge:
			op = ir.Le
		}
	}
	switch op {
	case ir.Lt, ir.Ult:
		if c == 0 {
			return 0, 0, false
		}
		return 0, c - 1, true
	case ir.Le, ir.Ule:
		return 0, c, true
	case ir.Gt, ir.Ugt:
		if c == 255 {
			return 0, 0, false
		}
		return c + 1, 255, true
	case ir.Ge, ir.Uge:
		return c, 255, true
	}
	return 0, 0, false
}

// encode renders a multi-byte constant in both endiannesses at its natural
// width — a 2/4/8-byte magic compared as one integer (pcap's 0xa1b2c3d4,
// ttf's 'head' tag) matches input bytes in exactly one of the two.
func encode(v uint64) [][]byte {
	width := 2
	switch {
	case v > 0xffffffff:
		width = 8
	case v > 0xffff:
		width = 4
	}
	le := make([]byte, width)
	be := make([]byte, width)
	for i := 0; i < width; i++ {
		le[i] = byte(v >> (8 * i))
		be[width-1-i] = byte(v >> (8 * i))
	}
	return [][]byte{le, be}
}

// harvestBufCompare handles memcmp/strcmp/strncmp: tainted buffer vs. a
// constant global yields the global's bytes as a token.
func (st *flowState) harvestBufCompare(f *ir.Func, in *ir.Instr, constOf func(int) (int64, bool), res *flowResult) {
	taint := st.regTaint[f.Name]
	taintedPtr := func(r int) bool {
		return (r >= 0 && r < len(taint) && taint[r]) || st.memTaintAt(f.Name, st.tagOf(f.Name, r))
	}
	for side := 0; side < 2; side++ {
		tn, other := in.Args[side], in.Args[1-side]
		if !taintedPtr(tn) {
			continue
		}
		tg := st.tagOf(f.Name, other)
		if tg.kind != tagGlobal || tg.g < 0 || tg.g >= len(st.m.Globals) {
			continue
		}
		g := st.m.Globals[tg.g]
		if !g.Const || len(g.Init) == 0 {
			continue
		}
		tok := g.Init
		if in.Callee != "memcmp" {
			// String compares stop at the NUL.
			for i, bb := range tok {
				if bb == 0 {
					tok = tok[:i]
					break
				}
			}
		} else if len(in.Args) >= 3 {
			if n, ok := constOf(in.Args[2]); ok && n > 0 && int(n) < len(tok) {
				tok = tok[:n]
			}
		}
		res.addToken(tok)
		for _, bb := range tok {
			res.witBytes[bb] = true
		}
		return
	}
}

// harvestCallClusters is the second harvesting pass: with every function's
// compare-sink parameters known, constant arguments at call sites form
// tokens in parameter order — fourcc(k, 'S','C','A','L') contributes
// "SCAL".
func (st *flowState) harvestCallClusters(f *ir.Func, res *flowResult, sinks map[string]map[int]bool) {
	taint := st.regTaint[f.Name]
	defs := computeDefs(f, taint)
	constOf := defs.constOf
	for _, b := range f.Blocks {
		for ii := range b.Instrs {
			in := &b.Instrs[ii]
			if in.Op != ir.OpCall {
				continue
			}
			s := sinks[in.Callee]
			if len(s) == 0 {
				continue
			}
			var cluster []byte
			for pi, a := range in.Args {
				if !s[pi] {
					continue
				}
				if c, ok := constOf(a); ok && c > 0 && c <= 255 {
					cluster = append(cluster, byte(c))
					res.witBytes[byte(c)] = true
				}
			}
			res.addToken(cluster)
		}
	}
}

// harvestRuns groups byte-compare witnesses appearing in consecutive
// blocks of one function into tokens — chained &&-style byte checks
// ("GIF8", "ustar", 'b''2''f''r') lower to one compare per block.
func harvestRuns(res *flowResult, runs []runEntry) {
	var cur []byte
	lastBlock := -100
	flush := func() {
		res.addToken(cur)
		cur = nil
	}
	for _, e := range runs {
		if e.block-lastBlock > 2 || len(cur) >= maxRunLen {
			flush()
		}
		cur = append(cur, e.b)
		lastBlock = e.block
	}
	flush()
}
