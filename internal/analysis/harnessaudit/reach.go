package harnessaudit

// Static reachability — the dead-surface analysis (CLX119). Function-level
// reachability comes from the interprocedural call graph rooted at the
// harness entry points; block-level reachability from each live function's
// CFG. Dead surface is harmless at runtime (it simply never executes) but
// it inflates the probe population, dilutes the static edge denominator
// coverage percentages are quoted against, and — per the harness-rot
// studies — usually marks an API the harness silently stopped exercising.

import (
	"fmt"
	"sort"

	"closurex/internal/analysis"
	"closurex/internal/analysis/interproc"
	"closurex/internal/ir"
)

// initFunc mirrors passes.InitFuncName via the same convention as
// analysis.TargetMain: the deferred-init entry point counts as a root.
const initFunc = "closurex_init"

// funcReach is one function's surface accounting.
type funcReach struct {
	name      string
	reachable bool  // on some interprocedural path from a root
	blocks    int   // total basic blocks
	liveBlk   int   // blocks reachable from the function's entry
	deadBlk   []int // CFG-unreachable block indices, ascending
}

// reachResult is the module's surface accounting, functions in module order.
type reachResult struct {
	funcs []funcReach
	roots []string
}

// analyzeReach computes function- and block-level reachability. Roots are
// target_main (falling back to main for un-renamed modules, matching the
// interproc analysis) plus closurex_init when present: the harness invokes
// exactly these.
func analyzeReach(m *ir.Module) *reachResult {
	var roots []string
	if m.Func(analysis.TargetMain) != nil {
		roots = append(roots, analysis.TargetMain)
	} else if m.Func("main") != nil {
		roots = append(roots, "main")
	}
	if m.Func(initFunc) != nil {
		roots = append(roots, initFunc)
	}
	live := interproc.BuildCallGraph(m).Reachable(roots...)

	res := &reachResult{roots: roots}
	for _, f := range m.Funcs {
		fr := funcReach{
			name:      f.Name,
			reachable: live[f.Name],
			blocks:    len(f.Blocks),
		}
		if len(f.Blocks) > 0 {
			ok := analysis.BuildCFG(f).Reachable()
			for bi := range f.Blocks {
				if ok[bi] {
					fr.liveBlk++
				} else {
					fr.deadBlk = append(fr.deadBlk, bi)
				}
			}
		}
		res.funcs = append(res.funcs, fr)
	}
	return res
}

// diagnostics emits CLX119: one per unreachable function, and one per
// CFG-dead block inside a reachable function (dead blocks inside dead
// functions are subsumed by the function finding).
func (r *reachResult) diagnostics() analysis.Diagnostics {
	var ds analysis.Diagnostics
	for i := range r.funcs {
		fr := &r.funcs[i]
		if !fr.reachable {
			ds = append(ds, analysis.Diagnostic{
				ID: analysis.IDDeadSurface, Sev: analysis.SevWarn, Pass: auditPass,
				Func: fr.name, Block: -1, Instr: -1,
				Msg: fmt.Sprintf("dead harness surface: %s is unreachable from %v; its %d block(s) only burn probe IDs",
					fr.name, r.roots, fr.blocks),
			})
			continue
		}
		for _, bi := range fr.deadBlk {
			ds = append(ds, analysis.Diagnostic{
				ID: analysis.IDDeadSurface, Sev: analysis.SevWarn, Pass: auditPass,
				Func: fr.name, Block: bi, Instr: -1,
				Msg: fmt.Sprintf("dead harness surface: block b%d of %s is unreachable from the function entry",
					bi, fr.name),
			})
		}
	}
	return ds
}

// totals returns (functions, reachable functions, blocks, reachable
// blocks). Blocks of an interprocedurally dead function count as dead even
// when internally CFG-connected.
func (r *reachResult) totals() (funcs, liveFuncs, blocks, liveBlocks int) {
	for i := range r.funcs {
		fr := &r.funcs[i]
		funcs++
		blocks += fr.blocks
		if fr.reachable {
			liveFuncs++
			liveBlocks += fr.liveBlk
		}
	}
	return
}

// deadFuncNames returns the unreachable function names, sorted.
func (r *reachResult) deadFuncNames() []string {
	var out []string
	for i := range r.funcs {
		if !r.funcs[i].reachable {
			out = append(out, r.funcs[i].name)
		}
	}
	sort.Strings(out)
	return out
}
