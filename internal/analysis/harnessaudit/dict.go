package harnessaudit

// Dictionary liveness audit (CLX121). A manual dictionary token is *live*
// when the input-dataflow witnesses account for it: either it overlaps a
// harvested multi-byte token (substring in either direction — a token may
// carry a magic plus padding, or name a prefix of a longer rodata string),
// or at least half of its bytes individually match a byte/mask/interval
// witness. The half-bytes rule keeps structured tokens like zlib's
// "\x78\x9c" live when only the CMF byte is checked via a mask and the
// FLG byte participates only in a checksum — over-approximating liveness
// is deliberate; see the inputflow.go preamble.

import (
	"bytes"
	"fmt"

	"closurex/internal/analysis"
)

// dictAudit is the per-token liveness verdict over a manual dictionary.
type dictAudit struct {
	flow   *flowResult
	tokens [][]byte
	live   []bool
	auto   [][]byte // the harvested auto-dictionary
}

func auditDict(flow *flowResult, dict [][]byte) *dictAudit {
	a := &dictAudit{flow: flow, auto: flow.autoDict()}
	for _, tok := range dict {
		if len(tok) == 0 {
			continue // the mutator drops empties; nothing to audit
		}
		a.tokens = append(a.tokens, tok)
		a.live = append(a.live, tokenLive(flow, tok))
	}
	return a
}

func tokenLive(flow *flowResult, tok []byte) bool {
	for _, w := range flow.tokens {
		if bytes.Contains(w, tok) || bytes.Contains(tok, w) {
			return true
		}
	}
	matched := 0
	for _, b := range tok {
		if flow.matchesByte(b) {
			matched++
		}
	}
	return 2*matched >= len(tok)
}

// counts returns (total, live) token counts.
func (a *dictAudit) counts() (total, live int) {
	total = len(a.tokens)
	for _, l := range a.live {
		if l {
			live++
		}
	}
	return
}

// deadTokens returns the dead tokens, quoted, in dictionary order.
func (a *dictAudit) deadTokens() []string {
	var out []string
	for i, tok := range a.tokens {
		if !a.live[i] {
			out = append(out, quoteToken(tok))
		}
	}
	return out
}

// diagnostics emits CLX121 per dead token, in dictionary order.
func (a *dictAudit) diagnostics() analysis.Diagnostics {
	var ds analysis.Diagnostics
	for i, tok := range a.tokens {
		if a.live[i] {
			continue
		}
		ds = append(ds, analysis.Diagnostic{
			ID: analysis.IDDeadDictToken, Sev: analysis.SevWarn, Pass: auditPass,
			Block: -1, Instr: -1,
			Msg: fmt.Sprintf("dead dictionary token %s: no input-dataflow path carries its bytes into a comparison — mutation budget spent inserting it is wasted",
				quoteToken(tok)),
		})
	}
	return ds
}
