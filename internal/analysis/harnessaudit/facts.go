package harnessaudit

// Exported fact extraction — the read-only bridge between the audit's
// internal analyses (reachability, the taint lattice, witness harvesting)
// and downstream consumers, chiefly the harness synthesizer in
// analysis/synth. Everything here is a deterministic projection of the
// solved dataflow state: maps are flattened into sorted slices so two runs
// over the same module produce byte-identical facts.

import (
	"sort"

	"closurex/internal/analysis"
	"closurex/internal/ir"
)

// FuncFacts is the per-function projection of the audit's analyses.
type FuncFacts struct {
	Name       string
	Reachable  bool // on some interprocedural path from the entry roots
	Blocks     int  // total basic blocks
	LiveBlocks int  // blocks reachable from the function's own entry

	// ParamConsts maps a parameter index to the constants it is directly
	// compared against inside the function (single-assignment params only).
	// These are the per-argument magic values a synthesized seed should
	// pre-load to steer execution past the guard.
	ParamConsts map[int][]int64

	// CompareConsts lists every constant some input-tainted value in this
	// function is compared against, deduplicated and ascending.
	CompareConsts []int64

	// CalledFromEntry reports a direct call site in the entry function.
	CalledFromEntry bool

	// EntryArgTaint has one slot per parameter: true when some direct
	// entry call site passes an input-tainted argument in that position.
	// A function whose every parameter is already fed input bytes by the
	// manual harness is shadowed — synthesizing an arm for it re-covers
	// explored surface.
	EntryArgTaint []bool
}

// Facts is the module-level projection: function facts in module order plus
// the harvested auto-dictionary tokens.
type Facts struct {
	Entry  string // resolved entry root ("target_main" or "main"), "" if none
	Order  []string
	Funcs  map[string]*FuncFacts
	Tokens [][]byte // witness tokens, deduplicated, ordered by (length, bytes)
}

// CollectFacts runs reachability and the taint fixpoint over m and projects
// the solution into exported facts. The module is not mutated.
func CollectFacts(m *ir.Module) *Facts {
	reach := analyzeReach(m)
	st := solveFlow(m)

	facts := &Facts{Funcs: map[string]*FuncFacts{}}
	if m.Func(analysis.TargetMain) != nil {
		facts.Entry = analysis.TargetMain
	} else if m.Func("main") != nil {
		facts.Entry = "main"
	}

	for i := range reach.funcs {
		fr := &reach.funcs[i]
		ff := &FuncFacts{
			Name:       fr.name,
			Reachable:  fr.reachable,
			Blocks:     fr.blocks,
			LiveBlocks: fr.liveBlk,
		}
		facts.Order = append(facts.Order, fr.name)
		facts.Funcs[fr.name] = ff
	}

	for _, f := range m.Funcs {
		collectCompareFacts(f, st, facts.Funcs[f.Name])
	}
	if entry := m.Func(facts.Entry); entry != nil {
		collectEntryCallFacts(m, entry, st, facts)
	}

	// Witness tokens via the same harvest the auto-dictionary uses.
	res := &flowResult{}
	sinks := map[string]map[int]bool{}
	for _, f := range m.Funcs {
		st.harvestFunc(f, res, sinks)
	}
	for _, f := range m.Funcs {
		st.harvestCallClusters(f, res, sinks)
	}
	facts.Tokens = res.autoDict()
	return facts
}

// collectCompareFacts scans f's comparisons, filling ParamConsts and
// CompareConsts on ff.
func collectCompareFacts(f *ir.Func, st *flowState, ff *FuncFacts) {
	taint := st.regTaint[f.Name]
	tainted := func(r int) bool { return r >= 0 && r < len(taint) && taint[r] }
	defs := computeDefs(f, taint)
	isParam := func(r int) bool {
		return r >= 0 && r < f.NumParams && r < len(defs.count) && defs.count[r] == 1
	}
	paramConsts := map[int]map[int64]bool{}
	cmpConsts := map[int64]bool{}
	note := func(side int, other int) {
		c, ok := defs.constOf(other)
		if !ok {
			return
		}
		if tainted(side) {
			cmpConsts[c] = true
		}
		if isParam(side) {
			s := paramConsts[side]
			if s == nil {
				s = map[int64]bool{}
				paramConsts[side] = s
			}
			s[c] = true
		}
	}
	for _, b := range f.Blocks {
		for ii := range b.Instrs {
			in := &b.Instrs[ii]
			if in.Op != ir.OpBin || !isCompare(in.Bin) {
				continue
			}
			note(in.A, in.B)
			note(in.B, in.A)
		}
	}
	if len(paramConsts) > 0 {
		ff.ParamConsts = map[int][]int64{}
		for p, s := range paramConsts {
			ff.ParamConsts[p] = sortedConsts(s)
		}
	}
	if len(cmpConsts) > 0 {
		ff.CompareConsts = sortedConsts(cmpConsts)
	}
}

// collectEntryCallFacts records which functions the entry calls directly and
// which parameter positions receive input-tainted arguments there.
func collectEntryCallFacts(m *ir.Module, entry *ir.Func, st *flowState, facts *Facts) {
	taint := st.regTaint[entry.Name]
	tainted := func(r int) bool { return r >= 0 && r < len(taint) && taint[r] }
	for _, b := range entry.Blocks {
		for ii := range b.Instrs {
			in := &b.Instrs[ii]
			if in.Op != ir.OpCall {
				continue
			}
			callee := m.Func(in.Callee)
			if callee == nil {
				continue
			}
			ff := facts.Funcs[in.Callee]
			if ff == nil {
				continue
			}
			ff.CalledFromEntry = true
			if ff.EntryArgTaint == nil {
				ff.EntryArgTaint = make([]bool, callee.NumParams)
			}
			for i, a := range in.Args {
				if i < len(ff.EntryArgTaint) && (tainted(a) || st.memTaintAt(entry.Name, st.tagOf(entry.Name, a))) {
					ff.EntryArgTaint[i] = true
				}
			}
		}
	}
}

func sortedConsts(s map[int64]bool) []int64 {
	out := make([]int64, 0, len(s))
	for c := range s {
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
