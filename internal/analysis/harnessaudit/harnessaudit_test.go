package harnessaudit_test

// Seeded-defect tests for the harness-quality audit: each fixture plants
// exactly one harness defect in otherwise-healthy MinC source — a function
// unreachable from target_main (CLX119), a deliberately tiny coverage map
// (CLX120), a dictionary token no input-dataflow path can justify (CLX121)
// — and asserts the audit reports exactly the intended code at the
// intended site, with byte-stable JSON score cards.
//
// The tests live in an external package so they can drive the real
// core.BuildWith pipeline (core imports harnessaudit for the
// auto-dictionary, so the internal package cannot).

import (
	"bytes"
	"strings"
	"testing"

	"closurex/internal/analysis"
	"closurex/internal/analysis/harnessaudit"
	"closurex/internal/core"
	"closurex/internal/ir"
)

// cleanSrc is a minimal healthy harness: every function reachable from
// main, input bytes flowing through fread into real comparisons.
const cleanSrc = `
int check(char *b, int n) {
	if (n < 4) return 0;
	if (b[0] == 'M' && b[1] == 'Z') return 1;
	return 0;
}
int main(void) {
	int f = fopen("/input", "r");
	if (!f) abort();
	int size = fsize(f);
	if (size < 4 || size > 4096) { fclose(f); exit(1); }
	char *buf = (char*)malloc(size);
	if (!buf) exit(1);
	fread(buf, 1, size, f);
	int ok = check(buf, size);
	free(buf);
	fclose(f);
	return ok;
}
`

// deadFnSrc plants one function no call path from main reaches.
const deadFnSrc = `
int orphan(int x) {
	if (x > 3) return x * 2;
	return x;
}
int check(char *b, int n) {
	if (n < 4) return 0;
	if (b[0] == 'M' && b[1] == 'Z') return 1;
	return 0;
}
int main(void) {
	int f = fopen("/input", "r");
	if (!f) abort();
	int size = fsize(f);
	if (size < 4 || size > 4096) { fclose(f); exit(1); }
	char *buf = (char*)malloc(size);
	if (!buf) exit(1);
	fread(buf, 1, size, f);
	int ok = check(buf, size);
	free(buf);
	fclose(f);
	return ok;
}
`

func build(t *testing.T, src string) *ir.Module {
	t.Helper()
	mod, err := core.BuildWith("fixture.c", src, core.BuildConfig{Variant: core.ClosureX})
	if err != nil {
		t.Fatalf("build fixture: %v", err)
	}
	return mod
}

func onlyIDs(t *testing.T, ds analysis.Diagnostics, want string) {
	t.Helper()
	for i := range ds {
		if ds[i].ID != want {
			t.Fatalf("unexpected diagnostic %s (want only %s):\n%s", ds[i].ID, want, ds)
		}
		if ds[i].Sev != analysis.SevWarn {
			t.Fatalf("%s severity = %v, want warning", want, ds[i].Sev)
		}
	}
}

func TestAuditCleanHarness(t *testing.T) {
	mod := build(t, cleanSrc)
	card, ds := harnessaudit.Audit("fixture", mod, harnessaudit.Options{
		Dict: [][]byte{[]byte("MZ")},
	})
	if len(ds) != 0 {
		t.Fatalf("clean harness produced diagnostics:\n%s", ds)
	}
	if card.Funcs != card.ReachableFuncs || card.Blocks != card.ReachableBlocks {
		t.Fatalf("clean harness not fully reachable: %+v", card)
	}
	if card.DictTokens != 1 || card.LiveDictTokens != 1 {
		t.Fatalf("dict census = %d/%d, want 1/1 live", card.LiveDictTokens, card.DictTokens)
	}
	if card.Score < 99 {
		t.Fatalf("clean harness scored %.1f, want >= 99", card.Score)
	}
}

func TestAuditDeadSurfaceCLX119(t *testing.T) {
	mod := build(t, deadFnSrc)
	card, ds := harnessaudit.Audit("fixture", mod, harnessaudit.Options{
		Dict: [][]byte{[]byte("MZ")},
	})
	if len(ds) == 0 {
		t.Fatal("dead function not flagged")
	}
	onlyIDs(t, ds, analysis.IDDeadSurface)
	found := false
	for i := range ds {
		if ds[i].Func == "orphan" {
			found = true
		}
	}
	if !found {
		t.Fatalf("no CLX119 names the orphan function:\n%s", ds)
	}
	if card.ReachableFuncs != card.Funcs-1 {
		t.Fatalf("reachable funcs = %d/%d, want exactly one dead", card.ReachableFuncs, card.Funcs)
	}
	if len(card.DeadFuncs) != 1 || card.DeadFuncs[0] != "orphan" {
		t.Fatalf("DeadFuncs = %v, want [orphan]", card.DeadFuncs)
	}
	if card.Score >= 100 {
		t.Fatalf("dead surface did not cost score: %.1f", card.Score)
	}
}

func TestAuditSaturatedGeometryCLX120(t *testing.T) {
	mod := build(t, cleanSrc)
	_, ds := harnessaudit.Audit("fixture", mod, harnessaudit.Options{
		Dict:     [][]byte{[]byte("MZ")},
		MapCells: 8, // far fewer cells than probes: geometry is hopeless
	})
	if len(ds) == 0 {
		t.Fatal("saturated tiny bitmap not flagged")
	}
	onlyIDs(t, ds, analysis.IDCovSaturation)
	if !strings.Contains(ds[0].Msg, "saturated") {
		t.Fatalf("CLX120 message does not describe saturation: %s", ds[0].Msg)
	}
}

func TestAuditDeadDictTokenCLX121(t *testing.T) {
	mod := build(t, cleanSrc)
	card, ds := harnessaudit.Audit("fixture", mod, harnessaudit.Options{
		Dict: [][]byte{[]byte("MZ"), []byte("\xde\xad\xbe\xef")},
	})
	if len(ds) != 1 {
		t.Fatalf("want exactly one diagnostic for the dead token, got:\n%s", ds)
	}
	onlyIDs(t, ds, analysis.IDDeadDictToken)
	if !strings.Contains(ds[0].Msg, `\xde\xad\xbe\xef`) {
		t.Fatalf("CLX121 message does not quote the dead token: %s", ds[0].Msg)
	}
	if card.LiveDictTokens != 1 || card.DictTokens != 2 {
		t.Fatalf("dict census = %d/%d, want 1/2 live", card.LiveDictTokens, card.DictTokens)
	}
	if len(card.DeadDictTokens) != 1 {
		t.Fatalf("DeadDictTokens = %v, want one entry", card.DeadDictTokens)
	}
}

// The score-card JSON must be byte-stable: two audits of the same module
// with the same options serialize identically, and the cards sort by
// target name regardless of input order.
func TestCardsJSONByteStable(t *testing.T) {
	opts := harnessaudit.Options{Dict: [][]byte{[]byte("MZ")}}
	run := func() []byte {
		a, _ := harnessaudit.Audit("zfix", build(t, cleanSrc), opts)
		b, _ := harnessaudit.Audit("afix", build(t, deadFnSrc), opts)
		data, err := harnessaudit.CardsJSON([]*harnessaudit.Card{a, b})
		if err != nil {
			t.Fatal(err)
		}
		return data
	}
	first, second := run(), run()
	if !bytes.Equal(first, second) {
		t.Fatalf("score-card JSON not byte-stable:\n%s\n---\n%s", first, second)
	}
	// Schema pin: the stable field names downstream tooling greps for.
	for _, key := range []string{
		`"target"`, `"reachable_block_pct"`, `"saturation_pct"`, `"displaced_pct"`,
		`"dict_live_pct"`, `"auto_dict_tokens"`, `"score"`, `"dead_funcs"`,
	} {
		if !bytes.Contains(first, []byte(key)) {
			t.Fatalf("score-card JSON missing %s:\n%s", key, first)
		}
	}
	// Sorted by target: afix before zfix.
	if bytes.Index(first, []byte(`"afix"`)) > bytes.Index(first, []byte(`"zfix"`)) {
		t.Fatalf("cards not sorted by target:\n%s", first)
	}
}

// Harvest must surface the fixture's compare constants so the mutator can
// stamp them: 'M''Z' byte compares yield no multi-byte token here, but the
// gpmf-style fourcc fixture below must yield its magic.
const fourccSrc = `
int rd_be32(char *p) {
	return (p[0] << 24) | (p[1] << 16) | (p[2] << 8) | p[3];
}
int main(void) {
	int f = fopen("/input", "r");
	if (!f) abort();
	int size = fsize(f);
	if (size < 8 || size > 4096) { fclose(f); exit(1); }
	char *buf = (char*)malloc(size);
	if (!buf) exit(1);
	fread(buf, 1, size, f);
	int magic = rd_be32(buf);
	int hits = 0;
	if (magic == 0x4d414749) hits++;
	free(buf);
	fclose(f);
	return hits;
}
`

func TestHarvestExtractsCompareConstants(t *testing.T) {
	toks := harnessaudit.Harvest(build(t, fourccSrc))
	if len(toks) == 0 {
		t.Fatal("no tokens harvested from a fourcc compare")
	}
	found := false
	for _, tok := range toks {
		if bytes.Equal(tok, []byte("MAGI")) {
			found = true
		}
	}
	if !found {
		t.Fatalf("harvested tokens %q lack the big-endian magic MAGI", toks)
	}
}
