package analysis

import (
	"bytes"
	"encoding/json"
	"reflect"
	"testing"
)

// scrambledFindings is deliberately out of presentation order: files,
// functions, codes and positions all interleaved.
func scrambledFindings() Diags {
	m := Diags{}
	m.Add("zeta.c", Diagnostics{
		{ID: "CLX116", Sev: SevWarn, Pass: "InterprocPass", Func: "helper", Block: 2, Instr: 1, Msg: "b"},
		{ID: "CLX114", Sev: SevError, Pass: "InterprocPass", Func: "helper", Block: 0, Instr: 3, Msg: "a"},
		{ID: "CLX114", Sev: SevError, Pass: "InterprocPass", Func: "helper", Block: 0, Instr: 1, Msg: "c"},
	})
	m.Add("alpha.c", Diagnostics{
		{ID: "CLX118", Sev: SevWarn, Pass: "InterprocPass", Func: "orphan", Block: -1, Instr: -1, Msg: "d"},
		{ID: "CLX101", Sev: SevError, Pass: "verifier", Func: "main", Block: 1, Instr: 0, Msg: "e"},
	})
	return m
}

func TestDiagsFlattenDeterministicOrder(t *testing.T) {
	m := scrambledFindings()
	flat := m.Flatten()
	if len(flat) != 5 {
		t.Fatalf("flattened %d findings, want 5", len(flat))
	}
	// Files ascend; within a file, (function, code, position) ascend; File
	// is stamped on every row.
	wantFiles := []string{"alpha.c", "alpha.c", "zeta.c", "zeta.c", "zeta.c"}
	for i, d := range flat {
		if d.File != wantFiles[i] {
			t.Fatalf("row %d file = %q, want %q (%v)", i, d.File, wantFiles[i], flat)
		}
	}
	if flat[2].Instr != 1 || flat[3].Instr != 3 || flat[4].ID != "CLX116" {
		t.Fatalf("within-file order wrong: %+v", flat[2:])
	}
	// Flatten must not depend on map iteration: repeated calls agree.
	for i := 0; i < 10; i++ {
		if again := scrambledFindings().Flatten(); !reflect.DeepEqual(again, flat) {
			t.Fatalf("Flatten order unstable on run %d", i)
		}
	}
}

func TestDiagnosticsJSONByteStable(t *testing.T) {
	flat := scrambledFindings().Flatten()
	first, err := flat.JSON()
	if err != nil {
		t.Fatal(err)
	}
	// Byte-stability: same findings, any input order, identical bytes.
	for i := 0; i < 5; i++ {
		shuffled := append(Diagnostics(nil), flat...)
		for j := range shuffled {
			k := (j*7 + i) % len(shuffled)
			shuffled[j], shuffled[k] = shuffled[k], shuffled[j]
		}
		again, err := shuffled.JSON()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(first, again) {
			t.Fatalf("JSON not byte-stable under input reordering:\n%s\nvs\n%s", first, again)
		}
	}
	if first[len(first)-1] != '\n' {
		t.Fatal("JSON output lacks trailing newline")
	}
	// The schema is a compatibility contract: decode and pin field names.
	var rows []map[string]any
	if err := json.Unmarshal(first, &rows); err != nil {
		t.Fatalf("output not valid JSON: %v", err)
	}
	if len(rows) != 5 {
		t.Fatalf("decoded %d rows, want 5", len(rows))
	}
	for _, key := range []string{"file", "function", "code", "severity", "block", "instr", "message"} {
		if _, ok := rows[0][key]; !ok {
			t.Errorf("schema missing field %q: %v", key, rows[0])
		}
	}
	if rows[0]["code"] != "CLX101" || rows[0]["severity"] != "error" {
		t.Fatalf("first row = %v", rows[0])
	}
}

func TestJSONEmptyFindings(t *testing.T) {
	out, err := Diagnostics(nil).JSON()
	if err != nil {
		t.Fatal(err)
	}
	if string(out) != "[]\n" {
		t.Fatalf("empty findings render %q, want \"[]\\n\"", out)
	}
}
