package analysis

import (
	"fmt"

	"closurex/internal/ir"
)

// Restore-completeness lint catalog. Each lint statically proves one
// invariant the runtime restore machinery depends on; a module passing all
// of them is restartable by construction, so a campaign that still
// diverges points at the harness, not the pipeline.
const (
	IDRawHeapCall   = "CLX001" // malloc/calloc/realloc/free survives HeapPass
	IDRawFileCall   = "CLX002" // fopen/fclose survives FilePass
	IDRawExitCall   = "CLX003" // exit survives ExitPass
	IDGlobalSection = "CLX004" // writable global outside closure_global_section
	IDMainNotHooked = "CLX005" // entry point not renamed to target_main
	IDCovCollision  = "CLX006" // two coverage probes share a map location
	IDProbeMissing  = "CLX007" // instrumented module has a probe-less block
)

// TargetMain mirrors passes.TargetMain — the entry-point name the pipeline
// contract requires. analysis sits below passes in the import graph, so the
// contract string is declared here and cross-checked by a passes test.
const TargetMain = "target_main"

// rawCalls maps each raw libc-style routine the pipeline must hook to the
// lint that fires when a call site survives, the pass held responsible,
// and the wrapper the call should have been rewritten to.
var rawCalls = map[string]struct {
	id, pass, wrapper string
}{
	"malloc":  {IDRawHeapCall, "HeapPass", "closurex_malloc"},
	"calloc":  {IDRawHeapCall, "HeapPass", "closurex_calloc"},
	"realloc": {IDRawHeapCall, "HeapPass", "closurex_realloc"},
	"free":    {IDRawHeapCall, "HeapPass", "closurex_free"},
	"fopen":   {IDRawFileCall, "FilePass", "closurex_fopen"},
	"fclose":  {IDRawFileCall, "FilePass", "closurex_fclose"},
	"exit":    {IDRawExitCall, "ExitPass", "closurex_exit"},
}

// LintCatalog describes every restore-completeness lint, ID to summary —
// the table DESIGN.md §7 renders. It is the CLX001-007 slice of the full
// Catalog, which is the single source of diagnostic wording.
func LintCatalog() map[string]string {
	full := Catalog()
	out := make(map[string]string, 7)
	for _, id := range []string{
		IDRawHeapCall, IDRawFileCall, IDRawExitCall, IDGlobalSection,
		IDMainNotHooked, IDCovCollision, IDProbeMissing,
	} {
		out[id] = full[id]
	}
	return out
}

// Lint runs the restore-completeness lints over a module that is expected
// to have been through the full ClosureX pipeline, returning one
// diagnostic per violation. The module should verify cleanly first
// (Verify); lints assume structural sanity.
func Lint(m *ir.Module) Diagnostics {
	var ds Diagnostics
	ds = append(ds, lintEntry(m)...)
	ds = append(ds, lintRawCalls(m)...)
	ds = append(ds, lintGlobalSections(m)...)
	ds = append(ds, lintCoverage(m)...)
	ds.Sort()
	return ds
}

// lintEntry checks CLX005: RenameMainPass must have renamed main.
func lintEntry(m *ir.Module) Diagnostics {
	var ds Diagnostics
	if m.Func(TargetMain) == nil {
		ds = append(ds, Diagnostic{
			ID: IDMainNotHooked, Sev: SevError, Pass: "RenameMainPass",
			Block: -1, Instr: -1,
			Msg: fmt.Sprintf("module has no %s; the entry point was never renamed", TargetMain),
		})
	}
	if m.Func("main") != nil {
		ds = append(ds, Diagnostic{
			ID: IDMainNotHooked, Sev: SevError, Pass: "RenameMainPass",
			Func: "main", Block: -1, Instr: -1,
			Msg: "function main still present after the pipeline",
		})
	}
	return ds
}

// lintRawCalls checks CLX001/CLX002/CLX003: no raw heap, file or exit call
// site may survive the hooking passes.
func lintRawCalls(m *ir.Module) Diagnostics {
	var ds Diagnostics
	for _, f := range m.Funcs {
		for bi, b := range f.Blocks {
			for ii := range b.Instrs {
				in := &b.Instrs[ii]
				if in.Op != ir.OpCall {
					continue
				}
				hook, raw := rawCalls[in.Callee]
				if !raw || m.Func(in.Callee) != nil {
					// A module function shadowing a libc name is the
					// target's own code, not an unhooked runtime call.
					continue
				}
				ds = append(ds, Diagnostic{
					ID: hook.id, Sev: SevError, Pass: hook.pass,
					Func: f.Name, Block: bi, Instr: ii, Line: in.Pos,
					Msg: fmt.Sprintf("raw %s call survives %s (want %s); state would escape restore tracking",
						in.Callee, hook.pass, hook.wrapper),
				})
			}
		}
	}
	return ds
}

// lintGlobalSections checks CLX004: every writable global must have been
// moved into closure_global_section by GlobalPass, or its mutations would
// persist across iterations.
func lintGlobalSections(m *ir.Module) Diagnostics {
	var ds Diagnostics
	for gi, g := range m.Globals {
		if g.Const || g.Section == ir.SectionClosure {
			continue
		}
		ds = append(ds, Diagnostic{
			ID: IDGlobalSection, Sev: SevError, Pass: "GlobalPass",
			Block: -1, Instr: -1,
			Msg: fmt.Sprintf("writable global %d (%s) in section %q, want %q; its mutations would survive restore",
				gi, g.Name, g.Section, ir.SectionClosure),
		})
	}
	return ds
}

// lintCoverage checks CLX006 and CLX007 on instrumented modules: probe IDs
// must be collision-free (two blocks aliasing one map cell lose coverage
// signal and can mask sentinel divergence), and once any block carries a
// probe, every block must (a probe-less block is invisible to the bitmap).
// A module with no probes at all is simply uninstrumented and both lints
// stay quiet — lint runs on pre-coverage pipelines too.
func lintCoverage(m *ir.Module) Diagnostics {
	type site struct {
		fn        string
		block, ii int
		line      int32
	}
	firstByID := map[int64]site{}
	var ds Diagnostics
	probes, blocks := 0, 0
	var missing []site
	for _, f := range m.Funcs {
		for bi, b := range f.Blocks {
			blocks++
			hasProbe := false
			for ii := range b.Instrs {
				in := &b.Instrs[ii]
				if in.Op != ir.OpCov {
					continue
				}
				probes++
				hasProbe = true
				if prev, dup := firstByID[in.Imm]; dup {
					ds = append(ds, Diagnostic{
						ID: IDCovCollision, Sev: SevError, Pass: "CoveragePass",
						Func: f.Name, Block: bi, Instr: ii, Line: in.Pos,
						Msg: fmt.Sprintf("probe ID %d collides with %s b%d#%d; the two blocks alias one coverage cell",
							in.Imm, prev.fn, prev.block, prev.ii),
					})
				} else {
					firstByID[in.Imm] = site{f.Name, bi, ii, in.Pos}
				}
			}
			if !hasProbe {
				line := int32(0)
				if len(b.Instrs) > 0 {
					line = b.Instrs[0].Pos
				}
				missing = append(missing, site{f.Name, bi, -1, line})
			}
		}
	}
	if probes > 0 {
		for _, s := range missing {
			ds = append(ds, Diagnostic{
				ID: IDProbeMissing, Sev: SevError, Pass: "CoveragePass",
				Func: s.fn, Block: s.block, Instr: -1, Line: s.line,
				Msg: "block carries no coverage probe although the module is instrumented",
			})
		}
	}
	return ds
}

// LintShared runs the lint subset every build variant must satisfy —
// entry-point renaming and coverage sanity. Baseline (fresh/forkserver)
// builds legitimately keep raw heap, file and exit calls, so tools lint
// them with this entry instead of Lint.
func LintShared(m *ir.Module) Diagnostics {
	var ds Diagnostics
	ds = append(ds, lintEntry(m)...)
	ds = append(ds, lintCoverage(m)...)
	ds.Sort()
	return ds
}

// Check is the one-call entry tools use: Verify then, only when the module
// is structurally sound, Lint, returning the combined findings. Lints over
// a broken module would drown the root cause in noise.
func Check(m *ir.Module, builtins map[string]bool) Diagnostics {
	ds := Verify(m, builtins)
	if ds.HasErrors() {
		return ds
	}
	return append(ds, Lint(m)...)
}
