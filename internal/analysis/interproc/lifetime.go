package interproc

import (
	"fmt"

	"closurex/internal/ir"
)

// Site locates one instruction (an allocation or fopen call) inside a
// function.
type Site struct {
	Block, Instr int
}

// Heap-lifetime and file-lifetime analysis: an allocation (fopen) site is
// elidable when, on every path from the site to the function's exit, the
// chunk (descriptor) is either provably released — a free/fclose whose
// argument must-aliases the site's result — or the path provably cannot
// leak it into the next iteration:
//
//   - a fault (abort, OpUnreachable) respawns the whole VM, rebuilding the
//     chunk map and fd table from scratch;
//   - the branch edge on which the site's result is NULL carries no chunk
//     at all (malloc-failure paths are vacuously clean), recognized from
//     the lowerer's null-test shapes: `p`, `!p`, `p == 0`, `p != 0`;
//   - a cycle with no release and no return can only end in a fault
//     (execution budget), which respawns.
//
// Conversely a path fails when it returns, reaches exit()/closurex_exit
// (directly or through a callee that may exit), or re-executes the site
// before releasing the previous chunk. Escaping sites — pointer stored to
// memory, returned, or passed to a module function or realloc — are never
// elided: something outside the function could retain or free them.

// allocCallees maps heap allocation callees (raw and wrapped) to true.
var allocCallees = map[string]bool{
	"malloc": true, "closurex_malloc": true,
	"calloc": true, "closurex_calloc": true,
}

// reallocCallees free their pointer argument; passing a tracked pointer
// to them is an escape, and their own result is a site we never elide
// (the freed-or-untouched-on-failure semantics defeats must-free proofs).
var reallocCallees = map[string]bool{
	"realloc": true, "closurex_realloc": true,
}

var freeCallees = map[string]bool{
	"free": true, "closurex_free": true,
}

var fopenCallees = map[string]bool{
	"fopen": true, "closurex_fopen": true,
}

var fcloseCallees = map[string]bool{
	"fclose": true, "closurex_fclose": true,
}

// lifetimeKind selects which resource family a query is about.
type lifetimeKind int

const (
	heapLifetime lifetimeKind = iota
	fileLifetime
)

func (k lifetimeKind) isSiteCall(callee string) bool {
	if k == heapLifetime {
		return allocCallees[callee] || reallocCallees[callee]
	}
	return fopenCallees[callee]
}

func (k lifetimeKind) isRelease(callee string) bool {
	if k == heapLifetime {
		return freeCallees[callee]
	}
	return fcloseCallees[callee]
}

// lifetimeSites returns every site of the given kind in f, in textual
// order. For heap, realloc sites are included (they are tracked chunks)
// but are never elidable.
func lifetimeSites(f *ir.Func, k lifetimeKind) []Site {
	var out []Site
	for bi, b := range f.Blocks {
		for ii := range b.Instrs {
			in := &b.Instrs[ii]
			if in.Op == ir.OpCall && k.isSiteCall(in.Callee) {
				out = append(out, Site{Block: bi, Instr: ii})
			}
		}
	}
	return out
}

// lifetime runs site queries over one function.
type lifetime struct {
	fc      *funcCtx
	kind    lifetimeKind
	mayExit func(callee string) bool // module callee may reach exit()
	// ps, when non-nil, refines the "passed to a module function" escape
	// rule with per-parameter retention summaries; nil treats every such
	// call as an escape (the pre-summary behavior).
	ps *paramSafety
}

// elidable decides whether the site's tracking can be skipped.
func (lt *lifetime) elidable(site Site) bool {
	f := lt.fc.f
	in := &f.Blocks[site.Block].Instrs[site.Instr]
	if lt.kind == heapLifetime && reallocCallees[in.Callee] {
		return false
	}
	if in.Dst < 0 {
		return false // result discarded: released by nobody
	}
	siteIdx, ok := lt.fc.idx[[2]int{site.Block, site.Instr}]
	if !ok {
		return false
	}
	if lt.escapes(site, in.Dst) {
		return false
	}
	visited := make(map[Site]bool)
	return lt.walk(Site{Block: site.Block, Instr: site.Instr + 1}, site, siteIdx, visited)
}

// escapes reports whether the site's result may leave the function's
// hands: stored to memory as a value, returned, or passed to a module
// function or realloc. Flow-insensitive may-alias taint over mov/add/sub,
// hence conservative. Builtins other than realloc never retain pointers
// (and extra frees elsewhere can only fault, which respawns), so passing
// to them is not an escape.
func (lt *lifetime) escapes(site Site, dst int) bool {
	f := lt.fc.f
	tainted := taintFrom(f, dst)
	for _, b := range f.Blocks {
		for ii := range b.Instrs {
			in := &b.Instrs[ii]
			switch in.Op {
			case ir.OpStore:
				if in.B >= 0 && in.B < f.NumRegs && tainted[in.B] {
					return true
				}
			case ir.OpRet:
				if in.A >= 0 && in.A < f.NumRegs && tainted[in.A] {
					return true
				}
			case ir.OpCall:
				if reallocCallees[in.Callee] {
					for _, a := range in.Args {
						if a >= 0 && a < f.NumRegs && tainted[a] {
							return true
						}
					}
					continue
				}
				if lt.fc.m.Func(in.Callee) == nil {
					continue // builtins other than realloc never retain pointers
				}
				for i, a := range in.Args {
					if a < 0 || a >= f.NumRegs || !tainted[a] {
						continue
					}
					// Passing the pointer to a module function is only an
					// escape when that callee can retain or release it.
					if lt.ps == nil || !lt.ps.safe(in.Callee, i) {
						return true
					}
				}
			}
		}
	}
	return false
}

// taintFrom propagates may-alias taint from register src through mov and
// pointer-arithmetic (add/sub) chains, flow-insensitively.
func taintFrom(f *ir.Func, src int) []bool {
	tainted := make([]bool, f.NumRegs)
	if src >= 0 && src < f.NumRegs {
		tainted[src] = true
	}
	for changed := true; changed; {
		changed = false
		for _, b := range f.Blocks {
			for ii := range b.Instrs {
				in := &b.Instrs[ii]
				var from bool
				switch in.Op {
				case ir.OpMov:
					from = in.A >= 0 && in.A < f.NumRegs && tainted[in.A]
				case ir.OpBin:
					if in.Bin == ir.Add || in.Bin == ir.Sub {
						from = (in.A >= 0 && in.A < f.NumRegs && tainted[in.A]) ||
							(in.B >= 0 && in.B < f.NumRegs && tainted[in.B])
					}
				}
				if from && in.Dst >= 0 && in.Dst < f.NumRegs && !tainted[in.Dst] {
					tainted[in.Dst] = true
					changed = true
				}
			}
		}
	}
	return tainted
}

// paramSafety summarizes, per module function and parameter, whether a
// resource pointer (or descriptor) passed in that position stays in the
// caller's hands: the callee — transitively — never stores it to memory,
// never returns it, and never passes it to free/realloc/fclose. Read-only
// consumers like `rd_le16(buf + pos)` or a checksum walk are then no
// longer escapes, which is what lets buffers handed to module helpers
// keep their must-free proofs. Recursion resolves conservatively (unsafe)
// and results are memoized, so queries are deterministic in any order.
type paramSafety struct {
	m      *ir.Module
	memo   map[string][]int8 // 0 unknown, 1 safe, 2 unsafe
	inProg map[string]bool   // "fn#param" recursion guard
}

func newParamSafety(m *ir.Module) *paramSafety {
	return &paramSafety{
		m:      m,
		memo:   make(map[string][]int8),
		inProg: make(map[string]bool),
	}
}

// safe reports whether parameter p of fn neither escapes nor is released
// by fn (transitively).
func (ps *paramSafety) safe(fn string, p int) bool {
	f := ps.m.Func(fn)
	if f == nil || p < 0 || p >= f.NumParams {
		return false
	}
	st := ps.memo[fn]
	if st == nil {
		st = make([]int8, f.NumParams)
		ps.memo[fn] = st
	}
	if st[p] != 0 {
		return st[p] == 1
	}
	key := fmt.Sprintf("%s#%d", fn, p)
	if ps.inProg[key] {
		return false // recursive cycle: assume retained
	}
	ps.inProg[key] = true
	ok := ps.compute(f, p)
	delete(ps.inProg, key)
	if ok {
		st[p] = 1
	} else {
		st[p] = 2
	}
	return ok
}

// compute scans f for uses of parameter p (registers 0..NumParams-1 hold
// the incoming parameters) that retain or release the value.
func (ps *paramSafety) compute(f *ir.Func, p int) bool {
	tainted := taintFrom(f, p)
	for _, b := range f.Blocks {
		for ii := range b.Instrs {
			in := &b.Instrs[ii]
			switch in.Op {
			case ir.OpStore:
				if in.B >= 0 && in.B < f.NumRegs && tainted[in.B] {
					return false // stored as a value: retained
				}
			case ir.OpRet:
				if in.A >= 0 && in.A < f.NumRegs && tainted[in.A] {
					return false // returned: the caller-side walk loses track
				}
			case ir.OpCall:
				releases := freeCallees[in.Callee] || reallocCallees[in.Callee] ||
					fcloseCallees[in.Callee]
				callee := ps.m.Func(in.Callee)
				if !releases && callee == nil {
					continue // non-releasing builtin: never retains
				}
				for i, a := range in.Args {
					if a < 0 || a >= f.NumRegs || !tainted[a] {
						continue
					}
					if releases {
						return false // released here, invisibly to the caller
					}
					if !ps.safe(in.Callee, i) {
						return false
					}
				}
			}
		}
	}
	return true
}

// walk explores forward from pos, returning true when no leaking path is
// reachable before a release of the site's resource. Positions are
// memoized; revisiting an in-flight position closes a cycle, which is
// safe (a releaseless, returnless cycle ends in a budget fault and a
// respawn).
func (lt *lifetime) walk(pos, site Site, siteIdx int, visited map[Site]bool) bool {
	if visited[pos] {
		return true
	}
	visited[pos] = true
	f := lt.fc.f
	if pos.Block < 0 || pos.Block >= len(f.Blocks) {
		return false
	}
	b := f.Blocks[pos.Block]
	for ii := pos.Instr; ii < len(b.Instrs); ii++ {
		in := &b.Instrs[ii]
		switch in.Op {
		case ir.OpCall:
			if pos.Block == site.Block && ii == site.Instr {
				return false // re-allocated before the previous chunk's release
			}
			if lt.kind.isRelease(in.Callee) && len(in.Args) >= 1 &&
				lt.fc.resolvePtr(pos.Block, ii, in.Args[0]) == siteIdx {
				return true // released on this path
			}
			if eff := builtinEffects[in.Callee]; eff != nil {
				if eff.exits {
					return false // exit() unwinds past the pending release
				}
				if in.Callee == "abort" {
					return true // unconditional fault: VM respawns
				}
				continue
			}
			if lt.fc.m.Func(in.Callee) != nil {
				if lt.mayExit != nil && lt.mayExit(in.Callee) {
					return false // callee may unwind the iteration
				}
				continue
			}
			return false // unknown callee: assume the worst
		case ir.OpRet:
			return false // function returns with the resource unreleased
		case ir.OpUnreachable:
			return true // fault: VM respawns
		case ir.OpBr:
			return lt.walk(Site{Block: in.Targets[0]}, site, siteIdx, visited)
		case ir.OpCondBr:
			nullEdge := lt.nullTestEdge(pos.Block, ii, in.A, siteIdx)
			ok := true
			if nullEdge != 0 {
				ok = ok && lt.walk(Site{Block: in.Targets[0]}, site, siteIdx, visited)
			}
			if ok && nullEdge != 1 {
				ok = lt.walk(Site{Block: in.Targets[1]}, site, siteIdx, visited)
			}
			return ok
		}
	}
	return false // unterminated block: structurally invalid, be conservative
}

// nullTestEdge recognizes the lowerer's null-test shapes on the condition
// register and returns which branch target index (0 or 1) is taken when
// the site's pointer is NULL — that edge carries no resource and is
// pruned — or -1 when the condition is not a null test of this site.
//
// OpCondBr semantics: cond != 0 jumps Targets[0], else Targets[1].
//
//	if (p)        cond = p        → NULL takes Targets[1]
//	if (!p)       cond = !p       → NULL takes Targets[0]
//	if (p == 0)   cond = eq p, 0  → NULL takes Targets[0]
//	if (p != 0)   cond = ne p, 0  → NULL takes Targets[1]
func (lt *lifetime) nullTestEdge(bi, ii, cond, siteIdx int) int {
	if lt.fc.resolvePtr(bi, ii, cond) == siteIdx {
		return 1
	}
	defSite := lt.fc.useSite(bi, ii, cond)
	if defSite < 0 {
		return -1
	}
	s := lt.fc.rd.Sites[defSite]
	if s.Block < 0 {
		return -1
	}
	in := &lt.fc.f.Blocks[s.Block].Instrs[s.Instr]
	switch in.Op {
	case ir.OpUn:
		if in.Un == ir.Not && lt.fc.resolvePtr(s.Block, s.Instr, in.A) == siteIdx {
			return 0
		}
	case ir.OpBin:
		if in.Bin != ir.Eq && in.Bin != ir.Ne {
			return -1
		}
		ptrA := lt.fc.resolvePtr(s.Block, s.Instr, in.A) == siteIdx
		ptrB := lt.fc.resolvePtr(s.Block, s.Instr, in.B) == siteIdx
		zeroA := isConstZero(lt.fc.value(s.Block, s.Instr, in.A))
		zeroB := isConstZero(lt.fc.value(s.Block, s.Instr, in.B))
		if (ptrA && zeroB) || (ptrB && zeroA) {
			if in.Bin == ir.Eq {
				return 0
			}
			return 1
		}
	}
	return -1
}

func isConstZero(v absVal) bool {
	return v.k == rng && v.lo == 0 && v.hi == 0
}
