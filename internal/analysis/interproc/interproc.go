// Package interproc implements the interprocedural mod/ref and lifetime
// analyses behind restore elision: a call-graph construction over lowered
// modules, per-function transitive may-write summaries over
// closure_global_section, and must-release proofs for allocation and
// fopen sites — so the harness can snapshot, watch-track and restore only
// state the target can actually dirty. Every claim the analysis stamps
// into ir.Module.Interproc (and the TrackElide/FileElide instruction
// marks) is re-derivable from scratch by Audit, which is how unsound
// elisions become verifier errors (CLX114/CLX117) instead of silent
// correctness drift.
package interproc

import (
	"fmt"
	"sort"
	"strings"

	"closurex/internal/analysis"
	"closurex/internal/ir"
)

// interprocPass is the Pass attribution carried by this package's
// diagnostics.
const interprocPass = "InterprocPass"

// initFunc mirrors passes.InitFunc — the deferred-initialization routine
// the harness invokes directly, hence an analysis root. Declared here
// because analysis sits below passes in the import graph.
const initFunc = "closurex_init"

// FuncResult carries one function's per-function analysis outcome.
type FuncResult struct {
	Summary   *Summary
	Reachable bool
	// HeapSites/FileSites list every tracked site in textual order;
	// HeapElide/FileElide the subset proven releasable on all paths.
	HeapSites []Site
	HeapElide map[Site]bool
	FileSites []Site
	FileElide map[Site]bool
}

// Result is the whole-module analysis outcome.
type Result struct {
	Graph *CallGraph
	// Roots are the entry points reachability was computed from.
	Roots []string
	Funcs map[string]*FuncResult
	// MayWriteGlobals is the sorted union of global indices any reachable
	// function may write. Meaningless when WholeSection is set.
	MayWriteGlobals []int
	// WholeSection is set when some reachable function's global writes
	// could not be bounded, or when no root was found.
	WholeSection bool
	// Diags carries the explanation warnings: CLX115 call-graph holes,
	// CLX116 unattributable global writes, CLX118 unreachable functions.
	Diags analysis.Diagnostics
}

// Analyze runs the call graph, mod/ref fixpoint and lifetime analyses
// over m. The module is not modified; Apply stamps the results.
func Analyze(m *ir.Module) *Result {
	res := &Result{
		Graph: BuildCallGraph(m),
		Funcs: make(map[string]*FuncResult, len(m.Funcs)),
	}
	for _, root := range []string{analysis.TargetMain, "main", initFunc} {
		if m.Func(root) != nil {
			if root == "main" && len(res.Roots) > 0 {
				continue // target_main present: stale main is the linter's problem
			}
			res.Roots = append(res.Roots, root)
		}
	}
	reach := res.Graph.Reachable(res.Roots...)

	ctxs := make(map[string]*funcCtx, len(m.Funcs))
	var all, reachable []string
	for _, f := range m.Funcs {
		ctxs[f.Name] = newFuncCtx(m, f)
		all = append(all, f.Name)
		if reach[f.Name] {
			reachable = append(reachable, f.Name)
		}
	}
	sort.Strings(all)
	sort.Strings(reachable)
	// Resolve return-value intervals bottom-up before anything consults
	// them; forcing in sorted order keeps the memo state — and with it
	// every downstream conclusion — deterministic across runs.
	rets := newRetOracle(ctxs)
	for _, fn := range all {
		ctxs[fn].rets = rets
	}
	for _, fn := range all {
		rets.retOf(fn)
	}
	sums := computeModRef(m, ctxs, reachable)

	// Reporting pass: re-derive each reachable function's effects against
	// the stable summaries, collecting the CLX115/CLX116 explanations.
	st := &modRefState{m: m, ctxs: ctxs, sums: sums, grow: map[string]int{}}
	for _, fn := range reachable {
		st.effects(ctxs[fn], &res.Diags)
	}

	mayExit := func(callee string) bool {
		if s := sums[callee]; s != nil {
			return s.MayExit
		}
		return true // no summary (unreachable from roots): assume the worst
	}
	ps := newParamSafety(m)

	writes := map[int]bool{}
	if len(res.Roots) == 0 {
		res.WholeSection = true
	}
	for _, f := range m.Funcs {
		fr := &FuncResult{
			Reachable: reach[f.Name],
			Summary:   sums[f.Name],
			HeapElide: map[Site]bool{},
			FileElide: map[Site]bool{},
		}
		if fr.Summary == nil {
			fr.Summary = newSummary()
		}
		res.Funcs[f.Name] = fr
		if fr.Reachable {
			if fr.Summary.Unknown {
				res.WholeSection = true
			}
			for g := range fr.Summary.WritesGlobals {
				writes[g] = true
			}
			// A root whose own parameters are written is a contract the
			// harness cannot check; treat as unbounded.
			if len(fr.Summary.ParamWrites) > 0 && isRoot(res.Roots, f.Name) {
				res.WholeSection = true
			}
		} else {
			res.Diags = append(res.Diags, analysis.Diagnostic{
				ID: analysis.IDUnreachableFn, Sev: analysis.SevWarn, Pass: interprocPass,
				Func: f.Name, Block: -1, Instr: -1,
				Msg: fmt.Sprintf("function unreachable from %s; its sites elide vacuously", strings.Join(res.Roots, "/")),
			})
		}

		lt := &lifetime{fc: ctxs[f.Name], kind: heapLifetime, mayExit: mayExit, ps: ps}
		fr.HeapSites = lifetimeSites(f, heapLifetime)
		for _, s := range fr.HeapSites {
			if !fr.Reachable || lt.elidable(s) {
				fr.HeapElide[s] = true
			}
		}
		lt = &lifetime{fc: ctxs[f.Name], kind: fileLifetime, mayExit: mayExit, ps: ps}
		fr.FileSites = lifetimeSites(f, fileLifetime)
		for _, s := range fr.FileSites {
			if !fr.Reachable || lt.elidable(s) {
				fr.FileElide[s] = true
			}
		}
	}
	for g := range writes {
		res.MayWriteGlobals = append(res.MayWriteGlobals, g)
	}
	sort.Ints(res.MayWriteGlobals)
	res.Diags.Sort()
	return res
}

func isRoot(roots []string, fn string) bool {
	for _, r := range roots {
		if r == fn {
			return true
		}
	}
	return false
}

// Info renders the result as the ir.InterprocInfo metadata InterprocPass
// stamps on the module.
func (res *Result) Info() *ir.InterprocInfo {
	info := &ir.InterprocInfo{
		MayWriteGlobals: append([]int(nil), res.MayWriteGlobals...),
		WholeSection:    res.WholeSection,
	}
	names := sortedFuncNames(res.Funcs)
	for _, fn := range names {
		fr := res.Funcs[fn]
		info.AllocSites += len(fr.HeapSites)
		info.AllocElided += len(fr.HeapElide)
		info.FileSites += len(fr.FileSites)
		info.FileElided += len(fr.FileElide)
	}
	return info
}

// Apply stamps the analysis results onto the module: TrackElide/FileElide
// marks on the proven sites and the ir.InterprocInfo metadata. It is how
// passes.InterprocPass commits the analysis; Audit re-derives everything.
func Apply(m *ir.Module, res *Result) {
	for _, f := range m.Funcs {
		fr := res.Funcs[f.Name]
		if fr == nil {
			continue
		}
		for s := range fr.HeapElide {
			f.Blocks[s.Block].Instrs[s.Instr].TrackElide = true
		}
		for s := range fr.FileElide {
			f.Blocks[s.Block].Instrs[s.Instr].FileElide = true
		}
	}
	m.Interproc = res.Info()
}

func sortedFuncNames(m map[string]*FuncResult) []string {
	out := make([]string, 0, len(m))
	for fn := range m {
		out = append(out, fn)
	}
	sort.Strings(out)
	return out
}

// --- reporting (closurex-lint -interproc-report) ---

// FuncReport is one row of the per-function report table.
type FuncReport struct {
	Name      string
	Reachable bool
	// GlobalWrites counts globals the function's transitive summary may
	// write; -1 renders as "whole-section".
	GlobalWrites int
	MayExit      bool
	HeapSites    int
	HeapElided   int
	FileSites    int
	FileElided   int
}

// Report aggregates the per-function tables plus module-level scope.
type Report struct {
	Funcs           []FuncReport
	MayWriteGlobals int
	TotalGlobals    int
	WholeSection    bool
}

// ReportModule analyzes m from scratch and builds the per-function table
// — the closurex-lint -interproc-report entry point.
func ReportModule(m *ir.Module) *Report {
	return ReportResult(m, Analyze(m))
}

// ReportResult builds the lint report from an analysis result.
func ReportResult(m *ir.Module, res *Result) *Report {
	rep := &Report{
		MayWriteGlobals: len(res.MayWriteGlobals),
		TotalGlobals:    len(m.Globals),
		WholeSection:    res.WholeSection,
	}
	for _, fn := range sortedFuncNames(res.Funcs) {
		fr := res.Funcs[fn]
		row := FuncReport{
			Name:       fn,
			Reachable:  fr.Reachable,
			MayExit:    fr.Summary.MayExit,
			HeapSites:  len(fr.HeapSites),
			HeapElided: len(fr.HeapElide),
			FileSites:  len(fr.FileSites),
			FileElided: len(fr.FileElide),
		}
		if fr.Summary.Unknown {
			row.GlobalWrites = -1
		} else {
			row.GlobalWrites = len(fr.Summary.WritesGlobals)
		}
		rep.Funcs = append(rep.Funcs, row)
	}
	return rep
}

// Format renders the report as the table closurex-lint prints.
func (r *Report) Format() string {
	var sb strings.Builder
	scope := fmt.Sprintf("%d/%d globals may-written", r.MayWriteGlobals, r.TotalGlobals)
	if r.WholeSection {
		scope = "whole-section (writes not bounded)"
	}
	fmt.Fprintf(&sb, "restore scope: %s\n", scope)
	fmt.Fprintf(&sb, "%-24s %5s %8s %7s %11s %11s\n",
		"function", "reach", "gwrites", "mayexit", "heap e/n", "file e/n")
	for _, fr := range r.Funcs {
		reach, exits := "yes", "no"
		if !fr.Reachable {
			reach = "no"
		}
		if fr.MayExit {
			exits = "yes"
		}
		gw := fmt.Sprintf("%d", fr.GlobalWrites)
		if fr.GlobalWrites < 0 {
			gw = "whole"
		}
		fmt.Fprintf(&sb, "%-24s %5s %8s %7s %5d/%-5d %5d/%-5d\n",
			fr.Name, reach, gw, exits,
			fr.HeapElided, fr.HeapSites, fr.FileElided, fr.FileSites)
	}
	return sb.String()
}
