package interproc

import (
	"sort"

	"closurex/internal/ir"
)

// CallSite locates one OpCall instruction inside a function.
type CallSite struct {
	Block, Instr int
	Callee       string
}

// CallGraph is the direct-call graph of a module: adjacency between module
// functions, plus the builtin and unknown callees each function names. It
// is deliberately conservative about indirection — the IR has no indirect
// calls, so every edge is a direct OpCall; anything that resolves to
// neither a module function nor a modeled builtin is recorded under
// Unknown and treated as a call-graph hole (CLX115) by the clients.
type CallGraph struct {
	M *ir.Module
	// Callees maps a function to the module functions it calls directly,
	// sorted and deduplicated. Callers is the reverse adjacency.
	Callees map[string][]string
	Callers map[string][]string
	// Builtins maps a function to the modeled builtin names it calls,
	// sorted and deduplicated.
	Builtins map[string][]string
	// Unknown records call sites whose callee is neither a module function
	// nor a modeled builtin, per function in textual order.
	Unknown map[string][]CallSite
}

// BuildCallGraph derives the call graph of m.
func BuildCallGraph(m *ir.Module) *CallGraph {
	cg := &CallGraph{
		M:        m,
		Callees:  make(map[string][]string),
		Callers:  make(map[string][]string),
		Builtins: make(map[string][]string),
		Unknown:  make(map[string][]CallSite),
	}
	for _, f := range m.Funcs {
		calleeSet := map[string]bool{}
		builtinSet := map[string]bool{}
		for bi, b := range f.Blocks {
			for ii := range b.Instrs {
				in := &b.Instrs[ii]
				if in.Op != ir.OpCall {
					continue
				}
				switch {
				case m.Func(in.Callee) != nil:
					calleeSet[in.Callee] = true
				case builtinEffects[in.Callee] != nil:
					builtinSet[in.Callee] = true
				default:
					cg.Unknown[f.Name] = append(cg.Unknown[f.Name],
						CallSite{Block: bi, Instr: ii, Callee: in.Callee})
				}
			}
		}
		cg.Callees[f.Name] = sortedKeys(calleeSet)
		cg.Builtins[f.Name] = sortedKeys(builtinSet)
	}
	for caller, callees := range cg.Callees {
		for _, callee := range callees {
			cg.Callers[callee] = append(cg.Callers[callee], caller)
		}
	}
	for callee := range cg.Callers {
		sort.Strings(cg.Callers[callee])
	}
	return cg
}

func sortedKeys(set map[string]bool) []string {
	if len(set) == 0 {
		return nil
	}
	out := make([]string, 0, len(set))
	for k := range set {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Reachable returns the set of module functions reachable from the given
// roots along direct-call edges. Roots that are not module functions are
// ignored.
func (cg *CallGraph) Reachable(roots ...string) map[string]bool {
	seen := map[string]bool{}
	var stack []string
	for _, r := range roots {
		if cg.M.Func(r) != nil && !seen[r] {
			seen[r] = true
			stack = append(stack, r)
		}
	}
	for len(stack) > 0 {
		fn := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, c := range cg.Callees[fn] {
			if !seen[c] {
				seen[c] = true
				stack = append(stack, c)
			}
		}
	}
	return seen
}

// SCCs returns the strongly connected components of the module-function
// call graph (Tarjan), each component sorted by name, components ordered
// by their smallest member — a deterministic presentation regardless of
// map iteration order. Mutual recursion shows up as a component with more
// than one member; direct self-recursion as a singleton whose function
// calls itself.
func (cg *CallGraph) SCCs() [][]string {
	names := make([]string, 0, len(cg.M.Funcs))
	for _, f := range cg.M.Funcs {
		names = append(names, f.Name)
	}
	sort.Strings(names)

	index := map[string]int{}
	low := map[string]int{}
	onStack := map[string]bool{}
	var stack []string
	next := 0
	var comps [][]string

	var strongconnect func(v string)
	strongconnect = func(v string) {
		index[v] = next
		low[v] = next
		next++
		stack = append(stack, v)
		onStack[v] = true
		for _, w := range cg.Callees[v] {
			if _, seen := index[w]; !seen {
				strongconnect(w)
				if low[w] < low[v] {
					low[v] = low[w]
				}
			} else if onStack[w] && index[w] < low[v] {
				low[v] = index[w]
			}
		}
		if low[v] == index[v] {
			var comp []string
			for {
				w := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[w] = false
				comp = append(comp, w)
				if w == v {
					break
				}
			}
			sort.Strings(comp)
			comps = append(comps, comp)
		}
	}
	for _, v := range names {
		if _, seen := index[v]; !seen {
			strongconnect(v)
		}
	}
	sort.Slice(comps, func(i, j int) bool { return comps[i][0] < comps[j][0] })
	return comps
}

// SelfRecursive reports whether fn calls itself directly.
func (cg *CallGraph) SelfRecursive(fn string) bool {
	for _, c := range cg.Callees[fn] {
		if c == fn {
			return true
		}
	}
	return false
}
