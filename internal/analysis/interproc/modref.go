package interproc

import (
	"fmt"
	"sort"

	"closurex/internal/analysis"
	"closurex/internal/ir"
)

// Interval is a byte-offset interval relative to a region base: writes
// cover [Lo, Hi] when bounded, [Lo, ∞) when Unbounded. Lo is always a
// valid lower bound — that is what lets an unbounded-length write (strcpy
// into a frame buffer) still be proven global-clean, since frame and heap
// writes starting at a non-negative offset extend away from the globals
// segment.
type Interval struct {
	Lo, Hi    int64
	Unbounded bool
}

func (iv Interval) join(o Interval) Interval {
	out := iv
	if o.Lo < out.Lo {
		out.Lo = o.Lo
	}
	if o.Hi > out.Hi {
		out.Hi = o.Hi
	}
	out.Unbounded = iv.Unbounded || o.Unbounded
	if out.Lo < -boundClamp {
		out.Lo = -boundClamp // effectively -∞: fails every >= 0 check
	}
	if out.Hi > boundClamp {
		out.Unbounded = true
	}
	if out.Unbounded {
		out.Hi = 0 // meaningless when unbounded; normalize for equality
	}
	return out
}

// Summary is one function's interprocedural effect summary: the globals it
// (or anything it transitively calls) may write, the byte intervals it may
// write through each pointer parameter, whether its global writes could
// not be bounded at all, and whether it can unwind the whole iteration
// through exit().
type Summary struct {
	// WritesGlobals maps global indices this function may write, with the
	// in-bounds proof already checked (a write that could cross a global's
	// end sets Unknown instead).
	WritesGlobals map[int]bool
	// ParamWrites maps parameter index -> byte interval the function may
	// write through that parameter's incoming pointer value.
	ParamWrites map[int]Interval
	// Unknown is set when some write could not be attributed: the function
	// must be assumed to write the whole closure_global_section.
	Unknown bool
	// MayExit is set when the function can transitively reach exit()/
	// closurex_exit(), unwinding past every pending cleanup in its callers.
	MayExit bool
}

func newSummary() *Summary {
	return &Summary{
		WritesGlobals: map[int]bool{},
		ParamWrites:   map[int]Interval{},
	}
}

func (s *Summary) equal(o *Summary) bool {
	if o == nil {
		return false
	}
	if s.Unknown != o.Unknown || s.MayExit != o.MayExit ||
		len(s.WritesGlobals) != len(o.WritesGlobals) ||
		len(s.ParamWrites) != len(o.ParamWrites) {
		return false
	}
	for g := range s.WritesGlobals {
		if !o.WritesGlobals[g] {
			return false
		}
	}
	for p, iv := range s.ParamWrites {
		if o.ParamWrites[p] != iv {
			return false
		}
	}
	return true
}

// Globals returns the sorted global indices in WritesGlobals.
func (s *Summary) Globals() []int {
	out := make([]int, 0, len(s.WritesGlobals))
	for g := range s.WritesGlobals {
		out = append(out, g)
	}
	sort.Ints(out)
	return out
}

// builtinEffect describes one modeled builtin's memory behavior. Builtins
// absent from the table are call-graph holes: their effects are unknown
// and any caller degrades to whole-section (CLX115).
type builtinEffect struct {
	// writesPtrArg is the argument index of a destination pointer the
	// builtin writes through, or -1 when it writes no target memory.
	writesPtrArg int
	// lenArgs are the argument indices whose product bounds the write
	// length; empty with writesPtrArg >= 0 means unbounded (strcpy).
	lenArgs []int
	// exits marks exit()/closurex_exit (iteration unwinding).
	exits bool
}

// builtinEffects is the modeled C-library surface (vm/builtins.go). The
// allocator and fd-table families mutate runtime bookkeeping, not target
// memory; abort/assert fault (respawning the VM) rather than unwind.
var builtinEffects = map[string]*builtinEffect{
	"exit":          {writesPtrArg: -1, exits: true},
	"closurex_exit": {writesPtrArg: -1, exits: true},
	"abort":         {writesPtrArg: -1},
	"assert":        {writesPtrArg: -1},

	"malloc":           {writesPtrArg: -1},
	"calloc":           {writesPtrArg: -1},
	"realloc":          {writesPtrArg: -1},
	"free":             {writesPtrArg: -1},
	"closurex_malloc":  {writesPtrArg: -1},
	"closurex_calloc":  {writesPtrArg: -1},
	"closurex_realloc": {writesPtrArg: -1},
	"closurex_free":    {writesPtrArg: -1},

	"memcpy":  {writesPtrArg: 0, lenArgs: []int{2}},
	"memmove": {writesPtrArg: 0, lenArgs: []int{2}},
	"memset":  {writesPtrArg: 0, lenArgs: []int{2}},
	"memcmp":  {writesPtrArg: -1},
	"strlen":  {writesPtrArg: -1},
	"strcmp":  {writesPtrArg: -1},
	"strncmp": {writesPtrArg: -1},
	"strcpy":  {writesPtrArg: 0}, // length unknowable statically

	"fopen":           {writesPtrArg: -1},
	"fclose":          {writesPtrArg: -1},
	"closurex_fopen":  {writesPtrArg: -1},
	"closurex_fclose": {writesPtrArg: -1},
	"fread":           {writesPtrArg: 0, lenArgs: []int{1, 2}},
	"fwrite":          {writesPtrArg: -1},
	"fgetc":           {writesPtrArg: -1},
	"fseek":           {writesPtrArg: -1},
	"ftell":           {writesPtrArg: -1},
	"fsize":           {writesPtrArg: -1},

	"puts":      {writesPtrArg: -1},
	"putchar":   {writesPtrArg: -1},
	"print_int": {writesPtrArg: -1},

	"rand":  {writesPtrArg: -1},
	"srand": {writesPtrArg: -1},
}

// paramWidenLimit bounds how often a (function, parameter) write interval
// may grow across fixpoint rounds before widening to Unbounded — the
// termination guarantee for recursive pointer-advancing cycles.
const paramWidenLimit = 4

// modRefState runs the interprocedural mod/ref fixpoint.
type modRefState struct {
	m    *ir.Module
	ctxs map[string]*funcCtx
	sums map[string]*Summary
	grow map[string]int // "fn#param" -> interval growth count
}

func computeModRef(m *ir.Module, ctxs map[string]*funcCtx, funcs []string) map[string]*Summary {
	st := &modRefState{
		m:    m,
		ctxs: ctxs,
		sums: make(map[string]*Summary, len(funcs)),
		grow: map[string]int{},
	}
	for _, fn := range funcs {
		st.sums[fn] = newSummary()
	}
	for changed := true; changed; {
		changed = false
		for _, fn := range funcs {
			ns := st.effects(st.ctxs[fn], nil)
			st.widen(fn, ns)
			if !ns.equal(st.sums[fn]) {
				st.sums[fn] = ns
				changed = true
			}
		}
	}
	return st.sums
}

// widen applies the parameter-interval widening against the previous
// round's summary.
func (st *modRefState) widen(fn string, ns *Summary) {
	old := st.sums[fn]
	if old == nil {
		return
	}
	for p, iv := range ns.ParamWrites {
		prev, had := old.ParamWrites[p]
		if iv.Unbounded || (had && prev == iv) {
			continue
		}
		key := fmt.Sprintf("%s#%d", fn, p)
		if had {
			st.grow[key]++
		}
		if st.grow[key] > paramWidenLimit {
			ns.ParamWrites[p] = Interval{Lo: -boundClamp, Unbounded: true}
		}
	}
}

// effects computes fn's summary from its body and the current callee
// summaries. When diags is non-nil, unattributable stores (CLX116) and
// call-graph holes (CLX115) are reported through it — used by the final
// reporting pass once the fixpoint is stable.
func (st *modRefState) effects(fc *funcCtx, diags *analysis.Diagnostics) *Summary {
	s := newSummary()
	for bi, b := range fc.f.Blocks {
		for ii := range b.Instrs {
			in := &b.Instrs[ii]
			switch in.Op {
			case ir.OpStore:
				base := fc.value(bi, ii, in.A)
				span := Interval{Lo: in.Imm, Hi: in.Imm + int64(in.Size) - 1}
				if base.k == top && span.Lo >= 0 && fc.regionPtr(in.A) {
					// Interval analysis lost the address (loop-carried
					// index), but the region classifier proves it heap- or
					// frame-directed with a non-negative offset: the write
					// extends away from the globals segment.
					continue
				}
				if !st.applySpan(s, base, span) && diags != nil {
					*diags = append(*diags, analysis.Diagnostic{
						ID: analysis.IDGlobalEscape, Sev: analysis.SevWarn, Pass: interprocPass,
						Func: fc.f.Name, Block: bi, Instr: ii, Line: in.Pos,
						Msg: fmt.Sprintf("store through unresolvable pointer (width %d); globals must be treated as whole-section may-written", in.Size),
					})
				}
			case ir.OpCall:
				st.callEffects(fc, s, bi, ii, in, diags)
			}
		}
	}
	return s
}

// applySpan folds one write of base+span into the summary, returning
// false when the write could not be attributed (summary degraded to
// Unknown).
func (st *modRefState) applySpan(s *Summary, base absVal, span Interval) bool {
	switch base.k {
	case frameOff, heapOff:
		// The frame and heap segments lie strictly above the globals
		// segment, and writes extend upward: a non-negative start offset
		// can never reach a global byte, whatever the length.
		if base.lo+span.Lo >= 0 {
			return true
		}
	case globalOff:
		if base.g >= 0 && base.g < len(st.m.Globals) && !span.Unbounded {
			g := st.m.Globals[base.g]
			if base.lo+span.Lo >= 0 && base.hi+span.Hi < g.Size {
				s.WritesGlobals[base.g] = true
				return true
			}
		}
	case paramOff:
		iv := Interval{Lo: base.lo + span.Lo, Hi: base.hi + span.Hi, Unbounded: span.Unbounded}
		if iv.Lo < -boundClamp {
			iv.Lo = -boundClamp
		}
		if iv.Hi > boundClamp {
			iv.Unbounded = true
		}
		if iv.Unbounded {
			iv.Hi = 0
		}
		if prev, ok := s.ParamWrites[base.p]; ok {
			iv = prev.join(iv)
		}
		s.ParamWrites[base.p] = iv
		return true
	}
	s.Unknown = true
	return false
}

// callEffects folds one call's effects into the summary.
func (st *modRefState) callEffects(fc *funcCtx, s *Summary, bi, ii int, in *ir.Instr, diags *analysis.Diagnostics) {
	if st.m.Func(in.Callee) != nil {
		cs := st.sums[in.Callee]
		if cs == nil {
			// Callee outside the analyzed (reachable) set: impossible for
			// calls from reachable code, but be conservative regardless.
			s.Unknown = true
			return
		}
		s.MayExit = s.MayExit || cs.MayExit
		s.Unknown = s.Unknown || cs.Unknown
		for g := range cs.WritesGlobals {
			s.WritesGlobals[g] = true
		}
		params := make([]int, 0, len(cs.ParamWrites))
		for p := range cs.ParamWrites {
			params = append(params, p)
		}
		sort.Ints(params)
		for _, p := range params {
			iv := cs.ParamWrites[p]
			if p >= len(in.Args) {
				s.Unknown = true
				continue
			}
			base := fc.value(bi, ii, in.Args[p])
			if base.k == top && iv.Lo >= 0 && fc.regionPtr(in.Args[p]) {
				continue // heap/frame-directed argument: callee writes stay out of globals
			}
			if !st.applySpan(s, base, iv) && diags != nil {
				*diags = append(*diags, analysis.Diagnostic{
					ID: analysis.IDGlobalEscape, Sev: analysis.SevWarn, Pass: interprocPass,
					Func: fc.f.Name, Block: bi, Instr: ii, Line: in.Pos,
					Msg: fmt.Sprintf("call %s may write through argument %d, which the caller cannot bound; globals degrade to whole-section", in.Callee, p),
				})
			}
		}
		return
	}
	eff := builtinEffects[in.Callee]
	if eff == nil {
		s.Unknown = true
		if diags != nil {
			*diags = append(*diags, analysis.Diagnostic{
				ID: analysis.IDCallGraphHole, Sev: analysis.SevWarn, Pass: interprocPass,
				Func: fc.f.Name, Block: bi, Instr: ii, Line: in.Pos,
				Msg: fmt.Sprintf("call-graph hole: callee %q is neither a module function nor a modeled builtin; effects unknown", in.Callee),
			})
		}
		return
	}
	if eff.exits {
		s.MayExit = true
	}
	if eff.writesPtrArg < 0 {
		return
	}
	if eff.writesPtrArg >= len(in.Args) {
		s.Unknown = true
		return
	}
	base := fc.value(bi, ii, in.Args[eff.writesPtrArg])
	span := Interval{Lo: 0, Unbounded: true}
	if n := len(eff.lenArgs); n > 0 {
		length := int64(1)
		bounded := true
		for _, la := range eff.lenArgs {
			if la >= len(in.Args) {
				bounded = false
				break
			}
			v := fc.value(bi, ii, in.Args[la])
			if v.k != rng || v.hi < 0 || v.hi > boundClamp || length > 0 && v.hi > 0 && length > boundClamp/v.hi {
				bounded = false
				break
			}
			length *= v.hi
		}
		if bounded {
			if length <= 0 {
				return // zero-length write: no effect
			}
			span = Interval{Lo: 0, Hi: length - 1}
		} else {
			span = Interval{Lo: 0, Unbounded: true}
		}
	} else {
		span = Interval{Lo: 0, Unbounded: true} // strcpy: starts at dst, length unknown
	}
	if base.k == top && fc.regionPtr(in.Args[eff.writesPtrArg]) {
		return // heap/frame-directed destination: the write stays out of globals
	}
	if !st.applySpan(s, base, span) && diags != nil {
		*diags = append(*diags, analysis.Diagnostic{
			ID: analysis.IDCallGraphHole, Sev: analysis.SevWarn, Pass: interprocPass,
			Func: fc.f.Name, Block: bi, Instr: ii, Line: in.Pos,
			Msg: fmt.Sprintf("builtin %s writes through an unresolvable destination; globals degrade to whole-section", in.Callee),
		})
	}
}
