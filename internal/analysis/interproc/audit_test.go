package interproc

import (
	"testing"

	"closurex/internal/analysis"
	"closurex/internal/ir"
)

// auditModule is a module with one freed allocation, one bounded global
// write and one closed file: everything elides, everything audits clean.
func auditModule(t *testing.T) *ir.Module {
	t.Helper()
	b := ir.NewBuilder("target_main", 0)
	gp := b.GlobalAddr(0)
	v := b.Const(3)
	b.Store(gp, v, 0, 4)
	sz := b.Const(8)
	p := b.Call("malloc", sz)
	b.Call("free", p)
	path := b.Const(0)
	mode := b.Const(0)
	f := b.Call("fopen", path, mode)
	b.Call("fclose", f)
	z := b.Const(0)
	b.Ret(z)
	return testModule(t, 2, b)
}

func TestAuditCleanAfterApply(t *testing.T) {
	m := auditModule(t)
	Apply(m, Analyze(m))
	ds := Audit(m)
	if ds.HasErrors() {
		t.Fatalf("clean module audits dirty:\n%s", ds)
	}
}

func TestAuditNoMarksNoMetadataIsClean(t *testing.T) {
	// A module InterprocPass never ran on carries no claims to check.
	m := auditModule(t)
	if ds := Audit(m); ds.HasErrors() {
		t.Fatalf("unanalyzed module audits dirty:\n%s", ds)
	}
}

func TestAuditFlagsUnprovableMark(t *testing.T) {
	// Leaked allocation with a hand-planted TrackElide: the fresh analysis
	// cannot prove the site releasable, so the mark is CLX114.
	b := ir.NewBuilder("target_main", 0)
	sz := b.Const(8)
	b.Call("malloc", sz)
	z := b.Const(0)
	b.Ret(z)
	m := testModule(t, 0, b)
	Apply(m, Analyze(m)) // honest metadata: 1 site, 0 elided

	tm := m.Func("target_main")
	for _, blk := range tm.Blocks {
		for i := range blk.Instrs {
			if blk.Instrs[i].Op == ir.OpCall && blk.Instrs[i].Callee == "malloc" {
				blk.Instrs[i].TrackElide = true
			}
		}
	}
	ds := Audit(m)
	if got := ds.ByID(analysis.IDUnsoundElision); len(got) == 0 || got[0].Sev != analysis.SevError {
		t.Fatalf("planted unsound mark not flagged CLX114:\n%s", ds)
	}
}

func TestAuditFlagsMarkWithoutMetadata(t *testing.T) {
	m := auditModule(t)
	tm := m.Func("target_main")
	for _, blk := range tm.Blocks {
		for i := range blk.Instrs {
			if blk.Instrs[i].Op == ir.OpCall && blk.Instrs[i].Callee == "malloc" {
				blk.Instrs[i].TrackElide = true
			}
		}
	}
	// m.Interproc is nil: the mark has no analysis backing it at all.
	ds := Audit(m)
	if got := ds.ByID(analysis.IDUnsoundElision); len(got) != 1 {
		t.Fatalf("mark without metadata not flagged CLX114:\n%s", ds)
	}
}

func TestAuditFlagsNarrowedMayWriteSet(t *testing.T) {
	// Drop the recorded may-write global: the analysis still proves the
	// write, so the metadata is narrower than reality (CLX117).
	m := auditModule(t)
	Apply(m, Analyze(m))
	m.Interproc.MayWriteGlobals = nil
	ds := Audit(m)
	if got := ds.ByID(analysis.IDElisionDrift); len(got) == 0 || got[0].Sev != analysis.SevError {
		t.Fatalf("narrowed may-write set not flagged CLX117:\n%s", ds)
	}
}

func TestAuditFlagsFalseBoundedClaim(t *testing.T) {
	// The module's writes cannot be bounded (unknown callee), but the
	// metadata claims they were: CLX117.
	b := ir.NewBuilder("target_main", 0)
	z := b.Const(0)
	b.Call("mystery", z)
	b.Ret(z)
	m := testModule(t, 1, b)
	m.Interproc = &ir.InterprocInfo{WholeSection: false}
	ds := Audit(m)
	if got := ds.ByID(analysis.IDElisionDrift); len(got) == 0 {
		t.Fatalf("false bounded claim not flagged CLX117:\n%s", ds)
	}
}

func TestAuditFlagsDriftedSiteCounters(t *testing.T) {
	m := auditModule(t)
	Apply(m, Analyze(m))
	m.Interproc.AllocSites++ // pretend a site the module does not have
	ds := Audit(m)
	if got := ds.ByID(analysis.IDElisionDrift); len(got) == 0 {
		t.Fatalf("drifted site counters not flagged CLX117:\n%s", ds)
	}
}

func TestReportModuleShape(t *testing.T) {
	m := auditModule(t)
	rep := ReportModule(m)
	if rep.WholeSection {
		t.Fatal("report claims whole-section for a bounded module")
	}
	if rep.MayWriteGlobals != 1 || rep.TotalGlobals != 2 {
		t.Fatalf("scope = %d/%d, want 1/2", rep.MayWriteGlobals, rep.TotalGlobals)
	}
	if len(rep.Funcs) != 1 || rep.Funcs[0].Name != "target_main" {
		t.Fatalf("rows = %+v", rep.Funcs)
	}
	row := rep.Funcs[0]
	if row.HeapSites != 1 || row.HeapElided != 1 || row.FileSites != 1 || row.FileElided != 1 {
		t.Fatalf("row = %+v", row)
	}
	if out := rep.Format(); out == "" {
		t.Fatal("empty report rendering")
	}
}
