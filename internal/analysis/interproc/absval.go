package interproc

import (
	"closurex/internal/analysis"
	"closurex/internal/ir"
)

// The per-function abstract domain, a superset of the sanitizer's
// check-elision domain (internal/analysis/sanitize) with one extra region
// kind for parameters, so write effects through pointer parameters can be
// summarized at the callee and re-instantiated at each call site:
//
//	rng        a value interval [lo,hi]
//	frameOff   frame base plus an offset interval
//	globalOff  address of global g plus an offset interval
//	heapOff    an allocator-returned pointer plus an offset interval
//	paramOff   parameter p's incoming value plus an offset interval
//	top        anything else
//
// Soundness of the "cannot write globals" conclusions rests on the VM
// address-space layout (vm/layout.go): the globals segment lies strictly
// below the heap and stack segments, and offsets are clamped to 2^40, far
// from wraparound. A frame- or heap-based address whose offset interval
// is provably non-negative therefore points at or above its segment base
// and can never alias a global byte.

// boundClamp keeps interval arithmetic far from int64 overflow; bounds
// beyond it collapse to top.
const boundClamp = int64(1) << 40

type kind uint8

const (
	top kind = iota
	rng
	frameOff
	globalOff
	heapOff
	paramOff
)

type absVal struct {
	k      kind
	lo, hi int64 // value bounds (rng) or offset bounds (regions)
	g      int   // global index (globalOff)
	p      int   // parameter index (paramOff)
}

var topVal = absVal{k: top}

func rangeVal(lo, hi int64) absVal {
	if lo < -boundClamp || hi > boundClamp || lo > hi {
		return topVal
	}
	return absVal{k: rng, lo: lo, hi: hi}
}

func isRegion(k kind) bool {
	return k == frameOff || k == globalOff || k == heapOff || k == paramOff
}

// funcCtx caches the per-function machinery (CFG, reaching definitions,
// abstract-value memoization, pointer must-alias chasing) shared by the
// mod/ref and lifetime analyses. The memoized values depend only on the
// function body, never on callee summaries, so one context is valid for
// the lifetime of the analysis.
type funcCtx struct {
	m   *ir.Module
	f   *ir.Func
	cfg *analysis.CFG
	rd  *analysis.ReachingDefs
	idx map[[2]int]int // (block,instr) -> def-site index

	memo   map[int]absVal
	inProg map[int]bool

	ptrMemo   map[int]int
	ptrInProg map[int]bool

	// rets resolves callee return-value intervals (shared across the
	// module's contexts); cls caches the lazily-computed region classes.
	rets *retOracle
	cls  []rclass
}

func newFuncCtx(m *ir.Module, f *ir.Func) *funcCtx {
	cfg := analysis.BuildCFG(f)
	rd := analysis.ComputeReachingDefs(cfg)
	idx := make(map[[2]int]int, len(rd.Sites))
	for i, s := range rd.Sites {
		if s.Block >= 0 {
			idx[[2]int{s.Block, s.Instr}] = i
		}
	}
	return &funcCtx{
		m: m, f: f, cfg: cfg, rd: rd, idx: idx,
		memo:      make(map[int]absVal),
		inProg:    make(map[int]bool),
		ptrMemo:   make(map[int]int),
		ptrInProg: make(map[int]bool),
	}
}

// value computes the abstract value of register r as read by the
// instruction at (bi, ii): the value of r's unique reaching definition, or
// top when several definitions (loop-carried values, merges) may reach.
func (fc *funcCtx) value(bi, ii, r int) absVal {
	site := fc.useSite(bi, ii, r)
	if site < 0 {
		return topVal
	}
	return fc.evalSite(site)
}

// useSite resolves the unique definition site feeding register r at
// (bi, ii), or -1 when zero or several definitions may reach.
func (fc *funcCtx) useSite(bi, ii, r int) int {
	// A def of r earlier in the same block shadows everything inbound.
	for j := ii - 1; j >= 0; j-- {
		if analysis.InstrDef(&fc.f.Blocks[bi].Instrs[j]) == r {
			return fc.idx[[2]int{bi, j}]
		}
	}
	site := -1
	for i := range fc.rd.Sites {
		if fc.rd.Sites[i].Reg == r && fc.rd.In[bi].Has(i) {
			if site >= 0 {
				return -1
			}
			site = i
		}
	}
	return site
}

// evalSite computes the abstract value produced by one definition site,
// memoized; a cycle (loop-carried dependence) resolves to top.
func (fc *funcCtx) evalSite(site int) absVal {
	if v, ok := fc.memo[site]; ok {
		return v
	}
	if fc.inProg[site] {
		return topVal
	}
	fc.inProg[site] = true
	v := fc.evalSiteUncached(site)
	delete(fc.inProg, site)
	fc.memo[site] = v
	return v
}

func (fc *funcCtx) evalSiteUncached(site int) absVal {
	s := fc.rd.Sites[site]
	if s.Block < 0 {
		return absVal{k: paramOff, p: s.Reg}
	}
	in := &fc.f.Blocks[s.Block].Instrs[s.Instr]
	switch in.Op {
	case ir.OpConst:
		return rangeVal(in.Imm, in.Imm)
	case ir.OpMov:
		return fc.value(s.Block, s.Instr, in.A)
	case ir.OpFrameAddr:
		return absVal{k: frameOff, lo: in.Imm, hi: in.Imm}
	case ir.OpGlobalAddr:
		if in.Imm < 0 || in.Imm >= int64(len(fc.m.Globals)) {
			return topVal
		}
		return absVal{k: globalOff, g: int(in.Imm)}
	case ir.OpLoad:
		// Loads zero-extend (ir.OpLoad contract): a narrow load is bounded
		// by its width no matter what memory holds.
		if in.Size >= 1 && in.Size <= 4 {
			return rangeVal(0, int64(1)<<(8*in.Size)-1)
		}
		return topVal
	case ir.OpBin:
		l := fc.value(s.Block, s.Instr, in.A)
		r := fc.value(s.Block, s.Instr, in.B)
		return evalBin(in.Bin, l, r)
	case ir.OpUn:
		if in.Un == ir.Not {
			return rangeVal(0, 1)
		}
		if in.Un == ir.Neg {
			if v := fc.value(s.Block, s.Instr, in.A); v.k == rng {
				return rangeVal(-v.hi, -v.lo)
			}
		}
		return topVal
	case ir.OpCall:
		switch in.Callee {
		case "malloc", "closurex_malloc", "calloc", "closurex_calloc",
			"realloc", "closurex_realloc":
			// An allocator result points into the heap segment (or is
			// NULL; a store through NULL faults before touching memory).
			return absVal{k: heapOff}
		}
		if fc.rets != nil && fc.m.Func(in.Callee) != nil {
			return fc.rets.retOf(in.Callee)
		}
		return topVal
	}
	return topVal
}

// evalBin implements interval arithmetic with region offsets.
func evalBin(op ir.BinOp, l, r absVal) absVal {
	region := func(base absVal, off absVal, neg bool) absVal {
		if off.k != rng {
			return topVal
		}
		lo, hi := off.lo, off.hi
		if neg {
			lo, hi = -off.hi, -off.lo
		}
		out := base
		out.lo += lo
		out.hi += hi
		if out.lo < -boundClamp || out.hi > boundClamp {
			return topVal
		}
		return out
	}
	switch op {
	case ir.Add:
		switch {
		case l.k == rng && r.k == rng:
			return rangeVal(l.lo+r.lo, l.hi+r.hi)
		case isRegion(l.k) && r.k == rng:
			return region(l, r, false)
		case isRegion(r.k) && l.k == rng:
			return region(r, l, false)
		}
	case ir.Sub:
		switch {
		case l.k == rng && r.k == rng:
			return rangeVal(l.lo-r.hi, l.hi-r.lo)
		case isRegion(l.k) && r.k == rng:
			return region(l, r, true)
		}
	case ir.Mul:
		if l.k == rng && r.k == rng {
			if abs64(l.lo) > boundClamp || abs64(l.hi) > boundClamp ||
				abs64(r.lo) > boundClamp || abs64(r.hi) > boundClamp {
				return topVal
			}
			c := []int64{l.lo * r.lo, l.lo * r.hi, l.hi * r.lo, l.hi * r.hi}
			lo, hi := c[0], c[0]
			for _, v := range c[1:] {
				if v < lo {
					lo = v
				}
				if v > hi {
					hi = v
				}
			}
			return rangeVal(lo, hi)
		}
	case ir.Shl:
		if l.k == rng && r.k == rng && r.lo == r.hi && r.lo >= 0 && r.lo < 32 {
			return evalBin(ir.Mul, l, rangeVal(1<<r.lo, 1<<r.lo))
		}
	case ir.And:
		// x & mask with a non-negative constant mask lands in [0, mask].
		if r.k == rng && r.lo == r.hi && r.lo >= 0 {
			return rangeVal(0, r.lo)
		}
		if l.k == rng && l.lo == l.hi && l.lo >= 0 {
			return rangeVal(0, l.lo)
		}
	case ir.Or, ir.Xor:
		// For non-negative a, b: a|b and a^b are both bounded by a+b
		// (bitwise combination never carries) and never negative.
		if l.k == rng && r.k == rng && l.lo >= 0 && r.lo >= 0 {
			return rangeVal(0, l.hi+r.hi)
		}
	case ir.Shr:
		// Arithmetic shift of a non-negative value by a constant amount.
		if l.k == rng && r.k == rng && r.lo == r.hi && r.lo >= 0 && r.lo < 64 && l.lo >= 0 {
			return rangeVal(l.lo>>r.lo, l.hi>>r.lo)
		}
	case ir.Rem:
		if l.k == rng && r.k == rng && r.lo == r.hi && r.lo > 0 && l.lo >= 0 {
			return rangeVal(0, r.lo-1)
		}
	case ir.Eq, ir.Ne, ir.Lt, ir.Le, ir.Gt, ir.Ge, ir.Ult, ir.Ule, ir.Ugt, ir.Uge:
		return rangeVal(0, 1)
	}
	return topVal
}

func abs64(v int64) int64 {
	if v < 0 {
		return -v
	}
	return v
}

// chasePtr resolves a definition site through OpMov chains to the site
// that originally produced the value — the must-alias resolution the
// lifetime analysis uses to recognize that a free/fclose argument is
// exactly a given allocation's result. Anything other than a pure mov
// chain (arithmetic, merges) stops the chase at the defining site itself.
func (fc *funcCtx) chasePtr(site int) int {
	if site < 0 {
		return -1
	}
	if v, ok := fc.ptrMemo[site]; ok {
		return v
	}
	if fc.ptrInProg[site] {
		return -1 // loop-carried mov cycle: no unique origin
	}
	fc.ptrInProg[site] = true
	out := site
	s := fc.rd.Sites[site]
	if s.Block >= 0 {
		in := &fc.f.Blocks[s.Block].Instrs[s.Instr]
		if in.Op == ir.OpMov {
			out = fc.chasePtr(fc.useSite(s.Block, s.Instr, in.A))
		}
	}
	delete(fc.ptrInProg, site)
	fc.ptrMemo[site] = out
	return out
}

// resolvePtr resolves register r, as read at (bi, ii), to the definition
// site it must alias (through mov chains), or -1.
func (fc *funcCtx) resolvePtr(bi, ii, r int) int {
	return fc.chasePtr(fc.useSite(bi, ii, r))
}
