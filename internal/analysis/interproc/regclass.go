package interproc

import (
	"closurex/internal/analysis"
	"closurex/internal/ir"
)

// This file holds the two precision layers under the mod/ref analysis that
// make loop-carried pointer arithmetic tractable:
//
//   - retOracle: per-function return-value intervals, resolved bottom-up
//     over the call graph, so `len = rd_le16(p)` is [0, 65535] instead of
//     top at every caller;
//   - region classes: a flow-insensitive per-register classification that
//     proves a store address is "heap (frame) base plus a non-negative,
//     wraparound-free offset" even when the offset is a loop-carried
//     accumulator the interval analysis must widen away.
//
// Soundness of the region classes rests on a counting argument against
// int64 wraparound, since a wrapped heap address could land back inside
// the globals segment. With the execution budget capped at
// ir.InterprocBudgetCap (2^26) instructions — the harness refuses to arm
// elision above it — the invariants are:
//
//	small  value in [0, hi], hi <= 2^32
//	nn     value is a sum of at most n "chains", each a seed <= 2^40
//	       plus per-dynamic-instruction small addends: every chain is a
//	       path through distinct dynamic instructions, so it holds at
//	       most budget <= 2^26 addends of <= 2^32 each, bounding a chain
//	       by 2^40 + 2^58 < 2^59 and an n-chain value by n*2^59
//	heap   heap segment base plus an nn-style offset
//	frame  frame base plus an nn-style offset
//
// With n capped at rcChainCap (8), every nn value stays below 2^62 and
// every heap/frame address below base + 2^62 < 2^63: no intermediate sum
// wraps, the address never re-enters the globals segment, and a
// non-negative store offset extends away from it. Adding two nn values
// sums their chain counts (which is what defeats the doubling attack
// `x += x`: the count climbs to the cap and collapses to top), while
// adding a small absorbs it into an existing chain for free.

type rkind uint8

const (
	rcBottom rkind = iota // no defining instruction seen yet
	rcSmall               // value in [0, hi]
	rcNN                  // non-negative, n accumulator chains
	rcHeap                // heap base + non-negative offset, n chains
	rcFrame               // frame base + non-negative offset, n chains
	rcTop
)

type rclass struct {
	k  rkind
	hi int64 // rcSmall: inclusive value bound
	n  int   // rcNN/rcHeap/rcFrame: accumulator chain count
}

const (
	rcSmallCap   = int64(1) << 32
	rcSeedCap    = int64(1) << 40
	rcChainCap   = 8
	rcWidenLimit = 4 // Small-bound growths before widening to nn
)

var (
	rcBot = rclass{k: rcBottom}
	rcT   = rclass{k: rcTop}
)

// isNN reports whether c is provably non-negative and chain-bounded (a
// valid addend for region offsets).
func (c rclass) isNN() bool { return c.k == rcSmall || c.k == rcNN }

// isRegionPtr reports whether c is a heap- or frame-directed address.
func (c rclass) isRegionPtr() bool { return c.k == rcHeap || c.k == rcFrame }

// chains is the chain count c contributes when added into a region
// offset; smalls are absorbed into an existing chain.
func (c rclass) chains() int {
	if c.k == rcSmall {
		return 0
	}
	return c.n
}

func rcJoin(a, b rclass) rclass {
	if a.k == rcBottom {
		return b
	}
	if b.k == rcBottom {
		return a
	}
	if a.k == rcTop || b.k == rcTop {
		return rcT
	}
	if a.k == b.k {
		if b.hi > a.hi {
			a.hi = b.hi
		}
		if b.n > a.n {
			a.n = b.n
		}
		return a
	}
	if a.k == rcSmall && b.k == rcNN {
		return b
	}
	if b.k == rcSmall && a.k == rcNN {
		return a
	}
	return rcT
}

// rcBin is the binary-operator transfer over region classes.
func rcBin(op ir.BinOp, a, b rclass) rclass {
	if a.k == rcBottom || b.k == rcBottom {
		return rcBot
	}
	// addNN folds two non-negative operands: small+small keeps the exact
	// bound; anything larger sums chain counts.
	addNN := func(a, b rclass) rclass {
		if a.k == rcSmall && b.k == rcSmall {
			if s := a.hi + b.hi; s <= rcSmallCap {
				return rclass{k: rcSmall, hi: s}
			}
			return rclass{k: rcNN, n: 1} // sum <= 2^33: one fresh seed
		}
		if n := a.chains() + b.chains(); n <= rcChainCap {
			return rclass{k: rcNN, n: n}
		}
		return rcT
	}
	switch op {
	case ir.Add:
		switch {
		case a.isNN() && b.isNN():
			return addNN(a, b)
		case a.isRegionPtr() && b.isNN():
			if n := a.n + b.chains(); n <= rcChainCap {
				a.n = n
				return a
			}
		case b.isRegionPtr() && a.isNN():
			if n := b.n + a.chains(); n <= rcChainCap {
				b.n = n
				return b
			}
		}
	case ir.Mul:
		if a.k == rcSmall && b.k == rcSmall {
			switch {
			case a.hi == 0 || b.hi == 0:
				return rclass{k: rcSmall}
			case a.hi <= rcSmallCap/b.hi:
				return rclass{k: rcSmall, hi: a.hi * b.hi}
			case a.hi <= rcSeedCap/b.hi:
				return rclass{k: rcNN, n: 1}
			}
		}
	case ir.Shl:
		if a.k == rcSmall && b.k == rcSmall && b.hi <= 40 {
			switch {
			case a.hi <= rcSmallCap>>b.hi:
				return rclass{k: rcSmall, hi: a.hi << b.hi}
			case a.hi <= rcSeedCap>>b.hi:
				return rclass{k: rcNN, n: 1}
			}
		}
	case ir.And:
		// For b in [0, hi]: a & b lands in [0, hi] whatever a is (the
		// sign bit of the result is clear because b's is).
		switch {
		case a.k == rcSmall && b.k == rcSmall:
			if b.hi < a.hi {
				a.hi = b.hi
			}
			return a
		case a.k == rcSmall:
			return a
		case b.k == rcSmall:
			return b
		case a.k == rcNN:
			return a
		case b.k == rcNN:
			return b
		}
	case ir.Or, ir.Xor:
		// For non-negative a, b both a|b and a^b are bounded by a+b.
		if a.isNN() && b.isNN() {
			return addNN(a, b)
		}
	case ir.Shr, ir.Div:
		// Non-negative >> or / non-negative shrinks toward zero.
		if a.isNN() && b.isNN() {
			return a
		}
	case ir.Rem:
		if a.isNN() && b.isNN() {
			if b.k == rcSmall && b.hi > 0 {
				return rclass{k: rcSmall, hi: b.hi - 1}
			}
			return a
		}
	case ir.Eq, ir.Ne, ir.Lt, ir.Le, ir.Gt, ir.Ge, ir.Ult, ir.Ule, ir.Ugt, ir.Uge:
		return rclass{k: rcSmall, hi: 1}
	}
	return rcT
}

// computeClasses runs the Kleene fixpoint over one function. Parameters
// start at top (unknown sign); every other register climbs the finite
// lattice, with Small bounds widened to nn after rcWidenLimit growths.
func computeClasses(fc *funcCtx) []rclass {
	f := fc.f
	cls := make([]rclass, f.NumRegs)
	grow := make([]int, f.NumRegs)
	for p := 0; p < f.NumParams && p < len(cls); p++ {
		cls[p] = rcT
	}
	get := func(r int) rclass {
		if r < 0 || r >= len(cls) {
			return rcT
		}
		return cls[r]
	}
	transfer := func(in *ir.Instr) rclass {
		switch in.Op {
		case ir.OpConst:
			switch {
			case in.Imm >= 0 && in.Imm <= rcSmallCap:
				return rclass{k: rcSmall, hi: in.Imm}
			case in.Imm >= 0 && in.Imm <= rcSeedCap:
				return rclass{k: rcNN, n: 1}
			}
		case ir.OpLoad:
			if in.Size >= 1 && in.Size <= 4 {
				return rclass{k: rcSmall, hi: int64(1)<<(8*in.Size) - 1}
			}
		case ir.OpMov:
			return get(in.A)
		case ir.OpFrameAddr:
			if in.Imm >= 0 && in.Imm <= rcSeedCap {
				return rclass{k: rcFrame}
			}
		case ir.OpUn:
			if in.Un == ir.Not {
				return rclass{k: rcSmall, hi: 1}
			}
		case ir.OpBin:
			return rcBin(in.Bin, get(in.A), get(in.B))
		case ir.OpCall:
			if allocCallees[in.Callee] || reallocCallees[in.Callee] {
				return rclass{k: rcHeap}
			}
			if fc.rets != nil {
				if v := fc.rets.retOf(in.Callee); v.k == rng && v.lo >= 0 {
					if v.hi <= rcSmallCap {
						return rclass{k: rcSmall, hi: v.hi}
					}
					return rclass{k: rcNN, n: 1} // ret bounds clamp at 2^40
				}
			}
		}
		return rcT
	}
	for changed := true; changed; {
		changed = false
		for _, b := range f.Blocks {
			for ii := range b.Instrs {
				in := &b.Instrs[ii]
				d := analysis.InstrDef(in)
				if d < 0 || d >= len(cls) {
					continue
				}
				j := rcJoin(cls[d], transfer(in))
				if j == cls[d] {
					continue
				}
				if j.k == rcSmall && cls[d].k == rcSmall && j.hi > cls[d].hi {
					grow[d]++
					if grow[d] > rcWidenLimit {
						j = rclass{k: rcNN, n: 1}
					}
				}
				cls[d] = j
				changed = true
			}
		}
	}
	return cls
}

// regionPtr reports whether register r is classified as a heap- or
// frame-directed address: segment base plus a provably non-negative,
// wraparound-free offset. The mod/ref analysis uses it as the fallback
// when the flow-sensitive interval analysis tops out on a loop-carried
// store address.
func (fc *funcCtx) regionPtr(r int) bool {
	if fc.cls == nil {
		fc.cls = computeClasses(fc)
	}
	if r < 0 || r >= len(fc.cls) {
		return false
	}
	return fc.cls[r].isRegionPtr()
}

// --- return-value oracle ---

// retOracle resolves per-function return-value intervals on demand,
// memoized, recursing bottom-up through the call graph; members of a
// recursive cycle resolve to top. Analyze forces every function in sorted
// name order so the memo contents (and therefore every downstream
// diagnostic) are deterministic.
type retOracle struct {
	ctxs   map[string]*funcCtx
	memo   map[string]absVal
	inProg map[string]bool
}

func newRetOracle(ctxs map[string]*funcCtx) *retOracle {
	return &retOracle{
		ctxs:   ctxs,
		memo:   make(map[string]absVal, len(ctxs)),
		inProg: make(map[string]bool),
	}
}

// retOf returns the interval of fn's return value, or top for unknown
// callees, void/value-less returns, recursion, and unbounded results.
func (o *retOracle) retOf(fn string) absVal {
	if v, ok := o.memo[fn]; ok {
		return v
	}
	fc := o.ctxs[fn]
	if fc == nil || o.inProg[fn] {
		return topVal
	}
	o.inProg[fn] = true
	v, seen := topVal, false
	for bi, b := range fc.f.Blocks {
		for ii := range b.Instrs {
			in := &b.Instrs[ii]
			if in.Op != ir.OpRet {
				continue
			}
			rv := topVal
			if in.A >= 0 {
				if e := fc.value(bi, ii, in.A); e.k == rng {
					rv = e
				}
			}
			switch {
			case !seen:
				v, seen = rv, true
			case v.k != rng || rv.k != rng:
				v = topVal
			default:
				v = rangeVal(min64(v.lo, rv.lo), max64(v.hi, rv.hi))
			}
		}
	}
	delete(o.inProg, fn)
	o.memo[fn] = v
	return v
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
