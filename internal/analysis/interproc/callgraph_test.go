package interproc

import (
	"fmt"
	"reflect"
	"testing"

	"closurex/internal/analysis"
	"closurex/internal/ir"
)

// testModule assembles finished builders into a module with nGlobals
// 64-byte closure-section globals, so globalOff proofs have regions to
// land in and MayWriteGlobals has indices to report.
func testModule(t *testing.T, nGlobals int, bs ...*ir.Builder) *ir.Module {
	t.Helper()
	m := ir.NewModule("t")
	for i := 0; i < nGlobals; i++ {
		m.AddGlobal(&ir.Global{Name: fmt.Sprintf("g%d", i), Size: 64, Section: ir.SectionClosure})
	}
	for _, b := range bs {
		f, err := b.Finish()
		if err != nil {
			t.Fatalf("Finish: %v", err)
		}
		if err := m.AddFunc(f); err != nil {
			t.Fatal(err)
		}
	}
	return m
}

func retConst(name string, v int64) *ir.Builder {
	b := ir.NewBuilder(name, 0)
	c := b.Const(v)
	b.Ret(c)
	return b
}

// mutualRecursionModule is target_main -> even <-> odd, plus a directly
// self-recursive loop() and an orphan() nothing calls.
func mutualRecursionModule(t *testing.T) *ir.Module {
	t.Helper()
	bm := ir.NewBuilder("target_main", 0)
	n := bm.Const(5)
	r := bm.Call("even", n)
	bm.Ret(r)

	parity := func(name, other string) *ir.Builder {
		b := ir.NewBuilder(name, 1)
		z := b.Const(0)
		c := b.Bin(ir.Eq, 0, z)
		then := b.NewBlock()
		els := b.NewBlock()
		b.CondBr(c, then, els)
		b.SetBlock(then)
		one := b.Const(1)
		b.Ret(one)
		b.SetBlock(els)
		dec := b.Const(1)
		nm1 := b.Bin(ir.Sub, 0, dec)
		r := b.Call(other, nm1)
		b.Ret(r)
		return b
	}

	bl := ir.NewBuilder("loop", 1)
	r2 := bl.Call("loop", 0)
	bl.Ret(r2)

	return testModule(t, 0, bm, parity("even", "odd"), parity("odd", "even"), bl, retConst("orphan", 0))
}

func TestCallGraphMutualRecursion(t *testing.T) {
	m := mutualRecursionModule(t)
	cg := BuildCallGraph(m)

	if got := cg.Callees["even"]; !reflect.DeepEqual(got, []string{"odd"}) {
		t.Fatalf("Callees[even] = %v", got)
	}
	if got := cg.Callers["even"]; !reflect.DeepEqual(got, []string{"odd", "target_main"}) {
		t.Fatalf("Callers[even] = %v, want sorted [odd target_main]", got)
	}
	if cg.SelfRecursive("even") || !cg.SelfRecursive("loop") {
		t.Fatalf("SelfRecursive: even=%v loop=%v", cg.SelfRecursive("even"), cg.SelfRecursive("loop"))
	}

	// The mutual-recursion pair is one SCC; every other function is a
	// singleton. Components arrive sorted by smallest member.
	want := [][]string{{"even", "odd"}, {"loop"}, {"orphan"}, {"target_main"}}
	if got := cg.SCCs(); !reflect.DeepEqual(got, want) {
		t.Fatalf("SCCs = %v, want %v", got, want)
	}

	reach := cg.Reachable("target_main")
	for _, fn := range []string{"target_main", "even", "odd"} {
		if !reach[fn] {
			t.Errorf("%s not reachable from target_main", fn)
		}
	}
	for _, fn := range []string{"loop", "orphan"} {
		if reach[fn] {
			t.Errorf("%s wrongly reachable from target_main", fn)
		}
	}
}

func TestAnalyzeMutualRecursionConverges(t *testing.T) {
	m := mutualRecursionModule(t)
	res := Analyze(m)
	// Nothing writes memory: the fixpoint over the even/odd cycle must
	// still converge to a bounded (empty) may-write set.
	if res.WholeSection {
		t.Fatal("pure mutual recursion degraded to whole-section")
	}
	if len(res.MayWriteGlobals) != 0 {
		t.Fatalf("MayWriteGlobals = %v, want empty", res.MayWriteGlobals)
	}
	// The unreachable functions are called out (CLX118), once each.
	unreach := res.Diags.ByID(analysis.IDUnreachableFn)
	if len(unreach) != 2 {
		t.Fatalf("CLX118 count = %d, want 2 (loop, orphan):\n%s", len(unreach), res.Diags)
	}
	if res.Funcs["orphan"].Reachable || res.Funcs["loop"].Reachable {
		t.Fatal("unreachable functions marked reachable")
	}
}

func TestCallGraphUnknownCallee(t *testing.T) {
	bm := ir.NewBuilder("target_main", 0)
	z := bm.Const(0)
	r := bm.Call("mystery", z)
	bm.Ret(r)
	m := testModule(t, 1, bm)

	cg := BuildCallGraph(m)
	sites := cg.Unknown["target_main"]
	if len(sites) != 1 || sites[0].Callee != "mystery" {
		t.Fatalf("Unknown sites = %+v", sites)
	}

	res := Analyze(m)
	if !res.WholeSection {
		t.Fatal("call-graph hole did not degrade to whole-section")
	}
	if holes := res.Diags.ByID(analysis.IDCallGraphHole); len(holes) != 1 {
		t.Fatalf("CLX115 count = %d:\n%s", len(holes), res.Diags)
	}
}

func TestAnalyzeNoRootsWholeSection(t *testing.T) {
	// No target_main, main, or closurex_init: there is nothing to scope a
	// restore to, so the analysis must refuse to bound the write set.
	m := testModule(t, 1, retConst("helper", 0))
	res := Analyze(m)
	if !res.WholeSection {
		t.Fatal("rootless module not treated as whole-section")
	}
	if len(res.Roots) != 0 {
		t.Fatalf("Roots = %v, want none", res.Roots)
	}
}
