package interproc

import (
	"fmt"

	"closurex/internal/analysis"
	"closurex/internal/ir"
)

// Audit re-derives the interprocedural analysis from scratch and checks
// every elision claim the module carries against it:
//
//   - CLX114 (error): a TrackElide/FileElide mark on a site the fresh
//     analysis cannot prove releasable (or on a non-site instruction) —
//     an unsound elision claim that would let state leak across
//     iterations while the harness believes it cannot.
//   - CLX117 (error): the recorded ir.InterprocInfo is narrower than the
//     fresh analysis — a may-written global missing from the metadata, a
//     bounded claim where the analysis says whole-section, or drifted
//     site counters.
//
// The re-analysis runs on the module as it now stands, so instrumentation
// inserted after InterprocPass (coverage probes, sanitizer checks — which
// define no registers and write no target memory) cannot invalidate the
// comparison. A module without marks and without metadata audits clean.
// The result's explanation warnings (CLX115/116/118) are included so
// closurex-lint surfaces them alongside the audit verdict.
func Audit(m *ir.Module) analysis.Diagnostics {
	marks := collectMarks(m)
	if m.Interproc == nil {
		var ds analysis.Diagnostics
		for _, mk := range marks {
			ds = append(ds, analysis.Diagnostic{
				ID: analysis.IDUnsoundElision, Sev: analysis.SevError, Pass: interprocPass,
				Func: mk.fn, Block: mk.site.Block, Instr: mk.site.Instr, Line: mk.line,
				Msg: fmt.Sprintf("%s mark without module Interproc metadata; no analysis backs the claim", mk.kind),
			})
		}
		ds.Sort()
		return ds
	}

	res := Analyze(m)
	ds := append(analysis.Diagnostics(nil), res.Diags...)

	for _, mk := range marks {
		fr := res.Funcs[mk.fn]
		proven := false
		if fr != nil {
			if mk.kind == "TrackElide" {
				proven = fr.HeapElide[mk.site]
			} else {
				proven = fr.FileElide[mk.site]
			}
		}
		if !proven {
			ds = append(ds, analysis.Diagnostic{
				ID: analysis.IDUnsoundElision, Sev: analysis.SevError, Pass: interprocPass,
				Func: mk.fn, Block: mk.site.Block, Instr: mk.site.Instr, Line: mk.line,
				Msg: fmt.Sprintf("%s mark on %s is not provable: the site may leak its resource past iteration end", mk.kind, mk.callee),
			})
		}
	}

	info := m.Interproc
	if res.WholeSection && !info.WholeSection {
		ds = append(ds, analysis.Diagnostic{
			ID: analysis.IDElisionDrift, Sev: analysis.SevError, Pass: interprocPass,
			Block: -1, Instr: -1,
			Msg: "metadata claims a bounded may-write set but the analysis cannot bound global writes (whole-section)",
		})
	}
	if !info.WholeSection {
		recorded := map[int]bool{}
		for _, g := range info.MayWriteGlobals {
			recorded[g] = true
		}
		for _, g := range res.MayWriteGlobals {
			if !recorded[g] {
				name := fmt.Sprintf("%d", g)
				if g >= 0 && g < len(m.Globals) {
					name = fmt.Sprintf("%d (%s)", g, m.Globals[g].Name)
				}
				ds = append(ds, analysis.Diagnostic{
					ID: analysis.IDElisionDrift, Sev: analysis.SevError, Pass: interprocPass,
					Block: -1, Instr: -1,
					Msg: fmt.Sprintf("global %s is analysis-proven may-written but missing from the recorded restore scope", name),
				})
			}
		}
	}
	fresh := res.Info()
	if fresh.AllocSites != info.AllocSites || fresh.FileSites != info.FileSites ||
		fresh.AllocElided < info.AllocElided || fresh.FileElided < info.FileElided {
		ds = append(ds, analysis.Diagnostic{
			ID: analysis.IDElisionDrift, Sev: analysis.SevError, Pass: interprocPass,
			Block: -1, Instr: -1,
			Msg: fmt.Sprintf("site counters drifted: recorded alloc %d/%d file %d/%d, analysis %d/%d %d/%d",
				info.AllocElided, info.AllocSites, info.FileElided, info.FileSites,
				fresh.AllocElided, fresh.AllocSites, fresh.FileElided, fresh.FileSites),
		})
	}
	ds.Sort()
	return ds
}

type mark struct {
	fn     string
	site   Site
	kind   string
	callee string
	line   int32
}

func collectMarks(m *ir.Module) []mark {
	var out []mark
	for _, f := range m.Funcs {
		for bi, b := range f.Blocks {
			for ii := range b.Instrs {
				in := &b.Instrs[ii]
				if in.TrackElide {
					out = append(out, mark{f.Name, Site{bi, ii}, "TrackElide", in.Callee, in.Pos})
				}
				if in.FileElide {
					out = append(out, mark{f.Name, Site{bi, ii}, "FileElide", in.Callee, in.Pos})
				}
			}
		}
	}
	return out
}
