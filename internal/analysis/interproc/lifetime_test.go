package interproc

import (
	"testing"

	"closurex/internal/ir"
)

// heapElides / fileElides run the full analysis and report (sites, elided)
// for target_main.
func heapElides(t *testing.T, m *ir.Module) (int, int) {
	t.Helper()
	fr := Analyze(m).Funcs["target_main"]
	if fr == nil {
		t.Fatal("no target_main result")
	}
	return len(fr.HeapSites), len(fr.HeapElide)
}

func fileElides(t *testing.T, m *ir.Module) (int, int) {
	t.Helper()
	fr := Analyze(m).Funcs["target_main"]
	if fr == nil {
		t.Fatal("no target_main result")
	}
	return len(fr.FileSites), len(fr.FileElide)
}

func TestLifetimeFreedOnStraightLine(t *testing.T) {
	b := ir.NewBuilder("target_main", 0)
	sz := b.Const(8)
	p := b.Call("malloc", sz)
	b.Call("free", p)
	z := b.Const(0)
	b.Ret(z)
	m := testModule(t, 0, b)
	if sites, elided := heapElides(t, m); sites != 1 || elided != 1 {
		t.Fatalf("sites=%d elided=%d, want 1/1", sites, elided)
	}
}

func TestLifetimeLeakOnReturn(t *testing.T) {
	b := ir.NewBuilder("target_main", 0)
	sz := b.Const(8)
	b.Call("malloc", sz)
	z := b.Const(0)
	b.Ret(z)
	m := testModule(t, 0, b)
	if sites, elided := heapElides(t, m); sites != 1 || elided != 0 {
		t.Fatalf("sites=%d elided=%d, want 1/0 (leaks on return)", sites, elided)
	}
}

func TestLifetimeNullTestEdgePruned(t *testing.T) {
	// if (!p) return; — the NULL edge carries no chunk, so only the
	// non-NULL path needs the free.
	b := ir.NewBuilder("target_main", 0)
	sz := b.Const(8)
	p := b.Call("malloc", sz)
	c := b.Un(ir.Not, p)
	bail := b.NewBlock()
	ok := b.NewBlock()
	b.CondBr(c, bail, ok)
	b.SetBlock(bail)
	one := b.Const(1)
	b.Ret(one)
	b.SetBlock(ok)
	b.Call("free", p)
	z := b.Const(0)
	b.Ret(z)
	m := testModule(t, 0, b)
	if sites, elided := heapElides(t, m); sites != 1 || elided != 1 {
		t.Fatalf("sites=%d elided=%d, want 1/1 (NULL edge vacuous)", sites, elided)
	}
}

func TestLifetimeAbortPathIsClean(t *testing.T) {
	// One arm aborts (VM respawns, chunk map rebuilt), the other frees:
	// both paths are clean.
	b := ir.NewBuilder("target_main", 1)
	sz := b.Const(8)
	p := b.Call("malloc", sz)
	z := b.Const(0)
	c := b.Bin(ir.Eq, 0, z)
	boom := b.NewBlock()
	ok := b.NewBlock()
	b.CondBr(c, boom, ok)
	b.SetBlock(boom)
	b.Call("abort")
	b.Unreachable()
	b.SetBlock(ok)
	b.Call("free", p)
	b.Ret(z)
	m := testModule(t, 0, b)
	if sites, elided := heapElides(t, m); sites != 1 || elided != 1 {
		t.Fatalf("sites=%d elided=%d, want 1/1 (abort respawns)", sites, elided)
	}
}

func TestLifetimeEscapeViaStoreBlocksElision(t *testing.T) {
	// Storing the pointer itself to memory escapes it: something else
	// could free (or keep) it.
	b := ir.NewBuilder("target_main", 0)
	off := b.Alloca(8)
	sz := b.Const(8)
	p := b.Call("malloc", sz)
	fp := b.FrameAddr(off)
	b.Store(fp, p, 0, 8)
	b.Call("free", p)
	z := b.Const(0)
	b.Ret(z)
	m := testModule(t, 0, b)
	if sites, elided := heapElides(t, m); sites != 1 || elided != 0 {
		t.Fatalf("sites=%d elided=%d, want 1/0 (stored pointer escapes)", sites, elided)
	}
}

func TestLifetimeReadOnlyCalleeIsNotAnEscape(t *testing.T) {
	// Passing the buffer to a module function that only reads it must not
	// count as an escape (paramSafety), so the must-free proof survives.
	br := ir.NewBuilder("reader", 1)
	x := br.Load(0, 0, 1)
	br.Ret(x)

	bm := ir.NewBuilder("target_main", 0)
	sz := bm.Const(8)
	p := bm.Call("malloc", sz)
	bm.Call("reader", p)
	bm.Call("free", p)
	z := bm.Const(0)
	bm.Ret(z)
	m := testModule(t, 0, bm, br)
	if sites, elided := heapElides(t, m); sites != 1 || elided != 1 {
		t.Fatalf("sites=%d elided=%d, want 1/1 (read-only callee)", sites, elided)
	}
}

func TestLifetimeFreeingCalleeIsAnEscape(t *testing.T) {
	// A callee that frees its argument releases the chunk invisibly to the
	// caller-side walk: the site must stay tracked.
	bf := ir.NewBuilder("sink", 1)
	bf.Call("free", 0)
	z := bf.Const(0)
	bf.Ret(z)

	bm := ir.NewBuilder("target_main", 0)
	sz := bm.Const(8)
	p := bm.Call("malloc", sz)
	bm.Call("sink", p)
	z2 := bm.Const(0)
	bm.Ret(z2)
	m := testModule(t, 0, bm, bf)
	if sites, elided := heapElides(t, m); sites != 1 || elided != 0 {
		t.Fatalf("sites=%d elided=%d, want 1/0 (callee releases)", sites, elided)
	}
}

func TestLifetimeExitingCalleeBlocksElision(t *testing.T) {
	// A callee that may reach exit() can unwind past the pending free.
	bh := ir.NewBuilder("maybe_exit", 1)
	z := bh.Const(0)
	c := bh.Bin(ir.Eq, 0, z)
	then := bh.NewBlock()
	els := bh.NewBlock()
	bh.CondBr(c, then, els)
	bh.SetBlock(then)
	one := bh.Const(1)
	bh.Call("exit", one)
	bh.Ret(one)
	bh.SetBlock(els)
	bh.Ret(z)

	bm := ir.NewBuilder("target_main", 1)
	sz := bm.Const(8)
	p := bm.Call("malloc", sz)
	bm.Call("maybe_exit", 0)
	bm.Call("free", p)
	z2 := bm.Const(0)
	bm.Ret(z2)
	m := testModule(t, 0, bm, bh)
	if sites, elided := heapElides(t, m); sites != 1 || elided != 0 {
		t.Fatalf("sites=%d elided=%d, want 1/0 (callee may exit)", sites, elided)
	}
}

func TestLifetimeReallocNeverElided(t *testing.T) {
	// realloc both escapes its argument site and produces a site of its
	// own that is never elidable (freed-or-untouched-on-failure).
	b := ir.NewBuilder("target_main", 0)
	sz := b.Const(8)
	p := b.Call("malloc", sz)
	sz2 := b.Const(16)
	q := b.Call("realloc", p, sz2)
	b.Call("free", q)
	z := b.Const(0)
	b.Ret(z)
	m := testModule(t, 0, b)
	if sites, elided := heapElides(t, m); sites != 2 || elided != 0 {
		t.Fatalf("sites=%d elided=%d, want 2/0", sites, elided)
	}
}

func TestFileLifetimeClosedAndLeaked(t *testing.T) {
	closed := func() *ir.Module {
		b := ir.NewBuilder("target_main", 0)
		path := b.Const(0)
		mode := b.Const(0)
		f := b.Call("fopen", path, mode)
		b.Call("fclose", f)
		z := b.Const(0)
		b.Ret(z)
		return testModule(t, 0, b)
	}
	leaked := func() *ir.Module {
		b := ir.NewBuilder("target_main", 0)
		path := b.Const(0)
		mode := b.Const(0)
		b.Call("fopen", path, mode)
		z := b.Const(0)
		b.Ret(z)
		return testModule(t, 0, b)
	}
	if sites, elided := fileElides(t, closed()); sites != 1 || elided != 1 {
		t.Fatalf("closed: sites=%d elided=%d, want 1/1", sites, elided)
	}
	if sites, elided := fileElides(t, leaked()); sites != 1 || elided != 0 {
		t.Fatalf("leaked: sites=%d elided=%d, want 1/0", sites, elided)
	}
}

func TestLifetimeReallocatedBeforeFree(t *testing.T) {
	// A loop that re-executes the site before releasing the previous chunk
	// must not elide: the older chunk is orphaned.
	b := ir.NewBuilder("target_main", 1)
	head := b.NewBlock()
	exit := b.NewBlock()
	b.Br(head)
	b.SetBlock(head)
	sz := b.Const(8)
	b.Call("malloc", sz)
	z := b.Const(0)
	c := b.Bin(ir.Eq, 0, z)
	b.CondBr(c, head, exit)
	b.SetBlock(exit)
	b.Ret(z)
	m := testModule(t, 0, b)
	if sites, elided := heapElides(t, m); sites != 1 || elided != 0 {
		t.Fatalf("sites=%d elided=%d, want 1/0 (re-allocation before release)", sites, elided)
	}
}

func TestApplyStampsMarks(t *testing.T) {
	b := ir.NewBuilder("target_main", 0)
	sz := b.Const(8)
	p := b.Call("malloc", sz)
	b.Call("free", p)
	path := b.Const(0)
	mode := b.Const(0)
	f := b.Call("fopen", path, mode)
	b.Call("fclose", f)
	z := b.Const(0)
	b.Ret(z)
	m := testModule(t, 0, b)

	res := Analyze(m)
	Apply(m, res)
	if m.Interproc == nil {
		t.Fatal("Apply left no metadata")
	}
	if m.Interproc.AllocSites != 1 || m.Interproc.AllocElided != 1 ||
		m.Interproc.FileSites != 1 || m.Interproc.FileElided != 1 {
		t.Fatalf("metadata = %+v", m.Interproc)
	}
	var track, file int
	for _, fn := range m.Funcs {
		for _, blk := range fn.Blocks {
			for i := range blk.Instrs {
				if blk.Instrs[i].TrackElide {
					track++
				}
				if blk.Instrs[i].FileElide {
					file++
				}
			}
		}
	}
	if track != 1 || file != 1 {
		t.Fatalf("marks: track=%d file=%d, want 1/1", track, file)
	}
}
