package interproc

import (
	"reflect"
	"testing"

	"closurex/internal/analysis"
	"closurex/internal/ir"
)

func TestModRefBoundedGlobalWrite(t *testing.T) {
	// target_main writes global 0 in bounds and never touches global 1:
	// the restore scope is exactly [g0].
	b := ir.NewBuilder("target_main", 0)
	gp := b.GlobalAddr(0)
	v := b.Const(7)
	b.Store(gp, v, 8, 4) // g0[8..12): in bounds of 64
	b.Ret(v)
	m := testModule(t, 2, b)

	res := Analyze(m)
	if res.WholeSection {
		t.Fatalf("bounded store degraded to whole-section:\n%s", res.Diags)
	}
	if !reflect.DeepEqual(res.MayWriteGlobals, []int{0}) {
		t.Fatalf("MayWriteGlobals = %v, want [0]", res.MayWriteGlobals)
	}
	s := res.Funcs["target_main"].Summary
	if s.Unknown || !s.WritesGlobals[0] || s.WritesGlobals[1] {
		t.Fatalf("summary = %+v", s)
	}
}

func TestModRefOutOfBoundsGlobalWriteDegrades(t *testing.T) {
	// A store that can cross the global's end cannot be attributed to it:
	// whole-section, with a CLX116 explanation.
	b := ir.NewBuilder("target_main", 0)
	gp := b.GlobalAddr(0)
	v := b.Const(1)
	b.Store(gp, v, 60, 8) // [60,68) overruns the 64-byte global
	b.Ret(v)
	m := testModule(t, 1, b)

	res := Analyze(m)
	if !res.WholeSection {
		t.Fatal("overrunning global store not degraded to whole-section")
	}
	if esc := res.Diags.ByID(analysis.IDGlobalEscape); len(esc) != 1 {
		t.Fatalf("CLX116 count = %d:\n%s", len(esc), res.Diags)
	}
}

func TestModRefCalleeParamWriteInstantiated(t *testing.T) {
	// helper writes 4 bytes through its pointer parameter; the caller
	// passes &g0, so the write lands in global 0 at the call site.
	bh := ir.NewBuilder("helper", 1)
	v := bh.Const(9)
	bh.Store(0, v, 0, 4)
	bh.Ret(v)

	bm := ir.NewBuilder("target_main", 0)
	gp := bm.GlobalAddr(0)
	r := bm.Call("helper", gp)
	bm.Ret(r)
	m := testModule(t, 2, bm, bh)

	res := Analyze(m)
	if res.WholeSection {
		t.Fatalf("instantiated param write degraded to whole-section:\n%s", res.Diags)
	}
	if !reflect.DeepEqual(res.MayWriteGlobals, []int{0}) {
		t.Fatalf("MayWriteGlobals = %v, want [0]", res.MayWriteGlobals)
	}
	hs := res.Funcs["helper"].Summary
	if iv, ok := hs.ParamWrites[0]; !ok || iv.Lo != 0 || iv.Hi != 3 || iv.Unbounded {
		t.Fatalf("helper ParamWrites = %+v", hs.ParamWrites)
	}
}

func TestModRefCalleeParamWriteCrossingGlobalEnd(t *testing.T) {
	// Same helper, but the caller hands it a pointer 62 bytes into the
	// 64-byte global: the instantiated write [62,66) crosses the end and
	// the caller degrades to whole-section.
	bh := ir.NewBuilder("helper", 1)
	v := bh.Const(9)
	bh.Store(0, v, 0, 4)
	bh.Ret(v)

	bm := ir.NewBuilder("target_main", 0)
	gp := bm.GlobalAddr(0)
	off := bm.Const(62)
	p := bm.Bin(ir.Add, gp, off)
	r := bm.Call("helper", p)
	bm.Ret(r)
	m := testModule(t, 1, bm, bh)

	res := Analyze(m)
	if !res.WholeSection {
		t.Fatal("write crossing the global's end not degraded to whole-section")
	}
}

func TestModRefHeapLoopFallback(t *testing.T) {
	// A loop-carried heap store: the interval analysis loses the index at
	// the merge (two reaching defs -> top), and the region classifier must
	// recover "heap base + non-negative offset" so the store is proven
	// clean of globals. The chunk is freed, so the site also elides.
	b := ir.NewBuilder("target_main", 0)
	sz := b.Const(8)
	p := b.Call("malloc", sz)
	i := b.NewReg()
	z := b.Const(0)
	b.Mov(i, z)
	head := b.NewBlock()
	body := b.NewBlock()
	exit := b.NewBlock()
	b.Br(head)
	b.SetBlock(head)
	lim := b.Const(8)
	c := b.Bin(ir.Lt, i, lim)
	b.CondBr(c, body, exit)
	b.SetBlock(body)
	addr := b.Bin(ir.Add, p, i)
	v := b.Const(1)
	b.Store(addr, v, 0, 1)
	one := b.Const(1)
	ni := b.Bin(ir.Add, i, one)
	b.Mov(i, ni)
	b.Br(head)
	b.SetBlock(exit)
	b.Call("free", p)
	zr := b.Const(0)
	b.Ret(zr)
	m := testModule(t, 1, b)

	res := Analyze(m)
	if res.WholeSection {
		t.Fatalf("loop-carried heap store degraded to whole-section:\n%s", res.Diags)
	}
	if len(res.MayWriteGlobals) != 0 {
		t.Fatalf("MayWriteGlobals = %v, want empty", res.MayWriteGlobals)
	}
	fr := res.Funcs["target_main"]
	if len(fr.HeapSites) != 1 || len(fr.HeapElide) != 1 {
		t.Fatalf("heap sites %d elided %d, want 1/1", len(fr.HeapSites), len(fr.HeapElide))
	}
}

func TestModRefLoadBoundAndMask(t *testing.T) {
	// A 1-byte load zero-extends to [0,255]; masked with 63 it indexes
	// global 0 in bounds — the OpLoad width bound plus the And rule keep
	// the write attributable.
	b := ir.NewBuilder("target_main", 0)
	sz := b.Const(4)
	p := b.Call("malloc", sz)
	x := b.Load(p, 0, 1)
	mask := b.Const(63)
	idx := b.Bin(ir.And, x, mask)
	gp := b.GlobalAddr(0)
	addr := b.Bin(ir.Add, gp, idx)
	v := b.Const(1)
	b.Store(addr, v, 0, 1) // g0[idx], idx in [0,63]: in bounds
	b.Call("free", p)
	b.Ret(v)
	m := testModule(t, 1, b)

	res := Analyze(m)
	if res.WholeSection {
		t.Fatalf("masked-load-indexed store degraded to whole-section:\n%s", res.Diags)
	}
	if !reflect.DeepEqual(res.MayWriteGlobals, []int{0}) {
		t.Fatalf("MayWriteGlobals = %v, want [0]", res.MayWriteGlobals)
	}
}

func TestRetOracleBoundsCalleeReturn(t *testing.T) {
	// helper returns 5 or 60; the caller uses the result as a global
	// offset for a 4-byte store — [5,63] stays inside the 64-byte global
	// only because the oracle joins both return intervals.
	bh := ir.NewBuilder("helper", 1)
	z := bh.Const(0)
	c := bh.Bin(ir.Eq, 0, z)
	then := bh.NewBlock()
	els := bh.NewBlock()
	bh.CondBr(c, then, els)
	bh.SetBlock(then)
	lo := bh.Const(5)
	bh.Ret(lo)
	bh.SetBlock(els)
	hi := bh.Const(60)
	bh.Ret(hi)

	bm := ir.NewBuilder("target_main", 0)
	arg := bm.Const(1)
	off := bm.Call("helper", arg)
	gp := bm.GlobalAddr(0)
	addr := bm.Bin(ir.Add, gp, off)
	v := bm.Const(2)
	bm.Store(addr, v, 0, 4) // g0[off..off+4), off in [5,60]: ends at 63
	bm.Ret(v)
	m := testModule(t, 1, bm, bh)

	res := Analyze(m)
	if res.WholeSection {
		t.Fatalf("oracle-bounded offset degraded to whole-section:\n%s", res.Diags)
	}
	if !reflect.DeepEqual(res.MayWriteGlobals, []int{0}) {
		t.Fatalf("MayWriteGlobals = %v, want [0]", res.MayWriteGlobals)
	}
}

func TestModRefMayExitPropagates(t *testing.T) {
	bh := ir.NewBuilder("helper", 0)
	one := bh.Const(1)
	bh.Call("exit", one)
	bh.Ret(one)

	bm := ir.NewBuilder("target_main", 0)
	r := bm.Call("helper")
	bm.Ret(r)
	m := testModule(t, 0, bm, bh)

	res := Analyze(m)
	for _, fn := range []string{"helper", "target_main"} {
		if !res.Funcs[fn].Summary.MayExit {
			t.Errorf("%s: MayExit not set", fn)
		}
	}
}

func TestModRefMemsetBoundedDestination(t *testing.T) {
	// memset(&g0, 0, 64) writes exactly the global; memset(&g0, 0, 65)
	// crosses its end and must degrade.
	build := func(n int64) *ir.Module {
		b := ir.NewBuilder("target_main", 0)
		gp := b.GlobalAddr(0)
		z := b.Const(0)
		ln := b.Const(n)
		b.Call("memset", gp, z, ln)
		b.Ret(z)
		return testModule(t, 1, b)
	}
	if res := Analyze(build(64)); res.WholeSection || !reflect.DeepEqual(res.MayWriteGlobals, []int{0}) {
		t.Fatalf("in-bounds memset: whole=%v writes=%v", res.WholeSection, res.MayWriteGlobals)
	}
	if res := Analyze(build(65)); !res.WholeSection {
		t.Fatal("overrunning memset not degraded to whole-section")
	}
}
