package analysis

import (
	"strings"
	"testing"

	"closurex/internal/ir"
)

var testBuiltins = map[string]bool{
	"malloc": true, "free": true, "exit": true, "fopen": true, "memcpy": true,
}

// validModule hand-assembles a small well-formed module:
//
//	func helper(a) { b0: ret a }
//	func main()    { b0: r0=1; condbr r0 -> b1, b2
//	                 b1: r1 = helper(r0); br b3
//	                 b2: r2 = 7; br b3
//	                 b3: ret }
func validModule() *ir.Module {
	m := ir.NewModule("t")
	m.AddGlobal(&ir.Global{Name: "g", Size: 8, Section: ir.SectionData})
	helper := &ir.Func{Name: "helper", NumParams: 1, NumRegs: 1, Blocks: []*ir.Block{
		{Instrs: []ir.Instr{{Op: ir.OpRet, A: 0, Dst: -1}}},
	}}
	main := &ir.Func{Name: "main", NumParams: 0, NumRegs: 3, Blocks: []*ir.Block{
		{Instrs: []ir.Instr{
			{Op: ir.OpConst, Dst: 0, Imm: 1},
			{Op: ir.OpCondBr, A: 0, Dst: -1, Targets: [2]int{1, 2}},
		}},
		{Instrs: []ir.Instr{
			{Op: ir.OpCall, Dst: 1, Callee: "helper", Args: []int{0}},
			{Op: ir.OpBr, Dst: -1, Targets: [2]int{3, 0}},
		}},
		{Instrs: []ir.Instr{
			{Op: ir.OpConst, Dst: 2, Imm: 7},
			{Op: ir.OpBr, Dst: -1, Targets: [2]int{3, 0}},
		}},
		{Instrs: []ir.Instr{{Op: ir.OpRet, A: -1, Dst: -1}}},
	}}
	if err := m.AddFunc(helper); err != nil {
		panic(err)
	}
	if err := m.AddFunc(main); err != nil {
		panic(err)
	}
	return m
}

func TestVerifyCleanModule(t *testing.T) {
	ds := Verify(validModule(), testBuiltins)
	if len(ds) != 0 {
		t.Fatalf("clean module produced diagnostics:\n%s", ds)
	}
}

// TestVerifyBrokenModules drives the verifier over one seeded defect per
// structural invariant and asserts exactly the intended catalog ID fires.
func TestVerifyBrokenModules(t *testing.T) {
	cases := []struct {
		name   string
		breakM func(m *ir.Module)
		wantID string
	}{
		{
			name: "missing terminator",
			breakM: func(m *ir.Module) {
				b := m.Func("main").Blocks[3]
				b.Instrs = []ir.Instr{{Op: ir.OpConst, Dst: 0, Imm: 9}}
			},
			wantID: IDBadTerminator,
		},
		{
			name: "terminator mid-block",
			breakM: func(m *ir.Module) {
				b := m.Func("main").Blocks[3]
				b.Instrs = []ir.Instr{
					{Op: ir.OpRet, A: -1, Dst: -1},
					{Op: ir.OpConst, Dst: 0, Imm: 9},
					{Op: ir.OpRet, A: -1, Dst: -1},
				}
			},
			wantID: IDBadTerminator,
		},
		{
			name: "empty block",
			breakM: func(m *ir.Module) {
				m.Func("main").Blocks[3].Instrs = nil
			},
			wantID: IDBadTerminator,
		},
		{
			name: "branch target out of range",
			breakM: func(m *ir.Module) {
				m.Func("main").Blocks[1].Instrs[1].Targets[0] = 99
			},
			wantID: IDBadTarget,
		},
		{
			name: "negative branch target",
			breakM: func(m *ir.Module) {
				m.Func("main").Blocks[0].Instrs[1].Targets[1] = -2
			},
			wantID: IDBadTarget,
		},
		{
			name: "use before def",
			breakM: func(m *ir.Module) {
				// b3 reads r1, which only the b1 arm of the diamond assigns.
				b := m.Func("main").Blocks[3]
				b.Instrs = []ir.Instr{{Op: ir.OpRet, A: 1, Dst: -1}}
			},
			wantID: IDUnassignedUse,
		},
		{
			name: "use above def in straight line",
			breakM: func(m *ir.Module) {
				// A "reordered pass" swapped the def below its use.
				b := m.Func("main").Blocks[2]
				b.Instrs = []ir.Instr{
					{Op: ir.OpMov, Dst: 0, A: 2},
					{Op: ir.OpConst, Dst: 2, Imm: 7},
					{Op: ir.OpBr, Dst: -1, Targets: [2]int{3, 0}},
				}
			},
			wantID: IDUnassignedUse,
		},
		{
			name: "unknown callee",
			breakM: func(m *ir.Module) {
				m.Func("main").Blocks[1].Instrs[0].Callee = "launder_state"
			},
			wantID: IDBadCallee,
		},
		{
			name: "call arity mismatch",
			breakM: func(m *ir.Module) {
				m.Func("main").Blocks[1].Instrs[0].Args = []int{0, 0}
			},
			wantID: IDBadArity,
		},
		{
			name: "global index out of range",
			breakM: func(m *ir.Module) {
				b := m.Func("main").Blocks[2]
				b.Instrs = append([]ir.Instr{{Op: ir.OpGlobalAddr, Dst: 2, Imm: 42}}, b.Instrs...)
			},
			wantID: IDBadGlobal,
		},
		{
			name: "register out of range",
			breakM: func(m *ir.Module) {
				m.Func("main").Blocks[2].Instrs[0].Dst = 55
			},
			wantID: IDBadRegister,
		},
		{
			name: "bad access size",
			breakM: func(m *ir.Module) {
				b := m.Func("main").Blocks[2]
				b.Instrs = append([]ir.Instr{{Op: ir.OpLoad, Dst: 2, A: 0, Size: 3}}, b.Instrs...)
			},
			wantID: IDBadSize,
		},
		{
			name: "unknown section attribute",
			breakM: func(m *ir.Module) {
				m.Globals[0].Section = ".fancy"
			},
			wantID: IDBadSection,
		},
		{
			name: "function without blocks",
			breakM: func(m *ir.Module) {
				m.Func("helper").Blocks = nil
			},
			wantID: IDEmptyFunc,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			m := validModule()
			// The seeded defect must be invisible to a clean build...
			if ds := Verify(m, testBuiltins); len(ds) != 0 {
				t.Fatalf("precondition: base module not clean:\n%s", ds)
			}
			tc.breakM(m)
			ds := Verify(m, testBuiltins)
			if !ds.HasErrors() {
				t.Fatalf("verifier missed the seeded defect")
			}
			ids := ds.IDs()
			found := false
			for _, id := range ids {
				if id == tc.wantID {
					found = true
				}
			}
			if !found {
				t.Fatalf("want %s among %v:\n%s", tc.wantID, ids, ds)
			}
		})
	}
}

// TestVerifyDefiniteAssignmentDiamond proves the dataflow leg accepts the
// register-defined-on-both-arms pattern the lowerer emits for ternaries
// and short-circuit operators — a pure dominance check would reject it.
func TestVerifyDefiniteAssignmentDiamond(t *testing.T) {
	m := ir.NewModule("t")
	f := &ir.Func{Name: "main", NumParams: 0, NumRegs: 2, Blocks: []*ir.Block{
		{Instrs: []ir.Instr{
			{Op: ir.OpConst, Dst: 0, Imm: 1},
			{Op: ir.OpCondBr, A: 0, Dst: -1, Targets: [2]int{1, 2}},
		}},
		{Instrs: []ir.Instr{
			{Op: ir.OpConst, Dst: 1, Imm: 10},
			{Op: ir.OpBr, Dst: -1, Targets: [2]int{3, 0}},
		}},
		{Instrs: []ir.Instr{
			{Op: ir.OpConst, Dst: 1, Imm: 20},
			{Op: ir.OpBr, Dst: -1, Targets: [2]int{3, 0}},
		}},
		// r1 assigned on every path though neither def dominates the use.
		{Instrs: []ir.Instr{{Op: ir.OpRet, A: 1, Dst: -1}}},
	}}
	if err := m.AddFunc(f); err != nil {
		t.Fatal(err)
	}
	if ds := Verify(m, testBuiltins); len(ds) != 0 {
		t.Fatalf("diamond-assigned register flagged:\n%s", ds)
	}
}

func TestDiagnosticRendering(t *testing.T) {
	d := Diagnostic{ID: "CLX001", Sev: SevError, Pass: "HeapPass",
		Func: "parse", Block: 2, Instr: 4, Line: 17, Msg: "raw malloc"}
	s := d.String()
	for _, want := range []string{"CLX001", "error", "HeapPass", "parse", "b2#4", "line 17", "raw malloc"} {
		if !strings.Contains(s, want) {
			t.Fatalf("rendered diagnostic %q missing %q", s, want)
		}
	}
	ds := Diagnostics{d}
	if err := ds.Err(); err == nil || !strings.Contains(err.Error(), "CLX001") {
		t.Fatalf("Err() = %v, want CLX001 rendering", err)
	}
	if (Diagnostics{}).Err() != nil {
		t.Fatal("empty diagnostics must convert to nil error")
	}
}
