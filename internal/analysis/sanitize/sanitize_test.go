package sanitize

import (
	"testing"

	"closurex/internal/ir"
)

// buildFunc finishes a builder into a single-function module with one
// 64-byte global so globalOff proofs have a region to land in.
func buildFunc(t *testing.T, b *ir.Builder) (*ir.Module, *ir.Func) {
	t.Helper()
	f, err := b.Finish()
	if err != nil {
		t.Fatalf("Finish: %v", err)
	}
	m := &ir.Module{
		Funcs:   []*ir.Func{f},
		Globals: []*ir.Global{{Name: "g", Size: 64, Section: ir.SectionClosure}},
	}
	return m, f
}

// accessSites returns the (block,instr) of every load/store in f, in order.
func accessSites(f *ir.Func) []Access {
	var out []Access
	for bi, blk := range f.Blocks {
		for ii := range blk.Instrs {
			if op := blk.Instrs[ii].Op; op == ir.OpLoad || op == ir.OpStore {
				out = append(out, Access{Block: bi, Instr: ii})
			}
		}
	}
	return out
}

func TestElideFrameAccessInBounds(t *testing.T) {
	b := ir.NewBuilder("f", 0)
	off := b.Alloca(16)
	fp := b.FrameAddr(off)
	v := b.Const(42)
	b.Store(fp, v, 8, 8) // frame[off+8..off+16) — in bounds
	b.Ret(v)
	m, f := buildFunc(t, b)
	el := Analyze(m, f)
	sites := accessSites(f)
	if len(sites) != 1 || !el[sites[0]] {
		t.Fatalf("in-bounds frame store not elided: %v", el)
	}
}

func TestNoElideFrameAccessOutOfBounds(t *testing.T) {
	b := ir.NewBuilder("f", 0)
	off := b.Alloca(16)
	fp := b.FrameAddr(off)
	v := b.Const(1)
	b.Store(fp, v, 16, 8) // one byte past the frame area: [16,24) vs size 16
	b.Ret(v)
	m, f := buildFunc(t, b)
	if el := Analyze(m, f); len(el) != 0 {
		t.Fatalf("out-of-bounds frame store elided: %v", el)
	}
}

func TestElideGlobalAccess(t *testing.T) {
	b := ir.NewBuilder("f", 0)
	gp := b.GlobalAddr(0)
	x := b.Load(gp, 56, 8) // last valid word of the 64-byte global
	b.Ret(x)
	m, f := buildFunc(t, b)
	el := Analyze(m, f)
	if len(el) != 1 {
		t.Fatalf("in-bounds global load not elided: %v", el)
	}
	// Out of bounds by one word.
	b2 := ir.NewBuilder("f", 0)
	gp2 := b2.GlobalAddr(0)
	x2 := b2.Load(gp2, 64, 8)
	b2.Ret(x2)
	m2, f2 := buildFunc(t, b2)
	if el := Analyze(m2, f2); len(el) != 0 {
		t.Fatalf("out-of-bounds global load elided: %v", el)
	}
}

func TestElideAndMaskedHeapIndex(t *testing.T) {
	// p = malloc(8); p[i & 7] for caller-controlled i: offset in [0,7],
	// width 1 -> provably inside the 8-byte chunk.
	b := ir.NewBuilder("f", 1) // param r0 = i
	sz := b.Const(8)
	p := b.Call("malloc", sz)
	mask := b.Const(7)
	idx := b.Bin(ir.And, 0, mask)
	addr := b.Bin(ir.Add, p, idx)
	x := b.Load(addr, 0, 1)
	b.Ret(x)
	m, f := buildFunc(t, b)
	el := Analyze(m, f)
	if len(el) != 1 {
		t.Fatalf("and-masked heap load not elided: %v", el)
	}
}

func TestNoElideHeapIndexTooWide(t *testing.T) {
	// Same shape but a 2-byte load at offset up to 7 can reach byte 8.
	b := ir.NewBuilder("f", 1)
	sz := b.Const(8)
	p := b.Call("malloc", sz)
	mask := b.Const(7)
	idx := b.Bin(ir.And, 0, mask)
	addr := b.Bin(ir.Add, p, idx)
	x := b.Load(addr, 0, 2)
	b.Ret(x)
	m, f := buildFunc(t, b)
	if el := Analyze(m, f); len(el) != 0 {
		t.Fatalf("potentially overrunning heap load elided: %v", el)
	}
}

func TestNoElideEscapedAllocation(t *testing.T) {
	// The pointer is passed to a callee that could free it: the bounds
	// proof is void even though the offset is fine.
	b := ir.NewBuilder("f", 0)
	sz := b.Const(8)
	p := b.Call("malloc", sz)
	b.Call("consume", p)
	x := b.Load(p, 0, 1)
	b.Ret(x)
	m, f := buildFunc(t, b)
	if el := Analyze(m, f); len(el) != 0 {
		t.Fatalf("escaped allocation's load elided: %v", el)
	}
}

func TestNoElideStoredPointerEscapes(t *testing.T) {
	// Storing the pointer itself to memory escapes it.
	b := ir.NewBuilder("f", 0)
	off := b.Alloca(8)
	sz := b.Const(8)
	p := b.Call("malloc", sz)
	fp := b.FrameAddr(off)
	b.Store(fp, p, 0, 8) // frame store of p: elidable itself, but escapes p
	x := b.Load(p, 0, 1)
	b.Ret(x)
	m, f := buildFunc(t, b)
	el := Analyze(m, f)
	sites := accessSites(f)
	if len(sites) != 2 {
		t.Fatalf("want 2 accesses, got %d", len(sites))
	}
	if !el[sites[0]] {
		t.Errorf("frame store of the pointer should itself be elidable")
	}
	if el[sites[1]] {
		t.Errorf("load through escaped pointer must stay checked")
	}
}

func TestNoElideParamPointer(t *testing.T) {
	b := ir.NewBuilder("f", 1)
	x := b.Load(0, 0, 1) // param pointer: caller-controlled, top
	b.Ret(x)
	m, f := buildFunc(t, b)
	if el := Analyze(m, f); len(el) != 0 {
		t.Fatalf("param-pointer load elided: %v", el)
	}
}

func TestNoElideLoopCarriedIndex(t *testing.T) {
	// i starts at 0 and is incremented in a loop with no bound the domain
	// can see; the merge has two reaching defs -> top -> checked.
	b := ir.NewBuilder("f", 0)
	off := b.Alloca(8)
	entryI := b.Const(0)
	i := b.NewReg()
	b.Mov(i, entryI)
	head := b.NewBlock()
	body := b.NewBlock()
	exit := b.NewBlock()
	b.Br(head)
	b.SetBlock(head)
	limit := b.Const(100)
	cond := b.Bin(ir.Lt, i, limit)
	b.CondBr(cond, body, exit)
	b.SetBlock(body)
	fp := b.FrameAddr(off)
	addr := b.Bin(ir.Add, fp, i)
	v := b.Const(1)
	b.Store(addr, v, 0, 1) // offset in [0,100): not provably < 8
	one := b.Const(1)
	ni := b.Bin(ir.Add, i, one)
	b.Mov(i, ni)
	b.Br(head)
	b.SetBlock(exit)
	r := b.Const(0)
	b.Ret(r)
	m, f := buildFunc(t, b)
	if el := Analyze(m, f); len(el) != 0 {
		t.Fatalf("loop-carried index store elided: %v", el)
	}
}

func TestReportRateArithmetic(t *testing.T) {
	r := &Report{Funcs: []FuncReport{
		{Name: "a", Checks: 3, Elided: 1},
		{Name: "b", Checks: 1, Elided: 5},
	}}
	c, e := r.Totals()
	if c != 4 || e != 6 {
		t.Fatalf("totals = (%d,%d)", c, e)
	}
	if got := r.Rate(); got != 0.6 {
		t.Fatalf("rate = %v", got)
	}
	if (&Report{}).Rate() != 0 {
		t.Fatal("empty report rate should be 0")
	}
}
