// Package sanitize implements the static check-elision analysis behind
// passes.SanitizerPass: an intra-procedural bounds/escape analysis over the
// existing CFG + reaching-definitions machinery that proves loads and
// stores in-bounds so their shadow checks can be dropped.
//
// The abstract domain tracks, per register use, one of:
//
//	range      a value interval [lo,hi] (constants, and-masked indices,
//	           sums/products of ranges)
//	frame+off  frame base plus an offset interval
//	global+off address of global g plus an offset interval
//	heap+off   a non-escaping allocation of statically known size, plus
//	           an offset interval
//	top        anything else
//
// An access base+Imm of width w is elidable when the region is known and
// off.lo+Imm >= 0 && off.hi+Imm+w <= region size. Heap regions are usable
// only while the allocation provably does not escape the function (its
// pointer is never a call argument and never stored to memory), since an
// escaped pointer could be freed behind the analysis's back.
//
// Elision is deliberately conservative and, crucially, can never lose a
// bug entirely: the interpreter's chunk-map access check stays armed for
// every access, so a wrongly elided check would only downgrade the report
// from a rich sanitizer report to a plain fault, never hide it.
package sanitize

import (
	"fmt"
	"sort"
	"strings"

	"closurex/internal/analysis"
	"closurex/internal/ir"
)

// Access identifies one load/store instruction inside a function.
type Access struct {
	Block, Instr int
}

// boundClamp keeps interval arithmetic far from int64 overflow; bounds
// beyond it collapse to top.
const boundClamp = int64(1) << 40

type kind uint8

const (
	top kind = iota
	rng
	frameOff
	globalOff
	heapOff
)

type absVal struct {
	k      kind
	lo, hi int64 // value bounds (rng) or offset bounds (regions)
	g      int64 // global index (globalOff)
	size   int64 // allocation size (heapOff)
	def    int   // defining site index of the allocation (heapOff)
}

var topVal = absVal{k: top}

func rangeVal(lo, hi int64) absVal {
	if lo < -boundClamp || hi > boundClamp || lo > hi {
		return topVal
	}
	return absVal{k: rng, lo: lo, hi: hi}
}

type analyzer struct {
	m   *ir.Module
	f   *ir.Func
	rd  *analysis.ReachingDefs
	idx map[Access]int // (block,instr) -> def-site index

	memo    map[int]absVal
	inProg  map[int]bool
	escMemo map[int]bool
}

// Analyze returns the set of load/store sites in f whose shadow check is
// statically provably unnecessary.
func Analyze(m *ir.Module, f *ir.Func) map[Access]bool {
	a := newAnalyzer(m, f)
	out := make(map[Access]bool)
	for bi, b := range f.Blocks {
		for ii := range b.Instrs {
			in := &b.Instrs[ii]
			if in.Op != ir.OpLoad && in.Op != ir.OpStore {
				continue
			}
			if a.inBounds(bi, ii, in) {
				out[Access{Block: bi, Instr: ii}] = true
			}
		}
	}
	return out
}

func newAnalyzer(m *ir.Module, f *ir.Func) *analyzer {
	cfg := analysis.BuildCFG(f)
	rd := analysis.ComputeReachingDefs(cfg)
	idx := make(map[Access]int, len(rd.Sites))
	for i, s := range rd.Sites {
		if s.Block >= 0 {
			idx[Access{Block: s.Block, Instr: s.Instr}] = i
		}
	}
	return &analyzer{
		m: m, f: f, rd: rd, idx: idx,
		memo:    make(map[int]absVal),
		inProg:  make(map[int]bool),
		escMemo: make(map[int]bool),
	}
}

// inBounds decides whether the access at (bi,ii) is provably within its
// base region.
func (a *analyzer) inBounds(bi, ii int, in *ir.Instr) bool {
	v := a.resolveUse(bi, ii, in.A)
	w := int64(in.Size)
	lo, hi := v.lo+in.Imm, v.hi+in.Imm
	switch v.k {
	case frameOff:
		return lo >= 0 && hi+w <= a.f.FrameSize
	case globalOff:
		if v.g < 0 || v.g >= int64(len(a.m.Globals)) {
			return false
		}
		return lo >= 0 && hi+w <= a.m.Globals[v.g].Size
	case heapOff:
		return !a.escapes(v.def) && lo >= 0 && hi+w <= v.size
	}
	return false
}

// resolveUse computes the abstract value of register r as read by the
// instruction at (bi, ii): the value of r's unique reaching definition, or
// top when several definitions (loop-carried values, merges) may reach.
func (a *analyzer) resolveUse(bi, ii, r int) absVal {
	// A def of r earlier in the same block shadows everything inbound.
	for j := ii - 1; j >= 0; j-- {
		if analysis.InstrDef(&a.f.Blocks[bi].Instrs[j]) == r {
			return a.evalSite(a.idx[Access{Block: bi, Instr: j}])
		}
	}
	// Otherwise the block-entry reaching set must name exactly one site.
	site := -1
	for i := range a.rd.Sites {
		if a.rd.Sites[i].Reg == r && a.rd.In[bi].Has(i) {
			if site >= 0 {
				return topVal
			}
			site = i
		}
	}
	if site < 0 {
		return topVal
	}
	return a.evalSite(site)
}

// evalSite computes the abstract value produced by one definition site,
// memoized; a cycle (loop-carried dependence) resolves to top.
func (a *analyzer) evalSite(site int) absVal {
	if v, ok := a.memo[site]; ok {
		return v
	}
	if a.inProg[site] {
		return topVal
	}
	a.inProg[site] = true
	v := a.evalSiteUncached(site)
	delete(a.inProg, site)
	a.memo[site] = v
	return v
}

func (a *analyzer) evalSiteUncached(site int) absVal {
	s := a.rd.Sites[site]
	if s.Block < 0 {
		return topVal // parameter: caller-controlled
	}
	in := &a.f.Blocks[s.Block].Instrs[s.Instr]
	switch in.Op {
	case ir.OpConst:
		return rangeVal(in.Imm, in.Imm)
	case ir.OpMov:
		return a.resolveUse(s.Block, s.Instr, in.A)
	case ir.OpFrameAddr:
		return absVal{k: frameOff, lo: in.Imm, hi: in.Imm}
	case ir.OpGlobalAddr:
		return absVal{k: globalOff, g: in.Imm}
	case ir.OpBin:
		l := a.resolveUse(s.Block, s.Instr, in.A)
		r := a.resolveUse(s.Block, s.Instr, in.B)
		return evalBin(in.Bin, l, r)
	case ir.OpCall:
		return a.evalAlloc(site, s, in)
	}
	return topVal
}

// evalAlloc recognizes allocation calls with a provably constant size.
func (a *analyzer) evalAlloc(site int, s analysis.DefSite, in *ir.Instr) absVal {
	var size int64 = -1
	switch in.Callee {
	case "malloc", "closurex_malloc":
		if len(in.Args) == 1 {
			if v := a.resolveUse(s.Block, s.Instr, in.Args[0]); v.k == rng && v.lo == v.hi && v.lo > 0 {
				size = v.lo
			}
		}
	case "calloc", "closurex_calloc":
		if len(in.Args) == 2 {
			n := a.resolveUse(s.Block, s.Instr, in.Args[0])
			e := a.resolveUse(s.Block, s.Instr, in.Args[1])
			if n.k == rng && n.lo == n.hi && e.k == rng && e.lo == e.hi &&
				n.lo > 0 && e.lo > 0 && n.lo <= boundClamp/e.lo {
				size = n.lo * e.lo
			}
		}
	}
	if size <= 0 {
		return topVal
	}
	return absVal{k: heapOff, size: size, def: site}
}

// evalBin implements interval arithmetic with region offsets.
func evalBin(op ir.BinOp, l, r absVal) absVal {
	region := func(base absVal, off absVal, neg bool) absVal {
		if off.k != rng {
			return topVal
		}
		lo, hi := off.lo, off.hi
		if neg {
			lo, hi = -off.hi, -off.lo
		}
		out := base
		out.lo += lo
		out.hi += hi
		if out.lo < -boundClamp || out.hi > boundClamp {
			return topVal
		}
		return out
	}
	switch op {
	case ir.Add:
		switch {
		case l.k == rng && r.k == rng:
			return rangeVal(l.lo+r.lo, l.hi+r.hi)
		case (l.k == frameOff || l.k == globalOff || l.k == heapOff) && r.k == rng:
			return region(l, r, false)
		case (r.k == frameOff || r.k == globalOff || r.k == heapOff) && l.k == rng:
			return region(r, l, false)
		}
	case ir.Sub:
		switch {
		case l.k == rng && r.k == rng:
			return rangeVal(l.lo-r.hi, l.hi-r.lo)
		case (l.k == frameOff || l.k == globalOff || l.k == heapOff) && r.k == rng:
			return region(l, r, true)
		}
	case ir.Mul:
		if l.k == rng && r.k == rng {
			c := []int64{l.lo * r.lo, l.lo * r.hi, l.hi * r.lo, l.hi * r.hi}
			lo, hi := c[0], c[0]
			for _, v := range c[1:] {
				if v < lo {
					lo = v
				}
				if v > hi {
					hi = v
				}
			}
			// Guard the products themselves against wraparound.
			if abs64(l.lo) > boundClamp || abs64(l.hi) > boundClamp ||
				abs64(r.lo) > boundClamp || abs64(r.hi) > boundClamp {
				return topVal
			}
			return rangeVal(lo, hi)
		}
	case ir.Shl:
		if l.k == rng && r.k == rng && r.lo == r.hi && r.lo >= 0 && r.lo < 32 {
			return evalBin(ir.Mul, l, rangeVal(1<<r.lo, 1<<r.lo))
		}
	case ir.And:
		// x & mask with a non-negative constant mask lands in [0, mask]
		// regardless of x — the "bounded index" idiom (buf[i & 7]).
		if r.k == rng && r.lo == r.hi && r.lo >= 0 {
			return rangeVal(0, r.lo)
		}
		if l.k == rng && l.lo == l.hi && l.lo >= 0 {
			return rangeVal(0, l.lo)
		}
	case ir.Rem:
		// x % c for constant c > 0: MinC Rem is signed, so the result is
		// in (-c, c); only a provably non-negative x gives [0, c).
		if l.k == rng && r.k == rng && r.lo == r.hi && r.lo > 0 && l.lo >= 0 {
			return rangeVal(0, r.lo-1)
		}
	}
	return topVal
}

func abs64(v int64) int64 {
	if v < 0 {
		return -v
	}
	return v
}

// escapes reports whether the allocation made at def site `site` may
// escape the function: its pointer (or any register derived from it by
// mov/add/sub) appears as a call argument or as a store's value operand.
// Escaped allocations may be freed behind the analysis's back, so their
// bounds proof is void. Flow-insensitive and register-granular, hence
// conservative under register reuse.
func (a *analyzer) escapes(site int) bool {
	if v, ok := a.escMemo[site]; ok {
		return v
	}
	s := a.rd.Sites[site]
	root := &a.f.Blocks[s.Block].Instrs[s.Instr]
	tainted := make([]bool, a.f.NumRegs)
	if root.Dst >= 0 {
		tainted[root.Dst] = true
	}
	for changed := true; changed; {
		changed = false
		for _, b := range a.f.Blocks {
			for ii := range b.Instrs {
				in := &b.Instrs[ii]
				var from bool
				switch in.Op {
				case ir.OpMov:
					from = tainted[in.A]
				case ir.OpBin:
					if in.Bin == ir.Add || in.Bin == ir.Sub {
						from = tainted[in.A] || tainted[in.B]
					}
				}
				if from && in.Dst >= 0 && !tainted[in.Dst] {
					tainted[in.Dst] = true
					changed = true
				}
			}
		}
	}
	esc := false
	for _, b := range a.f.Blocks {
		for ii := range b.Instrs {
			in := &b.Instrs[ii]
			switch in.Op {
			case ir.OpCall:
				for _, arg := range in.Args {
					if tainted[arg] {
						esc = true
					}
				}
			case ir.OpStore:
				if tainted[in.B] {
					esc = true
				}
			}
		}
	}
	a.escMemo[site] = esc
	return esc
}

// --- reporting (closurex-lint -sanitize-report) ---

// FuncReport carries the per-function audit counters.
type FuncReport struct {
	Name   string
	Checks int // shadow checks inserted (OpSanCheck count)
	Elided int // accesses proven in-bounds (SanElide marks)
}

// Accesses is the total number of instrumentable accesses.
func (fr FuncReport) Accesses() int { return fr.Checks + fr.Elided }

// Report aggregates the elision audit across a module.
type Report struct {
	Funcs []FuncReport
}

// Totals sums checks and elisions across all functions.
func (r *Report) Totals() (checks, elided int) {
	for _, fr := range r.Funcs {
		checks += fr.Checks
		elided += fr.Elided
	}
	return
}

// Rate returns the fraction of accesses whose check was elided.
func (r *Report) Rate() float64 {
	c, e := r.Totals()
	if c+e == 0 {
		return 0
	}
	return float64(e) / float64(c+e)
}

// ReportModule audits an already-sanitized module by counting the
// OpSanCheck instructions and SanElide marks SanitizerPass left behind.
func ReportModule(m *ir.Module) *Report {
	rep := &Report{}
	for _, f := range m.Funcs {
		fr := FuncReport{Name: f.Name}
		for _, b := range f.Blocks {
			for ii := range b.Instrs {
				switch in := &b.Instrs[ii]; in.Op {
				case ir.OpSanCheck:
					fr.Checks++
				case ir.OpLoad, ir.OpStore:
					if in.SanElide {
						fr.Elided++
					}
				}
			}
		}
		if fr.Accesses() > 0 {
			rep.Funcs = append(rep.Funcs, fr)
		}
	}
	sort.Slice(rep.Funcs, func(i, j int) bool { return rep.Funcs[i].Name < rep.Funcs[j].Name })
	return rep
}

// Format renders the report as the table closurex-lint prints.
func (r *Report) Format() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-28s %8s %8s %8s %7s\n", "function", "accesses", "checked", "elided", "rate")
	for _, fr := range r.Funcs {
		rate := 0.0
		if fr.Accesses() > 0 {
			rate = float64(fr.Elided) / float64(fr.Accesses())
		}
		fmt.Fprintf(&sb, "%-28s %8d %8d %8d %6.1f%%\n",
			fr.Name, fr.Accesses(), fr.Checks, fr.Elided, 100*rate)
	}
	c, e := r.Totals()
	fmt.Fprintf(&sb, "%-28s %8d %8d %8d %6.1f%%\n", "TOTAL", c+e, c, e, 100*r.Rate())
	return sb.String()
}
