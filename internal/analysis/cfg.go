package analysis

import "closurex/internal/ir"

// CFG is the control-flow graph of one function: successor and predecessor
// block-index lists derived from each block's terminator. Construction is
// tolerant of malformed functions (missing terminators, out-of-range branch
// targets); such edges are simply absent, and the structural verifier
// reports the defect separately.
type CFG struct {
	F     *ir.Func
	Succs [][]int
	Preds [][]int
}

// BuildCFG derives the control-flow graph of f.
func BuildCFG(f *ir.Func) *CFG {
	n := len(f.Blocks)
	c := &CFG{
		F:     f,
		Succs: make([][]int, n),
		Preds: make([][]int, n),
	}
	for bi, b := range f.Blocks {
		t := b.Terminator()
		if t == nil {
			continue
		}
		add := func(target int) {
			if target < 0 || target >= n {
				return // verifier's problem, not the CFG's
			}
			for _, s := range c.Succs[bi] {
				if s == target {
					return // CondBr with both arms equal: one edge
				}
			}
			c.Succs[bi] = append(c.Succs[bi], target)
			c.Preds[target] = append(c.Preds[target], bi)
		}
		switch t.Op {
		case ir.OpBr:
			add(t.Targets[0])
		case ir.OpCondBr:
			add(t.Targets[0])
			add(t.Targets[1])
		}
	}
	return c
}

// Reachable reports, per block, whether it is reachable from the entry
// block by CFG edges.
func (c *CFG) Reachable() []bool {
	seen := make([]bool, len(c.Succs))
	if len(seen) == 0 {
		return seen
	}
	stack := []int{0}
	seen[0] = true
	for len(stack) > 0 {
		b := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, s := range c.Succs[b] {
			if !seen[s] {
				seen[s] = true
				stack = append(stack, s)
			}
		}
	}
	return seen
}

// ReversePostorder returns the reachable blocks in reverse postorder of a
// depth-first walk from the entry — the iteration order under which a
// forward dataflow problem converges fastest.
func (c *CFG) ReversePostorder() []int {
	n := len(c.Succs)
	seen := make([]bool, n)
	post := make([]int, 0, n)
	var dfs func(int)
	dfs = func(b int) {
		seen[b] = true
		for _, s := range c.Succs[b] {
			if !seen[s] {
				dfs(s)
			}
		}
		post = append(post, b)
	}
	if n > 0 {
		dfs(0)
	}
	for i, j := 0, len(post)-1; i < j; i, j = i+1, j-1 {
		post[i], post[j] = post[j], post[i]
	}
	return post
}
