// Package transval is the translation validator for the compiled
// execution tier: a per-function static equivalence checker that proves
// the closure-chain program internal/vm/compile lowers a committed
// ir.Module into is a faithful translation of that module.
//
// The compiler is self-certifying — lowering emits a Certificate
// restating every derived decision (source-instruction spans and fusion
// kinds per pc, resolved branch-target pcs, call continuations and callee
// bindings, folded constants, dead-intermediate elisions, and the
// per-run k/net/maxDip/cum budget tables). This package re-derives each
// claim independently from the IR — with its own span walk, the shared
// analysis liveness instance for elision proofs, a fresh vm.Layout for
// folded addresses, and an instruction-exact recount of every budget
// table — and reports any disagreement as an error diagnostic:
//
//	CLX123  branch map drift (target pc, block start, call continuation)
//	CLX124  illegal superinstruction (pattern, partition, live elision)
//	CLX125  folded constant drift
//	CLX126  callee binding drift (extends the verifier's CLX122 to a
//	        full name-vs-index-vs-binding check)
//	CLX127  budget table drift (hang verdicts are certified, not tested)
//
// Where the differential suites and the cross-backend sentinel prove
// equivalence only on the inputs a campaign happens to execute, a
// certificate covers every path of every compiled function before the
// first exec — which is why -backend=compiled refuses to run an
// uncertified module unless -transval=off.
package transval

import (
	"fmt"

	"closurex/internal/analysis"
	"closurex/internal/ir"
	"closurex/internal/vm"
	"closurex/internal/vm/compile"
)

// passName labels every diagnostic this package emits.
const passName = "transval"

// Check compiles the module (cached, exactly as backend execution would)
// and validates the emitted certificate against it. An empty result is a
// certification: every compiled function is a proven translation.
func Check(m *ir.Module) analysis.Diagnostics {
	cert, err := compile.CertFor(m)
	if err != nil {
		return analysis.Diagnostics{{
			ID: analysis.IDIllegalFusion, Sev: analysis.SevError, Pass: passName,
			Block: -1, Instr: -1,
			Msg: fmt.Sprintf("module failed to compile: %v", err),
		}}
	}
	return CheckCert(m, cert)
}

// CheckCert validates an explicit certificate against the module. Tests
// corrupt cloned certificates and hand them here to prove each defect
// class is caught by its exact diagnostic.
func CheckCert(m *ir.Module, cert *compile.Certificate) analysis.Diagnostics {
	var ds analysis.Diagnostics
	if len(cert.Funcs) != len(m.Funcs) {
		ds = append(ds, modDiag(analysis.IDBranchMapDrift,
			fmt.Sprintf("certificate covers %d function(s), module has %d", len(cert.Funcs), len(m.Funcs))))
		return ds
	}
	lay := vm.NewLayout(m)
	for i, f := range m.Funcs {
		fc := cert.Funcs[i]
		if fc == nil || fc.Name != f.Name {
			got := "<nil>"
			if fc != nil {
				got = fc.Name
			}
			ds = append(ds, modDiag(analysis.IDBranchMapDrift,
				fmt.Sprintf("certificate function %d is %q, module has %q", i, got, f.Name)))
			continue
		}
		ds = append(ds, checkFunc(m, f, fc, lay)...)
	}
	return ds
}

// Stats summarizes a certificate for reporting: how much was certified
// and how aggressively the lowering optimized.
type Stats struct {
	Funcs  int // certified functions
	PCs    int // compiled ops
	Fused  int // superinstruction elements (≥2 source instructions)
	Elided int // dead-intermediate writes skipped
	Runs   int // straight-line runs with certified budget tables
}

// Summarize tallies a certificate.
func Summarize(c *compile.Certificate) Stats {
	var s Stats
	s.Funcs = len(c.Funcs)
	for _, fc := range c.Funcs {
		s.PCs += fc.NumPCs
		s.Runs += len(fc.Runs)
		for i := range fc.Elems {
			if fc.Elems[i].N >= 2 {
				s.Fused++
			}
			if fc.Elems[i].InterElided {
				s.Elided++
			}
		}
	}
	return s
}

func modDiag(id, msg string) analysis.Diagnostic {
	return analysis.Diagnostic{ID: id, Sev: analysis.SevError, Pass: passName, Block: -1, Instr: -1, Msg: msg}
}

// diag locates a finding at an element's first covered instruction.
func diag(id string, f *ir.Func, ec *compile.ElemCert, msg string) analysis.Diagnostic {
	d := analysis.Diagnostic{
		ID: id, Sev: analysis.SevError, Pass: passName,
		Func: f.Name, Block: ec.Bi, Instr: ec.Ii, Msg: msg,
	}
	if ec.Bi >= 0 && ec.Bi < len(f.Blocks) && ec.Ii >= 0 && ec.Ii < len(f.Blocks[ec.Bi].Instrs) {
		d.Line = f.Blocks[ec.Bi].Instrs[ec.Ii].Pos
	}
	return d
}

func isCmp(b ir.BinOp) bool { return b >= ir.Eq && b <= ir.Uge }
func isAddr(o ir.Op) bool   { return o == ir.OpFrameAddr || o == ir.OpGlobalAddr }
func isAccess(o ir.Op) bool { return o == ir.OpLoad || o == ir.OpStore }
func isPair(k compile.CertKind) bool {
	return k >= compile.CKCmpBr && k <= compile.CKConstStore
}

// pairShape validates a two-instruction fusion pattern starting at in
// (the pair's first instruction) for pair kind k.
func pairShape(k compile.CertKind, in, next *ir.Instr) error {
	switch k {
	case compile.CKCmpBr:
		if in.Op != ir.OpBin || !isCmp(in.Bin) || next.Op != ir.OpCondBr || next.A != in.Dst {
			return fmt.Errorf("cmp+br span is not compare followed by its conditional branch")
		}
	case compile.CKConstBin:
		if in.Op != ir.OpConst || next.Op != ir.OpBin || (next.A == in.Dst) == (next.B == in.Dst) {
			return fmt.Errorf("const+bin span is not a constant consumed on exactly one side of a binary op")
		}
	case compile.CKLoadAnd:
		if in.Op != ir.OpLoad || next.Op != ir.OpBin || next.Bin != ir.And ||
			(next.A != in.Dst && next.B != in.Dst) {
			return fmt.Errorf("load+and span is not a load masked by the following And")
		}
	case compile.CKSanAccess:
		if in.Op != ir.OpSanCheck || !isAccess(next.Op) {
			return fmt.Errorf("san+access span is not a shadow check guarding a load/store")
		}
	case compile.CKAddrLoad:
		if !isAddr(in.Op) || next.Op != ir.OpLoad || next.A != in.Dst {
			return fmt.Errorf("addr+load span is not an address materialization consumed by the load")
		}
	case compile.CKAddrStore:
		if !isAddr(in.Op) || next.Op != ir.OpStore || next.A != in.Dst {
			return fmt.Errorf("addr+store span is not an address materialization consumed by the store")
		}
	case compile.CKConstStore:
		if in.Op != ir.OpConst || next.Op != ir.OpStore || (next.A != in.Dst && next.B != in.Dst) {
			return fmt.Errorf("const+store span is not a constant consumed by the store")
		}
	default:
		return fmt.Errorf("kind %v is not a fusion pair", k)
	}
	return nil
}

// shapeN validates the element's kind against the instructions it claims
// to cover and returns the span length. The cursor (b, ii) is the
// checker's own; the element's Bi/Ii were already matched against it.
func shapeN(b *ir.Block, ii int, ec *compile.ElemCert) (int, error) {
	need := func(n int) error {
		if ii+n > len(b.Instrs) {
			return fmt.Errorf("span of %d overruns block (%d instrs, start %d)", n, len(b.Instrs), ii)
		}
		return nil
	}
	switch ec.Kind {
	case compile.CKFellOff:
		return 0, nil // block-end condition checked by the caller
	case compile.CKSingle:
		return 1, need(1)
	case compile.CKCovX:
		if err := need(2); err != nil {
			return 0, err
		}
		if b.Instrs[ii].Op != ir.OpCov || b.Instrs[ii+1].Op == ir.OpCov {
			return 0, fmt.Errorf("cov+single span is not a probe followed by a non-probe")
		}
		return 2, nil
	case compile.CKCovPair:
		if err := need(3); err != nil {
			return 0, err
		}
		if b.Instrs[ii].Op != ir.OpCov || !isPair(ec.Sub) {
			return 0, fmt.Errorf("cov+pair span is not a probe followed by a fusion pair")
		}
		if err := pairShape(ec.Sub, &b.Instrs[ii+1], &b.Instrs[ii+2]); err != nil {
			return 0, err
		}
		return 3, nil
	default:
		if !isPair(ec.Kind) {
			return 0, fmt.Errorf("unknown element kind %d", ec.Kind)
		}
		if err := need(2); err != nil {
			return 0, err
		}
		if err := pairShape(ec.Kind, &b.Instrs[ii], &b.Instrs[ii+1]); err != nil {
			return 0, err
		}
		return 2, nil
	}
}

// checkFunc runs every obligation against one function. Obligation (b)
// — the span partition — gates the rest: targets, folds, callees, elision
// proofs and budget recounts all index instructions through the spans, so
// a function whose partition fails is reported and skipped.
func checkFunc(m *ir.Module, f *ir.Func, fc *compile.FuncCert, lay *vm.Layout) analysis.Diagnostics {
	var ds analysis.Diagnostics

	// (b) Re-derive the span partition: every element sits exactly where
	// the cursor expects, matches a legal pattern, and the elements of a
	// block concatenate to cover its instructions exactly once, with the
	// synthetic fell-off op present iff the block is empty/unterminated.
	blockStart := make([]int, 0, len(f.Blocks))
	bi, ii := 0, 0
	for pc := range fc.Elems {
		ec := &fc.Elems[pc]
		if bi >= len(f.Blocks) {
			ds = append(ds, diag(analysis.IDIllegalFusion, f, ec,
				fmt.Sprintf("pc %d: elements continue past the last block", pc)))
			return ds
		}
		b := f.Blocks[bi]
		if ii == 0 {
			blockStart = append(blockStart, pc)
		}
		if ec.Bi != bi || ec.Ii != ii {
			ds = append(ds, diag(analysis.IDIllegalFusion, f, ec,
				fmt.Sprintf("pc %d: span starts at b%d#%d, partition cursor is at b%d#%d", pc, ec.Bi, ec.Ii, bi, ii)))
			return ds
		}
		n, err := shapeN(b, ii, ec)
		if err == nil && ec.N != n {
			err = fmt.Errorf("claims %d source instruction(s), pattern covers %d", ec.N, n)
		}
		if err == nil && ec.Kind == compile.CKFellOff {
			if ii != len(b.Instrs) {
				err = fmt.Errorf("fell-off op before block end (#%d of %d)", ii, len(b.Instrs))
			} else if n := len(b.Instrs); n > 0 && b.Instrs[n-1].IsTerminator() {
				err = fmt.Errorf("fell-off op on a terminated block")
			}
		}
		if err != nil {
			ds = append(ds, diag(analysis.IDIllegalFusion, f, ec, fmt.Sprintf("pc %d: %v", pc, err)))
			return ds
		}
		ii += n
		switch {
		case ec.Kind == compile.CKFellOff:
			bi, ii = bi+1, 0
		case ii == len(b.Instrs):
			if len(b.Instrs) > 0 && b.Instrs[len(b.Instrs)-1].IsTerminator() {
				bi, ii = bi+1, 0
			}
			// Otherwise the block is unterminated: the next element must
			// be the fell-off op (any other kind fails shapeN at ii ==
			// len(b.Instrs)).
		}
	}
	if bi != len(f.Blocks) {
		ds = append(ds, modFnDiag(analysis.IDIllegalFusion, f,
			fmt.Sprintf("elements cover %d of %d blocks", bi, len(f.Blocks))))
		return ds
	}

	// (a) Branch map: block starts are exactly the concatenation offsets,
	// every branch target resolved to its block's start pc, and every call
	// continues at pc+1.
	if fc.NumPCs != len(fc.Elems) {
		ds = append(ds, modFnDiag(analysis.IDBranchMapDrift, f,
			fmt.Sprintf("certificate claims %d pcs, has %d elements", fc.NumPCs, len(fc.Elems))))
	}
	if len(fc.BlockStart) != len(blockStart) {
		ds = append(ds, modFnDiag(analysis.IDBranchMapDrift, f,
			fmt.Sprintf("certificate claims %d block starts, derivation has %d", len(fc.BlockStart), len(blockStart))))
	} else {
		for b := range blockStart {
			if fc.BlockStart[b] != blockStart[b] {
				ds = append(ds, modFnDiag(analysis.IDBranchMapDrift, f,
					fmt.Sprintf("block %d starts at pc %d, certificate claims %d", b, blockStart[b], fc.BlockStart[b])))
			}
		}
	}
	for pc := range fc.Elems {
		ec := &fc.Elems[pc]
		last := lastInstr(f, ec)
		var want []int
		if last != nil && (last.Op == ir.OpBr || last.Op == ir.OpCondBr) {
			ts := last.Targets[:1]
			if last.Op == ir.OpCondBr {
				ts = last.Targets[:2]
			}
			for _, t := range ts {
				if t < 0 || t >= len(blockStart) {
					ds = append(ds, diag(analysis.IDBranchMapDrift, f, ec,
						fmt.Sprintf("pc %d: branch target block %d out of range", pc, t)))
					continue
				}
				want = append(want, blockStart[t])
			}
		}
		if !intsEqual(ec.Targets, want) {
			ds = append(ds, diag(analysis.IDBranchMapDrift, f, ec,
				fmt.Sprintf("pc %d: resolved targets %v, re-derivation gives %v", pc, ec.Targets, want)))
		}
		wantNext := -1
		if last != nil && last.Op == ir.OpCall {
			wantNext = pc + 1
		}
		if ec.Next != wantNext {
			ds = append(ds, diag(analysis.IDBranchMapDrift, f, ec,
				fmt.Sprintf("pc %d: call continuation %d, re-derivation gives %d", pc, ec.Next, wantNext)))
		}
	}

	// (d) Callee bindings: the compiled binding, the IR name and the
	// cached CalleeIdx must all resolve to the same thing.
	for pc := range fc.Elems {
		ec := &fc.Elems[pc]
		last := lastInstr(f, ec)
		if last == nil || last.Op != ir.OpCall {
			if ec.Callee != compile.CalleeNone {
				ds = append(ds, diag(analysis.IDCalleeBindDrift, f, ec,
					fmt.Sprintf("pc %d: non-call element carries a callee binding", pc)))
			}
			continue
		}
		ds = append(ds, checkCallee(m, f, ec, pc, last)...)
	}

	// (c) Folded constants re-evaluate from the IR operands.
	for pc := range fc.Elems {
		ec := &fc.Elems[pc]
		want := expectedFolds(f, ec, lay)
		if !foldsEqual(ec.Folds, want) {
			ds = append(ds, diag(analysis.IDFoldDrift, f, ec,
				fmt.Sprintf("pc %d: captured folds %v, re-evaluation gives %v", pc, foldStr(ec.Folds), foldStr(want))))
		}
	}

	// (b, continued) Elision claims: each skipped intermediate write must
	// name the pair's defined register, on a pattern whose closure never
	// reads it, and the register must be provably dead after the pair —
	// proven with this package's liveness instance, not the compiler's.
	var lv *analysis.Liveness
	for pc := range fc.Elems {
		ec := &fc.Elems[pc]
		if !ec.InterElided {
			continue
		}
		if lv == nil {
			lv = analysis.ComputeLiveness(analysis.BuildCFG(f))
		}
		if err := checkElision(f, lv, ec); err != nil {
			ds = append(ds, diag(analysis.IDIllegalFusion, f, ec,
				fmt.Sprintf("pc %d: unprovable elision: %v", pc, err)))
		}
	}

	// (e) Budget tables: recount every run with the interpreter's exact
	// per-instruction timing and compare field for field.
	ds = append(ds, checkRuns(f, fc, blockStart)...)
	return ds
}

func modFnDiag(id string, f *ir.Func, msg string) analysis.Diagnostic {
	return analysis.Diagnostic{ID: id, Sev: analysis.SevError, Pass: passName,
		Func: f.Name, Block: -1, Instr: -1, Msg: msg}
}

// lastInstr returns the last source instruction an element covers, or nil
// for the fell-off op.
func lastInstr(f *ir.Func, ec *compile.ElemCert) *ir.Instr {
	if ec.N == 0 {
		return nil
	}
	return &f.Blocks[ec.Bi].Instrs[ec.Ii+ec.N-1]
}

func intsEqual(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func foldsEqual(a, b []compile.Fold) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func foldStr(fs []compile.Fold) string {
	if len(fs) == 0 {
		return "[]"
	}
	s := "["
	for i, fo := range fs {
		if i > 0 {
			s += " "
		}
		s += fmt.Sprintf("%v(%d)=%d", fo.Kind, fo.Arg, fo.Val)
	}
	return s + "]"
}

// checkCallee is the full CLX122 extension: name resolution (module
// function first, builtin second — the interpreter's order), the compiled
// binding, and the cached CalleeIdx must agree.
func checkCallee(m *ir.Module, f *ir.Func, ec *compile.ElemCert, pc int, call *ir.Instr) analysis.Diagnostics {
	var ds analysis.Diagnostics
	bad := func(msg string) {
		ds = append(ds, diag(analysis.IDCalleeBindDrift, f, ec, fmt.Sprintf("pc %d: %s", pc, msg)))
	}
	name := call.Callee
	if fi := m.FuncIndex(name); fi >= 0 {
		if ec.Callee != compile.CalleeFunc || ec.CalleeIdx != fi {
			bad(fmt.Sprintf("callee %q is module function %d, compiled binding is (%d, %d)", name, fi, ec.Callee, ec.CalleeIdx))
		}
		if call.CalleeIdx != 0 && call.CalleeIdx != fi+1 {
			bad(fmt.Sprintf("callee %q is module function %d, cached CalleeIdx is %d", name, fi, call.CalleeIdx))
		}
		return ds
	}
	if slot := vm.BuiltinIndex(name); slot >= 0 {
		if ec.Callee != compile.CalleeBuiltin || ec.CalleeIdx != slot {
			bad(fmt.Sprintf("callee %q is builtin slot %d, compiled binding is (%d, %d)", name, slot, ec.Callee, ec.CalleeIdx))
		}
		if call.CalleeIdx != 0 && call.CalleeIdx != -(slot+1) {
			bad(fmt.Sprintf("callee %q is builtin slot %d, cached CalleeIdx is %d", name, slot, call.CalleeIdx))
		}
		return ds
	}
	if ec.Callee != compile.CalleeUnknown {
		bad(fmt.Sprintf("callee %q resolves to nothing, compiled binding is (%d, %d)", name, ec.Callee, ec.CalleeIdx))
	}
	if call.CalleeIdx != 0 {
		bad(fmt.Sprintf("callee %q resolves to nothing, cached CalleeIdx is %d", name, call.CalleeIdx))
	}
	return ds
}

// expectedFolds re-derives the constants the element's closure should
// have captured, in emission order.
func expectedFolds(f *ir.Func, ec *compile.ElemCert, lay *vm.Layout) []compile.Fold {
	b := f.Blocks[ec.Bi]
	kind := ec.Kind
	ii := ec.Ii
	if kind == compile.CKCovX {
		kind, ii = compile.CKSingle, ii+1
	} else if kind == compile.CKCovPair {
		kind, ii = ec.Sub, ii+1
	}
	switch kind {
	case compile.CKSingle:
		in := &b.Instrs[ii]
		if in.Op == ir.OpGlobalAddr && in.Imm >= 0 && int(in.Imm) < len(lay.GlobalAddr) {
			return []compile.Fold{{Kind: compile.FoldGlobalAddr, Arg: in.Imm, Val: int64(lay.GlobalAddr[in.Imm])}}
		}
	case compile.CKConstBin:
		c, bin := &b.Instrs[ii], &b.Instrs[ii+1]
		out := []compile.Fold{{Kind: compile.FoldImm, Arg: c.Imm, Val: c.Imm}}
		if bin.A != c.Dst { // constant on the right operand
			switch bin.Bin {
			case ir.Shl, ir.Shr:
				out = append(out, compile.Fold{Kind: compile.FoldShiftMask, Arg: c.Imm, Val: int64(uint64(c.Imm) & 63)})
			case ir.Div, ir.Rem:
				switch c.Imm {
				case 0:
					out = append(out, compile.Fold{Kind: compile.FoldDivZero, Arg: 0, Val: 0})
				case -1:
					out = append(out, compile.Fold{Kind: compile.FoldDivNegOne, Arg: -1, Val: -1})
				}
			}
		}
		return out
	case compile.CKConstStore:
		c := &b.Instrs[ii]
		return []compile.Fold{{Kind: compile.FoldImm, Arg: c.Imm, Val: c.Imm}}
	case compile.CKAddrLoad, compile.CKAddrStore:
		ain, acc := &b.Instrs[ii], &b.Instrs[ii+1]
		if ain.Op == ir.OpGlobalAddr && ain.Imm >= 0 && int(ain.Imm) < len(lay.GlobalAddr) {
			base := int64(lay.GlobalAddr[ain.Imm])
			return []compile.Fold{
				{Kind: compile.FoldGlobalAddr, Arg: ain.Imm, Val: base},
				{Kind: compile.FoldAbsAddr, Arg: acc.Imm, Val: int64(uint64(base + acc.Imm))},
			}
		}
	}
	return nil
}

// checkElision proves one dead-intermediate claim. The pair's first
// instruction defines InterReg; the claim is sound iff the pattern's
// closure internalizes every in-pair read of that register AND no later
// use can observe it: either the pair's second instruction redefines it,
// or it is dead after the pair on every path.
func checkElision(f *ir.Func, lv *analysis.Liveness, ec *compile.ElemCert) error {
	kind, ii := ec.Kind, ec.Ii
	if kind == compile.CKCovPair {
		kind, ii = ec.Sub, ii+1
	}
	b := f.Blocks[ec.Bi]
	switch kind {
	case compile.CKCmpBr, compile.CKConstBin, compile.CKLoadAnd, compile.CKAddrLoad, compile.CKAddrStore:
	default:
		return fmt.Errorf("pattern %v may not elide its intermediate", kind)
	}
	first, second := &b.Instrs[ii], &b.Instrs[ii+1]
	r := analysis.InstrDef(first)
	if r < 0 || ec.InterReg != r {
		return fmt.Errorf("claimed register r%d is not the pair's intermediate (r%d)", ec.InterReg, r)
	}
	if kind == compile.CKAddrStore && second.B == r {
		return fmt.Errorf("store value operand reads the elided address register r%d", r)
	}
	if analysis.InstrDef(second) == r {
		return nil // redefined inside the pair
	}
	lastIi := ec.Ii + ec.N - 1
	var buf []int
	for j := lastIi + 1; j < len(b.Instrs); j++ {
		in := &b.Instrs[j]
		buf = analysis.InstrUses(in, buf[:0])
		for _, u := range buf {
			if u == r {
				return fmt.Errorf("r%d read at b%d#%d after the pair", r, ec.Bi, j)
			}
		}
		if analysis.InstrDef(in) == r {
			return nil
		}
	}
	if r < f.NumRegs && lv.LiveOut[ec.Bi].Has(r) {
		return fmt.Errorf("r%d live out of b%d", r, ec.Bi)
	}
	return nil
}

// elemEndsRun mirrors the compiler's run boundary: the element is (or
// ends in) a call or block terminator.
func elemEndsRun(f *ir.Func, ec *compile.ElemCert) bool {
	if ec.Kind == compile.CKFellOff {
		return true
	}
	last := lastInstr(f, ec)
	return last.Op == ir.OpCall || last.IsTerminator()
}

// checkRuns recounts every straight-line run's budget table with the
// interpreter's exact timing — for source instruction number c (1-based),
// the timeout check sees budget − c + (sancheck compensations completed
// strictly before it) — and compares the certificate field for field.
func checkRuns(f *ir.Func, fc *compile.FuncCert, blockStart []int) analysis.Diagnostics {
	var ds analysis.Diagnostics
	type run struct {
		head           int
		k, net, maxDip int64
		n              int32
		srcBi, srcIi   int32
		cum            []int32
	}
	var runs []run
	for bi := range f.Blocks {
		end := len(fc.Elems)
		if bi+1 < len(blockStart) {
			end = blockStart[bi+1]
		}
		head := blockStart[bi]
		for head < end {
			r := run{head: head, srcBi: int32(fc.Elems[head].Bi), srcIi: int32(fc.Elems[head].Ii)}
			var c, sc, maxDip int64
			pc := head
			for {
				ec := &fc.Elems[pc]
				for j := 0; j < ec.N; j++ {
					in := &f.Blocks[ec.Bi].Instrs[ec.Ii+j]
					c++
					if dip := c - sc; dip > maxDip {
						maxDip = dip
					}
					if in.Op == ir.OpSanCheck {
						sc++
					}
				}
				r.cum = append(r.cum, int32(c))
				if elemEndsRun(f, &fc.Elems[pc]) || pc+1 >= end {
					break
				}
				pc++
			}
			r.k, r.net, r.maxDip = c, c-sc, maxDip
			r.n = int32(pc - head + 1)
			runs = append(runs, r)
			head = pc + 1
		}
	}
	if len(fc.Runs) != len(runs) {
		ds = append(ds, modFnDiag(analysis.IDBudgetDrift, f,
			fmt.Sprintf("certificate has %d run table(s), re-derivation has %d", len(fc.Runs), len(runs))))
		return ds
	}
	for i := range runs {
		got, want := &fc.Runs[i], &runs[i]
		if got.Head != want.head || got.K != want.k || got.Net != want.net ||
			got.MaxDip != want.maxDip || got.N != want.n ||
			got.SrcBi != want.srcBi || got.SrcIi != want.srcIi || !cumEqual(got.Cum, want.cum) {
			ec := &fc.Elems[want.head]
			ds = append(ds, diag(analysis.IDBudgetDrift, f, ec, fmt.Sprintf(
				"run at pc %d: certified (k=%d net=%d maxDip=%d n=%d src=b%d#%d cum=%v), recount gives (k=%d net=%d maxDip=%d n=%d src=b%d#%d cum=%v)",
				want.head, got.K, got.Net, got.MaxDip, got.N, got.SrcBi, got.SrcIi, got.Cum,
				want.k, want.net, want.maxDip, want.n, want.srcBi, want.srcIi, want.cum)))
		}
	}
	return ds
}

func cumEqual(a, b []int32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
