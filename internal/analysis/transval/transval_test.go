package transval_test

import (
	"bytes"
	"encoding/json"
	"testing"

	"closurex/internal/analysis"
	"closurex/internal/analysis/transval"
	"closurex/internal/ir"
	"closurex/internal/lower"
	"closurex/internal/passes"
	"closurex/internal/targets"
	"closurex/internal/vm"
	"closurex/internal/vm/compile"
)

// buildTarget runs the full pipeline (the module shape campaigns execute)
// so certification covers real fused, folded, instrumented output.
func buildTarget(t *testing.T, tg *targets.Target, sanitize bool) *ir.Module {
	t.Helper()
	m, err := lower.Compile(tg.Short+".c", tg.Source, vm.Builtins())
	if err != nil {
		t.Fatalf("%s: %v", tg.Name, err)
	}
	pm := passes.NewManager(vm.Builtins())
	pm.Add(passes.ClosureXPipeline(false)...)
	if sanitize {
		pm.Add(passes.SanitizerPass{})
	}
	pm.Add(passes.NewCoveragePass(1))
	if err := pm.Run(m); err != nil {
		t.Fatalf("%s: %v", tg.Name, err)
	}
	vm.ResolveModule(m)
	return m
}

// TestCertifyAllTargets is the acceptance gate: every benchmark target's
// compiled program — plain and sanitized — certifies cleanly, and the
// certificates are substantive (fusion and elision actually happened, so
// an always-accepting checker cannot hide behind trivial certificates).
func TestCertifyAllTargets(t *testing.T) {
	for _, sanitize := range []bool{false, true} {
		for _, tg := range targets.All() {
			m := buildTarget(t, tg, sanitize)
			if ds := transval.Check(m); len(ds) != 0 {
				t.Errorf("%s (sanitize=%v): uncertifiable:\n%s", tg.Short, sanitize, ds)
				continue
			}
			cert, err := compile.CertFor(m)
			if err != nil {
				t.Fatalf("%s: %v", tg.Short, err)
			}
			st := transval.Summarize(cert)
			if st.Funcs == 0 || st.PCs == 0 || st.Fused == 0 || st.Runs == 0 {
				t.Errorf("%s: degenerate certificate: %+v", tg.Short, st)
			}
		}
	}
}

// TestCertifyElidesIntermediates pins that the dead-intermediate elision
// actually fires on real targets (otherwise the CLX124 liveness proof is
// checking a claim nobody makes).
func TestCertifyElidesIntermediates(t *testing.T) {
	elided := 0
	for _, tg := range targets.All() {
		cert, err := compile.CertFor(buildTarget(t, tg, false))
		if err != nil {
			t.Fatalf("%s: %v", tg.Short, err)
		}
		elided += transval.Summarize(cert).Elided
	}
	if elided == 0 {
		t.Fatal("no compare+branch intermediate was elided across any target")
	}
}

// seededModule hand-assembles a module exercising every certified claim:
// a fused global-address load (two folds), a const+shift (pre-masked
// fold), a direct module call, and a compare+branch whose result is LIVE
// in a successor (so the compiler must not elide it), plus a second
// function whose compare result is dead (so it must elide it).
func seededModule() *ir.Module {
	m := ir.NewModule("seeded")
	m.AddGlobal(&ir.Global{Name: "g", Size: 8, Section: ir.SectionData})
	helper := &ir.Func{Name: "helper", NumParams: 1, NumRegs: 2, Blocks: []*ir.Block{
		{Instrs: []ir.Instr{
			{Op: ir.OpConst, Dst: 1, Imm: 1},
			{Op: ir.OpBin, Bin: ir.Add, Dst: 1, A: 0, B: 1},
			{Op: ir.OpRet, A: 1, Dst: -1},
		}},
	}}
	main := &ir.Func{Name: "main", NumParams: 0, NumRegs: 6, Blocks: []*ir.Block{
		{Instrs: []ir.Instr{
			{Op: ir.OpGlobalAddr, Dst: 0, Imm: 0},
			{Op: ir.OpLoad, Dst: 1, A: 0, Imm: 0, Size: 8},
			{Op: ir.OpConst, Dst: 2, Imm: 70}, // shift amount; masks to 6
			{Op: ir.OpBin, Bin: ir.Shr, Dst: 3, A: 1, B: 2},
			{Op: ir.OpCall, Dst: 4, Callee: "helper", Args: []int{3}},
			{Op: ir.OpBin, Bin: ir.Lt, Dst: 5, A: 4, B: 3},
			{Op: ir.OpCondBr, A: 5, Dst: -1, Targets: [2]int{1, 2}},
		}},
		{Instrs: []ir.Instr{{Op: ir.OpRet, A: 5, Dst: -1}}}, // r5 live here
		{Instrs: []ir.Instr{{Op: ir.OpRet, A: -1, Dst: -1}}},
	}}
	dead := &ir.Func{Name: "deadcmp", NumParams: 0, NumRegs: 2, Blocks: []*ir.Block{
		{Instrs: []ir.Instr{
			{Op: ir.OpConst, Dst: 0, Imm: 3},
			{Op: ir.OpBr, Dst: -1, Targets: [2]int{1, 0}},
		}},
		{Instrs: []ir.Instr{
			{Op: ir.OpBin, Bin: ir.Gt, Dst: 1, A: 0, B: 0},
			{Op: ir.OpCondBr, A: 1, Dst: -1, Targets: [2]int{2, 2}},
		}},
		{Instrs: []ir.Instr{{Op: ir.OpRet, A: -1, Dst: -1}}},
	}}
	for _, f := range []*ir.Func{helper, main, dead} {
		if err := m.AddFunc(f); err != nil {
			panic(err)
		}
	}
	return m
}

// findElem locates the first element satisfying pred, returning its
// function cert and pc.
func findElem(t *testing.T, c *compile.Certificate, pred func(*compile.ElemCert) bool) (*compile.FuncCert, int) {
	t.Helper()
	for _, fc := range c.Funcs {
		for pc := range fc.Elems {
			if pred(&fc.Elems[pc]) {
				return fc, pc
			}
		}
	}
	t.Fatal("no element matches the predicate")
	return nil, 0
}

// TestTransvalSeededDefects corrupts one certificate claim per defect
// class and asserts exactly the intended catalog ID fires — the compiled
// tier's analogue of the verifier's broken-modules suite.
func TestTransvalSeededDefects(t *testing.T) {
	m := seededModule()
	cert, err := compile.CertFor(m)
	if err != nil {
		t.Fatal(err)
	}
	if ds := transval.CheckCert(m, cert); len(ds) != 0 {
		t.Fatalf("pristine certificate rejected:\n%s", ds)
	}
	if st := transval.Summarize(cert); st.Elided == 0 {
		t.Fatal("seeded module's dead compare was not elided")
	}

	cases := []struct {
		name    string
		corrupt func(*compile.Certificate)
		want    string
	}{
		{"wrong branch index", func(c *compile.Certificate) {
			fc, pc := findElem(t, c, func(ec *compile.ElemCert) bool { return len(ec.Targets) == 2 })
			fc.Elems[pc].Targets[0]++
		}, analysis.IDBranchMapDrift},
		{"wrong call continuation", func(c *compile.Certificate) {
			fc, pc := findElem(t, c, func(ec *compile.ElemCert) bool { return ec.Next >= 0 })
			fc.Elems[pc].Next++
		}, analysis.IDBranchMapDrift},
		{"wrong folded shift mask", func(c *compile.Certificate) {
			fc, pc := findElem(t, c, func(ec *compile.ElemCert) bool {
				return len(ec.Folds) > 0 && ec.Folds[len(ec.Folds)-1].Kind == compile.FoldShiftMask
			})
			fc.Elems[pc].Folds[len(fc.Elems[pc].Folds)-1].Val = 70 // unmasked
		}, analysis.IDFoldDrift},
		{"wrong folded global address", func(c *compile.Certificate) {
			fc, pc := findElem(t, c, func(ec *compile.ElemCert) bool {
				return len(ec.Folds) > 0 && ec.Folds[0].Kind == compile.FoldGlobalAddr
			})
			fc.Elems[pc].Folds[0].Val += 8
		}, analysis.IDFoldDrift},
		{"live intermediate fused", func(c *compile.Certificate) {
			// main's compare result r5 is read by b1's ret: claiming its
			// write elided must be refuted by the checker's liveness.
			fc, pc := findElem(t, c, func(ec *compile.ElemCert) bool {
				return ec.Kind == compile.CKCmpBr && !ec.InterElided
			})
			fc.Elems[pc].InterElided = true
			fc.Elems[pc].InterReg = 5
		}, analysis.IDIllegalFusion},
		{"drifted budget k", func(c *compile.Certificate) {
			c.Funcs[1].Runs[0].K++ // main's first run
		}, analysis.IDBudgetDrift},
		{"drifted budget cum", func(c *compile.Certificate) {
			c.Funcs[1].Runs[0].Cum[0]++
		}, analysis.IDBudgetDrift},
		{"stale callee binding", func(c *compile.Certificate) {
			fc, pc := findElem(t, c, func(ec *compile.ElemCert) bool { return ec.Callee == compile.CalleeFunc })
			fc.Elems[pc].CalleeIdx++
		}, analysis.IDCalleeBindDrift},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			corrupted := cert.Clone()
			tc.corrupt(corrupted)
			ds := transval.CheckCert(m, corrupted)
			if len(ds) == 0 {
				t.Fatalf("defect not caught")
			}
			if ids := ds.IDs(); len(ids) != 1 || ids[0] != tc.want {
				t.Fatalf("defect caught by %v, want exactly [%s]:\n%s", ids, tc.want, ds)
			}
			for i := range ds {
				if ds[i].Sev != analysis.SevError {
					t.Fatalf("non-error severity: %s", ds[i])
				}
			}
		})
	}
}

// TestTransvalCloneIndependence: corrupting a cloned certificate must not
// poison the program cache's shared instance.
func TestTransvalCloneIndependence(t *testing.T) {
	m := seededModule()
	cert, err := compile.CertFor(m)
	if err != nil {
		t.Fatal(err)
	}
	clone := cert.Clone()
	for _, fc := range clone.Funcs {
		for pc := range fc.Elems {
			for i := range fc.Elems[pc].Targets {
				fc.Elems[pc].Targets[i] = -99
			}
			for i := range fc.Elems[pc].Folds {
				fc.Elems[pc].Folds[i].Val = -99
			}
		}
		for i := range fc.Runs {
			fc.Runs[i].K = -99
			for j := range fc.Runs[i].Cum {
				fc.Runs[i].Cum[j] = -99
			}
		}
	}
	if ds := transval.Check(m); len(ds) != 0 {
		t.Fatalf("cached certificate poisoned through a clone:\n%s", ds)
	}
}

// TestTransvalJSONStable pins the byte-stable, deterministically ordered
// transval diagnostics JSON the -transval-json flag emits.
func TestTransvalJSONStable(t *testing.T) {
	render := func() []byte {
		m := seededModule()
		cert, err := compile.CertFor(m)
		if err != nil {
			t.Fatal(err)
		}
		corrupted := cert.Clone()
		fc, pc := findElem(t, corrupted, func(ec *compile.ElemCert) bool { return len(ec.Targets) == 2 })
		fc.Elems[pc].Targets[0]++
		fc2, pc2 := findElem(t, corrupted, func(ec *compile.ElemCert) bool { return ec.Callee == compile.CalleeFunc })
		fc2.Elems[pc2].CalleeIdx++
		corrupted.Funcs[1].Runs[0].K++
		all := analysis.Diags{}
		all.Add("seeded.c", transval.CheckCert(m, corrupted))
		out, err := all.Flatten().JSON()
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	first := render()
	for i := 0; i < 3; i++ {
		if again := render(); !bytes.Equal(first, again) {
			t.Fatalf("transval JSON not byte-stable:\n%s\nvs\n%s", first, again)
		}
	}
	if first[len(first)-1] != '\n' {
		t.Fatal("transval JSON lacks trailing newline")
	}
	var rows []map[string]any
	if err := json.Unmarshal(first, &rows); err != nil {
		t.Fatalf("output not valid JSON: %v", err)
	}
	if len(rows) != 3 {
		t.Fatalf("decoded %d rows, want 3:\n%s", len(rows), first)
	}
	wantCodes := map[string]bool{"CLX123": true, "CLX126": true, "CLX127": true}
	for _, r := range rows {
		code, _ := r["code"].(string)
		if !wantCodes[code] {
			t.Fatalf("unexpected code %q in %v", code, r)
		}
		if r["file"] != "seeded.c" || r["pass"] != "transval" || r["severity"] != "error" {
			t.Fatalf("row fields wrong: %v", r)
		}
	}
}
