package analysis

import (
	"reflect"
	"testing"

	"closurex/internal/ir"
)

// loopFunc builds the canonical counting loop:
//
//	func f(p0) { b0: r1=0; br b1
//	             b1: r2 = r1 < p0; condbr r2 -> b2, b3
//	             b2: r3=1; r1 = r1+r3; br b1
//	             b3: r3=99 (dead); ret r1 }
func loopFunc() *ir.Func {
	return &ir.Func{Name: "f", NumParams: 1, NumRegs: 4, Blocks: []*ir.Block{
		{Instrs: []ir.Instr{
			{Op: ir.OpConst, Dst: 1, Imm: 0},
			{Op: ir.OpBr, Dst: -1, Targets: [2]int{1, 0}},
		}},
		{Instrs: []ir.Instr{
			{Op: ir.OpBin, Bin: ir.Lt, Dst: 2, A: 1, B: 0},
			{Op: ir.OpCondBr, A: 2, Dst: -1, Targets: [2]int{2, 3}},
		}},
		{Instrs: []ir.Instr{
			{Op: ir.OpConst, Dst: 3, Imm: 1},
			{Op: ir.OpBin, Bin: ir.Add, Dst: 1, A: 1, B: 3},
			{Op: ir.OpBr, Dst: -1, Targets: [2]int{1, 0}},
		}},
		{Instrs: []ir.Instr{
			{Op: ir.OpConst, Dst: 3, Imm: 99}, // dead: r3 never read afterwards
			{Op: ir.OpRet, A: 1, Dst: -1},
		}},
	}}
}

func TestBitSet(t *testing.T) {
	s := NewBitSet(130)
	for _, i := range []int{0, 63, 64, 129} {
		s.Set(i)
		if !s.Has(i) {
			t.Fatalf("Set(%d) then Has(%d) = false", i, i)
		}
	}
	if s.Count() != 4 {
		t.Fatalf("Count = %d, want 4", s.Count())
	}
	s.Clear(64)
	if s.Has(64) || s.Count() != 3 {
		t.Fatalf("Clear(64) left Has=%v Count=%d", s.Has(64), s.Count())
	}
	o := NewBitSet(130)
	o.Set(5)
	if !o.Union(s) {
		t.Fatal("Union with new elements reported no change")
	}
	if o.Union(s) {
		t.Fatal("idempotent Union reported change")
	}
	o.Intersect(s)
	if o.Has(5) || o.Count() != 3 {
		t.Fatalf("Intersect kept 5 or wrong count %d", o.Count())
	}
	c := o.Copy()
	c.Set(100)
	if o.Has(100) {
		t.Fatal("Copy aliases the original")
	}
	f := NewBitSet(70)
	f.Fill(70)
	if f.Count() != 70 {
		t.Fatalf("Fill(70) count = %d", f.Count())
	}
}

func TestCFGEdges(t *testing.T) {
	c := BuildCFG(loopFunc())
	wantSuccs := [][]int{{1}, {2, 3}, {1}, nil}
	if !reflect.DeepEqual(c.Succs, wantSuccs) {
		t.Fatalf("Succs = %v, want %v", c.Succs, wantSuccs)
	}
	wantPreds := [][]int{nil, {0, 2}, {1}, {1}}
	if !reflect.DeepEqual(c.Preds, wantPreds) {
		t.Fatalf("Preds = %v, want %v", c.Preds, wantPreds)
	}
	rpo := c.ReversePostorder()
	if len(rpo) != 4 || rpo[0] != 0 {
		t.Fatalf("RPO = %v, want entry first over 4 blocks", rpo)
	}
	pos := map[int]int{}
	for i, b := range rpo {
		pos[b] = i
	}
	if pos[1] > pos[2] || pos[1] > pos[3] {
		t.Fatalf("RPO %v orders the loop header after its body/exit", rpo)
	}
}

func TestCFGToleratesMalformedIR(t *testing.T) {
	f := &ir.Func{Name: "bad", NumRegs: 1, Blocks: []*ir.Block{
		{Instrs: []ir.Instr{{Op: ir.OpBr, Dst: -1, Targets: [2]int{7, 0}}}}, // out of range
		{Instrs: []ir.Instr{{Op: ir.OpConst, Dst: 0}}},                      // unterminated
		{Instrs: []ir.Instr{{Op: ir.OpCondBr, A: 0, Dst: -1, Targets: [2]int{1, 1}}}},
	}}
	c := BuildCFG(f)
	if len(c.Succs[0]) != 0 || len(c.Succs[1]) != 0 {
		t.Fatalf("malformed edges materialized: %v", c.Succs)
	}
	// CondBr with both arms equal contributes exactly one edge.
	if !reflect.DeepEqual(c.Succs[2], []int{1}) || !reflect.DeepEqual(c.Preds[1], []int{2}) {
		t.Fatalf("duplicate CondBr arms: succs=%v preds=%v", c.Succs[2], c.Preds[1])
	}
	reach := c.Reachable()
	if !reach[0] || reach[1] || reach[2] {
		t.Fatalf("reachability = %v, want only the entry", reach)
	}
}

func TestDominators(t *testing.T) {
	c := BuildCFG(loopFunc())
	d := Dominators(c)
	if want := []int{-1, 0, 1, 1}; !reflect.DeepEqual(d.IDom, want) {
		t.Fatalf("IDom = %v, want %v", d.IDom, want)
	}
	for _, b := range []int{0, 1, 2, 3} {
		if !d.Dominates(0, b) {
			t.Errorf("entry must dominate b%d", b)
		}
		if !d.Dominates(b, b) {
			t.Errorf("dominance must be reflexive at b%d", b)
		}
	}
	if !d.Dominates(1, 2) || !d.Dominates(1, 3) {
		t.Error("loop header must dominate body and exit")
	}
	if d.Dominates(2, 3) || d.Dominates(2, 1) || d.Dominates(3, 2) {
		t.Error("body/exit must not dominate siblings or the header")
	}
}

func TestDominatorsUnreachableBlock(t *testing.T) {
	f := loopFunc()
	f.Blocks = append(f.Blocks, &ir.Block{Instrs: []ir.Instr{
		{Op: ir.OpRet, A: -1, Dst: -1}, // nothing branches here
	}})
	d := Dominators(BuildCFG(f))
	if d.IDom[4] != -1 {
		t.Fatalf("unreachable block got IDom %d", d.IDom[4])
	}
	if d.Dominates(0, 4) || d.Dominates(4, 0) || d.Dominates(4, 4) {
		t.Fatal("unreachable blocks must not participate in dominance")
	}
}

func TestLiveness(t *testing.T) {
	c := BuildCFG(loopFunc())
	lv := ComputeLiveness(c)
	// The loop-carried registers p0 and r1 are live into the header...
	for _, r := range []int{0, 1} {
		if !lv.LiveIn[1].Has(r) {
			t.Errorf("r%d not live into the loop header", r)
		}
	}
	// ...and across the back edge.
	for _, r := range []int{0, 1} {
		if !lv.LiveOut[2].Has(r) {
			t.Errorf("r%d not live out of the loop body", r)
		}
	}
	// The comparison scratch register dies inside the header.
	if lv.LiveOut[3].Has(2) || lv.LiveIn[0].Has(2) {
		t.Error("r2 leaked out of the header")
	}
	// Nothing is live out of the exit block.
	if got := lv.LiveOut[3].Count(); got != 0 {
		t.Errorf("LiveOut[exit] has %d registers, want 0", got)
	}
}

func TestDeadStores(t *testing.T) {
	c := BuildCFG(loopFunc())
	lv := ComputeLiveness(c)
	if got, want := lv.DeadStores(c), [][2]int{{3, 0}}; !reflect.DeepEqual(got, want) {
		t.Fatalf("DeadStores = %v, want %v (the r3=99 in the exit block)", got, want)
	}
	// Calls are exempt even when their result register is never read.
	f := &ir.Func{Name: "g", NumRegs: 2, Blocks: []*ir.Block{
		{Instrs: []ir.Instr{
			{Op: ir.OpConst, Dst: 0, Imm: 8},
			{Op: ir.OpCall, Dst: 1, Callee: "closurex_malloc", Args: []int{0}},
			{Op: ir.OpRet, A: -1, Dst: -1},
		}},
	}}
	c2 := BuildCFG(f)
	if ds := ComputeLiveness(c2).DeadStores(c2); len(ds) != 0 {
		t.Fatalf("call with ignored result flagged as dead store: %v", ds)
	}
}

func TestReachingDefs(t *testing.T) {
	f := loopFunc()
	c := BuildCFG(f)
	rd := ComputeReachingDefs(c)
	// Sites: 0 = param p0, then textual order of defs.
	if rd.Sites[0] != (DefSite{Block: -1, Instr: -1, Reg: 0}) {
		t.Fatalf("site 0 = %+v, want the virtual param def", rd.Sites[0])
	}
	siteOf := func(block, instr int) int {
		for i, s := range rd.Sites {
			if s.Block == block && s.Instr == instr {
				return i
			}
		}
		t.Fatalf("no def site at b%d#%d", block, instr)
		return -1
	}
	init := siteOf(0, 0) // r1 = 0
	incr := siteOf(2, 1) // r1 = r1 + r3
	// Both defs of the induction register reach the loop header...
	for _, s := range []int{init, incr} {
		if !rd.In[1].Has(s) {
			t.Errorf("def site %d (%+v) does not reach the header", s, rd.Sites[s])
		}
	}
	// ...and the param def reaches every block.
	for b := 0; b < len(f.Blocks); b++ {
		if !rd.In[b].Has(0) {
			t.Errorf("param def does not reach b%d", b)
		}
	}
	// Inside the body, the increment kills the init def at the block exit.
	if rd.Out[2].Has(init) {
		t.Error("killed init def survives the loop body's exit")
	}
	if !rd.Out[2].Has(incr) {
		t.Error("the body's own def missing from its out set")
	}
}

// TestSolveForwardMust exercises the solver's must-analysis configuration
// (intersection meet, ⊤ interior init) directly on the loop: the definite-
// assignment instance must converge and prove the loop-carried register
// assigned at the header without being fooled by the back edge.
func TestSolveForwardMust(t *testing.T) {
	f := loopFunc()
	c := BuildCFG(f)
	a := computeAssigned(c)
	if !a.in[1].Has(1) {
		t.Error("r1 not definitely assigned at the loop header")
	}
	if !a.in[1].Has(0) {
		t.Error("param not definitely assigned at the loop header")
	}
	// r3 is assigned only inside the body, so at the header — reachable via
	// the entry edge that bypasses the body — it must NOT be definite.
	if a.in[1].Has(3) {
		t.Error("r3 wrongly proven assigned at the header (back-edge over-trust)")
	}
	if !a.in[2].Has(2) {
		t.Error("r2 (defined in the header) not definite in the body")
	}
}
