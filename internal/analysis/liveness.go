package analysis

import "closurex/internal/ir"

// Liveness is the classic backward may-analysis: LiveIn[b] holds the
// registers whose values may be read before being overwritten on some path
// starting at block b's entry; LiveOut[b] the same at its exit.
type Liveness struct {
	LiveIn, LiveOut []BitSet
}

// ComputeLiveness solves liveness for f over its CFG.
func ComputeLiveness(c *CFG) *Liveness {
	f := c.F
	n := len(f.Blocks)
	// Per-block gen (upward-exposed uses) and kill (defs) sets.
	gen := make([]BitSet, n)
	kill := make([]BitSet, n)
	var buf []int
	for bi, b := range f.Blocks {
		g := NewBitSet(f.NumRegs)
		k := NewBitSet(f.NumRegs)
		for ii := range b.Instrs {
			in := &b.Instrs[ii]
			buf = InstrUses(in, buf[:0])
			for _, r := range buf {
				if r >= 0 && r < f.NumRegs && !k.Has(r) {
					g.Set(r)
				}
			}
			if d := InstrDef(in); d >= 0 && d < f.NumRegs {
				k.Set(d)
			}
		}
		gen[bi], kill[bi] = g, k
	}

	sol := Solve(c, Problem{
		Dir:      Backward,
		NewValue: func() BitSet { return NewBitSet(f.NumRegs) },
		Boundary: func() BitSet { return NewBitSet(f.NumRegs) },
		Meet:     func(acc, nb BitSet) { acc.Union(nb) },
		Transfer: func(b int, out BitSet) BitSet {
			// liveIn = gen ∪ (liveOut − kill)
			in := out.Copy()
			for i := range in {
				in[i] = gen[b][i] | (out[i] &^ kill[b][i])
			}
			return in
		},
	})
	// Backward solution: In carries block-exit values, Out block-entry.
	return &Liveness{LiveIn: sol.Out, LiveOut: sol.In}
}

// DeadStores returns (block, instr) positions whose defined register is
// never subsequently read — a cheap consumer of the liveness instance used
// by tests and by pipeline-quality reporting. Calls are exempt (their
// side effects matter regardless of the ignored result register).
func (lv *Liveness) DeadStores(c *CFG) [][2]int {
	f := c.F
	var out [][2]int
	var buf []int
	for bi, b := range f.Blocks {
		live := lv.LiveOut[bi].Copy()
		// Walk backwards, maintaining liveness within the block.
		type rec struct{ instr, def int }
		var order []rec
		for ii := len(b.Instrs) - 1; ii >= 0; ii-- {
			in := &b.Instrs[ii]
			d := InstrDef(in)
			if d >= 0 && in.Op != ir.OpCall && !live.Has(d) {
				order = append(order, rec{ii, d})
			}
			if d >= 0 {
				live.Clear(d)
			}
			buf = InstrUses(in, buf[:0])
			for _, r := range buf {
				if r >= 0 && r < f.NumRegs {
					live.Set(r)
				}
			}
		}
		for i := len(order) - 1; i >= 0; i-- {
			out = append(out, [2]int{bi, order[i].instr})
		}
	}
	return out
}
