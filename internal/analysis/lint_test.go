package analysis

import (
	"reflect"
	"testing"

	"closurex/internal/ir"
)

// hookedModule hand-assembles a module shaped like ClosureX pipeline output:
// entry renamed to target_main, heap/file/exit traffic routed through the
// closurex_* wrappers, writable globals in closure_global_section, constants
// in .rodata, and every block carrying a unique coverage probe.
func hookedModule() *ir.Module {
	m := ir.NewModule("t")
	m.AddGlobal(&ir.Global{Name: "state", Size: 8, Section: ir.SectionClosure})
	m.AddGlobal(&ir.Global{Name: "tbl", Size: 16, Const: true, Section: ir.SectionRodata})
	f := &ir.Func{Name: TargetMain, NumParams: 0, NumRegs: 4, Blocks: []*ir.Block{
		{Instrs: []ir.Instr{
			{Op: ir.OpCov, Dst: -1, Imm: 11},
			{Op: ir.OpConst, Dst: 0, Imm: 8},
			{Op: ir.OpCall, Dst: 1, Callee: "closurex_malloc", Args: []int{0}},
			{Op: ir.OpCall, Dst: 2, Callee: "closurex_free", Args: []int{1}},
			{Op: ir.OpBr, Dst: -1, Targets: [2]int{1, 0}},
		}},
		{Instrs: []ir.Instr{
			{Op: ir.OpCov, Dst: -1, Imm: 22},
			{Op: ir.OpCall, Dst: 3, Callee: "closurex_exit", Args: []int{0}},
			{Op: ir.OpRet, A: -1, Dst: -1},
		}},
	}}
	if err := m.AddFunc(f); err != nil {
		panic(err)
	}
	return m
}

func TestLintCleanModule(t *testing.T) {
	if ds := Lint(hookedModule()); len(ds) != 0 {
		t.Fatalf("hooked module produced diagnostics:\n%s", ds)
	}
}

// TestLintSeededDefects seeds one defect per catalog lint and asserts each
// is caught by exactly the intended lint ID — no more, no less (the
// acceptance criterion for the restore-completeness catalog).
func TestLintSeededDefects(t *testing.T) {
	entry := func(m *ir.Module) *ir.Func { return m.Func(TargetMain) }
	cases := []struct {
		name   string
		breakM func(m *ir.Module)
		wantID string
	}{
		{
			name: "raw malloc survives HeapPass",
			breakM: func(m *ir.Module) {
				entry(m).Blocks[0].Instrs[2].Callee = "malloc"
			},
			wantID: IDRawHeapCall,
		},
		{
			name: "raw free survives HeapPass",
			breakM: func(m *ir.Module) {
				entry(m).Blocks[0].Instrs[3].Callee = "free"
			},
			wantID: IDRawHeapCall,
		},
		{
			name: "raw fopen survives FilePass",
			breakM: func(m *ir.Module) {
				entry(m).Blocks[0].Instrs[2].Callee = "fopen"
			},
			wantID: IDRawFileCall,
		},
		{
			name: "raw exit survives ExitPass",
			breakM: func(m *ir.Module) {
				entry(m).Blocks[1].Instrs[1].Callee = "exit"
			},
			wantID: IDRawExitCall,
		},
		{
			name: "writable global left outside closure_global_section",
			breakM: func(m *ir.Module) {
				m.Globals[0].Section = ir.SectionData
			},
			wantID: IDGlobalSection,
		},
		{
			name: "entry point never renamed",
			breakM: func(m *ir.Module) {
				if err := m.RenameFunc(TargetMain, "main"); err != nil {
					panic(err)
				}
			},
			wantID: IDMainNotHooked,
		},
		{
			name: "coverage probe IDs collide",
			breakM: func(m *ir.Module) {
				entry(m).Blocks[1].Instrs[0].Imm = 11 // same cell as b0's probe
			},
			wantID: IDCovCollision,
		},
		{
			name: "block stripped of its probe",
			breakM: func(m *ir.Module) {
				b := entry(m).Blocks[1]
				b.Instrs = b.Instrs[1:] // drop the OpCov, keep the block
			},
			wantID: IDProbeMissing,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			m := hookedModule()
			if ds := Lint(m); len(ds) != 0 {
				t.Fatalf("precondition: base module not clean:\n%s", ds)
			}
			tc.breakM(m)
			ds := Lint(m)
			if !ds.HasErrors() {
				t.Fatalf("lint missed the seeded defect")
			}
			if ids := ds.IDs(); !reflect.DeepEqual(ids, []string{tc.wantID}) {
				t.Fatalf("defect caught by %v, want exactly [%s]:\n%s", ids, tc.wantID, ds)
			}
			// Every diagnostic must blame the pass that owns the invariant.
			for _, d := range ds {
				if d.Pass == "" {
					t.Fatalf("diagnostic without a responsible pass: %s", d)
				}
			}
		})
	}
}

// TestLintShadowedLibcName: a target defining its own function named after a
// libc routine is the target's code, not an unhooked runtime call.
func TestLintShadowedLibcName(t *testing.T) {
	m := hookedModule()
	own := &ir.Func{Name: "free", NumParams: 1, NumRegs: 1, Blocks: []*ir.Block{
		{Instrs: []ir.Instr{
			{Op: ir.OpCov, Dst: -1, Imm: 33},
			{Op: ir.OpRet, A: -1, Dst: -1},
		}},
	}}
	if err := m.AddFunc(own); err != nil {
		t.Fatal(err)
	}
	m.Func(TargetMain).Blocks[0].Instrs[3].Callee = "free" // now a module call
	if ds := Lint(m); len(ds) != 0 {
		t.Fatalf("module-defined 'free' flagged as raw libc call:\n%s", ds)
	}
}

// TestLintSharedToleratesRawCalls: baseline builds keep raw heap/file/exit
// calls by design; the shared subset must not flag them but must still
// police the entry point and coverage geometry.
func TestLintSharedToleratesRawCalls(t *testing.T) {
	m := hookedModule()
	f := m.Func(TargetMain)
	f.Blocks[0].Instrs[2].Callee = "malloc"
	f.Blocks[0].Instrs[3].Callee = "free"
	f.Blocks[1].Instrs[1].Callee = "exit"
	m.Globals[0].Section = ir.SectionData
	if ds := LintShared(m); len(ds) != 0 {
		t.Fatalf("LintShared flagged baseline-legitimate state:\n%s", ds)
	}
	// ...but the shared invariants still hold.
	f.Blocks[1].Instrs[0].Imm = 11
	ds := LintShared(m)
	if ids := ds.IDs(); !reflect.DeepEqual(ids, []string{IDCovCollision}) {
		t.Fatalf("collision under LintShared caught by %v, want [%s]", ids, IDCovCollision)
	}
}

// TestLintUninstrumentedStaysQuiet: a module with zero probes is simply
// pre-coverage; CLX007 must not fire on every block.
func TestLintUninstrumentedStaysQuiet(t *testing.T) {
	m := hookedModule()
	for _, b := range m.Func(TargetMain).Blocks {
		out := b.Instrs[:0]
		for _, in := range b.Instrs {
			if in.Op != ir.OpCov {
				out = append(out, in)
			}
		}
		b.Instrs = out
	}
	if ds := Lint(m); len(ds) != 0 {
		t.Fatalf("uninstrumented module flagged:\n%s", ds)
	}
}

func TestLintCatalogCoversAllIDs(t *testing.T) {
	cat := LintCatalog()
	for _, id := range []string{IDRawHeapCall, IDRawFileCall, IDRawExitCall,
		IDGlobalSection, IDMainNotHooked, IDCovCollision, IDProbeMissing} {
		if cat[id] == "" {
			t.Errorf("lint catalog missing entry for %s", id)
		}
	}
	if len(cat) != 7 {
		t.Errorf("lint catalog has %d entries, want 7", len(cat))
	}
}

func TestCheckShortCircuitsOnBrokenStructure(t *testing.T) {
	m := hookedModule()
	// Both a structural defect and a lint defect; Check must surface only
	// the verifier findings so the root cause isn't drowned in noise.
	m.Func(TargetMain).Blocks[1].Instrs = m.Func(TargetMain).Blocks[1].Instrs[:2]
	m.Globals[0].Section = ir.SectionData
	builtins := map[string]bool{"closurex_malloc": true, "closurex_free": true, "closurex_exit": true}
	ds := Check(m, builtins)
	if !ds.HasErrors() {
		t.Fatal("Check missed the structural defect")
	}
	for _, d := range ds {
		if d.ID == IDGlobalSection {
			t.Fatalf("Check linted a structurally broken module:\n%s", ds)
		}
	}
}
