package analysis

import (
	"os"
	"regexp"
	"strings"
	"testing"
)

// The single-source diagnostic catalog and the README's "Full diagnostic
// catalog" table must stay in lockstep: every ID in one appears in the
// other with identical wording, so `closurex-lint -catalog` and the docs
// can never disagree about what a code means.
func TestCatalogMatchesREADMETable(t *testing.T) {
	data, err := os.ReadFile("../../README.md")
	if err != nil {
		t.Fatal(err)
	}
	re := regexp.MustCompile(`(?m)^\| (CLX\d{3}) \| (.+) \|$`)
	rows := map[string]string{}
	for _, m := range re.FindAllStringSubmatch(string(data), -1) {
		rows[m[1]] = strings.TrimSpace(m[2])
	}
	cat := Catalog()
	if len(rows) == 0 {
		t.Fatal("README has no diagnostic catalog table")
	}
	if len(rows) != len(cat) {
		t.Errorf("README table has %d rows, Catalog() has %d entries", len(rows), len(cat))
	}
	for id, want := range cat {
		got, ok := rows[id]
		if !ok {
			t.Errorf("%s in Catalog() but missing from the README table", id)
			continue
		}
		if got != want {
			t.Errorf("%s wording drifted:\n  catalog: %s\n  README : %s", id, want, got)
		}
	}
	for id := range rows {
		if _, ok := cat[id]; !ok {
			t.Errorf("%s in the README table but missing from Catalog()", id)
		}
	}
}

// Catalog() must contain every restore-completeness lint (the subset
// closurex-lint enumerates as "N lints clean") with identical wording.
func TestCatalogSupersetOfLintCatalog(t *testing.T) {
	cat := Catalog()
	for id, want := range LintCatalog() {
		got, ok := cat[id]
		if !ok {
			t.Errorf("lint %s missing from Catalog()", id)
			continue
		}
		if got != want {
			t.Errorf("%s wording differs between LintCatalog() and Catalog():\n  lint   : %s\n  catalog: %s", id, want, got)
		}
	}
}
