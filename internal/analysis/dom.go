package analysis

// DomTree is the dominator tree of a CFG, computed with the
// Cooper-Harvey-Kennedy iterative algorithm over reverse postorder ("A
// Simple, Fast Dominance Algorithm"). Unreachable blocks have no
// dominators (IDom -1) and dominate nothing.
type DomTree struct {
	// IDom[b] is b's immediate dominator, -1 for the entry block and for
	// unreachable blocks.
	IDom []int
	// rpoNum[b] is b's reverse-postorder number, -1 if unreachable.
	rpoNum []int
}

// Dominators computes the dominator tree of c.
func Dominators(c *CFG) *DomTree {
	n := len(c.Succs)
	t := &DomTree{
		IDom:   make([]int, n),
		rpoNum: make([]int, n),
	}
	for i := range t.IDom {
		t.IDom[i] = -1
		t.rpoNum[i] = -1
	}
	if n == 0 {
		return t
	}
	rpo := c.ReversePostorder()
	for i, b := range rpo {
		t.rpoNum[b] = i
	}
	t.IDom[0] = 0 // sentinel: entry's idom is itself during iteration
	for changed := true; changed; {
		changed = false
		for _, b := range rpo {
			if b == 0 {
				continue
			}
			newIdom := -1
			for _, p := range c.Preds[b] {
				if t.rpoNum[p] < 0 || t.IDom[p] < 0 {
					continue // unreachable or not yet processed
				}
				if newIdom < 0 {
					newIdom = p
				} else {
					newIdom = t.intersect(p, newIdom)
				}
			}
			if newIdom >= 0 && t.IDom[b] != newIdom {
				t.IDom[b] = newIdom
				changed = true
			}
		}
	}
	t.IDom[0] = -1 // restore the conventional root marker
	return t
}

func (t *DomTree) intersect(a, b int) int {
	for a != b {
		for t.rpoNum[a] > t.rpoNum[b] {
			a = t.IDom[a]
		}
		for t.rpoNum[b] > t.rpoNum[a] {
			b = t.IDom[b]
		}
	}
	return a
}

// Dominates reports whether block a dominates block b (reflexively: every
// block dominates itself). Unreachable blocks dominate nothing and are
// dominated by nothing.
func (t *DomTree) Dominates(a, b int) bool {
	if a < 0 || b < 0 || a >= len(t.IDom) || b >= len(t.IDom) {
		return false
	}
	if t.rpoNum[a] < 0 || t.rpoNum[b] < 0 {
		return false
	}
	for b != a && b != 0 {
		b = t.IDom[b]
		if b < 0 {
			return false
		}
	}
	return b == a
}
