package synth

// Plan derivation: candidate enumeration over the parsed signatures,
// type-driven argument planning, fact-driven ranking, shadow detection,
// and the closurex_init precondition set. Everything is computed from the
// pristine (un-instrumented) module so the facts describe the target as
// written, not the pipeline's rewrite of it.

import (
	"fmt"
	"sort"

	"closurex/internal/analysis"
	"closurex/internal/analysis/harnessaudit"
	"closurex/internal/analysis/interproc"
	"closurex/internal/ir"
	"closurex/internal/minc"
)

// Param kinds: how one argument position is fed from input bytes.
const (
	// KindByte decodes one header byte.
	KindByte = "byte"
	// KindInt decodes four header bytes little-endian.
	KindInt = "int"
	// KindBuf passes the payload buffer (ibuf + header).
	KindBuf = "buf"
	// KindLen decodes four header bytes and clamps into [0, payload].
	KindLen = "len"
	// KindScratch passes the address of a zeroed scratch int (out-params).
	KindScratch = "scratch"
)

// ParamPlan is one argument position's plan.
type ParamPlan struct {
	Name string `json:"name"`
	Type string `json:"type"`
	Kind string `json:"kind"`
	// Off is the header offset scalar kinds decode from (0 for buf/scratch).
	Off int `json:"off"`
	// Hint is the seed value pre-loaded at Off — an observed compare
	// witness for the parameter when the taint lattice saw one.
	Hint int64 `json:"hint"`
}

// width returns the header bytes the kind consumes.
func (p ParamPlan) width() int {
	switch p.Kind {
	case KindByte:
		return 1
	case KindInt, KindLen:
		return 4
	}
	return 0
}

// Arm is one dispatch arm of the synthesized target_main.
type Arm struct {
	Func      string      `json:"func"`
	Ret       string      `json:"ret"`
	Params    []ParamPlan `json:"params"`
	Score     int         `json:"score"`
	Reachable bool        `json:"reachable"`
	HdrBytes  int         `json:"hdr_bytes"`
}

// Skip records a CLX128 finding: a signature with no plan.
type Skip struct {
	Func   string `json:"func"`
	Reason string `json:"reason"`
}

// planData is the internal planning result emit/certify consume.
type planData struct {
	arms       []Arm
	preGlobals []string // scalar global names to pre-write in closurex_init
	hdr        int      // header bytes: 1 selector + widest arm's scalars
	bufCap     int
	entry      string
	functions  int
	skips      []Skip
	uncovered  []string
	shadowed   []string
}

// buildPlan derives the full plan plus its CLX128/129/131 diagnostics.
func buildPlan(target, file string, prog *minc.Program, facts *harnessaudit.Facts,
	ip *interproc.Result, m *ir.Module, opts Options) (*planData, analysis.Diagnostics) {

	pl := &planData{bufCap: opts.BufCap, entry: facts.Entry}
	var ds analysis.Diagnostics
	diag := func(id, fn, msg string) {
		sev := analysis.SevWarn
		ds = append(ds, analysis.Diagnostic{
			ID: id, File: file, Sev: sev, Pass: synthPass,
			Func: fn, Block: -1, Instr: -1, Msg: msg,
		})
	}

	type cand struct {
		arm      Arm
		shadowed bool
	}
	var cands []cand
	covered := map[string]bool{}
	var candidates []*minc.FuncDecl
	for _, f := range prog.Funcs {
		switch f.Name {
		case "main", analysis.TargetMain, "closurex_init":
			continue
		}
		candidates = append(candidates, f)
	}
	pl.functions = len(candidates)

	for _, f := range candidates {
		ff := facts.Funcs[f.Name]
		params, reason := planParams(f)
		if reason != "" {
			pl.skips = append(pl.skips, Skip{Func: f.Name, Reason: reason})
			diag(analysis.IDUnsynthesizable, f.Name,
				fmt.Sprintf("unsynthesizable signature %s: %s", signature(f), reason))
			continue
		}
		arm := Arm{Func: f.Name, Ret: f.Ret.String(), Params: params}
		if ff != nil {
			arm.Reachable = ff.Reachable
			arm.Score = scoreArm(ff, params)
			fillHints(ff, arm.Params)
		}
		cands = append(cands, cand{arm: arm, shadowed: isShadowed(f, ff)})
	}

	sort.SliceStable(cands, func(i, j int) bool {
		if cands[i].arm.Score != cands[j].arm.Score {
			return cands[i].arm.Score > cands[j].arm.Score
		}
		return cands[i].arm.Func < cands[j].arm.Func
	})

	// Shadowed arms re-cover input flow the manual harness already
	// provides; drop them unless they are all we have.
	var kept, shadowed []cand
	for _, c := range cands {
		if c.shadowed {
			shadowed = append(shadowed, c)
			pl.shadowed = append(pl.shadowed, c.arm.Func)
			diag(analysis.IDSynthShadowed, c.arm.Func,
				fmt.Sprintf("synthesized plan for %s is shadowed: the existing harness already passes input-tainted arguments in every parameter position", c.arm.Func))
		} else {
			kept = append(kept, c)
		}
	}
	if len(kept) == 0 {
		kept = shadowed
	}
	if len(kept) > opts.MaxArms {
		kept = kept[:opts.MaxArms]
	}
	for _, c := range kept {
		pl.arms = append(pl.arms, c.arm)
		covered[c.arm.Func] = true
	}
	sort.Strings(pl.shadowed)

	// Header layout: byte 0 selects the arm; each arm's scalars pack from
	// offset 1. The payload starts after the widest arm.
	maxScalar := 0
	for ai := range pl.arms {
		off := 1
		for pi := range pl.arms[ai].Params {
			p := &pl.arms[ai].Params[pi]
			if w := p.width(); w > 0 {
				p.Off = off
				off += w
			}
		}
		pl.arms[ai].HdrBytes = off - 1
		if pl.arms[ai].HdrBytes > maxScalar {
			maxScalar = pl.arms[ai].HdrBytes
		}
	}
	pl.hdr = 1 + maxScalar

	// CLX129: exported surface neither reachable from the entry nor picked
	// up by the plan.
	for _, f := range candidates {
		ff := facts.Funcs[f.Name]
		if ff != nil && !ff.Reachable && !covered[f.Name] {
			pl.uncovered = append(pl.uncovered, f.Name)
			diag(analysis.IDUncoveredSurface, f.Name,
				fmt.Sprintf("uncovered exported surface: %s (%d blocks) is unreachable from %s and not covered by the synthesized plan", f.Name, ff.Blocks, facts.Entry))
		}
	}
	sort.Strings(pl.uncovered)
	sort.Slice(pl.skips, func(i, j int) bool { return pl.skips[i].Func < pl.skips[j].Func })

	if len(pl.arms) > 0 {
		pl.preGlobals = preGlobals(prog, facts, ip, m, pl.arms)
	}
	return pl, ds
}

// planParams derives each parameter's plan, or a reason why none exists.
func planParams(f *minc.FuncDecl) ([]ParamPlan, string) {
	out := make([]ParamPlan, 0, len(f.Params))
	prevBuf := false
	for i, p := range f.Params {
		pp := ParamPlan{Name: p.Name, Type: p.Type.String()}
		t := p.Type
		switch {
		case t.Kind == minc.TChar:
			pp.Kind = KindByte
			prevBuf = false
		case t.Kind == minc.TInt && prevBuf:
			pp.Kind = KindLen
			prevBuf = false
		case t.Kind == minc.TInt:
			pp.Kind = KindInt
		case (t.Kind == minc.TPtr || t.Kind == minc.TArray) && t.Elem != nil && t.Elem.Kind == minc.TChar:
			pp.Kind = KindBuf
			prevBuf = true
		case t.Kind == minc.TPtr && t.Elem != nil && t.Elem.Kind == minc.TInt:
			pp.Kind = KindScratch
			prevBuf = false
		default:
			return nil, fmt.Sprintf("parameter %d (%s %s) has no input-byte plan", i, t, p.Name)
		}
		out = append(out, pp)
	}
	return out, ""
}

// scoreArm ranks candidates: prefer big, dead, and un-called surface, and
// functions that accept a payload buffer.
func scoreArm(ff *harnessaudit.FuncFacts, params []ParamPlan) int {
	score := ff.Blocks*2 + (ff.Blocks-ff.LiveBlocks)*4
	if !ff.Reachable {
		score += 1000
	}
	if !ff.CalledFromEntry {
		score += 200
	}
	for _, p := range params {
		if p.Kind == KindBuf {
			score += 100
			break
		}
	}
	return score
}

// fillHints seeds scalar parameters with an observed compare witness: the
// largest constant the function compares that parameter against, clamped
// to the decode width.
func fillHints(ff *harnessaudit.FuncFacts, params []ParamPlan) {
	for i := range params {
		p := &params[i]
		switch p.Kind {
		case KindByte, KindInt, KindLen:
		default:
			continue
		}
		if p.Kind == KindLen {
			p.Hint = 64 // sensible payload length before clamping
		}
		for _, c := range ff.ParamConsts[i] {
			if c < 0 {
				continue
			}
			if p.Kind == KindByte && c > 255 {
				continue
			}
			if c > int64(1)<<31 {
				continue
			}
			p.Hint = c
		}
	}
}

// isShadowed reports whether the manual harness already feeds
// input-tainted arguments in every parameter position at a direct entry
// call site — synthesizing that arm would re-cover explored flow.
func isShadowed(f *minc.FuncDecl, ff *harnessaudit.FuncFacts) bool {
	if ff == nil || !ff.CalledFromEntry || len(f.Params) == 0 {
		return false
	}
	if len(ff.EntryArgTaint) < len(f.Params) {
		return false
	}
	for i := range f.Params {
		if !ff.EntryArgTaint[i] {
			return false
		}
	}
	return true
}

// preGlobals computes the closurex_init precondition set: scalar globals
// the arms' transitive closure may read but provably never writes, that
// the original entry's closure initializes — without the pre-write the
// synthesized module would explore the uninitialized-state slice only.
func preGlobals(prog *minc.Program, facts *harnessaudit.Facts, ip *interproc.Result,
	m *ir.Module, arms []Arm) []string {

	roots := make([]string, 0, len(arms))
	for _, a := range arms {
		roots = append(roots, a.Func)
	}
	armClosure := ip.Graph.Reachable(roots...)
	entryClosure := ip.Graph.Reachable(facts.Entry)

	armTouch := map[int]bool{}
	armWrites := map[int]bool{}
	entryWrites := map[int]bool{}
	for _, f := range m.Funcs {
		inArm, inEntry := armClosure[f.Name], entryClosure[f.Name]
		if !inArm && !inEntry {
			continue
		}
		fr := ip.Funcs[f.Name]
		unknown := fr == nil || fr.Summary == nil || fr.Summary.Unknown
		if inArm {
			if unknown {
				return nil // cannot bound the arms' writes: no safe pre-set
			}
			for g := range fr.Summary.WritesGlobals {
				armWrites[g] = true
			}
			for _, b := range f.Blocks {
				for ii := range b.Instrs {
					if in := &b.Instrs[ii]; in.Op == ir.OpGlobalAddr {
						armTouch[int(in.Imm)] = true
					}
				}
			}
		}
		if inEntry && !unknown {
			for g := range fr.Summary.WritesGlobals {
				entryWrites[g] = true
			}
		}
	}

	scalar := map[string]bool{}
	for _, g := range prog.Globals {
		if g.Type.Kind == minc.TInt || g.Type.Kind == minc.TChar {
			scalar[g.Name] = true
		}
	}
	var out []string
	for gi, g := range m.Globals {
		if g.Const || !scalar[g.Name] {
			continue
		}
		if armTouch[gi] && !armWrites[gi] && entryWrites[gi] {
			out = append(out, g.Name)
		}
	}
	return out
}

// signature renders a FuncDecl header for diagnostics.
func signature(f *minc.FuncDecl) string {
	s := f.Ret.String() + " " + f.Name + "("
	for i, p := range f.Params {
		if i > 0 {
			s += ", "
		}
		s += p.Type.String() + " " + p.Name
	}
	if len(f.Params) == 0 {
		s += "void"
	}
	return s + ")"
}
