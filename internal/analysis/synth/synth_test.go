package synth_test

// The synthesizer's contract tests: every registered benchmark target
// yields a certified harness (the acceptance floor is three), synthesis
// is deterministic to the byte, the report JSON is pinned against an
// exact golden, and TargetFor wraps the result as a registrable auxiliary
// target with per-arm seeds.

import (
	"bytes"
	"strings"
	"testing"

	"closurex/internal/analysis"
	"closurex/internal/analysis/synth"
	"closurex/internal/targets"
)

// TestSynthAllBenchmarksCertify is the acceptance gate: synthesis plans at
// least one arm and certifies (zero CLX130) on every benchmark target, and
// at least three targets produce a certified harness.
func TestSynthAllBenchmarksCertify(t *testing.T) {
	certified := 0
	for _, tg := range targets.Benchmarks() {
		h, err := synth.Synthesize(tg.Name, tg.Short+".c", tg.Source, synth.Options{})
		if err != nil {
			t.Fatalf("%s: %v", tg.Name, err)
		}
		if n := h.Report.Codes[analysis.IDSynthCertFail]; n > 0 {
			t.Errorf("%s: %d CLX130 certification failure(s):\n%s", tg.Name, n, h.Diags.String())
			continue
		}
		if len(h.Report.Arms) == 0 {
			t.Errorf("%s: no dispatch arms planned", tg.Name)
			continue
		}
		if !h.Report.Certified {
			t.Errorf("%s: planned %d arm(s) but not certified:\n%s",
				tg.Name, len(h.Report.Arms), h.Diags.String())
			continue
		}
		certified++
	}
	if certified < 3 {
		t.Fatalf("certified harnesses for %d targets, acceptance floor is 3", certified)
	}
}

// TestSynthDeterministic: two independent runs over every benchmark target
// must agree byte for byte — in the rendered report JSON and in the
// emitted MinC source.
func TestSynthDeterministic(t *testing.T) {
	run := func() ([]byte, []string) {
		var reports []*synth.Report
		var sources []string
		for _, tg := range targets.Benchmarks() {
			h, err := synth.Synthesize(tg.Name, tg.Short+".c", tg.Source, synth.Options{})
			if err != nil {
				t.Fatalf("%s: %v", tg.Name, err)
			}
			reports = append(reports, h.Report)
			sources = append(sources, h.Source)
		}
		j, err := synth.ReportsJSON(reports)
		if err != nil {
			t.Fatalf("ReportsJSON: %v", err)
		}
		return j, sources
	}
	j1, s1 := run()
	j2, s2 := run()
	if !bytes.Equal(j1, j2) {
		t.Fatalf("report JSON diverged between identical runs:\n--- run 1 ---\n%s\n--- run 2 ---\n%s", j1, j2)
	}
	for i := range s1 {
		if s1[i] != s2[i] {
			t.Errorf("target %d: emitted source diverged between identical runs", i)
		}
	}
}

// pinnedSrc exercises every plan kind in one small target: a buf/len pair,
// a byte + int pair with compare-witness hints, a global precondition the
// entry writes, and a shadowed-free surface (neither helper is called).
const pinnedSrc = `
int magic;
int parse_rec(char *p, int n) {
	if (n < 4) return 0;
	if (p[0] == 'R' && p[1] == 'X') return magic;
	return 1;
}
int tag_of(char c, int mode) {
	if (mode == 9) return c + 1;
	return c;
}
int main(void) {
	int f = fopen("/input", "r");
	if (!f) return 0;
	magic = 1;
	char b[32];
	int n = fread(b, 1, 32, f);
	fclose(f);
	if (n > 0 && b[0] == 'z') return 7;
	return 0;
}
`

// pinnedJSON is the exact ReportsJSON rendering for pinnedSrc. The bytes
// are the -synth-json contract: field order, slice ordering, indentation
// and the trailing newline are all part of it. Update deliberately.
const pinnedJSON = `[
  {
    "target": "pinned",
    "entry": "main",
    "functions": 2,
    "arms": [
      {
        "func": "parse_rec",
        "ret": "int",
        "params": [
          {
            "name": "p",
            "type": "char*",
            "kind": "buf",
            "off": 0,
            "hint": 0
          },
          {
            "name": "n",
            "type": "int",
            "kind": "len",
            "off": 1,
            "hint": 4
          }
        ],
        "score": 1320,
        "reachable": false,
        "hdr_bytes": 4
      },
      {
        "func": "tag_of",
        "ret": "int",
        "params": [
          {
            "name": "c",
            "type": "char",
            "kind": "byte",
            "off": 1,
            "hint": 0
          },
          {
            "name": "mode",
            "type": "int",
            "kind": "int",
            "off": 2,
            "hint": 9
          }
        ],
        "score": 1208,
        "reachable": false,
        "hdr_bytes": 5
      }
    ],
    "pre_globals": [
      "magic"
    ],
    "hdr_bytes": 6,
    "buf_cap": 512,
    "certified": true,
    "source_lines": 42
  }
]
`

func TestSynthReportJSONPinnedBytes(t *testing.T) {
	h, err := synth.Synthesize("pinned", "pinned.c", pinnedSrc, synth.Options{})
	if err != nil {
		t.Fatalf("Synthesize: %v", err)
	}
	if len(h.Diags) != 0 {
		t.Fatalf("pinned fixture should synthesize cleanly, got:\n%s", h.Diags.String())
	}
	j, err := synth.ReportsJSON([]*synth.Report{h.Report})
	if err != nil {
		t.Fatalf("ReportsJSON: %v", err)
	}
	if string(j) != pinnedJSON {
		t.Fatalf("report JSON drifted from the pinned bytes:\n--- got ---\n%s\n--- want ---\n%s", j, pinnedJSON)
	}
	for _, want := range []string{
		"void closurex_init(void) {",
		"magic = 1;",
		"int sx_sel = sx_buf[0] % 2;",
		"sx_ret = parse_rec(sx_buf + 6, sx_a1);",
		"sx_ret = tag_of(sx_a0, sx_a1);",
	} {
		if !strings.Contains(h.Source, want) {
			t.Errorf("emitted source lacks %q:\n%s", want, h.Source)
		}
	}
}

// TestSynthTargetForShape pins the auxiliary-target wrapping: registry
// naming, Aux flag, MaxInputLen = BufCap, and one deterministic seed per
// arm whose first byte selects that arm.
func TestSynthTargetForShape(t *testing.T) {
	base := targets.Get("zlib")
	if base == nil {
		t.Fatalf("Get(zlib): not registered")
	}
	nt, h, err := synth.TargetFor(base, synth.Options{})
	if err != nil {
		t.Fatalf("TargetFor: %v", err)
	}
	if nt.Name != base.Name+"+synth" || nt.Short != base.Short+"_synth" {
		t.Fatalf("aux target named %s/%s, want %s+synth/%s_synth", nt.Name, nt.Short, base.Name, base.Short)
	}
	if !nt.Aux {
		t.Fatalf("synthesized target must be Aux")
	}
	if nt.MaxInputLen != synth.DefaultBufCap {
		t.Fatalf("MaxInputLen = %d, want %d", nt.MaxInputLen, synth.DefaultBufCap)
	}
	seeds := nt.Seeds()
	if len(seeds) != len(h.Report.Arms) {
		t.Fatalf("%d seeds for %d arms", len(seeds), len(h.Report.Arms))
	}
	for i, s := range seeds {
		if len(s) < h.Report.HdrBytes {
			t.Errorf("seed %d shorter than the %d-byte header", i, h.Report.HdrBytes)
			continue
		}
		if int(s[0])%len(h.Report.Arms) != i {
			t.Errorf("seed %d selector byte %d does not dispatch arm %d", i, s[0], i)
		}
	}
}
