package synth

// Certification: a synthesized harness earns registration only by
// round-tripping the exact pipeline hand-written harnesses go through —
// minc parse → lower → ClosureX pipeline → coverage → verifier + lint —
// plus two synth-specific obligations: the structural shape (closurex_init
// and target_main present) and an in-bounds proof from the sanitize
// interval domain for every memory access the emitter generated. Any
// failure is CLX130: by construction these are synthesizer bugs, never
// target properties, so the code is an error and trips every gate.
//
// The pipeline below intentionally mirrors core.InstrumentWith's ClosureX
// ordering (state-restoration passes, then coverage last, then callee
// resolution); synth cannot import core without a cycle through targets,
// so a core-side test pins the equivalence.

import (
	"fmt"

	"closurex/internal/analysis"
	"closurex/internal/analysis/harnessaudit"
	"closurex/internal/analysis/interproc"
	"closurex/internal/analysis/sanitize"
	"closurex/internal/ir"
	"closurex/internal/lower"
	"closurex/internal/passes"
	"closurex/internal/vm"
)

// certify builds and checks a synthesized source. It returns the
// instrumented module on success, and CLX130 diagnostics for every
// certification failure (module nil when the build itself failed).
func certify(target, file, src string) (*ir.Module, analysis.Diagnostics) {
	var ds analysis.Diagnostics
	fail := func(fn, msg string) {
		ds = append(ds, analysis.Diagnostic{
			ID: analysis.IDSynthCertFail, File: file, Sev: analysis.SevError,
			Pass: synthPass, Func: fn, Block: -1, Instr: -1,
			Msg: fmt.Sprintf("synthesized harness for %s failed certification: %s", target, msg),
		})
	}

	pristine, err := lower.Compile(file, src, vm.Builtins())
	if err != nil {
		fail("", fmt.Sprintf("build: %v", err))
		return nil, ds
	}
	vm.ResolveModule(pristine)

	// In-bounds proof on the pristine module: every load/store the
	// emitter generated (main + closurex_init) must be provable by the
	// sanitize interval domain. The original target's own functions are
	// exempt — their accesses are the target's business, guarded at
	// runtime by the sanitizer like any hand-written harness.
	for _, fn := range []string{"main", "closurex_init"} {
		f := pristine.Func(fn)
		if f == nil {
			fail(fn, fmt.Sprintf("emitted program lacks %s", fn))
			continue
		}
		provable := sanitize.Analyze(pristine, f)
		for bi, b := range f.Blocks {
			for ii := range b.Instrs {
				in := &b.Instrs[ii]
				if in.Op != ir.OpLoad && in.Op != ir.OpStore {
					continue
				}
				if !provable[sanitize.Access{Block: bi, Instr: ii}] {
					fail(fn, fmt.Sprintf("%s b%d i%d: emitted %v not provably in-bounds by the sanitize interval domain", fn, bi, ii, in.Op))
				}
			}
		}
	}
	if ds.HasErrors() {
		return nil, ds
	}

	mod := pristine.Clone()
	pm := passes.NewManager(vm.Builtins())
	pm.Add(passes.ClosureXPipeline(false)...)
	pm.Add(passes.NewCoveragePass(harnessaudit.DefaultCoverageSeed))
	if err := pm.Run(mod); err != nil {
		fail("", fmt.Sprintf("pipeline: %v", err))
		return nil, ds
	}
	vm.ResolveModule(mod)

	if mod.Func(analysis.TargetMain) == nil {
		fail(analysis.TargetMain, "instrumented module lacks target_main")
	}
	if mod.Func("closurex_init") == nil {
		fail("closurex_init", "instrumented module lacks closurex_init")
	}

	// The same verifier + lint catalog hand-written harnesses pass.
	vds := analysis.Verify(mod, vm.Builtins())
	vds = append(vds, interproc.Audit(mod)...)
	if !vds.HasErrors() {
		vds = append(vds, analysis.Lint(mod)...)
	}
	for _, d := range vds {
		fail(d.Func, fmt.Sprintf("%s (%s): %s", d.ID, d.Pass, d.Msg))
	}
	if ds.HasErrors() {
		return nil, ds
	}
	return mod, nil
}

// Certify runs the certification gate over an arbitrary harness source and
// returns its diagnostics — the seeded-defect suite drives it with
// hand-corrupted sources to pin the CLX130 tripwire.
func Certify(target, file, src string) analysis.Diagnostics {
	_, ds := certify(target, file, src)
	ds.Sort()
	return ds
}
