package synth

// Reporting: the byte-stable synthesis report closurex-lint -synth-json
// prints and the bench tripwire inspects. Field order, slice ordering and
// map keys are all deterministic; a pinned-bytes test guards the contract.
// Extend, never rename.

import (
	"encoding/json"
	"sort"

	"closurex/internal/analysis"
)

// Report is one target's synthesis outcome.
type Report struct {
	Target    string `json:"target"`
	Entry     string `json:"entry"`
	Functions int    `json:"functions"` // exported candidates considered

	Arms       []Arm    `json:"arms"`
	PreGlobals []string `json:"pre_globals,omitempty"`
	HdrBytes   int      `json:"hdr_bytes"`
	BufCap     int      `json:"buf_cap"`

	Unsynthesizable []Skip   `json:"unsynthesizable,omitempty"` // CLX128
	Uncovered       []string `json:"uncovered,omitempty"`       // CLX129
	Shadowed        []string `json:"shadowed,omitempty"`        // CLX131

	Certified   bool `json:"certified"`
	SourceLines int  `json:"source_lines"`

	// Codes counts the run's diagnostics per catalog ID.
	Codes map[string]int `json:"codes,omitempty"`
}

// report assembles the Report from a planning result.
func (pl *planData) report(target string, opts Options) *Report {
	return &Report{
		Target:          target,
		Entry:           pl.entry,
		Functions:       pl.functions,
		Arms:            pl.arms,
		PreGlobals:      pl.preGlobals,
		HdrBytes:        pl.hdr,
		BufCap:          opts.BufCap,
		Unsynthesizable: pl.skips,
		Uncovered:       pl.uncovered,
		Shadowed:        pl.shadowed,
	}
}

// fillCodes tallies diagnostics per ID.
func (r *Report) fillCodes(ds analysis.Diagnostics) {
	if len(ds) == 0 {
		return
	}
	r.Codes = map[string]int{}
	for _, d := range ds {
		r.Codes[d.ID]++
	}
}

// sortForOutput normalizes slice ordering for byte-stable rendering.
func (r *Report) sortForOutput() {
	sort.Strings(r.PreGlobals)
	sort.Strings(r.Uncovered)
	sort.Strings(r.Shadowed)
	sort.Slice(r.Unsynthesizable, func(i, j int) bool {
		return r.Unsynthesizable[i].Func < r.Unsynthesizable[j].Func
	})
}

// ReportsJSON renders reports as byte-stable JSON: sorted by target,
// indented, trailing newline — the same contract as the audit score cards.
func ReportsJSON(reports []*Report) ([]byte, error) {
	sorted := append([]*Report(nil), reports...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Target < sorted[j].Target })
	b, err := json.MarshalIndent(sorted, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}
