package synth_test

// Seeded-defect fixtures for the harness synthesizer, mirroring the
// transval seeded-defect suite: each fixture plants exactly one condition
// in otherwise-healthy MinC source and asserts exactly the intended
// catalog code fires — CLX128 (unsynthesizable signature), CLX129
// (uncovered exported surface), CLX130 (certification failure), CLX131
// (plan shadowed by the manual harness) — with no bycatch from the other
// three codes.

import (
	"reflect"
	"testing"

	"closurex/internal/analysis"
	"closurex/internal/analysis/synth"
)

// wantOnly asserts the diagnostic set contains exactly one distinct code.
func wantOnly(t *testing.T, ds analysis.Diagnostics, id string) {
	t.Helper()
	if got := ds.IDs(); !reflect.DeepEqual(got, []string{id}) {
		t.Fatalf("diagnostic IDs = %v, want exactly [%s]\n%s", got, id, ds.String())
	}
}

// srcCLX128 plants one reachable function whose signature admits no
// input-byte plan (a pointer-to-pointer parameter) next to a plannable
// helper the synthesized dispatch picks up — so no CLX129 fires (the
// helper is covered by the plan, twisted is reachable) and no CLX131
// fires (the manual harness never calls the helper).
const srcCLX128 = `
int *gp;
int helper(int x) {
	if (x == 7) return 1;
	return 0;
}
int twisted(int **pp) {
	if (pp) return 1;
	return 0;
}
int main(void) {
	int f = fopen("/input", "r");
	if (!f) return 0;
	char b[8];
	int n = fread(b, 1, 8, f);
	fclose(f);
	twisted(&gp);
	return n;
}
`

func TestSynthSeededCLX128Unsynthesizable(t *testing.T) {
	h, err := synth.Synthesize("fix128", "fix128.c", srcCLX128, synth.Options{})
	if err != nil {
		t.Fatalf("Synthesize: %v", err)
	}
	wantOnly(t, h.Diags, analysis.IDUnsynthesizable)
	if len(h.Report.Unsynthesizable) != 1 || h.Report.Unsynthesizable[0].Func != "twisted" {
		t.Fatalf("Unsynthesizable = %+v, want exactly [twisted]", h.Report.Unsynthesizable)
	}
	if !h.Report.Certified {
		t.Fatalf("the plannable helper arm should still certify:\n%s", h.Diags.String())
	}
	if len(h.Report.Arms) != 1 || h.Report.Arms[0].Func != "helper" {
		t.Fatalf("Arms = %+v, want exactly [helper]", h.Report.Arms)
	}
}

// srcCLX129 plants two dead plannable functions; with MaxArms capped at 1
// the higher-scoring (bigger) one is planned and the other is left as
// uncovered exported surface. Every signature plans (no CLX128), nothing
// is called from main with tainted arguments (no CLX131).
const srcCLX129 = `
int deadbig(int x) {
	if (x == 1) return 2;
	if (x == 2) return 3;
	return 4;
}
int deadsmall(int y) {
	return y + 1;
}
int main(void) {
	int f = fopen("/input", "r");
	if (!f) return 0;
	char b[4];
	int n = fread(b, 1, 4, f);
	fclose(f);
	return n;
}
`

func TestSynthSeededCLX129Uncovered(t *testing.T) {
	h, err := synth.Synthesize("fix129", "fix129.c", srcCLX129, synth.Options{MaxArms: 1})
	if err != nil {
		t.Fatalf("Synthesize: %v", err)
	}
	wantOnly(t, h.Diags, analysis.IDUncoveredSurface)
	if len(h.Report.Arms) != 1 || h.Report.Arms[0].Func != "deadbig" {
		t.Fatalf("Arms = %+v, want exactly [deadbig] (ranking should prefer the bigger dead function)", h.Report.Arms)
	}
	if !reflect.DeepEqual(h.Report.Uncovered, []string{"deadsmall"}) {
		t.Fatalf("Uncovered = %v, want [deadsmall]", h.Report.Uncovered)
	}
	if !h.Report.Certified {
		t.Fatalf("planned arm should certify:\n%s", h.Diags.String())
	}
}

// srcCLX130 is a hand-corrupted "synthesized" harness fed straight to the
// certification gate: structurally complete (closurex_init + main), but
// main stores through an input-dependent index the sanitize interval
// domain cannot prove in-bounds — exactly the class of emitter bug CLX130
// exists to trap.
const srcCLX130 = `
void closurex_init(void) {
	return;
}
int main(void) {
	char b[8];
	int f = fopen("/input", "r");
	if (!f) return 0;
	int n = fread(b, 1, 8, f);
	fclose(f);
	b[n] = 1;
	return b[0];
}
`

func TestSynthSeededCLX130CertFailure(t *testing.T) {
	ds := synth.Certify("fix130", "fix130.c", srcCLX130)
	wantOnly(t, ds, analysis.IDSynthCertFail)
	if !ds.HasErrors() {
		t.Fatalf("CLX130 must be an error-severity tripwire, got:\n%s", ds.String())
	}
}

// srcCLX131 plants a single candidate the manual harness already drives
// with fully input-tainted arguments (the fread buffer and its length).
// The shadowed arm is the only plan, so it is kept — and the CLX131
// diagnostic still fires to flag the duplicated flow.
const srcCLX131 = `
int consume(char *p, int n) {
	if (n < 2) return 0;
	if (p[0] == 'B') return 1;
	return 2;
}
int main(void) {
	int f = fopen("/input", "r");
	if (!f) return 0;
	char b[16];
	int n = fread(b, 1, 16, f);
	fclose(f);
	return consume(b, n);
}
`

func TestSynthSeededCLX131Shadowed(t *testing.T) {
	h, err := synth.Synthesize("fix131", "fix131.c", srcCLX131, synth.Options{})
	if err != nil {
		t.Fatalf("Synthesize: %v", err)
	}
	wantOnly(t, h.Diags, analysis.IDSynthShadowed)
	if !reflect.DeepEqual(h.Report.Shadowed, []string{"consume"}) {
		t.Fatalf("Shadowed = %v, want [consume]", h.Report.Shadowed)
	}
	if len(h.Report.Arms) != 1 || h.Report.Arms[0].Func != "consume" {
		t.Fatalf("Arms = %+v, want the shadowed arm kept when it is the only plan", h.Report.Arms)
	}
	if !h.Report.Certified {
		t.Fatalf("shadowed-but-kept arm should certify:\n%s", h.Diags.String())
	}
}
