// Package synth is the static harness synthesizer: the repair half of the
// harness-quality story whose diagnosis half is analysis/harnessaudit.
// For a registered target it enumerates the exported MinC functions the
// manual harness under-exercises, derives a type- and fact-driven argument
// plan per signature (scalar parameters decoded from input bytes, buffer/
// length pairs clamped in-bounds, global preconditions pre-written in
// closurex_init), and emits a deterministic MinC dispatch harness that is
// certified by the same minc→lower→passes→verifier path hand-written
// harnesses go through. Nothing here executes target code: every claim is
// a projection of the audit's reachability/taint facts, interproc's
// mod/ref summaries, and the sanitize interval domain.
//
// Findings surface through four catalog codes: CLX128 (a signature admits
// no plan), CLX129 (exported surface left uncovered), CLX130 (a
// synthesized harness failed its own certification — a synth bug, never a
// target property), CLX131 (a planned arm duplicates input flow the
// manual harness already provides).
package synth

import (
	"fmt"

	"closurex/internal/analysis"
	"closurex/internal/analysis/harnessaudit"
	"closurex/internal/analysis/interproc"
	"closurex/internal/ir"
	"closurex/internal/lower"
	"closurex/internal/minc"
	"closurex/internal/targets"
	"closurex/internal/vm"
)

// synthPass tags every diagnostic this package emits.
const synthPass = "synth"

// Defaults for Options zero values.
const (
	DefaultMaxArms = 6
	DefaultBufCap  = 512
)

// Options tunes synthesis.
type Options struct {
	// MaxArms caps the dispatch arms in the synthesized target_main
	// (0 = DefaultMaxArms).
	MaxArms int
	// BufCap sizes the input buffer, and hence the synthesized target's
	// MaxInputLen (0 = DefaultBufCap).
	BufCap int
}

func (o Options) fill() Options {
	if o.MaxArms <= 0 {
		o.MaxArms = DefaultMaxArms
	}
	if o.BufCap <= 0 {
		o.BufCap = DefaultBufCap
	}
	return o
}

// Harness is one synthesis result: the report (always present), the
// emitted source and certified module (present only when a plan existed
// and certification passed), and every diagnostic the run produced.
type Harness struct {
	Report *Report
	// Source is the synthesized MinC program ("" when no arm was planned).
	Source string
	// Module is the certified ClosureX-instrumented module (nil unless
	// Report.Certified).
	Module *ir.Module
	Diags  analysis.Diagnostics
}

// Synthesize plans, emits and certifies a harness for one target's source.
// The error return is reserved for infrastructure failures (the original
// source failing to parse/lower); everything synthesis-related is reported
// through Harness.Diags and the report.
func Synthesize(target, file, src string, opts Options) (*Harness, error) {
	opts = opts.fill()
	prog, err := minc.Parse(file, src)
	if err != nil {
		return nil, fmt.Errorf("synth: %s: parse: %w", target, err)
	}
	m, err := lower.Compile(file, src, vm.Builtins())
	if err != nil {
		return nil, fmt.Errorf("synth: %s: lower: %w", target, err)
	}
	vm.ResolveModule(m)

	facts := harnessaudit.CollectFacts(m)
	ip := interproc.Analyze(m)

	pl, ds := buildPlan(target, file, prog, facts, ip, m, opts)
	h := &Harness{Report: pl.report(target, opts), Diags: ds}
	if len(pl.arms) == 0 {
		h.Report.sortForOutput()
		return h, nil
	}

	h.Source = emitSource(src, pl, opts)
	h.Report.SourceLines = countLines(h.Source)

	mod, cds := certify(target, file, h.Source)
	h.Diags = append(h.Diags, cds...)
	if mod != nil && !cds.HasErrors() {
		h.Report.Certified = true
		h.Module = mod
	}
	h.Report.fillCodes(h.Diags)
	h.Report.sortForOutput()
	h.Diags.Sort()
	return h, nil
}

// TargetFor synthesizes a harness for a registered target and wraps it as
// an auxiliary registry target (Name "+synth", Short "_synth") ready for
// targets.Register. The returned error is non-nil when no certified
// harness could be produced; the Harness is still returned for reporting.
func TargetFor(base *targets.Target, opts Options) (*targets.Target, *Harness, error) {
	opts = opts.fill()
	h, err := Synthesize(base.Name, base.Short+".c", base.Source, opts)
	if err != nil {
		return nil, nil, err
	}
	if !h.Report.Certified {
		return nil, h, fmt.Errorf("synth: %s: no certified harness (arms=%d, certified=%v)",
			base.Name, len(h.Report.Arms), h.Report.Certified)
	}
	seeds := synthSeeds(h.Report, base, opts)
	nt := &targets.Target{
		Name:        base.Name + "+synth",
		Short:       base.Short + "_synth",
		Format:      base.Format + " (synthesized dispatch)",
		ExecSize:    base.ExecSize,
		ImagePages:  base.ImagePages,
		Source:      h.Source,
		Seeds:       func() [][]byte { return cloneSeeds(seeds) },
		MaxInputLen: opts.BufCap,
		Aux:         true,
		Dict:        append([]string(nil), base.Dict...),
	}
	return nt, h, nil
}

// synthSeeds builds one deterministic seed per dispatch arm: the selector
// byte, each scalar parameter's hint value at its header offset, zero-fill
// to the header boundary, then the base target's first seed as payload.
func synthSeeds(rep *Report, base *targets.Target, opts Options) [][]byte {
	var payload []byte
	if base.Seeds != nil {
		if bs := base.Seeds(); len(bs) > 0 {
			payload = bs[0]
		}
	}
	if max := opts.BufCap - rep.HdrBytes; len(payload) > max {
		payload = payload[:max]
	}
	seeds := make([][]byte, 0, len(rep.Arms))
	for i, arm := range rep.Arms {
		s := make([]byte, rep.HdrBytes)
		s[0] = byte(i)
		for _, p := range arm.Params {
			w := p.width()
			for b := 0; b < w; b++ {
				if p.Off+b < len(s) {
					s[p.Off+b] = byte(uint64(p.Hint) >> (8 * b))
				}
			}
		}
		seeds = append(seeds, append(s, payload...))
	}
	return seeds
}

func cloneSeeds(seeds [][]byte) [][]byte {
	out := make([][]byte, len(seeds))
	for i, s := range seeds {
		out[i] = append([]byte(nil), s...)
	}
	return out
}

func countLines(s string) int {
	n := 0
	for _, c := range s {
		if c == '\n' {
			n++
		}
	}
	return n
}
