package synth

// Deterministic MinC emission. The synthesized program is the original
// source with its `main` removed, followed by a generated closurex_init
// (global preconditions) and a generated dispatching main: read up to
// BufCap input bytes into a frame-local buffer, select an arm on byte 0,
// decode each scalar parameter from fixed header offsets, clamp length
// parameters into the payload, and call the arm. Every buffer access the
// emitter writes is at a constant offset into the local array so the
// sanitize interval domain can prove it in-bounds during certification.
// Generated locals carry the sx_ prefix to stay clear of target
// identifiers.

import (
	"fmt"
	"strings"
)

// emitSource renders the synthesized program.
func emitSource(src string, pl *planData, opts Options) string {
	var b strings.Builder
	b.WriteString(strings.TrimRight(stripMain(src), " \t\n"))
	b.WriteString("\n\n/* --- synthesized by analysis/synth; certified, do not hand-edit --- */\n")

	b.WriteString("void closurex_init(void) {\n")
	for _, g := range pl.preGlobals {
		fmt.Fprintf(&b, "    %s = 1;\n", g)
	}
	if len(pl.preGlobals) == 0 {
		b.WriteString("    return;\n")
	}
	b.WriteString("}\n\n")

	b.WriteString("int main(void) {\n")
	fmt.Fprintf(&b, "    char sx_buf[%d];\n", opts.BufCap)
	if plansNeedScratch(pl) {
		b.WriteString("    int sx_scr = 0;\n")
	}
	b.WriteString("    int sx_ret = 0;\n")
	b.WriteString("    closurex_init();\n")
	b.WriteString("    int sx_f = fopen(\"/input\", \"r\");\n")
	b.WriteString("    if (sx_f == 0) { return 0; }\n")
	fmt.Fprintf(&b, "    int sx_n = fread(sx_buf, 1, %d, sx_f);\n", opts.BufCap)
	b.WriteString("    fclose(sx_f);\n")
	b.WriteString("    if (sx_n < 1) { return 0; }\n")
	fmt.Fprintf(&b, "    int sx_sel = sx_buf[0] %% %d;\n", len(pl.arms))
	fmt.Fprintf(&b, "    int sx_pay = sx_n - %d;\n", pl.hdr)
	b.WriteString("    if (sx_pay < 0) { sx_pay = 0; }\n")
	for i := range pl.arms {
		emitArm(&b, &pl.arms[i], i, pl)
	}
	b.WriteString("    return sx_ret;\n")
	b.WriteString("}\n")
	return b.String()
}

func plansNeedScratch(pl *planData) bool {
	for _, a := range pl.arms {
		for _, p := range a.Params {
			if p.Kind == KindScratch {
				return true
			}
		}
	}
	return false
}

// emitArm renders one dispatch arm: scalar decodes, length clamps, the
// call, and the return-value sink when the arm returns a scalar.
func emitArm(b *strings.Builder, arm *Arm, idx int, pl *planData) {
	fmt.Fprintf(b, "    if (sx_sel == %d) {\n", idx)
	args := make([]string, 0, len(arm.Params))
	for pi, p := range arm.Params {
		switch p.Kind {
		case KindByte:
			fmt.Fprintf(b, "        int sx_a%d = sx_buf[%d];\n", pi, p.Off)
			args = append(args, fmt.Sprintf("sx_a%d", pi))
		case KindInt, KindLen:
			fmt.Fprintf(b, "        int sx_a%d = %s;\n", pi, decode4(p.Off))
			if p.Kind == KindLen {
				fmt.Fprintf(b, "        if (sx_a%d < 0) { sx_a%d = 0; }\n", pi, pi)
				fmt.Fprintf(b, "        if (sx_a%d > sx_pay) { sx_a%d = sx_pay; }\n", pi, pi)
			}
			args = append(args, fmt.Sprintf("sx_a%d", pi))
		case KindBuf:
			args = append(args, fmt.Sprintf("sx_buf + %d", pl.hdr))
		case KindScratch:
			args = append(args, "&sx_scr")
		}
	}
	call := fmt.Sprintf("%s(%s)", arm.Func, strings.Join(args, ", "))
	if arm.Ret == "int" || arm.Ret == "char" {
		fmt.Fprintf(b, "        sx_ret = %s;\n", call)
	} else {
		fmt.Fprintf(b, "        %s;\n", call)
	}
	b.WriteString("    }\n")
}

// decode4 renders a 4-byte little-endian decode from constant offsets.
func decode4(off int) string {
	return fmt.Sprintf("sx_buf[%d] | (sx_buf[%d] << 8) | (sx_buf[%d] << 16) | (sx_buf[%d] << 24)",
		off, off+1, off+2, off+3)
}

// stripMain removes the `main` function definition from MinC source with a
// comment- and literal-aware brace scanner. The emitter appends its own
// main, so a leftover would be a redefinition error at certification.
func stripMain(src string) string {
	start := mainStart(src)
	if start < 0 {
		return src
	}
	// Walk to the opening brace, then to its match.
	i := start
	for i < len(src) && src[i] != '{' {
		i++
	}
	depth := 0
	for i < len(src) {
		c := src[i]
		switch c {
		case '{':
			depth++
		case '}':
			depth--
			if depth == 0 {
				return src[:start] + src[i+1:]
			}
		case '"', '\'':
			i = skipLiteral(src, i)
			continue
		case '/':
			if j := skipComment(src, i); j > i {
				i = j
				continue
			}
		}
		i++
	}
	return src
}

// mainStart locates the `int main` token pair outside comments/literals.
func mainStart(src string) int {
	i := 0
	for i < len(src) {
		switch src[i] {
		case '"', '\'':
			i = skipLiteral(src, i)
			continue
		case '/':
			if j := skipComment(src, i); j > i {
				i = j
				continue
			}
		}
		if strings.HasPrefix(src[i:], "int") && !identChar(byteAt(src, i-1)) {
			j := i + 3
			for j < len(src) && (src[j] == ' ' || src[j] == '\t' || src[j] == '\n') {
				j++
			}
			if strings.HasPrefix(src[j:], "main") && !identChar(byteAt(src, j+4)) {
				return i
			}
		}
		i++
	}
	return -1
}

func byteAt(s string, i int) byte {
	if i < 0 || i >= len(s) {
		return 0
	}
	return s[i]
}

func identChar(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9')
}

// skipLiteral advances past a string or char literal starting at i.
func skipLiteral(src string, i int) int {
	q := src[i]
	i++
	for i < len(src) {
		if src[i] == '\\' {
			i += 2
			continue
		}
		if src[i] == q {
			return i + 1
		}
		i++
	}
	return i
}

// skipComment advances past // or /* */ comments starting at i, or returns
// i when no comment starts there.
func skipComment(src string, i int) int {
	if i+1 >= len(src) {
		return i
	}
	switch src[i+1] {
	case '/':
		for i < len(src) && src[i] != '\n' {
			i++
		}
		return i
	case '*':
		j := strings.Index(src[i+2:], "*/")
		if j < 0 {
			return len(src)
		}
		return i + 2 + j + 2
	}
	return i
}
