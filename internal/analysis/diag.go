// Package analysis provides compile-time correctness tooling for the
// ClosureX pipeline: a structural IR verifier, a generic dataflow framework
// (CFG, dominator tree, forward/backward worklist solver with liveness and
// reaching-definitions instances), and restore-completeness lints that
// statically prove a pipeline's output is restartable — the compile-time
// counterpart of the runtime divergence sentinel and restore watchdog.
//
// Every checker emits structured Diagnostics carrying a stable catalog ID
// (CLX001…), the producing checker or pass, and the precise IR location
// (function, block, instruction, source line), so tools and tests can
// assert that exactly the intended check caught a defect.
package analysis

import (
	"errors"
	"fmt"
	"sort"
	"strings"
)

// Severity classifies a diagnostic.
type Severity int

// Severities, least to most severe.
const (
	SevInfo Severity = iota
	SevWarn
	SevError
)

func (s Severity) String() string {
	switch s {
	case SevInfo:
		return "info"
	case SevWarn:
		return "warn"
	case SevError:
		return "error"
	}
	return fmt.Sprintf("sev(%d)", int(s))
}

// Diagnostic is one structured finding from the verifier or a lint.
type Diagnostic struct {
	// ID is the stable catalog identifier ("CLX001").
	ID string
	// Sev is the severity; campaigns refuse to start on SevError.
	Sev Severity
	// Pass names the checker or the pipeline pass held responsible
	// ("verifier", "HeapPass", "CoveragePass", ...).
	Pass string
	// Func is the containing function; empty for module-level findings.
	Func string
	// Block and Instr locate the finding inside Func; -1 when not
	// applicable (module- or function-level findings).
	Block, Instr int
	// Line is the source line attached to the offending instruction.
	Line int32
	// Msg is the human-readable explanation.
	Msg string
}

func (d Diagnostic) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s %s [%s]", d.ID, d.Sev, d.Pass)
	if d.Func != "" {
		fmt.Fprintf(&b, " %s", d.Func)
		if d.Block >= 0 {
			fmt.Fprintf(&b, " b%d", d.Block)
			if d.Instr >= 0 {
				fmt.Fprintf(&b, "#%d", d.Instr)
			}
		}
		if d.Line > 0 {
			fmt.Fprintf(&b, " line %d", d.Line)
		}
	}
	fmt.Fprintf(&b, ": %s", d.Msg)
	return b.String()
}

// Diagnostics is an ordered finding list.
type Diagnostics []Diagnostic

// HasErrors reports whether any diagnostic is SevError.
func (ds Diagnostics) HasErrors() bool {
	for i := range ds {
		if ds[i].Sev == SevError {
			return true
		}
	}
	return false
}

// Errors counts SevError diagnostics.
func (ds Diagnostics) Errors() int {
	n := 0
	for i := range ds {
		if ds[i].Sev == SevError {
			n++
		}
	}
	return n
}

// ByID returns the subset carrying the given catalog ID.
func (ds Diagnostics) ByID(id string) Diagnostics {
	var out Diagnostics
	for i := range ds {
		if ds[i].ID == id {
			out = append(out, ds[i])
		}
	}
	return out
}

// IDs returns the distinct catalog IDs present, sorted.
func (ds Diagnostics) IDs() []string {
	seen := map[string]bool{}
	for i := range ds {
		seen[ds[i].ID] = true
	}
	out := make([]string, 0, len(seen))
	for id := range seen {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// Sort orders diagnostics by function, block, instruction, then ID, giving
// tools a stable presentation independent of checker execution order.
func (ds Diagnostics) Sort() {
	sort.SliceStable(ds, func(i, j int) bool {
		a, b := &ds[i], &ds[j]
		if a.Func != b.Func {
			return a.Func < b.Func
		}
		if a.Block != b.Block {
			return a.Block < b.Block
		}
		if a.Instr != b.Instr {
			return a.Instr < b.Instr
		}
		return a.ID < b.ID
	})
}

func (ds Diagnostics) String() string {
	lines := make([]string, len(ds))
	for i := range ds {
		lines[i] = ds[i].String()
	}
	return strings.Join(lines, "\n")
}

// ErrDiagnostics is wrapped by every error produced from a non-empty
// diagnostic list, so callers can errors.Is across the toolchain.
var ErrDiagnostics = errors.New("analysis: diagnostics reported")

// Err converts the list into an error: nil when no SevError diagnostic is
// present, otherwise an error wrapping ErrDiagnostics whose message renders
// every finding.
func (ds Diagnostics) Err() error {
	if !ds.HasErrors() {
		return nil
	}
	return fmt.Errorf("%w (%d error(s)):\n%s", ErrDiagnostics, ds.Errors(), ds.String())
}
