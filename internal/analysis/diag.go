// Package analysis provides compile-time correctness tooling for the
// ClosureX pipeline: a structural IR verifier, a generic dataflow framework
// (CFG, dominator tree, forward/backward worklist solver with liveness and
// reaching-definitions instances), and restore-completeness lints that
// statically prove a pipeline's output is restartable — the compile-time
// counterpart of the runtime divergence sentinel and restore watchdog.
//
// Every checker emits structured Diagnostics carrying a stable catalog ID
// (CLX001…), the producing checker or pass, and the precise IR location
// (function, block, instruction, source line), so tools and tests can
// assert that exactly the intended check caught a defect.
package analysis

import (
	"encoding/json"
	"errors"
	"fmt"
	"sort"
	"strings"
)

// Severity classifies a diagnostic.
type Severity int

// Severities, least to most severe.
const (
	SevInfo Severity = iota
	SevWarn
	SevError
)

func (s Severity) String() string {
	switch s {
	case SevInfo:
		return "info"
	case SevWarn:
		return "warn"
	case SevError:
		return "error"
	}
	return fmt.Sprintf("sev(%d)", int(s))
}

// Diagnostic is one structured finding from the verifier or a lint.
type Diagnostic struct {
	// ID is the stable catalog identifier ("CLX001").
	ID string
	// File names the module (source file or target) the finding belongs
	// to. Individual checkers leave it empty — they see one module at a
	// time; Diags.Flatten stamps it during multi-module aggregation.
	File string
	// Sev is the severity; campaigns refuse to start on SevError.
	Sev Severity
	// Pass names the checker or the pipeline pass held responsible
	// ("verifier", "HeapPass", "CoveragePass", ...).
	Pass string
	// Func is the containing function; empty for module-level findings.
	Func string
	// Block and Instr locate the finding inside Func; -1 when not
	// applicable (module- or function-level findings).
	Block, Instr int
	// Line is the source line attached to the offending instruction.
	Line int32
	// Msg is the human-readable explanation.
	Msg string
}

func (d Diagnostic) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s %s [%s]", d.ID, d.Sev, d.Pass)
	if d.Func != "" {
		fmt.Fprintf(&b, " %s", d.Func)
		if d.Block >= 0 {
			fmt.Fprintf(&b, " b%d", d.Block)
			if d.Instr >= 0 {
				fmt.Fprintf(&b, "#%d", d.Instr)
			}
		}
		if d.Line > 0 {
			fmt.Fprintf(&b, " line %d", d.Line)
		}
	}
	fmt.Fprintf(&b, ": %s", d.Msg)
	return b.String()
}

// Diagnostics is an ordered finding list.
type Diagnostics []Diagnostic

// HasErrors reports whether any diagnostic is SevError.
func (ds Diagnostics) HasErrors() bool {
	for i := range ds {
		if ds[i].Sev == SevError {
			return true
		}
	}
	return false
}

// Errors counts SevError diagnostics.
func (ds Diagnostics) Errors() int {
	n := 0
	for i := range ds {
		if ds[i].Sev == SevError {
			n++
		}
	}
	return n
}

// ByID returns the subset carrying the given catalog ID.
func (ds Diagnostics) ByID(id string) Diagnostics {
	var out Diagnostics
	for i := range ds {
		if ds[i].ID == id {
			out = append(out, ds[i])
		}
	}
	return out
}

// IDs returns the distinct catalog IDs present, sorted.
func (ds Diagnostics) IDs() []string {
	seen := map[string]bool{}
	for i := range ds {
		seen[ds[i].ID] = true
	}
	out := make([]string, 0, len(seen))
	for id := range seen {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// Sort orders diagnostics by function, block, instruction, then ID, giving
// tools a stable presentation independent of checker execution order.
func (ds Diagnostics) Sort() {
	sort.SliceStable(ds, func(i, j int) bool {
		a, b := &ds[i], &ds[j]
		if a.Func != b.Func {
			return a.Func < b.Func
		}
		if a.Block != b.Block {
			return a.Block < b.Block
		}
		if a.Instr != b.Instr {
			return a.Instr < b.Instr
		}
		return a.ID < b.ID
	})
}

func (ds Diagnostics) String() string {
	lines := make([]string, len(ds))
	for i := range ds {
		lines[i] = ds[i].String()
	}
	return strings.Join(lines, "\n")
}

// Diags aggregates per-module diagnostics from a multi-module run, keyed
// by module (source file or target) name. Earlier tooling ranged over the
// map directly when rendering, which made multi-module output order
// map-iteration-dependent; Flatten is the sanctioned way out and is
// deterministic.
type Diags map[string]Diagnostics

// Add appends findings under the given module name (no-op for an empty
// list, so clean modules do not appear as empty keys).
func (m Diags) Add(file string, ds Diagnostics) {
	if len(ds) > 0 {
		m[file] = append(m[file], ds...)
	}
}

// Flatten returns every diagnostic with File stamped, ordered by
// (file, function, code, position) — byte-stable across runs regardless
// of map iteration or checker execution order.
func (m Diags) Flatten() Diagnostics {
	files := make([]string, 0, len(m))
	for f := range m {
		files = append(files, f)
	}
	sort.Strings(files)
	var out Diagnostics
	for _, f := range files {
		ds := append(Diagnostics(nil), m[f]...)
		ds.SortForOutput()
		for i := range ds {
			ds[i].File = f
		}
		out = append(out, ds...)
	}
	return out
}

// SortForOutput orders diagnostics by (function, code, position) — the
// presentation order of closurex-lint's text and JSON output. Sort keeps
// the historical (function, position, code) order tests and the verifier
// rely on.
func (ds Diagnostics) SortForOutput() {
	sort.SliceStable(ds, func(i, j int) bool {
		a, b := &ds[i], &ds[j]
		if a.Func != b.Func {
			return a.Func < b.Func
		}
		if a.ID != b.ID {
			return a.ID < b.ID
		}
		if a.Block != b.Block {
			return a.Block < b.Block
		}
		return a.Instr < b.Instr
	})
}

// JSONDiagnostic is the stable machine-readable schema closurex-lint
// -format json emits. The field set and names are a compatibility
// contract; extend it, never rename.
type JSONDiagnostic struct {
	File     string `json:"file,omitempty"`
	Function string `json:"function,omitempty"`
	Code     string `json:"code"`
	Severity string `json:"severity"`
	Pass     string `json:"pass,omitempty"`
	Block    int    `json:"block"`
	Instr    int    `json:"instr"`
	Line     int32  `json:"line,omitempty"`
	Message  string `json:"message"`
}

// JSON renders the findings in the stable schema, sorted by (file,
// function, code, position), as indented JSON with a trailing newline —
// byte-stable across runs for identical findings.
func (ds Diagnostics) JSON() ([]byte, error) {
	cp := append(Diagnostics(nil), ds...)
	sort.SliceStable(cp, func(i, j int) bool {
		a, b := &cp[i], &cp[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Func != b.Func {
			return a.Func < b.Func
		}
		if a.ID != b.ID {
			return a.ID < b.ID
		}
		if a.Block != b.Block {
			return a.Block < b.Block
		}
		return a.Instr < b.Instr
	})
	out := make([]JSONDiagnostic, len(cp))
	for i, d := range cp {
		out[i] = JSONDiagnostic{
			File: d.File, Function: d.Func, Code: d.ID,
			Severity: d.Sev.String(), Pass: d.Pass,
			Block: d.Block, Instr: d.Instr, Line: d.Line, Message: d.Msg,
		}
	}
	b, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// Harness-quality audit catalog (analysis/harnessaudit). These are
// warnings, not campaign-gating errors: a degraded harness still runs, it
// just fuzzes worse. `make harness-audit` runs them under -strict so
// quality regressions fail CI anyway.
const (
	IDDeadSurface   = "CLX119" // function/block unreachable from target_main: dead harness surface
	IDCovSaturation = "CLX120" // coverage geometry saturated/displaced: new coverage indistinguishable
	IDDeadDictToken = "CLX121" // dictionary token never reaches a comparison against input bytes
)

// Translation-validation catalog (analysis/transval): per-function static
// certification of the compiled closure-chain tier against the committed
// ir.Module. All SevError — an uncertified module must not run compiled.
const (
	IDBranchMapDrift  = "CLX123" // resolved target pc / block offset / call continuation wrong
	IDIllegalFusion   = "CLX124" // span matches no legal pattern, breaks the partition, or elides a live register
	IDFoldDrift       = "CLX125" // captured derived constant does not re-evaluate from the IR
	IDCalleeBindDrift = "CLX126" // bound callee disagrees with name resolution or CalleeIdx
	IDBudgetDrift     = "CLX127" // k/net/maxDip/cum run table disagrees with the instruction-exact recount
)

// Harness-synthesis catalog (analysis/synth). CLX128/129/131 are advisory
// warnings about the synthesizable surface; CLX130 is an error because a
// synthesized harness that fails its own certification is a synth bug, not
// a target property.
const (
	IDUnsynthesizable  = "CLX128" // exported function signature admits no argument plan
	IDUncoveredSurface = "CLX129" // exported function unreachable from the entry and not covered by the synthesized plan
	IDSynthCertFail    = "CLX130" // synthesized harness failed verifier/lint certification — synth bug tripwire
	IDSynthShadowed    = "CLX131" // synthesized plan arm duplicates input flow the existing harness already provides
)

// Catalog is the single source of truth mapping every CLX diagnostic ID to
// its one-line description: closurex-lint -catalog prints it, and the
// README's diagnostic table is asserted verbatim against it by
// catalog_test.go — extend both together (the test fails otherwise).
func Catalog() map[string]string {
	return map[string]string{
		IDRawHeapCall:      "raw heap call (`malloc`/`calloc`/`realloc`/`free`) survives HeapPass — the chunk would escape restore tracking",
		IDRawFileCall:      "raw file call (`fopen`/`fclose`) survives FilePass — the descriptor would escape restore tracking",
		IDRawExitCall:      "raw `exit` call survives ExitPass — the campaign process would terminate mid-loop",
		IDGlobalSection:    "writable global not in `closure_global_section` — its mutations would survive restore",
		IDMainNotHooked:    "entry point not renamed to `target_main` — the harness cannot drive the target",
		IDCovCollision:     "coverage probe IDs collide — distinct blocks would alias one bitmap cell",
		IDProbeMissing:     "basic block lacks a coverage probe in an instrumented module — its coverage would be invisible",
		IDEmptyFunc:        "function has no blocks",
		IDBadTerminator:    "block empty, unterminated, or terminator mid-block",
		IDBadTarget:        "branch target out of range",
		IDBadRegister:      "register operand out of range",
		IDBadCallee:        "callee resolves to neither module function nor builtin",
		IDBadArity:         "direct call argument count mismatch",
		IDBadGlobal:        "global index out of range",
		IDBadSize:          "memory access size not 1/2/4/8",
		IDUnassignedUse:    "register may be read before assignment",
		IDBadSection:       "global carries an unknown/empty section attribute",
		IDBadSanCheck:      "malformed shadow check (direction operand not read/write)",
		IDOrphanCheck:      "shadow check not immediately followed by its matching load/store",
		IDUncheckedAcc:     "sanitized module has a load/store neither checked nor elision-marked",
		IDUnsoundElision:   "`TrackElide`/`FileElide` mark not provable on re-analysis — an unsound elision claim that would leak state",
		IDCallGraphHole:    "call with unknown effects (callee neither module function nor modeled builtin); analysis degrades to whole-section scope",
		IDGlobalEscape:     "global write unattributable (unknown pointer or unbounded callee write); analysis degrades to whole-section scope",
		IDElisionDrift:     "recorded may-write metadata drifted from the re-derived analysis (narrowed set, false bounded claim, stale site counters)",
		IDUnreachableFn:    "function unreachable from `target_main`/`closurex_init` (excluded from the restore-scope analysis)",
		IDDeadSurface:      "dead harness surface — function or block unreachable from `target_main` on any interprocedural path",
		IDCovSaturation:    "coverage geometry degraded — probe saturation or collision displacement high enough to mask new coverage",
		IDDeadDictToken:    "dead dictionary token — no input-dataflow path carries its bytes into any comparison",
		IDStaleCallIdx:     "cached callee index disagrees with the callee name — a call-site rewrite skipped re-resolution and both backends would dispatch wrong",
		IDBranchMapDrift:   "compiled branch map drifted — a resolved target pc, block start or call continuation disagrees with block concatenation",
		IDIllegalFusion:    "illegal superinstruction — a fused span matches no legal pattern, breaks the block partition, or elides a live intermediate register",
		IDFoldDrift:        "folded constant drifted — a captured global address, pre-masked shift, degenerate divisor or fused immediate does not re-evaluate to its IR operand",
		IDCalleeBindDrift:  "compiled callee binding drifted — a call's bound function or builtin index disagrees with name resolution or the cached `CalleeIdx`",
		IDBudgetDrift:      "certified budget table drifted — a run's `k`/`net`/`maxDip`/`cum` counts disagree with the instruction-exact recount from the IR",
		IDUnsynthesizable:  "unsynthesizable signature — an exported function's parameter types admit no input-byte argument plan",
		IDUncoveredSurface: "uncovered exported surface — function unreachable from the entry and not picked up by the synthesized dispatch plan",
		IDSynthCertFail:    "synthesized harness failed certification — the generated module tripped the verifier/lint catalog (a synth bug, not a target property)",
		IDSynthShadowed:    "synthesized plan shadowed — the existing harness already feeds input-tainted arguments to every parameter of the planned function",
	}
}

// ErrDiagnostics is wrapped by every error produced from a non-empty
// diagnostic list, so callers can errors.Is across the toolchain.
var ErrDiagnostics = errors.New("analysis: diagnostics reported")

// Err converts the list into an error: nil when no SevError diagnostic is
// present, otherwise an error wrapping ErrDiagnostics whose message renders
// every finding.
func (ds Diagnostics) Err() error {
	if !ds.HasErrors() {
		return nil
	}
	return fmt.Errorf("%w (%d error(s)):\n%s", ErrDiagnostics, ds.Errors(), ds.String())
}
