package analysis

import (
	"fmt"
	"sort"

	"closurex/internal/ir"
)

// Verifier diagnostic catalog (structural and dataflow invariants; the
// restore-completeness lints occupy CLX001-CLX099, see lint.go).
const (
	IDEmptyFunc     = "CLX101" // function has no blocks
	IDBadTerminator = "CLX102" // block empty, unterminated, or terminator mid-block
	IDBadTarget     = "CLX103" // branch target out of range
	IDBadRegister   = "CLX104" // register operand out of range
	IDBadCallee     = "CLX105" // callee resolves to neither module function nor builtin
	IDBadArity      = "CLX106" // direct call argument count mismatch
	IDBadGlobal     = "CLX107" // global index out of range
	IDBadSize       = "CLX108" // memory access size not 1/2/4/8
	IDUnassignedUse = "CLX109" // register may be read before assignment
	IDBadSection    = "CLX110" // global carries an unknown/empty section attribute
	IDBadSanCheck   = "CLX111" // malformed sancheck (direction not read/write)
	IDOrphanCheck   = "CLX112" // sancheck not immediately followed by its matching load/store
	IDUncheckedAcc  = "CLX113" // sanitized module has a load/store neither checked nor elision-marked

	// Interprocedural elision audit catalog (analysis/interproc). The
	// error IDs gate campaigns exactly like the structural verifier; the
	// warnings explain why a module's restore scope could not shrink.
	IDUnsoundElision = "CLX114" // TrackElide/FileElide mark not provable on re-analysis
	IDCallGraphHole  = "CLX115" // call with unknown effects; analysis degrades to whole-section
	IDGlobalEscape   = "CLX116" // global write unattributable (unknown pointer or unbounded callee write)
	IDElisionDrift   = "CLX117" // recorded may-write metadata omits an analysis-proven write
	IDUnreachableFn  = "CLX118" // function unreachable from target_main/closurex_init

	// Call pre-resolution audit (vm.ResolveModule stamps CalleeIdx at
	// module-commit time; both execution backends dispatch through it).
	IDStaleCallIdx = "CLX122" // cached callee index disagrees with the callee name
)

const verifierPass = "verifier"

// Verify checks module well-formedness and returns every violation found,
// rather than stopping at the first like the quick ir.Verify gate. Checks:
// every block terminated exactly at its end, branch targets in range,
// register operands in range, registers definitely assigned before use
// (dataflow over the dominator-ordered CFG), callees resolving to module
// functions or known builtins with matching arity, global indices in
// range, and section attributes drawn from the known section set.
func Verify(m *ir.Module, builtins map[string]bool) Diagnostics {
	var ds Diagnostics
	for gi, g := range m.Globals {
		switch g.Section {
		case ir.SectionData, ir.SectionRodata, ir.SectionClosure:
		default:
			ds = append(ds, Diagnostic{
				ID: IDBadSection, Sev: SevError, Pass: verifierPass,
				Block: -1, Instr: -1,
				Msg: fmt.Sprintf("global %d (%s) carries unknown section %q", gi, g.Name, g.Section),
			})
		}
	}
	// The canonical builtin slot order is the name set sorted ascending —
	// the same derivation vm.BuiltinIndex uses — so CLX122 can audit cached
	// negative indices without importing the vm package.
	bslots := make([]string, 0, len(builtins))
	for name := range builtins {
		bslots = append(bslots, name)
	}
	sort.Strings(bslots)
	for _, f := range m.Funcs {
		ds = append(ds, verifyFunc(m, f, builtins, bslots)...)
	}
	ds.Sort()
	return ds
}

func verifyFunc(m *ir.Module, f *ir.Func, builtins map[string]bool, bslots []string) Diagnostics {
	var ds Diagnostics
	emit := func(id string, block, instr int, line int32, format string, args ...interface{}) {
		ds = append(ds, Diagnostic{
			ID: id, Sev: SevError, Pass: verifierPass, Func: f.Name,
			Block: block, Instr: instr, Line: line,
			Msg: fmt.Sprintf(format, args...),
		})
	}
	if len(f.Blocks) == 0 {
		emit(IDEmptyFunc, -1, -1, 0, "function has no blocks")
		return ds
	}
	if f.NumParams > f.NumRegs {
		emit(IDBadRegister, -1, -1, 0, "%d params but only %d registers", f.NumParams, f.NumRegs)
	}
	for bi, b := range f.Blocks {
		if len(b.Instrs) == 0 {
			emit(IDBadTerminator, bi, -1, 0, "block is empty (no terminator)")
			continue
		}
		for ii := range b.Instrs {
			in := &b.Instrs[ii]
			last := ii == len(b.Instrs)-1
			if in.IsTerminator() != last {
				if last {
					emit(IDBadTerminator, bi, ii, in.Pos,
						"block falls through: final instruction %s is not a terminator", in.Op)
				} else {
					emit(IDBadTerminator, bi, ii, in.Pos,
						"terminator %s mid-block (instruction %d of %d)", in.Op, ii, len(b.Instrs))
				}
			}
			verifyOperands(m, f, bi, ii, in, builtins, bslots, emit)
		}
	}
	verifySanitizerShape(m, f, emit)
	if ds.HasErrors() {
		// The structural shape is broken; dataflow over it would chase
		// dangling edges or out-of-range registers.
		return ds
	}
	ds = append(ds, verifyAssigned(f)...)
	return ds
}

// verifyOperands checks one instruction's registers, targets, sizes,
// global indices and callee resolution.
func verifyOperands(m *ir.Module, f *ir.Func, bi, ii int, in *ir.Instr,
	builtins map[string]bool, bslots []string,
	emit func(string, int, int, int32, string, ...interface{})) {

	reg := func(r int, what string) {
		if r < 0 || r >= f.NumRegs {
			emit(IDBadRegister, bi, ii, in.Pos, "%s: %s register %d out of range [0,%d)", in.Op, what, r, f.NumRegs)
		}
	}
	target := func(t int) {
		if t < 0 || t >= len(f.Blocks) {
			emit(IDBadTarget, bi, ii, in.Pos, "%s: branch target %d out of range [0,%d)", in.Op, t, len(f.Blocks))
		}
	}
	size := func() {
		switch in.Size {
		case 1, 2, 4, 8:
		default:
			emit(IDBadSize, bi, ii, in.Pos, "%s: access size %d (want 1, 2, 4 or 8)", in.Op, in.Size)
		}
	}
	switch in.Op {
	case ir.OpConst, ir.OpFrameAddr:
		reg(in.Dst, "dst")
	case ir.OpGlobalAddr:
		if in.Imm < 0 || in.Imm >= int64(len(m.Globals)) {
			emit(IDBadGlobal, bi, ii, in.Pos, "global index %d out of range [0,%d)", in.Imm, len(m.Globals))
		}
		reg(in.Dst, "dst")
	case ir.OpMov, ir.OpUn:
		reg(in.A, "src")
		reg(in.Dst, "dst")
	case ir.OpBin:
		reg(in.A, "lhs")
		reg(in.B, "rhs")
		reg(in.Dst, "dst")
	case ir.OpLoad:
		size()
		reg(in.A, "addr")
		reg(in.Dst, "dst")
	case ir.OpStore:
		size()
		reg(in.A, "addr")
		reg(in.B, "val")
	case ir.OpCall:
		callee := m.Func(in.Callee)
		if callee == nil && !builtins[in.Callee] {
			emit(IDBadCallee, bi, ii, in.Pos, "callee %q resolves to neither a module function nor a builtin", in.Callee)
		}
		if callee != nil && len(in.Args) != callee.NumParams {
			emit(IDBadArity, bi, ii, in.Pos, "call %s: %d args, want %d", in.Callee, len(in.Args), callee.NumParams)
		}
		// A cached callee index (stamped by vm.ResolveModule at commit
		// time) must still name the callee it was resolved against; a
		// mismatch means a pass rewrote call sites without invalidating
		// the cache, and both backends would silently call the wrong
		// function.
		switch {
		case in.CalleeIdx > 0:
			if fi := in.CalleeIdx - 1; fi >= len(m.Funcs) || m.Funcs[fi].Name != in.Callee {
				emit(IDStaleCallIdx, bi, ii, in.Pos,
					"cached callee index %d does not resolve to %q", in.CalleeIdx, in.Callee)
			}
		case in.CalleeIdx < 0:
			if slot := -in.CalleeIdx - 1; slot >= len(bslots) || bslots[slot] != in.Callee {
				emit(IDStaleCallIdx, bi, ii, in.Pos,
					"cached builtin index %d does not resolve to %q", in.CalleeIdx, in.Callee)
			}
		}
		for _, a := range in.Args {
			reg(a, "arg")
		}
		reg(in.Dst, "dst")
	case ir.OpRet:
		if in.A >= 0 {
			reg(in.A, "ret")
		}
	case ir.OpBr:
		target(in.Targets[0])
	case ir.OpCondBr:
		reg(in.A, "cond")
		target(in.Targets[0])
		target(in.Targets[1])
	case ir.OpCov, ir.OpUnreachable:
	case ir.OpSanCheck:
		size()
		reg(in.A, "addr")
		if in.B != 0 && in.B != 1 {
			emit(IDBadSanCheck, bi, ii, in.Pos, "sancheck direction %d (want 0=read or 1=write)", in.B)
		}
	default:
		emit(IDBadTerminator, bi, ii, in.Pos, "unknown opcode %d", uint8(in.Op))
	}
}

// verifySanitizerShape enforces the SanitizerPass contract: every
// OpSanCheck guards exactly the access that follows it (CLX112), and — in
// a module marked Sanitized — every load/store is either guarded or
// carries the SanElide proof mark (CLX113). This is what keeps the pass
// honest under VerifyEach: dropping a check without recording the elision
// is a verifier error, not a silent soundness hole.
func verifySanitizerShape(m *ir.Module, f *ir.Func,
	emit func(string, int, int, int32, string, ...interface{})) {

	for bi, b := range f.Blocks {
		for ii := range b.Instrs {
			in := &b.Instrs[ii]
			switch in.Op {
			case ir.OpSanCheck:
				var next *ir.Instr
				if ii+1 < len(b.Instrs) {
					next = &b.Instrs[ii+1]
				}
				ok := next != nil &&
					((in.B == 0 && next.Op == ir.OpLoad) || (in.B == 1 && next.Op == ir.OpStore)) &&
					next.A == in.A && next.Imm == in.Imm && next.Size == in.Size
				if !ok {
					emit(IDOrphanCheck, bi, ii, in.Pos,
						"sancheck is not immediately followed by its matching %s",
						map[int]string{0: "load", 1: "store"}[in.B])
				}
			case ir.OpLoad, ir.OpStore:
				if !m.Sanitized || in.SanElide {
					continue
				}
				guarded := false
				if ii > 0 {
					prev := &b.Instrs[ii-1]
					want := 0
					if in.Op == ir.OpStore {
						want = 1
					}
					guarded = prev.Op == ir.OpSanCheck && prev.B == want &&
						prev.A == in.A && prev.Imm == in.Imm && prev.Size == in.Size
				}
				if !guarded {
					emit(IDUncheckedAcc, bi, ii, in.Pos,
						"%s in sanitized module is neither shadow-checked nor elision-marked", in.Op)
				}
			}
		}
	}
}

// verifyAssigned flags every register read that is not definitely assigned
// on all paths from entry — the dataflow leg of the verifier. Must run on a
// structurally valid function only.
func verifyAssigned(f *ir.Func) Diagnostics {
	cfg := BuildCFG(f)
	assigned := computeAssigned(cfg)
	reach := cfg.Reachable()
	var ds Diagnostics
	var buf []int
	for bi, b := range f.Blocks {
		if !reach[bi] {
			continue // dead joins synthesized by lowering carry no semantics
		}
		cur := assigned.in[bi].Copy()
		for ii := range b.Instrs {
			in := &b.Instrs[ii]
			buf = InstrUses(in, buf[:0])
			for _, r := range buf {
				if !cur.Has(r) {
					ds = append(ds, Diagnostic{
						ID: IDUnassignedUse, Sev: SevError, Pass: verifierPass,
						Func: f.Name, Block: bi, Instr: ii, Line: in.Pos,
						Msg: fmt.Sprintf("%s reads register %d, which is not assigned on every path from entry", in.Op, r),
					})
					cur.Set(r) // report each register once per block
				}
			}
			if d := InstrDef(in); d >= 0 {
				cur.Set(d)
			}
		}
	}
	return ds
}
