package analysis

import "closurex/internal/ir"

// BitSet is a fixed-capacity bit vector — the transfer-function currency of
// every dataflow instance in this package.
type BitSet []uint64

// NewBitSet returns an empty set with capacity for n elements.
func NewBitSet(n int) BitSet { return make(BitSet, (n+63)/64) }

// Set adds i.
func (s BitSet) Set(i int) { s[i/64] |= 1 << (uint(i) % 64) }

// Clear removes i.
func (s BitSet) Clear(i int) { s[i/64] &^= 1 << (uint(i) % 64) }

// Has reports membership of i.
func (s BitSet) Has(i int) bool { return s[i/64]&(1<<(uint(i)%64)) != 0 }

// Union adds every element of o, reporting whether s changed.
func (s BitSet) Union(o BitSet) bool {
	changed := false
	for i := range s {
		v := s[i] | o[i]
		if v != s[i] {
			s[i] = v
			changed = true
		}
	}
	return changed
}

// Intersect drops elements absent from o.
func (s BitSet) Intersect(o BitSet) {
	for i := range s {
		s[i] &= o[i]
	}
}

// Fill adds every element in [0, n).
func (s BitSet) Fill(n int) {
	for i := 0; i < n; i++ {
		s.Set(i)
	}
}

// Copy returns an independent copy.
func (s BitSet) Copy() BitSet {
	c := make(BitSet, len(s))
	copy(c, s)
	return c
}

// Equal reports element-wise equality.
func (s BitSet) Equal(o BitSet) bool {
	for i := range s {
		if s[i] != o[i] {
			return false
		}
	}
	return true
}

// Count returns the cardinality.
func (s BitSet) Count() int {
	n := 0
	for _, w := range s {
		for ; w != 0; w &= w - 1 {
			n++
		}
	}
	return n
}

// Direction orients a dataflow problem.
type Direction int

// Dataflow directions.
const (
	Forward Direction = iota
	Backward
)

// Problem is a monotone dataflow problem over a CFG. The framework owns
// iteration order and convergence; an instance supplies the lattice:
//
//   - NewValue allocates a lattice element at its initial interior value
//     (⊤ for must-problems, ⊥/empty for may-problems).
//   - Boundary allocates the entry (Forward) or exit (Backward) value.
//   - Meet folds a neighbor's out-value into acc in place.
//   - Transfer computes the block's out-value from its in-value; it must
//     not retain or mutate in.
type Problem struct {
	Dir      Direction
	NewValue func() BitSet
	Boundary func() BitSet
	Meet     func(acc, neighbor BitSet)
	Transfer func(block int, in BitSet) BitSet
}

// Solution holds the per-block fixpoint of a dataflow problem. For Forward
// problems In is at block entry and Out at block exit; for Backward
// problems In is the value flowing into the transfer function (block exit)
// and Out the result (block entry).
type Solution struct {
	In, Out []BitSet
}

// Solve runs the worklist algorithm to fixpoint. Blocks are seeded in
// reverse postorder for forward problems and postorder for backward ones,
// which makes one or two sweeps suffice for reducible flow graphs.
func Solve(c *CFG, p Problem) *Solution {
	n := len(c.Succs)
	sol := &Solution{In: make([]BitSet, n), Out: make([]BitSet, n)}
	for i := 0; i < n; i++ {
		sol.In[i] = p.NewValue()
		sol.Out[i] = p.Transfer(i, sol.In[i])
	}

	order := c.ReversePostorder()
	if p.Dir == Backward {
		for i, j := 0, len(order)-1; i < j; i, j = i+1, j-1 {
			order[i], order[j] = order[j], order[i]
		}
	}
	// Neighbors feeding a block's meet, and those notified when it changes.
	feed, notify := c.Preds, c.Succs
	if p.Dir == Backward {
		feed, notify = c.Succs, c.Preds
	}

	inWork := make([]bool, n)
	work := make([]int, 0, n)
	for _, b := range order {
		work = append(work, b)
		inWork[b] = true
	}
	for len(work) > 0 {
		b := work[0]
		work = work[1:]
		inWork[b] = false

		var in BitSet
		boundary := (p.Dir == Forward && b == 0) || (p.Dir == Backward && len(feed[b]) == 0)
		if boundary {
			in = p.Boundary()
			if len(feed[b]) > 0 { // entry block with back-edges into it
				for _, f := range feed[b] {
					p.Meet(in, sol.Out[f])
				}
			}
		} else {
			in = p.NewValue()
			for i, f := range feed[b] {
				if i == 0 {
					copy(in, sol.Out[f])
				} else {
					p.Meet(in, sol.Out[f])
				}
			}
		}
		sol.In[b] = in
		out := p.Transfer(b, in)
		if !out.Equal(sol.Out[b]) {
			sol.Out[b] = out
			for _, s := range notify[b] {
				if !inWork[s] {
					inWork[s] = true
					work = append(work, s)
				}
			}
		}
	}
	return sol
}

// InstrDef returns the register an instruction writes, or -1.
func InstrDef(in *ir.Instr) int {
	switch in.Op {
	case ir.OpConst, ir.OpMov, ir.OpBin, ir.OpUn, ir.OpLoad,
		ir.OpGlobalAddr, ir.OpFrameAddr, ir.OpCall:
		return in.Dst
	}
	return -1
}

// InstrUses appends the registers an instruction reads to dst and returns
// the extended slice (pass a reusable buffer to avoid allocation).
func InstrUses(in *ir.Instr, dst []int) []int {
	switch in.Op {
	case ir.OpMov, ir.OpUn:
		dst = append(dst, in.A)
	case ir.OpBin:
		dst = append(dst, in.A, in.B)
	case ir.OpLoad:
		dst = append(dst, in.A)
	case ir.OpStore:
		dst = append(dst, in.A, in.B)
	case ir.OpCall:
		dst = append(dst, in.Args...)
	case ir.OpRet:
		if in.A >= 0 {
			dst = append(dst, in.A)
		}
	case ir.OpCondBr:
		dst = append(dst, in.A)
	case ir.OpSanCheck:
		dst = append(dst, in.A)
	}
	return dst
}
