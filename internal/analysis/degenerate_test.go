package analysis

import (
	"testing"

	"closurex/internal/ir"
)

// Degenerate CFG shapes the dataflow machinery must not trip over: a
// single-block function (no edges at all), a block that branches to
// itself (the shortest possible loop), and liveness across unreachable
// blocks. Complements TestDominatorsUnreachableBlock in dataflow_test.go.

func singleBlockFunc() *ir.Func {
	return &ir.Func{Name: "one", NumParams: 1, NumRegs: 2, Blocks: []*ir.Block{
		{Instrs: []ir.Instr{
			{Op: ir.OpConst, Dst: 1, Imm: 2},
			{Op: ir.OpBin, Bin: ir.Add, Dst: 1, A: 0, B: 1},
			{Op: ir.OpRet, A: 1, Dst: -1},
		}},
	}}
}

func TestDominatorsSingleBlock(t *testing.T) {
	d := Dominators(BuildCFG(singleBlockFunc()))
	if len(d.IDom) != 1 || d.IDom[0] != -1 {
		t.Fatalf("IDom = %v, want [-1]", d.IDom)
	}
	if !d.Dominates(0, 0) {
		t.Fatal("entry must dominate itself")
	}
}

func TestLivenessSingleBlock(t *testing.T) {
	c := BuildCFG(singleBlockFunc())
	lv := ComputeLiveness(c)
	if !lv.LiveIn[0].Has(0) {
		t.Fatal("used param not live into the entry")
	}
	if lv.LiveIn[0].Has(1) {
		t.Fatal("locally-defined register live into the entry")
	}
	if lv.LiveOut[0].Count() != 0 {
		t.Fatalf("LiveOut of the only block = %d registers, want 0", lv.LiveOut[0].Count())
	}
}

// selfLoopFunc is b0 -> b1; b1: r1 += p0; condbr -> b1 (itself), b2.
func selfLoopFunc() *ir.Func {
	return &ir.Func{Name: "self", NumParams: 1, NumRegs: 3, Blocks: []*ir.Block{
		{Instrs: []ir.Instr{
			{Op: ir.OpConst, Dst: 1, Imm: 0},
			{Op: ir.OpBr, Dst: -1, Targets: [2]int{1, 0}},
		}},
		{Instrs: []ir.Instr{
			{Op: ir.OpBin, Bin: ir.Add, Dst: 1, A: 1, B: 0},
			{Op: ir.OpBin, Bin: ir.Lt, Dst: 2, A: 1, B: 0},
			{Op: ir.OpCondBr, A: 2, Dst: -1, Targets: [2]int{1, 2}},
		}},
		{Instrs: []ir.Instr{
			{Op: ir.OpRet, A: 1, Dst: -1},
		}},
	}}
}

func TestDominatorsSelfLoop(t *testing.T) {
	d := Dominators(BuildCFG(selfLoopFunc()))
	want := []int{-1, 0, 1}
	for i, w := range want {
		if d.IDom[i] != w {
			t.Fatalf("IDom = %v, want %v", d.IDom, want)
		}
	}
	// The self-edge must not make the block its own strict dominator's
	// problem: b1 dominates itself (reflexively) and b2, nothing else.
	if !d.Dominates(1, 1) || !d.Dominates(1, 2) || d.Dominates(1, 0) {
		t.Fatal("self-loop block dominance wrong")
	}
}

func TestLivenessSelfLoop(t *testing.T) {
	c := BuildCFG(selfLoopFunc())
	lv := ComputeLiveness(c)
	// The accumulator and the param flow around the self-edge: both are
	// live out of b1 (into its own next iteration).
	for _, r := range []int{0, 1} {
		if !lv.LiveOut[1].Has(r) {
			t.Errorf("r%d not live around the self-loop", r)
		}
	}
	// The condition register is consumed by the terminator and reborn each
	// iteration: live nowhere across an edge into b1.
	if lv.LiveIn[1].Has(2) {
		t.Error("condition register live into the self-loop head")
	}
}

func TestLivenessUnreachableBlock(t *testing.T) {
	f := singleBlockFunc()
	// An unreachable block that reads an otherwise-dead register: its
	// demand must not leak into the reachable part via stale edges.
	f.Blocks = append(f.Blocks, &ir.Block{Instrs: []ir.Instr{
		{Op: ir.OpRet, A: 1, Dst: -1},
	}})
	c := BuildCFG(f)
	lv := ComputeLiveness(c)
	if lv.LiveOut[0].Has(1) {
		t.Fatal("unreachable block's use leaked liveness into the entry")
	}
	if !lv.LiveIn[1].Has(1) {
		t.Fatal("the unreachable block's own LiveIn lost its use")
	}
}

func TestReachingDefsSelfLoop(t *testing.T) {
	f := selfLoopFunc()
	c := BuildCFG(f)
	rd := ComputeReachingDefs(c)
	var init, incr int = -1, -1
	for i, s := range rd.Sites {
		if s.Reg == 1 && s.Block == 0 {
			init = i
		}
		if s.Reg == 1 && s.Block == 1 {
			incr = i
		}
	}
	if init < 0 || incr < 0 {
		t.Fatalf("def sites not found: %+v", rd.Sites)
	}
	// Both definitions of the accumulator reach the self-loop head; only
	// the in-loop one survives to its exit.
	if !rd.In[1].Has(init) || !rd.In[1].Has(incr) {
		t.Fatal("self-loop head missing a reaching def")
	}
	if rd.Out[1].Has(init) || !rd.Out[1].Has(incr) {
		t.Fatal("self-loop exit kill set wrong")
	}
}
