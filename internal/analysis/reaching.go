package analysis

// DefSite is one register definition: the instruction at F.Blocks[Block].
// Instrs[Instr] writes register Reg. Parameters are modeled as definitions
// at a virtual site with Block == -1.
type DefSite struct {
	Block, Instr int
	Reg          int
}

// ReachingDefs is the forward may-analysis over definition sites: In[b]
// holds every DefSite index that may reach block b's entry along some
// path.
type ReachingDefs struct {
	// Sites enumerates all definition sites; bit i in the sets below refers
	// to Sites[i]. The first NumParams entries are the virtual parameter
	// definitions.
	Sites   []DefSite
	In, Out []BitSet
}

// ComputeReachingDefs solves reaching definitions for c's function.
func ComputeReachingDefs(c *CFG) *ReachingDefs {
	f := c.F
	rd := &ReachingDefs{}
	// Enumerate sites: parameters first, then textual order.
	for p := 0; p < f.NumParams; p++ {
		rd.Sites = append(rd.Sites, DefSite{Block: -1, Instr: -1, Reg: p})
	}
	byReg := make([][]int, f.NumRegs) // register -> site indices
	for p := 0; p < f.NumParams && p < f.NumRegs; p++ {
		byReg[p] = append(byReg[p], p)
	}
	for bi, b := range f.Blocks {
		for ii := range b.Instrs {
			if d := InstrDef(&b.Instrs[ii]); d >= 0 && d < f.NumRegs {
				idx := len(rd.Sites)
				rd.Sites = append(rd.Sites, DefSite{Block: bi, Instr: ii, Reg: d})
				byReg[d] = append(byReg[d], idx)
			}
		}
	}
	nsites := len(rd.Sites)

	// Per-block gen (last def of each register inside the block) and kill
	// (every other site of a register the block defines).
	n := len(f.Blocks)
	gen := make([]BitSet, n)
	kill := make([]BitSet, n)
	site := f.NumParams
	for bi, b := range f.Blocks {
		g := NewBitSet(nsites)
		k := NewBitSet(nsites)
		for ii := range b.Instrs {
			d := InstrDef(&b.Instrs[ii])
			if d < 0 || d >= f.NumRegs {
				continue
			}
			for _, other := range byReg[d] {
				if other != site {
					k.Set(other)
				}
				g.Clear(other)
			}
			g.Set(site)
			k.Clear(site)
			site++
		}
		gen[bi], kill[bi] = g, k
	}

	boundary := NewBitSet(nsites)
	for p := 0; p < f.NumParams; p++ {
		boundary.Set(p)
	}
	sol := Solve(c, Problem{
		Dir:      Forward,
		NewValue: func() BitSet { return NewBitSet(nsites) },
		Boundary: func() BitSet { return boundary.Copy() },
		Meet:     func(acc, nb BitSet) { acc.Union(nb) },
		Transfer: func(b int, in BitSet) BitSet {
			// out = gen ∪ (in − kill)
			out := in.Copy()
			for i := range out {
				out[i] = gen[b][i] | (in[i] &^ kill[b][i])
			}
			return out
		},
	})
	rd.In, rd.Out = sol.In, sol.Out
	return rd
}

// assignedInfo is the definite-assignment instance the verifier consumes: a
// forward must-analysis (meet = intersection) computing, per block, the set
// of registers assigned on EVERY path from entry. A register read where it
// is not definitely assigned can expose garbage on some execution — the
// class of bug a reordered or buggy pass introduces when it moves a use
// above its def.
type assignedInfo struct {
	in []BitSet // definitely-assigned registers at block entry
}

// computeAssigned solves definite assignment over c. Parameters (and, for
// robustness, nothing else) are assigned at entry. The interior initial
// value is ⊤ (all registers) so that loops converge to the intersection
// over real paths; unreachable blocks keep ⊤ and thus never constrain or
// produce findings.
func computeAssigned(c *CFG) *assignedInfo {
	f := c.F
	top := func() BitSet {
		s := NewBitSet(f.NumRegs)
		s.Fill(f.NumRegs)
		return s
	}
	boundary := NewBitSet(f.NumRegs)
	for p := 0; p < f.NumParams && p < f.NumRegs; p++ {
		boundary.Set(p)
	}
	sol := Solve(c, Problem{
		Dir:      Forward,
		NewValue: top,
		Boundary: func() BitSet { return boundary.Copy() },
		Meet:     func(acc, nb BitSet) { acc.Intersect(nb) },
		Transfer: func(b int, in BitSet) BitSet {
			out := in.Copy()
			for ii := range f.Blocks[b].Instrs {
				if d := InstrDef(&f.Blocks[b].Instrs[ii]); d >= 0 && d < f.NumRegs {
					out.Set(d)
				}
			}
			return out
		},
	})
	return &assignedInfo{in: sol.In}
}
