package vm

import (
	"errors"
	"fmt"

	"closurex/internal/ir"
	"closurex/internal/mem"
)

// covMapSize is the AFL-compatible bitmap size.
const covMapSize = 1 << 16

// fault constructs a sanitizer report at the current instruction.
func (v *VM) fault(kind FaultKind, in *ir.Instr, addr uint64, msg string) *Fault {
	fn := "?"
	if v.curFn != nil {
		fn = v.curFn.Name
	}
	var line int32
	if in != nil {
		line = in.Pos
	}
	return &Fault{Kind: kind, Fn: fn, Line: line, Addr: addr, Msg: msg}
}

// checkAccess classifies addr and validates an n-byte access of the given
// kind (store=true for writes).
func (v *VM) checkAccess(addr uint64, n int, store bool, in *ir.Instr) *Fault {
	switch {
	case addr < mem.PageSize:
		return v.fault(FaultNullDeref, in, addr, "")
	case addr >= GlobalsBase && addr < HeapBase:
		if addr+uint64(n) > v.Layout.End {
			return v.fault(FaultGlobalOOB, in, addr, "")
		}
		if store && v.Layout.InRodata(addr, n) {
			return v.fault(FaultWriteRodata, in, addr, "")
		}
		return nil
	case addr >= HeapBase && addr < HeapEnd:
		if err := v.Heap.Check(addr, n); err != nil {
			kind := FaultHeapOOB
			if errors.Is(err, mem.ErrUseAfterFree) {
				kind = FaultUseAfterFree
			}
			return v.fault(kind, in, addr, err.Error())
		}
		return nil
	case addr >= StackBase && addr < StackEnd:
		if addr+uint64(n) > v.sp {
			// Touching stack memory above every live frame: treat like a
			// (local) out-of-bounds, since no variable lives there.
			return v.fault(FaultWild, in, addr, "access above live frames")
		}
		return nil
	}
	return v.fault(FaultWild, in, addr, "")
}

// execFunc interprets one function activation. Go-level recursion carries
// the target's call stack; addressable locals live in the stack segment.
func (v *VM) execFunc(f *ir.Func, args []int64) (int64, error) {
	if v.depth >= v.maxDepth {
		return 0, &Fault{Kind: FaultStackOverflow, Fn: f.Name, Msg: "call depth"}
	}
	if v.sp+uint64(f.FrameSize) > StackEnd {
		return 0, &Fault{Kind: FaultStackOverflow, Fn: f.Name, Msg: "frame area"}
	}
	v.depth++
	savedFn := v.curFn
	v.curFn = f
	frame := v.sp
	v.sp += uint64(f.FrameSize)
	defer func() {
		v.depth--
		v.curFn = savedFn
		v.sp = frame
	}()
	if f.FrameSize > 0 {
		// Fresh frames read as zero: scrub whatever a previous activation
		// left behind so stack state never leaks across calls (let alone
		// test cases).
		if err := v.Mem.Zero(frame, int(f.FrameSize)); err != nil {
			return 0, &Fault{Kind: FaultOOM, Fn: f.Name, Msg: err.Error()}
		}
	}

	// Reuse a pooled register frame for this depth. Frames are zeroed on
	// reuse so register state can never leak between activations.
	for len(v.regPool) <= v.depth {
		v.regPool = append(v.regPool, nil)
	}
	regs := v.regPool[v.depth-1]
	if cap(regs) < f.NumRegs {
		regs = make([]int64, f.NumRegs+16)
		v.regPool[v.depth-1] = regs
	}
	regs = regs[:f.NumRegs]
	clear(regs)
	copy(regs, args)

	bi := 0
	for {
		blk := f.Blocks[bi]
		for ii := range blk.Instrs {
			in := &blk.Instrs[ii]
			v.instrs++
			v.budget--
			if v.budget <= 0 {
				return 0, v.fault(FaultTimeout, in, 0, "instruction budget exhausted")
			}
			switch in.Op {
			case ir.OpConst:
				regs[in.Dst] = in.Imm
			case ir.OpMov:
				regs[in.Dst] = regs[in.A]
			case ir.OpBin:
				r, flt := v.binop(in, regs[in.A], regs[in.B])
				if flt != nil {
					return 0, flt
				}
				regs[in.Dst] = r
			case ir.OpUn:
				switch in.Un {
				case ir.Neg:
					regs[in.Dst] = -regs[in.A]
				case ir.Not:
					if regs[in.A] == 0 {
						regs[in.Dst] = 1
					} else {
						regs[in.Dst] = 0
					}
				case ir.BNot:
					regs[in.Dst] = ^regs[in.A]
				}
			case ir.OpLoad:
				addr := uint64(regs[in.A] + in.Imm)
				if flt := v.checkAccess(addr, in.Size, false, in); flt != nil {
					return 0, flt
				}
				u, err := v.Mem.ReadUint(addr, in.Size)
				if err != nil {
					return 0, v.fault(FaultWild, in, addr, err.Error())
				}
				regs[in.Dst] = int64(u)
			case ir.OpStore:
				addr := uint64(regs[in.A] + in.Imm)
				if flt := v.checkAccess(addr, in.Size, true, in); flt != nil {
					return 0, flt
				}
				if err := v.Mem.WriteUint(addr, uint64(regs[in.B]), in.Size); err != nil {
					return 0, v.fault(FaultOOM, in, addr, err.Error())
				}
			case ir.OpGlobalAddr:
				regs[in.Dst] = int64(v.Layout.GlobalAddr[in.Imm])
			case ir.OpFrameAddr:
				regs[in.Dst] = int64(frame + uint64(in.Imm))
			case ir.OpCall:
				// Coverage is call-transparent: the callee records its own
				// internal edges plus one entry edge, and the caller's
				// context resumes afterwards. This keeps the set of
				// possible dynamic edges equal to the static CFG+callgraph
				// bound (passes.TotalEdges), so coverage percentages are
				// well-defined.
				saved := v.prevLoc
				r, err := v.call(in, regs)
				if err != nil {
					return 0, err
				}
				v.prevLoc = saved
				regs[in.Dst] = r
			case ir.OpRet:
				if in.A >= 0 {
					return regs[in.A], nil
				}
				return 0, nil
			case ir.OpBr:
				bi = in.Targets[0]
			case ir.OpCondBr:
				if regs[in.A] != 0 {
					bi = in.Targets[0]
				} else {
					bi = in.Targets[1]
				}
			case ir.OpCov:
				loc := uint64(in.Imm)
				idx := (loc ^ v.prevLoc) & (covMapSize - 1)
				// covMap is always bound (VMs without an external map carry
				// a scratch one), so no nil check in the hot loop.
				v.covMap[idx]++
				v.prevLoc = loc >> 1
				if v.traceEdges {
					v.pathHash = (v.pathHash ^ idx) * 1099511628211
					v.pathLen++
				}
			case ir.OpUnreachable:
				return 0, v.fault(FaultUnreachable, in, 0, "")
			case ir.OpSanCheck:
				// Budget-transparent: compensate the unconditional decrement
				// above so arming the sanitizer can never flip a borderline
				// execution into a hang verdict (differential and
				// determinism guarantees depend on this).
				v.budget++
				addr := uint64(regs[in.A] + in.Imm)
				if flt := v.sanCheck(addr, in); flt != nil {
					return 0, flt
				}
			}
			if in.IsTerminator() {
				break
			}
		}
		if t := blk.Terminator(); t == nil || t.Op == ir.OpRet || t.Op == ir.OpUnreachable {
			// Ret/Unreachable already returned above; nil cannot happen on
			// verified modules.
			return 0, v.fault(FaultUnreachable, nil, 0, "fell off block end")
		}
	}
}

// binop evaluates a binary operator with C-like 64-bit semantics.
func (v *VM) binop(in *ir.Instr, a, b int64) (int64, *Fault) {
	switch in.Bin {
	case ir.Add:
		return a + b, nil
	case ir.Sub:
		return a - b, nil
	case ir.Mul:
		return a * b, nil
	case ir.Div:
		if b == 0 {
			return 0, v.fault(FaultDivByZero, in, 0, "")
		}
		if b == -1 { // avoid Go panic on MinInt64 / -1
			return -a, nil
		}
		return a / b, nil
	case ir.Rem:
		if b == 0 {
			return 0, v.fault(FaultDivByZero, in, 0, "")
		}
		if b == -1 {
			return 0, nil
		}
		return a % b, nil
	case ir.Shl:
		return a << (uint64(b) & 63), nil
	case ir.Shr:
		return a >> (uint64(b) & 63), nil
	case ir.And:
		return a & b, nil
	case ir.Or:
		return a | b, nil
	case ir.Xor:
		return a ^ b, nil
	case ir.Eq:
		return b2i(a == b), nil
	case ir.Ne:
		return b2i(a != b), nil
	case ir.Lt:
		return b2i(a < b), nil
	case ir.Le:
		return b2i(a <= b), nil
	case ir.Gt:
		return b2i(a > b), nil
	case ir.Ge:
		return b2i(a >= b), nil
	case ir.Ult:
		return b2i(uint64(a) < uint64(b)), nil
	case ir.Ule:
		return b2i(uint64(a) <= uint64(b)), nil
	case ir.Ugt:
		return b2i(uint64(a) > uint64(b)), nil
	case ir.Uge:
		return b2i(uint64(a) >= uint64(b)), nil
	}
	return 0, v.fault(FaultBadCall, in, 0, fmt.Sprintf("bad binop %d", in.Bin))
}

func b2i(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

// call dispatches an OpCall to a module function or a builtin. Argument
// values are staged in a stack buffer: both execFunc (which copies them
// into the callee's registers immediately) and builtins (which consume
// them synchronously) are done with the buffer before any reentry.
func (v *VM) call(in *ir.Instr, regs []int64) (int64, error) {
	for len(v.argPool) <= v.depth {
		v.argPool = append(v.argPool, nil)
	}
	args := v.argPool[v.depth]
	if cap(args) < len(in.Args) {
		args = make([]int64, len(in.Args))
		v.argPool[v.depth] = args
	}
	args = args[:len(in.Args)]
	for i, a := range in.Args {
		args[i] = regs[a]
	}
	// Fast path: the callee was pre-resolved at module-commit time
	// (ResolveModule), so no string-map lookup per call. CalleeIdx 0 keeps
	// the name-lookup path for modules executed without a commit step
	// (hand-built tests, partially rewritten modules).
	switch {
	case in.CalleeIdx > 0:
		return v.execFunc(v.Mod.Funcs[in.CalleeIdx-1], args)
	case in.CalleeIdx < 0:
		return builtinSlots[-in.CalleeIdx-1](v, in, args)
	}
	if callee := v.Mod.Func(in.Callee); callee != nil {
		return v.execFunc(callee, args)
	}
	bfn, ok := builtins[in.Callee]
	if !ok {
		return 0, v.fault(FaultBadCall, in, 0, "unknown callee "+in.Callee)
	}
	return bfn(v, in, args)
}
