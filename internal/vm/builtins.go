package vm

import (
	"bytes"
	"errors"
	"fmt"
	"strconv"

	"closurex/internal/ir"
	"closurex/internal/mem"
	"closurex/internal/vfs"
)

// builtinFn is the signature of a runtime-provided routine.
type builtinFn func(v *VM, in *ir.Instr, args []int64) (int64, error)

// builtins is the C-library surface MinC targets may call. The closurex_*
// names are the wrapper routines the HeapPass/FilePass/ExitPass splice in;
// they behave identically here because the VM's heap and FD table always
// keep the bookkeeping the wrappers exist to provide — what differs between
// mechanisms is whether the harness *uses* that bookkeeping to restore
// state between test cases.
var builtins map[string]builtinFn

// Builtins returns the set of resolvable builtin names, for ir.Verify.
func Builtins() map[string]bool {
	out := make(map[string]bool, len(builtins))
	for name := range builtins {
		out[name] = true
	}
	return out
}

// IsBuiltin reports whether name is a runtime routine.
func IsBuiltin(name string) bool {
	_, ok := builtins[name]
	return ok
}

func init() {
	builtins = map[string]builtinFn{
		"exit":          biExit,
		"closurex_exit": biExit,
		"abort":         biAbort,
		"assert":        biAssert,

		"malloc":           biMalloc,
		"calloc":           biCalloc,
		"realloc":          biRealloc,
		"free":             biFree,
		"closurex_malloc":  biMalloc,
		"closurex_calloc":  biCalloc,
		"closurex_realloc": biRealloc,
		"closurex_free":    biFree,

		"memcpy":  biMemcpy,
		"memmove": biMemcpy,
		"memset":  biMemset,
		"memcmp":  biMemcmp,
		"strlen":  biStrlen,
		"strcmp":  biStrcmp,
		"strncmp": biStrncmp,
		"strcpy":  biStrcpy,

		"fopen":           biFopen,
		"fclose":          biFclose,
		"closurex_fopen":  biFopen,
		"closurex_fclose": biFclose,
		"fread":           biFread,
		"fwrite":          biFwrite,
		"fgetc":           biFgetc,
		"fseek":           biFseek,
		"ftell":           biFtell,
		"fsize":           biFsize,

		"puts":      biPuts,
		"putchar":   biPutchar,
		"print_int": biPrintInt,

		"rand":  biRand,
		"srand": biSrand,
	}
	initBuiltinTable()
}

func argn(v *VM, in *ir.Instr, args []int64, n int) error {
	if len(args) != n {
		return v.fault(FaultBadCall, in,
			0, fmt.Sprintf("%s: %d args, want %d", in.Callee, len(args), n))
	}
	return nil
}

func biExit(v *VM, in *ir.Instr, args []int64) (int64, error) {
	var code int64
	if len(args) > 0 {
		code = args[0]
	}
	return 0, &exitUnwind{code: code}
}

func biAbort(v *VM, in *ir.Instr, args []int64) (int64, error) {
	return 0, v.fault(FaultAbort, in, 0, "abort()")
}

func biAssert(v *VM, in *ir.Instr, args []int64) (int64, error) {
	if err := argn(v, in, args, 1); err != nil {
		return 0, err
	}
	if args[0] == 0 {
		return 0, v.fault(FaultAbort, in, 0, "assertion failed")
	}
	return 0, nil
}

// heapFault maps allocator errors onto fault kinds. Under -sanitize the
// fault is enriched with the offending chunk's allocation/free history,
// so double-free and invalid-free triage into per-allocation-site buckets
// like shadow-check faults do.
func heapFault(v *VM, in *ir.Instr, addr uint64, err error) *Fault {
	var flt *Fault
	switch {
	case errors.Is(err, mem.ErrDoubleFree):
		flt = v.fault(FaultDoubleFree, in, addr, err.Error())
	case errors.Is(err, mem.ErrBadFree):
		flt = v.fault(FaultBadFree, in, addr, err.Error())
	case errors.Is(err, mem.ErrUseAfterFree):
		flt = v.fault(FaultUseAfterFree, in, addr, err.Error())
	case errors.Is(err, mem.ErrHeapOOB):
		flt = v.fault(FaultHeapOOB, in, addr, err.Error())
	default:
		return v.fault(FaultOOM, in, addr, err.Error())
	}
	if v.Heap.Shadow() != nil {
		rep := &SanReport{Addr: addr}
		if c, freed := v.Heap.QuarantinedAt(addr); freed {
			fillAllocSite(rep, c)
			rep.FreeFn, rep.FreeLine = c.FreeFn, c.FreeLine
		} else if c, live := v.Heap.ChunkAt(addr); live {
			fillAllocSite(rep, c)
		}
		flt.San = rep
	}
	return flt
}

// noteAllocSite records the call site about to enter the allocator, so
// the chunk carries its allocation/free site for sanitizer reports.
func noteAllocSite(v *VM, in *ir.Instr) {
	fn := "?"
	if v.curFn != nil {
		fn = v.curFn.Name
	}
	v.Heap.NoteSite(fn, in.Pos)
	if in.TrackElide {
		v.Heap.NoteElide()
	}
}

func biMalloc(v *VM, in *ir.Instr, args []int64) (int64, error) {
	if err := argn(v, in, args, 1); err != nil {
		return 0, err
	}
	if args[0] < 0 {
		return 0, nil // size_t overflow request: malloc returns NULL
	}
	noteAllocSite(v, in)
	a, err := v.Heap.Alloc(uint64(args[0]))
	if err != nil {
		return 0, nil // NULL; unchecked callers then null-deref
	}
	return int64(a), nil
}

func biCalloc(v *VM, in *ir.Instr, args []int64) (int64, error) {
	if err := argn(v, in, args, 2); err != nil {
		return 0, err
	}
	n, sz := args[0], args[1]
	if n < 0 || sz < 0 || (sz != 0 && n > (1<<40)/max64(sz, 1)) {
		return 0, nil
	}
	noteAllocSite(v, in)
	a, err := v.Heap.AllocZeroed(uint64(n * sz))
	if err != nil {
		return 0, nil
	}
	return int64(a), nil
}

func biRealloc(v *VM, in *ir.Instr, args []int64) (int64, error) {
	if err := argn(v, in, args, 2); err != nil {
		return 0, err
	}
	if args[1] < 0 {
		return 0, nil
	}
	noteAllocSite(v, in)
	a, err := v.Heap.Realloc(uint64(args[0]), uint64(args[1]))
	if err != nil {
		if errors.Is(err, mem.ErrHeapOOM) {
			return 0, nil
		}
		return 0, heapFault(v, in, uint64(args[0]), err)
	}
	return int64(a), nil
}

func biFree(v *VM, in *ir.Instr, args []int64) (int64, error) {
	if err := argn(v, in, args, 1); err != nil {
		return 0, err
	}
	noteAllocSite(v, in)
	if err := v.Heap.Free(uint64(args[0])); err != nil {
		return 0, heapFault(v, in, uint64(args[0]), err)
	}
	return 0, nil
}

// copyRegion validates and performs an n-byte read or write region access.
func (v *VM) readRegion(in *ir.Instr, addr uint64, n int) ([]byte, *Fault) {
	if flt := v.checkAccess(addr, n, false, in); flt != nil {
		return nil, flt
	}
	b, err := v.Mem.Read(addr, n)
	if err != nil {
		return nil, v.fault(FaultWild, in, addr, err.Error())
	}
	return b, nil
}

func (v *VM) writeRegion(in *ir.Instr, addr uint64, data []byte) *Fault {
	if flt := v.checkAccess(addr, len(data), true, in); flt != nil {
		return flt
	}
	if err := v.Mem.Write(addr, data); err != nil {
		return v.fault(FaultOOM, in, addr, err.Error())
	}
	return nil
}

func biMemcpy(v *VM, in *ir.Instr, args []int64) (int64, error) {
	if err := argn(v, in, args, 3); err != nil {
		return 0, err
	}
	dst, src, n := uint64(args[0]), uint64(args[1]), args[2]
	if n < 0 {
		// The md4c bug class: a negative length converted to size_t.
		return 0, v.fault(FaultNegativeSize, in, dst, fmt.Sprintf("memcpy size %d", n))
	}
	if n == 0 {
		return args[0], nil
	}
	v.budget -= n
	if v.budget <= 0 {
		return 0, v.fault(FaultTimeout, in, 0, "budget exhausted in memcpy")
	}
	b, flt := v.readRegion(in, src, int(n))
	if flt != nil {
		return 0, flt
	}
	if flt := v.writeRegion(in, dst, b); flt != nil {
		return 0, flt
	}
	return args[0], nil
}

func biMemset(v *VM, in *ir.Instr, args []int64) (int64, error) {
	if err := argn(v, in, args, 3); err != nil {
		return 0, err
	}
	dst, c, n := uint64(args[0]), byte(args[1]), args[2]
	if n < 0 {
		return 0, v.fault(FaultNegativeSize, in, dst, fmt.Sprintf("memset size %d", n))
	}
	if n == 0 {
		return args[0], nil
	}
	v.budget -= n
	if v.budget <= 0 {
		return 0, v.fault(FaultTimeout, in, 0, "budget exhausted in memset")
	}
	buf := make([]byte, n)
	if c != 0 {
		for i := range buf {
			buf[i] = c
		}
	}
	if flt := v.writeRegion(in, dst, buf); flt != nil {
		return 0, flt
	}
	return args[0], nil
}

func biMemcmp(v *VM, in *ir.Instr, args []int64) (int64, error) {
	if err := argn(v, in, args, 3); err != nil {
		return 0, err
	}
	n := args[2]
	if n < 0 {
		return 0, v.fault(FaultNegativeSize, in, uint64(args[0]), fmt.Sprintf("memcmp size %d", n))
	}
	if n == 0 {
		return 0, nil
	}
	v.budget -= n
	a, flt := v.readRegion(in, uint64(args[0]), int(n))
	if flt != nil {
		return 0, flt
	}
	b, flt := v.readRegion(in, uint64(args[1]), int(n))
	if flt != nil {
		return 0, flt
	}
	for i := range a {
		if a[i] != b[i] {
			if a[i] < b[i] {
				return -1, nil
			}
			return 1, nil
		}
	}
	return 0, nil
}

// contigReadEnd returns a conservative exclusive end address such that
// every byte of [addr, end) passes the per-byte read access check, given
// that addr itself just did. The string walkers use it to validate whole
// runs at once; when the window is exhausted the caller re-classifies, so
// a string legitimately spanning adjacent heap chunks still walks exactly
// as the byte-at-a-time loop would.
func (v *VM) contigReadEnd(addr uint64) uint64 {
	switch {
	case addr >= GlobalsBase && addr < HeapBase:
		if e := v.Layout.End; addr < e {
			return e
		}
	case addr >= HeapBase && addr < HeapEnd:
		if ch, ok := v.Heap.ChunkAt(addr); ok {
			return ch.Addr + ch.Size
		}
	case addr >= StackBase && addr < StackEnd:
		if addr < v.sp {
			return v.sp
		}
	}
	return addr + 1
}

// cstr walks a NUL-terminated string with the per-byte loop's exact fault
// and budget semantics, scanning page-sized valid windows at memory speed
// instead of one map lookup per byte.
func (v *VM) cstr(in *ir.Instr, addr uint64) ([]byte, *Fault) {
	var out []byte
	for {
		if flt := v.checkAccess(addr, 1, false, in); flt != nil {
			return nil, flt
		}
		end := v.contigReadEnd(addr)
		if pe := (addr | (mem.PageSize - 1)) + 1; end > pe {
			end = pe
		}
		win := int(end - addr)
		var data []byte
		k := 0 // bytes before the terminator; absent pages read as zero
		if pg := v.Mem.PageView(addr >> mem.PageShift); pg != nil {
			off := addr & (mem.PageSize - 1)
			data = pg[off : off+uint64(win)]
			if k = bytes.IndexByte(data, 0); k < 0 {
				k = win
			}
		}
		if k > 0 && v.budget <= int64(k) {
			// The byte loop decrements after every non-terminator byte and
			// stops the moment the budget reaches zero.
			j := v.budget
			if j < 1 {
				j = 1
			}
			v.budget -= j
			return nil, v.fault(FaultTimeout, in, addr+uint64(j), "budget exhausted in string walk")
		}
		out = append(out, data[:k]...)
		v.budget -= int64(k)
		if k < win {
			return out, nil
		}
		addr = end
	}
}

func biStrlen(v *VM, in *ir.Instr, args []int64) (int64, error) {
	if err := argn(v, in, args, 1); err != nil {
		return 0, err
	}
	s, flt := v.cstr(in, uint64(args[0]))
	if flt != nil {
		return 0, flt
	}
	return int64(len(s)), nil
}

func biStrcmp(v *VM, in *ir.Instr, args []int64) (int64, error) {
	if err := argn(v, in, args, 2); err != nil {
		return 0, err
	}
	a, flt := v.cstr(in, uint64(args[0]))
	if flt != nil {
		return 0, flt
	}
	b, flt := v.cstr(in, uint64(args[1]))
	if flt != nil {
		return 0, flt
	}
	return int64(cmpBytes(a, b)), nil
}

func biStrncmp(v *VM, in *ir.Instr, args []int64) (int64, error) {
	if err := argn(v, in, args, 3); err != nil {
		return 0, err
	}
	n := args[2]
	if n <= 0 {
		return 0, nil
	}
	a, flt := v.cstrBounded(in, uint64(args[0]), n)
	if flt != nil {
		return 0, flt
	}
	b, flt := v.cstrBounded(in, uint64(args[1]), n)
	if flt != nil {
		return 0, flt
	}
	return int64(cmpBytes(a, b)), nil
}

// cstrBounded reads at most n bytes of a C string (stops at NUL).
func (v *VM) cstrBounded(in *ir.Instr, addr uint64, n int64) ([]byte, *Fault) {
	var out []byte
	for n > 0 {
		if flt := v.checkAccess(addr, 1, false, in); flt != nil {
			return nil, flt
		}
		end := v.contigReadEnd(addr)
		if pe := (addr | (mem.PageSize - 1)) + 1; end > pe {
			end = pe
		}
		win := int(end - addr)
		if int64(win) > n {
			win = int(n)
		}
		var data []byte
		k := 0
		if pg := v.Mem.PageView(addr >> mem.PageShift); pg != nil {
			off := addr & (mem.PageSize - 1)
			data = pg[off : off+uint64(win)]
			if k = bytes.IndexByte(data, 0); k < 0 {
				k = win
			}
		}
		if k > 0 && v.budget <= int64(k) {
			j := v.budget
			if j < 1 {
				j = 1
			}
			v.budget -= j
			return nil, v.fault(FaultTimeout, in, addr+uint64(j), "budget exhausted")
		}
		out = append(out, data[:k]...)
		v.budget -= int64(k)
		if k < win {
			return out, nil
		}
		addr += uint64(win)
		n -= int64(win)
	}
	return out, nil
}

func cmpBytes(a, b []byte) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			if a[i] < b[i] {
				return -1
			}
			return 1
		}
	}
	switch {
	case len(a) < len(b):
		return -1
	case len(a) > len(b):
		return 1
	}
	return 0
}

func biStrcpy(v *VM, in *ir.Instr, args []int64) (int64, error) {
	if err := argn(v, in, args, 2); err != nil {
		return 0, err
	}
	s, flt := v.cstr(in, uint64(args[1]))
	if flt != nil {
		return 0, flt
	}
	s = append(s, 0)
	if flt := v.writeRegion(in, uint64(args[0]), s); flt != nil {
		return 0, flt
	}
	return args[0], nil
}

func biFopen(v *VM, in *ir.Instr, args []int64) (int64, error) {
	if err := argn(v, in, args, 2); err != nil {
		return 0, err
	}
	path, flt := v.cstr(in, uint64(args[0]))
	if flt != nil {
		return 0, flt
	}
	mode, flt := v.cstr(in, uint64(args[1]))
	if flt != nil {
		return 0, flt
	}
	md := "r"
	switch {
	case len(mode) == 0:
	case mode[0] == 'w':
		md = "w"
	case mode[0] == 'a':
		md = "a"
	}
	// Interning the overwhelmingly common path avoids a per-fopen string
	// allocation on the hot loop (targets reopen /input every test case);
	// the []byte==string comparison itself does not allocate.
	var p string
	if string(path) == vfs.InputPath {
		p = vfs.InputPath
	} else {
		p = string(path)
	}
	fd, err := v.FS.Open(p, md)
	if err != nil {
		// fopen returns NULL on failure (including EMFILE); targets that
		// abort on NULL turn descriptor exhaustion into the false crashes
		// the paper describes.
		return 0, nil
	}
	if in.FileElide {
		v.FS.MarkElided(fd)
	}
	return int64(fd), nil
}

func biFclose(v *VM, in *ir.Instr, args []int64) (int64, error) {
	if err := argn(v, in, args, 1); err != nil {
		return 0, err
	}
	if err := v.FS.Close(int(args[0])); err != nil {
		return 0, v.fault(FaultBadFree, in, uint64(args[0]), "fclose: "+err.Error())
	}
	return 0, nil
}

func biFread(v *VM, in *ir.Instr, args []int64) (int64, error) {
	if err := argn(v, in, args, 4); err != nil {
		return 0, err
	}
	ptr, size, nmemb, fd := uint64(args[0]), args[1], args[2], int(args[3])
	if size <= 0 || nmemb <= 0 {
		return 0, nil
	}
	total := size * nmemb
	if total < 0 || total > 1<<26 {
		return 0, v.fault(FaultNegativeSize, in, ptr, fmt.Sprintf("fread size %d", total))
	}
	v.budget -= total
	if v.budget <= 0 {
		return 0, v.fault(FaultTimeout, in, 0, "budget exhausted in fread")
	}
	if int64(cap(v.ioBuf)) < total {
		v.ioBuf = make([]byte, total)
	}
	buf := v.ioBuf[:total]
	n, err := v.FS.Read(fd, buf)
	if err != nil {
		return 0, nil // EOF/err: fread returns 0 items
	}
	if n == 0 {
		return 0, nil
	}
	if flt := v.writeRegion(in, ptr, buf[:n]); flt != nil {
		return 0, flt
	}
	return int64(n) / size, nil
}

func biFwrite(v *VM, in *ir.Instr, args []int64) (int64, error) {
	if err := argn(v, in, args, 4); err != nil {
		return 0, err
	}
	ptr, size, nmemb, fd := uint64(args[0]), args[1], args[2], int(args[3])
	if size <= 0 || nmemb <= 0 {
		return 0, nil
	}
	total := size * nmemb
	if total < 0 || total > 1<<26 {
		return 0, v.fault(FaultNegativeSize, in, ptr, fmt.Sprintf("fwrite size %d", total))
	}
	v.budget -= total
	b, flt := v.readRegion(in, ptr, int(total))
	if flt != nil {
		return 0, flt
	}
	n, err := v.FS.Write(fd, b)
	if err != nil {
		return 0, nil
	}
	return int64(n) / size, nil
}

func biFgetc(v *VM, in *ir.Instr, args []int64) (int64, error) {
	if err := argn(v, in, args, 1); err != nil {
		return 0, err
	}
	c, err := v.FS.Getc(int(args[0]))
	if err != nil {
		return -1, nil
	}
	return int64(c), nil
}

func biFseek(v *VM, in *ir.Instr, args []int64) (int64, error) {
	if err := argn(v, in, args, 3); err != nil {
		return 0, err
	}
	if _, err := v.FS.Seek(int(args[0]), args[1], int(args[2])); err != nil {
		return -1, nil
	}
	return 0, nil
}

func biFtell(v *VM, in *ir.Instr, args []int64) (int64, error) {
	if err := argn(v, in, args, 1); err != nil {
		return 0, err
	}
	off, err := v.FS.Tell(int(args[0]))
	if err != nil {
		return -1, nil
	}
	return off, nil
}

func biFsize(v *VM, in *ir.Instr, args []int64) (int64, error) {
	if err := argn(v, in, args, 1); err != nil {
		return 0, err
	}
	n, err := v.FS.Size(int(args[0]))
	if err != nil {
		return -1, nil
	}
	return n, nil
}

func biPuts(v *VM, in *ir.Instr, args []int64) (int64, error) {
	if err := argn(v, in, args, 1); err != nil {
		return 0, err
	}
	s, flt := v.cstr(in, uint64(args[0]))
	if flt != nil {
		return 0, flt
	}
	v.appendStdout(append(s, '\n'))
	return 0, nil
}

func biPutchar(v *VM, in *ir.Instr, args []int64) (int64, error) {
	if err := argn(v, in, args, 1); err != nil {
		return 0, err
	}
	v.appendStdout([]byte{byte(args[0])})
	return args[0], nil
}

func biPrintInt(v *VM, in *ir.Instr, args []int64) (int64, error) {
	if err := argn(v, in, args, 1); err != nil {
		return 0, err
	}
	v.appendStdout([]byte(strconv.FormatInt(args[0], 10)))
	return 0, nil
}

func biRand(v *VM, in *ir.Instr, args []int64) (int64, error) {
	return int64(v.rand() & 0x7fffffff), nil
}

func biSrand(v *VM, in *ir.Instr, args []int64) (int64, error) {
	if err := argn(v, in, args, 1); err != nil {
		return 0, err
	}
	v.rngState = uint64(args[0]) | 1
	return 0, nil
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
