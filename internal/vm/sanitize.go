package vm

import (
	"fmt"

	"closurex/internal/ir"
	"closurex/internal/mem"
)

// sanCheck executes one OpSanCheck: it consults the shadow plane for the
// heap access the immediately following load/store will perform, and
// raises a structured sanitizer fault when the shadow says the bytes are
// not addressable. Non-heap addresses (globals, frame, rodata) pass
// through: the interpreter's checkAccess validates those as always.
func (v *VM) sanCheck(addr uint64, in *ir.Instr) *Fault {
	sh := v.Heap.Shadow()
	if sh == nil || !sh.Covers(addr) {
		return nil
	}
	code, ok := sh.Check(addr, in.Size)
	if ok {
		return nil
	}
	kind := FaultHeapOOB
	if code == mem.ShadowFreed {
		kind = FaultUseAfterFree
	}
	rep := &SanReport{Write: in.B == 1, Size: in.Size, Addr: addr}
	if c, live := v.Heap.ChunkAt(addr); live {
		// Access starts in-bounds but overruns the chunk tail.
		fillAllocSite(rep, c)
	} else if c, freed := v.Heap.QuarantinedAt(addr); freed {
		fillAllocSite(rep, c)
		rep.FreeFn, rep.FreeLine = c.FreeFn, c.FreeLine
	} else if c, near := v.Heap.ChunkNear(addr); near {
		// Redzone hit just past a live chunk: attribute the overflow to
		// the allocation being overflowed.
		fillAllocSite(rep, c)
	}
	flt := v.fault(kind, in, addr, fmt.Sprintf("shadow byte %#x blocks %s of %d bytes", code, rep.rw(), in.Size))
	flt.San = rep
	return flt
}

func fillAllocSite(rep *SanReport, c mem.Chunk) {
	rep.ChunkAddr, rep.ChunkSize = c.Addr, c.Size
	rep.AllocFn, rep.AllocLine = c.AllocFn, c.AllocLine
}
