package vm

import (
	"testing"
	"testing/quick"

	"closurex/internal/ir"
)

// buildModule wraps fns into a verified module.
func buildModule(t *testing.T, globals []*ir.Global, fns ...*ir.Func) *ir.Module {
	t.Helper()
	m := ir.NewModule("test")
	for _, g := range globals {
		m.AddGlobal(g)
	}
	for _, f := range fns {
		if err := m.AddFunc(f); err != nil {
			t.Fatal(err)
		}
	}
	if err := ir.Verify(m, Builtins()); err != nil {
		t.Fatalf("Verify: %v", err)
	}
	return m
}

func run(t *testing.T, m *ir.Module, fn string, args ...int64) Result {
	t.Helper()
	v, err := New(m, Options{})
	if err != nil {
		t.Fatal(err)
	}
	return v.Call(fn, args...)
}

func TestArithmetic(t *testing.T) {
	cases := []struct {
		op   ir.BinOp
		a, b int64
		want int64
	}{
		{ir.Add, 2, 3, 5},
		{ir.Sub, 2, 3, -1},
		{ir.Mul, -4, 6, -24},
		{ir.Div, 7, 2, 3},
		{ir.Div, -7, 2, -3},
		{ir.Div, -9223372036854775808, -1, -9223372036854775808},
		{ir.Rem, 7, 3, 1},
		{ir.Rem, -7, 3, -1},
		{ir.Rem, -9223372036854775808, -1, 0},
		{ir.Shl, 1, 4, 16},
		{ir.Shr, -8, 1, -4},
		{ir.Shl, 1, 64 + 2, 4}, // count masked to 6 bits
		{ir.And, 0b1100, 0b1010, 0b1000},
		{ir.Or, 0b1100, 0b1010, 0b1110},
		{ir.Xor, 0b1100, 0b1010, 0b0110},
		{ir.Eq, 4, 4, 1},
		{ir.Ne, 4, 4, 0},
		{ir.Lt, -1, 0, 1},
		{ir.Le, 0, 0, 1},
		{ir.Gt, 1, 2, 0},
		{ir.Ge, 2, 2, 1},
		{ir.Ult, -1, 0, 0}, // unsigned: max > 0
		{ir.Ugt, -1, 0, 1},
		{ir.Ule, 1, 1, 1},
		{ir.Uge, 0, -1, 0},
	}
	for _, c := range cases {
		b := ir.NewBuilder("f", 2)
		b.Ret(b.Bin(c.op, 0, 1))
		m := buildModule(t, nil, b.F)
		res := run(t, m, "f", c.a, c.b)
		if res.Fault != nil {
			t.Errorf("%s(%d,%d): fault %v", c.op, c.a, c.b, res.Fault)
			continue
		}
		if res.Ret != c.want {
			t.Errorf("%s(%d,%d) = %d, want %d", c.op, c.a, c.b, res.Ret, c.want)
		}
	}
}

func TestUnaryOps(t *testing.T) {
	cases := []struct {
		op      ir.UnOp
		a, want int64
	}{
		{ir.Neg, 5, -5}, {ir.Not, 0, 1}, {ir.Not, 7, 0}, {ir.BNot, 0, -1},
	}
	for _, c := range cases {
		b := ir.NewBuilder("f", 1)
		b.Ret(b.Un(c.op, 0))
		m := buildModule(t, nil, b.F)
		if res := run(t, m, "f", c.a); res.Ret != c.want {
			t.Errorf("%s(%d) = %d, want %d", c.op, c.a, res.Ret, c.want)
		}
	}
}

func TestDivByZeroFaults(t *testing.T) {
	for _, op := range []ir.BinOp{ir.Div, ir.Rem} {
		b := ir.NewBuilder("f", 2)
		b.Ret(b.Bin(op, 0, 1))
		m := buildModule(t, nil, b.F)
		res := run(t, m, "f", 10, 0)
		if res.Fault == nil || res.Fault.Kind != FaultDivByZero {
			t.Errorf("%s by zero: fault = %v, want DivByZero", op, res.Fault)
		}
	}
}

func TestControlFlowLoop(t *testing.T) {
	// sum 1..n via a loop: tests CondBr, Br, Mov.
	b := ir.NewBuilder("sum", 1)
	sum := b.Const(0)
	i := b.Const(1)
	header := b.NewBlock()
	body := b.NewBlock()
	exit := b.NewBlock()
	b.Br(header)
	b.SetBlock(header)
	b.CondBr(b.Bin(ir.Le, i, 0), body, exit)
	b.SetBlock(body)
	b.Mov(sum, b.Bin(ir.Add, sum, i))
	b.Mov(i, b.Bin(ir.Add, i, b.Const(1)))
	b.Br(header)
	b.SetBlock(exit)
	b.Ret(sum)
	m := buildModule(t, nil, b.F)
	if res := run(t, m, "sum", 10); res.Ret != 55 {
		t.Fatalf("sum(10) = %d, want 55", res.Ret)
	}
}

func TestRecursionAndCalls(t *testing.T) {
	// fib(n) recursive.
	b := ir.NewBuilder("fib", 1)
	rec := b.NewBlock()
	base := b.NewBlock()
	b.CondBr(b.Bin(ir.Lt, 0, b.Const(2)), base, rec)
	b.SetBlock(base)
	b.Ret(0)
	b.SetBlock(rec)
	f1 := b.Call("fib", b.Bin(ir.Sub, 0, b.Const(1)))
	f2 := b.Call("fib", b.Bin(ir.Sub, 0, b.Const(2)))
	b.Ret(b.Bin(ir.Add, f1, f2))
	m := buildModule(t, nil, b.F)
	if res := run(t, m, "fib", 15); res.Ret != 610 {
		t.Fatalf("fib(15) = %d, want 610", res.Ret)
	}
}

func TestStackOverflowDepth(t *testing.T) {
	b := ir.NewBuilder("inf", 1)
	b.Ret(b.Call("inf", 0))
	m := buildModule(t, nil, b.F)
	res := run(t, m, "inf", 0)
	if res.Fault == nil || res.Fault.Kind != FaultStackOverflow {
		t.Fatalf("fault = %v, want StackOverflow", res.Fault)
	}
}

func TestTimeoutBudget(t *testing.T) {
	b := ir.NewBuilder("spin", 0)
	loop := b.NewBlock()
	b.Br(loop)
	b.SetBlock(loop)
	b.Br(loop)
	m := buildModule(t, nil, b.F)
	v, err := New(m, Options{Budget: 1000})
	if err != nil {
		t.Fatal(err)
	}
	res := v.Call("spin")
	if res.Fault == nil || res.Fault.Kind != FaultTimeout {
		t.Fatalf("fault = %v, want Timeout", res.Fault)
	}
}

func TestFrameLocalsLoadStore(t *testing.T) {
	// store 0xAB into a local array byte and read it back.
	b := ir.NewBuilder("f", 0)
	off := b.Alloca(16)
	addr := b.FrameAddr(off)
	b.Store(addr, b.Const(0xAB), 3, 1)
	b.Ret(b.Load(addr, 3, 1))
	m := buildModule(t, nil, b.F)
	if res := run(t, m, "f"); res.Ret != 0xAB {
		t.Fatalf("local byte = %#x, want 0xAB (fault %v)", res.Ret, res.Fault)
	}
}

func TestFreshFramesAreZeroed(t *testing.T) {
	// callee writes a local then returns; second call must read zero.
	cal := ir.NewBuilder("dirty", 1)
	off := cal.Alloca(8)
	addr := cal.FrameAddr(off)
	old := cal.Load(addr, 0, 8)
	cal.Store(addr, cal.Const(0x5a5a), 0, 8)
	cal.Ret(old)
	b := ir.NewBuilder("main", 0)
	first := b.Call("dirty", b.Const(0))
	_ = first
	second := b.Call("dirty", b.Const(0))
	b.Ret(second)
	m := buildModule(t, nil, cal.F, b.F)
	if res := run(t, m, "main"); res.Ret != 0 {
		t.Fatalf("stale frame observed: %#x", res.Ret)
	}
}

func TestGlobalLoadStore(t *testing.T) {
	g := &ir.Global{Name: "counter", Size: 8}
	b := ir.NewBuilder("bump", 0)
	ga := b.GlobalAddr(0)
	v := b.Load(ga, 0, 8)
	nv := b.Bin(ir.Add, v, b.Const(1))
	b.Store(ga, nv, 0, 8)
	b.Ret(nv)
	m := buildModule(t, []*ir.Global{g}, b.F)
	vmach, err := New(m, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for want := int64(1); want <= 3; want++ {
		if res := vmach.Call("bump"); res.Ret != want {
			t.Fatalf("bump = %d, want %d", res.Ret, want)
		}
	}
}

func TestGlobalInitializer(t *testing.T) {
	g := &ir.Global{Name: "magic", Size: 8, Init: []byte{0x2a}}
	b := ir.NewBuilder("get", 0)
	b.Ret(b.Load(b.GlobalAddr(0), 0, 8))
	m := buildModule(t, []*ir.Global{g}, b.F)
	if res := run(t, m, "get"); res.Ret != 42 {
		t.Fatalf("init global = %d, want 42", res.Ret)
	}
}

func TestNullDerefFaults(t *testing.T) {
	b := ir.NewBuilder("f", 0)
	b.Ret(b.Load(b.Const(0), 0, 8))
	m := buildModule(t, nil, b.F)
	res := run(t, m, "f")
	if res.Fault == nil || res.Fault.Kind != FaultNullDeref {
		t.Fatalf("fault = %v, want NullDeref", res.Fault)
	}
}

func TestWildAccessFaults(t *testing.T) {
	b := ir.NewBuilder("f", 0)
	b.Ret(b.Load(b.Const(0x7000_0000), 0, 8))
	m := buildModule(t, nil, b.F)
	res := run(t, m, "f")
	if res.Fault == nil || res.Fault.Kind != FaultWild {
		t.Fatalf("fault = %v, want Wild", res.Fault)
	}
}

func TestGlobalOOBFaults(t *testing.T) {
	g := &ir.Global{Name: "g", Size: 8}
	b := ir.NewBuilder("f", 0)
	ga := b.GlobalAddr(0)
	b.Ret(b.Load(ga, 4096, 8)) // way past the globals image
	m := buildModule(t, []*ir.Global{g}, b.F)
	res := run(t, m, "f")
	if res.Fault == nil || res.Fault.Kind != FaultGlobalOOB {
		t.Fatalf("fault = %v, want GlobalOOB", res.Fault)
	}
}

func TestWriteRodataFaults(t *testing.T) {
	g := &ir.Global{Name: "s", Size: 8, Const: true, Section: ir.SectionRodata, Init: []byte("hi")}
	b := ir.NewBuilder("f", 0)
	b.Store(b.GlobalAddr(0), b.Const(1), 0, 1)
	b.Ret(-1)
	m := buildModule(t, []*ir.Global{g}, b.F)
	res := run(t, m, "f")
	if res.Fault == nil || res.Fault.Kind != FaultWriteRodata {
		t.Fatalf("fault = %v, want WriteRodata", res.Fault)
	}
}

func TestHeapMallocFreeRoundTrip(t *testing.T) {
	b := ir.NewBuilder("f", 0)
	p := b.Call("malloc", b.Const(32))
	b.Store(p, b.Const(123), 8, 8)
	v := b.Load(p, 8, 8)
	r := b.Call("free", p)
	_ = r
	b.Ret(v)
	m := buildModule(t, nil, b.F)
	res := run(t, m, "f")
	if res.Fault != nil || res.Ret != 123 {
		t.Fatalf("heap round trip = %d, fault %v", res.Ret, res.Fault)
	}
}

func TestHeapOOBFaults(t *testing.T) {
	b := ir.NewBuilder("f", 0)
	p := b.Call("malloc", b.Const(8))
	b.Ret(b.Load(p, 8, 8)) // one past the end
	m := buildModule(t, nil, b.F)
	res := run(t, m, "f")
	if res.Fault == nil || res.Fault.Kind != FaultHeapOOB {
		t.Fatalf("fault = %v, want HeapOOB", res.Fault)
	}
}

func TestUseAfterFreeFaults(t *testing.T) {
	b := ir.NewBuilder("f", 0)
	p := b.Call("malloc", b.Const(8))
	_ = b.Call("free", p)
	b.Ret(b.Load(p, 0, 8))
	m := buildModule(t, nil, b.F)
	res := run(t, m, "f")
	if res.Fault == nil || res.Fault.Kind != FaultUseAfterFree {
		t.Fatalf("fault = %v, want UseAfterFree", res.Fault)
	}
}

func TestDoubleFreeFaults(t *testing.T) {
	b := ir.NewBuilder("f", 0)
	p := b.Call("malloc", b.Const(8))
	_ = b.Call("free", p)
	_ = b.Call("free", p)
	b.Ret(-1)
	m := buildModule(t, nil, b.F)
	res := run(t, m, "f")
	if res.Fault == nil || res.Fault.Kind != FaultDoubleFree {
		t.Fatalf("fault = %v, want DoubleFree", res.Fault)
	}
}

func TestExitUnwinds(t *testing.T) {
	inner := ir.NewBuilder("inner", 0)
	_ = inner.Call("exit", inner.Const(3))
	inner.Ret(-1)
	outer := ir.NewBuilder("outer", 0)
	_ = outer.Call("inner")
	outer.Ret(outer.Const(99)) // must never execute
	m := buildModule(t, nil, inner.F, outer.F)
	res := run(t, m, "outer")
	if !res.Exited || res.ExitCode != 3 || res.Fault != nil {
		t.Fatalf("res = %+v, want clean exit(3)", res)
	}
}

func TestAbortFaults(t *testing.T) {
	b := ir.NewBuilder("f", 0)
	_ = b.Call("abort")
	b.Ret(-1)
	m := buildModule(t, nil, b.F)
	res := run(t, m, "f")
	if res.Fault == nil || res.Fault.Kind != FaultAbort {
		t.Fatalf("fault = %v, want Abort", res.Fault)
	}
}

func TestUnreachableFaults(t *testing.T) {
	b := ir.NewBuilder("f", 0)
	b.Unreachable()
	m := buildModule(t, nil, b.F)
	res := run(t, m, "f")
	if res.Fault == nil || res.Fault.Kind != FaultUnreachable {
		t.Fatalf("fault = %v, want Unreachable", res.Fault)
	}
}

func TestMemcpyNegativeSizeFaults(t *testing.T) {
	b := ir.NewBuilder("f", 0)
	p := b.Call("malloc", b.Const(16))
	q := b.Call("malloc", b.Const(16))
	_ = b.Call("memcpy", p, q, b.Const(-5))
	b.Ret(-1)
	m := buildModule(t, nil, b.F)
	res := run(t, m, "f")
	if res.Fault == nil || res.Fault.Kind != FaultNegativeSize {
		t.Fatalf("fault = %v, want NegativeSize", res.Fault)
	}
}

func TestCallUnknownFunctionFaults(t *testing.T) {
	m := ir.NewModule("t")
	b := ir.NewBuilder("f", 0)
	b.Ret(-1)
	_ = m.AddFunc(b.F)
	v, err := New(m, Options{})
	if err != nil {
		t.Fatal(err)
	}
	res := v.Call("missing")
	if res.Fault == nil || res.Fault.Kind != FaultBadCall {
		t.Fatalf("fault = %v, want BadCall", res.Fault)
	}
}

func TestCoverageMapAndPathTrace(t *testing.T) {
	b := ir.NewBuilder("f", 1)
	then := b.NewBlock()
	els := b.NewBlock()
	b.F.Blocks[0].Instrs = append(b.F.Blocks[0].Instrs, ir.Instr{Op: ir.OpCov, Imm: 0x11, Dst: -1, A: -1, B: -1})
	b.CondBr(0, then, els)
	b.SetBlock(then)
	b.F.Blocks[then].Instrs = append(b.F.Blocks[then].Instrs, ir.Instr{Op: ir.OpCov, Imm: 0x22, Dst: -1, A: -1, B: -1})
	b.Ret(b.Const(1))
	b.SetBlock(els)
	b.F.Blocks[els].Instrs = append(b.F.Blocks[els].Instrs, ir.Instr{Op: ir.OpCov, Imm: 0x33, Dst: -1, A: -1, B: -1})
	b.Ret(b.Const(0))
	m := buildModule(t, nil, b.F)

	cov := make([]byte, 1<<16)
	v, err := New(m, Options{CovMap: cov, TraceEdges: true})
	if err != nil {
		t.Fatal(err)
	}
	r1 := v.Call("f", 1)
	var hits int
	for _, c := range cov {
		if c != 0 {
			hits++
		}
	}
	if hits != 2 {
		t.Fatalf("edges hit = %d, want 2", hits)
	}
	if r1.PathLen != 2 {
		t.Fatalf("PathLen = %d, want 2", r1.PathLen)
	}
	r2 := v.Call("f", 0)
	if r1.PathHash == r2.PathHash {
		t.Fatal("different paths produced identical path hashes")
	}
	r3 := v.Call("f", 1)
	if r1.PathHash != r3.PathHash {
		t.Fatal("same path produced different hashes")
	}
}

func TestForkChildIsolation(t *testing.T) {
	g := &ir.Global{Name: "state", Size: 8}
	b := ir.NewBuilder("bump", 0)
	ga := b.GlobalAddr(0)
	nv := b.Bin(ir.Add, b.Load(ga, 0, 8), b.Const(1))
	b.Store(ga, nv, 0, 8)
	b.Ret(nv)
	m := buildModule(t, []*ir.Global{g}, b.F)
	parent, err := New(m, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Every forked child starts from the same image: bump always returns 1.
	for i := 0; i < 5; i++ {
		child := parent.Fork()
		if res := child.Call("bump"); res.Ret != 1 {
			t.Fatalf("child %d bump = %d, want 1", i, res.Ret)
		}
		child.Release()
	}
	// The parent image was never dirtied.
	if res := parent.Fork().Call("bump"); res.Ret != 1 {
		t.Fatalf("parent dirtied: bump = %d", res.Ret)
	}
}

func TestSnapshotRestoreSection(t *testing.T) {
	g := &ir.Global{Name: "v", Size: 8, Init: []byte{7}, Section: ir.SectionClosure}
	b := ir.NewBuilder("set", 1)
	b.Store(b.GlobalAddr(0), 0, 0, 8)
	b.Ret(-1)
	get := ir.NewBuilder("get", 0)
	get.Ret(get.Load(get.GlobalAddr(0), 0, 8))
	m := buildModule(t, []*ir.Global{g}, b.F, get.F)
	v, err := New(m, Options{})
	if err != nil {
		t.Fatal(err)
	}
	snap, ok := v.SnapshotSection(ir.SectionClosure)
	if !ok {
		t.Fatal("no closure section")
	}
	v.Call("set", 1234)
	if res := v.Call("get"); res.Ret != 1234 {
		t.Fatalf("set failed: %d", res.Ret)
	}
	if !v.RestoreSection(ir.SectionClosure, snap) {
		t.Fatal("restore failed")
	}
	if res := v.Call("get"); res.Ret != 7 {
		t.Fatalf("after restore get = %d, want 7", res.Ret)
	}
}

func TestDeterministicRand(t *testing.T) {
	b := ir.NewBuilder("r", 0)
	b.Ret(b.Call("rand"))
	m := buildModule(t, nil, b.F)
	v1, _ := New(m, Options{DeterministicRand: true, RandSeed: 42})
	v2, _ := New(m, Options{DeterministicRand: true, RandSeed: 42})
	if v1.Call("r").Ret != v2.Call("r").Ret {
		t.Fatal("deterministic rand differs across identically-seeded VMs")
	}
	v3, _ := New(m, Options{})
	v4, _ := New(m, Options{})
	if v3.Call("r").Ret == v4.Call("r").Ret {
		t.Fatal("nondeterministic VMs produced identical rand (collision unlikely)")
	}
}

// Property: compiled arithmetic matches direct Go evaluation for safe ops.
func TestArithmeticDifferentialProperty(t *testing.T) {
	f := func(a, b int64, opSel uint8) bool {
		safe := []ir.BinOp{ir.Add, ir.Sub, ir.Mul, ir.And, ir.Or, ir.Xor, ir.Eq, ir.Lt, ir.Ugt}
		op := safe[int(opSel)%len(safe)]
		bld := ir.NewBuilder("f", 2)
		bld.Ret(bld.Bin(op, 0, 1))
		m := ir.NewModule("p")
		_ = m.AddFunc(bld.F)
		v, err := New(m, Options{})
		if err != nil {
			return false
		}
		res := v.Call("f", a, b)
		if res.Fault != nil {
			return false
		}
		var want int64
		switch op {
		case ir.Add:
			want = a + b
		case ir.Sub:
			want = a - b
		case ir.Mul:
			want = a * b
		case ir.And:
			want = a & b
		case ir.Or:
			want = a | b
		case ir.Xor:
			want = a ^ b
		case ir.Eq:
			want = b2i(a == b)
		case ir.Lt:
			want = b2i(a < b)
		case ir.Ugt:
			want = b2i(uint64(a) > uint64(b))
		}
		return res.Ret == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestFaultKeyStable(t *testing.T) {
	f := &Fault{Kind: FaultNullDeref, Fn: "parse", Line: 42}
	if f.Key() != "null-pointer-dereference@parse:42" {
		t.Fatalf("Key = %q", f.Key())
	}
	if f.Error() == "" {
		t.Fatal("empty error")
	}
}
