// Package vm executes ClosureX IR. It is the stand-in for native execution
// in the paper: a register-machine interpreter over a paged address space,
// with an always-on sanitizer (null/page, heap bounds, use-after-free,
// division by zero, rodata writes, FD exhaustion, hangs) so that the bugs
// the fuzzer plants and finds are the same classes the paper reports.
package vm

import (
	"fmt"
	"sync/atomic"

	"closurex/internal/faultinject"
	"closurex/internal/ir"
	"closurex/internal/mem"
	"closurex/internal/vfs"
)

// DefaultBudget bounds a single execution to this many interpreted
// instructions before it is declared a hang.
const DefaultBudget = 4_000_000

// DefaultMaxDepth bounds the call stack.
const DefaultMaxDepth = 200

// aslrCounter feeds the per-VM PRNG seed, emulating the run-to-run
// nondeterminism (ASLR, time seeds) that the paper's correctness study has
// to mask out for freetype.
var aslrCounter atomic.Uint64

// Options configures VM construction.
type Options struct {
	// CovMap, when non-nil, receives AFL-style hit counts; must be 64 KiB.
	CovMap []byte
	// Budget overrides DefaultBudget when > 0.
	Budget int64
	// MaxDepth overrides DefaultMaxDepth when > 0.
	MaxDepth int
	// Files pre-populates the virtual filesystem.
	Files map[string][]byte
	// FDLimit overrides the descriptor limit when > 0.
	FDLimit int
	// PageLimit overrides the resident-page limit when > 0.
	PageLimit int
	// ImagePages materializes that many resident pages of simulated
	// program image (text + static data) at TextBase, modeling the
	// executable sizes of Table 4. Loading them is part of fresh-process
	// cost; their page-table entries are part of fork cost.
	ImagePages int
	// DeterministicRand pins the rand() builtin's seed (used by the
	// correctness study's ground-truth runs); when false each VM gets a
	// fresh seed, modeling real process-level nondeterminism.
	DeterministicRand bool
	RandSeed          uint64
	// TraceEdges enables path-sensitive edge tracing (control-flow
	// equivalence checks, §6.1.4). Costs time; off during fuzzing.
	TraceEdges bool
	// Injector arms deterministic fault injection in the heap and the
	// filesystem (resilience tests); nil injects nothing.
	Injector *faultinject.Injector
	// Sanitize attaches the ASan-style shadow plane to the heap so
	// OpSanCheck instructions (SanitizerPass) classify bad accesses with
	// allocation/free sites. Modules instrumented with -sanitize should
	// run on a VM built with this on; without it the checks are no-ops.
	Sanitize bool
	// Backend selects the execution engine: "" or "interp" for the
	// switch-dispatch interpreter, or any name registered via
	// RegisterBackend ("compiled" once internal/vm/compile is imported).
	// The interpreter is the reference; every other backend must be
	// bit-identical to it.
	Backend string
}

// Result describes one completed call into the target.
type Result struct {
	Ret      int64  // return value (0 if exited or faulted)
	Exited   bool   // the target called exit()
	ExitCode int64  // exit status when Exited
	Fault    *Fault // non-nil if the sanitizer fired
	Instrs   int64  // instructions interpreted
	PathHash uint64 // FNV over the edge sequence (when TraceEdges)
	PathLen  int    // number of edges traversed (when TraceEdges)
}

// Crashed reports whether the execution ended in a sanitizer fault.
func (r *Result) Crashed() bool { return r.Fault != nil }

// VM is one simulated process image: module + memory + heap + files.
type VM struct {
	Mod    *ir.Module
	Layout *Layout
	Mem    *mem.Memory
	Heap   *mem.Heap
	FS     *vfs.FS

	covMap  []byte
	prevLoc uint64

	budget    int64
	maxBudget int64
	maxDepth  int
	depth     int
	sp        uint64 // next free frame byte in the stack segment

	traceEdges bool
	pathHash   uint64
	pathLen    int

	rngState uint64

	// Stdout captures target output (bounded).
	Stdout []byte

	instrs int64

	curFn *ir.Func

	// engine, when non-nil, replaces execFunc for top-level calls; backend
	// names it so Fork can rebind the child (engines hold per-VM state).
	engine  Engine
	backend string

	// regPool reuses register frames per call depth, avoiding a heap
	// allocation on every target function call.
	regPool [][]int64
	// argPool reuses argument-staging buffers per call depth, for calls
	// with more arguments than the stack buffer holds; same lifecycle
	// argument as regPool (consumed before any same-depth reuse).
	argPool [][]int64
	// ioBuf is scratch for builtin I/O transfers (fread staging); sized to
	// the high-water transfer and reused so steady-state reads are
	// allocation-free.
	ioBuf []byte
}

// New builds a process image for mod: lays out globals, writes their
// initializers, and prepares heap, stack and filesystem. This is the
// expensive "load the binary" step that fresh-process fuzzing repeats for
// every test case.
func New(mod *ir.Module, opts Options) (*VM, error) {
	lay := NewLayout(mod)
	if lay.End >= HeapBase {
		return nil, fmt.Errorf("vm: globals image too large: ends at %#x", lay.End)
	}
	v := &VM{
		Mod:        mod,
		Layout:     lay,
		Mem:        mem.NewMemoryLimit(opts.PageLimit),
		covMap:     opts.CovMap,
		maxBudget:  opts.Budget,
		maxDepth:   opts.MaxDepth,
		traceEdges: opts.TraceEdges,
	}
	if v.maxBudget <= 0 {
		v.maxBudget = DefaultBudget
	}
	if v.maxDepth <= 0 {
		v.maxDepth = DefaultMaxDepth
	}
	if v.covMap == nil {
		// Always bind a bitmap so the per-OpCov nil check disappears from
		// the hot loop; a VM built without an external map writes into a
		// private scratch map nobody reads.
		v.covMap = make([]byte, covMapSize)
	}
	if opts.DeterministicRand {
		// splitmix64 scramble: adjacent seeds must yield independent
		// streams (raw xorshift keeps low-bit correlations for small,
		// arithmetic-progression seeds).
		z := opts.RandSeed + 0x9e3779b97f4a7c15
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		v.rngState = (z ^ (z >> 31)) | 1
	} else {
		v.rngState = aslrCounter.Add(0x9e3779b97f4a7c15) | 1
	}
	v.Heap = mem.NewHeap(v.Mem, HeapBase, HeapEnd)
	// Heap ASLR: every process image allocates from a base jittered across
	// 8 MiB, so heap addresses stored into globals vary across fresh
	// executions — the natural nondeterminism the paper's correctness
	// study identifies and masks. The span deliberately exceeds any
	// drift a long-lived persistent process accumulates, as real ASLR
	// entropy does. Deterministic seeds give deterministic bases.
	v.Heap.Shift((v.rand() % (1 << 19)) * 16)
	if opts.Sanitize {
		// Attach after Shift so the shadow plane's base matches the
		// randomized allocation base. Sparse: pages materialize on first
		// allocation, keeping fresh-process and sentinel VMs cheap.
		v.Heap.AttachShadow()
	}
	v.Heap.SetInjector(opts.Injector)
	v.FS = vfs.New()
	v.FS.SetInjector(opts.Injector)
	if opts.FDLimit > 0 {
		v.FS.SetFDLimit(opts.FDLimit)
	}
	for p, d := range opts.Files {
		v.FS.WriteFile(p, d)
	}
	v.sp = StackBase
	if err := v.writeGlobalInitializers(); err != nil {
		return nil, err
	}
	if err := v.materializeImage(opts.ImagePages); err != nil {
		return nil, err
	}
	if err := v.bindEngine(opts.Backend); err != nil {
		return nil, err
	}
	return v, nil
}

// MaxBudget reports the per-execution instruction budget. The harness
// compares it against ir.InterprocBudgetCap before arming restore
// elision — the static analysis' no-wraparound argument only covers
// executions up to that length.
func (v *VM) MaxBudget() int64 { return v.maxBudget }

// materializeImage loads n pages of simulated program image at TextBase,
// the analogue of the loader mapping the executable and its static data.
func (v *VM) materializeImage(n int) error {
	if n <= 0 {
		return nil
	}
	var pattern [mem.PageSize]byte
	for i := range pattern {
		pattern[i] = byte(i * 7)
	}
	for p := 0; p < n; p++ {
		if err := v.Mem.Write(TextBase+uint64(p)*mem.PageSize, pattern[:]); err != nil {
			return fmt.Errorf("vm: image page %d: %w", p, err)
		}
	}
	return nil
}

func (v *VM) writeGlobalInitializers() error {
	for gi, g := range v.Mod.Globals {
		addr := v.Layout.GlobalAddr[gi]
		if len(g.Init) > 0 {
			if err := v.Mem.Write(addr, g.Init); err != nil {
				return fmt.Errorf("vm: init global %s: %w", g.Name, err)
			}
		}
	}
	return nil
}

// SetCovMap (re)binds the coverage bitmap. nil detaches the external map
// by rebinding a private scratch map (the hot loop assumes covMap is
// always non-nil), which disables observable coverage.
func (v *VM) SetCovMap(m []byte) {
	if m == nil {
		m = make([]byte, covMapSize)
	}
	v.covMap = m
}

// SetTraceEdges toggles path-sensitive tracing.
func (v *VM) SetTraceEdges(on bool) { v.traceEdges = on }

// SetInput installs the test case at vfs.InputPath.
func (v *VM) SetInput(data []byte) { v.FS.SetInput(data) }

// Fork clones the image copy-on-write — the forkserver's per-test-case
// step. The returned child shares pages with the parent until written.
func (v *VM) Fork() *VM {
	cm := v.Mem.Fork()
	child := &VM{
		Mod:        v.Mod,
		Layout:     v.Layout,
		Mem:        cm,
		Heap:       v.Heap.Clone(cm),
		FS:         v.FS.Clone(),
		covMap:     v.covMap,
		maxBudget:  v.maxBudget,
		maxDepth:   v.maxDepth,
		traceEdges: v.traceEdges,
		rngState:   aslrCounter.Add(0x9e3779b97f4a7c15) | 1,
		sp:         v.sp,
	}
	if v.engine != nil {
		// Engines hold per-VM machine state, so the child gets its own
		// instance. The parent validated the name at construction, so the
		// rebind cannot fail; fall back to the interpreter if it somehow
		// does rather than crash the campaign.
		if err := child.bindEngine(v.backend); err != nil {
			child.engine, child.backend = nil, ""
		}
	}
	return child
}

// Release returns the child's pages (process tear-down).
func (v *VM) Release() { v.Mem.Release() }

// RestoreFromSnapshot rolls this image back to the template it was forked
// from: dirty pages are re-shared or unmapped (O(dirty)), and heap and
// descriptor bookkeeping is re-cloned. This is the kernel-snapshot restore
// (AFL++ Snapshot LKM): cheaper than a fresh fork, but page-granular.
func (v *VM) RestoreFromSnapshot(template *VM) {
	v.Mem.RestoreTo(template.Mem)
	v.Heap = template.Heap.Clone(v.Mem)
	v.FS = template.FS.Clone()
	v.sp = template.sp
	v.Stdout = v.Stdout[:0]
}

// Call invokes the named function with args as one execution: the budget,
// coverage context and capture buffers are reset first.
func (v *VM) Call(name string, args ...int64) Result {
	f := v.Mod.Func(name)
	if f == nil {
		return Result{Fault: &Fault{Kind: FaultBadCall, Fn: name, Msg: "no such function"}}
	}
	v.budget = v.maxBudget
	v.prevLoc = 0
	v.pathHash = 14695981039346656037 // FNV offset basis
	v.pathLen = 0
	v.instrs = 0
	v.depth = 0
	v.Stdout = v.Stdout[:0]

	var ret int64
	var err error
	if v.engine != nil {
		ret, err = v.engine.Exec(f, args)
	} else {
		ret, err = v.execFunc(f, args)
	}
	res := Result{Ret: ret, Instrs: v.instrs, PathHash: v.pathHash, PathLen: v.pathLen}
	switch e := err.(type) {
	case nil:
	case *exitUnwind:
		res.Ret = 0
		res.Exited = true
		res.ExitCode = e.code
	case *Fault:
		res.Ret = 0
		res.Fault = e
	default:
		res.Fault = &Fault{Kind: FaultWild, Fn: name, Msg: err.Error()}
	}
	return res
}

// SnapshotGlobals copies the entire globals image (every section) — the
// dataflow-equivalence comparand in the correctness study.
func (v *VM) SnapshotGlobals() []byte {
	n := int(v.Layout.End - GlobalsBase)
	buf := make([]byte, n)
	_ = v.Mem.ReadInto(GlobalsBase, buf)
	return buf
}

// SnapshotSection copies one named section.
func (v *VM) SnapshotSection(name string) ([]byte, bool) {
	s, ok := v.Layout.Section(name)
	if !ok {
		return nil, false
	}
	buf := make([]byte, s.Size)
	_ = v.Mem.ReadInto(s.Addr, buf)
	return buf, true
}

// SnapshotSectionInto reads the named section into buf (reusing buf's
// backing array when it is large enough) and returns the filled slice.
// This is the allocation-free variant the harness watchdog uses on every
// periodic verification.
func (v *VM) SnapshotSectionInto(name string, buf []byte) ([]byte, bool) {
	s, ok := v.Layout.Section(name)
	if !ok {
		return nil, false
	}
	n := int(s.Size)
	if cap(buf) < n {
		buf = make([]byte, n)
	}
	buf = buf[:n]
	_ = v.Mem.ReadInto(s.Addr, buf)
	return buf, true
}

// WatchSection arms the memory write barrier over the named section so
// writes to it are tracked at page granularity. Returns false when the
// section does not exist (nothing to track).
func (v *VM) WatchSection(name string) bool {
	s, ok := v.Layout.Section(name)
	if !ok || s.Size == 0 {
		return false
	}
	v.Mem.Watch(s.Addr, s.Size)
	return true
}

// RestoreSectionDirty writes back only the bytes of the named section that
// fall on pages dirtied since the last watch reset — the ClosureX
// incremental restore fast path. It requires WatchSection to have been
// armed over the section; the returned byte count is the data actually
// copied (the paper's restore-bandwidth metric). The watch window is reset
// afterwards so the next execution starts with a clean dirty set.
func (v *VM) RestoreSectionDirty(name string, data []byte) (int, bool) {
	s, ok := v.Layout.Section(name)
	if !ok || uint64(len(data)) != s.Size {
		return 0, false
	}
	copied := 0
	for _, pn := range v.Mem.WatchedDirty() {
		lo := pn << mem.PageShift
		hi := lo + mem.PageSize
		if lo < s.Addr {
			lo = s.Addr
		}
		if end := s.Addr + s.Size; hi > end {
			hi = end
		}
		if lo >= hi {
			continue
		}
		_ = v.Mem.Write(lo, data[lo-s.Addr:hi-s.Addr])
		copied += int(hi - lo)
	}
	v.Mem.ResetWatch()
	return copied, true
}

// RestoreSection writes bytes back over the named section (the harness's
// global-restore step, Figure 4).
func (v *VM) RestoreSection(name string, data []byte) bool {
	s, ok := v.Layout.Section(name)
	if !ok || uint64(len(data)) != s.Size {
		return false
	}
	_ = v.Mem.Write(s.Addr, data)
	return true
}

// ByteRange is one half-open byte span [Lo, Hi), relative to the start of
// the section it scopes.
type ByteRange struct{ Lo, Hi uint64 }

// ElisionRanges maps the module's interprocedural may-write metadata onto
// the named section: the merged, ascending section-relative byte ranges
// covering every global some reachable function may write. ok is false
// when the module carries no metadata, the analysis could not bound the
// write set (WholeSection), or the section does not exist — in all three
// cases the caller must restore the whole section.
func (v *VM) ElisionRanges(name string) ([]ByteRange, bool) {
	info := v.Mod.Interproc
	if info == nil || info.WholeSection {
		return nil, false
	}
	s, ok := v.Layout.Section(name)
	if !ok {
		return nil, false
	}
	var out []ByteRange
	// MayWriteGlobals is sorted by global index and the layout assigns
	// ascending addresses in index order within a section, so the filtered
	// ranges arrive in ascending order and adjacent ones merge in place.
	for _, gi := range info.MayWriteGlobals {
		if gi < 0 || gi >= len(v.Mod.Globals) || v.Mod.Globals[gi].Section != name {
			continue
		}
		lo := v.Layout.GlobalAddr[gi] - s.Addr
		hi := lo + uint64(v.Mod.Globals[gi].Size)
		if hi > s.Size {
			hi = s.Size
		}
		if n := len(out); n > 0 && lo <= out[n-1].Hi {
			if hi > out[n-1].Hi {
				out[n-1].Hi = hi
			}
			continue
		}
		out = append(out, ByteRange{lo, hi})
	}
	return out, true
}

// RestoreSectionRanges writes data back over only the listed
// section-relative ranges — the elision-scoped variant of RestoreSection.
// data must still be a full-section snapshot (ranges index into it).
// Returns the bytes actually copied.
func (v *VM) RestoreSectionRanges(name string, data []byte, ranges []ByteRange) (int, bool) {
	s, ok := v.Layout.Section(name)
	if !ok || uint64(len(data)) != s.Size {
		return 0, false
	}
	copied := 0
	for _, r := range ranges {
		if r.Lo >= r.Hi || r.Hi > s.Size {
			continue
		}
		_ = v.Mem.Write(s.Addr+r.Lo, data[r.Lo:r.Hi])
		copied += int(r.Hi - r.Lo)
	}
	return copied, true
}

// RestoreSectionDirtyRanges is the doubly-scoped restore: only bytes that
// are both inside a may-write range and on a page dirtied since the last
// watch reset are written back. Requires WatchSection to have been armed;
// the watch window is reset afterwards.
func (v *VM) RestoreSectionDirtyRanges(name string, data []byte, ranges []ByteRange) (int, bool) {
	s, ok := v.Layout.Section(name)
	if !ok || uint64(len(data)) != s.Size {
		return 0, false
	}
	copied := 0
	for _, pn := range v.Mem.WatchedDirty() {
		plo := pn << mem.PageShift
		phi := plo + mem.PageSize
		if end := s.Addr + s.Size; phi > end {
			phi = end
		}
		for _, r := range ranges {
			lo, hi := s.Addr+r.Lo, s.Addr+r.Hi
			if lo < plo {
				lo = plo
			}
			if hi > phi {
				hi = phi
			}
			if lo >= hi {
				continue
			}
			_ = v.Mem.Write(lo, data[lo-s.Addr:hi-s.Addr])
			copied += int(hi - lo)
		}
	}
	v.Mem.ResetWatch()
	return copied, true
}

// ReadCString reads a NUL-terminated string from target memory (bounded).
func (v *VM) ReadCString(addr uint64) (string, error) {
	const maxLen = 4096
	var out []byte
	for i := 0; i < maxLen; i++ {
		b, err := v.Mem.LoadByte(addr + uint64(i))
		if err != nil {
			return "", err
		}
		if b == 0 {
			return string(out), nil
		}
		out = append(out, b)
	}
	return "", fmt.Errorf("vm: unterminated string at %#x", addr)
}

// appendStdout captures target output, bounded to 64 KiB per execution.
func (v *VM) appendStdout(b []byte) {
	const cap = 64 << 10
	if len(v.Stdout) >= cap {
		return
	}
	if len(v.Stdout)+len(b) > cap {
		b = b[:cap-len(v.Stdout)]
	}
	v.Stdout = append(v.Stdout, b...)
}

// rand steps the xorshift PRNG backing the rand() builtin.
func (v *VM) rand() uint64 {
	x := v.rngState
	x ^= x << 13
	x ^= x >> 7
	x ^= x << 17
	v.rngState = x
	return x
}
