package compile

import "closurex/internal/ir"

// Compiler-local liveness for the dead-intermediate-write elision. This is
// a deliberate re-implementation rather than a dependency on
// internal/analysis: the compiler's derivation and the transval checker's
// proof must be independent for the certificate to mean anything — a
// shared liveness bug would otherwise let an unsound elision certify
// itself.

// localDef returns the register an instruction writes, or -1 (mirrors the
// interpreter's write set).
func localDef(in *ir.Instr) int {
	switch in.Op {
	case ir.OpConst, ir.OpMov, ir.OpBin, ir.OpUn, ir.OpLoad,
		ir.OpGlobalAddr, ir.OpFrameAddr, ir.OpCall:
		return in.Dst
	}
	return -1
}

// localUses appends the registers an instruction reads.
func localUses(in *ir.Instr, dst []int) []int {
	switch in.Op {
	case ir.OpMov, ir.OpUn:
		dst = append(dst, in.A)
	case ir.OpBin:
		dst = append(dst, in.A, in.B)
	case ir.OpLoad:
		dst = append(dst, in.A)
	case ir.OpStore:
		dst = append(dst, in.A, in.B)
	case ir.OpCall:
		dst = append(dst, in.Args...)
	case ir.OpRet:
		if in.A >= 0 {
			dst = append(dst, in.A)
		}
	case ir.OpCondBr:
		dst = append(dst, in.A)
	case ir.OpSanCheck:
		dst = append(dst, in.A)
	}
	return dst
}

type regSet []uint64

func newRegSet(n int) regSet    { return make(regSet, (n+63)/64) }
func (s regSet) set(i int)      { s[i/64] |= 1 << (uint(i) % 64) }
func (s regSet) has(i int) bool { return s[i/64]&(1<<(uint(i)%64)) != 0 }
func (s regSet) orInto(o regSet) bool {
	changed := false
	for i := range s {
		v := s[i] | o[i]
		if v != s[i] {
			s[i] = v
			changed = true
		}
	}
	return changed
}

// computeLiveOut solves classic backward liveness to fixpoint and returns
// the per-block live-out sets.
func computeLiveOut(f *ir.Func) []regSet {
	n := len(f.Blocks)
	gen := make([]regSet, n)  // upward-exposed uses
	kill := make([]regSet, n) // defs
	succs := make([][]int, n)
	var buf []int
	for bi, b := range f.Blocks {
		g, k := newRegSet(f.NumRegs), newRegSet(f.NumRegs)
		for ii := range b.Instrs {
			in := &b.Instrs[ii]
			buf = localUses(in, buf[:0])
			for _, r := range buf {
				if r >= 0 && r < f.NumRegs && !k.has(r) {
					g.set(r)
				}
			}
			if d := localDef(in); d >= 0 && d < f.NumRegs {
				k.set(d)
			}
		}
		gen[bi], kill[bi] = g, k
		if len(b.Instrs) > 0 {
			term := &b.Instrs[len(b.Instrs)-1]
			var ts []int
			switch term.Op {
			case ir.OpBr:
				ts = term.Targets[:1]
			case ir.OpCondBr:
				ts = term.Targets[:2]
			}
			for _, t := range ts {
				if t >= 0 && t < n {
					succs[bi] = append(succs[bi], t)
				}
			}
		}
	}
	liveIn := make([]regSet, n)
	liveOut := make([]regSet, n)
	for i := 0; i < n; i++ {
		liveIn[i] = newRegSet(f.NumRegs)
		liveOut[i] = newRegSet(f.NumRegs)
	}
	for changed := true; changed; {
		changed = false
		for bi := n - 1; bi >= 0; bi-- {
			for _, s := range succs[bi] {
				if liveOut[bi].orInto(liveIn[s]) {
					changed = true
				}
			}
			// liveIn = gen ∪ (liveOut − kill)
			for w := range liveIn[bi] {
				v := gen[bi][w] | (liveOut[bi][w] &^ kill[bi][w])
				if v != liveIn[bi][w] {
					liveIn[bi][w] = v
					changed = true
				}
			}
		}
	}
	return liveOut
}

// deadAfter reports whether reg is provably dead immediately after
// instruction ii of block bi: every path from that point redefines reg
// before reading it.
func deadAfter(f *ir.Func, liveOut []regSet, bi, ii, reg int) bool {
	if reg < 0 || reg >= f.NumRegs {
		return false
	}
	b := f.Blocks[bi]
	var buf []int
	for j := ii + 1; j < len(b.Instrs); j++ {
		in := &b.Instrs[j]
		buf = localUses(in, buf[:0])
		for _, r := range buf {
			if r == reg {
				return false
			}
		}
		if localDef(in) == reg {
			return true
		}
	}
	return !liveOut[bi].has(reg)
}

// markElide decides, per element, whether the fused pair's intermediate
// register write may be skipped. Only the compare+branch pattern elides
// today: its closure decides the branch on the native bool, so the
// materialized 0/1 is pure overhead whenever nothing downstream reads it —
// which is the common shape (the front end materializes every condition).
// The other pair patterns keep their intermediate writes: their closures
// (or later instructions) may read the register, and the budget-exactness
// argument stays simplest when dataflow is untouched.
func markElide(f *ir.Func, liveOut []regSet, e *elem) {
	var cmp *ir.Instr
	switch {
	case e.kind == ekCmpBr:
		cmp = e.first
	case e.kind == ekCovPair && e.sub == ekCmpBr:
		cmp = e.second
	default:
		return
	}
	// The branch is a terminator, so the pair ends its block; deadAfter
	// reduces to the live-out check, but go through the general helper so
	// the rule stays uniform if fusion ever pairs mid-block branches.
	lastIi := e.ii + 1
	if e.kind == ekCovPair {
		lastIi = e.ii + 2
	}
	if deadAfter(f, liveOut, e.bi, lastIi, cmp.Dst) {
		e.interElide = true
	}
}
