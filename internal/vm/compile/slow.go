package compile

import (
	"closurex/internal/ir"
	"closurex/internal/vm"
)

// slowRun executes one straight-line run from its source instructions
// with the interpreter's exact per-instruction accounting: increment the
// instruction count, decrement the budget, check for exhaustion (the
// timeout can fire at any instruction, including an OpSanCheck, whose
// compensation lands only after the check — exactly as in exec.go), then
// perform the op. The dispatcher calls it only when the remaining budget
// is at most the run's maxDip, i.e. within a handful of instructions of a
// hang verdict, so this path is cold by construction: budget never
// increases mid-execution, so once a run goes slow the execution stays
// slow until it times out or returns.
//
// Returns the next pc, retPC or errPC, like a run-ending op.
func (m *machine) slowRun(f *cfn, pc int) int {
	r := &f.runs[pc]
	blk := f.irFn.Blocks[r.srcBi]
	regs := m.regs
	for q := int64(0); q < r.k; q++ {
		in := &blk.Instrs[int(r.srcIi)+int(q)]
		*m.instrs += 1
		*m.budget -= 1
		if *m.budget <= 0 {
			return m.fault(vm.FaultTimeout, in, 0, "instruction budget exhausted")
		}
		switch in.Op {
		case ir.OpConst:
			regs[in.Dst] = in.Imm
		case ir.OpMov:
			regs[in.Dst] = regs[in.A]
		case ir.OpBin:
			res, flt := m.v.EngineBinop(in, regs[in.A], regs[in.B])
			if flt != nil {
				m.err = flt
				return errPC
			}
			regs[in.Dst] = res
		case ir.OpUn:
			switch in.Un {
			case ir.Neg:
				regs[in.Dst] = -regs[in.A]
			case ir.Not:
				if regs[in.A] == 0 {
					regs[in.Dst] = 1
				} else {
					regs[in.Dst] = 0
				}
			case ir.BNot:
				regs[in.Dst] = ^regs[in.A]
			}
		case ir.OpLoad:
			addr := uint64(regs[in.A] + in.Imm)
			if flt := m.v.EngineCheckAccess(addr, in.Size, false, in); flt != nil {
				m.err = flt
				return errPC
			}
			u, err := m.v.Mem.ReadUint(addr, in.Size)
			if err != nil {
				return m.fault(vm.FaultWild, in, addr, err.Error())
			}
			regs[in.Dst] = int64(u)
		case ir.OpStore:
			addr := uint64(regs[in.A] + in.Imm)
			if flt := m.v.EngineCheckAccess(addr, in.Size, true, in); flt != nil {
				m.err = flt
				return errPC
			}
			if err := m.v.Mem.WriteUint(addr, uint64(regs[in.B]), in.Size); err != nil {
				return m.fault(vm.FaultOOM, in, addr, err.Error())
			}
		case ir.OpGlobalAddr:
			regs[in.Dst] = int64(m.v.Layout.GlobalAddr[in.Imm])
		case ir.OpFrameAddr:
			regs[in.Dst] = int64(m.frame + uint64(in.Imm))
		case ir.OpCall:
			saved := *m.prevLoc
			res, err := m.callSlow(in)
			if err != nil {
				m.err = err
				return errPC
			}
			*m.prevLoc = saved
			regs[in.Dst] = res
			// Calls end runs by construction, so this is the run's last
			// instruction; resume at the pc after the call op.
			return pc + int(r.n)
		case ir.OpRet:
			if in.A >= 0 {
				m.ret = regs[in.A]
			} else {
				m.ret = 0
			}
			return retPC
		case ir.OpBr:
			return f.blockStart[in.Targets[0]]
		case ir.OpCondBr:
			if regs[in.A] != 0 {
				return f.blockStart[in.Targets[0]]
			}
			return f.blockStart[in.Targets[1]]
		case ir.OpCov:
			loc := uint64(in.Imm)
			idx := (loc ^ *m.prevLoc) & covMask
			m.cov[idx]++
			*m.prevLoc = loc >> 1
			if m.trace {
				*m.pathHash = (*m.pathHash ^ idx) * 1099511628211
				*m.pathLen++
			}
		case ir.OpUnreachable:
			return m.fault(vm.FaultUnreachable, in, 0, "")
		case ir.OpSanCheck:
			// Budget-transparent: compensate the decrement above, after the
			// exhaustion check (so a timeout CAN land on a sancheck).
			*m.budget += 1
			addr := uint64(regs[in.A] + in.Imm)
			if flt := m.v.EngineSanCheck(addr, in); flt != nil {
				m.err = flt
				return errPC
			}
		}
	}
	// The run covered the whole block without a terminator (the synthetic
	// fell-off element): fault exactly as the interpreter does.
	return m.fault(vm.FaultUnreachable, nil, 0, "fell off block end")
}

// callSlow dispatches an OpCall from the slow path, preferring the cached
// callee index like the interpreter's fast path.
func (m *machine) callSlow(in *ir.Instr) (int64, error) {
	args := m.stageArgs(len(in.Args))
	for i, a := range in.Args {
		args[i] = m.regs[a]
	}
	switch {
	case in.CalleeIdx > 0:
		return m.execFn(m.p.fns[in.CalleeIdx-1], args)
	case in.CalleeIdx < 0:
		return m.v.CallBuiltinIndexed(-in.CalleeIdx-1, in, args)
	}
	if f := m.p.mod.Func(in.Callee); f != nil {
		return m.execFn(m.p.byFn[f], args)
	}
	if slot := vm.BuiltinIndex(in.Callee); slot >= 0 {
		return m.v.CallBuiltinIndexed(slot, in, args)
	}
	return 0, m.v.NewFault(vm.FaultBadCall, in, 0, "unknown callee "+in.Callee)
}
