// Package compile is the VM's compiled execution tier: it lowers a
// verified, pass-committed ir.Module into pre-resolved closure chains —
// each function a flat []op of Go closures with block targets resolved to
// instruction indices, OpGlobalAddr/OpConst folded to captured constants,
// callees resolved at compile time to direct function values, and
// superinstructions fusing the pairs the interpreter executes
// back-to-back (compare+condbr, const+bin, load+mask, sancheck+access).
//
// Budget accounting moves from per-instruction decrements to
// per-straight-line-run debits that are instruction-exact: a run is a
// maximal sequence of ops ending at a call or block terminator, and its
// (k, net, maxDip) metadata lets the dispatcher debit the whole run in
// two arithmetic ops whenever the remaining budget provably cannot hit
// zero inside it. Within maxDip instructions of exhaustion the dispatcher
// falls back to a mini-interpreter over the source instructions with the
// interpreter's exact per-instruction semantics, so hang verdicts,
// FaultTimeout sites, instruction counts, coverage bitmaps, path hashes
// and fault kind/line/addr are bit-identical to the interpreter (the
// differential suites in this package and internal/core prove it).
//
// The package registers itself as vm backend "compiled"; importing it
// (execmgr does, blank) is what makes vm.Options{Backend: "compiled"}
// resolvable.
package compile

import (
	"fmt"
	"sync"

	"closurex/internal/ir"
	"closurex/internal/vm"
)

// BackendName is the name this tier registers with the VM backend
// registry.
const BackendName = "compiled"

// Dispatcher pc sentinels: ops return the next pc, or one of these.
const (
	retPC = -1 // m.ret holds the return value
	errPC = -2 // m.err holds the fault / exit unwind
)

// covMapSize / covMask mirror the VM's AFL-compatible bitmap size (64 KiB).
const (
	covMapSize = 1 << 16
	covMask    = covMapSize - 1
)

// op is one compiled instruction: it executes against the machine and the
// current activation's register file and returns the next pc.
// Straight-line ops return 0 ("fall through"; the dispatcher advances pc
// itself) or errPC; run-ending ops (calls and terminators) return a real
// pc, retPC or errPC. regs is passed as an argument so op bodies address
// registers off a local slice header instead of re-loading m.regs.
type op func(m *machine, regs []int64) int

// runMeta describes one straight-line run, indexed by its head pc. k, net
// and maxDip are in source-instruction units (a fused pair counts 2).
type runMeta struct {
	k      int64   // source instructions covered by the run
	net    int64   // k minus the run's sancheck count (budget compensation)
	maxDip int64   // deepest mid-run budget dip: max over i of (i+1 − sanchecksBefore_i)
	n      int32   // ops (pcs) in the run
	srcBi  int32   // source block of the run's first instruction
	srcIi  int32   // instruction index of the run's first instruction
	cum    []int32 // per op: source instructions covered through that op
}

// cfn is one compiled function.
type cfn struct {
	irFn       *ir.Func
	code       []op
	runs       []runMeta // valid at run-head pcs only
	blockStart []int     // block index -> pc
}

// program is one compiled module, shared by every VM executing it (the
// closures capture only compile-time data: register indices, immediates,
// layout addresses, target pcs, callee pointers and access-site slot
// numbers — all per-VM mutable state lives in the machine).
type program struct {
	mod  *ir.Module
	fns  []*cfn
	byFn map[*ir.Func]*cfn
	// nSites counts the memory-access sites emitted across the program;
	// each machine carries nSites AccessCache slots, indexed by the slot
	// number the site's closure captured at compile time.
	nSites int
	// cert is the translation certificate emitted during lowering;
	// analysis/transval proves each of its claims against the module.
	cert *Certificate
}

// newSite assigns the next per-program access-cache slot.
func (p *program) newSite() int {
	s := p.nSites
	p.nSites++
	return s
}

// progCache caches compiled programs per module. Modules are immutable
// after commit (core resolves and the verifier audits them), and the
// global layout is a pure function of the module, so one program serves
// every VM — including concurrent shard fleets.
var progCache sync.Map // *ir.Module -> *program

func programFor(mod *ir.Module) (*program, error) {
	if p, ok := progCache.Load(mod); ok {
		return p.(*program), nil
	}
	p, err := compileModule(mod)
	if err != nil {
		return nil, err
	}
	actual, _ := progCache.LoadOrStore(mod, p)
	return actual.(*program), nil
}

func init() {
	vm.RegisterBackend(BackendName, func(v *vm.VM) (vm.Engine, error) {
		p, err := programFor(v.Mod)
		if err != nil {
			return nil, err
		}
		return newEngine(v, p), nil
	})
}

// elemKind tags a lowered element: one source instruction or one fused
// superinstruction pair.
type elemKind uint8

const (
	ekSingle     elemKind = iota
	ekCmpBr               // OpBin(Eq..Uge) + OpCondBr on its result
	ekConstBin            // OpConst + OpBin consuming it
	ekLoadAnd             // OpLoad + OpBin(And) masking it
	ekSanAccess           // OpSanCheck + the load/store it guards
	ekAddrLoad            // OpFrameAddr/OpGlobalAddr + OpLoad through it
	ekAddrStore           // OpFrameAddr/OpGlobalAddr + OpStore through it
	ekConstStore          // OpConst + OpStore consuming it
	ekCovX                // OpCov + any following single instruction
	ekCovPair             // OpCov + a fused pair (sub holds the pair kind)
	ekFellOff             // synthetic: block has no terminator (interpreter
	// faults "fell off block end" after executing every instruction);
	// covers zero source instructions
)

// elem is one pc's worth of work decided by the fusion pre-pass: one
// source instruction, a fused pair, or an OpCov merged with either.
type elem struct {
	kind   elemKind
	sub    elemKind // ekCovPair: the embedded pair's kind
	first  *ir.Instr
	second *ir.Instr // nil for ekSingle
	third  *ir.Instr // ekCovPair only
	bi, ii int       // source position of first
	// interElide: the fused pair's intermediate register write is skipped;
	// set by markElide when the register is provably dead after the pair.
	interElide bool
}

// srcCount returns the number of source instructions the element covers.
func (e *elem) srcCount() int {
	n := 0
	for _, in := range []*ir.Instr{e.first, e.second, e.third} {
		if in != nil {
			n++
		}
	}
	return n
}

// endsRun reports whether the element terminates a straight-line run: it
// is (or ends in) a call or a block terminator.
func (e *elem) endsRun() bool {
	if e.kind == ekFellOff {
		return true
	}
	last := e.first
	if e.second != nil {
		last = e.second
	}
	if e.third != nil {
		last = e.third
	}
	return last.Op == ir.OpCall || last.IsTerminator()
}

func isCmp(b ir.BinOp) bool { return b >= ir.Eq && b <= ir.Uge }

func isAddr(o ir.Op) bool { return o == ir.OpFrameAddr || o == ir.OpGlobalAddr }

// matchPair decides whether the two instructions at ii fuse into a
// superinstruction pair. Fusion only pairs adjacent instructions of the
// same block, which is safe because jumps target block starts only — no
// control flow can enter the middle of a pair. Each pattern preserves
// every intermediate destination register write, so dataflow is
// unchanged.
func matchPair(b *ir.Block, ii int) (elemKind, bool) {
	if ii+1 >= len(b.Instrs) {
		return ekSingle, false
	}
	in, next := &b.Instrs[ii], &b.Instrs[ii+1]
	switch {
	case in.Op == ir.OpBin && isCmp(in.Bin) && next.Op == ir.OpCondBr && next.A == in.Dst:
		return ekCmpBr, true
	case in.Op == ir.OpConst && next.Op == ir.OpBin &&
		(next.A == in.Dst) != (next.B == in.Dst) && // exactly one side; both-sides stays unfused
		!wouldCmpBr(b, ii+1):
		return ekConstBin, true
	case in.Op == ir.OpLoad && next.Op == ir.OpBin && next.Bin == ir.And &&
		(next.A == in.Dst || next.B == in.Dst):
		return ekLoadAnd, true
	case in.Op == ir.OpSanCheck && (next.Op == ir.OpLoad || next.Op == ir.OpStore):
		return ekSanAccess, true
	case isAddr(in.Op) && next.Op == ir.OpLoad && next.A == in.Dst:
		return ekAddrLoad, true
	case isAddr(in.Op) && next.Op == ir.OpStore && next.A == in.Dst:
		return ekAddrStore, true
	case in.Op == ir.OpConst && next.Op == ir.OpStore &&
		(next.A == in.Dst || next.B == in.Dst):
		return ekConstStore, true
	}
	return ekSingle, false
}

// covFusable reports whether an OpCov may absorb the following single
// instruction. Only OpCov itself is excluded (the coverage pass never
// emits two probes back to back, but stay conservative): everything else
// — including calls and sanchecks — composes, because the probe can
// never fault, so the merged element's fault accounting is exactly the
// inner instruction's.
func covFusable(o ir.Op) bool { return o != ir.OpCov }

// fuseBlock decides the element sequence for one block.
func fuseBlock(b *ir.Block, bi int) []elem {
	elems := make([]elem, 0, len(b.Instrs))
	for ii := 0; ii < len(b.Instrs); ii++ {
		in := &b.Instrs[ii]
		if in.Op == ir.OpCov && ii+1 < len(b.Instrs) {
			// Coverage probes head nearly every block; merge the probe
			// into whatever follows — a fused pair when the next two
			// instructions match a pattern, the single otherwise — so the
			// block-head dispatch disappears.
			if k, ok := matchPair(b, ii+1); ok {
				elems = append(elems, elem{
					kind: ekCovPair, sub: k,
					first: in, second: &b.Instrs[ii+1], third: &b.Instrs[ii+2],
					bi: bi, ii: ii,
				})
				ii += 2
				continue
			}
			if covFusable(b.Instrs[ii+1].Op) {
				elems = append(elems, elem{kind: ekCovX, first: in, second: &b.Instrs[ii+1], bi: bi, ii: ii})
				ii++
				continue
			}
		}
		if k, ok := matchPair(b, ii); ok {
			elems = append(elems, elem{kind: k, first: in, second: &b.Instrs[ii+1], bi: bi, ii: ii})
			ii++
			continue
		}
		elems = append(elems, elem{kind: ekSingle, first: in, bi: bi, ii: ii})
	}
	if n := len(b.Instrs); n == 0 || !b.Instrs[n-1].IsTerminator() {
		elems = append(elems, elem{kind: ekFellOff, bi: bi, ii: n})
	}
	return elems
}

// wouldCmpBr reports whether the instruction at ii would itself fuse into
// a compare+branch pair — in that case an OpConst before it should stay
// single so the branch fusion (which removes a dispatch on the loop back
// edge) wins the overlap.
func wouldCmpBr(b *ir.Block, ii int) bool {
	if ii+1 >= len(b.Instrs) {
		return false
	}
	in, next := &b.Instrs[ii], &b.Instrs[ii+1]
	return in.Op == ir.OpBin && isCmp(in.Bin) && next.Op == ir.OpCondBr && next.A == in.Dst
}

// compileModule lowers every function. Shells are created first so call
// closures can capture direct callee pointers regardless of definition
// order (bodies fill in afterwards).
func compileModule(mod *ir.Module) (*program, error) {
	p := &program{
		mod:  mod,
		fns:  make([]*cfn, len(mod.Funcs)),
		byFn: make(map[*ir.Func]*cfn, len(mod.Funcs)),
	}
	for i, f := range mod.Funcs {
		cf := &cfn{irFn: f}
		p.fns[i] = cf
		p.byFn[f] = cf
	}
	lay := vm.NewLayout(mod)
	p.cert = &Certificate{Module: mod.Name, Funcs: make([]*FuncCert, len(mod.Funcs))}
	for i, f := range mod.Funcs {
		fc := &FuncCert{Name: f.Name}
		if err := lowerFunc(p, p.fns[i], f, lay, fc); err != nil {
			return nil, fmt.Errorf("compile %s: %w", f.Name, err)
		}
		p.cert.Funcs[i] = fc
	}
	return p, nil
}

// lowerFunc lowers one function in two passes: pass A decides fusion,
// assigns pcs, marks dead-intermediate elisions, and computes block starts
// and run metadata; pass B emits the closures with every target pc and
// constant known. The certificate fc is filled alongside: spans and run
// tables in pass A, resolved targets / callee bindings / folds in pass B.
func lowerFunc(p *program, cf *cfn, f *ir.Func, lay *vm.Layout, fc *FuncCert) error {
	// Pass A: layout.
	var elems []elem
	cf.blockStart = make([]int, len(f.Blocks))
	for bi, b := range f.Blocks {
		cf.blockStart[bi] = len(elems)
		elems = append(elems, fuseBlock(b, bi)...)
	}
	liveOut := computeLiveOut(f)
	for i := range elems {
		markElide(f, liveOut, &elems[i])
	}
	cf.code = make([]op, len(elems))
	cf.runs = make([]runMeta, len(elems))

	fc.BlockStart = append([]int(nil), cf.blockStart...)
	fc.NumPCs = len(elems)
	fc.Elems = make([]ElemCert, len(elems))
	for i := range elems {
		e := &elems[i]
		ec := &fc.Elems[i]
		ec.Kind = certKind(e.kind)
		if e.kind == ekCovPair {
			ec.Sub = certKind(e.sub)
		}
		ec.Bi, ec.Ii, ec.N = e.bi, e.ii, e.srcCount()
		ec.Next = -1
		ec.CalleeIdx = -1
		if e.interElide {
			ec.InterElided = true
			if e.kind == ekCovPair {
				ec.InterReg = e.second.Dst
			} else {
				ec.InterReg = e.first.Dst
			}
		}
	}

	// Run metadata: a run head is pc 0 of a block or the pc after a call.
	// For each head, walk elements to the run-ending op, expanding fused
	// pairs into their source instructions to compute (k, net, maxDip) with
	// the interpreter's exact budget timing: for source instruction number
	// c (1-based), the timeout check sees budget − c + (sancheck
	// compensations completed strictly before it), so the run's dip at that
	// instruction is c − scBefore; no fault can fire in the run iff the
	// entering budget exceeds the maximum dip.
	blockEnd := make([]int, len(f.Blocks))
	for bi := range f.Blocks {
		if bi+1 < len(f.Blocks) {
			blockEnd[bi] = cf.blockStart[bi+1]
		} else {
			blockEnd[bi] = len(elems)
		}
	}
	for bi := range f.Blocks {
		head := cf.blockStart[bi]
		for head < blockEnd[bi] {
			r := &cf.runs[head]
			r.srcBi = int32(elems[head].bi)
			r.srcIi = int32(elems[head].ii)
			var c, sc, maxDip int64
			pc := head
			for {
				e := &elems[pc]
				for _, in := range []*ir.Instr{e.first, e.second, e.third} {
					if in == nil {
						continue
					}
					c++
					if dip := c - sc; dip > maxDip {
						maxDip = dip
					}
					if in.Op == ir.OpSanCheck {
						sc++
					}
				}
				r.cum = append(r.cum, int32(c))
				if e.endsRun() || pc+1 >= blockEnd[bi] {
					break
				}
				pc++
			}
			r.k = c
			r.net = c - sc
			r.maxDip = maxDip
			r.n = int32(pc - head + 1)
			fc.Runs = append(fc.Runs, RunCert{
				Head: head, K: r.k, Net: r.net, MaxDip: r.maxDip,
				N: r.n, SrcBi: r.srcBi, SrcIi: r.srcIi,
				Cum: append([]int32(nil), r.cum...),
			})
			head = pc + 1
		}
	}

	// Pass B: emit closures.
	for pc := range elems {
		e := &elems[pc]
		o, err := emit(p, cf, e, pc, lay, &fc.Elems[pc])
		if err != nil {
			return err
		}
		cf.code[pc] = o
	}
	return nil
}
