package compile_test

import (
	"bytes"
	"fmt"
	"testing"

	"closurex/internal/ir"
	"closurex/internal/lower"
	"closurex/internal/passes"
	"closurex/internal/targets"
	"closurex/internal/vm"

	_ "closurex/internal/vm/compile"
)

const mapSize = 1 << 16

// buildTarget compiles and instruments one benchmark target with the full
// ClosureX pipeline plus coverage, i.e. the module shape the fuzzer runs.
func buildTarget(t *testing.T, tg *targets.Target, sanitize bool) *ir.Module {
	t.Helper()
	m, err := buildModule(tg, sanitize)
	if err != nil {
		t.Fatalf("%s: %v", tg.Name, err)
	}
	return m
}

func buildModule(tg *targets.Target, sanitize bool) (*ir.Module, error) {
	m, err := lower.Compile(tg.Short+".c", tg.Source, vm.Builtins())
	if err != nil {
		return nil, err
	}
	pm := passes.NewManager(vm.Builtins())
	pm.Add(passes.ClosureXPipeline(false)...)
	if sanitize {
		pm.Add(passes.SanitizerPass{})
	}
	pm.Add(passes.NewCoveragePass(1))
	if err := pm.Run(m); err != nil {
		return nil, err
	}
	vm.ResolveModule(m)
	return m, nil
}

// runOnce executes one input in a fresh VM on the given backend.
func runOnce(t *testing.T, m *ir.Module, backend string, input []byte, budget int64, sanitize bool) (vm.Result, []byte) {
	t.Helper()
	cov := make([]byte, mapSize)
	v, err := vm.New(m, vm.Options{
		CovMap:            cov,
		Budget:            budget,
		TraceEdges:        true,
		DeterministicRand: true,
		RandSeed:          1,
		Sanitize:          sanitize,
		Backend:           backend,
	})
	if err != nil {
		t.Fatalf("vm.New(backend=%q): %v", backend, err)
	}
	v.SetInput(input)
	return v.Call(passes.TargetMain), cov
}

// diffResults fails the test unless the two results are bit-identical in
// every observable the fuzzer keys on.
func diffResults(t *testing.T, label string, ri, rc vm.Result, covI, covC []byte) {
	t.Helper()
	if ri.Ret != rc.Ret || ri.Exited != rc.Exited || ri.ExitCode != rc.ExitCode {
		t.Errorf("%s: ret/exit diverge: interp=(%d,%v,%d) compiled=(%d,%v,%d)",
			label, ri.Ret, ri.Exited, ri.ExitCode, rc.Ret, rc.Exited, rc.ExitCode)
	}
	if ri.Instrs != rc.Instrs {
		t.Errorf("%s: instrs diverge: interp=%d compiled=%d", label, ri.Instrs, rc.Instrs)
	}
	if ri.PathHash != rc.PathHash || ri.PathLen != rc.PathLen {
		t.Errorf("%s: path diverges: interp=(%#x,%d) compiled=(%#x,%d)",
			label, ri.PathHash, ri.PathLen, rc.PathHash, rc.PathLen)
	}
	switch {
	case (ri.Fault == nil) != (rc.Fault == nil):
		t.Errorf("%s: fault presence diverges: interp=%v compiled=%v", label, ri.Fault, rc.Fault)
	case ri.Fault != nil:
		fi, fc := ri.Fault, rc.Fault
		if fi.Kind != fc.Kind || fi.Fn != fc.Fn || fi.Line != fc.Line || fi.Addr != fc.Addr || fi.Msg != fc.Msg {
			t.Errorf("%s: fault diverges:\n  interp:   kind=%v fn=%s line=%d addr=%#x msg=%q\n  compiled: kind=%v fn=%s line=%d addr=%#x msg=%q",
				label, fi.Kind, fi.Fn, fi.Line, fi.Addr, fi.Msg,
				fc.Kind, fc.Fn, fc.Line, fc.Addr, fc.Msg)
		}
	}
	if !bytes.Equal(covI, covC) {
		n := 0
		first := -1
		for i := range covI {
			if covI[i] != covC[i] {
				if first < 0 {
					first = i
				}
				n++
			}
		}
		t.Errorf("%s: coverage bitmaps diverge at %d cells (first %d: interp=%d compiled=%d)",
			label, n, first, covI[first], covC[first])
	}
}

// TestBackendRegistered proves the blank import wired the backend in.
func TestBackendRegistered(t *testing.T) {
	for _, b := range vm.Backends() {
		if b == "compiled" {
			return
		}
	}
	t.Fatalf("compiled backend not registered: %v", vm.Backends())
}

// TestDifferentialSeeds runs every target's seed corpus and bug triggers
// through both backends in fresh VMs and demands bit-identical results,
// coverage bitmaps and path hashes.
func TestDifferentialSeeds(t *testing.T) {
	for _, tg := range targets.All() {
		tg := tg
		t.Run(tg.Name, func(t *testing.T) {
			m := buildTarget(t, tg, false)
			inputs := tg.Seeds()
			for _, b := range tg.Bugs {
				inputs = append(inputs, b.Trigger)
			}
			for i, in := range inputs {
				ri, covI := runOnce(t, m, vm.InterpBackend, in, 0, false)
				rc, covC := runOnce(t, m, "compiled", in, 0, false)
				diffResults(t, fmt.Sprintf("input %d", i), ri, rc, covI, covC)
			}
		})
	}
}

// TestDifferentialSanitize repeats the seed sweep with the sanitizer pass
// and shadow plane on: OpSanCheck budget compensation and sancheck+access
// superinstruction fusion must not perturb any observable.
func TestDifferentialSanitize(t *testing.T) {
	for _, tg := range targets.All() {
		tg := tg
		t.Run(tg.Name, func(t *testing.T) {
			m := buildTarget(t, tg, true)
			inputs := tg.Seeds()
			for _, b := range tg.Bugs {
				inputs = append(inputs, b.Trigger)
			}
			for i, in := range inputs {
				ri, covI := runOnce(t, m, vm.InterpBackend, in, 0, true)
				rc, covC := runOnce(t, m, "compiled", in, 0, true)
				diffResults(t, fmt.Sprintf("input %d", i), ri, rc, covI, covC)
			}
		})
	}
}

// TestDifferentialTimeoutSites sweeps tiny instruction budgets so the
// timeout lands at many different instructions, forcing the compiled
// tier's slow path, and demands the hang verdict fires at the identical
// site with the identical instruction count.
func TestDifferentialTimeoutSites(t *testing.T) {
	for _, tg := range targets.All() {
		tg := tg
		t.Run(tg.Name, func(t *testing.T) {
			seeds := tg.Seeds()
			if len(seeds) == 0 {
				t.Skip("no seeds")
			}
			m := buildTarget(t, tg, true)
			in := seeds[0]
			// Establish the full cost, then cut budgets through the whole
			// execution range, dense at the start (where runs are short and
			// fused pairs sit near block heads) and logarithmic after.
			full, _ := runOnce(t, m, vm.InterpBackend, in, 0, true)
			budgets := []int64{}
			for b := int64(1); b <= 64; b++ {
				budgets = append(budgets, b)
			}
			for b := int64(80); b < full.Instrs+16; b = b*5/4 + 1 {
				budgets = append(budgets, b)
			}
			for _, b := range budgets {
				ri, covI := runOnce(t, m, vm.InterpBackend, in, b, true)
				rc, covC := runOnce(t, m, "compiled", in, b, true)
				diffResults(t, fmt.Sprintf("budget %d", b), ri, rc, covI, covC)
			}
		})
	}
}

// TestCompiledRepeatIdentity runs the same input twice in the SAME
// compiled VM (interleaved executions, pooled frames reused) and demands
// identical observables — the compiled tier must not leak state between
// executions beyond what the target itself mutates.
func TestCompiledRepeatIdentity(t *testing.T) {
	tg := targets.All()[0]
	m := buildTarget(t, tg, false)
	seeds := tg.Seeds()
	if len(seeds) == 0 {
		t.Skip("no seeds")
	}
	cov := make([]byte, mapSize)
	v, err := vm.New(m, vm.Options{
		CovMap:            cov,
		TraceEdges:        true,
		DeterministicRand: true,
		RandSeed:          1,
		Backend:           "compiled",
	})
	if err != nil {
		t.Fatal(err)
	}
	// Persistent-style reruns mutate globals, so compare against the
	// interpreter doing the exact same rerun sequence instead of against
	// the first compiled run.
	covI := make([]byte, mapSize)
	vi, err := vm.New(m, vm.Options{
		CovMap:            covI,
		TraceEdges:        true,
		DeterministicRand: true,
		RandSeed:          1,
		Backend:           vm.InterpBackend,
	})
	if err != nil {
		t.Fatal(err)
	}
	for round := 0; round < 3; round++ {
		for si, in := range seeds {
			v.SetInput(in)
			vi.SetInput(in)
			rc := v.Call(passes.TargetMain)
			ri := vi.Call(passes.TargetMain)
			diffResults(t, fmt.Sprintf("round %d seed %d", round, si), ri, rc, covI, cov)
		}
	}
}

// TestUnknownBackend proves vm.New rejects unregistered backend names.
func TestUnknownBackend(t *testing.T) {
	tg := targets.All()[0]
	m := buildTarget(t, tg, false)
	if _, err := vm.New(m, vm.Options{Backend: "no-such-backend"}); err == nil {
		t.Fatal("vm.New accepted an unknown backend")
	}
}
