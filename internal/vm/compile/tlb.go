package compile

// Per-machine memory fast paths. The interpreter resolves every load and
// store through the page-table map and re-classifies every address from
// scratch; profiling shows those two costs dominate once dispatch is
// compiled away. The compiled tier therefore caches both:
//
//   - a direct-mapped TLB (machine.tlb) translates page numbers to page
//     frames, validated against the Memory's page-table epoch, so the
//     steady-state load path is mask/shift/compare instead of a map
//     lookup;
//   - a per-site AccessCache (machine.acc) replays the access checker's
//     verdict while its revalidation condition (globals window, heap
//     chunk generation, stack frontier) still holds.
//
// Both caches are purely an implementation of the interpreter's exact
// semantics: every miss falls back to the interpreter's own code paths
// (mem.ReadUint/WriteUint/Zero, vm.checkAccess), and the epochs/
// generations are bumped by the mem layer on every event that could
// change an answer — page mapped, privatized, re-shared or released;
// chunk allocated, freed, resized or reset. The differential suites
// exercise restore, fork and injected-fault traffic across both backends
// to prove the invalidation is airtight.

import (
	"closurex/internal/mem"
	"closurex/internal/vm"
)

// accOK replays an access site's cached verdict for [addr, end).
func (m *machine) accOK(c *vm.AccessCache, addr, end uint64) bool {
	switch c.Mode {
	case vm.AccWindow:
		return addr >= c.Lo && end <= c.Hi
	case vm.AccHeapChunk:
		return addr >= c.Lo && end <= c.Hi && c.Gen == m.v.Heap.Gen()
	case vm.AccStack:
		return addr >= vm.StackBase && end <= *m.sp
	}
	return false
}

// loadU reads a size-byte little-endian value through the TLB. Callers
// have already validated the access; unmapped pages read as zero.
func (m *machine) loadU(addr uint64, size int) (uint64, error) {
	off := addr & (mem.PageSize - 1)
	if int(off)+size > mem.PageSize || addr < mem.PageSize {
		return m.mem.ReadUint(addr, size) // page-spanning (or null: exact error)
	}
	pn := addr >> mem.PageShift
	e := &m.tlb.E[pn&(mem.TLBSize-1)]
	if e.Tag != pn+1 || m.tlb.Epoch != m.mem.Epoch() {
		e = m.mem.TLBFill(&m.tlb, pn)
	}
	d := e.Data
	if d == nil {
		return 0, nil // demand-zero
	}
	b := d[off:]
	switch size {
	case 1:
		return uint64(b[0]), nil
	case 2:
		return uint64(b[0]) | uint64(b[1])<<8, nil
	case 4:
		return uint64(b[0]) | uint64(b[1])<<8 | uint64(b[2])<<16 | uint64(b[3])<<24, nil
	case 8:
		return uint64(b[0]) | uint64(b[1])<<8 | uint64(b[2])<<16 | uint64(b[3])<<24 |
			uint64(b[4])<<32 | uint64(b[5])<<40 | uint64(b[6])<<48 | uint64(b[7])<<56, nil
	}
	return m.mem.ReadUint(addr, size)
}

// storeU writes a size-byte little-endian value through the TLB,
// preserving the write barrier: every fast-path write reports its page to
// the armed watch, exactly as mem.WriteUint's writablePage path would.
func (m *machine) storeU(addr uint64, v uint64, size int) error {
	off := addr & (mem.PageSize - 1)
	if int(off)+size > mem.PageSize || addr < mem.PageSize {
		return m.mem.WriteUint(addr, v, size)
	}
	pn := addr >> mem.PageShift
	e := &m.tlb.E[pn&(mem.TLBSize-1)]
	if e.Tag != pn+1 || !e.W || m.tlb.Epoch != m.mem.Epoch() {
		var err error
		e, err = m.mem.TLBFillW(&m.tlb, pn) // maps/privatizes + records watch
		if err != nil {
			return err
		}
	} else {
		m.mem.MarkWatched(pn)
	}
	b := e.Data[off:]
	switch size {
	case 1:
		b[0] = byte(v)
	case 2:
		b[0], b[1] = byte(v), byte(v>>8)
	case 4:
		b[0], b[1], b[2], b[3] = byte(v), byte(v>>8), byte(v>>16), byte(v>>24)
	case 8:
		b[0], b[1], b[2], b[3] = byte(v), byte(v>>8), byte(v>>16), byte(v>>24)
		b[4], b[5], b[6], b[7] = byte(v>>32), byte(v>>40), byte(v>>48), byte(v>>56)
	default:
		return m.mem.WriteUint(addr, v, size)
	}
	return nil
}

// zeroRange clears [addr, addr+n) with mem.Zero's exact semantics (never
// mapping absent pages), using the TLB when the range sits in one cached
// page. This is the frame-scrub fast path: frames are re-zeroed on every
// activation and almost always live in a single private stack page.
func (m *machine) zeroRange(addr uint64, n int) error {
	off := addr & (mem.PageSize - 1)
	if int(off)+n <= mem.PageSize && addr >= mem.PageSize {
		pn := addr >> mem.PageShift
		e := &m.tlb.E[pn&(mem.TLBSize-1)]
		if e.Tag == pn+1 && m.tlb.Epoch == m.mem.Epoch() {
			if e.Data == nil {
				return nil // unmapped already reads as zero
			}
			if e.W {
				m.mem.MarkWatched(pn)
				clear(e.Data[off : off+uint64(n)])
				return nil
			}
		}
	}
	return m.mem.Zero(addr, n)
}
