package compile

import (
	"fmt"

	"closurex/internal/ir"
	"closurex/internal/vm"
)

// emit lowers one element to its closure. Every operand that is knowable
// at compile time — immediates, global addresses, branch target pcs,
// callee function values, shift amounts, fused comparison kinds, access
// cache slots — is captured as a constant, so the closure does only the
// dynamic work. Each derived capture (resolved pc, folded address,
// pre-masked shift, callee index) is recorded in ec, the element's
// certificate entry, for transval to prove.
func emit(p *program, cf *cfn, e *elem, pc int, lay *vm.Layout, ec *ElemCert) (op, error) {
	switch e.kind {
	case ekFellOff:
		return func(m *machine, regs []int64) int {
			return m.fault(vm.FaultUnreachable, nil, 0, "fell off block end")
		}, nil
	case ekCmpBr:
		return emitCmpBr(cf, e.first, e.second, e.interElide, ec), nil
	case ekConstBin:
		return emitConstBin(e.first, e.second, ec), nil
	case ekLoadAnd:
		return emitLoadAnd(p, e.first, e.second), nil
	case ekSanAccess:
		return emitSanAccess(p, e.first, e.second), nil
	case ekAddrLoad:
		return emitAddrLoad(p, e.first, e.second, lay, ec), nil
	case ekAddrStore:
		return emitAddrStore(p, e.first, e.second, lay, ec), nil
	case ekConstStore:
		return emitConstStore(p, e.first, e.second, ec), nil
	case ekCovX:
		inner := elem{kind: ekSingle, first: e.second, bi: e.bi, ii: e.ii + 1}
		io, err := emit(p, cf, &inner, pc, lay, ec)
		if err != nil {
			return nil, err
		}
		return wrapCov(e.first, io), nil
	case ekCovPair:
		inner := elem{
			kind: e.sub, first: e.second, second: e.third,
			bi: e.bi, ii: e.ii + 1, interElide: e.interElide,
		}
		io, err := emit(p, cf, &inner, pc, lay, ec)
		if err != nil {
			return nil, err
		}
		return wrapCov(e.first, io), nil
	}
	in := e.first
	switch in.Op {
	case ir.OpConst:
		dst, imm := in.Dst, in.Imm
		return func(m *machine, regs []int64) int { regs[dst] = imm; return 0 }, nil
	case ir.OpMov:
		dst, a := in.Dst, in.A
		return func(m *machine, regs []int64) int { regs[dst] = regs[a]; return 0 }, nil
	case ir.OpBin:
		return emitBin(in), nil
	case ir.OpUn:
		return emitUn(in), nil
	case ir.OpLoad:
		return emitLoad(p, in), nil
	case ir.OpStore:
		return emitStore(p, in), nil
	case ir.OpGlobalAddr:
		dst := in.Dst
		addr := int64(lay.GlobalAddr[in.Imm])
		ec.Folds = append(ec.Folds, Fold{Kind: FoldGlobalAddr, Arg: in.Imm, Val: addr})
		return func(m *machine, regs []int64) int { regs[dst] = addr; return 0 }, nil
	case ir.OpFrameAddr:
		dst, off := in.Dst, uint64(in.Imm)
		return func(m *machine, regs []int64) int { regs[dst] = int64(m.frame + off); return 0 }, nil
	case ir.OpCall:
		return emitCall(p, in, pc+1, ec), nil
	case ir.OpRet:
		if a := in.A; a >= 0 {
			return func(m *machine, regs []int64) int { m.ret = regs[a]; return retPC }, nil
		}
		return func(m *machine, regs []int64) int { m.ret = 0; return retPC }, nil
	case ir.OpBr:
		t := cf.blockStart[in.Targets[0]]
		ec.Targets = append(ec.Targets, t)
		return func(m *machine, regs []int64) int { return t }, nil
	case ir.OpCondBr:
		a := in.A
		t0, t1 := cf.blockStart[in.Targets[0]], cf.blockStart[in.Targets[1]]
		ec.Targets = append(ec.Targets, t0, t1)
		return func(m *machine, regs []int64) int {
			if regs[a] != 0 {
				return t0
			}
			return t1
		}, nil
	case ir.OpCov:
		return emitCov(in), nil
	case ir.OpUnreachable:
		return func(m *machine, regs []int64) int {
			return m.fault(vm.FaultUnreachable, in, 0, "")
		}, nil
	case ir.OpSanCheck:
		a, imm := in.A, in.Imm
		return func(m *machine, regs []int64) int {
			// Budget compensation is folded into the run's net debit; the
			// closure only performs the shadow consultation.
			addr := uint64(regs[a] + imm)
			if flt := m.v.EngineSanCheck(addr, in); flt != nil {
				m.err = flt
				return errPC
			}
			return 0
		}, nil
	}
	return nil, fmt.Errorf("unknown opcode %d", uint8(in.Op))
}

// covHit records one coverage probe: the AFL edge-index increment plus
// the trace-mode path hash. The full-size bitmap pointer (cov16) makes
// the masked index provably in bounds.
func covHit(m *machine, loc, shifted uint64) {
	idx := (loc ^ *m.prevLoc) & covMask
	if m.cov16 != nil {
		m.cov16[idx]++
	} else {
		m.cov[idx]++
	}
	*m.prevLoc = shifted
	if m.trace {
		*m.pathHash = (*m.pathHash ^ idx) * 1099511628211
		*m.pathLen++
	}
}

// emitCov captures the probe location and its shifted successor value.
func emitCov(in *ir.Instr) op {
	loc := uint64(in.Imm)
	shifted := loc >> 1
	return func(m *machine, regs []int64) int {
		covHit(m, loc, shifted)
		return 0
	}
}

// wrapCov merges a coverage probe into the element that follows it. The
// probe cannot fault, so the merged element's fault accounting is exactly
// the inner element's (including any adj the inner sets).
func wrapCov(cov *ir.Instr, inner op) op {
	loc := uint64(cov.Imm)
	shifted := loc >> 1
	return func(m *machine, regs []int64) int {
		covHit(m, loc, shifted)
		return inner(m, regs)
	}
}

func emitLoad(p *program, in *ir.Instr) op {
	dst, a, imm, size := in.Dst, in.A, in.Imm, in.Size
	usize := uint64(size)
	slot := p.newSite()
	return func(m *machine, regs []int64) int {
		addr := uint64(regs[a] + imm)
		c := &m.acc[slot]
		if !m.accOK(c, addr, addr+usize) {
			if flt := m.v.EngineCheckAccessCached(c, addr, size, false, in); flt != nil {
				m.err = flt
				return errPC
			}
		}
		u, err := m.loadU(addr, size)
		if err != nil {
			return m.fault(vm.FaultWild, in, addr, err.Error())
		}
		regs[dst] = int64(u)
		return 0
	}
}

func emitStore(p *program, in *ir.Instr) op {
	a, b, imm, size := in.A, in.B, in.Imm, in.Size
	usize := uint64(size)
	slot := p.newSite()
	return func(m *machine, regs []int64) int {
		addr := uint64(regs[a] + imm)
		c := &m.acc[slot]
		if !m.accOK(c, addr, addr+usize) {
			if flt := m.v.EngineCheckAccessCached(c, addr, size, true, in); flt != nil {
				m.err = flt
				return errPC
			}
		}
		if err := m.storeU(addr, uint64(regs[b]), size); err != nil {
			return m.fault(vm.FaultOOM, in, addr, err.Error())
		}
		return 0
	}
}

// emitAddrLoad fuses an address materialization with the load through it.
// The address register is still written; for OpGlobalAddr the entire
// effective address folds to a compile-time constant.
func emitAddrLoad(p *program, ain, ld *ir.Instr, lay *vm.Layout, ec *ElemCert) op {
	adst := ain.Dst
	dst, limm, size := ld.Dst, ld.Imm, ld.Size
	usize := uint64(size)
	slot := p.newSite()
	if ain.Op == ir.OpGlobalAddr {
		base := int64(lay.GlobalAddr[ain.Imm])
		addr := uint64(base + limm)
		end := addr + usize
		ec.Folds = append(ec.Folds,
			Fold{Kind: FoldGlobalAddr, Arg: ain.Imm, Val: base},
			Fold{Kind: FoldAbsAddr, Arg: limm, Val: int64(addr)})
		return func(m *machine, regs []int64) int {
			regs[adst] = base
			c := &m.acc[slot]
			if !m.accOK(c, addr, end) {
				if flt := m.v.EngineCheckAccessCached(c, addr, size, false, ld); flt != nil {
					m.err = flt
					return errPC
				}
			}
			u, err := m.loadU(addr, size)
			if err != nil {
				return m.fault(vm.FaultWild, ld, addr, err.Error())
			}
			regs[dst] = int64(u)
			return 0
		}
	}
	off := uint64(ain.Imm)
	return func(m *machine, regs []int64) int {
		base := int64(m.frame + off)
		regs[adst] = base
		addr := uint64(base + limm)
		c := &m.acc[slot]
		if !m.accOK(c, addr, addr+usize) {
			if flt := m.v.EngineCheckAccessCached(c, addr, size, false, ld); flt != nil {
				m.err = flt
				return errPC
			}
		}
		u, err := m.loadU(addr, size)
		if err != nil {
			return m.fault(vm.FaultWild, ld, addr, err.Error())
		}
		regs[dst] = int64(u)
		return 0
	}
}

// emitAddrStore fuses an address materialization with the store through
// it. The value register is read after the address register is written,
// preserving the interpreter's dataflow even when they coincide.
func emitAddrStore(p *program, ain, st *ir.Instr, lay *vm.Layout, ec *ElemCert) op {
	adst := ain.Dst
	vb, simm, size := st.B, st.Imm, st.Size
	usize := uint64(size)
	slot := p.newSite()
	if ain.Op == ir.OpGlobalAddr {
		base := int64(lay.GlobalAddr[ain.Imm])
		addr := uint64(base + simm)
		end := addr + usize
		ec.Folds = append(ec.Folds,
			Fold{Kind: FoldGlobalAddr, Arg: ain.Imm, Val: base},
			Fold{Kind: FoldAbsAddr, Arg: simm, Val: int64(addr)})
		return func(m *machine, regs []int64) int {
			regs[adst] = base
			c := &m.acc[slot]
			if !m.accOK(c, addr, end) {
				if flt := m.v.EngineCheckAccessCached(c, addr, size, true, st); flt != nil {
					m.err = flt
					return errPC
				}
			}
			if err := m.storeU(addr, uint64(regs[vb]), size); err != nil {
				return m.fault(vm.FaultOOM, st, addr, err.Error())
			}
			return 0
		}
	}
	off := uint64(ain.Imm)
	return func(m *machine, regs []int64) int {
		base := int64(m.frame + off)
		regs[adst] = base
		addr := uint64(base + simm)
		c := &m.acc[slot]
		if !m.accOK(c, addr, addr+usize) {
			if flt := m.v.EngineCheckAccessCached(c, addr, size, true, st); flt != nil {
				m.err = flt
				return errPC
			}
		}
		if err := m.storeU(addr, uint64(regs[vb]), size); err != nil {
			return m.fault(vm.FaultOOM, st, addr, err.Error())
		}
		return 0
	}
}

// emitConstStore fuses a constant materialization with the store that
// consumes it (as value, address or both). The constant's register is
// written first, then the store reads its operands — identical dataflow
// to the unfused sequence.
func emitConstStore(p *program, c, st *ir.Instr, ec *ElemCert) op {
	cd, imm := c.Dst, c.Imm
	a, b, simm, size := st.A, st.B, st.Imm, st.Size
	usize := uint64(size)
	slot := p.newSite()
	ec.Folds = append(ec.Folds, Fold{Kind: FoldImm, Arg: c.Imm, Val: imm})
	return func(m *machine, regs []int64) int {
		regs[cd] = imm
		addr := uint64(regs[a] + simm)
		ac := &m.acc[slot]
		if !m.accOK(ac, addr, addr+usize) {
			if flt := m.v.EngineCheckAccessCached(ac, addr, size, true, st); flt != nil {
				m.err = flt
				return errPC
			}
		}
		if err := m.storeU(addr, uint64(regs[b]), size); err != nil {
			return m.fault(vm.FaultOOM, st, addr, err.Error())
		}
		return 0
	}
}

func emitUn(in *ir.Instr) op {
	dst, a := in.Dst, in.A
	switch in.Un {
	case ir.Neg:
		return func(m *machine, regs []int64) int { regs[dst] = -regs[a]; return 0 }
	case ir.Not:
		return func(m *machine, regs []int64) int {
			if regs[a] == 0 {
				regs[dst] = 1
			} else {
				regs[dst] = 0
			}
			return 0
		}
	case ir.BNot:
		return func(m *machine, regs []int64) int { regs[dst] = ^regs[a]; return 0 }
	}
	// Unknown unary ops write nothing in the interpreter either.
	return func(m *machine, regs []int64) int { return 0 }
}

func b2i(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

// emitBin specializes a register-register binary op by operator, hoisting
// the interpreter's per-execution switch to compile time.
func emitBin(in *ir.Instr) op {
	dst, ra, rb := in.Dst, in.A, in.B
	switch in.Bin {
	case ir.Add:
		return func(m *machine, regs []int64) int { regs[dst] = regs[ra] + regs[rb]; return 0 }
	case ir.Sub:
		return func(m *machine, regs []int64) int { regs[dst] = regs[ra] - regs[rb]; return 0 }
	case ir.Mul:
		return func(m *machine, regs []int64) int { regs[dst] = regs[ra] * regs[rb]; return 0 }
	case ir.Div:
		return func(m *machine, regs []int64) int {
			b := regs[rb]
			if b == 0 {
				return m.fault(vm.FaultDivByZero, in, 0, "")
			}
			if b == -1 { // avoid Go panic on MinInt64 / -1
				regs[dst] = -regs[ra]
				return 0
			}
			regs[dst] = regs[ra] / b
			return 0
		}
	case ir.Rem:
		return func(m *machine, regs []int64) int {
			b := regs[rb]
			if b == 0 {
				return m.fault(vm.FaultDivByZero, in, 0, "")
			}
			if b == -1 {
				regs[dst] = 0
				return 0
			}
			regs[dst] = regs[ra] % b
			return 0
		}
	case ir.Shl:
		return func(m *machine, regs []int64) int { regs[dst] = regs[ra] << (uint64(regs[rb]) & 63); return 0 }
	case ir.Shr:
		return func(m *machine, regs []int64) int { regs[dst] = regs[ra] >> (uint64(regs[rb]) & 63); return 0 }
	case ir.And:
		return func(m *machine, regs []int64) int { regs[dst] = regs[ra] & regs[rb]; return 0 }
	case ir.Or:
		return func(m *machine, regs []int64) int { regs[dst] = regs[ra] | regs[rb]; return 0 }
	case ir.Xor:
		return func(m *machine, regs []int64) int { regs[dst] = regs[ra] ^ regs[rb]; return 0 }
	case ir.Eq:
		return func(m *machine, regs []int64) int { regs[dst] = b2i(regs[ra] == regs[rb]); return 0 }
	case ir.Ne:
		return func(m *machine, regs []int64) int { regs[dst] = b2i(regs[ra] != regs[rb]); return 0 }
	case ir.Lt:
		return func(m *machine, regs []int64) int { regs[dst] = b2i(regs[ra] < regs[rb]); return 0 }
	case ir.Le:
		return func(m *machine, regs []int64) int { regs[dst] = b2i(regs[ra] <= regs[rb]); return 0 }
	case ir.Gt:
		return func(m *machine, regs []int64) int { regs[dst] = b2i(regs[ra] > regs[rb]); return 0 }
	case ir.Ge:
		return func(m *machine, regs []int64) int { regs[dst] = b2i(regs[ra] >= regs[rb]); return 0 }
	case ir.Ult:
		return func(m *machine, regs []int64) int { regs[dst] = b2i(uint64(regs[ra]) < uint64(regs[rb])); return 0 }
	case ir.Ule:
		return func(m *machine, regs []int64) int { regs[dst] = b2i(uint64(regs[ra]) <= uint64(regs[rb])); return 0 }
	case ir.Ugt:
		return func(m *machine, regs []int64) int { regs[dst] = b2i(uint64(regs[ra]) > uint64(regs[rb])); return 0 }
	case ir.Uge:
		return func(m *machine, regs []int64) int { regs[dst] = b2i(uint64(regs[ra]) >= uint64(regs[rb])); return 0 }
	}
	return func(m *machine, regs []int64) int {
		return m.fault(vm.FaultBadCall, in, 0, fmt.Sprintf("bad binop %d", uint8(in.Bin)))
	}
}

// emitCmpBr fuses a comparison with the conditional branch consuming it;
// the branch decides on the native bool — one dispatch and one
// materialization saved per loop back edge. When the compiler's liveness
// proved the comparison's destination dead after the branch (elide), the
// 0/1 materialization is skipped entirely; otherwise it is preserved so
// later blocks may re-read it. An elision is claimed in the certificate
// and independently proven by transval's own liveness instance.
func emitCmpBr(cf *cfn, cmp, br *ir.Instr, elide bool, ec *ElemCert) op {
	dst, ra, rb := cmp.Dst, cmp.A, cmp.B
	t0, t1 := cf.blockStart[br.Targets[0]], cf.blockStart[br.Targets[1]]
	ec.Targets = append(ec.Targets, t0, t1)
	var take func(regs []int64, c bool) int
	if elide {
		take = func(regs []int64, c bool) int {
			if c {
				return t0
			}
			return t1
		}
	} else {
		take = func(regs []int64, c bool) int {
			if c {
				regs[dst] = 1
				return t0
			}
			regs[dst] = 0
			return t1
		}
	}
	switch cmp.Bin {
	case ir.Eq:
		return func(m *machine, regs []int64) int { return take(regs, regs[ra] == regs[rb]) }
	case ir.Ne:
		return func(m *machine, regs []int64) int { return take(regs, regs[ra] != regs[rb]) }
	case ir.Lt:
		return func(m *machine, regs []int64) int { return take(regs, regs[ra] < regs[rb]) }
	case ir.Le:
		return func(m *machine, regs []int64) int { return take(regs, regs[ra] <= regs[rb]) }
	case ir.Gt:
		return func(m *machine, regs []int64) int { return take(regs, regs[ra] > regs[rb]) }
	case ir.Ge:
		return func(m *machine, regs []int64) int { return take(regs, regs[ra] >= regs[rb]) }
	case ir.Ult:
		return func(m *machine, regs []int64) int { return take(regs, uint64(regs[ra]) < uint64(regs[rb])) }
	case ir.Ule:
		return func(m *machine, regs []int64) int { return take(regs, uint64(regs[ra]) <= uint64(regs[rb])) }
	case ir.Ugt:
		return func(m *machine, regs []int64) int { return take(regs, uint64(regs[ra]) > uint64(regs[rb])) }
	case ir.Uge:
		return func(m *machine, regs []int64) int { return take(regs, uint64(regs[ra]) >= uint64(regs[rb])) }
	}
	// fuseBlock only pairs Eq..Uge; unreachable.
	return func(m *machine, regs []int64) int { return take(regs, regs[ra] != 0) }
}

// emitConstBin fuses a constant materialization with the binary op that
// consumes it: the immediate becomes a captured operand. The constant's
// destination register is still written first (the fusion precondition
// guarantees the op's other operand is a different register).
func emitConstBin(c, b *ir.Instr, ec *ElemCert) op {
	cd, imm := c.Dst, c.Imm
	dst := b.Dst
	immOnA := b.A == cd // immediate is the left operand
	var r int           // the register operand
	if immOnA {
		r = b.B
	} else {
		r = b.A
	}
	ec.Folds = append(ec.Folds, Fold{Kind: FoldImm, Arg: c.Imm, Val: imm})
	if !immOnA {
		// Certify the derived constants: the pre-masked shift amount and
		// the compile-time degenerate-divisor selection.
		switch b.Bin {
		case ir.Shl, ir.Shr:
			ec.Folds = append(ec.Folds, Fold{Kind: FoldShiftMask, Arg: imm, Val: int64(uint64(imm) & 63)})
		case ir.Div, ir.Rem:
			switch imm {
			case 0:
				ec.Folds = append(ec.Folds, Fold{Kind: FoldDivZero, Arg: imm, Val: 0})
			case -1:
				ec.Folds = append(ec.Folds, Fold{Kind: FoldDivNegOne, Arg: imm, Val: -1})
			}
		}
	}
	switch b.Bin {
	case ir.Add:
		return func(m *machine, regs []int64) int { regs[cd] = imm; regs[dst] = regs[r] + imm; return 0 }
	case ir.Sub:
		if immOnA {
			return func(m *machine, regs []int64) int { regs[cd] = imm; regs[dst] = imm - regs[r]; return 0 }
		}
		return func(m *machine, regs []int64) int { regs[cd] = imm; regs[dst] = regs[r] - imm; return 0 }
	case ir.Mul:
		return func(m *machine, regs []int64) int { regs[cd] = imm; regs[dst] = regs[r] * imm; return 0 }
	case ir.Div:
		if immOnA {
			return func(m *machine, regs []int64) int {
				regs[cd] = imm
				d := regs[r]
				if d == 0 {
					return m.fault(vm.FaultDivByZero, b, 0, "")
				}
				if d == -1 {
					regs[dst] = -imm
					return 0
				}
				regs[dst] = imm / d
				return 0
			}
		}
		// Constant divisor: the zero/−1 checks resolve at compile time.
		switch imm {
		case 0:
			return func(m *machine, regs []int64) int {
				regs[cd] = imm
				return m.fault(vm.FaultDivByZero, b, 0, "")
			}
		case -1:
			return func(m *machine, regs []int64) int { regs[cd] = imm; regs[dst] = -regs[r]; return 0 }
		default:
			return func(m *machine, regs []int64) int { regs[cd] = imm; regs[dst] = regs[r] / imm; return 0 }
		}
	case ir.Rem:
		if immOnA {
			return func(m *machine, regs []int64) int {
				regs[cd] = imm
				d := regs[r]
				if d == 0 {
					return m.fault(vm.FaultDivByZero, b, 0, "")
				}
				if d == -1 {
					regs[dst] = 0
					return 0
				}
				regs[dst] = imm % d
				return 0
			}
		}
		switch imm {
		case 0:
			return func(m *machine, regs []int64) int {
				regs[cd] = imm
				return m.fault(vm.FaultDivByZero, b, 0, "")
			}
		case -1:
			return func(m *machine, regs []int64) int { regs[cd] = imm; regs[dst] = 0; return 0 }
		default:
			return func(m *machine, regs []int64) int { regs[cd] = imm; regs[dst] = regs[r] % imm; return 0 }
		}
	case ir.Shl:
		if immOnA {
			return func(m *machine, regs []int64) int {
				regs[cd] = imm
				regs[dst] = imm << (uint64(regs[r]) & 63)
				return 0
			}
		}
		sh := uint64(imm) & 63
		return func(m *machine, regs []int64) int { regs[cd] = imm; regs[dst] = regs[r] << sh; return 0 }
	case ir.Shr:
		if immOnA {
			return func(m *machine, regs []int64) int {
				regs[cd] = imm
				regs[dst] = imm >> (uint64(regs[r]) & 63)
				return 0
			}
		}
		sh := uint64(imm) & 63
		return func(m *machine, regs []int64) int { regs[cd] = imm; regs[dst] = regs[r] >> sh; return 0 }
	case ir.And:
		return func(m *machine, regs []int64) int { regs[cd] = imm; regs[dst] = regs[r] & imm; return 0 }
	case ir.Or:
		return func(m *machine, regs []int64) int { regs[cd] = imm; regs[dst] = regs[r] | imm; return 0 }
	case ir.Xor:
		return func(m *machine, regs []int64) int { regs[cd] = imm; regs[dst] = regs[r] ^ imm; return 0 }
	case ir.Eq:
		return func(m *machine, regs []int64) int { regs[cd] = imm; regs[dst] = b2i(regs[r] == imm); return 0 }
	case ir.Ne:
		return func(m *machine, regs []int64) int { regs[cd] = imm; regs[dst] = b2i(regs[r] != imm); return 0 }
	case ir.Lt:
		if immOnA {
			return func(m *machine, regs []int64) int { regs[cd] = imm; regs[dst] = b2i(imm < regs[r]); return 0 }
		}
		return func(m *machine, regs []int64) int { regs[cd] = imm; regs[dst] = b2i(regs[r] < imm); return 0 }
	case ir.Le:
		if immOnA {
			return func(m *machine, regs []int64) int { regs[cd] = imm; regs[dst] = b2i(imm <= regs[r]); return 0 }
		}
		return func(m *machine, regs []int64) int { regs[cd] = imm; regs[dst] = b2i(regs[r] <= imm); return 0 }
	case ir.Gt:
		if immOnA {
			return func(m *machine, regs []int64) int { regs[cd] = imm; regs[dst] = b2i(imm > regs[r]); return 0 }
		}
		return func(m *machine, regs []int64) int { regs[cd] = imm; regs[dst] = b2i(regs[r] > imm); return 0 }
	case ir.Ge:
		if immOnA {
			return func(m *machine, regs []int64) int { regs[cd] = imm; regs[dst] = b2i(imm >= regs[r]); return 0 }
		}
		return func(m *machine, regs []int64) int { regs[cd] = imm; regs[dst] = b2i(regs[r] >= imm); return 0 }
	case ir.Ult:
		if immOnA {
			return func(m *machine, regs []int64) int {
				regs[cd] = imm
				regs[dst] = b2i(uint64(imm) < uint64(regs[r]))
				return 0
			}
		}
		return func(m *machine, regs []int64) int {
			regs[cd] = imm
			regs[dst] = b2i(uint64(regs[r]) < uint64(imm))
			return 0
		}
	case ir.Ule:
		if immOnA {
			return func(m *machine, regs []int64) int {
				regs[cd] = imm
				regs[dst] = b2i(uint64(imm) <= uint64(regs[r]))
				return 0
			}
		}
		return func(m *machine, regs []int64) int {
			regs[cd] = imm
			regs[dst] = b2i(uint64(regs[r]) <= uint64(imm))
			return 0
		}
	case ir.Ugt:
		if immOnA {
			return func(m *machine, regs []int64) int {
				regs[cd] = imm
				regs[dst] = b2i(uint64(imm) > uint64(regs[r]))
				return 0
			}
		}
		return func(m *machine, regs []int64) int {
			regs[cd] = imm
			regs[dst] = b2i(uint64(regs[r]) > uint64(imm))
			return 0
		}
	case ir.Uge:
		if immOnA {
			return func(m *machine, regs []int64) int {
				regs[cd] = imm
				regs[dst] = b2i(uint64(imm) >= uint64(regs[r]))
				return 0
			}
		}
		return func(m *machine, regs []int64) int {
			regs[cd] = imm
			regs[dst] = b2i(uint64(regs[r]) >= uint64(imm))
			return 0
		}
	}
	return func(m *machine, regs []int64) int {
		regs[cd] = imm
		return m.fault(vm.FaultBadCall, b, 0, fmt.Sprintf("bad binop %d", uint8(b.Bin)))
	}
}

// emitLoadAnd fuses a load with the mask that consumes it (the field- and
// byte-extraction idiom the parsers use). The load's destination is still
// written; a fault in the load sets adj=1 (only the load was "executed"
// in interpreter terms).
func emitLoadAnd(p *program, ld, b *ir.Instr) op {
	ldst, la, limm, size := ld.Dst, ld.A, ld.Imm, ld.Size
	usize := uint64(size)
	dst := b.Dst
	other := b.A
	if other == ldst {
		other = b.B
	}
	selfMask := b.A == ldst && b.B == ldst // x & x == x
	slot := p.newSite()
	return func(m *machine, regs []int64) int {
		addr := uint64(regs[la] + limm)
		c := &m.acc[slot]
		if !m.accOK(c, addr, addr+usize) {
			if flt := m.v.EngineCheckAccessCached(c, addr, size, false, ld); flt != nil {
				m.err = flt
				m.adj = 1
				return errPC
			}
		}
		u, err := m.loadU(addr, size)
		if err != nil {
			m.adj = 1
			return m.fault(vm.FaultWild, ld, addr, err.Error())
		}
		val := int64(u)
		regs[ldst] = val
		if selfMask {
			regs[dst] = val
		} else {
			regs[dst] = val & regs[other]
		}
		return 0
	}
}

// emitSanAccess fuses an OpSanCheck with the access it guards. Both
// semantic actions run unchanged (shadow consultation, then the access's
// own classification check); a shadow fault sets adj=1 because only the
// sancheck counts as executed. Budget compensation for the sancheck is in
// the run's net debit.
func emitSanAccess(p *program, sc, acc *ir.Instr) op {
	sa, simm := sc.A, sc.Imm
	slot := p.newSite()
	if acc.Op == ir.OpLoad {
		dst, a, imm, size := acc.Dst, acc.A, acc.Imm, acc.Size
		usize := uint64(size)
		return func(m *machine, regs []int64) int {
			saddr := uint64(regs[sa] + simm)
			if flt := m.v.EngineSanCheck(saddr, sc); flt != nil {
				m.err = flt
				m.adj = 1
				return errPC
			}
			addr := uint64(regs[a] + imm)
			c := &m.acc[slot]
			if !m.accOK(c, addr, addr+usize) {
				if flt := m.v.EngineCheckAccessCached(c, addr, size, false, acc); flt != nil {
					m.err = flt
					return errPC
				}
			}
			u, err := m.loadU(addr, size)
			if err != nil {
				return m.fault(vm.FaultWild, acc, addr, err.Error())
			}
			regs[dst] = int64(u)
			return 0
		}
	}
	a, b, imm, size := acc.A, acc.B, acc.Imm, acc.Size
	usize := uint64(size)
	return func(m *machine, regs []int64) int {
		saddr := uint64(regs[sa] + simm)
		if flt := m.v.EngineSanCheck(saddr, sc); flt != nil {
			m.err = flt
			m.adj = 1
			return errPC
		}
		addr := uint64(regs[a] + imm)
		c := &m.acc[slot]
		if !m.accOK(c, addr, addr+usize) {
			if flt := m.v.EngineCheckAccessCached(c, addr, size, true, acc); flt != nil {
				m.err = flt
				return errPC
			}
		}
		if err := m.storeU(addr, uint64(regs[b]), size); err != nil {
			return m.fault(vm.FaultOOM, acc, addr, err.Error())
		}
		return 0
	}
}

// emitCall resolves the callee at compile time: a direct compiled-function
// pointer, a builtin slot, or (for names resolvable by neither — kept for
// interpreter parity) a runtime bad-call fault. The caller's coverage
// context (prevLoc) is saved around the call exactly as the interpreter
// does, keeping coverage call-transparent.
func emitCall(p *program, in *ir.Instr, next int, ec *ElemCert) op {
	argRegs := in.Args
	dst := in.Dst
	nArgs := len(argRegs)

	ec.Next = next
	if f := p.mod.Func(in.Callee); f != nil {
		callee := p.byFn[f]
		ec.Callee, ec.CalleeIdx = CalleeFunc, p.mod.FuncIndex(in.Callee)
		return func(m *machine, regs []int64) int {
			args := m.stageArgs(nArgs)
			for i, a := range argRegs {
				args[i] = regs[a]
			}
			saved := *m.prevLoc
			r, err := m.execFn(callee, args)
			if err != nil {
				m.err = err
				return errPC
			}
			*m.prevLoc = saved
			regs[dst] = r
			return next
		}
	}
	if slot := vm.BuiltinIndex(in.Callee); slot >= 0 {
		ec.Callee, ec.CalleeIdx = CalleeBuiltin, slot
		return func(m *machine, regs []int64) int {
			args := m.stageArgs(nArgs)
			for i, a := range argRegs {
				args[i] = regs[a]
			}
			saved := *m.prevLoc
			r, err := m.v.CallBuiltinIndexed(slot, in, args)
			if err != nil {
				m.err = err
				return errPC
			}
			*m.prevLoc = saved
			regs[dst] = r
			return next
		}
	}
	ec.Callee, ec.CalleeIdx = CalleeUnknown, -1
	return func(m *machine, regs []int64) int {
		return m.fault(vm.FaultBadCall, in, 0, "unknown callee "+in.Callee)
	}
}
