package compile_test

import (
	"testing"

	"closurex/internal/ir"
	"closurex/internal/passes"
	"closurex/internal/targets"
	"closurex/internal/vm"
)

// buildBench compiles one target for benchmarking (no testing.T).
func buildBench(b *testing.B, name string) *ir.Module {
	b.Helper()
	tg := targets.Get(name)
	if tg == nil {
		b.Fatalf("unknown target %q", name)
	}
	m, err := buildModule(tg, false)
	if err != nil {
		b.Fatal(err)
	}
	return m
}

func benchBackend(b *testing.B, target, backend string) {
	m := buildBench(b, target)
	tg := targets.Get(target)
	cov := make([]byte, mapSize)
	v, err := vm.New(m, vm.Options{CovMap: cov, DeterministicRand: true, RandSeed: 1, Backend: backend})
	if err != nil {
		b.Fatal(err)
	}
	in := tg.Seeds()[0]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		v.SetInput(in)
		v.Call(passes.TargetMain)
	}
}

func BenchmarkGpmfInterp(b *testing.B)     { benchBackend(b, "gpmf-parser", vm.InterpBackend) }
func BenchmarkGpmfCompiled(b *testing.B)   { benchBackend(b, "gpmf-parser", "compiled") }
func BenchmarkZlibInterp(b *testing.B)     { benchBackend(b, "zlib", vm.InterpBackend) }
func BenchmarkZlibCompiled(b *testing.B)   { benchBackend(b, "zlib", "compiled") }
func BenchmarkMd4cInterp(b *testing.B)     { benchBackend(b, "md4c", vm.InterpBackend) }
func BenchmarkMd4cCompiled(b *testing.B)   { benchBackend(b, "md4c", "compiled") }
func BenchmarkBsdtarInterp(b *testing.B)   { benchBackend(b, "bsdtar", vm.InterpBackend) }
func BenchmarkBsdtarCompiled(b *testing.B) { benchBackend(b, "bsdtar", "compiled") }
