package compile

import (
	"fmt"

	"closurex/internal/ir"
	"closurex/internal/mem"
	"closurex/internal/vm"
)

// machine is the per-VM mutable execution state of the compiled tier. The
// hot accounting cells (budget, instruction count, coverage chain, stack
// frontier, call depth) live in the VM itself — the machine holds direct
// pointers into them via the engine bridge, so the compiled tier mutates
// exactly the state the interpreter would and every vm.VM observer
// (harness restore, sentinel, fault reporting) keeps working unchanged.
type machine struct {
	v *vm.VM
	p *program

	budget   *int64
	instrs   *int64
	prevLoc  *uint64
	pathHash *uint64
	pathLen  *int
	sp       *uint64
	depth    *int
	maxDepth int
	curFn    **ir.Func

	cov   []byte // rebound per execution (SetCovMap may swap maps)
	trace bool
	// cov16 is cov viewed as a full-size AFL bitmap when it is at least
	// 64 KiB (the fuzzer's map always is): indexing it with a
	// covMask-truncated value needs no bounds check. nil for short maps;
	// probes then fall back to the slice.
	cov16 *[covMapSize]byte

	// mem caches v.Mem; tlb is the per-machine page-translation cache the
	// load/store closures consult before the page-table map, and acc holds
	// one AccessCache per compiled access site (indexed by the slot number
	// each closure captured). All three are per-VM: the compiled program
	// and its closures are shared across VMs and hold no mutable state.
	mem *mem.Memory
	tlb mem.TLB
	acc []vm.AccessCache

	// Per-activation state, saved/restored around direct calls.
	regs  []int64
	frame uint64

	ret int64 // return value when an op returns retPC
	err error // fault or exit unwind when an op returns errPC
	// adj corrects the pre-debited instruction count when a fused pair
	// faults at its FIRST element: the fast path charges the whole pair up
	// front, but the interpreter would only have counted the first.
	adj int64

	// regPool / argPool mirror the interpreter's per-depth frame reuse, so
	// steady-state compiled execution is allocation-free.
	regPool [][]int64
	argPool [][]int64
}

// engine adapts a compiled program to the vm.Engine interface.
type engine struct {
	v *vm.VM
	p *program
	m machine
}

func newEngine(v *vm.VM, p *program) *engine {
	e := &engine{v: v, p: p}
	h := v.Hooks()
	e.m = machine{
		v:        v,
		p:        p,
		budget:   h.Budget,
		instrs:   h.Instrs,
		prevLoc:  h.PrevLoc,
		pathHash: h.PathHash,
		pathLen:  h.PathLen,
		sp:       h.SP,
		depth:    h.Depth,
		maxDepth: h.MaxDepth,
		curFn:    h.CurFn,
	}
	return e
}

// Exec implements vm.Engine. Called by vm.Call after the per-execution
// state reset.
func (e *engine) Exec(f *ir.Func, args []int64) (int64, error) {
	cf := e.p.byFn[f]
	if cf == nil {
		// A function added to the module after compilation — unsupported
		// for the compiled tier (modules are committed before execution).
		return 0, fmt.Errorf("compile: function %s not in compiled program", f.Name)
	}
	m := &e.m
	m.cov = e.v.EngineCov()
	if len(m.cov) >= covMapSize {
		m.cov16 = (*[covMapSize]byte)(m.cov[:covMapSize])
	} else {
		m.cov16 = nil
	}
	m.trace = e.v.EngineTrace()
	m.mem = e.v.Mem
	if len(m.acc) < e.p.nSites {
		m.acc = make([]vm.AccessCache, e.p.nSites)
	}
	return m.execFn(cf, args)
}

// execFn runs one function activation. It mirrors the interpreter's
// execFunc exactly: same depth/frame overflow checks and fault texts, same
// frame zeroing, same register pooling — then drives the closure chain
// run by run, debiting the instruction budget per straight-line run on the
// fast path and falling back to the exact mini-interpreter when the
// remaining budget could hit zero mid-run.
func (m *machine) execFn(f *cfn, args []int64) (int64, error) {
	irf := f.irFn
	if *m.depth >= m.maxDepth {
		return 0, &vm.Fault{Kind: vm.FaultStackOverflow, Fn: irf.Name, Msg: "call depth"}
	}
	frame := *m.sp
	if frame+uint64(irf.FrameSize) > vm.StackEnd {
		return 0, &vm.Fault{Kind: vm.FaultStackOverflow, Fn: irf.Name, Msg: "frame area"}
	}
	*m.depth++
	savedFn := *m.curFn
	*m.curFn = irf
	*m.sp = frame + uint64(irf.FrameSize)
	if irf.FrameSize > 0 {
		if err := m.zeroRange(frame, int(irf.FrameSize)); err != nil {
			*m.depth--
			*m.curFn = savedFn
			*m.sp = frame
			return 0, &vm.Fault{Kind: vm.FaultOOM, Fn: irf.Name, Msg: err.Error()}
		}
	}

	d := *m.depth
	for len(m.regPool) <= d {
		m.regPool = append(m.regPool, nil)
	}
	regs := m.regPool[d-1]
	if cap(regs) < irf.NumRegs {
		regs = make([]int64, irf.NumRegs+16)
		m.regPool[d-1] = regs
	}
	regs = regs[:irf.NumRegs]
	clear(regs)
	copy(regs, args)

	savedRegs, savedFrame := m.regs, m.frame
	m.regs, m.frame = regs, frame

	code := f.code
	pc := 0
	var ret int64
	var err error
loop:
	for {
		r := &f.runs[pc]
		if *m.budget > r.maxDip {
			// Fast path: no timeout can fire inside this run, so debit the
			// whole run in two ops. Pre-adding k means a mid-run fault must
			// subtract the not-executed tail (k − cum[i]) plus the fused
			// first-element correction.
			*m.instrs += r.k
			*m.budget -= r.net
			end := pc + int(r.n) - 1
			for i := pc; i < end; i++ {
				if code[i](m, regs) != 0 {
					*m.instrs -= r.k - int64(r.cum[i-pc]) + m.adj
					m.adj = 0
					err = m.err
					break loop
				}
			}
			npc := code[end](m, regs)
			if npc >= 0 {
				pc = npc
				continue
			}
			if npc == retPC {
				ret = m.ret
				break loop
			}
			// Fault at the run's last op: cum there equals k, so only the
			// fused first-element correction applies.
			*m.instrs -= m.adj
			m.adj = 0
			err = m.err
			break loop
		}
		// Slow path: within maxDip instructions of a hang verdict. The
		// mini-interpreter replays this run from the source instructions
		// with the interpreter's exact per-instruction accounting.
		npc := m.slowRun(f, pc)
		if npc >= 0 {
			pc = npc
			continue
		}
		if npc == retPC {
			ret = m.ret
		} else {
			err = m.err
		}
		break loop
	}

	m.regs, m.frame = savedRegs, savedFrame
	*m.sp = frame
	*m.depth--
	*m.curFn = savedFn
	return ret, err
}

// stageArgs returns the per-depth argument staging buffer, grown on
// demand — the interpreter's argPool discipline (the buffer is consumed
// before any same-depth reuse).
func (m *machine) stageArgs(n int) []int64 {
	d := *m.depth
	for len(m.argPool) <= d {
		m.argPool = append(m.argPool, nil)
	}
	args := m.argPool[d]
	if cap(args) < n {
		args = make([]int64, n)
		m.argPool[d] = args
	}
	return args[:n]
}

// fault records a fault (constructed with the interpreter's fault helper,
// so function attribution and line numbers match) and returns errPC.
func (m *machine) fault(kind vm.FaultKind, in *ir.Instr, addr uint64, msg string) int {
	m.err = m.v.NewFault(kind, in, addr, msg)
	return errPC
}
