package compile

import "closurex/internal/ir"

// This file defines the translation certificate the compiler emits while
// lowering a module. The certificate restates, in checkable form, every
// decision the lowering made that a closure then bakes in as a captured
// constant: which source instructions each pc covers and under which
// fusion pattern, where every branch target resolved, which callee each
// call bound, which derived constants were folded, which intermediate
// register writes were elided as dead, and the per-run budget tables the
// dispatcher debits from. internal/analysis/transval re-derives each
// claim independently from the ir.Module and refuses certification on any
// mismatch — making the compiled tier's correctness a static proof
// obligation instead of a property only the differential suites witness.
//
// Trust boundary: values a closure captures verbatim from the named
// source instruction (plain immediates of unfused OpConst, register
// numbers, coverage probe locations, access sizes) are not re-stated —
// the certificate names the source span and the checker reads those
// operands from the IR itself. Only derived values (resolved pcs, folded
// addresses, pre-masked shift amounts, degenerate-divisor selections,
// fused immediates, callee indices, budget tables) appear, because those
// are the places a lowering bug can hide.

// CertKind tags what one compiled pc covers: a single source instruction,
// one of the fusion patterns, or the synthetic fell-off-block-end op.
// The values mirror the compiler's internal elemKind one for one.
type CertKind uint8

// Certificate element kinds.
const (
	CKSingle     CertKind = iota // one source instruction
	CKCmpBr                      // OpBin(Eq..Uge) + OpCondBr on its result
	CKConstBin                   // OpConst + OpBin consuming it
	CKLoadAnd                    // OpLoad + OpBin(And) masking it
	CKSanAccess                  // OpSanCheck + the load/store it guards
	CKAddrLoad                   // OpFrameAddr/OpGlobalAddr + OpLoad through it
	CKAddrStore                  // OpFrameAddr/OpGlobalAddr + OpStore through it
	CKConstStore                 // OpConst + OpStore consuming it
	CKCovX                       // OpCov + the following single instruction
	CKCovPair                    // OpCov + a fused pair (Sub holds the pair kind)
	CKFellOff                    // synthetic unreachable-fault op; covers 0 instructions
)

func (k CertKind) String() string {
	switch k {
	case CKSingle:
		return "single"
	case CKCmpBr:
		return "cmp+br"
	case CKConstBin:
		return "const+bin"
	case CKLoadAnd:
		return "load+and"
	case CKSanAccess:
		return "san+access"
	case CKAddrLoad:
		return "addr+load"
	case CKAddrStore:
		return "addr+store"
	case CKConstStore:
		return "const+store"
	case CKCovX:
		return "cov+single"
	case CKCovPair:
		return "cov+pair"
	case CKFellOff:
		return "fell-off"
	}
	return "kind?"
}

// CalleeKind classifies how a call closure bound its callee.
type CalleeKind uint8

// Callee binding kinds.
const (
	CalleeNone    CalleeKind = iota // element is not a call
	CalleeFunc                      // direct module function (CalleeIdx = Funcs index)
	CalleeBuiltin                   // builtin slot (CalleeIdx = vm.BuiltinIndex slot)
	CalleeUnknown                   // unresolvable name: runtime bad-call fault
)

// FoldKind classifies a compile-time-derived constant a closure captured.
type FoldKind uint8

// Fold kinds.
const (
	FoldGlobalAddr FoldKind = iota // global index -> absolute layout address
	FoldAbsAddr                    // folded absolute effective address (global base + access offset)
	FoldShiftMask                  // const-on-B shift amount pre-masked to &63
	FoldDivZero                    // constant zero divisor: compile-time div-by-zero selection
	FoldDivNegOne                  // constant −1 divisor: compile-time negate/zero selection
	FoldImm                        // immediate fused into another instruction's operand
)

func (k FoldKind) String() string {
	switch k {
	case FoldGlobalAddr:
		return "global-addr"
	case FoldAbsAddr:
		return "abs-addr"
	case FoldShiftMask:
		return "shift-mask"
	case FoldDivZero:
		return "div-zero"
	case FoldDivNegOne:
		return "div-neg1"
	case FoldImm:
		return "imm"
	}
	return "fold?"
}

// Fold records one derived constant: the IR operand it was computed from
// and the value the closure captured.
type Fold struct {
	Kind FoldKind
	Arg  int64 // source operand (global index, raw immediate)
	Val  int64 // captured constant
}

// ElemCert describes one compiled pc.
type ElemCert struct {
	Kind CertKind
	Sub  CertKind // CKCovPair: the embedded pair's kind
	Bi   int      // source block of the first covered instruction
	Ii   int      // index of the first covered instruction within its block
	N    int      // source instructions covered (0 for CKFellOff)

	// Targets holds resolved branch-target pcs in IR Targets order; empty
	// for non-branch elements.
	Targets []int
	// Next is the continuation pc after a call; -1 for non-calls.
	Next int
	// Callee / CalleeIdx record the call binding: the Funcs index for
	// CalleeFunc, the builtin slot for CalleeBuiltin, -1 otherwise.
	Callee    CalleeKind
	CalleeIdx int
	// Folds lists derived constants in the order the closure captures them.
	Folds []Fold
	// InterElided claims the fused pair's intermediate register write was
	// omitted because InterReg is provably dead after the pair; the checker
	// proves the claim with its own liveness instance.
	InterElided bool
	InterReg    int
}

// RunCert restates one straight-line run's budget table (see runMeta).
type RunCert struct {
	Head   int // run-head pc
	K      int64
	Net    int64
	MaxDip int64
	N      int32
	SrcBi  int32
	SrcIi  int32
	Cum    []int32
}

// FuncCert is the certificate for one lowered function.
type FuncCert struct {
	Name       string
	BlockStart []int // block index -> pc of its first element
	NumPCs     int
	Elems      []ElemCert // one per pc
	Runs       []RunCert  // in ascending head-pc order
}

// Certificate is the whole-module translation certificate.
type Certificate struct {
	Module string
	Funcs  []*FuncCert // parallel to Module.Funcs
}

// CertFor compiles the module (cached, like backend execution) and returns
// its certificate. The certificate is shared with the cached program:
// callers corrupting one for seeded-defect testing must Clone first.
func CertFor(mod *ir.Module) (*Certificate, error) {
	p, err := programFor(mod)
	if err != nil {
		return nil, err
	}
	return p.cert, nil
}

// Clone deep-copies the certificate so tests can corrupt the copy without
// poisoning the program cache's shared instance.
func (c *Certificate) Clone() *Certificate {
	nc := &Certificate{Module: c.Module, Funcs: make([]*FuncCert, len(c.Funcs))}
	for i, fc := range c.Funcs {
		nf := &FuncCert{
			Name:       fc.Name,
			BlockStart: append([]int(nil), fc.BlockStart...),
			NumPCs:     fc.NumPCs,
			Elems:      append([]ElemCert(nil), fc.Elems...),
			Runs:       append([]RunCert(nil), fc.Runs...),
		}
		for j := range nf.Elems {
			nf.Elems[j].Targets = append([]int(nil), fc.Elems[j].Targets...)
			nf.Elems[j].Folds = append([]Fold(nil), fc.Elems[j].Folds...)
		}
		for j := range nf.Runs {
			nf.Runs[j].Cum = append([]int32(nil), fc.Runs[j].Cum...)
		}
		nc.Funcs[i] = nf
	}
	return nc
}

// certKind converts the compiler's internal tag to the exported one.
func certKind(k elemKind) CertKind {
	return CertKind(k)
}
