package vm

import (
	"strings"
	"testing"

	"closurex/internal/ir"
	"closurex/internal/vfs"
)

// cstring places a NUL-terminated constant in a rodata global and returns
// its index.
func cstring(m *ir.Module, name, s string) int {
	return m.AddGlobal(&ir.Global{
		Name: name, Size: int64(len(s) + 1), Init: append([]byte(s), 0),
		Const: true, Section: ir.SectionRodata,
	})
}

func TestFopenFreadLifecycle(t *testing.T) {
	m := ir.NewModule("t")
	pathIdx := cstring(m, ".str.path", vfs.InputPath)
	modeIdx := cstring(m, ".str.mode", "r")
	b := ir.NewBuilder("readbyte", 0)
	fd := b.Call("fopen", b.GlobalAddr(pathIdx), b.GlobalAddr(modeIdx))
	buf := b.FrameAddr(b.Alloca(16))
	n := b.Call("fread", buf, b.Const(1), b.Const(16), fd)
	_ = b.Call("fclose", fd)
	first := b.Load(buf, 0, 1)
	b.Ret(b.Bin(ir.Add, b.Bin(ir.Mul, n, b.Const(1000)), first))
	_ = m.AddFunc(b.F)
	if err := ir.Verify(m, Builtins()); err != nil {
		t.Fatal(err)
	}
	v, err := New(m, Options{Files: map[string][]byte{vfs.InputPath: []byte("Zebra")}})
	if err != nil {
		t.Fatal(err)
	}
	res := v.Call("readbyte")
	if res.Fault != nil {
		t.Fatalf("fault: %v", res.Fault)
	}
	if res.Ret != 5*1000+'Z' {
		t.Fatalf("ret = %d, want %d", res.Ret, 5*1000+'Z')
	}
	if v.FS.OpenCount() != 0 {
		t.Fatalf("descriptor leaked: %d", v.FS.OpenCount())
	}
}

func TestFopenMissingReturnsNull(t *testing.T) {
	m := ir.NewModule("t")
	pathIdx := cstring(m, ".str", "/does-not-exist")
	modeIdx := cstring(m, ".mode", "r")
	b := ir.NewBuilder("f", 0)
	b.Ret(b.Call("fopen", b.GlobalAddr(pathIdx), b.GlobalAddr(modeIdx)))
	_ = m.AddFunc(b.F)
	v, _ := New(m, Options{})
	if res := v.Call("f"); res.Ret != 0 || res.Fault != nil {
		t.Fatalf("fopen missing = %d, fault %v; want NULL", res.Ret, res.Fault)
	}
}

func TestDoubleFcloseFaults(t *testing.T) {
	m := ir.NewModule("t")
	pathIdx := cstring(m, ".p", vfs.InputPath)
	modeIdx := cstring(m, ".m", "r")
	b := ir.NewBuilder("f", 0)
	fd := b.Call("fopen", b.GlobalAddr(pathIdx), b.GlobalAddr(modeIdx))
	_ = b.Call("fclose", fd)
	_ = b.Call("fclose", fd)
	b.Ret(-1)
	_ = m.AddFunc(b.F)
	v, _ := New(m, Options{Files: map[string][]byte{vfs.InputPath: []byte("x")}})
	res := v.Call("f")
	if res.Fault == nil || res.Fault.Kind != FaultBadFree {
		t.Fatalf("fault = %v, want BadFree (double fclose)", res.Fault)
	}
}

func TestFseekFtellFsizeFgetc(t *testing.T) {
	m := ir.NewModule("t")
	pathIdx := cstring(m, ".p", vfs.InputPath)
	modeIdx := cstring(m, ".m", "r")
	b := ir.NewBuilder("f", 0)
	fd := b.Call("fopen", b.GlobalAddr(pathIdx), b.GlobalAddr(modeIdx))
	sz := b.Call("fsize", fd)
	_ = b.Call("fseek", fd, b.Const(-1), b.Const(vfs.SeekEnd))
	last := b.Call("fgetc", fd)
	eof := b.Call("fgetc", fd)
	pos := b.Call("ftell", fd)
	// pack: sz*1e6 + last*1e3 + (eof<0)*100 + pos
	r := b.Bin(ir.Mul, sz, b.Const(1000000))
	r = b.Bin(ir.Add, r, b.Bin(ir.Mul, last, b.Const(1000)))
	isEOF := b.Bin(ir.Lt, eof, b.Const(0))
	r = b.Bin(ir.Add, r, b.Bin(ir.Mul, isEOF, b.Const(100)))
	r = b.Bin(ir.Add, r, pos)
	b.Ret(r)
	_ = m.AddFunc(b.F)
	v, _ := New(m, Options{Files: map[string][]byte{vfs.InputPath: []byte("abcd")}})
	res := v.Call("f")
	want := int64(4*1000000 + 'd'*1000 + 100 + 4)
	if res.Fault != nil || res.Ret != want {
		t.Fatalf("packed = %d (fault %v), want %d", res.Ret, res.Fault, want)
	}
}

func TestStringBuiltins(t *testing.T) {
	m := ir.NewModule("t")
	aIdx := cstring(m, ".a", "hello")
	bIdx := cstring(m, ".b", "help")
	b := ir.NewBuilder("f", 0)
	la := b.Call("strlen", b.GlobalAddr(aIdx))
	cmp := b.Call("strcmp", b.GlobalAddr(aIdx), b.GlobalAddr(bIdx))
	ncmp := b.Call("strncmp", b.GlobalAddr(aIdx), b.GlobalAddr(bIdx), b.Const(3))
	dst := b.Call("malloc", b.Const(16))
	_ = b.Call("strcpy", dst, b.GlobalAddr(aIdx))
	copied := b.Call("strlen", dst)
	// pack: la*1000 + (cmp<0)*100 + (ncmp==0)*10 + (copied==5)
	r := b.Bin(ir.Mul, la, b.Const(1000))
	r = b.Bin(ir.Add, r, b.Bin(ir.Mul, b.Bin(ir.Lt, cmp, b.Const(0)), b.Const(100)))
	r = b.Bin(ir.Add, r, b.Bin(ir.Mul, b.Bin(ir.Eq, ncmp, b.Const(0)), b.Const(10)))
	r = b.Bin(ir.Add, r, b.Bin(ir.Eq, copied, b.Const(5)))
	b.Ret(r)
	_ = m.AddFunc(b.F)
	v, _ := New(m, Options{})
	res := v.Call("f")
	if res.Fault != nil || res.Ret != 5111 {
		t.Fatalf("packed = %d (fault %v), want 5111", res.Ret, res.Fault)
	}
}

func TestMemcpyMemsetMemcmp(t *testing.T) {
	m := ir.NewModule("t")
	b := ir.NewBuilder("f", 0)
	p := b.Call("malloc", b.Const(8))
	q := b.Call("malloc", b.Const(8))
	_ = b.Call("memset", p, b.Const(0x41), b.Const(8))
	_ = b.Call("memcpy", q, p, b.Const(8))
	eq := b.Call("memcmp", p, q, b.Const(8))
	b.Store(q, b.Const(0x42), 7, 1)
	ne := b.Call("memcmp", p, q, b.Const(8))
	r := b.Bin(ir.Mul, b.Bin(ir.Eq, eq, b.Const(0)), b.Const(10))
	r = b.Bin(ir.Add, r, b.Bin(ir.Lt, ne, b.Const(0)))
	b.Ret(r)
	_ = m.AddFunc(b.F)
	v, _ := New(m, Options{})
	res := v.Call("f")
	if res.Fault != nil || res.Ret != 11 {
		t.Fatalf("packed = %d (fault %v), want 11", res.Ret, res.Fault)
	}
}

func TestMemcpyOOBDetected(t *testing.T) {
	m := ir.NewModule("t")
	b := ir.NewBuilder("f", 0)
	p := b.Call("malloc", b.Const(8))
	q := b.Call("malloc", b.Const(4))
	_ = b.Call("memcpy", q, p, b.Const(8)) // dst too small
	b.Ret(-1)
	_ = m.AddFunc(b.F)
	v, _ := New(m, Options{})
	res := v.Call("f")
	if res.Fault == nil || res.Fault.Kind != FaultHeapOOB {
		t.Fatalf("fault = %v, want HeapOOB", res.Fault)
	}
}

func TestStdoutCapture(t *testing.T) {
	m := ir.NewModule("t")
	sIdx := cstring(m, ".s", "gif89a")
	b := ir.NewBuilder("f", 0)
	_ = b.Call("puts", b.GlobalAddr(sIdx))
	_ = b.Call("print_int", b.Const(-42))
	_ = b.Call("putchar", b.Const('!'))
	b.Ret(-1)
	_ = m.AddFunc(b.F)
	v, _ := New(m, Options{})
	res := v.Call("f")
	if res.Fault != nil {
		t.Fatal(res.Fault)
	}
	if got := string(v.Stdout); got != "gif89a\n-42!" {
		t.Fatalf("stdout = %q", got)
	}
}

func TestMallocHugeReturnsNull(t *testing.T) {
	m := ir.NewModule("t")
	b := ir.NewBuilder("f", 0)
	b.Ret(b.Call("malloc", b.Const(1<<40)))
	_ = m.AddFunc(b.F)
	v, _ := New(m, Options{})
	if res := v.Call("f"); res.Ret != 0 || res.Fault != nil {
		t.Fatalf("huge malloc = %d, fault %v; want NULL", res.Ret, res.Fault)
	}
	// Negative size too.
	b2 := ir.NewBuilder("g", 0)
	b2.Ret(b2.Call("malloc", b2.Const(-1)))
	_ = m.AddFunc(b2.F)
	v2, _ := New(m, Options{})
	if res := v2.Call("g"); res.Ret != 0 {
		t.Fatalf("malloc(-1) = %d, want NULL", res.Ret)
	}
}

func TestCallocZeroesAndGuards(t *testing.T) {
	m := ir.NewModule("t")
	b := ir.NewBuilder("f", 0)
	p := b.Call("calloc", b.Const(4), b.Const(8))
	b.Ret(b.Load(p, 24, 8))
	_ = m.AddFunc(b.F)
	v, _ := New(m, Options{})
	if res := v.Call("f"); res.Fault != nil || res.Ret != 0 {
		t.Fatalf("calloc read = %d, fault %v", res.Ret, res.Fault)
	}
	// Overflowing n*size returns NULL.
	b2 := ir.NewBuilder("g", 0)
	b2.Ret(b2.Call("calloc", b2.Const(1<<32), b2.Const(1<<32)))
	_ = m.AddFunc(b2.F)
	v2, _ := New(m, Options{})
	if res := v2.Call("g"); res.Ret != 0 {
		t.Fatalf("overflowing calloc = %d, want NULL", res.Ret)
	}
}

func TestAssertBuiltin(t *testing.T) {
	m := ir.NewModule("t")
	b := ir.NewBuilder("f", 1)
	_ = b.Call("assert", 0)
	b.Ret(b.Const(1))
	_ = m.AddFunc(b.F)
	v, _ := New(m, Options{})
	if res := v.Call("f", 1); res.Fault != nil {
		t.Fatalf("assert(1) faulted: %v", res.Fault)
	}
	if res := v.Call("f", 0); res.Fault == nil || res.Fault.Kind != FaultAbort {
		t.Fatalf("assert(0) fault = %v, want Abort", res.Fault)
	}
}

func TestFDExhaustionThenAbortPattern(t *testing.T) {
	// Model of the false-crash pathology: target opens without closing;
	// under a tiny FD limit fopen eventually returns NULL and the target
	// aborts.
	m := ir.NewModule("t")
	pIdx := cstring(m, ".p", vfs.InputPath)
	mIdx := cstring(m, ".m", "r")
	b := ir.NewBuilder("leaky", 0)
	fd := b.Call("fopen", b.GlobalAddr(pIdx), b.GlobalAddr(mIdx))
	ok := b.NewBlock()
	bad := b.NewBlock()
	b.CondBr(fd, ok, bad)
	b.SetBlock(bad)
	_ = b.Call("abort")
	b.Unreachable()
	b.SetBlock(ok)
	b.Ret(fd)
	_ = m.AddFunc(b.F)
	v, _ := New(m, Options{Files: map[string][]byte{vfs.InputPath: []byte("x")}, FDLimit: 4})
	var crashed bool
	for i := 0; i < 10; i++ {
		res := v.Call("leaky")
		if res.Crashed() {
			if res.Fault.Kind != FaultAbort {
				t.Fatalf("iteration %d: fault %v, want Abort", i, res.Fault)
			}
			if i != 4 {
				t.Fatalf("crashed at iteration %d, want 4 (limit)", i)
			}
			crashed = true
			break
		}
	}
	if !crashed {
		t.Fatal("FD exhaustion never manifested")
	}
}

func TestBuiltinsRegistryConsistency(t *testing.T) {
	names := Builtins()
	for _, required := range []string{"malloc", "free", "exit", "fopen", "fclose",
		"closurex_malloc", "closurex_free", "closurex_exit", "closurex_fopen", "closurex_fclose"} {
		if !names[required] {
			t.Errorf("builtin %q missing", required)
		}
	}
	if !IsBuiltin("memcpy") || IsBuiltin("not_a_builtin") {
		t.Fatal("IsBuiltin misbehaves")
	}
}

func TestStrlenUnterminatedHitsSanitizer(t *testing.T) {
	// strlen walking a chunk with no NUL must fault at the chunk end, not
	// run forever.
	m := ir.NewModule("t")
	b := ir.NewBuilder("f", 0)
	p := b.Call("malloc", b.Const(8))
	_ = b.Call("memset", p, b.Const('A'), b.Const(8))
	b.Ret(b.Call("strlen", p))
	_ = m.AddFunc(b.F)
	v, _ := New(m, Options{})
	res := v.Call("f")
	if res.Fault == nil || res.Fault.Kind != FaultHeapOOB {
		t.Fatalf("fault = %v, want HeapOOB", res.Fault)
	}
	if !strings.Contains(res.Fault.Error(), "heap") {
		t.Fatalf("fault message: %v", res.Fault)
	}
}
