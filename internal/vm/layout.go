package vm

import (
	"fmt"
	"strings"

	"closurex/internal/ir"
)

// Address-space map. Segments are deliberately far apart so the sanitizer
// can classify any address by range.
const (
	// GlobalsBase is where the first section is placed (above the null
	// page with slack, like a non-PIE text/data segment).
	GlobalsBase uint64 = 0x0001_0000
	// TextBase is where the simulated program image (text + static data
	// resident pages, sized like Table 4's executables) is materialized.
	// Fresh-process execution re-materializes it per test case; a
	// forkserver copies its page-table entries per fork; ClosureX never
	// touches it between test cases — which is precisely the
	// test-case-invariant state the paper's insight is about.
	TextBase uint64 = 0x0200_0000
	// HeapBase / HeapEnd bound the malloc arena (32 MiB).
	HeapBase uint64 = 0x0400_0000
	HeapEnd  uint64 = 0x0600_0000
	// StackBase / StackEnd bound the frame area for addressable locals
	// (8 MiB, matching a default ulimit -s).
	StackBase uint64 = 0x0800_0000
	StackEnd  uint64 = 0x0880_0000
)

// Section is one contiguous region of the globals image, named after its
// linker section. The ClosureX harness locates closure_global_section
// through this table — the stand-in for parsing the ELF with readelf.
type Section struct {
	Name string
	Addr uint64
	Size uint64
}

// Layout is the loaded image of a module's globals: every global gets an
// address, grouped by section.
type Layout struct {
	Sections   []Section
	GlobalAddr []uint64 // indexed like Module.Globals
	End        uint64   // first address past the globals image
}

// sectionRank fixes the on-image order: read-only data first, then plain
// data, then the ClosureX section, then anything else in name order.
func sectionRank(name string) int {
	switch name {
	case ir.SectionRodata:
		return 0
	case ir.SectionData:
		return 1
	case ir.SectionClosure:
		return 2
	}
	return 3
}

// NewLayout assigns addresses to every global in m. Globals keep their
// relative order within a section; each global is aligned to 8 bytes and
// sections to 16.
func NewLayout(m *ir.Module) *Layout {
	l := &Layout{GlobalAddr: make([]uint64, len(m.Globals))}

	names := make([]string, 0, 4)
	seen := map[string]bool{}
	for _, g := range m.Globals {
		if !seen[g.Section] {
			seen[g.Section] = true
			names = append(names, g.Section)
		}
	}
	// Stable order: by rank, then name.
	for i := 1; i < len(names); i++ {
		for j := i; j > 0; j-- {
			a, b := names[j-1], names[j]
			if sectionRank(a) > sectionRank(b) ||
				(sectionRank(a) == sectionRank(b) && strings.Compare(a, b) > 0) {
				names[j-1], names[j] = b, a
			} else {
				break
			}
		}
	}

	addr := GlobalsBase
	for _, sec := range names {
		addr = (addr + 15) &^ 15
		start := addr
		for gi, g := range m.Globals {
			if g.Section != sec {
				continue
			}
			addr = (addr + 7) &^ 7
			l.GlobalAddr[gi] = addr
			addr += uint64(g.Size)
		}
		l.Sections = append(l.Sections, Section{Name: sec, Addr: start, Size: addr - start})
	}
	l.End = (addr + 15) &^ 15
	return l
}

// Section returns the named section.
func (l *Layout) Section(name string) (Section, bool) {
	for _, s := range l.Sections {
		if s.Name == name {
			return s, true
		}
	}
	return Section{}, false
}

// InRodata reports whether [addr, addr+n) intersects a read-only section.
func (l *Layout) InRodata(addr uint64, n int) bool {
	for _, s := range l.Sections {
		if s.Name != ir.SectionRodata {
			continue
		}
		if addr < s.Addr+s.Size && s.Addr < addr+uint64(n) {
			return true
		}
	}
	return false
}

// WritableWindow returns the maximal [lo, hi) interval of the globals
// segment containing addr that a store may touch: bounded below by the
// end of the last read-only section at or before addr, and above by the
// start of the next read-only section or the layout end. addr must be a
// globals address outside every read-only section (i.e. a store to it
// already passed the rodata check).
func (l *Layout) WritableWindow(addr uint64) (uint64, uint64) {
	lo, hi := GlobalsBase, l.End
	for _, s := range l.Sections {
		if s.Name != ir.SectionRodata || s.Size == 0 {
			continue
		}
		if end := s.Addr + s.Size; end <= addr {
			if end > lo {
				lo = end
			}
		} else if s.Addr > addr {
			if s.Addr < hi {
				hi = s.Addr
			}
		}
	}
	return lo, hi
}

// String renders the section table (the closurex-cc -sections view used to
// reproduce Figure 3).
func (l *Layout) String() string {
	var sb strings.Builder
	for _, s := range l.Sections {
		fmt.Fprintf(&sb, "%-24s addr=%#08x size=%6d\n", s.Name, s.Addr, s.Size)
	}
	return sb.String()
}
