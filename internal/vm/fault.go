package vm

import "fmt"

// FaultKind classifies sanitizer reports. Crash triage deduplicates on
// (Kind, Fn, Line), mirroring how the paper buckets its discovered bugs
// ("Null Ptr Deref.", "Division by Zero", ...).
type FaultKind uint8

// Fault kinds. The names track Table 7's bug-type column.
const (
	FaultNone          FaultKind = iota
	FaultNullDeref               // access inside the null page
	FaultHeapOOB                 // unaddressable access / invalid read / invalid write
	FaultUseAfterFree            // access to a quarantined chunk
	FaultDoubleFree              // free of an already-freed chunk
	FaultBadFree                 // free of a non-chunk pointer
	FaultDivByZero               // integer division/remainder by zero
	FaultOOM                     // heap or page exhaustion
	FaultGlobalOOB               // access past the globals image
	FaultWriteRodata             // store into a read-only section
	FaultWild                    // access to an unmapped segment
	FaultStackOverflow           // call depth or frame exhaustion
	FaultNegativeSize            // memcpy/memset with negative size
	FaultAbort                   // abort() or failed assertion
	FaultUnreachable             // executed an unreachable instruction
	FaultTimeout                 // instruction budget exhausted (hang)
	FaultBadCall                 // call of an unknown function at run time
)

var faultNames = [...]string{
	FaultNone:          "none",
	FaultNullDeref:     "null-pointer-dereference",
	FaultHeapOOB:       "heap-out-of-bounds",
	FaultUseAfterFree:  "use-after-free",
	FaultDoubleFree:    "double-free",
	FaultBadFree:       "bad-free",
	FaultDivByZero:     "division-by-zero",
	FaultOOM:           "out-of-memory",
	FaultGlobalOOB:     "global-out-of-bounds",
	FaultWriteRodata:   "write-to-rodata",
	FaultWild:          "wild-access",
	FaultStackOverflow: "stack-overflow",
	FaultNegativeSize:  "negative-size",
	FaultAbort:         "abort",
	FaultUnreachable:   "unreachable-executed",
	FaultTimeout:       "timeout",
	FaultBadCall:       "bad-call",
}

func (k FaultKind) String() string {
	if int(k) < len(faultNames) {
		return faultNames[k]
	}
	return fmt.Sprintf("fault(%d)", uint8(k))
}

// Fault is a sanitizer report: what went wrong and where.
type Fault struct {
	Kind FaultKind
	Fn   string // function containing the faulting instruction
	Line int32  // source line of the faulting instruction
	Addr uint64 // faulting address, when applicable
	Msg  string // extra detail
	// San carries the structured shadow-memory report when the fault was
	// raised by an OpSanCheck (or an enriched allocator fault): the access
	// shape plus the offending chunk's allocation/free history.
	San *SanReport
}

// SanReport is the ASan-style payload of a shadow-check fault.
type SanReport struct {
	Write     bool   // the faulting access was a store
	Size      int    // access width in bytes
	Addr      uint64 // faulting address
	ChunkAddr uint64 // start of the related chunk (0 when no chunk matched)
	ChunkSize uint64
	AllocFn   string // where the chunk was allocated
	AllocLine int32
	FreeFn    string // where it was freed (use-after-free / double-free)
	FreeLine  int32
}

// rw renders the access direction.
func (r *SanReport) rw() string {
	if r.Write {
		return "write"
	}
	return "read"
}

// Error makes *Fault usable as an error through the interpreter unwind.
func (f *Fault) Error() string {
	s := fmt.Sprintf("%s in %s:%d", f.Kind, f.Fn, f.Line)
	if f.Addr != 0 {
		s += fmt.Sprintf(" addr=%#x", f.Addr)
	}
	if f.Msg != "" {
		s += " (" + f.Msg + ")"
	}
	if r := f.San; r != nil {
		s += fmt.Sprintf(" [%s of %d bytes", r.rw(), r.Size)
		if r.ChunkAddr != 0 {
			s += fmt.Sprintf(" at chunk+%d of a %d-byte chunk", r.Addr-r.ChunkAddr, r.ChunkSize)
		}
		if r.AllocFn != "" {
			s += fmt.Sprintf(", allocated at %s:%d", r.AllocFn, r.AllocLine)
		}
		if r.FreeFn != "" {
			s += fmt.Sprintf(", freed at %s:%d", r.FreeFn, r.FreeLine)
		}
		s += "]"
	}
	return s
}

// Key returns the triage bucket for this fault; two crashes with the same
// key are considered the same bug. Sanitizer reports carrying an
// allocation site fold it into the bucket, so overflows of chunks
// allocated at different sites triage as distinct bugs even when the
// faulting access shares an instruction.
func (f *Fault) Key() string {
	if f.San != nil && f.San.AllocFn != "" {
		return fmt.Sprintf("%s@%s:%d/alloc@%s:%d", f.Kind, f.Fn, f.Line, f.San.AllocFn, f.San.AllocLine)
	}
	return fmt.Sprintf("%s@%s:%d", f.Kind, f.Fn, f.Line)
}

// exitUnwind is the non-local transfer used when the target calls exit():
// the interpreter unwinds every frame back to the harness, which is exactly
// the setjmp/longjmp mechanism the paper's ExitPass relies on.
type exitUnwind struct {
	code int64
}

func (e *exitUnwind) Error() string { return fmt.Sprintf("exit(%d)", e.code) }
