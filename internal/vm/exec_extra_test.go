package vm

import (
	"testing"

	"closurex/internal/ir"
)

// Tests for interpreter internals that the main suite doesn't stress:
// register-frame pooling under recursion, budget charging in builtins,
// stack frame reuse, and snapshot semantics under CoW forks.

func TestRegisterPoolIsolationUnderRecursion(t *testing.T) {
	// ackermann-ish nest: deep recursion with live registers across calls
	// would corrupt results if pooled frames aliased.
	b := ir.NewBuilder("nest", 2)
	base := b.NewBlock()
	rec := b.NewBlock()
	b.CondBr(b.Bin(ir.Le, 0, b.Const(0)), base, rec)
	b.SetBlock(base)
	b.Ret(1) // returns register 1 (acc)
	b.SetBlock(rec)
	// r = nest(n-1, acc) + nest(n-2, acc) + n  -- registers live across
	// both calls.
	n1 := b.Call("nest", b.Bin(ir.Sub, 0, b.Const(1)), 1)
	n2 := b.Call("nest", b.Bin(ir.Sub, 0, b.Const(2)), 1)
	sum := b.Bin(ir.Add, b.Bin(ir.Add, n1, n2), 0)
	b.Ret(sum)
	m := buildModule(t, nil, b.F)
	v, _ := New(m, Options{})
	r1 := v.Call("nest", 12, 0)
	r2 := v.Call("nest", 12, 0)
	if r1.Fault != nil || r1.Ret != r2.Ret {
		t.Fatalf("recursion unstable: %d vs %d (%v)", r1.Ret, r2.Ret, r1.Fault)
	}
	// Fibonacci-like recurrence f(n)=f(n-1)+f(n-2)+n with f(<=0)=acc=0.
	model := make([]int64, 13)
	f := func(n int) int64 {
		if n <= 0 {
			return 0
		}
		return model[n]
	}
	for n := 1; n <= 12; n++ {
		model[n] = f(n-1) + f(n-2) + int64(n)
	}
	if r1.Ret != model[12] {
		t.Fatalf("nest(12) = %d, model %d", r1.Ret, model[12])
	}
}

func TestPooledFramesZeroedBetweenCalls(t *testing.T) {
	// A function that reads an uninitialized register would see garbage if
	// pooled frames weren't cleared. The builder never emits such code, so
	// hand-assemble it.
	f := &ir.Func{Name: "dirty", NumParams: 0, NumRegs: 4}
	f.Blocks = []*ir.Block{{Instrs: []ir.Instr{
		{Op: ir.OpRet, Dst: -1, A: 3, B: -1}, // return r3 without writing it
	}}}
	set := &ir.Func{Name: "setter", NumParams: 0, NumRegs: 4}
	set.Blocks = []*ir.Block{{Instrs: []ir.Instr{
		{Op: ir.OpConst, Dst: 3, A: -1, B: -1, Imm: 0x5a5a},
		{Op: ir.OpRet, Dst: -1, A: 3, B: -1},
	}}}
	m := ir.NewModule("t")
	_ = m.AddFunc(f)
	_ = m.AddFunc(set)
	v, _ := New(m, Options{})
	if r := v.Call("setter"); r.Ret != 0x5a5a {
		t.Fatalf("setter = %#x", r.Ret)
	}
	if r := v.Call("dirty"); r.Ret != 0 {
		t.Fatalf("pooled frame leaked: r3 = %#x", r.Ret)
	}
}

func TestBudgetChargedByMemoryBuiltins(t *testing.T) {
	// A loop of large memsets must hit the budget, not run forever.
	b := ir.NewBuilder("spin", 0)
	p := b.Call("malloc", b.Const(8192))
	loop := b.NewBlock()
	b.Br(loop)
	b.SetBlock(loop)
	_ = b.Call("memset", p, b.Const(0), b.Const(8192))
	b.Br(loop)
	m := buildModule(t, nil, b.F)
	v, _ := New(m, Options{Budget: 100_000})
	res := v.Call("spin")
	if res.Fault == nil || res.Fault.Kind != FaultTimeout {
		t.Fatalf("fault = %v, want Timeout", res.Fault)
	}
}

func TestFrameExhaustion(t *testing.T) {
	// A huge frame exceeds the stack segment even at shallow depth.
	b := ir.NewBuilder("big", 0)
	b.Alloca(int64(StackEnd-StackBase) + 4096)
	b.Ret(-1)
	m := buildModule(t, nil, b.F)
	v, _ := New(m, Options{})
	res := v.Call("big")
	if res.Fault == nil || res.Fault.Kind != FaultStackOverflow {
		t.Fatalf("fault = %v, want StackOverflow", res.Fault)
	}
}

func TestSnapshotGlobalsWholeImage(t *testing.T) {
	g1 := &ir.Global{Name: "a", Size: 8, Init: []byte{1}}
	g2 := &ir.Global{Name: "b", Size: 8, Init: []byte{2}, Const: true, Section: ir.SectionRodata}
	b := ir.NewBuilder("f", 0)
	b.Ret(-1)
	m := buildModule(t, []*ir.Global{g1, g2}, b.F)
	v, _ := New(m, Options{})
	snap := v.SnapshotGlobals()
	if len(snap) == 0 {
		t.Fatal("empty snapshot")
	}
	// Both initializers must be present somewhere in the image.
	found1, found2 := false, false
	for _, by := range snap {
		if by == 1 {
			found1 = true
		}
		if by == 2 {
			found2 = true
		}
	}
	if !found1 || !found2 {
		t.Fatalf("snapshot missing initializers: %v %v", found1, found2)
	}
}

func TestRestoreSectionRejectsBadInput(t *testing.T) {
	g := &ir.Global{Name: "a", Size: 8}
	b := ir.NewBuilder("f", 0)
	b.Ret(-1)
	m := buildModule(t, []*ir.Global{g}, b.F)
	v, _ := New(m, Options{})
	if v.RestoreSection("no-such-section", []byte{1}) {
		t.Fatal("restored unknown section")
	}
	if v.RestoreSection(ir.SectionData, []byte{1, 2, 3}) {
		t.Fatal("restored with wrong length")
	}
}

func TestForkInheritsHeapAndFiles(t *testing.T) {
	b := ir.NewBuilder("alloc", 0)
	p := b.Call("malloc", b.Const(64))
	b.Store(p, b.Const(77), 0, 8)
	b.Ret(p)
	read := ir.NewBuilder("read", 1)
	read.Ret(read.Load(0, 0, 8))
	m := buildModule(t, nil, b.F, read.F)
	parent, _ := New(m, Options{})
	res := parent.Call("alloc")
	if res.Fault != nil {
		t.Fatal(res.Fault)
	}
	addr := res.Ret
	child := parent.Fork()
	defer child.Release()
	// The child sees the parent's live chunk and its contents.
	if r := child.Call("read", addr); r.Fault != nil || r.Ret != 77 {
		t.Fatalf("child read = %d (%v)", r.Ret, r.Fault)
	}
	if child.Heap.LiveChunks() != 1 {
		t.Fatalf("child chunks = %d", child.Heap.LiveChunks())
	}
}

func TestCovNilMapSafe(t *testing.T) {
	// Instrumented code must run without a coverage map attached.
	b := ir.NewBuilder("f", 0)
	b.F.Blocks[0].Instrs = append([]ir.Instr{{Op: ir.OpCov, Dst: -1, A: -1, B: -1, Imm: 5}},
		b.F.Blocks[0].Instrs...)
	b.Ret(b.Const(9))
	m := buildModule(t, nil, b.F)
	v, _ := New(m, Options{}) // no CovMap
	if res := v.Call("f"); res.Fault != nil || res.Ret != 9 {
		t.Fatalf("res = %+v", res)
	}
}

func TestImagePagesMaterialized(t *testing.T) {
	b := ir.NewBuilder("f", 0)
	b.Ret(-1)
	m := buildModule(t, nil, b.F)
	v0, _ := New(m, Options{})
	v1, _ := New(m, Options{ImagePages: 64})
	if v1.Mem.Pages() < v0.Mem.Pages()+64 {
		t.Fatalf("image pages not resident: %d vs %d", v1.Mem.Pages(), v0.Mem.Pages())
	}
}
