package vm

import (
	"fmt"
	"sort"

	"closurex/internal/ir"
)

// This file is the execution-backend seam: a registry of pluggable
// engines (vm/compile registers the closure-chain backend here), the
// canonical indexed builtin table shared by call pre-resolution, and the
// bridge accessors an out-of-package engine needs to execute with
// bit-identical semantics — pointer access to the per-execution
// accounting state plus wrappers over the interpreter's access checker,
// shadow checker, fault constructor and binop evaluator. The interpreter
// remains the reference implementation; an engine is only correct if no
// observable field of Result, the coverage bitmap, or memory diverges
// from it.

// InterpBackend names the default switch-dispatch interpreter backend.
const InterpBackend = "interp"

// Engine executes target functions on behalf of a VM. Exec is invoked by
// VM.Call after the per-execution state reset, with the same contract as
// the interpreter's execFunc: it returns the function's return value, or
// an error that is a *Fault, the exit unwind, or an internal failure.
type Engine interface {
	Exec(f *ir.Func, args []int64) (int64, error)
}

// backends is the registry of engine constructors, keyed by backend name.
// Populated by RegisterBackend from backend packages' init functions.
var backendRegistry = map[string]func(*VM) (Engine, error){}

// RegisterBackend installs an engine constructor under name. Backend
// packages call it from init(); consumers arm the backend by importing
// the package (for side effect) and setting Options.Backend.
func RegisterBackend(name string, mk func(*VM) (Engine, error)) {
	if name == "" || name == InterpBackend {
		panic("vm: backend name reserved: " + name)
	}
	backendRegistry[name] = mk
}

// Backends lists the registered backend names, the interpreter first.
func Backends() []string {
	out := []string{InterpBackend}
	var rest []string
	for name := range backendRegistry {
		rest = append(rest, name)
	}
	sort.Strings(rest)
	return append(out, rest...)
}

// bindEngine attaches the named backend's engine to v ("" and "interp"
// leave the interpreter in place).
func (v *VM) bindEngine(name string) error {
	if name == "" || name == InterpBackend {
		return nil
	}
	mk, ok := backendRegistry[name]
	if !ok {
		return fmt.Errorf("vm: unknown backend %q (have %v; import its package?)", name, Backends())
	}
	eng, err := mk(v)
	if err != nil {
		return fmt.Errorf("vm: backend %s: %w", name, err)
	}
	v.engine = eng
	v.backend = name
	return nil
}

// Backend reports the active execution backend's name.
func (v *VM) Backend() string {
	if v.engine == nil {
		return InterpBackend
	}
	return v.backend
}

// ---- canonical builtin table ----

// The canonical builtin order is the builtin names sorted ascending. It is
// derivable from the name set alone, so ir.Module.ResolveCalls (via
// BuiltinIndex), the verifier's CLX122 check (which only sees the
// map[string]bool set) and the execution backends all agree on slot
// numbering without sharing a package.
var (
	builtinNames []string            // ascending
	builtinSlots []builtinFn         // aligned with builtinNames
	builtinIdx   map[string]int      // name -> slot
)

// initBuiltinTable builds the indexed table; called from init() in
// builtins.go right after the builtins map is populated.
func initBuiltinTable() {
	builtinNames = make([]string, 0, len(builtins))
	for name := range builtins {
		builtinNames = append(builtinNames, name)
	}
	sort.Strings(builtinNames)
	builtinSlots = make([]builtinFn, len(builtinNames))
	builtinIdx = make(map[string]int, len(builtinNames))
	for i, name := range builtinNames {
		builtinSlots[i] = builtins[name]
		builtinIdx[name] = i
	}
}

// BuiltinIndex returns name's slot in the canonical builtin order, or -1
// when name is not a builtin. This is the resolver ResolveModule feeds to
// ir.Module.ResolveCalls.
func BuiltinIndex(name string) int {
	i, ok := builtinIdx[name]
	if !ok {
		return -1
	}
	return i
}

// ResolveModule stamps every OpCall's CalleeIdx against the module's
// function table and the canonical builtin order. Idempotent: a module
// whose resolution is still valid is left untouched, which also makes the
// call race-free when a shard-supervisor rebuild re-checks a module other
// shards are executing.
func ResolveModule(m *ir.Module) {
	if m == nil || m.CallsResolved() {
		return
	}
	m.ResolveCalls(BuiltinIndex)
}

// CallBuiltinIndexed invokes builtin slot idx (from a negative CalleeIdx:
// slot = -CalleeIdx - 1). The caller must pass a valid slot.
func (v *VM) CallBuiltinIndexed(idx int, in *ir.Instr, args []int64) (int64, error) {
	return builtinSlots[idx](v, in, args)
}

// ---- engine bridge ----

// EngineHooks gives an execution backend pointer access to the VM's
// per-execution accounting state, so a compiled tier mutates exactly the
// cells the interpreter would: the instruction budget and count, the
// coverage chain state (prevLoc, path hash/length), the stack frontier
// and call depth the access checker validates against, and the current
// function pointer fault reports and allocation-site notes read.
type EngineHooks struct {
	Budget   *int64
	Instrs   *int64
	PrevLoc  *uint64
	PathHash *uint64
	PathLen  *int
	SP       *uint64
	Depth    *int
	MaxDepth int
	CurFn    **ir.Func
}

// Hooks returns the bridge into v's per-execution state. The pointers are
// stable for the VM's lifetime.
func (v *VM) Hooks() EngineHooks {
	return EngineHooks{
		Budget:   &v.budget,
		Instrs:   &v.instrs,
		PrevLoc:  &v.prevLoc,
		PathHash: &v.pathHash,
		PathLen:  &v.pathLen,
		SP:       &v.sp,
		Depth:    &v.depth,
		MaxDepth: v.maxDepth,
		CurFn:    &v.curFn,
	}
}

// EngineCov returns the currently bound coverage bitmap (always non-nil:
// VMs built without an external map carry a scratch one). Engines re-read
// it per execution so SetCovMap rebinds take effect.
func (v *VM) EngineCov() []byte { return v.covMap }

// EngineTrace reports whether path-sensitive edge tracing is armed.
func (v *VM) EngineTrace() bool { return v.traceEdges }

// EngineCheckAccess classifies and validates an n-byte access exactly as
// the interpreter's load/store path does.
func (v *VM) EngineCheckAccess(addr uint64, n int, store bool, in *ir.Instr) *Fault {
	return v.checkAccess(addr, n, store, in)
}

// EngineSanCheck runs one OpSanCheck's shadow consultation.
func (v *VM) EngineSanCheck(addr uint64, in *ir.Instr) *Fault {
	return v.sanCheck(addr, in)
}

// NewFault constructs a fault at the current function, as the
// interpreter's internal fault helper does.
func (v *VM) NewFault(kind FaultKind, in *ir.Instr, addr uint64, msg string) *Fault {
	return v.fault(kind, in, addr, msg)
}

// EngineBinop evaluates an OpBin with the interpreter's exact semantics
// (including the division fault cases and MinInt64 edge handling).
func (v *VM) EngineBinop(in *ir.Instr, a, b int64) (int64, *Fault) {
	return v.binop(in, a, b)
}

// ---- per-site access-check memoization ----

// AccMode classifies what an AccessCache slot has proven about its site.
type AccMode uint8

const (
	// AccMiss is the zero value: nothing proven, revalidate.
	AccMiss AccMode = iota
	// AccWindow: any access of this site's kind inside [Lo, Hi) is valid,
	// unconditionally (globals; the window is static per layout).
	AccWindow
	// AccHeapChunk: accesses inside [Lo, Hi) are valid while the heap
	// chunk map's generation still equals Gen.
	AccHeapChunk
	// AccStack: the site touches the stack segment; an access is valid
	// iff it lies in [StackBase, sp) — rechecked against the live sp
	// every time (sp moves with every call and return).
	AccStack
)

// AccessCache memoizes one load/store site's access-check verdict so the
// compiled tier can skip the full classification (segment dispatch,
// rodata scan, chunk binary search) when the site keeps touching memory
// it already proved valid. A slot belongs to exactly one site and one
// access kind (load or store), which is what makes the cached window
// sound: the revalidation conditions per mode are exactly the conditions
// under which the original verdict was derived. The zero value is an
// always-miss.
type AccessCache struct {
	Lo, Hi uint64
	Gen    uint64
	Mode   AccMode
}

// EngineCheckAccessCached runs the interpreter's exact access check and,
// on success, installs the widest sound revalidation window into c. On
// fault the slot is invalidated. Engines call this on a cache miss only;
// the inline fast path replays c's mode condition.
func (v *VM) EngineCheckAccessCached(c *AccessCache, addr uint64, n int, store bool, in *ir.Instr) *Fault {
	if flt := v.checkAccess(addr, n, store, in); flt != nil {
		c.Mode = AccMiss
		return flt
	}
	switch {
	case addr >= GlobalsBase && addr < HeapBase:
		if store {
			c.Lo, c.Hi = v.Layout.WritableWindow(addr)
		} else {
			c.Lo, c.Hi = GlobalsBase, v.Layout.End
		}
		c.Mode = AccWindow
	case addr >= HeapBase && addr < HeapEnd:
		if ch, ok := v.Heap.ChunkAt(addr); ok {
			c.Lo, c.Hi, c.Gen = ch.Addr, ch.Addr+ch.Size, v.Heap.Gen()
			c.Mode = AccHeapChunk
		} else {
			c.Mode = AccMiss
		}
	case addr >= StackBase && addr < StackEnd:
		c.Mode = AccStack
	default:
		c.Mode = AccMiss
	}
	return nil
}
