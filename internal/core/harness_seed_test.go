package core

import (
	"testing"

	"closurex/internal/analysis/harnessaudit"
)

// harnessaudit mirrors the coverage seed rather than importing core (core
// imports harnessaudit for the auto-dictionary, so the dependency can only
// point one way). If the mirror drifts, every probe in every audited module
// would read as collision-displaced and CLX120 would fire on healthy
// harnesses.
func TestHarnessAuditSeedMirrorsCoverageSeed(t *testing.T) {
	if harnessaudit.DefaultCoverageSeed != CoverageSeed {
		t.Fatalf("harnessaudit.DefaultCoverageSeed = %#x, core.CoverageSeed = %#x; the mirrored constant drifted",
			harnessaudit.DefaultCoverageSeed, CoverageSeed)
	}
}
