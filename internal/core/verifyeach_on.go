//go:build verifyeach

package core

// verifyEachDefault is true under the verifyeach build tag: every pipeline
// the suite builds re-runs the deep analysis verifier after every pass, so
// a pass that corrupts the module is attributed by name the moment it
// lands, anywhere in the test suite.
const verifyEachDefault = true
