package core

import (
	"bytes"
	"testing"

	"closurex/internal/faultinject"
	"closurex/internal/targets"
	"closurex/internal/vm"
)

// The compiled execution tier's campaign-level contract (DESIGN.md §13):
// swapping the VM backend under a fuzzing campaign must be invisible to
// every observable the fuzzer keys on. Same target, same trial seed, same
// exec count — the campaign on -backend=compiled must be bit-identical to
// the interpreter campaign: same coverage map bytes, same corpus inputs
// in the same order, same crash and hang buckets at the same fault sites.
// The VM-level differential matrix (internal/vm/compile) proves per-seed
// observable identity; this suite proves the property composes through
// the harness restore loop, the mutation schedule, and the triage path
// over whole campaigns, in every instrumentation mode the fuzzer ships.

const (
	backendDiffSeed  = 0xC0DE
	backendDiffExecs = 600
)

// backendMode is one instrumentation configuration of the matrix.
type backendMode struct {
	name string
	opts func() InstanceOptions
}

func backendModes() []backendMode {
	return []backendMode{
		{"plain", func() InstanceOptions {
			return InstanceOptions{}
		}},
		{"sanitize", func() InstanceOptions {
			return InstanceOptions{Sanitize: SanitizeElide}
		}},
		{"interproc", func() InstanceOptions {
			return InstanceOptions{Interproc: true}
		}},
		// Injected restore faults drive both campaigns through the same
		// degraded-restore handling; the injector is count-based, so the
		// two backends see the failure at the same iteration.
		{"restore-fault", func() InstanceOptions {
			inj := faultinject.New(backendDiffSeed)
			inj.FailAfter(faultinject.RestoreGlobals, 200, 1)
			return InstanceOptions{Injector: inj}
		}},
	}
}

func observeBackendCampaign(t *testing.T, tgt *targets.Target, backend string, mode backendMode) *campaignObs {
	t.Helper()
	opts := mode.opts()
	opts.TrialSeed = backendDiffSeed
	opts.DeterministicRand = true
	opts.Backend = backend
	inst, err := NewInstance(tgt, "closurex", opts)
	if err != nil {
		t.Fatalf("%s backend=%s mode=%s: %v", tgt.Name, backend, mode.name, err)
	}
	defer inst.Close()
	inst.Campaign.RunExecs(backendDiffExecs)
	obs := &campaignObs{
		edges:  inst.Campaign.Edges(),
		bitmap: inst.Campaign.BitmapSnapshot(),
	}
	for _, e := range inst.Campaign.Queue() {
		obs.queue = append(obs.queue, append([]byte(nil), e.Input...))
	}
	for _, c := range inst.Campaign.Crashes() {
		obs.crashes = append(obs.crashes, c.Key)
	}
	for _, h := range inst.Campaign.Hangs() {
		obs.hangs = append(obs.hangs, h.Key)
	}
	return obs
}

func diffBackendObs(t *testing.T, tgt *targets.Target, mode string, interp, compiled *campaignObs) {
	t.Helper()
	if interp.edges != compiled.edges {
		t.Errorf("%s/%s: edges interp=%d compiled=%d", tgt.Short, mode, interp.edges, compiled.edges)
	}
	if !bytes.Equal(interp.bitmap, compiled.bitmap) {
		n := 0
		for i := range interp.bitmap {
			if interp.bitmap[i] != compiled.bitmap[i] {
				n++
			}
		}
		t.Errorf("%s/%s: coverage bitmap diverges in %d cells", tgt.Short, mode, n)
	}
	if len(interp.queue) != len(compiled.queue) {
		t.Errorf("%s/%s: corpus size interp=%d compiled=%d", tgt.Short, mode, len(interp.queue), len(compiled.queue))
	} else {
		for i := range interp.queue {
			if !bytes.Equal(interp.queue[i], compiled.queue[i]) {
				t.Errorf("%s/%s: corpus entry %d differs", tgt.Short, mode, i)
				break
			}
		}
	}
	if got, want := compiled.crashes, interp.crashes; !equalKeys(got, want) {
		t.Errorf("%s/%s: crash buckets interp=%v compiled=%v", tgt.Short, mode, want, got)
	}
	if got, want := compiled.hangs, interp.hangs; !equalKeys(got, want) {
		t.Errorf("%s/%s: hang buckets interp=%v compiled=%v", tgt.Short, mode, want, got)
	}
}

// TestBackendDifferentialMatrix runs the full mode matrix over every
// registered target: a fixed-budget campaign per backend per mode, with
// every deterministic observable compared.
func TestBackendDifferentialMatrix(t *testing.T) {
	all := targets.All()
	if len(all) == 0 {
		t.Fatal("no registered targets")
	}
	for _, mode := range backendModes() {
		mode := mode
		t.Run(mode.name, func(t *testing.T) {
			for _, tgt := range all {
				tgt := tgt
				t.Run(tgt.Short, func(t *testing.T) {
					interp := observeBackendCampaign(t, tgt, vm.InterpBackend, mode)
					compiled := observeBackendCampaign(t, tgt, CompiledBackend, mode)
					diffBackendObs(t, tgt, mode.name, interp, compiled)
				})
			}
		})
	}
}

// TestCompiledCampaignDeterminism re-runs the same fixed-seed compiled
// campaign and requires bit-identical results — the compiled tier must
// not introduce schedule- or cache-dependent nondeterminism (the shared
// program cache and per-VM access caches are invisible to execution
// semantics).
func TestCompiledCampaignDeterminism(t *testing.T) {
	for _, tgt := range targets.All() {
		tgt := tgt
		t.Run(tgt.Short, func(t *testing.T) {
			mode := backendMode{"plain", func() InstanceOptions { return InstanceOptions{} }}
			a := observeBackendCampaign(t, tgt, CompiledBackend, mode)
			b := observeBackendCampaign(t, tgt, CompiledBackend, mode)
			diffBackendObs(t, tgt, "determinism", a, b)
		})
	}
}

// TestSentinelCrossBackend runs a campaign whose divergence sentinel
// replays every probe on the other backend: any semantic gap between the
// tiers would surface as a sentinel divergence during the run.
func TestSentinelCrossBackend(t *testing.T) {
	for _, backend := range []string{vm.InterpBackend, CompiledBackend} {
		backend := backend
		t.Run(backend, func(t *testing.T) {
			tgt := targets.Get("gpmf-parser")
			if tgt == nil {
				t.Fatal("gpmf-parser not registered")
			}
			inst, err := NewInstance(tgt, "closurex", InstanceOptions{
				TrialSeed:            backendDiffSeed,
				DeterministicRand:    true,
				Backend:              backend,
				SentinelEvery:        50,
				SentinelCrossBackend: true,
			})
			if err != nil {
				t.Fatal(err)
			}
			defer inst.Close()
			inst.Campaign.RunExecs(backendDiffExecs)
			if d := inst.Campaign.Divergences(); len(d) != 0 {
				t.Fatalf("cross-backend sentinel reported %d divergences: %+v", len(d), d[0])
			}
		})
	}
}
