package core

import (
	"errors"
	"testing"

	"closurex/internal/analysis"
	"closurex/internal/harness"
	"closurex/internal/ir"
	"closurex/internal/passes"
	"closurex/internal/targets"
	"closurex/internal/vm"
)

// TestAllTargetsCheckCleanAfterPipelines is the differential acceptance
// test: for every registered benchmark, the output of each instrumentation
// pipeline must pass the deep verifier and the variant-appropriate
// restore-completeness lints with zero diagnostics. A regression in any
// pass shows up here as a named CLX finding on a named target.
func TestAllTargetsCheckCleanAfterPipelines(t *testing.T) {
	all := targets.All()
	if len(all) == 0 {
		t.Fatal("no registered targets")
	}
	for _, tgt := range all {
		for _, v := range []Variant{Baseline, ClosureX, ClosureXDeferInit} {
			mod, err := Build(tgt.Short+".c", tgt.Source, v)
			if err != nil {
				t.Errorf("%s/%s: build: %v", tgt.Name, v, err)
				continue
			}
			if ds := CheckModule(mod, v); len(ds) != 0 {
				t.Errorf("%s/%s: %d finding(s):\n%s", tgt.Name, v, len(ds), ds)
			}
		}
	}
}

// counterSrc is the smallest non-restartable-without-help program: a
// writable global whose mutation is observable in the return value.
const counterSrc = `
int runs;
int main(void) { runs++; return runs; }
`

// twoRuns executes target_main twice under a full-restore harness and
// returns both return values.
func twoRuns(t *testing.T, mod *ir.Module) (int64, int64) {
	t.Helper()
	v, err := vm.New(mod, vm.Options{})
	if err != nil {
		t.Fatal(err)
	}
	h, err := harness.New(v, harness.FullRestore())
	if err != nil {
		t.Fatal(err)
	}
	r1 := h.RunOne(nil)
	if r1.Fault != nil {
		t.Fatalf("first run faulted: %v", r1.Fault)
	}
	if err := h.TakeRestoreError(); err != nil {
		t.Fatalf("restore failed: %v", err)
	}
	r2 := h.RunOne(nil)
	if r2.Fault != nil {
		t.Fatalf("second run faulted: %v", r2.Fault)
	}
	return r1.Ret, r2.Ret
}

// TestLintVerdictMatchesRuntimeBehavior is the lint-vs-runtime comparison:
// the static CLX004 verdict must agree with what a persistent campaign
// actually observes. A module the lints accept behaves identically across
// iterations; a module they reject visibly leaks state at runtime.
func TestLintVerdictMatchesRuntimeBehavior(t *testing.T) {
	// Full pipeline: statically clean, and iteration 2 sees iteration 1's
	// world exactly restored.
	full, err := Build("t.c", counterSrc, ClosureX)
	if err != nil {
		t.Fatal(err)
	}
	if ds := CheckModule(full, ClosureX); len(ds) != 0 {
		t.Fatalf("full pipeline flagged:\n%s", ds)
	}
	r1, r2 := twoRuns(t, full)
	if r1 != 1 || r2 != 1 {
		t.Fatalf("lint-clean module not restartable at runtime: runs = %d, %d (want 1, 1)", r1, r2)
	}

	// The same program through a pipeline missing GlobalPass: the lint
	// predicts the leak statically...
	pristine, err := Compile("t.c", counterSrc)
	if err != nil {
		t.Fatal(err)
	}
	defective := pristine.Clone()
	pm := passes.NewManager(vm.Builtins())
	pm.Add(passes.RenameMainPass{}, passes.ExitPass{}, passes.HeapPass{}, passes.FilePass{})
	pm.Add(passes.NewCoveragePass(CoverageSeed))
	if err := pm.Run(defective); err != nil {
		t.Fatal(err)
	}
	ds := LintModule(defective, ClosureX)
	if got := ds.ByID(analysis.IDGlobalSection); len(got) == 0 {
		t.Fatalf("lint missed the un-sectioned global; findings:\n%s", ds)
	}
	if !errors.Is(ds.Err(), analysis.ErrDiagnostics) {
		t.Fatalf("lint error not errors.Is-able: %v", ds.Err())
	}
	// ...and the runtime confirms it: the counter survives the restore.
	d1, d2 := twoRuns(t, defective)
	if d1 != 1 || d2 != 2 {
		t.Fatalf("expected the leak the lint predicted: runs = %d, %d (want 1, 2)", d1, d2)
	}
}

// TestVerifyModuleAndLintModuleVariants pins the facade-level routing:
// pristine modules are never linted, baseline modules get the shared
// subset, ClosureX modules the full catalog.
func TestVerifyModuleAndLintModuleVariants(t *testing.T) {
	pristine, err := Compile("t.c", counterSrc)
	if err != nil {
		t.Fatal(err)
	}
	if ds := VerifyModule(pristine); len(ds) != 0 {
		t.Fatalf("pristine module does not verify:\n%s", ds)
	}
	if ds := LintModule(pristine, Pristine); ds != nil {
		t.Fatalf("pristine variant linted: %s", ds)
	}
	// A pristine module still has main and raw state, so the full catalog
	// must flag it — proof LintModule's variant routing matters.
	if ds := LintModule(pristine, ClosureX); !ds.HasErrors() {
		t.Fatal("full catalog accepted an uninstrumented module")
	}
	baseline, err := Build("t.c", counterSrc, Baseline)
	if err != nil {
		t.Fatal(err)
	}
	if ds := LintModule(baseline, Baseline); len(ds) != 0 {
		t.Fatalf("baseline build flagged by the shared subset:\n%s", ds)
	}
}
