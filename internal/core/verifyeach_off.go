//go:build !verifyeach

package core

// verifyEachDefault is false in ordinary builds: pipelines run the quick
// structural ir.Verify between passes, and the deep analysis verifier runs
// standalone (closurex-lint, tests). Build with -tags verifyeach to re-run
// the full verifier after every pass of every build — `make lint` does.
const verifyEachDefault = false
