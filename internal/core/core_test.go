package core

import (
	"strings"
	"testing"

	"closurex/internal/ir"
	"closurex/internal/passes"
	"closurex/internal/targets"
)

const coreSampleSrc = `
int counter;
int main(void) {
	counter++;
	int f = fopen("/input", "r");
	if (!f) exit(1);
	int c = fgetc(f);
	fclose(f);
	return c;
}
`

func TestCompileAndVariants(t *testing.T) {
	pristine, err := Compile("s.c", coreSampleSrc)
	if err != nil {
		t.Fatal(err)
	}
	if pristine.Func("main") == nil {
		t.Fatal("pristine lost main")
	}

	base, err := Instrument(pristine, Baseline)
	if err != nil {
		t.Fatal(err)
	}
	if base.Func(passes.TargetMain) == nil || base.Func("main") != nil {
		t.Fatal("baseline not renamed")
	}
	if passes.CountProbes(base) == 0 {
		t.Fatal("baseline lacks coverage")
	}
	// Baseline must NOT hook exit.
	if n := countCallees(base, "closurex_exit"); n != 0 {
		t.Fatalf("baseline hooked exit %d times", n)
	}

	cx, err := Instrument(pristine, ClosureX)
	if err != nil {
		t.Fatal(err)
	}
	if n := countCallees(cx, "exit"); n != 0 {
		t.Fatal("closurex variant left raw exit calls")
	}
	if n := countCallees(cx, "closurex_fopen"); n != 1 {
		t.Fatalf("closurex_fopen calls = %d", n)
	}
	// Instrument must not mutate its input.
	if pristine.Func("main") == nil || passes.CountProbes(pristine) != 0 {
		t.Fatal("Instrument mutated the pristine module")
	}
}

func countCallees(m *ir.Module, name string) int {
	n := 0
	for _, f := range m.Funcs {
		for _, b := range f.Blocks {
			for i := range b.Instrs {
				if b.Instrs[i].Op == ir.OpCall && b.Instrs[i].Callee == name {
					n++
				}
			}
		}
	}
	return n
}

func TestVariantStringAndFor(t *testing.T) {
	if VariantFor("closurex") != ClosureX || VariantFor("forkserver") != Baseline {
		t.Fatal("VariantFor mapping")
	}
	for _, v := range []Variant{Pristine, Baseline, ClosureX, ClosureXDeferInit} {
		if strings.Contains(v.String(), "variant(") {
			t.Fatalf("missing name for %d", int(v))
		}
	}
}

func TestBuildRejectsBadSource(t *testing.T) {
	if _, err := Build("bad.c", "int main(void) { return nope; }", Baseline); err == nil {
		t.Fatal("bad source built")
	}
}

func TestNewInstanceAcrossMechanisms(t *testing.T) {
	tg := targets.Get("giftext")
	for _, mech := range []string{"fresh", "forkserver", "persistent-naive", "closurex"} {
		inst, err := NewInstance(tg, mech, InstanceOptions{TrialSeed: 1, ImagePagesOverride: -1})
		if err != nil {
			t.Fatalf("%s: %v", mech, err)
		}
		inst.Campaign.RunExecs(300)
		if inst.Campaign.Execs() < 300 {
			t.Fatalf("%s: execs = %d", mech, inst.Campaign.Execs())
		}
		if inst.Campaign.Edges() == 0 {
			t.Fatalf("%s: no coverage", mech)
		}
		if inst.TotalProbes() == 0 {
			t.Fatalf("%s: no probes", mech)
		}
		inst.Close()
	}
}

func TestNewInstanceNilTarget(t *testing.T) {
	if _, err := NewInstance(nil, "closurex", InstanceOptions{}); err == nil {
		t.Fatal("nil target accepted")
	}
}

func TestCoverageGeometrySharedAcrossVariants(t *testing.T) {
	// Both variants share coverage-probe IDs (same seed), so Table 6's
	// coverage comparison is apples to apples.
	tg := targets.Get("zlib")
	base, err := Build(tg.Short+".c", tg.Source, Baseline)
	if err != nil {
		t.Fatal(err)
	}
	cx, err := Build(tg.Short+".c", tg.Source, ClosureX)
	if err != nil {
		t.Fatal(err)
	}
	ids := func(m *ir.Module) map[int64]bool {
		out := map[int64]bool{}
		for _, f := range m.Funcs {
			for _, b := range f.Blocks {
				for i := range b.Instrs {
					if b.Instrs[i].Op == ir.OpCov {
						out[b.Instrs[i].Imm] = true
					}
				}
			}
		}
		return out
	}
	bi, ci := ids(base), ids(cx)
	if len(bi) != len(ci) {
		t.Fatalf("probe counts differ: %d vs %d", len(bi), len(ci))
	}
	for id := range bi {
		if !ci[id] {
			t.Fatalf("probe %#x missing from closurex build", id)
		}
	}
}
