// Package core ties the ClosureX toolchain together: it compiles MinC
// sources, applies the instrumentation pipeline appropriate for each
// execution mechanism, and wires module + mechanism + fuzzer into one
// runnable instance. The public facade (package closurex at the repository
// root) and the experiment drivers are thin layers over this package.
package core

import (
	"fmt"
	"strings"
	"sync"
	"time"

	"closurex/internal/analysis"
	"closurex/internal/analysis/harnessaudit"
	"closurex/internal/analysis/interproc"
	"closurex/internal/analysis/transval"
	"closurex/internal/execmgr"
	"closurex/internal/faultinject"
	"closurex/internal/fuzz"
	"closurex/internal/harness"
	"closurex/internal/ir"
	"closurex/internal/lower"
	"closurex/internal/passes"
	"closurex/internal/targets"
	"closurex/internal/vm"
)

// Variant selects an instrumentation pipeline.
type Variant int

// Pipeline variants.
const (
	// Pristine applies no passes: the module as the front end emitted it.
	Pristine Variant = iota
	// Baseline is the AFL++-style build: renamed entry point + coverage,
	// no state-restoration hooks. Used by fresh/forkserver/naive modes.
	Baseline
	// ClosureX is the full Table 3 pipeline + coverage.
	ClosureX
	// ClosureXDeferInit additionally hoists closurex_init (future work).
	ClosureXDeferInit
)

func (v Variant) String() string {
	switch v {
	case Pristine:
		return "pristine"
	case Baseline:
		return "baseline"
	case ClosureX:
		return "closurex"
	case ClosureXDeferInit:
		return "closurex+deferinit"
	}
	return fmt.Sprintf("variant(%d)", int(v))
}

// VariantFor returns the build variant an execution mechanism needs.
func VariantFor(mechanism string) Variant {
	if strings.HasPrefix(mechanism, "closurex") {
		return ClosureX
	}
	return Baseline
}

// RegisterTarget adds a user-defined benchmark target to the registry,
// surfacing validation failures (nil target, empty or duplicate name) as
// errors — registration input must never panic a library.
func RegisterTarget(t *targets.Target) error { return targets.Register(t) }

// TargetInitErrors reports registration problems from the built-in target
// suite's package initialization (empty for a healthy build).
func TargetInitErrors() []error { return targets.InitErrors() }

// CoverageSeed fixes coverage-probe IDs so both configurations of a trial
// share the same map geometry (the evaluation holds instrumentation
// constant across mechanisms).
const CoverageSeed = 0xC105

// AuditEveryDefault is the -audit-restore cadence: one full-section
// elision audit per this many iterations (matching the resilience layer's
// default watchdog cadence).
const AuditEveryDefault = 64

// Compile lowers MinC source to a pristine, verified module. The module is
// call-resolved so even pristine executions dispatch through cached callee
// indices.
func Compile(file, src string) (*ir.Module, error) {
	m, err := lower.Compile(file, src, vm.Builtins())
	if err != nil {
		return nil, err
	}
	vm.ResolveModule(m)
	return m, nil
}

// SanitizeMode selects how much sanitizer instrumentation a build carries.
type SanitizeMode int

// Sanitizer build modes. SanitizeNoElide exists for the overhead benchmark:
// it measures what the static check-elision analysis is worth.
const (
	SanitizeOff SanitizeMode = iota
	SanitizeNoElide
	SanitizeElide
)

func (s SanitizeMode) String() string {
	switch s {
	case SanitizeOff:
		return "off"
	case SanitizeNoElide:
		return "on"
	case SanitizeElide:
		return "on+elide"
	}
	return fmt.Sprintf("sanitize(%d)", int(s))
}

// Enabled reports whether the mode arms the shadow plane at all.
func (s SanitizeMode) Enabled() bool { return s != SanitizeOff }

// BuildConfig collects every knob of the instrumentation pipeline.
type BuildConfig struct {
	Variant  Variant
	Sanitize SanitizeMode
	// Interproc inserts passes.InterprocPass after the state-tracking
	// pipeline: the interprocedural mod/ref + lifetime analysis stamps
	// restore-elision metadata (may-write global set, TrackElide/FileElide
	// marks) the harness scopes its snapshot/restore/watchdog work to.
	// Only meaningful for the ClosureX variants; silently ignored
	// elsewhere (baseline/pristine builds have no restore loop to scope).
	Interproc bool
}

// Instrument applies the variant's pipeline to a clone of m, leaving m
// untouched, and returns the instrumented module.
func Instrument(m *ir.Module, v Variant) (*ir.Module, error) {
	return InstrumentWith(m, BuildConfig{Variant: v})
}

// InstrumentSanitized is Instrument with sanitizer instrumentation woven
// in (see InstrumentWith for the pass ordering contract).
func InstrumentSanitized(m *ir.Module, v Variant, san SanitizeMode) (*ir.Module, error) {
	return InstrumentWith(m, BuildConfig{Variant: v, Sanitize: san})
}

// InstrumentWith applies the configured pipeline to a clone of m. The
// ordering contract: InterprocPass runs right after the state-restoration
// pipeline (its proofs are about the closurex_* call shape that pipeline
// produces), SanitizerPass after that (so every access it instruments is
// final), and CoveragePass last — it only prepends probes at block heads,
// preserving both the check-immediately-precedes-access adjacency
// (CLX112/CLX113) and the elision marks' site geometry (CLX114 re-audits
// them under VerifyEach). Because neither InterprocPass nor SanitizerPass
// creates blocks, coverage probe IDs — and hence bitmap geometry — are
// identical across sanitizer and interproc modes.
func InstrumentWith(m *ir.Module, cfg BuildConfig) (*ir.Module, error) {
	out := m.Clone()
	pm := passes.NewManager(vm.Builtins()).VerifyEach(verifyEachDefault)
	addSan := func() {
		if cfg.Sanitize.Enabled() {
			pm.Add(passes.SanitizerPass{Elide: cfg.Sanitize == SanitizeElide})
		}
	}
	addInterproc := func() {
		if cfg.Interproc {
			pm.Add(passes.InterprocPass{})
		}
	}
	switch cfg.Variant {
	case Pristine:
		if !cfg.Sanitize.Enabled() {
			return out, nil
		}
		addSan()
	case Baseline:
		pm.Add(passes.RenameMainPass{})
		addSan()
		pm.Add(passes.NewCoveragePass(CoverageSeed))
	case ClosureX:
		pm.Add(passes.ClosureXPipeline(false)...)
		addInterproc()
		addSan()
		pm.Add(passes.NewCoveragePass(CoverageSeed))
	case ClosureXDeferInit:
		pm.Add(passes.ClosureXPipeline(true)...)
		addInterproc()
		addSan()
		pm.Add(passes.NewCoveragePass(CoverageSeed))
	default:
		return nil, fmt.Errorf("core: unknown variant %d", int(cfg.Variant))
	}
	if err := pm.Run(out); err != nil {
		return nil, err
	}
	// Module-commit point: the pipeline is done rewriting call sites, so
	// stamp the callee-index cache both execution backends dispatch
	// through (and CLX122 audits).
	vm.ResolveModule(out)
	return out, nil
}

// Build compiles and instruments in one step.
func Build(file, src string, v Variant) (*ir.Module, error) {
	return BuildWith(file, src, BuildConfig{Variant: v})
}

// BuildSanitized compiles and instruments with the given sanitizer mode.
func BuildSanitized(file, src string, v Variant, san SanitizeMode) (*ir.Module, error) {
	return BuildWith(file, src, BuildConfig{Variant: v, Sanitize: san})
}

// BuildWith compiles and instruments with a full build configuration.
func BuildWith(file, src string, cfg BuildConfig) (*ir.Module, error) {
	m, err := Compile(file, src)
	if err != nil {
		return nil, err
	}
	return InstrumentWith(m, cfg)
}

// VerifyModule runs the deep analysis verifier (structural invariants plus
// definite-assignment dataflow) over m with the VM's builtin set, plus the
// interprocedural elision audit: every TrackElide/FileElide mark and the
// recorded may-write metadata must be re-derivable from the module as it
// stands (CLX114/CLX117 on drift).
func VerifyModule(m *ir.Module) analysis.Diagnostics {
	ds := analysis.Verify(m, vm.Builtins())
	ds = append(ds, interproc.Audit(m)...)
	ds.Sort()
	return ds
}

// LintModule runs the restore-completeness lints appropriate for a build
// variant: the full catalog for ClosureX builds, whose output must be
// restartable, and the shared subset (entry renaming, coverage sanity) for
// baseline builds, which legitimately keep raw heap/file/exit calls.
func LintModule(m *ir.Module, v Variant) analysis.Diagnostics {
	switch v {
	case ClosureX, ClosureXDeferInit:
		return analysis.Lint(m)
	case Baseline:
		return analysis.LintShared(m)
	default:
		return nil // pristine modules carry no pipeline contract to lint
	}
}

// CheckModule verifies then, on a structurally sound module, lints for the
// given variant — the one-call gate closurex-lint and the -lint campaign
// flag share.
func CheckModule(m *ir.Module, v Variant) analysis.Diagnostics {
	ds := VerifyModule(m)
	if ds.HasErrors() {
		return ds
	}
	return append(ds, LintModule(m, v)...)
}

// Instance is one runnable fuzzing configuration: a target built for a
// mechanism, plus a campaign driving it. With Jobs <= 1 the campaign is
// the sequential fuzz.Campaign; with Jobs > 1 it is a
// fuzz.ParallelCampaign over Jobs mechanisms, and Mech/CovMap alias shard
// 0's. Driver returns whichever is active.
type Instance struct {
	Target   *targets.Target
	Module   *ir.Module
	Mech     execmgr.Mechanism
	CovMap   []byte
	Campaign *fuzz.Campaign
	// Mechs holds every shard's mechanism (len 1 for sequential runs).
	Mechs []execmgr.Mechanism
	// Parallel is non-nil when the instance runs sharded (Jobs > 1).
	Parallel *fuzz.ParallelCampaign

	// mechMu guards Mechs against concurrent mutation by shard-supervisor
	// rebuild callbacks (nil for sequential instances, which never rebuild).
	mechMu *sync.Mutex
}

// Driver returns the active campaign — sequential or parallel — behind the
// shared fuzz.Driver interface.
func (in *Instance) Driver() fuzz.Driver {
	if in.Parallel != nil {
		return in.Parallel
	}
	return in.Campaign
}

// Jobs returns the number of parallel shards (1 for sequential instances).
func (in *Instance) Jobs() int {
	if in.Parallel != nil {
		return in.Parallel.Jobs()
	}
	return 1
}

// InstanceOptions tunes NewInstance.
type InstanceOptions struct {
	// TrialSeed seeds the campaign RNG; each trial uses a distinct seed.
	TrialSeed uint64
	// Budget overrides the per-execution instruction budget.
	Budget int64
	// TraceEdges enables path tracing (correctness study only).
	TraceEdges bool
	// HarnessOpts overrides which state ClosureX restores (ablations).
	HarnessOpts *harness.Options
	// DeferInit switches the ClosureX build to the DeferInit pipeline.
	DeferInit bool
	// Files pre-populates the virtual filesystem (configs etc.).
	Files map[string][]byte
	// ImagePagesOverride overrides the target's Table 4 image size; < 0
	// means "no image" (unit tests), 0 means "use the target's".
	ImagePagesOverride int
	// Resilience wraps a "closurex" mechanism in the watchdog/rebuild/
	// fallback ladder (execmgr.Resilient). Nil leaves the bare mechanism.
	Resilience *execmgr.ResilienceConfig
	// SentinelEvery arms the divergence sentinel every N campaign
	// executions: replays under a fresh reference image are cross-checked
	// against the campaign mechanism. 0 disables.
	SentinelEvery int64
	// DeterministicRand pins the VM rand()/heap-ASLR seeds to TrialSeed,
	// which the sentinel and checkpoint/resume both want: probe replays
	// and resumed runs then reproduce executions exactly.
	DeterministicRand bool
	// Sanitize arms the ASan-style shadow plane: the build gets
	// SanitizerPass checks (elided where the static analysis proves them
	// unnecessary under SanitizeElide) and every VM — including the
	// sentinel's fresh reference image — attaches shadow memory.
	Sanitize SanitizeMode
	// Interproc arms restore elision end to end: the build runs
	// passes.InterprocPass and the ClosureX harness scopes its global
	// snapshot/restore/watchdog work to the analysis-proven may-write
	// ranges (harness.Options.ElideRestore). Coverage bitmaps and corpora
	// are bit-identical with and without it — only restore bandwidth and
	// bookkeeping change.
	Interproc bool
	// AuditRestore arms the runtime elision audit: every AuditEveryDefault
	// iterations the harness re-checks the full closure section (and the
	// must-free/must-close censuses) against the init snapshot, repairing
	// and surfacing an ErrAudit on any drift the elided restore missed.
	AuditRestore bool
	// Injector arms fault injection across the VM and harness.
	Injector *faultinject.Injector
	// Stop propagates a supervisor's shutdown request into the campaign.
	Stop <-chan struct{}
	// ResumeFrom, when non-nil, restores campaign state from a checkpoint
	// (fuzz.Campaign.Checkpoint) instead of starting fresh. The target,
	// mechanism and TrialSeed must match the checkpointed run.
	ResumeFrom []byte
	// Jobs shards the campaign across N parallel workers, each with its
	// own process image and harness, merging coverage into a shared global
	// bitmap. 0 or 1 runs the plain sequential campaign; Jobs == 1 via the
	// parallel executor is bit-identical to it. A parallel checkpoint
	// resumes bit-identically under the same Jobs and elastically (corpus
	// re-sharded deterministically, totals preserved) under any other
	// Jobs > 1; sequential checkpoints still need Jobs <= 1.
	Jobs int
	// AutoDict harvests an input-dataflow auto-dictionary from the built
	// module (analysis/harnessaudit: constants the target compares
	// input-derived values against, in both endiannesses, plus rodata
	// strings and call-site constant clusters) and merges it after the
	// target's manual tokens, deduplicated and capped (fuzz.MergeDict).
	// Off, the dictionary path is untouched — campaigns are bit-identical
	// to builds that predate the wiring.
	AutoDict bool
	// MaxShardRestarts bounds consecutive supervised restarts per shard
	// before the supervisor escalates to a mechanism rebuild (0 uses the
	// fuzz.SupervisorConfig default of 3). Parallel instances only.
	MaxShardRestarts int
	// ShardBackoff is the base cooldown before a shard restart, doubling
	// per consecutive fault (0 uses the default). Parallel instances only.
	ShardBackoff time.Duration
	// Backend selects the VM execution engine for every mechanism the
	// instance builds: "" or "interp" for the reference interpreter,
	// "compiled" for the closure-chain tier (execmgr imports it).
	Backend string
	// SentinelCrossBackend makes the divergence sentinel's fresh reference
	// image run on the OTHER backend (compiled when the campaign is
	// interpreted and vice versa), turning the replay probe into a two-
	// sided backend differential at campaign runtime. Requires
	// SentinelEvery > 0 to have any effect.
	SentinelCrossBackend bool
	// TransvalOff skips the translation-validation gate that otherwise
	// refuses to start any campaign arming the compiled tier (Backend ==
	// "compiled", or a cross-backend sentinel) on a module whose compiled
	// program does not certify against the IR (analysis/transval). Escape
	// hatch only: an uncertified compiled run can diverge from the
	// interpreter semantics every other result in the repo is stated in.
	TransvalOff bool
}

// transvalCheck runs the translation-validation gate over a built module.
// It is a variable so the refusal path is testable: no registered target
// fails certification (that is what the gate guarantees), so tests inject
// a failing checker instead of manufacturing an uncertifiable build.
var transvalCheck = func(mod *ir.Module) error {
	if ds := transval.Check(mod); len(ds) > 0 {
		return ds.Err()
	}
	return nil
}

// otherBackend maps a backend name to its differential counterpart.
func otherBackend(name string) string {
	if name == "" || name == vm.InterpBackend {
		return CompiledBackend
	}
	return vm.InterpBackend
}

// CompiledBackend names the closure-chain execution tier registered by
// internal/vm/compile (imported via execmgr).
const CompiledBackend = "compiled"

// NewInstance builds target t for the named mechanism and wires a
// campaign seeded with the target's corpus.
func NewInstance(t *targets.Target, mechanism string, opts InstanceOptions) (*Instance, error) {
	if t == nil {
		return nil, fmt.Errorf("core: nil target")
	}
	variant := VariantFor(mechanism)
	if variant == ClosureX && opts.DeferInit {
		variant = ClosureXDeferInit
	}
	mod, err := BuildWith(t.Short+".c", t.Source, BuildConfig{
		Variant:   variant,
		Sanitize:  opts.Sanitize,
		Interproc: opts.Interproc,
	})
	if err != nil {
		return nil, fmt.Errorf("core: build %s: %w", t.Name, err)
	}
	// Translation-validation gate: a campaign that will execute (or
	// cross-check against) the compiled closure-chain tier must not start
	// on a module whose compiled program fails to certify against the IR.
	// The check is static and runs once per instance, before any input
	// executes; -transval=off bypasses it explicitly.
	if !opts.TransvalOff && (opts.Backend == CompiledBackend || opts.SentinelCrossBackend) {
		if terr := transvalCheck(mod); terr != nil {
			return nil, fmt.Errorf("core: %s: compiled tier uncertified (rerun with -transval=off to override): %w",
				t.Name, terr)
		}
	}
	hopts := opts.HarnessOpts
	if opts.Interproc || opts.AuditRestore {
		h := harness.FullRestore()
		if hopts != nil {
			h = *hopts
		}
		h.ElideRestore = h.ElideRestore || opts.Interproc
		if opts.AuditRestore && h.AuditEvery <= 0 {
			h.AuditEvery = AuditEveryDefault
		}
		hopts = &h
	}
	pages := t.ImagePages
	switch {
	case opts.ImagePagesOverride > 0:
		pages = opts.ImagePagesOverride
	case opts.ImagePagesOverride < 0:
		pages = 0
	}
	// newMech builds one execution mechanism over the shared instrumented
	// module. Every shard of a parallel instance gets its own: VM memory
	// uses non-atomic copy-on-write bookkeeping, so process images must
	// never be shared across shard goroutines. randSeed varies per shard
	// (ShardSeed) so heap ASLR and target rand() streams are independent.
	newMech := func(cov []byte, randSeed uint64) (execmgr.Mechanism, error) {
		mcfg := execmgr.Config{
			Module:            mod,
			CovMap:            cov,
			Budget:            opts.Budget,
			ImagePages:        pages,
			TraceEdges:        opts.TraceEdges,
			HarnessOpts:       hopts,
			Files:             opts.Files,
			Injector:          opts.Injector,
			DeterministicRand: opts.DeterministicRand,
			RandSeed:          randSeed,
			Sanitize:          opts.Sanitize.Enabled(),
			Backend:           opts.Backend,
		}
		if opts.Resilience != nil && mechanism == "closurex" {
			return execmgr.NewResilient(mcfg, *opts.Resilience)
		}
		return execmgr.New(mechanism, mcfg)
	}
	// newSentinel arms the divergence sentinel against mech. The reference
	// replays each probe in a brand-new process image of the SAME
	// instrumented module, so both coverage maps share probe geometry.
	// Image pages are skipped: the reference models fresh semantics, not
	// fresh cost. Its PRNG seed matches the probed mechanism's so
	// rand()/heap-ASLR streams cannot masquerade as divergence (the §6.1.4
	// nondeterminism masking, done by construction).
	newSentinel := func(mech execmgr.Mechanism, randSeed uint64) (*fuzz.SentinelConfig, error) {
		refBackend := opts.Backend
		if opts.SentinelCrossBackend {
			// Two-sided differential: the reference replays every probe on
			// the other execution backend, so any interp/compiled semantic
			// gap surfaces as sentinel divergence during the campaign.
			refBackend = otherBackend(opts.Backend)
		}
		refCov := make([]byte, fuzz.MapSize)
		ref, rerr := execmgr.NewFresh(execmgr.Config{
			Module:            mod,
			CovMap:            refCov,
			Budget:            opts.Budget,
			Files:             opts.Files,
			DeterministicRand: opts.DeterministicRand,
			RandSeed:          randSeed,
			Sanitize:          opts.Sanitize.Enabled(),
			Backend:           refBackend,
		})
		if rerr != nil {
			return nil, fmt.Errorf("core: sentinel reference: %w", rerr)
		}
		sc := &fuzz.SentinelConfig{
			Reference: ref,
			RefCovMap: refCov,
			Every:     opts.SentinelEvery,
		}
		if ctrl, ok := mech.(fuzz.Controller); ok {
			sc.Controller = ctrl
		}
		return sc, nil
	}
	var dict [][]byte
	for _, tok := range t.Dict {
		dict = append(dict, []byte(tok))
	}
	if opts.AutoDict {
		dict = fuzz.MergeDict(append(dict, harnessaudit.Harvest(mod)...), fuzz.DefaultDictCap)
	}
	fingerprint := t.Name + "@" + mechanism

	if opts.Jobs > 1 {
		return newParallelInstance(t, mod, opts, newMech, newSentinel, dict, fingerprint)
	}

	cov := make([]byte, fuzz.MapSize)
	mech, err := newMech(cov, opts.TrialSeed)
	if err != nil {
		return nil, err
	}
	ccfg := fuzz.Config{
		Executor:    mech,
		CovMap:      cov,
		Seeds:       t.Seeds(),
		Seed:        opts.TrialSeed,
		Fingerprint: fingerprint,
		MaxInputLen: t.MaxInputLen,
		Dict:        dict,
		Stop:        opts.Stop,
	}
	if opts.SentinelEvery > 0 {
		sc, serr := newSentinel(mech, opts.TrialSeed)
		if serr != nil {
			mech.Close()
			return nil, serr
		}
		ccfg.Sentinel = sc
	}
	var camp *fuzz.Campaign
	if opts.ResumeFrom != nil {
		camp, err = fuzz.Resume(ccfg, opts.ResumeFrom)
		if err != nil {
			mech.Close()
			return nil, fmt.Errorf("core: resume %s: %w", t.Name, err)
		}
	} else {
		camp = fuzz.NewCampaign(ccfg)
	}
	return &Instance{
		Target: t, Module: mod, Mech: mech, CovMap: cov, Campaign: camp,
		Mechs: []execmgr.Mechanism{mech},
	}, nil
}

// newParallelInstance assembles a Jobs-shard instance: one mechanism and
// coverage buffer per shard, the divergence sentinel (when armed) riding
// on shard 0 only so the rest of the fleet fuzzes at full speed.
func newParallelInstance(
	t *targets.Target, mod *ir.Module, opts InstanceOptions,
	newMech func(cov []byte, randSeed uint64) (execmgr.Mechanism, error),
	newSentinel func(mech execmgr.Mechanism, randSeed uint64) (*fuzz.SentinelConfig, error),
	dict [][]byte, fingerprint string,
) (*Instance, error) {
	mechs := make([]execmgr.Mechanism, 0, opts.Jobs)
	mechMu := &sync.Mutex{}
	closeAll := func() {
		for _, m := range mechs {
			m.Close()
		}
	}
	var shards []fuzz.ShardConfig
	for j := 0; j < opts.Jobs; j++ {
		cov := make([]byte, fuzz.MapSize)
		mech, err := newMech(cov, fuzz.ShardSeed(opts.TrialSeed, j))
		if err != nil {
			closeAll()
			return nil, fmt.Errorf("core: shard %d: %w", j, err)
		}
		mechs = append(mechs, mech)
		sc := fuzz.ShardConfig{Executor: mech, CovMap: cov}
		// The supervisor's escalation rebuild: a brand-new mechanism (fresh
		// VM + harness) over the same module, swapped into the instance's
		// mechanism table so Close releases the replacement, not the corpse.
		// Shard 0 skips this when the sentinel is armed — the sentinel's
		// controller is wired to the original mechanism, and a swap would
		// leave it probing a closed image (the mechanism-level rebuild
		// ladder still covers that shard).
		if j > 0 || opts.SentinelEvery <= 0 {
			j := j
			sc.Rebuild = func() (fuzz.Executor, []byte, error) {
				ncov := make([]byte, fuzz.MapSize)
				nm, rerr := newMech(ncov, fuzz.ShardSeed(opts.TrialSeed, j))
				if rerr != nil {
					return nil, nil, rerr
				}
				mechMu.Lock()
				old := mechs[j]
				mechs[j] = nm
				mechMu.Unlock()
				old.Close()
				return nm, ncov, nil
			}
		}
		shards = append(shards, sc)
	}
	pcfg := fuzz.ParallelConfig{
		Shards:      shards,
		Seed:        opts.TrialSeed,
		Fingerprint: fingerprint,
		Seeds:       t.Seeds(),
		MaxInputLen: t.MaxInputLen,
		Dict:        dict,
		Stop:        opts.Stop,
		Supervisor: fuzz.SupervisorConfig{
			MaxRestarts: opts.MaxShardRestarts,
			Backoff:     opts.ShardBackoff,
			Injector:    opts.Injector,
		},
	}
	if opts.SentinelEvery > 0 {
		sc, err := newSentinel(mechs[0], fuzz.ShardSeed(opts.TrialSeed, 0))
		if err != nil {
			closeAll()
			return nil, err
		}
		pcfg.Sentinel = sc
	}
	var par *fuzz.ParallelCampaign
	var err error
	if opts.ResumeFrom != nil {
		par, err = fuzz.ResumeParallel(pcfg, opts.ResumeFrom)
	} else {
		par, err = fuzz.NewParallelCampaign(pcfg)
	}
	if err != nil {
		closeAll()
		return nil, fmt.Errorf("core: parallel campaign %s: %w", t.Name, err)
	}
	return &Instance{
		Target: t, Module: mod,
		Mech: mechs[0], CovMap: shards[0].CovMap,
		Mechs: mechs, Parallel: par, mechMu: mechMu,
	}, nil
}

// Close releases every shard mechanism's resources.
func (in *Instance) Close() {
	if in.mechMu != nil {
		in.mechMu.Lock()
		defer in.mechMu.Unlock()
	}
	for _, m := range in.Mechs {
		m.Close()
	}
}

// TotalProbes returns the number of coverage probes in the instrumented
// module.
func (in *Instance) TotalProbes() int { return passes.CountProbes(in.Module) }

// TotalEdges returns the static edge bound (the denominator of Table 6's
// coverage percentages).
func (in *Instance) TotalEdges() int { return passes.TotalEdges(in.Module) }
