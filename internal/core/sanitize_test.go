package core

import (
	"testing"

	"closurex/internal/analysis/sanitize"
	"closurex/internal/ir"
	"closurex/internal/targets"
)

// TestElisionRateOnExampleTargets is the acceptance bar from the sanitizer
// issue: the static analysis must elide at least 30% of shadow checks on
// the example targets (frame and global scalar traffic dominates MinC
// lowering, and that is exactly what the analysis proves safe).
func TestElisionRateOnExampleTargets(t *testing.T) {
	for _, name := range []string{"sandefect", "giftext"} {
		tg := targets.Get(name)
		if tg == nil {
			t.Fatalf("target %s not registered", name)
		}
		m, err := BuildSanitized(tg.Short+".c", tg.Source, ClosureX, SanitizeElide)
		if err != nil {
			t.Fatalf("build %s: %v", name, err)
		}
		rep := sanitize.ReportModule(m)
		checks, elided := rep.Totals()
		if checks+elided == 0 {
			t.Fatalf("%s: no instrumentable accesses", name)
		}
		if rate := rep.Rate(); rate < 0.30 {
			t.Errorf("%s: elision rate %.1f%% below the 30%% bar\n%s",
				name, 100*rate, rep.Format())
		}
	}
}

// TestSanitizeModesShareCoverageGeometry: all three build modes must carry
// identical coverage probes, or differential results would be meaningless.
func TestSanitizeModesShareCoverageGeometry(t *testing.T) {
	tg := targets.Get("sandefect")
	probes := func(san SanitizeMode) []int64 {
		m, err := BuildSanitized(tg.Short+".c", tg.Source, ClosureX, san)
		if err != nil {
			t.Fatalf("build mode %v: %v", san, err)
		}
		var ids []int64
		for _, f := range m.Funcs {
			for _, b := range f.Blocks {
				for i := range b.Instrs {
					if b.Instrs[i].Op == ir.OpCov {
						ids = append(ids, b.Instrs[i].Imm)
					}
				}
			}
		}
		return ids
	}
	off := probes(SanitizeOff)
	on := probes(SanitizeNoElide)
	elide := probes(SanitizeElide)
	if len(off) == 0 || len(off) != len(on) || len(off) != len(elide) {
		t.Fatalf("probe counts diverge: off=%d on=%d elide=%d", len(off), len(on), len(elide))
	}
	for i := range off {
		if off[i] != on[i] || off[i] != elide[i] {
			t.Fatalf("probe %d diverges across modes: %d/%d/%d", i, off[i], on[i], elide[i])
		}
	}
}

// TestSanitizedModulePassesCheckModule: the lint gate must stay green for
// sanitized ClosureX builds (CLX111-113 run as part of the verifier).
func TestSanitizedModulePassesCheckModule(t *testing.T) {
	for _, tg := range targets.All() {
		m, err := BuildSanitized(tg.Short+".c", tg.Source, ClosureX, SanitizeElide)
		if err != nil {
			t.Fatalf("build %s: %v", tg.Name, err)
		}
		if ds := CheckModule(m, ClosureX); ds.HasErrors() {
			t.Errorf("%s: sanitized build fails lint gate: %v", tg.Name, ds.Errors())
		}
	}
}

// TestElideRateNoElideModeIsZero: SanitizeNoElide must not mark anything.
func TestElideRateNoElideModeIsZero(t *testing.T) {
	tg := targets.Get("sandefect")
	m, err := BuildSanitized(tg.Short+".c", tg.Source, ClosureX, SanitizeNoElide)
	if err != nil {
		t.Fatal(err)
	}
	rep := sanitize.ReportModule(m)
	if _, elided := rep.Totals(); elided != 0 {
		t.Fatalf("no-elide build marked %d accesses", elided)
	}
}
