package core

import (
	"strings"
	"testing"

	"closurex/internal/ir"
	"closurex/internal/targets"
)

// The whole toolchain — front end, lowering, pass pipeline, coverage IDs —
// must be bit-for-bit deterministic: two builds of the same target print
// identical IR. Reproducible builds underpin every cross-mechanism
// comparison in the evaluation.
func TestBuildsAreDeterministic(t *testing.T) {
	for _, tg := range targets.All() {
		for _, v := range []Variant{Pristine, Baseline, ClosureX} {
			m1, err := Build(tg.Short+".c", tg.Source, v)
			if err != nil {
				t.Fatalf("%s/%s: %v", tg.Name, v, err)
			}
			m2, err := Build(tg.Short+".c", tg.Source, v)
			if err != nil {
				t.Fatal(err)
			}
			if ir.Print(m1) != ir.Print(m2) {
				t.Fatalf("%s/%s: non-deterministic build", tg.Name, v)
			}
		}
	}
}

// Structural golden assertions on one instrumented target: the shapes a
// reader of the paper would check in the IR dump.
func TestInstrumentedIRGoldenShape(t *testing.T) {
	tg := targets.Get("giftext")
	m, err := Build(tg.Short+".c", tg.Source, ClosureX)
	if err != nil {
		t.Fatal(err)
	}
	dump := ir.Print(m)
	for _, want := range []string{
		"func target_main(",              // RenameMainPass
		"call closurex_exit(",            // ExitPass
		"call closurex_malloc(",          // HeapPass
		"call closurex_free(",            // HeapPass
		"call closurex_fopen(",           // FilePass
		"call closurex_fclose(",          // FilePass
		"section=closure_global_section", // GlobalPass
		"section=.rodata",                // string literals stay read-only
		"cov 0x",                         // CoveragePass
	} {
		if !strings.Contains(dump, want) {
			t.Errorf("instrumented IR missing %q", want)
		}
	}
	for _, absent := range []string{
		"func main(", "call exit(", "call malloc(", "call fopen(",
	} {
		if strings.Contains(dump, absent) {
			t.Errorf("instrumented IR still contains %q", absent)
		}
	}
}
