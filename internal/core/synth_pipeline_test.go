package core

import (
	"testing"

	"closurex/internal/analysis/synth"
	"closurex/internal/ir"
	"closurex/internal/targets"
)

// synth/certify.go re-builds its own ClosureX pipeline rather than calling
// InstrumentWith (importing core would cycle through targets). This test
// pins the mirror: for every benchmark target's synthesized harness, the
// module synth certified must be instruction-identical to what
// core.Build(..., ClosureX) produces from the same emitted source — same
// pass set, same ordering, same coverage seed. If the pipelines drift, the
// synthesized targets would fuzz a different program than the one that was
// certified.
func TestSynthCertifyMirrorsClosureXBuild(t *testing.T) {
	for _, tg := range targets.Benchmarks() {
		h, err := synth.Synthesize(tg.Name, tg.Short+".c", tg.Source, synth.Options{})
		if err != nil {
			t.Fatalf("%s: %v", tg.Name, err)
		}
		if !h.Report.Certified {
			t.Errorf("%s: not certified:\n%s", tg.Name, h.Diags.String())
			continue
		}
		want, err := Build(tg.Short+".c", h.Source, ClosureX)
		if err != nil {
			t.Errorf("%s: core.Build over the emitted source: %v", tg.Name, err)
			continue
		}
		if got, exp := ir.Print(h.Module), ir.Print(want); got != exp {
			t.Errorf("%s: synth-certified module differs from core.Build(ClosureX) over the same source", tg.Name)
		}
	}
}
