package core

import (
	"errors"
	"strings"
	"testing"

	"closurex/internal/ir"
	"closurex/internal/targets"
	"closurex/internal/vm"
)

// The translation-validation gate's campaign-level contract: a campaign
// that will execute (or cross-check against) the compiled tier runs the
// static equivalence check before any input executes, and TransvalOff is
// the only bypass.

// TestTransvalGateCertifiedStart: every registered target certifies, so
// arming the compiled tier — directly and via the cross-backend sentinel —
// must start normally with the gate on.
func TestTransvalGateCertifiedStart(t *testing.T) {
	tgt := targets.Get("gpmf-parser")
	if tgt == nil {
		t.Fatal("gpmf-parser not registered")
	}
	for _, opts := range []InstanceOptions{
		{Backend: CompiledBackend},
		{Backend: vm.InterpBackend, SentinelCrossBackend: true, SentinelEvery: 100, DeterministicRand: true},
	} {
		opts.TrialSeed = 1
		inst, err := NewInstance(tgt, "closurex", opts)
		if err != nil {
			t.Fatalf("gate refused a certified target (backend=%q cross=%v): %v",
				opts.Backend, opts.SentinelCrossBackend, err)
		}
		inst.Close()
	}
}

// TestTransvalGateUncertifiedRefusal drives the refusal path: a module
// rejected by transval must stop NewInstance before any execution, with a
// message pointing at the -transval=off escape hatch, and TransvalOff must
// bypass the same check.
func TestTransvalGateUncertifiedRefusal(t *testing.T) {
	tgt := targets.Get("gpmf-parser")
	if tgt == nil {
		t.Fatal("gpmf-parser not registered")
	}
	// The gate consults the transvalCheck hook so the refusal path is
	// testable without an uncertifiable module (no real target has one —
	// that is the point of the gate).
	orig := transvalCheck
	defer func() { transvalCheck = orig }()
	calls := 0
	transvalCheck = func(m *ir.Module) error {
		calls++
		return errors.New("forced certification failure")
	}
	if _, err := NewInstance(tgt, "closurex", InstanceOptions{TrialSeed: 1, Backend: CompiledBackend}); err == nil {
		t.Fatal("gate passed an uncertified module")
	} else if !strings.Contains(err.Error(), "-transval=off") {
		t.Fatalf("refusal does not name the escape hatch: %v", err)
	}
	if calls != 1 {
		t.Fatalf("gate ran %d times, want 1", calls)
	}
	// Interpreter-only campaigns never invoke the checker.
	inst, err := NewInstance(tgt, "closurex", InstanceOptions{TrialSeed: 1, Backend: vm.InterpBackend})
	if err != nil {
		t.Fatal(err)
	}
	inst.Close()
	if calls != 1 {
		t.Fatalf("gate ran for an interpreter campaign (%d calls)", calls)
	}
	// TransvalOff bypasses the gate even while the checker rejects.
	inst, err = NewInstance(tgt, "closurex", InstanceOptions{TrialSeed: 1, Backend: CompiledBackend, TransvalOff: true})
	if err != nil {
		t.Fatalf("TransvalOff did not bypass the gate: %v", err)
	}
	inst.Close()
	if calls != 1 {
		t.Fatalf("gate ran under TransvalOff (%d calls)", calls)
	}
}
